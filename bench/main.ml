(* Benchmark and reproduction harness.

   Running this executable regenerates every table and figure-shaped
   result in the paper's evaluation (Sections 2.4 and 3.4), then times
   the core operations with bechamel.  Section markers match the
   per-experiment index in DESIGN.md. *)

open Wdm_core
open Wdm_multistage
module An = Wdm_analysis

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "== %s\n" title;
  Printf.printf "================================================================\n\n"

(* ----------------------------------------------------------------- *)
(* Table 1                                                           *)
(* ----------------------------------------------------------------- *)

let table1 () =
  section "Table 1 - capacity & cost of crossbar WDM multicast networks";
  An.Table.print (An.Table1.symbolic ());
  An.Table.print
    (An.Table1.numeric
       [ (2, 1); (2, 2); (2, 3); (3, 1); (3, 2); (4, 2); (8, 4); (16, 8) ])

(* ----------------------------------------------------------------- *)
(* Table 2                                                           *)
(* ----------------------------------------------------------------- *)

let table2 () =
  section "Table 2 - crossbar vs multistage cost";
  An.Table.print (An.Table2.symbolic ());
  An.Table.print
    (An.Table2.numeric ~big_ns:[ 16; 64; 256; 1024; 4096 ] ~ks:[ 2; 4; 8 ])

(* ----------------------------------------------------------------- *)
(* Figures 4-7: component census of the built fabrics                *)
(* ----------------------------------------------------------------- *)

let fabric_census () =
  section "Figs 4/6/7 - component census of physically built fabrics (N=3, k=2)";
  let t =
    An.Table.make
      ~header:[ "Fabric"; "Crosspoints"; "Converters"; "Formula xpts"; "Formula conv" ]
      ()
  in
  let spec = Network_spec.make_exn ~n:3 ~k:2 in
  List.iter
    (fun model ->
      let f = Wdm_crossbar.Fabric.create ~model spec in
      An.Table.add_row t
        [
          Format.asprintf "Fig %s (%a)"
            (match model with Model.MSW -> "4" | Model.MSDW -> "6" | Model.MAW -> "7")
            Model.pp model;
          string_of_int (Wdm_crossbar.Fabric.crosspoints f);
          string_of_int (Wdm_crossbar.Fabric.converters f);
          string_of_int (Wdm_core.Cost.crossbar_crosspoints model ~n:3 ~k:2);
          string_of_int (Wdm_core.Cost.crossbar_converters model ~n:3 ~k:2);
        ])
    Model.all;
  An.Table.print t

(* ----------------------------------------------------------------- *)
(* Power budget / crosstalk proxy on a realized assignment           *)
(* ----------------------------------------------------------------- *)

let power_budget () =
  section "Power budget & crosstalk proxy (broadcast on Fig 7 fabric, N=4 k=2)";
  let spec = Network_spec.make_exn ~n:4 ~k:2 in
  let fabric = Wdm_crossbar.Fabric.create ~model:Model.MAW spec in
  let rng = Random.State.make [| 2024 |] in
  let a = Wdm_traffic.Generator.random_full_assignment rng spec Model.MAW in
  match Wdm_crossbar.Fabric.realize fabric a with
  | Error f ->
    Printf.printf "unexpected failure: %s\n"
      (Format.asprintf "%a" Wdm_crossbar.Delivery.pp_failure f)
  | Ok outcome ->
    Printf.printf "connections realized : %d\n" (Assignment.size a);
    Printf.printf "total endpoints lit  : %d\n" (Assignment.total_fanout a);
    (match Wdm_crossbar.Delivery.min_power_db outcome with
    | Some p -> Printf.printf "worst delivered power: %.2f dB\n" p
    | None -> ());
    (match Wdm_crossbar.Delivery.max_gates_passed outcome with
    | Some g -> Printf.printf "max crosspoints hit  : %d (crosstalk proxy)\n" g
    | None -> ())

(* ----------------------------------------------------------------- *)
(* Crosstalk margin vs fabric size (leaky SOA gates)                  *)
(* ----------------------------------------------------------------- *)

let crosstalk_margin () =
  section "Crosstalk margin vs fabric size (30 dB extinction gates)";
  let t =
    An.Table.make
      ~header:[ "N"; "k"; "model"; "gates"; "worst margin (dB)" ]
      ()
  in
  List.iter
    (fun (n, k, model) ->
      let sp = Network_spec.make_exn ~n ~k in
      let fabric =
        Wdm_crossbar.Fabric.create
          ~loss:(Wdm_optics.Loss_model.leaky ~extinction_db:30. ())
          ~model sp
      in
      let rng = Random.State.make [| 55 |] in
      let a = Wdm_traffic.Generator.random_full_assignment rng sp model in
      match Wdm_crossbar.Fabric.realize fabric a with
      | Error _ -> ()
      | Ok outcome ->
        An.Table.add_row t
          [
            string_of_int n;
            string_of_int k;
            Model.to_string model;
            string_of_int (Wdm_crossbar.Fabric.crosspoints fabric);
            (match Wdm_crossbar.Delivery.worst_crosstalk_margin_db outcome with
            | Some m -> Printf.sprintf "%.1f" m
            | None -> "clean");
          ])
    [
      (2, 2, Model.MSW); (4, 2, Model.MSW); (8, 2, Model.MSW);
      (2, 2, Model.MAW); (4, 2, Model.MAW); (8, 2, Model.MAW);
    ];
  An.Table.print t;
  print_endline
    "(the paper uses the crosspoint count to project crosstalk; with leaky\n\
    \ gates the margin indeed degrades as k^2 N^2 fabrics grow)\n"

(* ----------------------------------------------------------------- *)
(* Theorem sweeps                                                     *)
(* ----------------------------------------------------------------- *)

let theorem_sweeps () =
  section "Theorems 1 & 2 - middle-stage requirement m_min (n = r)";
  An.Table.print
    (An.Sweeps.theorem_bounds ~ns:[ 2; 3; 4; 6; 8; 12; 16; 24; 32; 48; 64 ]
       ~ks:[ 1; 2; 4; 8 ])

let crossover () =
  section "Crossover - where the multistage design beats the crossbar";
  List.iter
    (fun (model, k) ->
      An.Table.print (An.Sweeps.crossover ~output_model:model ~k ~max_big_n:1024);
      match An.Sweeps.first_crossover ~output_model:model ~k ~max_big_n:4096 with
      | Some n -> Printf.printf "first MS win for %s, k=%d: N = %d\n\n"
          (Model.to_string model) k n
      | None -> Printf.printf "no MS win up to N = 4096\n\n")
    [ (Model.MSW, 2); (Model.MAW, 2) ]

let capacity_growth () =
  section "Capacity growth - log10 of full-multicast capacity";
  An.Table.print (An.Sweeps.capacity_growth ~k:2 ~ns:[ 2; 4; 8; 16; 32; 64 ]);
  An.Table.print (An.Sweeps.capacity_growth ~k:4 ~ns:[ 2; 4; 8; 16; 32 ])

(* ----------------------------------------------------------------- *)
(* Blocking experiments                                               *)
(* ----------------------------------------------------------------- *)

let blocking () =
  section "Blocking probability vs m (edge of the nonblocking condition)";
  An.Table.print
    (An.Blocking.blocking_table ~construction:Network.Msw_dominant
       ~output_model:Model.MSW ~n:3 ~r:3 ~k:2);
  An.Table.print
    (An.Blocking.blocking_table ~construction:Network.Maw_dominant
       ~output_model:Model.MAW ~n:3 ~r:3 ~k:2);
  section "Fig 10 effect under load - construction ablation at equal m";
  An.Table.print (An.Blocking.construction_ablation ~n:2 ~r:2 ~k:2 ~ms:[ 2; 3; 4 ]);
  section "Routing-strategy ablation";
  An.Table.print
    (An.Blocking.strategy_ablation ~construction:Network.Msw_dominant
       ~output_model:Model.MSW ~n:4 ~r:4 ~k:2 ~m:13);
  section "Rearrangement ablation (strict-sense vs rearrangeable)";
  An.Table.print
    (An.Blocking.rearrangement_ablation ~construction:Network.Msw_dominant
       ~output_model:Model.MSW ~n:3 ~r:3 ~k:1 ~ms:[ 3; 4; 5; 6 ] ())

let sparse_conversion () =
  section "Sparse conversion - capacity with range-limited converters";
  An.Table.print (An.Sparse_conversion.table ~n:2 ~k:2);
  An.Table.print (An.Sparse_conversion.table ~n:2 ~k:3);
  print_endline
    "(d = 0 collapses MSDW/MAW onto the MSW capacity; d = k-1 restores the\n\
    \ full Table 1 counts; every point is verified by optical realization)\n"

let fault_tolerance () =
  section "Fault tolerance - m_min + f middles survive f module failures";
  let n = 3 and r = 3 and k = 2 in
  let m_min = (Conditions.msw_dominant ~n ~r).Conditions.m_min in
  let t =
    An.Table.make
      ~header:[ "provisioned m"; "failed modules"; "attempts"; "blocked" ]
      ()
  in
  List.iter
    (fun (extra, faults) ->
      let topo = Topology.make_exn ~n ~m:(m_min + extra) ~r ~k in
      let net =
        Network.create ~construction:Network.Msw_dominant ~output_model:Model.MSW
          topo
      in
      for j = 1 to faults do
        ignore (Network.fail_middle net j)
      done;
      let sut =
        {
          Wdm_traffic.Churn.connect =
            (fun c ->
              match Network.connect net c with
              | Ok route -> Ok route.Network.id
              | Error e -> Error e);
          disconnect = (fun id -> ignore (Network.disconnect net id));
        }
      in
      let stats =
        Wdm_traffic.Churn.run (Random.State.make [| 83 |])
          ~spec:(Topology.spec topo) ~model:Model.MSW
          ~fanout:(Wdm_traffic.Fanout.Zipf { max = 9; s = 1.0 })
          ~steps:2000 ~teardown_bias:0.3 sut
      in
      An.Table.add_row t
        [
          Printf.sprintf "%d (m_min%+d)" (m_min + extra) extra;
          string_of_int faults;
          string_of_int stats.Wdm_traffic.Churn.attempts;
          string_of_int stats.Wdm_traffic.Churn.blocked;
        ])
    [ (0, 0); (2, 2); (3, 3); (0, 4); (0, 6) ];
  An.Table.print t;
  print_endline
    "(with f spare middles the theorem margin absorbs f faults; eating into\n\
    \ the margin brings blocking back)\n"

let x_limit_ablation () =
  section "x-limit ablation - the fanout-splitting bound of Theorems 1-2";
  (* n = r = 4, k = 2: the optimal x is 2 with m_min = 13; forcing
     x = 1 raises the requirement to m > (n-1)(1+r) = 15, so at m = 13
     the x = 1 strategy has lost its guarantee. *)
  let t =
    An.Table.make
      ~header:[ "x_limit"; "theorem needs m >"; "attempts"; "blocked at m=13" ]
      ()
  in
  List.iter
    (fun x ->
      let topo = Topology.make_exn ~n:4 ~m:13 ~r:4 ~k:2 in
      let net =
        Network.create
          ~config:{ Network.Config.default with x_limit = Some x }
          ~construction:Network.Msw_dominant ~output_model:Model.MSW topo
      in
      let sut =
        {
          Wdm_traffic.Churn.connect =
            (fun c ->
              match Network.connect net c with
              | Ok route -> Ok route.Network.id
              | Error e -> Error e);
          disconnect = (fun id -> ignore (Network.disconnect net id));
        }
      in
      let stats =
        Wdm_traffic.Churn.run (Random.State.make [| 61 |])
          ~spec:(Topology.spec topo) ~model:Model.MSW
          ~fanout:(Wdm_traffic.Fanout.Zipf { max = 16; s = 1.0 })
          ~steps:3000 ~teardown_bias:0.3 sut
      in
      An.Table.add_row t
        [
          string_of_int x;
          Printf.sprintf "%.1f" (Conditions.theorem1_term ~n:4 ~r:4 ~x);
          string_of_int stats.Wdm_traffic.Churn.attempts;
          string_of_int stats.Wdm_traffic.Churn.blocked;
        ])
    [ 1; 2; 3 ];
  An.Table.print t

let fig10 () =
  section "Fig 10 - MSW middle modules block, MAW middle modules route";
  List.iter
    (fun (c, name) ->
      let outcome = Scenarios.fig10 c in
      Printf.printf "%-13s: prelude admitted %d/3, probe %s\n" name
        outcome.Scenarios.admitted
        (match outcome.Scenarios.probe_result with
        | Ok route -> Format.asprintf "ROUTED (%a)" Network.pp_route route
        | Error e -> "BLOCKED (" ^ Network.Error.to_string e ^ ")"))
    [ (Network.Msw_dominant, "MSW-dominant"); (Network.Maw_dominant, "MAW-dominant") ];
  print_newline ()

(* ----------------------------------------------------------------- *)
(* Recursive construction: crosspoints vs stages                      *)
(* ----------------------------------------------------------------- *)

let recursive_stages () =
  section "Recursive construction - cost vs number of stages (MSW model)";
  let t =
    An.Table.make
      ~header:[ "N"; "stages"; "m per level"; "crosspoints"; "vs crossbar" ]
      ()
  in
  let row big_n stages =
    match Recursive.design ~stages ~big_n ~k:2 ~output_model:Model.MSW with
    | Error _ -> ()
    | Ok d ->
      let cb = Wdm_core.Cost.crossbar_crosspoints Model.MSW ~n:big_n ~k:2 in
      An.Table.add_row t
        [
          string_of_int big_n;
          string_of_int stages;
          String.concat ","
            (List.map string_of_int (Recursive.middle_modules_per_level d));
          string_of_int (Recursive.crosspoints d);
          Printf.sprintf "%.3f" (float_of_int (Recursive.crosspoints d) /. float_of_int cb);
        ]
  in
  List.iter (row 4096) [ 1; 3; 5; 7 ];
  An.Table.add_rule t;
  List.iter (row (4096 * 4096)) [ 3; 5 ];
  An.Table.print t;
  print_endline
    "(deeper recursion multiplies in another Theorem-1 m factor per level,\n\
    \ so 5 stages only overtake 3 stages at very large N)\n"

let recursive_routing () =
  section "Recursive routing - 5-stage network at per-level Theorem-1 bounds";
  List.iter
    (fun (stages, big_n, k) ->
      match
        Recursive.design ~stages ~big_n ~k ~output_model:Model.MSW
      with
      | Error e -> print_endline e
      | Ok d ->
        let t = Rnetwork.create ~construction:Network.Msw_dominant d in
        let sut =
          {
            Wdm_traffic.Churn.connect =
              (fun c ->
                match Rnetwork.connect t c with
                | Ok route -> Ok route.Rnetwork.base.Network.id
                | Error e -> Error e);
            disconnect = (fun id -> ignore (Rnetwork.disconnect t id));
          }
        in
        let stats =
          Wdm_traffic.Churn.run
            (Random.State.make [| 2026 |])
            ~spec:(Topology.spec (Rnetwork.topology t))
            ~model:Model.MSW
            ~fanout:(Wdm_traffic.Fanout.Zipf { max = big_n; s = 1.1 })
            ~steps:2000 ~teardown_bias:0.35 sut
        in
        Printf.printf
          "%d-stage N=%-3d k=%d (m per level: %s): %s\n" stages big_n k
          (String.concat ","
             (List.map string_of_int (Recursive.middle_modules_per_level d)))
          (Format.asprintf "%a" Wdm_traffic.Churn.pp_stats stats))
    [ (3, 16, 2); (5, 8, 2); (5, 27, 2); (7, 16, 2) ];
  print_endline
    "\n(zero blocking expected at every depth: each level is provisioned to\n\
    \ its own Theorem-1 minimum, and the engine routes hop-recursively)\n"

(* ----------------------------------------------------------------- *)
(* Fig 3: converter usage per model                                   *)
(* ----------------------------------------------------------------- *)

let fig3_converters () =
  section "Fig 3 - wavelength converter demand per model";
  let n = 8 and k = 4 in
  let spec = Network_spec.make_exn ~n ~k in
  let rng = Random.State.make [| 31 |] in
  (* an MSW-legal workload is legal under all three models, which makes
     the converter comparison apples-to-apples *)
  let a = Wdm_traffic.Generator.random_full_assignment rng spec Model.MSW in
  let t =
    An.Table.make
      ~header:[ "Model"; "placement"; "provisioned"; "active on workload" ]
      ~align:[ An.Table.Left; An.Table.Left; An.Table.Right; An.Table.Right ]
      ()
  in
  List.iter
    (fun model ->
      An.Table.add_row t
        [
          Model.to_string model;
          Format.asprintf "%a" Converters.pp_placement (Converters.placement model);
          string_of_int (Converters.provisioned model ~n ~k);
          string_of_int (Converters.used_by model a);
        ])
    Model.all;
  An.Table.print t;
  Printf.printf
    "workload: random full assignment, %d connections, total fanout %d\n\n"
    (Assignment.size a) (Assignment.total_fanout a)

(* ----------------------------------------------------------------- *)
(* Empirical blocking frontier                                        *)
(* ----------------------------------------------------------------- *)

let frontier () =
  section "Empirical blocking frontier vs Theorem bound";
  let t =
    An.Table.make
      ~header:
        [ "construction"; "n=r"; "k"; "theorem m_min"; "largest m that blocked" ]
      ()
  in
  List.iter
    (fun (construction, cname, output_model, n, k) ->
      let eval =
        match construction with
        | Network.Msw_dominant -> Conditions.msw_dominant ~n ~r:n
        | Network.Maw_dominant -> Conditions.maw_dominant ~n ~r:n ~k
      in
      let f =
        An.Blocking.frontier ~construction ~output_model ~n ~r:n ~k ()
      in
      An.Table.add_row t
        [
          cname;
          string_of_int n;
          string_of_int k;
          string_of_int eval.Conditions.m_min;
          (match f with Some m -> string_of_int m | None -> "none observed");
        ])
    [
      (Network.Msw_dominant, "MSW-dominant", Model.MSW, 2, 1);
      (Network.Msw_dominant, "MSW-dominant", Model.MSW, 3, 2);
      (Network.Msw_dominant, "MSW-dominant", Model.MSW, 4, 2);
      (Network.Maw_dominant, "MAW-dominant", Model.MAW, 3, 2);
    ];
  An.Table.print t;
  print_endline
    "(the gap between the frontier and m_min is expected: random churn is\n\
    \ far gentler than the worst-case adversary of the necessity proofs)\n"

(* ----------------------------------------------------------------- *)
(* Exhaustive adversary: the exact frontier for a toy instance        *)
(* ----------------------------------------------------------------- *)

let exact_frontier () =
  section "Exhaustive adversary - exact blocking frontier (n=r=2, k=1)";
  Printf.printf
    "Theorem 1 m_min = %d; exhaustive state-space search gives the exact edge:\n\n"
    (Conditions.msw_dominant ~n:2 ~r:2).Conditions.m_min;
  List.iter
    (fun (m, v) ->
      Format.printf "m=%d: %a\n" m An.Adversary.pp_verdict v)
    (An.Adversary.frontier_exact ~construction:Network.Msw_dominant
       ~output_model:Model.MSW ~n:2 ~r:2 ~k:1 ());
  print_endline
    "\n(the sufficient condition leaves slack at this toy size; the witness\n\
    \ at m=2 is machine-checked by replay in the test suite)\n"

(* ----------------------------------------------------------------- *)
(* Blocking vs offered load                                           *)
(* ----------------------------------------------------------------- *)

let blocking_vs_load () =
  section "Blocking vs offered load (undersized vs theorem-sized switch)";
  An.Table.print
    (An.Blocking.erlang_curve ~construction:Network.Msw_dominant
       ~output_model:Model.MSW ~n:3 ~r:3 ~k:2 ~m:4
       ~offered:[ 2.; 4.; 8.; 12.; 16. ] ());
  An.Table.print
    (An.Blocking.erlang_curve ~construction:Network.Msw_dominant
       ~output_model:Model.MSW ~n:3 ~r:3 ~k:2
       ~m:(Conditions.msw_dominant ~n:3 ~r:3).Conditions.m_min
       ~offered:[ 4.; 16. ] ());
  An.Table.print
    (An.Blocking.blocking_vs_load ~construction:Network.Msw_dominant
       ~output_model:Model.MSW ~n:3 ~r:3 ~k:2 ~m:4 ());
  An.Table.print
    (An.Blocking.blocking_vs_load ~construction:Network.Msw_dominant
       ~output_model:Model.MSW ~n:3 ~r:3 ~k:2
       ~m:(Conditions.msw_dominant ~n:3 ~r:3).Conditions.m_min ())

(* ----------------------------------------------------------------- *)
(* Routing throughput at scale                                        *)
(* ----------------------------------------------------------------- *)

module J = Wdm_telemetry.Json

module Op = Wdm_persist.Op
module Store = Wdm_persist.Store
module Wal = Wdm_persist.Wal
module Resp = Wdm_persist.Resp
module Server = Wdm_server.Server
module Client = Wdm_server.Client
module Evloop = Wdm_server.Evloop
module Protocol = Wdm_server.Protocol

(* A recorded network workload: the churn driver runs once against a
   scratch network (so every request is admissible and the teardown ids
   are real), and the op sequence is then replayed directly against
   each link-state implementation with nothing but Network.connect /
   Network.disconnect inside the timed loop.  That isolates the routing
   engine from the generator, which otherwise dominates at N=1024.
   The ops are Wdm_persist.Op values — the same vocabulary the WAL
   persists — so the recorded trace could equally be written to disk
   and recovered. *)
let record_trace ~topo ~steps ~seed =
  let net =
    Network.create ~construction:Network.Msw_dominant ~output_model:Model.MSW
      topo
  in
  let ops = ref [] in
  let sut =
    {
      Wdm_traffic.Churn.connect =
        (fun c ->
          ops := Op.Connect c :: !ops;
          match Network.connect net c with
          | Ok route -> Ok route.Network.id
          | Error e -> Error e);
      disconnect =
        (fun id ->
          ops := Op.Disconnect id :: !ops;
          ignore (Network.disconnect net id));
    }
  in
  ignore
    (Wdm_traffic.Churn.run
       (Random.State.make [| seed |])
       ~spec:(Topology.spec topo) ~model:Model.MSW
       ~fanout:(Wdm_traffic.Fanout.Zipf { max = 64; s = 1.3 })
       ~steps ~teardown_bias:0.35 sut);
  Array.of_list (List.rev !ops)

(* Replay, timing only the network calls; the running checksum over the
   chosen hops (Op.route_checksum) is the byte-identical-routes check
   between the two implementations (cheap, and paid equally by both
   sides).  Each replay carries its own metrics sink, as instrumented
   production runs do: gauge maintenance is part of the per-op cost
   under comparison (O(1) on the packed path vs the pre-change full
   recomputation on the reference path). *)
let replay ~topo ~impl ops =
  let net =
    Network.create
      ~config:
        {
          Network.Config.default with
          telemetry = Some (Wdm_telemetry.Sink.create ());
          link_impl = Some impl;
        }
      ~construction:Network.Msw_dominant ~output_model:Model.MSW topo
  in
  let accepted = ref 0 and checksum = ref 0 in
  let t0 = Unix.gettimeofday () in
  Array.iter
    (function
      | Op.Connect c -> (
        match Network.connect net c with
        | Ok route ->
          incr accepted;
          checksum := Op.route_checksum !checksum route
        | Error _ -> ())
      | Op.Disconnect id -> ignore (Network.disconnect net id)
      | _ -> ())
    ops;
  let dt = Unix.gettimeofday () -. t0 in
  (dt, !accepted, !checksum)

let impl_name = function
  | Network.Bitset -> "bitset"
  | Network.Reference -> "reference"

(* Rearrangement latency: churn an undersized switch until a request
   blocks, snapshot the fabric at that instant, then repeatedly time
   connect_rearrangeable against fresh copies of the snapshot (the call
   mutates the fabric on success, so each sample gets its own copy;
   the copies happen outside the timed region). *)
let rearrangement_latency ~iters cases =
  List.filter_map
    (fun (n, k, m, strategy, sname) ->
      let topo = Topology.make_exn ~n ~m ~r:n ~k in
      let net =
        Network.create
          ~config:{ Network.Config.default with strategy }
          ~construction:Network.Msw_dominant ~output_model:Model.MSW topo
      in
      let snapshot = ref None in
      let on_blocked c _ =
        if !snapshot = None then snapshot := Some (c, Network.copy net)
      in
      let sut =
        {
          Wdm_traffic.Churn.connect =
            (fun c ->
              match Network.connect net c with
              | Ok route -> Ok route.Network.id
              | Error e -> Error e);
          disconnect = (fun id -> ignore (Network.disconnect net id));
        }
      in
      ignore
        (Wdm_traffic.Churn.run ~on_blocked
           (Random.State.make [| 97 |])
           ~spec:(Topology.spec topo) ~model:Model.MSW
           ~fanout:(Wdm_traffic.Fanout.Uniform (1, n))
           ~steps:2000 ~teardown_bias:0.2 sut);
      match !snapshot with
      | None -> None
      | Some (probe, blocked_state) ->
        let total = ref 0. and admitted = ref false and moves = ref 0 in
        for _ = 1 to iters do
          let c = Network.copy blocked_state in
          let t0 = Unix.gettimeofday () in
          let r = Network.connect_rearrangeable c probe in
          total := !total +. (Unix.gettimeofday () -. t0);
          match r with
          | Ok (_, mv) ->
            admitted := true;
            moves := mv
          | Error _ -> ()
        done;
        let mean_us = !total /. float_of_int iters *. 1e6 in
        Some (n, k, m, sname, mean_us, !admitted, !moves))
    cases

let routing_throughput ~quick () =
  section "Routing throughput at scale (N=1024 three-stage, Theorem-1 m)";
  let n = 32 and r = 32 and k = 2 in
  let eval = Conditions.msw_dominant ~n ~r in
  let m = eval.Conditions.m_min in
  let topo = Topology.make_exn ~n ~m ~r ~k in
  let steps = if quick then 4_000 else 20_000 in
  let ops = record_trace ~topo ~steps ~seed:4242 in
  let connects =
    Array.fold_left (fun a -> function Op.Connect _ -> a + 1 | _ -> a) 0 ops
  in
  Printf.printf "topology: %s, m=%d (x*=%d)\n"
    (Format.asprintf "%a" Topology.pp topo)
    m eval.Conditions.x;
  Printf.printf "trace: %d network ops (%d connects, %d disconnects)\n\n"
    (Array.length ops) connects
    (Array.length ops - connects);
  let run impl =
    let dt, accepted, checksum = replay ~topo ~impl ops in
    let cps = float_of_int connects /. dt in
    Printf.printf "%-9s: %6.3f s  %8.0f connects/s  %8.0f ops/s (%d accepted)\n"
      (impl_name impl) dt cps
      (float_of_int (Array.length ops) /. dt)
      accepted;
    (impl, dt, accepted, checksum, cps)
  in
  let results = [ run Network.Bitset; run Network.Reference ] in
  let find impl =
    List.find (fun (i, _, _, _, _) -> i = impl) results
  in
  let _, dt_bit, acc_bit, ck_bit, _ = find Network.Bitset in
  let _, dt_ref, acc_ref, ck_ref, _ = find Network.Reference in
  let identical = acc_bit = acc_ref && ck_bit = ck_ref in
  let speedup = dt_ref /. dt_bit in
  Printf.printf "\nspeedup (reference / bitset): %.2fx; identical routes: %b\n\n"
    speedup identical;
  if not identical then
    failwith "routing_throughput: implementations chose different routes";
  section "Rearrangement latency (undersized switch, blocked-probe snapshot)";
  let rows =
    rearrangement_latency
      ~iters:(if quick then 100 else 1000)
      [
        (3, 1, 3, Network.Min_intersection, "min_intersection");
        (3, 1, 3, Network.First_fit, "first_fit");
        (4, 2, 8, Network.Min_intersection, "min_intersection");
        (4, 2, 8, Network.First_fit, "first_fit");
      ]
  in
  List.iter
    (fun (n, k, m, sname, mean_us, admitted, moves) ->
      Printf.printf
        "N=%-3d k=%d m=%-2d %-17s %8.1f us/call  %s (moves: %d)\n" (n * n) k m
        sname mean_us
        (if admitted then "admitted" else "still blocked")
        moves)
    rows;
  print_newline ();
  ( ( "routing_throughput",
      J.Obj
        [
        ( "params",
          J.Obj
            [
              ("big_n", J.Int (n * r));
              ("n", J.Int n);
              ("r", J.Int r);
              ("k", J.Int k);
              ("m", J.Int m);
              ("steps", J.Int steps);
              ("connect_ops", J.Int connects);
              ("total_ops", J.Int (Array.length ops));
            ] );
        ( "impls",
          J.List
            (List.map
               (fun (impl, dt, accepted, _, cps) ->
                 J.Obj
                   [
                     ("impl", J.String (impl_name impl));
                     ("elapsed_s", J.Float dt);
                     ("accepted", J.Int accepted);
                     ("connects_per_s", J.Float cps);
                   ])
               results) );
        ("routes_identical", J.Bool identical);
        ("speedup", J.Float speedup);
        ( "rearrangement",
          J.List
            (List.map
               (fun (n, k, m, sname, mean_us, admitted, moves) ->
                 J.Obj
                   [
                     ("n", J.Int n);
                     ("k", J.Int k);
                     ("m", J.Int m);
                     ("strategy", J.String sname);
                     ("mean_us", J.Float mean_us);
                     ("admitted", J.Bool admitted);
                     ("moves", J.Int moves);
                   ])
               rows) );
      ] ),
    (topo, ops, dt_bit) )

(* ----------------------------------------------------------------- *)
(* Persistence: WAL overhead, snapshot/restore throughput             *)
(* ----------------------------------------------------------------- *)

(* Replays the recorded trace once more (bitset) while logging every op
   to a live Store session — the difference against the no-persist
   replay is the WAL's per-op tax.  The final state then prices the
   snapshot path (encode + write, decode + restore) and a full
   record / recover cycle closes the loop: the recovered network must
   fingerprint identically to the one that never crashed. *)
let persistence_bench ~topo ~ops ~dt_baseline =
  section "Persistence (WAL overhead, snapshot/restore throughput)";
  let wal = "bench_wal.tmp" in
  let cleanup () =
    List.iter
      (fun p -> if Sys.file_exists p then Sys.remove p)
      (wal :: List.map (fun s -> Store.snapshot_path ~wal ~seq:s)
                (List.init 16 Fun.id))
  in
  cleanup ();
  (* same sink arrangement as the baseline replay, so the delta is the
     WAL's tax alone *)
  let net =
    Network.create
      ~config:
        {
          Network.Config.default with
          telemetry = Some (Wdm_telemetry.Sink.create ());
          link_impl = Some Network.Bitset;
        }
      ~construction:Network.Msw_dominant ~output_model:Model.MSW topo
  in
  let store = Store.start ~wal net in
  let t0 = Unix.gettimeofday () in
  Array.iter
    (fun op ->
      Store.log store op;
      ignore (Op.apply net op))
    ops;
  let dt_wal = Unix.gettimeofday () -. t0 in
  Store.checkpoint store net;
  let records = Store.wal_records store in
  let wal_bytes = Store.wal_offset store in
  let digest_live = Store.digest net in
  Store.close store;
  let overhead_pct = (dt_wal -. dt_baseline) /. dt_baseline *. 100. in
  Printf.printf
    "WAL: %d records, %d bytes; replay+log %.3f s vs %.3f s baseline \
     (%.1f%% overhead)\n"
    records wal_bytes dt_wal dt_baseline overhead_pct;
  let snap = Network.snapshot net in
  let state = Store.encode_state snap in
  let iters = 20 in
  let snap_tmp = wal ^ ".snapbench" in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    Store.write_snapshot ~path:snap_tmp ~seq:0 ~wal_offset:wal_bytes snap
  done;
  let write_ms = (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e3 in
  Sys.remove snap_tmp;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    match Store.decode_state state with
    | Ok s -> ignore (Network.restore s)
    | Error e -> failwith e
  done;
  let restore_ms = (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e3 in
  Printf.printf
    "snapshot: %d bytes, %d routes; write %.2f ms, decode+restore %.2f ms\n"
    (String.length state)
    (List.length snap.Network.s_routes)
    write_ms restore_ms;
  let replayed, digest_match =
    match Store.recover ~wal () with
    | Ok r -> (r.Store.replayed, Store.digest r.Store.network = digest_live)
    | Error e ->
      cleanup ();
      failwith (Format.asprintf "persistence_bench: %a" Store.pp_recovery_error e)
  in
  Printf.printf "recovery: %d ops replayed, digest match: %b\n\n" replayed
    digest_match;
  if not digest_match then begin
    cleanup ();
    failwith "persistence_bench: recovered network diverged from live state"
  end;
  cleanup ();
  ( "persistence",
    J.Obj
      [
        ( "wal",
          J.Obj
            [
              ("records", J.Int records);
              ("bytes", J.Int wal_bytes);
              ("elapsed_s", J.Float dt_wal);
              ("baseline_s", J.Float dt_baseline);
              ("overhead_pct", J.Float overhead_pct);
            ] );
        ( "snapshot",
          J.Obj
            [
              ("bytes", J.Int (String.length state));
              ("routes", J.Int (List.length snap.Network.s_routes));
              ("write_ms", J.Float write_ms);
              ("restore_ms", J.Float restore_ms);
            ] );
        ( "recovery",
          J.Obj
            [ ("replayed", J.Int replayed); ("digest_match", J.Bool digest_match) ]
        );
      ] )

(* ----------------------------------------------------------------- *)
(* Control-plane serving: requests/s over a loopback socket           *)
(* ----------------------------------------------------------------- *)

(* The same recorded trace, driven through `wdmnet serve`'s machinery
   over a unix socket by a single synchronous client — so the delta
   against the in-process replay prices the whole control-plane stack
   (framing, CRC, two context switches and the admission queue per
   request).  The served network must land on the same state digest as
   an in-process twin, which is the bench-level version of the
   socket-vs-in-process equivalence test.

   Two more passes ride on the event-driven server: the same trace
   shipped pipelined (Batch frames of up to 64 ops — one round-trip
   per batch instead of per op), and that pipelined pass repeated with
   ~10k idle connections parked on the loop, which prices readiness
   notification at scale (each idle conn is a buffer, not a thread). *)
let batch_chunk = 64

let serve_pipelined client ops =
  let answered = ref 0 in
  let n = Array.length ops in
  let t0 = Unix.gettimeofday () in
  let i = ref 0 in
  while !i < n do
    let take = min batch_chunk (n - !i) in
    let reqs = List.init take (fun j -> Resp.Admit ops.(!i + j)) in
    (match Client.request_batch client reqs with
    | Ok rs -> answered := !answered + List.length rs
    | Error e -> failwith ("serving_bench: " ^ Client.error_to_string e));
    i := !i + take
  done;
  (!answered, Unix.gettimeofday () -. t0)

(* Park [want] hello'd connections on the server's event loop; they
   are real protocol clients that simply never send a request. *)
let park_idle_conns addr want =
  let sockaddr =
    match addr with
    | Server.Unix_socket path -> Unix.ADDR_UNIX path
    | Server.Tcp (host, port) ->
      Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
  in
  let conns = ref [] in
  (try
     for _ = 1 to want do
       let fd =
         Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0
       in
       match
         Unix.connect fd sockaddr;
         Protocol.write_all fd Protocol.client_hello
       with
       | () -> conns := fd :: !conns
       | exception (Unix.Unix_error _ | Sys_error _) ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise Exit
     done
   with Exit -> ());
  !conns

let serving_bench ~topo ~ops ~dt_baseline =
  section "Control-plane serving (unix socket, single client)";
  let make () =
    Network.create
      ~config:
        {
          Network.Config.default with
          telemetry = Some (Wdm_telemetry.Sink.create ());
          link_impl = Some Network.Bitset;
        }
      ~construction:Network.Msw_dominant ~output_model:Model.MSW topo
  in
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wdm_bench_%d.sock" (Unix.getpid ()))
  in
  let dial srv =
    match Client.connect (Server.address srv) with
    | Ok c -> c
    | Error e ->
      Server.stop srv;
      failwith ("serving_bench: " ^ Client.error_to_string e)
  in
  let finish srv client =
    let digest =
      match Client.digest client with
      | Ok d -> d
      | Error e -> failwith ("serving_bench: " ^ Client.error_to_string e)
    in
    Client.close client;
    Server.stop srv;
    digest
  in
  let twin = make () in
  Array.iter (fun op -> ignore (Op.apply twin op)) ops;
  let twin_digest = Store.digest twin in
  (* pass 1: one request per round-trip *)
  let srv = Server.start ~net:(make ()) (Server.Unix_socket sock) in
  let client = dial srv in
  let answered = ref 0 in
  let t0 = Unix.gettimeofday () in
  Array.iter
    (fun op ->
      match Client.request client (Resp.Admit op) with
      | Ok _ -> incr answered
      | Error e -> failwith ("serving_bench: " ^ Client.error_to_string e))
    ops;
  let dt = Unix.gettimeofday () -. t0 in
  let digest = finish srv client in
  (* pass 2: pipelined, with up to ~10k idle connections parked on the
     loop (as many as the fd limit leaves headroom for) *)
  let want_idle = 10_000 in
  let idle_target =
    (* select's FD_SETSIZE would overflow; epoll has no such ceiling.
       Both ends of each parked connection live in this process, so a
       connection costs two fds against the limit. *)
    if Evloop.available_backend () <> "epoll" then 256
    else
      let limit = Evloop.ensure_fd_capacity ((2 * want_idle) + 256) in
      if limit < 0 then want_idle else max 0 (min want_idle ((limit - 256) / 2))
  in
  let pipelined_pass () =
    let srv2 = Server.start ~net:(make ()) (Server.Unix_socket sock) in
    let idle = park_idle_conns (Server.address srv2) idle_target in
    let client2 = dial srv2 in
    let answered_p, dt_pipe = serve_pipelined client2 ops in
    let idle_conns = List.length idle in
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      idle;
    let digest_p = finish srv2 client2 in
    (answered_p, dt_pipe, idle_conns, digest_p)
  in
  (* best of 3: a fresh server each time, so the digest gate holds on
     every attempt, not just the fastest *)
  let answered_p, dt_pipe, idle_conns, digest_p =
    let best = ref (pipelined_pass ()) in
    for _ = 2 to 3 do
      let (_, dt, _, _) as run = pipelined_pass () in
      let _, dt_best, _, _ = !best in
      let _, _, _, d = run in
      if d <> twin_digest then
        failwith "serving_bench: pipelined pass diverged from twin";
      if dt < dt_best then best := run
    done;
    !best
  in
  let digest_match = twin_digest = digest && twin_digest = digest_p in
  let rps = float_of_int !answered /. dt in
  let rps_pipe = float_of_int answered_p /. dt_pipe in
  let inproc = float_of_int (Array.length ops) /. dt_baseline in
  Printf.printf
    "served : %d requests in %.3f s  %8.0f requests/s\n" !answered dt rps;
  Printf.printf
    "pipelined: %d requests in %.3f s  %8.0f requests/s  (batch %d, %d idle conns, best of 3)\n"
    answered_p dt_pipe rps_pipe batch_chunk idle_conns;
  Printf.printf
    "inproc : %d ops      in %.3f s  %8.0f ops/s  (socket tax: %.1fx seq, %.1fx pipelined)\n"
    (Array.length ops) dt_baseline inproc (inproc /. rps) (inproc /. rps_pipe);
  Printf.printf "digest match vs in-process twin: %b\n\n" digest_match;
  if not digest_match then
    failwith "serving_bench: served network diverged from in-process twin";
  ( "serving",
    J.Obj
      [
        ("requests", J.Int !answered);
        ("elapsed_s", J.Float dt);
        ("requests_per_s", J.Float rps);
        ("pipelined_requests_per_s", J.Float rps_pipe);
        ("pipelined_slowdown", J.Float (inproc /. rps_pipe));
        ("idle_conns", J.Int idle_conns);
        ("inproc_ops_per_s", J.Float inproc);
        ("slowdown", J.Float (inproc /. rps));
        ("digest_match", J.Bool digest_match);
      ] )

(* ----------------------------------------------------------------- *)
(* Replication: leader throughput with one follower attached          *)
(* ----------------------------------------------------------------- *)

(* The cost of shipping the committed-op stream: the same request
   array served by a standalone leader and by a leader with one live
   follower, plus how far the follower trailed when the last response
   landed and how long the gap took to drain.  Digest equality across
   the pair is the correctness gate. *)
let replication_bench ~topo ~ops =
  section "Replication (leader + 1 follower, unix sockets)";
  let make () =
    Network.create
      ~config:
        {
          Network.Config.default with
          telemetry = Some (Wdm_telemetry.Sink.create ());
          link_impl = Some Network.Bitset;
        }
      ~construction:Network.Msw_dominant ~output_model:Model.MSW topo
  in
  let sock tag =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wdm_bench_%s_%d.sock" tag (Unix.getpid ()))
  in
  let drive srv =
    let client =
      match Client.connect (Server.address srv) with
      | Ok c -> c
      | Error e ->
        Server.stop srv;
        failwith ("replication_bench: " ^ Client.error_to_string e)
    in
    let answered = ref 0 in
    let t0 = Unix.gettimeofday () in
    Array.iter
      (fun op ->
        match Client.request client (Resp.Admit op) with
        | Ok _ -> incr answered
        | Error e -> failwith ("replication_bench: " ^ Client.error_to_string e))
      ops;
    let dt = Unix.gettimeofday () -. t0 in
    (client, !answered, dt)
  in
  let digest_of client =
    match Client.digest client with
    | Ok d -> d
    | Error e -> failwith ("replication_bench: " ^ Client.error_to_string e)
  in
  (* standalone baseline *)
  let alone = Server.start ~net:(make ()) (Server.Unix_socket (sock "alone")) in
  let c0, answered, dt_alone = drive alone in
  Client.close c0;
  Server.stop alone;
  (* the same stream with a follower subscribed *)
  let leader =
    Server.start ~net:(make ()) (Server.Unix_socket (sock "leader"))
  in
  let follower =
    Server.start
      ~follower:{ Server.leader = Server.address leader; wal = None }
      ~net:(make ())
      (Server.Unix_socket (sock "follower"))
  in
  let c1, _, dt_repl = drive leader in
  let target = Server.applied leader in
  let lag = max 0 (target - Server.applied follower) in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. 30.0 in
  while Server.applied follower < target && Unix.gettimeofday () < deadline do
    Thread.delay 0.001
  done;
  let catchup = Unix.gettimeofday () -. t0 in
  if Server.applied follower < target then
    failwith "replication_bench: follower never caught up";
  let leader_digest = digest_of c1 in
  Client.close c1;
  let follower_digest =
    match Client.connect (Server.address follower) with
    | Ok c ->
      let d = digest_of c in
      Client.close c;
      d
    | Error e -> failwith ("replication_bench: " ^ Client.error_to_string e)
  in
  Server.stop leader;
  Server.stop follower;
  let digest_match = leader_digest = follower_digest in
  let rps_alone = float_of_int answered /. dt_alone in
  let rps_repl = float_of_int answered /. dt_repl in
  let overhead_pct = (dt_repl -. dt_alone) /. dt_alone *. 100. in
  Printf.printf
    "standalone : %d requests in %.3f s  %8.0f requests/s\n" answered dt_alone
    rps_alone;
  Printf.printf
    "replicated : %d requests in %.3f s  %8.0f requests/s  (overhead: %.1f%%)\n"
    answered dt_repl rps_repl overhead_pct;
  Printf.printf "follower lag at completion: %d ops, drained in %.3f s\n" lag
    catchup;
  Printf.printf "digest match leader vs follower: %b\n\n" digest_match;
  if not digest_match then
    failwith "replication_bench: follower state diverged from the leader";
  ( "replication",
    J.Obj
      [
        ("requests", J.Int answered);
        ("standalone_requests_per_s", J.Float rps_alone);
        ("replicated_requests_per_s", J.Float rps_repl);
        ("overhead_pct", J.Float overhead_pct);
        ("follower_lag_ops", J.Int lag);
        ("catchup_s", J.Float catchup);
        ("digest_match", J.Bool digest_match);
      ] )

(* ----------------------------------------------------------------- *)
(* Request-stage latency: where a served request spends its time      *)
(* ----------------------------------------------------------------- *)

(* The serving trace again, but with telemetry attached so every
   request is decomposed into decode / queue / execute / wal /
   replicate / respond stage histograms (DESIGN.md §11), reported as
   p50/p95/p99 per stage.  The same trace also runs with telemetry
   off: the delta prices what tracing costs when nothing subscribes —
   the disabled path takes no timestamps at all, so the overhead
   should vanish into run-to-run noise (gate: <= 3% on the best of
   [repeats] runs each way). *)
let stage_latency_bench ~topo ~ops =
  section "Request-stage latency (traced serving, unix socket)";
  let module Tel = Wdm_telemetry in
  let make () =
    Network.create
      ~config:
        {
          Network.Config.default with
          telemetry = Some (Tel.Sink.create ());
          link_impl = Some Network.Bitset;
        }
      ~construction:Network.Msw_dominant ~output_model:Model.MSW topo
  in
  let sock tag =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wdm_bench_stage_%s_%d.sock" tag (Unix.getpid ()))
  in
  let serve_once ?telemetry tag =
    let srv =
      Server.start ?telemetry ~net:(make ()) (Server.Unix_socket (sock tag))
    in
    let client =
      match Client.connect (Server.address srv) with
      | Ok c -> c
      | Error e ->
        Server.stop srv;
        failwith ("stage_latency_bench: " ^ Client.error_to_string e)
    in
    let t0 = Unix.gettimeofday () in
    Array.iter
      (fun op ->
        match Client.request client (Resp.Admit op) with
        | Ok _ -> ()
        | Error e ->
          failwith ("stage_latency_bench: " ^ Client.error_to_string e))
      ops;
    let dt = Unix.gettimeofday () -. t0 in
    Client.close client;
    Server.stop srv;
    dt
  in
  let repeats = 3 in
  let best f =
    let rec go n acc = if n = 0 then acc else go (n - 1) (min acc (f ())) in
    go (repeats - 1) (f ())
  in
  let dt_off = best (fun () -> serve_once "off") in
  (* a fresh sink per traced run so the reported histograms cover
     exactly one pass of the trace; timing still takes the best run *)
  let last_sink = ref None in
  let dt_on =
    best (fun () ->
        let sink = Tel.Sink.create () in
        last_sink := Some sink;
        serve_once ~telemetry:sink "on")
  in
  let snap =
    match !last_sink with
    | Some sink -> Tel.Sink.snapshot sink
    | None -> assert false
  in
  let requests = Array.length ops in
  let overhead_pct = (dt_on -. dt_off) /. dt_off *. 100. in
  let overhead_ok = overhead_pct <= 3.0 in
  let stage_names =
    [ "decode"; "queue"; "execute"; "wal"; "replicate"; "respond" ]
  in
  let stage_hist name =
    let metric =
      if name = "total" then "server_request_latency_seconds"
      else Printf.sprintf "server_stage_%s_seconds" name
    in
    Tel.Metrics.find_histogram snap metric
  in
  Printf.printf "%-10s %8s %12s %12s %12s\n" "stage" "count" "p50" "p95" "p99";
  let row name =
    match stage_hist name with
    | None -> (name, J.Null)
    | Some h ->
      let q p = Tel.Histogram.quantile h p in
      let show = function
        | Some v -> Printf.sprintf "<=%.1f us" (v *. 1e6)
        | None -> "n/a"
      in
      Printf.printf "%-10s %8d %12s %12s %12s\n" name h.Tel.Histogram.count
        (show (q 0.5)) (show (q 0.95)) (show (q 0.99));
      let num = function Some v -> J.Float v | None -> J.Null in
      ( name,
        J.Obj
          [
            ("count", J.Int h.Tel.Histogram.count);
            ("p50_s", num (q 0.5));
            ("p95_s", num (q 0.95));
            ("p99_s", num (q 0.99));
          ] )
  in
  let stages = List.map row (stage_names @ [ "total" ]) in
  Printf.printf
    "\ntraced  : %d requests in %.3f s  %8.0f requests/s\n" requests dt_on
    (float_of_int requests /. dt_on);
  Printf.printf
    "untraced: %d requests in %.3f s  %8.0f requests/s  (tracing overhead: \
     %.1f%%, best of %d)\n\n"
    requests dt_off
    (float_of_int requests /. dt_off)
    overhead_pct repeats;
  ( "stage_latency",
    J.Obj
      [
        ("requests", J.Int requests);
        ("stages", J.Obj stages);
        ("traced_s", J.Float dt_on);
        ("untraced_s", J.Float dt_off);
        ("overhead_pct", J.Float overhead_pct);
        ("overhead_ok", J.Bool overhead_ok);
      ] )

(* ----------------------------------------------------------------- *)
(* bechamel micro-benchmarks                                          *)
(* ----------------------------------------------------------------- *)

let micro_benchmarks ~quick () =
  section "Micro-benchmarks (bechamel)";
  let open Bechamel in
  let open Toolkit in
  (* Each entry carries the parameters the operation ran at, so the
     machine-readable results identify the instance without parsing the
     display name (schema: EXPERIMENTS.md). *)
  let tests =
    [
      ( [ ("n", 16); ("k", 4) ],
        Test.make ~name:"capacity: MSDW any N=16 k=4"
          (Staged.stage (fun () -> Capacity.msdw_any ~n:16 ~k:4)) );
      ( [ ("n", 64); ("k", 8) ],
        Test.make ~name:"capacity: MAW full N=64 k=8"
          (Staged.stage (fun () -> Capacity.maw_full ~n:64 ~k:8)) );
      ( [ ("n", 2); ("k", 2) ],
        Test.make ~name:"census: MAW N=2 k=2"
          (Staged.stage (fun () ->
               Enumerate.census (Network_spec.make_exn ~n:2 ~k:2) Model.MAW)) );
      ( [ ("n", 16); ("k", 2); ("m", 13) ],
        let topo = Topology.make_exn ~n:4 ~m:13 ~r:4 ~k:2 in
        let net =
          Network.create ~construction:Network.Msw_dominant
            ~output_model:Model.MSW topo
        in
        let conn =
          Connection.make_exn
            ~source:(Endpoint.make ~port:1 ~wl:1)
            ~destinations:
              [
                Endpoint.make ~port:1 ~wl:1;
                Endpoint.make ~port:5 ~wl:1;
                Endpoint.make ~port:9 ~wl:1;
                Endpoint.make ~port:13 ~wl:1;
              ]
        in
        Test.make ~name:"routing: connect+disconnect fanout-4 (N=16)"
          (Staged.stage (fun () ->
               match Network.connect net conn with
               | Ok route -> ignore (Network.disconnect net route.Network.id)
               | Error _ -> assert false)) );
      ( [ ("n", 4); ("k", 2) ],
        let spec = Network_spec.make_exn ~n:4 ~k:2 in
        let fabric = Wdm_crossbar.Fabric.create ~model:Model.MAW spec in
        let rng = Random.State.make [| 7 |] in
        let a = Wdm_traffic.Generator.random_full_assignment rng spec Model.MAW in
        Test.make ~name:"fabric: realize full assignment (Fig 7, N=4 k=2)"
          (Staged.stage (fun () ->
               match Wdm_crossbar.Fabric.realize fabric a with
               | Ok _ -> ()
               | Error _ -> assert false)) );
      ( [ ("n", 64); ("k", 4) ],
        let a =
          Multiset.of_list ~r:64 ~k:4 (List.init 64 (fun i -> (i mod 64) + 1))
        in
        let b =
          Multiset.of_list ~r:64 ~k:4 (List.init 32 (fun i -> (i mod 32) + 1))
        in
        Test.make ~name:"multiset: inter r=64"
          (Staged.stage (fun () -> Multiset.inter a b)) );
      ( [ ("n", 1024) ],
        Test.make ~name:"conditions: Theorem 1 n=r=1024"
          (Staged.stage (fun () -> Conditions.msw_dominant ~n:1024 ~r:1024)) );
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if quick then 0.1 else 0.5))
      ~stabilize:true ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let rows =
    List.concat_map
      (fun (params, test) ->
        let results = Benchmark.all cfg instances test in
        let analyzed = Analyze.all ols Instance.monotonic_clock results in
        Hashtbl.fold
          (fun name ols_result acc ->
            let mean_ns =
              match Analyze.OLS.estimates ols_result with
              | Some [ e ] -> Some e
              | _ -> None
            in
            let iterations =
              match Hashtbl.find_opt results name with
              | Some (b : Benchmark.t) -> b.stats.samples
              | None -> 0
            in
            Printf.printf "%-50s %s\n" name
              (match mean_ns with
              | Some e -> Printf.sprintf "%.1f ns/run" e
              | None -> "n/a");
            (name, params, mean_ns, iterations) :: acc)
          analyzed []
        |> List.rev)
      tests
  in
  Printf.printf "\n%d micro-benchmarks measured\n\n" (List.length rows);
  ( "benchmarks",
    J.List
      (List.map
         (fun (name, params, mean_ns, iterations) ->
           J.Obj
             [
               ("name", J.String name);
               ("params", J.Obj (List.map (fun (p, v) -> (p, J.Int v)) params));
               ( "mean_ns",
                 match mean_ns with Some e -> J.Float e | None -> J.Null );
               ("iterations", J.Int iterations);
             ])
         rows) )

(* ----------------------------------------------------------------- *)
(* Mesh RWA blocking probability (Erlang campaign)                    *)
(* ----------------------------------------------------------------- *)

module Campaign = Wdm_mesh.Campaign
module Assign = Wdm_mesh.Assign

(* The graph-based RWA engine priced under load: blocking probability
   vs offered Erlangs across topologies and assignment strategies.
   Cells are seed-reproducible, so the emitted table doubles as a
   regression anchor for the mesh routing stack. *)
let mesh_blocking_bench ~quick () =
  section "Mesh RWA blocking probability (Erlang campaign)";
  let spec = if quick then Campaign.quick else Campaign.default in
  match Campaign.run spec with
  | Error e -> failwith ("mesh_blocking: " ^ e)
  | Ok cells ->
    Format.printf "%a@." Campaign.pp_table cells;
    ( "mesh_blocking",
      J.Obj
        [
          ("seed", J.Int spec.Campaign.seed);
          ("wavelengths", J.Int spec.Campaign.k);
          ("arrivals_per_cell", J.Int spec.Campaign.arrivals);
          ( "cells",
            J.List
              (List.map
                 (fun (c : Campaign.cell) ->
                   let p = c.Campaign.point in
                   J.Obj
                     [
                       ("topo", J.String c.Campaign.topo);
                       ( "strategy",
                         J.String (Assign.strategy_to_string c.Campaign.strategy)
                       );
                       ("erlangs", J.Float p.Wdm_traffic.Erlang.offered_erlangs);
                       ("arrivals", J.Int p.Wdm_traffic.Erlang.arrivals);
                       ("accepted", J.Int p.Wdm_traffic.Erlang.accepted);
                       ("blocked", J.Int p.Wdm_traffic.Erlang.blocked);
                       ("blocking", J.Float p.Wdm_traffic.Erlang.blocking);
                       ("mean_active", J.Float p.Wdm_traffic.Erlang.mean_active);
                     ])
                 cells) );
        ] )

(* ----------------------------------------------------------------- *)
(* Strategy racing (plug-in lab)                                      *)
(* ----------------------------------------------------------------- *)

module Lab_compare = Wdm_lab.Compare

(* Every registered lab strategy raced over identical per-workload
   seeded traffic on both engines — the acceptance table for the
   routing-strategy plug-in API.  The per-cell RNG never sees the
   strategy, so any cell reproduces on its own. *)
let strategy_compare_bench ~quick () =
  section "Strategy racing (plug-in lab)";
  let spec = if quick then Lab_compare.quick else Lab_compare.default in
  match Lab_compare.run spec with
  | Error e -> failwith ("strategy_compare: " ^ e)
  | Ok cells ->
    Format.printf "%a@." Lab_compare.pp_table cells;
    ( "strategy_compare",
      J.Obj
        [
          ("seed", J.Int spec.Lab_compare.seed);
          ( "strategies",
            J.List
              (List.map (fun s -> J.String s) spec.Lab_compare.strategies) );
          ( "cells",
            J.List
              (List.map
                 (fun (c : Lab_compare.cell) ->
                   J.Obj
                     [
                       ("engine", J.String c.Lab_compare.engine);
                       ("workload", J.String c.Lab_compare.workload);
                       ("strategy", J.String c.Lab_compare.strategy);
                       ("attempts", J.Int c.Lab_compare.attempts);
                       ("accepted", J.Int c.Lab_compare.accepted);
                       ("blocked", J.Int c.Lab_compare.blocked);
                       ("blocking", J.Float c.Lab_compare.blocking);
                       ("mean_connect_us", J.Float c.Lab_compare.mean_connect_us);
                     ])
                 cells) );
        ] )

let write_results fragments =
  let oc = open_out "BENCH_results.json" in
  output_string oc (J.to_string (J.Obj fragments));
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote BENCH_results.json (%s)\n"
    (String.concat ", " (List.map fst fragments))

(* ----------------------------------------------------------------- *)
(* Schema validation (CI gate on BENCH_results.json)                  *)
(* ----------------------------------------------------------------- *)

let validate_results path =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let ( let* ) = Result.bind in
  let read () =
    let ic = open_in path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  in
  let require what = function Some v -> Ok v | None -> fail "missing %s" what in
  let number what j =
    match J.to_float_opt j with
    | Some _ -> Ok ()
    | None -> fail "%s is not a number" what
  in
  let check_benchmark i j =
    let ctx = Printf.sprintf "benchmarks[%d]" i in
    let* name = require (ctx ^ ".name") (J.member "name" j) in
    let* _ =
      match J.to_string_opt name with
      | Some _ -> Ok ()
      | None -> fail "%s.name is not a string" ctx
    in
    let* params = require (ctx ^ ".params") (J.member "params" j) in
    let* _ =
      match params with
      | J.Obj _ -> Ok ()
      | _ -> fail "%s.params is not an object" ctx
    in
    let* mean = require (ctx ^ ".mean_ns") (J.member "mean_ns" j) in
    let* _ =
      match mean with J.Null -> Ok () | j -> number (ctx ^ ".mean_ns") j
    in
    let* iters = require (ctx ^ ".iterations") (J.member "iterations" j) in
    match J.to_int iters with
    | Some _ -> Ok ()
    | None -> fail "%s.iterations is not an int" ctx
  in
  let check_impl i j =
    let ctx = Printf.sprintf "routing_throughput.impls[%d]" i in
    let* impl = require (ctx ^ ".impl") (J.member "impl" j) in
    let* _ =
      match J.to_string_opt impl with
      | Some ("bitset" | "reference") -> Ok ()
      | Some other -> fail "%s.impl: unknown implementation %S" ctx other
      | None -> fail "%s.impl is not a string" ctx
    in
    let* elapsed = require (ctx ^ ".elapsed_s") (J.member "elapsed_s" j) in
    let* () = number (ctx ^ ".elapsed_s") elapsed in
    let* cps = require (ctx ^ ".connects_per_s") (J.member "connects_per_s" j) in
    number (ctx ^ ".connects_per_s") cps
  in
  let result =
    let* doc =
      match J.parse (read ()) with
      | Ok d -> Ok d
      | Error e -> fail "JSON parse error: %s" e
    in
    let* benches = require "benchmarks" (J.member "benchmarks" doc) in
    let* benches =
      require "benchmarks as a list" (J.to_list benches)
    in
    let* () =
      List.fold_left
        (fun acc (i, b) -> Result.bind acc (fun () -> check_benchmark i b))
        (Ok ())
        (List.mapi (fun i b -> (i, b)) benches)
    in
    let* rt = require "routing_throughput" (J.member "routing_throughput" doc) in
    let* params = require "routing_throughput.params" (J.member "params" rt) in
    let* () =
      List.fold_left
        (fun acc key ->
          Result.bind acc (fun () ->
              match Option.bind (J.member key params) J.to_int with
              | Some _ -> Ok ()
              | None -> fail "routing_throughput.params.%s missing" key))
        (Ok ())
        [ "big_n"; "n"; "r"; "k"; "m"; "connect_ops"; "total_ops" ]
    in
    let* impls = require "routing_throughput.impls" (J.member "impls" rt) in
    let* impls = require "impls as a list" (J.to_list impls) in
    let* () =
      if List.length impls >= 2 then Ok ()
      else fail "routing_throughput.impls must cover both implementations"
    in
    let* () =
      List.fold_left
        (fun acc (i, j) -> Result.bind acc (fun () -> check_impl i j))
        (Ok ())
        (List.mapi (fun i j -> (i, j)) impls)
    in
    let* identical =
      require "routing_throughput.routes_identical"
        (J.member "routes_identical" rt)
    in
    let* () =
      match identical with
      | J.Bool true -> Ok ()
      | J.Bool false -> fail "routes_identical is false: implementations diverged"
      | _ -> fail "routes_identical is not a bool"
    in
    let* speedup = require "routing_throughput.speedup" (J.member "speedup" rt) in
    let* () = number "routing_throughput.speedup" speedup in
    let* rearr =
      require "routing_throughput.rearrangement" (J.member "rearrangement" rt)
    in
    let* _ = require "rearrangement as a list" (J.to_list rearr) in
    let* persist = require "persistence" (J.member "persistence" doc) in
    let* wal = require "persistence.wal" (J.member "wal" persist) in
    let* () =
      List.fold_left
        (fun acc key ->
          Result.bind acc (fun () ->
              match J.member key wal with
              | Some j -> number (Printf.sprintf "persistence.wal.%s" key) j
              | None -> fail "persistence.wal.%s missing" key))
        (Ok ())
        [ "records"; "bytes"; "elapsed_s"; "baseline_s"; "overhead_pct" ]
    in
    let* snap = require "persistence.snapshot" (J.member "snapshot" persist) in
    let* () =
      List.fold_left
        (fun acc key ->
          Result.bind acc (fun () ->
              match J.member key snap with
              | Some j -> number (Printf.sprintf "persistence.snapshot.%s" key) j
              | None -> fail "persistence.snapshot.%s missing" key))
        (Ok ())
        [ "bytes"; "routes"; "write_ms"; "restore_ms" ]
    in
    let* recov = require "persistence.recovery" (J.member "recovery" persist) in
    let* dm =
      require "persistence.recovery.digest_match" (J.member "digest_match" recov)
    in
    let* () =
      match dm with
      | J.Bool true -> Ok ()
      | J.Bool false -> fail "recovery.digest_match is false: recovery diverged"
      | _ -> fail "recovery.digest_match is not a bool"
    in
    let* serving = require "serving" (J.member "serving" doc) in
    let* () =
      List.fold_left
        (fun acc key ->
          Result.bind acc (fun () ->
              match J.member key serving with
              | Some j -> number (Printf.sprintf "serving.%s" key) j
              | None -> fail "serving.%s missing" key))
        (Ok ())
        [
          "requests";
          "elapsed_s";
          "requests_per_s";
          "pipelined_requests_per_s";
          "pipelined_slowdown";
          "idle_conns";
          "inproc_ops_per_s";
          "slowdown";
        ]
    in
    let* sdm = require "serving.digest_match" (J.member "digest_match" serving) in
    let* () =
      match sdm with
      | J.Bool true -> Ok ()
      | J.Bool false ->
        fail "serving.digest_match is false: served state diverged"
      | _ -> fail "serving.digest_match is not a bool"
    in
    let* stages = require "stage_latency" (J.member "stage_latency" doc) in
    let* () =
      List.fold_left
        (fun acc key ->
          Result.bind acc (fun () ->
              match J.member key stages with
              | Some j -> number (Printf.sprintf "stage_latency.%s" key) j
              | None -> fail "stage_latency.%s missing" key))
        (Ok ())
        [ "requests"; "traced_s"; "untraced_s"; "overhead_pct" ]
    in
    let* ook =
      require "stage_latency.overhead_ok" (J.member "overhead_ok" stages)
    in
    let* () =
      match ook with
      | J.Bool _ -> Ok ()
      | _ -> fail "stage_latency.overhead_ok is not a bool"
    in
    let* sobj = require "stage_latency.stages" (J.member "stages" stages) in
    let* () =
      List.fold_left
        (fun acc stage ->
          Result.bind acc (fun () ->
              let ctx = Printf.sprintf "stage_latency.stages.%s" stage in
              let* s = require ctx (J.member stage sobj) in
              let* count = require (ctx ^ ".count") (J.member "count" s) in
              let* () =
                match J.to_int count with
                | Some _ -> Ok ()
                | None -> fail "%s.count is not an int" ctx
              in
              List.fold_left
                (fun acc key ->
                  Result.bind acc (fun () ->
                      match J.member key s with
                      | Some J.Null -> Ok ()  (* empty histogram *)
                      | Some j -> number (Printf.sprintf "%s.%s" ctx key) j
                      | None -> fail "%s.%s missing" ctx key))
                (Ok ())
                [ "p50_s"; "p95_s"; "p99_s" ]))
        (Ok ())
        [ "decode"; "queue"; "execute"; "wal"; "replicate"; "respond"; "total" ]
    in
    let* repl = require "replication" (J.member "replication" doc) in
    let* () =
      List.fold_left
        (fun acc key ->
          Result.bind acc (fun () ->
              match J.member key repl with
              | Some j -> number (Printf.sprintf "replication.%s" key) j
              | None -> fail "replication.%s missing" key))
        (Ok ())
        [
          "requests"; "standalone_requests_per_s"; "replicated_requests_per_s";
          "overhead_pct"; "follower_lag_ops"; "catchup_s";
        ]
    in
    let* rdm =
      require "replication.digest_match" (J.member "digest_match" repl)
    in
    let* () =
      match rdm with
      | J.Bool true -> Ok ()
      | J.Bool false ->
        fail "replication.digest_match is false: the follower diverged"
      | _ -> fail "replication.digest_match is not a bool"
    in
    let* mesh = require "mesh_blocking" (J.member "mesh_blocking" doc) in
    let* () =
      List.fold_left
        (fun acc key ->
          Result.bind acc (fun () ->
              match Option.bind (J.member key mesh) J.to_int with
              | Some _ -> Ok ()
              | None -> fail "mesh_blocking.%s missing" key))
        (Ok ())
        [ "seed"; "wavelengths"; "arrivals_per_cell" ]
    in
    let* cells = require "mesh_blocking.cells" (J.member "cells" mesh) in
    let* cells = require "mesh_blocking.cells as a list" (J.to_list cells) in
    let check_cell i j =
      let ctx = Printf.sprintf "mesh_blocking.cells[%d]" i in
      let* () =
        List.fold_left
          (fun acc key ->
            Result.bind acc (fun () ->
                match Option.bind (J.member key j) J.to_string_opt with
                | Some _ -> Ok ()
                | None -> fail "%s.%s is not a string" ctx key))
          (Ok ())
          [ "topo"; "strategy" ]
      in
      let* () =
        List.fold_left
          (fun acc key ->
            Result.bind acc (fun () ->
                match Option.bind (J.member key j) J.to_int with
                | Some _ -> Ok ()
                | None -> fail "%s.%s is not an int" ctx key))
          (Ok ())
          [ "arrivals"; "accepted"; "blocked" ]
      in
      let* () =
        List.fold_left
          (fun acc key ->
            Result.bind acc (fun () ->
                match J.member key j with
                | Some v -> number (Printf.sprintf "%s.%s" ctx key) v
                | None -> fail "%s.%s missing" ctx key))
          (Ok ())
          [ "erlangs"; "blocking"; "mean_active" ]
      in
      let* () =
        match Option.bind (J.member "blocking" j) J.to_float_opt with
        | Some pb when pb >= 0. && pb <= 1. -> Ok ()
        | Some pb -> fail "%s.blocking %.3f outside [0,1]" ctx pb
        | None -> fail "%s.blocking is not a number" ctx
      in
      let geti key = Option.bind (J.member key j) J.to_int in
      match (geti "arrivals", geti "accepted", geti "blocked") with
      | Some a, Some ok, Some b when a = ok + b -> Ok ()
      | Some a, Some ok, Some b ->
        fail "%s: arrivals %d <> accepted %d + blocked %d" ctx a ok b
      | _ -> fail "%s: arrival counts are not ints" ctx
    in
    let* () =
      List.fold_left
        (fun acc (i, j) -> Result.bind acc (fun () -> check_cell i j))
        (Ok ())
        (List.mapi (fun i j -> (i, j)) cells)
    in
    let distinct key =
      List.sort_uniq compare
        (List.filter_map
           (fun j -> Option.bind (J.member key j) J.to_string_opt)
           cells)
    in
    let* () =
      if List.length (distinct "topo") >= 2 then Ok ()
      else fail "mesh_blocking must cover at least 2 topologies"
    in
    let* () =
      if List.length (distinct "strategy") >= 2 then Ok ()
      else fail "mesh_blocking must cover at least 2 assignment strategies"
    in
    let* cmp = require "strategy_compare" (J.member "strategy_compare" doc) in
    let* () =
      match Option.bind (J.member "seed" cmp) J.to_int with
      | Some _ -> Ok ()
      | None -> fail "strategy_compare.seed missing"
    in
    let* ccells = require "strategy_compare.cells" (J.member "cells" cmp) in
    let* ccells =
      require "strategy_compare.cells as a list" (J.to_list ccells)
    in
    let check_compare_cell i j =
      let ctx = Printf.sprintf "strategy_compare.cells[%d]" i in
      let* () =
        List.fold_left
          (fun acc key ->
            Result.bind acc (fun () ->
                match Option.bind (J.member key j) J.to_string_opt with
                | Some _ -> Ok ()
                | None -> fail "%s.%s is not a string" ctx key))
          (Ok ())
          [ "engine"; "workload"; "strategy" ]
      in
      let* () =
        match Option.bind (J.member "mean_connect_us" j) J.to_float_opt with
        | Some us when us >= 0. -> Ok ()
        | Some us -> fail "%s.mean_connect_us %.1f is negative" ctx us
        | None -> fail "%s.mean_connect_us is not a number" ctx
      in
      let* () =
        match Option.bind (J.member "blocking" j) J.to_float_opt with
        | Some pb when pb >= 0. && pb <= 1. -> Ok ()
        | Some pb -> fail "%s.blocking %.3f outside [0,1]" ctx pb
        | None -> fail "%s.blocking is not a number" ctx
      in
      let geti key = Option.bind (J.member key j) J.to_int in
      match (geti "attempts", geti "accepted", geti "blocked") with
      | Some a, Some ok, Some b when a = ok + b -> Ok ()
      | Some a, Some ok, Some b ->
        fail "%s: attempts %d <> accepted %d + blocked %d" ctx a ok b
      | _ -> fail "%s: attempt counts are not ints" ctx
    in
    let* () =
      List.fold_left
        (fun acc (i, j) -> Result.bind acc (fun () -> check_compare_cell i j))
        (Ok ())
        (List.mapi (fun i j -> (i, j)) ccells)
    in
    let distinct_cmp key =
      List.sort_uniq compare
        (List.filter_map
           (fun j -> Option.bind (J.member key j) J.to_string_opt)
           ccells)
    in
    let* () =
      if List.length (distinct_cmp "strategy") >= 2 then Ok ()
      else fail "strategy_compare must race at least 2 strategies"
    in
    let* () =
      if List.length (distinct_cmp "workload") >= 2 then Ok ()
      else fail "strategy_compare must cover at least 2 workloads"
    in
    let* () =
      if List.length (distinct_cmp "engine") >= 2 then Ok ()
      else fail "strategy_compare must exercise both engines"
    in
    Ok (List.length benches, List.length impls)
  in
  match result with
  | Ok (nb, ni) ->
    Printf.printf "%s: schema ok (%d micro-benchmarks, %d routing impls)\n" path
      nb ni
  | Error e ->
    Printf.eprintf "%s: schema violation: %s\n" path e;
    exit 1

let full () =
  table1 ();
  table2 ();
  fabric_census ();
  power_budget ();
  crosstalk_margin ();
  theorem_sweeps ();
  crossover ();
  capacity_growth ();
  fig10 ();
  blocking ();
  x_limit_ablation ();
  fault_tolerance ();
  sparse_conversion ();
  recursive_stages ();
  recursive_routing ();
  fig3_converters ();
  frontier ();
  exact_frontier ();
  blocking_vs_load ();
  let rt, (topo, ops, dt_bit) = routing_throughput ~quick:false () in
  let persist = persistence_bench ~topo ~ops ~dt_baseline:dt_bit in
  let serving = serving_bench ~topo ~ops ~dt_baseline:dt_bit in
  let stages = stage_latency_bench ~topo ~ops in
  let repl = replication_bench ~topo ~ops in
  let micro = micro_benchmarks ~quick:false () in
  let meshb = mesh_blocking_bench ~quick:false () in
  let cmp = strategy_compare_bench ~quick:false () in
  write_results [ micro; rt; persist; serving; stages; repl; meshb; cmp ];
  print_endline "All reproduction sections completed."

(* --quick runs just the machine-readable sections at reduced sizes —
   the CI profile: fast enough for every push, still ends with a
   BENCH_results.json that --validate can gate on. *)
let quick () =
  let rt, (topo, ops, dt_bit) = routing_throughput ~quick:true () in
  let persist = persistence_bench ~topo ~ops ~dt_baseline:dt_bit in
  let serving = serving_bench ~topo ~ops ~dt_baseline:dt_bit in
  let stages = stage_latency_bench ~topo ~ops in
  let repl = replication_bench ~topo ~ops in
  let micro = micro_benchmarks ~quick:true () in
  let meshb = mesh_blocking_bench ~quick:true () in
  let cmp = strategy_compare_bench ~quick:true () in
  write_results [ micro; rt; persist; serving; stages; repl; meshb; cmp ];
  print_endline "Quick bench profile completed."

let () =
  match Array.to_list Sys.argv with
  | _ :: "--quick" :: _ -> quick ()
  | _ :: "--validate" :: path :: _ -> validate_results path
  | _ :: "--validate" :: [] -> validate_results "BENCH_results.json"
  | _ -> full ()
