open Wdm_core

type stats = {
  attempts : int;
  accepted : int;
  blocked : int;
  torn_down : int;
  peak_active : int;
}

type ('id, 'err) sut = {
  connect : Connection.t -> ('id, 'err) result;
  disconnect : 'id -> unit;
}

type ('id, 'err, 'fault) faulty_sut = {
  base : ('id, 'err) sut;
  inject : 'fault -> Connection.t list;
  clear : 'fault -> unit;
  reconnect : Connection.t -> ('id, 'err) result;
}

type fault_stats = {
  churn : stats;
  injected : int;
  cleared : int;
  victims : int;
  repaired : int;
  dropped : int;
  degraded_attempts : int;
  blocked_degraded : int;
}

type persist_policy = Every_n_ops of int | Every_seconds of float
type persist = { policy : persist_policy; checkpoint : ops:int -> unit }

module Tel = Wdm_telemetry

(* The driver's tallies ARE telemetry counters: with [?telemetry] the
   caller's sink sees them live (and keeps accumulating across runs);
   without, a private sink backs the returned stats and is dropped.
   Counters never touch the RNG, so the instrumented and plain paths
   replay identically from the same seed — the telemetry tests check
   that. *)
type driver_instruments = {
  sink : Tel.Sink.t;
  attempts_c : Tel.Metrics.counter;
  accepted_c : Tel.Metrics.counter;
  blocked_c : Tel.Metrics.counter;
  torn_down_c : Tel.Metrics.counter;
  injected_c : Tel.Metrics.counter;
  cleared_c : Tel.Metrics.counter;
  victims_c : Tel.Metrics.counter;
  repaired_c : Tel.Metrics.counter;
  dropped_c : Tel.Metrics.counter;
  degraded_attempts_c : Tel.Metrics.counter;
  blocked_degraded_c : Tel.Metrics.counter;
  g_active : Tel.Metrics.gauge;
  g_peak : Tel.Metrics.gauge;
}

let driver_instruments telemetry =
  let sink =
    match telemetry with Some s -> s | None -> Tel.Sink.create ()
  in
  let reg = sink.Tel.Sink.metrics in
  let c help name = Tel.Metrics.counter reg ~help name in
  {
    sink;
    attempts_c = c "Setup attempts issued by the driver" "churn_attempts_total";
    accepted_c = c "Setups the switch admitted" "churn_accepted_total";
    blocked_c = c "Setups the switch refused" "churn_blocked_total";
    torn_down_c = c "Voluntary teardowns" "churn_teardowns_total";
    injected_c = c "Fault injections applied" "churn_faults_injected_total";
    cleared_c = c "Fault clears applied" "churn_faults_cleared_total";
    victims_c =
      c "Connections torn down by fault injections" "churn_victims_total";
    repaired_c = c "Victims re-homed by the repair pass" "churn_repaired_total";
    dropped_c =
      c "Victims no degraded-mode route could carry" "churn_dropped_total";
    degraded_attempts_c =
      c "Setups attempted while at least one fault was in force"
        "churn_degraded_attempts_total";
    blocked_degraded_c =
      c "Refusals while at least one fault was in force"
        "churn_blocked_degraded_total";
    g_active =
      Tel.Metrics.gauge reg ~help:"Connections currently held by the driver"
        "churn_active_connections";
    g_peak =
      Tel.Metrics.gauge reg ~help:"Peak concurrent connections this run"
        "churn_peak_active";
  }

(* Shared engine: [run] is the empty-schedule special case.  Fault
   handling never consults the RNG, and the teardown/setup gate draws
   its float unconditionally every step, so a fault campaign tracks a
   healthy run of the same seed draw-for-draw until the first fault
   event changes the active set or the free endpoints — after which the
   per-step action draws (victim index, generated connection) diverge
   by necessity. *)
let engine ?telemetry ?persist ~on_blocked rng ~spec ~model ~fanout ~steps
    ~teardown_bias ~schedule fsut =
  let sut = fsut.base in
  let i = driver_instruments telemetry in
  (match persist with
  | Some { policy = Every_n_ops n; _ } when n < 1 ->
    invalid_arg "Churn: Every_n_ops interval must be >= 1"
  | Some { policy = Every_seconds s; _ } when s <= 0. ->
    invalid_arg "Churn: Every_seconds interval must be positive"
  | _ -> ());
  (* one "op" = one SUT interaction a WAL would carry: a setup attempt,
     a teardown, a fault event, or a victim repair attempt.  The pacer
     never consults the RNG (and Every_n_ops never reads the clock), so
     a persisted run replays an unpersisted one draw-for-draw. *)
  let ops = ref 0 in
  let checkpoint_if_due =
    match persist with
    | None -> fun () -> ()
    | Some p -> (
      match p.policy with
      | Every_n_ops n ->
        let last = ref 0 in
        fun () ->
          if !ops - !last >= n then begin
            last := !ops;
            p.checkpoint ~ops:!ops
          end
      | Every_seconds s ->
        let last = ref (Tel.Sink.now i.sink) in
        fun () ->
          let now = Tel.Sink.now i.sink in
          if now -. !last >= s then begin
            last := now;
            p.checkpoint ~ops:!ops
          end)
  in
  (* a reused sink keeps its cumulative counters; the returned stats
     must cover this run only, so remember where we started *)
  let base name_c = Tel.Metrics.counter_value name_c in
  let b_attempts = base i.attempts_c
  and b_accepted = base i.accepted_c
  and b_blocked = base i.blocked_c
  and b_torn_down = base i.torn_down_c
  and b_injected = base i.injected_c
  and b_cleared = base i.cleared_c
  and b_victims = base i.victims_c
  and b_repaired = base i.repaired_c
  and b_dropped = base i.dropped_c
  and b_degraded_attempts = base i.degraded_attempts_c
  and b_blocked_degraded = base i.blocked_degraded_c in
  (* incremental free-endpoint pools: claim/release is O(1), and
     [Free_pool.to_list] reproduces the filtered universe the generator
     used to receive, so the RNG draw stream is unchanged *)
  let free_src = Free_pool.create (Network_spec.inputs spec) in
  let free_dst = Free_pool.create (Network_spec.outputs spec) in
  let active : ('id * Connection.t) list ref = ref [] in
  let peak = ref 0 in
  let in_force = ref [] in
  let note_active () =
    let n = List.length !active in
    Tel.Metrics.set i.g_active (float_of_int n);
    if n > !peak then begin
      peak := n;
      Tel.Metrics.set i.g_peak (float_of_int n)
    end
  in
  let register id conn =
    active := (id, conn) :: !active;
    Free_pool.remove free_src conn.Connection.source;
    List.iter (Free_pool.remove free_dst) conn.Connection.destinations
  in
  let unregister conn =
    active := List.filter (fun (_, c) -> not (Connection.equal c conn)) !active;
    Free_pool.add free_src conn.Connection.source;
    List.iter (Free_pool.add free_dst) conn.Connection.destinations
  in
  let apply = function
    | `Inject fault ->
      (* count the transition, not the event: the network treats
         re-injecting a fault already in force as a no-op and leaves
         wdmnet_faults_injected_total alone, so the driver counter must
         stay reconcilable with it over schedules with duplicates *)
      if not (List.mem fault !in_force) then begin
        Tel.Metrics.inc i.injected_c;
        in_force := fault :: !in_force
      end;
      incr ops;
      let torn = fsut.inject fault in
      Tel.Metrics.add i.victims_c (List.length torn);
      (* the network freed every victim at once; re-home them on what
         is left, one by one *)
      List.iter unregister torn;
      List.iter
        (fun conn ->
          incr ops;
          match fsut.reconnect conn with
          | Ok id ->
            register id conn;
            Tel.Metrics.inc i.repaired_c
          | Error _ -> Tel.Metrics.inc i.dropped_c)
        torn;
      note_active ()
    | `Clear fault ->
      if List.mem fault !in_force then begin
        Tel.Metrics.inc i.cleared_c;
        in_force := List.filter (fun f -> f <> fault) !in_force
      end;
      incr ops;
      fsut.clear fault
  in
  let teardown () =
    match !active with
    | [] -> ()
    | l ->
      let idx = Random.State.int rng (List.length l) in
      let id, conn = List.nth l idx in
      incr ops;
      sut.disconnect id;
      active := List.filteri (fun j _ -> j <> idx) l;
      Free_pool.add free_src conn.Connection.source;
      List.iter (Free_pool.add free_dst) conn.Connection.destinations;
      Tel.Metrics.inc i.torn_down_c;
      note_active ()
  in
  let setup () =
    match
      Generator.random_connection rng spec model ~fanout
        ~free_sources:(Free_pool.to_list free_src)
        ~free_dests:(Free_pool.to_list free_dst)
    with
    | None -> ()
    | Some conn -> (
      incr ops;
      Tel.Metrics.inc i.attempts_c;
      if !in_force <> [] then Tel.Metrics.inc i.degraded_attempts_c;
      match sut.connect conn with
      | Ok id ->
        register id conn;
        Tel.Metrics.inc i.accepted_c;
        note_active ()
      | Error err ->
        on_blocked conn err;
        if !in_force <> [] then Tel.Metrics.inc i.blocked_degraded_c;
        Tel.Metrics.inc i.blocked_c)
  in
  let pending = ref schedule in
  for step = 1 to steps do
    let rec drain () =
      match !pending with
      | (s, ev) :: rest when s <= step ->
        pending := rest;
        apply ev;
        drain ()
      | _ -> ()
    in
    drain ();
    (* draw the gate unconditionally: an empty active set must not
       shift the RNG stream relative to a run where it was non-empty *)
    let gate = Random.State.float rng 1. in
    if !active <> [] && gate < teardown_bias then teardown () else setup ();
    checkpoint_if_due ()
  done;
  let since b c = Tel.Metrics.counter_value c - b in
  {
    churn =
      {
        attempts = since b_attempts i.attempts_c;
        accepted = since b_accepted i.accepted_c;
        blocked = since b_blocked i.blocked_c;
        torn_down = since b_torn_down i.torn_down_c;
        peak_active = !peak;
      };
    injected = since b_injected i.injected_c;
    cleared = since b_cleared i.cleared_c;
    victims = since b_victims i.victims_c;
    repaired = since b_repaired i.repaired_c;
    dropped = since b_dropped i.dropped_c;
    degraded_attempts = since b_degraded_attempts i.degraded_attempts_c;
    blocked_degraded = since b_blocked_degraded i.blocked_degraded_c;
  }

let run ?telemetry ?persist ?(on_blocked = fun _ _ -> ()) rng ~spec ~model
    ~fanout ~steps ~teardown_bias sut =
  if teardown_bias < 0. || teardown_bias > 1. then
    invalid_arg "Churn.run: teardown_bias must be in [0, 1]";
  let fsut =
    {
      base = sut;
      inject = (fun () -> []);
      clear = ignore;
      reconnect = (fun _ -> invalid_arg "Churn.run: no faults");
    }
  in
  (engine ?telemetry ?persist ~on_blocked rng ~spec ~model ~fanout ~steps
     ~teardown_bias ~schedule:[] fsut)
    .churn

let run_with_faults ?telemetry ?persist ?(on_blocked = fun _ _ -> ()) rng ~spec
    ~model ~fanout ~steps ~teardown_bias ~schedule fsut =
  if teardown_bias < 0. || teardown_bias > 1. then
    invalid_arg "Churn.run_with_faults: teardown_bias must be in [0, 1]";
  let schedule =
    List.stable_sort (fun (a, _) (b, _) -> Int.compare a b) schedule
  in
  engine ?telemetry ?persist ~on_blocked rng ~spec ~model ~fanout ~steps
    ~teardown_bias ~schedule fsut

let pp_stats ppf s =
  Format.fprintf ppf
    "%d attempts, %d accepted, %d blocked, %d torn down, peak %d active"
    s.attempts s.accepted s.blocked s.torn_down s.peak_active

let pp_fault_stats ppf s =
  Format.fprintf ppf
    "%a; faults: %d injected, %d cleared, %d victims (%d repaired, %d \
     dropped), degraded blocking %d/%d"
    pp_stats s.churn s.injected s.cleared s.victims s.repaired s.dropped
    s.blocked_degraded s.degraded_attempts

(* --- continuous time ---------------------------------------------------- *)

type timed_stats = {
  offered_erlangs : float;
  t_attempts : int;
  t_accepted : int;
  t_blocked : int;
  completed : int;
  mean_active : float;
}

let exponential rng mean =
  (* inverse CDF; guard against u = 0 *)
  let u = 1. -. Random.State.float rng 1. in
  -.mean *. Float.log u

let run_timed ?telemetry ?(on_blocked = fun _ _ -> ()) rng ~spec ~model ~fanout
    ~arrival_rate ~mean_holding ~horizon sut =
  if arrival_rate <= 0. || mean_holding <= 0. || horizon <= 0. then
    invalid_arg "Churn.run_timed: rates and horizon must be positive";
  let ti = driver_instruments telemetry in
  let b_attempts = Tel.Metrics.counter_value ti.attempts_c
  and b_accepted = Tel.Metrics.counter_value ti.accepted_c
  and b_blocked = Tel.Metrics.counter_value ti.blocked_c
  and b_completed = Tel.Metrics.counter_value ti.torn_down_c in
  (* departure queue: O(log n) push/pop, FIFO on equal times *)
  let departures : ('id * Connection.t) Event_heap.t = Event_heap.create () in
  let free_src = Free_pool.create (Network_spec.inputs spec) in
  let free_dst = Free_pool.create (Network_spec.outputs spec) in
  let active_area = ref 0. in
  let now = ref 0. in
  let active () = Event_heap.size departures in
  let advance_to t =
    active_area := !active_area +. (float_of_int (active ()) *. (t -. !now));
    now := t
  in
  let depart (id, conn) =
    sut.disconnect id;
    Tel.Metrics.inc ti.torn_down_c;
    Free_pool.add free_src conn.Connection.source;
    List.iter (Free_pool.add free_dst) conn.Connection.destinations;
    Tel.Metrics.set ti.g_active (float_of_int (active ()))
  in
  let arrival t =
    advance_to t;
    match
      Generator.random_connection rng spec model ~fanout
        ~free_sources:(Free_pool.to_list free_src)
        ~free_dests:(Free_pool.to_list free_dst)
    with
    | None -> () (* saturated: the offered call finds no idle terminals *)
    | Some conn -> (
      Tel.Metrics.inc ti.attempts_c;
      match sut.connect conn with
      | Ok id ->
        Tel.Metrics.inc ti.accepted_c;
        Free_pool.remove free_src conn.Connection.source;
        List.iter (Free_pool.remove free_dst) conn.Connection.destinations;
        Event_heap.push departures
          ~time:(t +. exponential rng mean_holding)
          (id, conn);
        Tel.Metrics.set ti.g_active (float_of_int (active ()))
      | Error err ->
        on_blocked conn err;
        Tel.Metrics.inc ti.blocked_c)
  in
  (* A departure fires when it precedes both the next arrival (ties go
     to the departure) and the horizon; otherwise the next event is
     either an arrival within the horizon or the end of the run.  Note
     a queued departure beyond the horizon is simply abandoned:
     connections still held when the run ends are intentionally never
     disconnected — the simulation stops mid-flight, it does not wind
     the system down. *)
  let rec loop next_arrival =
    match Event_heap.peek departures with
    | Some (td, dep) when td <= next_arrival && td <= horizon ->
      advance_to td;
      ignore (Event_heap.pop departures);
      depart dep;
      loop next_arrival
    | _ ->
      if next_arrival > horizon then advance_to horizon
      else begin
        arrival next_arrival;
        loop (next_arrival +. exponential rng (1. /. arrival_rate))
      end
  in
  loop (exponential rng (1. /. arrival_rate));
  (* the run is over: zero the gauge so a reused sink does not keep
     reporting the connections abandoned at the horizon as active *)
  Tel.Metrics.set ti.g_active 0.;
  let since b c = Tel.Metrics.counter_value c - b in
  {
    offered_erlangs = arrival_rate *. mean_holding;
    t_attempts = since b_attempts ti.attempts_c;
    t_accepted = since b_accepted ti.accepted_c;
    t_blocked = since b_blocked ti.blocked_c;
    completed = since b_completed ti.torn_down_c;
    mean_active = !active_area /. horizon;
  }

let pp_timed_stats ppf s =
  Format.fprintf ppf
    "offered %.2f E: %d attempts, %d accepted, %d blocked, %d completed, mean %.2f active"
    s.offered_erlangs s.t_attempts s.t_accepted s.t_blocked s.completed
    s.mean_active
