open Wdm_core

type stats = {
  attempts : int;
  accepted : int;
  blocked : int;
  torn_down : int;
  peak_active : int;
}

type ('id, 'err) sut = {
  connect : Connection.t -> ('id, 'err) result;
  disconnect : 'id -> unit;
}

module Eset = Set.Make (Endpoint)

type ('id, 'err, 'fault) faulty_sut = {
  base : ('id, 'err) sut;
  inject : 'fault -> Connection.t list;
  clear : 'fault -> unit;
  reconnect : Connection.t -> ('id, 'err) result;
}

type fault_stats = {
  churn : stats;
  injected : int;
  cleared : int;
  victims : int;
  repaired : int;
  dropped : int;
  degraded_attempts : int;
  blocked_degraded : int;
}

(* Shared engine: [run] is the empty-schedule special case.  Fault
   handling never consults the RNG, and the teardown/setup gate draws
   its float unconditionally every step, so a fault campaign tracks a
   healthy run of the same seed draw-for-draw until the first fault
   event changes the active set or the free endpoints — after which the
   per-step action draws (victim index, generated connection) diverge
   by necessity. *)
let engine ~on_blocked rng ~spec ~model ~fanout ~steps ~teardown_bias ~schedule
    fsut =
  let sut = fsut.base in
  let all_sources = Network_spec.inputs spec in
  let all_dests = Network_spec.outputs spec in
  let active : ('id * Connection.t) list ref = ref [] in
  let used_src = ref Eset.empty and used_dst = ref Eset.empty in
  let stats = ref { attempts = 0; accepted = 0; blocked = 0; torn_down = 0; peak_active = 0 } in
  let injected = ref 0 and cleared = ref 0 in
  let victims = ref 0 and repaired = ref 0 and dropped = ref 0 in
  let degraded_attempts = ref 0 and blocked_degraded = ref 0 in
  let in_force = ref [] in
  let register id conn =
    active := (id, conn) :: !active;
    used_src := Eset.add conn.Connection.source !used_src;
    used_dst :=
      List.fold_left (fun s d -> Eset.add d s) !used_dst
        conn.Connection.destinations
  in
  let unregister conn =
    active := List.filter (fun (_, c) -> not (Connection.equal c conn)) !active;
    used_src := Eset.remove conn.Connection.source !used_src;
    used_dst :=
      List.fold_left (fun s d -> Eset.remove d s) !used_dst
        conn.Connection.destinations
  in
  let apply = function
    | `Inject fault ->
      incr injected;
      if not (List.mem fault !in_force) then in_force := fault :: !in_force;
      let torn = fsut.inject fault in
      victims := !victims + List.length torn;
      (* the network freed every victim at once; re-home them on what
         is left, one by one *)
      List.iter unregister torn;
      List.iter
        (fun conn ->
          match fsut.reconnect conn with
          | Ok id -> register id conn; incr repaired
          | Error _ -> incr dropped)
        torn
    | `Clear fault ->
      incr cleared;
      in_force := List.filter (fun f -> f <> fault) !in_force;
      fsut.clear fault
  in
  let teardown () =
    match !active with
    | [] -> ()
    | l ->
      let i = Random.State.int rng (List.length l) in
      let id, conn = List.nth l i in
      sut.disconnect id;
      active := List.filteri (fun j _ -> j <> i) l;
      used_src := Eset.remove conn.Connection.source !used_src;
      used_dst :=
        List.fold_left (fun s d -> Eset.remove d s) !used_dst
          conn.Connection.destinations;
      stats := { !stats with torn_down = !stats.torn_down + 1 }
  in
  let setup () =
    let free_sources = List.filter (fun e -> not (Eset.mem e !used_src)) all_sources in
    let free_dests = List.filter (fun e -> not (Eset.mem e !used_dst)) all_dests in
    match
      Generator.random_connection rng spec model ~fanout ~free_sources ~free_dests
    with
    | None -> ()
    | Some conn -> (
      stats := { !stats with attempts = !stats.attempts + 1 };
      if !in_force <> [] then incr degraded_attempts;
      match sut.connect conn with
      | Ok id ->
        register id conn;
        stats :=
          {
            !stats with
            accepted = !stats.accepted + 1;
            peak_active = Stdlib.max !stats.peak_active (List.length !active);
          }
      | Error err ->
        on_blocked conn err;
        if !in_force <> [] then incr blocked_degraded;
        stats := { !stats with blocked = !stats.blocked + 1 })
  in
  let pending = ref schedule in
  for step = 1 to steps do
    let rec drain () =
      match !pending with
      | (s, ev) :: rest when s <= step ->
        pending := rest;
        apply ev;
        drain ()
      | _ -> ()
    in
    drain ();
    (* draw the gate unconditionally: an empty active set must not
       shift the RNG stream relative to a run where it was non-empty *)
    let gate = Random.State.float rng 1. in
    if !active <> [] && gate < teardown_bias then teardown () else setup ()
  done;
  {
    churn = !stats;
    injected = !injected;
    cleared = !cleared;
    victims = !victims;
    repaired = !repaired;
    dropped = !dropped;
    degraded_attempts = !degraded_attempts;
    blocked_degraded = !blocked_degraded;
  }

let run ?(on_blocked = fun _ _ -> ()) rng ~spec ~model ~fanout ~steps
    ~teardown_bias sut =
  if teardown_bias < 0. || teardown_bias > 1. then
    invalid_arg "Churn.run: teardown_bias must be in [0, 1]";
  let fsut =
    {
      base = sut;
      inject = (fun () -> []);
      clear = ignore;
      reconnect = (fun _ -> invalid_arg "Churn.run: no faults");
    }
  in
  (engine ~on_blocked rng ~spec ~model ~fanout ~steps ~teardown_bias
     ~schedule:[] fsut)
    .churn

let run_with_faults ?(on_blocked = fun _ _ -> ()) rng ~spec ~model ~fanout
    ~steps ~teardown_bias ~schedule fsut =
  if teardown_bias < 0. || teardown_bias > 1. then
    invalid_arg "Churn.run_with_faults: teardown_bias must be in [0, 1]";
  let schedule =
    List.stable_sort (fun (a, _) (b, _) -> Int.compare a b) schedule
  in
  engine ~on_blocked rng ~spec ~model ~fanout ~steps ~teardown_bias ~schedule
    fsut

let pp_stats ppf s =
  Format.fprintf ppf
    "%d attempts, %d accepted, %d blocked, %d torn down, peak %d active"
    s.attempts s.accepted s.blocked s.torn_down s.peak_active

let pp_fault_stats ppf s =
  Format.fprintf ppf
    "%a; faults: %d injected, %d cleared, %d victims (%d repaired, %d \
     dropped), degraded blocking %d/%d"
    pp_stats s.churn s.injected s.cleared s.victims s.repaired s.dropped
    s.blocked_degraded s.degraded_attempts

(* --- continuous time ---------------------------------------------------- *)

type timed_stats = {
  offered_erlangs : float;
  t_attempts : int;
  t_accepted : int;
  t_blocked : int;
  completed : int;
  mean_active : float;
}

let exponential rng mean =
  (* inverse CDF; guard against u = 0 *)
  let u = 1. -. Random.State.float rng 1. in
  -.mean *. Float.log u

let run_timed ?(on_blocked = fun _ _ -> ()) rng ~spec ~model ~fanout
    ~arrival_rate ~mean_holding ~horizon sut =
  if arrival_rate <= 0. || mean_holding <= 0. || horizon <= 0. then
    invalid_arg "Churn.run_timed: rates and horizon must be positive";
  let all_sources = Network_spec.inputs spec in
  let all_dests = Network_spec.outputs spec in
  (* departures: (time, id, conn), kept sorted by time ascending *)
  let departures : (float * 'id * Connection.t) list ref = ref [] in
  let used_src = ref Eset.empty and used_dst = ref Eset.empty in
  let attempts = ref 0 and accepted = ref 0 and blocked = ref 0 in
  let completed = ref 0 in
  let active_area = ref 0. in
  let now = ref 0. in
  let active () = List.length !departures in
  let advance_to t =
    active_area := !active_area +. (float_of_int (active ()) *. (t -. !now));
    now := t
  in
  let insert dep =
    let rec go = function
      | [] -> [ dep ]
      | ((t', _, _) as hd) :: rest ->
        let t, _, _ = dep in
        if t < t' then dep :: hd :: rest else hd :: go rest
    in
    departures := go !departures
  in
  let depart (id, conn) =
    sut.disconnect id;
    incr completed;
    used_src := Eset.remove conn.Connection.source !used_src;
    used_dst :=
      List.fold_left (fun s d -> Eset.remove d s) !used_dst
        conn.Connection.destinations
  in
  let arrival t =
    advance_to t;
    let free_sources = List.filter (fun e -> not (Eset.mem e !used_src)) all_sources in
    let free_dests = List.filter (fun e -> not (Eset.mem e !used_dst)) all_dests in
    match Generator.random_connection rng spec model ~fanout ~free_sources ~free_dests with
    | None -> () (* saturated: the offered call finds no idle terminals *)
    | Some conn -> (
      incr attempts;
      match sut.connect conn with
      | Ok id ->
        incr accepted;
        used_src := Eset.add conn.Connection.source !used_src;
        used_dst :=
          List.fold_left (fun s d -> Eset.add d s) !used_dst
            conn.Connection.destinations;
        insert (t +. exponential rng mean_holding, id, conn)
      | Error err ->
        on_blocked conn err;
        incr blocked)
  in
  let rec loop next_arrival =
    if next_arrival > horizon && !departures = [] then advance_to horizon
    else
      match !departures with
      | (td, id, conn) :: rest when td <= next_arrival ->
        if td > horizon then advance_to horizon
        else begin
          advance_to td;
          departures := rest;
          depart (id, conn);
          loop next_arrival
        end
      | _ ->
        if next_arrival > horizon then begin
          (* drain remaining departures up to the horizon *)
          match !departures with
          | (td, id, conn) :: rest when td <= horizon ->
            advance_to td;
            departures := rest;
            depart (id, conn);
            loop next_arrival
          | _ -> advance_to horizon
        end
        else begin
          arrival next_arrival;
          loop (next_arrival +. exponential rng (1. /. arrival_rate))
        end
  in
  loop (exponential rng (1. /. arrival_rate));
  {
    offered_erlangs = arrival_rate *. mean_holding;
    t_attempts = !attempts;
    t_accepted = !accepted;
    t_blocked = !blocked;
    completed = !completed;
    mean_active = !active_area /. horizon;
  }

let pp_timed_stats ppf s =
  Format.fprintf ppf
    "offered %.2f E: %d attempts, %d accepted, %d blocked, %d completed, mean %.2f active"
    s.offered_erlangs s.t_attempts s.t_accepted s.t_blocked s.completed
    s.mean_active
