(* Array-backed binary min-heap of timestamped events.  Entries carry a
   monotonically increasing sequence number so equal-time events pop in
   insertion order — the same tie order the sorted-list queue it
   replaced produced, which seeded-replay determinism relies on. *)

type 'a t = {
  mutable data : (float * int * 'a) array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }
let size t = t.len

let before (t1, s1, _) (t2, s2, _) = t1 < t2 || (t1 = t2 && s1 < s2)

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && before t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.len && before t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~time v =
  let entry = (time, t.next_seq, v) in
  t.next_seq <- t.next_seq + 1;
  if t.len = Array.length t.data then begin
    let grown = Array.make (max 16 (2 * t.len)) entry in
    Array.blit t.data 0 grown 0 t.len;
    t.data <- grown
  end;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek t =
  if t.len = 0 then None
  else
    let time, _, v = t.data.(0) in
    Some (time, v)

let pop t =
  if t.len = 0 then None
  else begin
    let time, _, v = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    Some (time, v)
  end
