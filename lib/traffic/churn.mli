(** Dynamic setup/teardown workloads.

    The nonblocking claims of Theorems 1-2 are about {e any} sequence of
    connection setups and teardowns, not just static assignments.  This
    driver runs such a sequence against an abstract switch (anything
    offering connect/disconnect), tracking which endpoints are free so
    every generated request is one the network is obliged to admit. *)

open Wdm_core

type stats = {
  attempts : int;  (** connection requests issued *)
  accepted : int;
  blocked : int;  (** rejections — must be 0 for a nonblocking switch *)
  torn_down : int;
  peak_active : int;
}

type ('id, 'err) sut = {
  connect : Connection.t -> ('id, 'err) result;
  disconnect : 'id -> unit;
}

(** {1 Checkpoint pacing}

    Durable recording ([Wdm_persist.Store]) wants periodic snapshots;
    the driver is where the op cadence is known, so it owns the pacing
    and the caller owns the storage.  One "op" is one SUT interaction a
    WAL would carry: a setup attempt (admitted or refused), a teardown,
    a fault event, or a victim repair attempt.  The pacer never
    consults the RNG ([Every_n_ops] never reads the clock either), so a
    persisted run replays an unpersisted one draw-for-draw. *)

type persist_policy =
  | Every_n_ops of int  (** checkpoint when [n] ops have accrued *)
  | Every_seconds of float
      (** checkpoint when the sink's clock has advanced this far —
          wall time by default, deterministic under a custom [~clock] *)

type persist = {
  policy : persist_policy;
  checkpoint : ops:int -> unit;
      (** called between steps with the ops applied so far; typically
          [Wdm_persist.Store.checkpoint] partially applied *)
}

val run :
  ?telemetry:Wdm_telemetry.Sink.t ->
  ?persist:persist ->
  ?on_blocked:(Connection.t -> 'err -> unit) ->
  Random.State.t ->
  spec:Network_spec.t ->
  model:Model.t ->
  fanout:Fanout.t ->
  steps:int ->
  teardown_bias:float ->
  ('id, 'err) sut ->
  stats
(** Each step tears down a random active connection with probability
    [teardown_bias] (when any exists), otherwise attempts a setup drawn
    from the free endpoints.  [on_blocked] observes rejections (default:
    count only).

    The driver's tallies are telemetry counters ([churn_attempts_total],
    [churn_accepted_total], [churn_blocked_total],
    [churn_teardowns_total], and the fault family below) plus
    [churn_active_connections]/[churn_peak_active] gauges.  With
    [telemetry] they land in the caller's sink, where they accumulate
    across runs; the returned {!stats} always cover this run only.
    Telemetry never consults the RNG, so a run with a sink replays a
    run without one draw-for-draw. *)

val pp_stats : Format.formatter -> stats -> unit

(** {1 Churn under component faults}

    A production fabric loses hardware mid-run.  {!run_with_faults}
    drives the same setup/teardown workload while replaying a fault
    schedule (typically {!Wdm_faults.Schedule.generate}, MTBF/MTTR
    exponential processes): each injection tears down the routes
    crossing the component, a repair pass immediately tries to re-home
    the victims on the degraded fabric, and blocking is attributed to
    degraded or healthy states.  The driver is polymorphic in the fault
    type, so it works with any switch exposing inject/clear hooks. *)

type ('id, 'err, 'fault) faulty_sut = {
  base : ('id, 'err) sut;
  inject : 'fault -> Connection.t list;
      (** take the component down; return the torn-down connections *)
  clear : 'fault -> unit;
  reconnect : Connection.t -> ('id, 'err) result;
      (** repair attempt for a victim (e.g.
          {!Wdm_multistage.Network.connect_rearrangeable}) *)
}

type fault_stats = {
  churn : stats;  (** the usual workload counters *)
  injected : int;  (** fault injections applied *)
  cleared : int;  (** fault clears applied *)
  victims : int;  (** connections torn down by injections *)
  repaired : int;  (** victims re-homed by the repair pass *)
  dropped : int;  (** victims no degraded-mode route could carry *)
  degraded_attempts : int;  (** setups attempted while >= 1 fault in force *)
  blocked_degraded : int;  (** of [churn.blocked], those while degraded *)
}

val run_with_faults :
  ?telemetry:Wdm_telemetry.Sink.t ->
  ?persist:persist ->
  ?on_blocked:(Connection.t -> 'err -> unit) ->
  Random.State.t ->
  spec:Network_spec.t ->
  model:Model.t ->
  fanout:Fanout.t ->
  steps:int ->
  teardown_bias:float ->
  schedule:(int * [ `Inject of 'fault | `Clear of 'fault ]) list ->
  ('id, 'err, 'fault) faulty_sut ->
  fault_stats
(** Like {!run}, plus fault events: an event scheduled at step [s] is
    applied just before step [s] executes (the schedule is sorted
    internally; events beyond [steps] never fire).

    Injection and clear counters follow network semantics: injecting a
    fault already in force (or clearing one that is not) is a no-op for
    [churn_faults_injected_total]/[churn_faults_cleared_total] and for
    the returned {!fault_stats}, so over any schedule — duplicates
    included — the driver's tallies reconcile with the network's
    [wdmnet_faults_injected_total]/[wdmnet_faults_cleared_total].  The
    [inject]/[clear] hooks themselves are still invoked on every event.

    Fault handling
    never consults the RNG and the per-step teardown/setup gate is
    drawn unconditionally, so for the same seed a degraded run tracks
    the healthy run draw-for-draw until the first fault event alters
    the active set or free endpoints; from then on the action draws
    necessarily diverge, and comparisons should be made on aggregate
    rates rather than individual steps. *)

val pp_fault_stats : Format.formatter -> fault_stats -> unit

(** {1 Continuous-time traffic}

    The discrete driver above alternates setups and teardowns by a
    bias; classical switching evaluation instead offers Poisson
    arrivals with exponential holding times and reports blocking
    against the offered load in Erlangs.  {!run_timed} is that
    methodology. *)

type timed_stats = {
  offered_erlangs : float;  (** [arrival_rate * mean_holding] *)
  t_attempts : int;
  t_accepted : int;
  t_blocked : int;
  completed : int;  (** connections that departed within the horizon *)
  mean_active : float;  (** time-averaged concurrent connections *)
}

val run_timed :
  ?telemetry:Wdm_telemetry.Sink.t ->
  ?on_blocked:(Connection.t -> 'err -> unit) ->
  Random.State.t ->
  spec:Network_spec.t ->
  model:Model.t ->
  fanout:Fanout.t ->
  arrival_rate:float ->
  mean_holding:float ->
  horizon:float ->
  ('id, 'err) sut ->
  timed_stats
(** Event-driven simulation on [0, horizon]: arrivals form a Poisson
    process of the given rate; each accepted connection holds for an
    independent exponential time.  With no blocking and light load,
    [mean_active] approaches the offered load (Little's law), which the
    tests check.

    Connections still held when the horizon is reached are
    intentionally never disconnected: the run stops mid-flight rather
    than winding the system down, so [completed] counts only departures
    within the horizon and the switch under test is left holding the
    in-flight routes.  [churn_active_connections] is reset to 0 when
    the run ends, so a reused sink does not keep reporting those
    abandoned connections as active. *)

val pp_timed_stats : Format.formatter -> timed_stats -> unit
