(** Erlang-load blocking-probability driver for node-addressed
    networks (mesh RWA).

    {!Churn.run_timed} models the paper's port-exclusive fabric: an
    endpoint is busy while a call holds it, so request generation
    draws from free-endpoint pools.  A mesh RWA network has no such
    exclusivity — any node pair may request a lightpath at any time,
    and blocking comes only from wavelength contention — so this
    driver samples sources and destination groups uniformly over the
    nodes, fires Poisson arrivals with exponential holding times, and
    reports the blocking probability at a given offered load.

    The whole run is a pure function of the seeded [Random.State.t]
    and the arguments; drive it over a deterministic network and the
    resulting table is seed-reproducible. *)

type point = {
  offered_erlangs : float;  (** [arrival_rate * mean_holding] *)
  arrivals : int;  (** requests offered *)
  accepted : int;
  blocked : int;
  blocking : float;  (** [blocked / arrivals] *)
  mean_active : float;  (** time-averaged calls in progress *)
}

val run :
  Random.State.t ->
  nodes:int ->
  fanout:Fanout.t ->
  offered:float ->
  arrivals:int ->
  ('id, 'err) Churn.sut ->
  point
(** Offers [arrivals] calls at [offered] Erlangs (arrival rate
    [offered] against unit mean holding time).  Each call picks a
    uniform source node and a sampled fanout of distinct destination
    nodes (excluding the source; [fanout] is clamped to [nodes - 1]).
    Calls still in progress when the last arrival has been offered are
    torn down through the sut before returning.
    @raise Invalid_argument on [nodes < 2], [offered <= 0] or
    [arrivals < 1]. *)

val pp_point : Format.formatter -> point -> unit
