open Wdm_core

type point = {
  offered_erlangs : float;
  arrivals : int;
  accepted : int;
  blocked : int;
  blocking : float;
  mean_active : float;
}

let exponential rng ~rate = -.log1p (-.Random.State.float rng 1.) /. rate

(* distinct uniform draws without replacement, ascending result *)
let draw_dests rng ~nodes ~src count =
  let picked = Hashtbl.create 8 in
  let rec pick remaining acc =
    if remaining = 0 then List.sort compare acc
    else begin
      let v = 1 + Random.State.int rng nodes in
      if v = src || Hashtbl.mem picked v then pick remaining acc
      else begin
        Hashtbl.add picked v ();
        pick (remaining - 1) (v :: acc)
      end
    end
  in
  pick count []

let run rng ~nodes ~fanout ~offered ~arrivals (sut : ('id, 'err) Churn.sut) =
  if nodes < 2 then invalid_arg "Erlang.run: need at least 2 nodes";
  if not (offered > 0.) then invalid_arg "Erlang.run: offered must be > 0";
  if arrivals < 1 then invalid_arg "Erlang.run: arrivals must be >= 1";
  let departures = Event_heap.create () in
  let now = ref 0. in
  let active = ref 0 in
  let accepted = ref 0 in
  let blocked = ref 0 in
  let area = ref 0. in
  let advance t =
    area := !area +. (float_of_int !active *. (t -. !now));
    now := t
  in
  let depart_until t =
    let rec drain () =
      match Event_heap.peek departures with
      | Some (dt, _) when dt <= t -> (
        match Event_heap.pop departures with
        | Some (dt, id) ->
          advance dt;
          sut.Churn.disconnect id;
          decr active;
          drain ()
        | None -> ())
      | _ -> ()
    in
    drain ()
  in
  for _ = 1 to arrivals do
    let t = !now +. exponential rng ~rate:offered in
    depart_until t;
    advance t;
    let src = 1 + Random.State.int rng nodes in
    let f = Fanout.sample rng fanout ~max_available:(nodes - 1) in
    let dest_nodes = draw_dests rng ~nodes ~src f in
    let conn =
      Connection.make_exn
        ~source:{ Endpoint.port = src; wl = 1 }
        ~destinations:
          (List.map (fun p -> { Endpoint.port = p; wl = 1 }) dest_nodes)
    in
    match sut.Churn.connect conn with
    | Ok id ->
      incr accepted;
      incr active;
      Event_heap.push departures ~time:(t +. exponential rng ~rate:1.) id
    | Error _ -> incr blocked
  done;
  (* tear the survivors down so the network ends idle *)
  let rec drain () =
    match Event_heap.pop departures with
    | Some (dt, id) ->
      advance dt;
      sut.Churn.disconnect id;
      decr active;
      drain ()
    | None -> ()
  in
  drain ();
  let span = if !now > 0. then !now else 1. in
  {
    offered_erlangs = offered;
    arrivals;
    accepted = !accepted;
    blocked = !blocked;
    blocking = float_of_int !blocked /. float_of_int arrivals;
    mean_active = !area /. span;
  }

let pp_point ppf p =
  Format.fprintf ppf
    "%.2f erlangs: %d arrivals, %d blocked (%.4f), mean active %.2f"
    p.offered_erlangs p.arrivals p.blocked p.blocking p.mean_active
