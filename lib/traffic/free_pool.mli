(** Incremental free-endpoint pool for the churn drivers.

    A bitset over a fixed endpoint universe with O(1) claim/release,
    replacing the per-event [List.filter] over the full endpoint list
    (O(n log n) in set lookups) the drivers used to run.

    Determinism contract: {!to_list} returns the free endpoints with
    exactly the contents and order of
    [List.filter (fun e -> not busy e) universe] — the traffic
    generator's RNG draws depend on that list, so seeded runs replay
    byte-identically against either bookkeeping scheme. *)

open Wdm_core

type t

val create : Endpoint.t list -> t
(** All of the universe starts free.  The list fixes the iteration
    order {!to_list} preserves.
    @raise Invalid_argument on duplicate endpoints. *)

val is_free : t -> Endpoint.t -> bool

val remove : t -> Endpoint.t -> unit
(** Mark busy (no-op if already busy).
    @raise Invalid_argument for endpoints outside the universe. *)

val add : t -> Endpoint.t -> unit
(** Mark free again (no-op if already free). *)

val free_count : t -> int

val to_list : t -> Endpoint.t list
(** Free endpoints, in universe order. *)
