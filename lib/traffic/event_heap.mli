(** Binary min-heap of timestamped events for the continuous-time
    driver's departure queue: O(log n) push/pop against the O(n)
    sorted-list insertion it replaced.

    Equal-time events pop in insertion (FIFO) order, matching the
    stable sorted-list semantics — seeded replays depend on the event
    order, not just the event set. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit

val peek : 'a t -> (float * 'a) option
(** Earliest event, without removing it. *)

val pop : 'a t -> (float * 'a) option
