open Wdm_core

(* The pool is a bitset over a fixed universe array.  [to_list] must
   reproduce — contents AND order — what the churn drivers previously
   computed as [List.filter (fun e -> not (Eset.mem e used)) universe]:
   the generator's draws (List.nth choices, hash-grouping insertion
   order) depend on that list, and seeded replay identity depends on
   the draws. *)

let word_bits = 62

type t = {
  items : Endpoint.t array;
  pos : (Endpoint.t, int) Hashtbl.t;
  words : int array;  (* bit [i mod 62] of word [i / 62]: items.(i) free *)
  mutable free_count : int;
}

let create universe =
  let items = Array.of_list universe in
  let n = Array.length items in
  let pos = Hashtbl.create (max 16 (2 * n)) in
  Array.iteri (fun i e -> Hashtbl.replace pos e i) items;
  if Hashtbl.length pos <> n then
    invalid_arg "Free_pool.create: universe has duplicates";
  let words = Array.make (max 1 ((n + word_bits - 1) / word_bits)) 0 in
  for i = 0 to n - 1 do
    words.(i / word_bits) <- words.(i / word_bits) lor (1 lsl (i mod word_bits))
  done;
  { items; pos; words; free_count = n }

let index t e =
  match Hashtbl.find_opt t.pos e with
  | Some i -> i
  | None -> invalid_arg "Free_pool: endpoint outside the universe"

let is_free t e =
  let i = index t e in
  t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let remove t e =
  let i = index t e in
  let w = i / word_bits and b = 1 lsl (i mod word_bits) in
  if t.words.(w) land b <> 0 then begin
    t.words.(w) <- t.words.(w) land lnot b;
    t.free_count <- t.free_count - 1
  end

let add t e =
  let i = index t e in
  let w = i / word_bits and b = 1 lsl (i mod word_bits) in
  if t.words.(w) land b = 0 then begin
    t.words.(w) <- t.words.(w) lor b;
    t.free_count <- t.free_count + 1
  end

let free_count t = t.free_count

let to_list t =
  let acc = ref [] in
  for w = 0 to Array.length t.words - 1 do
    Bitops.iter_set ~width:word_bits
      (fun b -> acc := t.items.((w * word_bits) + b) :: !acc)
      t.words.(w)
  done;
  List.rev !acc
