open Wdm_core

type middle = Atomic | Nested of t

and t = {
  net : Network.t;
  middles : middle array;  (* indexed by middle module - 1 *)
  stages : int;
  (* outer route id -> nested routes, one per nested middle used *)
  live_subroutes : (int, (int * route) list) Hashtbl.t;
}

and route = { base : Network.route; subroutes : (int * route) list }

let inner_model = function
  | Network.Msw_dominant -> Model.MSW
  | Network.Maw_dominant -> Model.MAW

let rec build ?strategy ~construction ~k ~output_model view =
  match (view : Recursive.view) with
  | Recursive.Xbar _ ->
    invalid_arg "Rnetwork.create: design must have at least 3 stages"
  | Recursive.Clos { n; m; r; middle } ->
    let topo = Topology.make_exn ~n ~m ~r ~k in
    let config =
      match strategy with
      | None -> Network.Config.default
      | Some strategy -> { Network.Config.default with strategy }
    in
    let net = Network.create ~config ~construction ~output_model topo in
    let middles =
      Array.init m (fun _ ->
          match middle with
          | Recursive.Xbar _ -> Atomic
          | Recursive.Clos _ ->
            Nested
              (build ?strategy ~construction ~k
                 ~output_model:(inner_model construction) middle))
    in
    let stages =
      let rec depth = function
        | Recursive.Xbar _ -> 1
        | Recursive.Clos { middle; _ } -> 2 + depth middle
      in
      depth view
    in
    { net; middles; stages; live_subroutes = Hashtbl.create 64 }

let create ?strategy ~construction design =
  build ?strategy ~construction ~k:(Recursive.k design)
    ~output_model:(Recursive.output_model design)
    (Recursive.view design)

let stages t = t.stages
let topology t = Network.topology t.net

let rec connect t conn =
  match Network.connect t.net conn with
  | Error _ as e -> e
  | Ok base ->
    (* Drive every nested middle the outer route crosses. *)
    let rec place done_subs = function
      | [] -> Ok (List.rev done_subs)
      | (hop : Network.hop) :: rest -> (
        match t.middles.(hop.Network.middle - 1) with
        | Atomic -> place done_subs rest
        | Nested sub -> (
          let inner_conn =
            Connection.make_exn
              ~source:
                (Endpoint.make ~port:base.Network.input_switch
                   ~wl:hop.Network.stage1_wl)
              ~destinations:
                (List.map
                   (fun (p, w2) -> Endpoint.make ~port:p ~wl:w2)
                   hop.Network.serves)
          in
          match connect sub inner_conn with
          | Ok inner_route ->
            place ((hop.Network.middle, inner_route) :: done_subs) rest
          | Error _ as e ->
            (* roll back the inner routes placed so far *)
            List.iter
              (fun (j, (r : route)) ->
                match t.middles.(j - 1) with
                | Nested sub' -> ignore (disconnect sub' r.base.Network.id)
                | Atomic -> assert false)
              done_subs;
            e))
    in
    (match place [] base.Network.hops with
    | Ok subroutes ->
      if subroutes <> [] then
        Hashtbl.replace t.live_subroutes base.Network.id subroutes;
      Ok { base; subroutes }
    | Error e ->
      ignore (Network.disconnect t.net base.Network.id);
      Error e)

and disconnect t id =
  match Network.disconnect t.net id with
  | Error _ as e -> e
  | Ok base ->
    let subroutes =
      Option.value ~default:[] (Hashtbl.find_opt t.live_subroutes id)
    in
    Hashtbl.remove t.live_subroutes id;
    List.iter
      (fun (j, (r : route)) ->
        match t.middles.(j - 1) with
        | Nested sub -> ignore (disconnect sub r.base.Network.id)
        | Atomic -> assert false)
      subroutes;
    Ok { base; subroutes }

let active_routes t =
  Network.active_routes t.net
  |> List.map (fun (base : Network.route) ->
         {
           base;
           subroutes =
             Option.value ~default:[]
               (Hashtbl.find_opt t.live_subroutes base.Network.id);
         })

let utilization t = Network.utilization t.net
