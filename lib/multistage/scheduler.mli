(** Offline (batch) routing of whole multicast assignments.

    The nonblocking theorems are about online arrival; an offline
    scheduler knows the whole assignment up front and may (a) choose
    the order in which connections are placed and (b) optionally move
    already-placed connections ({!Network.connect_rearrangeable}).
    On a Theorem-sized network neither degree of freedom is needed —
    the tests check that — but below the bound they recover routability
    for many assignments that a fixed-order online router loses. *)

open Wdm_core

type outcome = {
  routes : Network.route list;
  reroutes : int;  (** rearrangement moves performed *)
  order_attempts : int;  (** placement orders tried (>= 1) *)
}

val route_assignment :
  ?max_order_attempts:int ->
  ?rearrange:bool ->
  ?seed:int ->
  Network.t ->
  Assignment.t ->
  (outcome, Network.error) result
(** Places every connection of the assignment on the (empty) network.
    Tries the given order first, then up to [max_order_attempts - 1]
    seeded shuffles (default 8 total); with [rearrange] (default false)
    each placement may move one existing connection.  On failure the
    network is left empty; on success it holds exactly the assignment's
    routes.  @raise Invalid_argument if the network is not empty. *)

(** {1 Connection repair}

    When {!Network.inject_fault} tears down the routes crossing a
    failed component, the torn connections are not gone — their
    endpoints are still committed to each other and the fabric may
    still have a path that avoids the fault.  {!repair} re-homes them
    on the degraded network. *)

type repair_outcome = {
  repaired : (Connection.t * Network.route) list;
      (** victims re-homed, with their new routes *)
  dropped : (Connection.t * Network.error) list;
      (** victims no degraded-mode route could serve, with the reason
          (e.g. {!Network.Unserviceable} when an endpoint module is
          down, {!Network.Blocked} when the survivors exhaust the
          slack) *)
  repair_moves : int;  (** rearrangement moves spent on re-homing *)
}

val repair :
  ?telemetry:Wdm_telemetry.Sink.t ->
  ?rearrange:bool ->
  Network.t ->
  Connection.t list ->
  repair_outcome
(** Attempts to re-route every victim connection on the current
    (degraded) network, in the given order.  With [rearrange] (default
    [true]) a re-home may move one surviving connection out of the way
    ({!Network.connect_rearrangeable}) — the same machinery the offline
    scheduler uses below the theorem bound.  Dropped victims leave the
    network untouched, so callers may retry them after the next
    {!Network.clear_fault}.

    [telemetry] counts re-homes, drops and rearrangement moves
    ([scheduler_repairs_total], [scheduler_repair_dropped_total],
    [scheduler_repair_moves_total]), observes per-victim latency
    ([scheduler_repair_latency_seconds]) and emits one [Repair] trace
    event per victim.  Independent of any sink the network itself
    carries — pass the same sink to both to merge the streams. *)

val pp_repair_outcome : Format.formatter -> repair_outcome -> unit
