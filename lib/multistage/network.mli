(** Connection-level state and routing for three-stage WDM multicast
    networks (Section 3).

    A network instance tracks, per fiber link of Fig. 8, which of its
    [k] wavelengths are in use, plus the busy input/output endpoints.
    {!connect} admits one multicast connection using at most [x_limit]
    middle modules (the paper's routing strategy behind Theorems 1-2)
    and {!disconnect} releases it — the dynamic, any-sequence setting in
    which the nonblocking conditions are claimed.

    The two constructions:
    - {!Msw_dominant}: input- and middle-stage modules are MSW, so a
      connection sourced on wavelength [lambda_s] rides the
      [lambda_s]-plane through the first two stages;
    - {!Maw_dominant}: input- and middle-stage modules are MAW, so every
      link wavelength is fungible (converters retune hop by hop).

    The output-stage model is the network's model: it decides which
    destination wavelength patterns are legal, and — in the MAW-dominant
    construction — whether the middle-to-output hop may land on any free
    wavelength (MSDW/MAW output modules convert on entry) or must arrive
    on the destination wavelength itself (MSW output modules cannot
    convert). *)

open Wdm_core

type construction = Msw_dominant | Maw_dominant

type link_impl =
  | Bitset
      (** Pack each link's [k]-wavelength plane into one int bitmask
          (bit [w-1] = wavelength [w]), so first-free / coverage probes
          are single mask operations.  Requires [k <= 62].  Default
          whenever it fits. *)
  | Reference
      (** The original bool-array planes and list-based selection.
          Doubles as the fallback for [k > 62] and as the executable
          specification: for any seeded workload both implementations
          choose byte-identical routes (the equivalence property tests
          pin this down). *)

type strategy =
  | Min_intersection
      (** Lemma 5's argument made operational: repeatedly pick the
          available middle module minimizing the residual intersection
          (equivalently, covering the most still-uncovered output
          modules).  Default. *)
  | First_fit
      (** Scan middle modules in index order, keep any that covers
          something new. *)
  | Exhaustive
      (** Search all subsets of available middles of size [<= x_limit]
          for a cover, smallest first.  Exponential; for ablation and
          small fabrics only. *)
  | Named of string
      (** A strategy plug-in by registry name (see {!Strategy}).  The
          built-ins are themselves registered ([Named "min-intersection"]
          routes byte-identically to {!Min_intersection}, and likewise
          for [first-fit]/[exhaustive]); the lab strategies ([adaptive],
          [annealed], [crosstalk:BASE:DB]) are only reachable this way.
          {!create}/{!restore} refuse unknown names. *)

type hop = {
  middle : int;  (** middle module index, 1-based *)
  stage1_wl : int;  (** wavelength on the input-module -> middle link *)
  serves : (int * int) list;
      (** (output module, wavelength on the middle -> output link) *)
}

type route = {
  id : int;
  connection : Connection.t;
  input_switch : int;
  hops : hop list;
}

type blocked_info = {
  fanout_switches : int list;  (** output modules the request spans *)
  available_middles : int list;  (** middles with a free stage-1 slot *)
  uncovered : int list;  (** output modules no selected middle reaches *)
}

type error =
  | Invalid of Assignment.error
  | Source_busy of Endpoint.t
  | Destination_busy of Endpoint.t
  | Unserviceable of Wdm_faults.Fault.t
      (** an endpoint of the request sits on a failed input/output
          module; no route can exist until the fault clears *)
  | Blocked of blocked_info

(** A typed reason a {!disconnect} was refused.  Route ids are never
    reused, so the two cases are unambiguous: {!Unknown_route} means the
    allocator never issued the id (a caller bug), {!Already_released}
    means the route existed but was torn down earlier — by an explicit
    disconnect, a fault, or {!clear} (often benign under churn). *)
type disconnect_error = Unknown_route of int | Already_released of int

type t

(** Construction-time options gathered into one value, so call sites
    name only what they override and new knobs do not ripple a sixth
    optional argument through every signature that wraps {!create}. *)
module Config : sig
  type t = {
    strategy : strategy;
    x_limit : int option;
        (** [None]: the optimal [x] of the construction's nonblocking
            condition (Theorem 1 or 2) for the topology. *)
    link_impl : link_impl option;
        (** [None]: {!Bitset} when [k <= 62], {!Reference} otherwise.
            Route choice is identical either way. *)
    rearrange_limit : int;
        (** Cap on how many existing connections
            {!connect_rearrangeable} will try to move aside for one
            blocked request. *)
    telemetry : Wdm_telemetry.Sink.t option;
        (** [None]: uninstrumented, with zero per-operation overhead. *)
  }

  val default : t
  (** [Min_intersection], optimal [x_limit], auto [link_impl],
      [rearrange_limit = 64], no telemetry. *)
end

val create :
  ?config:Config.t ->
  construction:construction ->
  output_model:Model.t ->
  Topology.t ->
  t
(** [create ?config ~construction ~output_model topo] builds an empty
    network; [config] defaults to {!Config.default}, and overrides read
    as [{ Config.default with x_limit = Some 2 }].
    @raise Invalid_argument for [Bitset] with [k > 62], or a
    non-positive [x_limit] / [rearrange_limit].

    When [config.telemetry] is set, the network is instrumented:
    {!connect}, {!connect_rearrangeable} and {!disconnect} feed
    counters ([wdmnet_connect_attempts_total],
    [wdmnet_connect_success_total], a per-cause
    [wdmnet_connect_blocked_total] family keyed by the {!error}
    constructor, [wdmnet_rearrange_moves_total]) and latency
    histograms; fault injection feeds
    [wdmnet_faults_injected_total]/[wdmnet_faults_cleared_total]/
    [wdmnet_fault_teardowns_total]; gauges track {!utilization},
    {!input_utilization}, active routes, faults in force and
    per-middle first-stage occupancy.  If the sink carries a
    {!Wdm_telemetry.Trace.t}, every connect/block/disconnect/
    rearrange/fault event is appended to it. *)

(** The routing-strategy plug-in API (the engine half of the shared
    {!Wdm_core.Strategy} contract).

    A plug-in sees one admission attempt as a {!ctx} — the live network
    plus the request's sourcing coordinates and the output modules it
    must cover — and answers with a {!plan}: which middle modules to
    use and which output modules each serves.  The engine validates the
    plan against its invariants (distinct available middles, exact
    cover, at most [x_limit] picks) and then allocates wavelengths
    exactly as it does for the built-ins; a plug-in returning [None]
    surfaces as an ordinary {!Blocked} refusal.

    Determinism contract (see {!Wdm_core.Strategy}): [select] must be a
    pure function of the context.  Derive any pseudo-randomness from
    {!request_key} via {!Wdm_core.Strategy.Det_rng} so WAL replays make
    identical choices.

    Registered names: [min-intersection], [first-fit], [exhaustive]
    (the built-ins as plug-ins), [adaptive] (least-occupied middles
    first, driven by the live per-middle occupancy), [annealed]
    (simulated annealing over the middle scan order, request-seeded),
    and the parameterized decorator [crosstalk[:BASE[:DB]]] (reject
    plans whose worst-case {!Wdm_optics.Crosstalk} margin falls below
    DB, default base [min-intersection], default budget 20 dB). *)
module Strategy : sig
  type ctx

  val input_switch : ctx -> int
  val src_wl : ctx -> int

  val fanout : ctx -> int list
  (** Output modules the request spans (ascending, distinct). *)

  val middles : ctx -> int
  (** [m], the middle-stage width. *)

  val x_limit : ctx -> int

  val available : ctx -> int list
  (** Middles with a usable first-stage slot for this request,
      ascending. *)

  val covers : ctx -> middle:int -> int -> bool
  (** Whether [middle] can currently reach the given output module for
      this request. *)

  val occupancy : ctx -> middle:int -> int
  (** Busy first-stage slots into [middle] — the live load signal the
      adaptive strategy ranks by. *)

  val request_key : ctx -> int
  (** A deterministic fingerprint of (input switch, source wavelength,
      fanout): the replay-safe seed for stochastic strategies. *)

  type plan = (int * int list) list
  (** [(middle, output modules it serves)] — the shape {!select}
      executes. *)

  type t = { name : string; doc : string; select : ctx -> plan option }

  val register : t -> unit
  (** Install (or replace) a plug-in under its [name]; reachable as
      [Named name] afterwards. *)

  val register_parser : (string -> t option) -> unit
  (** Install a parser for parameterized names such as
      [crosstalk:first-fit:18]. *)

  val resolve : string -> t option
  val names : unit -> string list

  val cover_in_order : ctx -> int list -> plan option
  (** Greedy cover scanning middles in exactly the given order (the
      first-fit kernel): the building block for ordering-based
      strategies. *)
end

val strategy_of_string : string -> (strategy, string) result
(** Built-in names map to their enum constructors; any other name the
    {!Strategy} registry resolves maps to [Named]. *)

val strategy_to_string : strategy -> string
val pp_strategy : Format.formatter -> strategy -> unit

val topology : t -> Topology.t
val construction : t -> construction
val output_model : t -> Model.t
val x_limit : t -> int
val strategy : t -> strategy
val link_impl : t -> link_impl

val connect : t -> Connection.t -> (route, error) result

val disconnect : t -> int -> (route, disconnect_error) result
(** Releases a route by id; returns it.  Refusals are typed (see
    {!disconnect_error}) so callers branch on the constructor instead
    of string-matching; render with {!Error.disconnect_to_string}. *)

val connect_rearrangeable : t -> Connection.t -> (route * int, error) result
(** Like {!connect}, but when the request blocks, tries to admit it by
    rerouting one existing connection (tear it down, place the request,
    put the old connection back on fresh links).  Returns the route and
    the number of connections that were rerouted (0 when plain
    {!connect} sufficed).  On failure the network state is untouched.

    Strict-sense nonblocking (Theorems 1-2) needs no rearrangement by
    definition; this shows the classic trade-off — a smaller [m]
    suffices when moving existing connections is acceptable.

    A rerouted victim keeps its route id: only its hops change, so
    handles held by callers (e.g. the churn driver's active list, or a
    pending {!disconnect}) remain valid across the move.

    Victims are tried fewest-hops-first (ties by ascending id), and at
    most [rearrange_limit] of them: a route spanning fewer middles is
    the likeliest to re-home, and the cap keeps one admission from
    degenerating into a sweep over the whole live population. *)

val active_routes : t -> route list
val find_route : t -> int -> route option

val destination_multiset : t -> int -> Multiset.t
(** [M_j]: connections per middle-to-output link (all wavelengths). *)

val destination_multiset_plane : t -> middle:int -> wl:int -> Multiset.t
(** The single-wavelength [M_j] of one plane ([k = 1] multiset), the
    view relevant to the MSW-dominant construction. *)

val stage1_in_use : t -> input_switch:int -> middle:int -> int
(** Wavelengths in use on one first-stage link. *)

val utilization : t -> float
(** Fraction of busy {e output} endpoints: busy destinations over
    [num_ports * k].  In a multicast network this is not the same as
    {!input_utilization} — one busy source can light many
    destinations. *)

val input_utilization : t -> float
(** Fraction of busy {e input} endpoints: busy sources over
    [num_ports * k]. *)

val clear : t -> unit
(** Tear down everything. *)

val copy : t -> t
(** An independent snapshot: connects/disconnects on the copy do not
    affect the original.  Used by the exhaustive adversary search.
    The copy is not instrumented — speculative operations on it must
    not pollute the original's telemetry. *)

(** {1 Persistence}

    {!snapshot} captures the minimal durable state of a network: its
    construction parameters, the live routes (with their allocated
    hops), the fault set, and the route-id allocator.  Everything else
    — link-plane occupancy, busy endpoint sets, per-middle tallies, the
    derived fault views — is re-derived by {!restore}, so a snapshot
    has a single source of truth and cannot encode an internally
    inconsistent state.  The on-disk binary encoding of this value
    lives in [Wdm_persist.Store]; this layer is format-agnostic. *)

type snapshot = {
  s_topology : Topology.t;
  s_construction : construction;
  s_output_model : Model.t;
  s_x_limit : int;
  s_strategy : strategy;
  s_link_impl : link_impl;
  s_rearrange_limit : int;
  s_next_id : int;  (** route-id allocator; ids are never reused *)
  s_routes : route list;  (** ascending id *)
  s_faults : Wdm_faults.Fault.t list;  (** {!Wdm_faults.Fault.compare} order *)
}

val snapshot : t -> snapshot

val restore : ?telemetry:Wdm_telemetry.Sink.t -> snapshot -> t
(** A network behaviorally indistinguishable from the one {!snapshot}
    captured: both {!Bitset} and {!Reference} planes are rebuilt by
    re-marking each route's hops, the fault views by re-applying the
    fault set, so any operation sequence applied to the restored
    network chooses byte-identical routes (and ids) to the original
    continuing uninterrupted.  [telemetry] instruments the restored
    network exactly as {!create} would — counters start at the sink's
    current values (history is not replayed into them), gauges are set
    to the restored state.
    @raise Invalid_argument on an inconsistent snapshot (fault indices
    outside the topology, a route id at or above [s_next_id]). *)

(** {1 Fault injection}

    Hardware faults ({!Wdm_faults.Fault.t}) degrade the network in
    place: routing transparently avoids failed middles, dead lasers and
    stuck converters, requests whose endpoints sit on a failed
    input/output module are refused with {!Unserviceable}, and live
    routes crossing a newly failed component are torn down (their
    connections are returned so a repair pass —
    {!Scheduler.repair} — can re-home them). *)

val inject_fault : t -> Wdm_faults.Fault.t -> Connection.t list
(** Take one component out of service.  Every live route traversing it
    is torn down and its connection returned (endpoints freed, so the
    caller may immediately re-request).  Idempotent: injecting a fault
    already present returns [[]].  A [Converter] fault only claims the
    routes that actually retuned on that link — MSW middle modules
    never convert, so MSW-dominant routes are immune.
    @raise Invalid_argument if the fault's indices exceed the topology. *)

val clear_fault : t -> Wdm_faults.Fault.t -> unit
(** Return the component to service (a no-op if it was healthy).
    Routes lost to the fault are {e not} resurrected — re-request them
    or run {!Scheduler.repair}. *)

val faults : t -> Wdm_faults.Fault.t list
(** Faults currently in force, in {!Wdm_faults.Fault.compare} order. *)

val degraded : t -> bool
(** [faults t <> []]. *)

val fail_middle : t -> int -> Connection.t list
(** [inject_fault t (Middle j)] with a legacy bounds message.  Since
    Theorems 1-2 bound the middles a worst case needs, a network
    provisioned with [m_min + f] modules stays nonblocking under [f]
    such faults — the fault-tolerance rule
    {!Wdm_analysis.Fault_tolerance} verifies. *)

val repair_middle : t -> int -> unit
val failed_middles : t -> int list

(** The single rendering point for refusals.  The CLI, trace events,
    and the control-plane wire responses all format errors through
    this module, so a given cause reads identically everywhere it can
    surface. *)
module Error : sig
  type nonrec t = error

  val cause : t -> string
  (** Short stable tag ([invalid], [source_busy], [destination_busy],
      [unserviceable], [blocked]) — the same key that labels the
      [wdmnet_connect_blocked_total] counter family and trace [Block]
      events. *)

  val to_string : t -> string

  val to_json : t -> Wdm_telemetry.Json.t
  (** [{"cause": ..., ...}] with per-constructor fields: the offending
      endpoint, the fault, or the blocked-request picture
      (fanout/available/uncovered module lists). *)

  val disconnect_cause : disconnect_error -> string
  val disconnect_to_string : disconnect_error -> string
  val disconnect_to_json : disconnect_error -> Wdm_telemetry.Json.t
end

val pp_error : Format.formatter -> error -> unit
val pp_disconnect_error : Format.formatter -> disconnect_error -> unit
val pp_route : Format.formatter -> route -> unit

val pp_state : Format.formatter -> t -> unit
(** Renders the link occupancy: the input-module x middle-module
    wavelength-use matrix and each middle module's destination multiset
    — the state the Section 3 analysis reasons about, for demos and
    debugging. *)
