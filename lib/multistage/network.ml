open Wdm_core

type construction = Msw_dominant | Maw_dominant

type strategy =
  | Min_intersection
  | First_fit
  | Exhaustive
  | Named of string  (* a registered strategy plug-in, by registry name *)

type link_impl = Bitset | Reference

type hop = { middle : int; stage1_wl : int; serves : (int * int) list }

type route = {
  id : int;
  connection : Connection.t;
  input_switch : int;
  hops : hop list;
}

type blocked_info = {
  fanout_switches : int list;
  available_middles : int list;
  uncovered : int list;
}

type error =
  | Invalid of Assignment.error
  | Source_busy of Endpoint.t
  | Destination_busy of Endpoint.t
  | Unserviceable of Wdm_faults.Fault.t
  | Blocked of blocked_info

(* Route ids are allocated by a monotone counter and never reused, so
   the two failure modes are distinguishable for free: an id the
   allocator never handed out is [Unknown_route]; one it did hand out
   but which is gone from the live map was torn down earlier
   ([Already_released]) — by an explicit disconnect, a fault, or
   [clear]. *)
type disconnect_error = Unknown_route of int | Already_released of int

module Eset = Set.Make (Endpoint)
module Imap = Map.Make (Int)
module Iset = Set.Make (Int)
module Fault = Wdm_faults.Fault
module Tel = Wdm_telemetry

module Pset = Set.Make (struct
  type t = int * int

  (* explicit comparator: [middle_covers] probes this set on the hot
     path, and polymorphic compare is both slower and fragile should
     the key ever grow beyond an int pair *)
  let compare (m1, o1) (m2, o2) =
    match Int.compare m1 m2 with 0 -> Int.compare o1 o2 | c -> c
end)

(* ----- link-state planes ----------------------------------------------- *)

(* One stage's wavelength occupancy, busy and dead lasers side by side.
   [SPacked] stores each link's k-slot plane as one int bitmask (bit
   [w-1] = wavelength [w]); it requires [k <= 62].  [SWide] is the
   original bool-array representation: it is both the fallback for
   larger [k] and the retained reference implementation that the
   equivalence property tests and the benchmark's before/after
   comparison run against. *)
type stage_state =
  | SPacked of { busy : int array array; dead : int array array }
  | SWide of { busy : bool array array array; dead : bool array array array }

let max_packed_k = 62

let make_stage impl ~rows ~cols ~k =
  match impl with
  | Bitset ->
    SPacked
      { busy = Array.make_matrix rows cols 0;
        dead = Array.make_matrix rows cols 0 }
  | Reference ->
    SWide
      {
        busy =
          Array.init rows (fun _ ->
              Array.init cols (fun _ -> Array.make k false));
        dead =
          Array.init rows (fun _ ->
              Array.init cols (fun _ -> Array.make k false));
      }

let first_live_free_wide busy dead =
  let rec go i =
    if i >= Array.length busy then None
    else if (not busy.(i)) && not dead.(i) then Some (i + 1)
    else go (i + 1)
  in
  go 0

let slot_busy st ~row ~col ~wl =
  match st with
  | SPacked { busy; _ } -> busy.(row - 1).(col - 1) land (1 lsl (wl - 1)) <> 0
  | SWide { busy; _ } -> busy.(row - 1).(col - 1).(wl - 1)

(* usable = neither busy nor served by a dead laser *)
let slot_live_free st ~row ~col ~wl =
  match st with
  | SPacked { busy; dead } ->
    (busy.(row - 1).(col - 1) lor dead.(row - 1).(col - 1))
    land (1 lsl (wl - 1))
    = 0
  | SWide { busy; dead } ->
    (not busy.(row - 1).(col - 1).(wl - 1))
    && not dead.(row - 1).(col - 1).(wl - 1)

let slot_first_free st ~k ~row ~col =
  match st with
  | SPacked { busy; dead } -> (
    match
      Bitops.lowest_clear ~width:k
        (busy.(row - 1).(col - 1) lor dead.(row - 1).(col - 1))
    with
    | Some b -> Some (b + 1)
    | None -> None)
  | SWide { busy; dead } ->
    first_live_free_wide busy.(row - 1).(col - 1) dead.(row - 1).(col - 1)

let slot_used_count st ~row ~col =
  match st with
  | SPacked { busy; _ } -> Bitops.popcount busy.(row - 1).(col - 1)
  | SWide { busy; _ } ->
    Array.fold_left
      (fun acc b -> if b then acc + 1 else acc)
      0
      busy.(row - 1).(col - 1)

let slot_set st ~row ~col ~wl =
  match st with
  | SPacked { busy; _ } ->
    busy.(row - 1).(col - 1) <- busy.(row - 1).(col - 1) lor (1 lsl (wl - 1))
  | SWide { busy; _ } -> busy.(row - 1).(col - 1).(wl - 1) <- true

let slot_unset st ~row ~col ~wl =
  match st with
  | SPacked { busy; _ } ->
    busy.(row - 1).(col - 1) <-
      busy.(row - 1).(col - 1) land lnot (1 lsl (wl - 1))
  | SWide { busy; _ } -> busy.(row - 1).(col - 1).(wl - 1) <- false

let slot_dead_set st ~row ~col ~wl =
  match st with
  | SPacked { dead; _ } ->
    dead.(row - 1).(col - 1) <- dead.(row - 1).(col - 1) lor (1 lsl (wl - 1))
  | SWide { dead; _ } -> dead.(row - 1).(col - 1).(wl - 1) <- true

let stage_reset_dead st =
  match st with
  | SPacked { dead; _ } ->
    Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) dead
  | SWide { dead; _ } ->
    Array.iter
      (fun row -> Array.iter (fun wls -> Array.fill wls 0 (Array.length wls) false) row)
      dead

let copy_stage = function
  | SPacked { busy; dead } ->
    SPacked { busy = Array.map Array.copy busy; dead = Array.map Array.copy dead }
  | SWide { busy; dead } ->
    SWide
      {
        busy = Array.map (Array.map Array.copy) busy;
        dead = Array.map (Array.map Array.copy) dead;
      }

(* Pre-registered instruments: the name lookup happens once in
   [create], so the hot paths touch fields directly. *)
type instruments = {
  sink : Tel.Sink.t;
  attempts : Tel.Metrics.counter;
  successes : Tel.Metrics.counter;
  blocked_invalid : Tel.Metrics.counter;
  blocked_source_busy : Tel.Metrics.counter;
  blocked_destination_busy : Tel.Metrics.counter;
  blocked_unserviceable : Tel.Metrics.counter;
  blocked_no_route : Tel.Metrics.counter;
  rearrange_moves : Tel.Metrics.counter;
  faults_injected : Tel.Metrics.counter;
  faults_cleared : Tel.Metrics.counter;
  fault_teardowns : Tel.Metrics.counter;
  g_utilization : Tel.Metrics.gauge;
  g_input_utilization : Tel.Metrics.gauge;
  g_active_routes : Tel.Metrics.gauge;
  g_faults_in_force : Tel.Metrics.gauge;
  g_stage1_occupancy : Tel.Metrics.gauge array;  (* index j-1 per middle *)
  h_connect : Tel.Histogram.t;
  h_connect_rearrangeable : Tel.Histogram.t;
  h_disconnect : Tel.Histogram.t;
}

type t = {
  topo : Topology.t;
  construction : construction;
  output_model : Model.t;
  x_limit : int;
  strategy : strategy;
  impl : link_impl;
  rearrange_limit : int;
  (* stage1: link (input module i, middle j); stage2: (middle j, output
     module p).  Rows/cols are 1-based at the API, 0-based inside. *)
  stage1 : stage_state;
  stage2 : stage_state;
  mutable busy_sources : Eset.t;
  mutable busy_dests : Eset.t;
  (* incremental tallies: [Set.cardinal]/[Map.cardinal] are O(n), so
     the gauges would otherwise rescan on every connect/disconnect *)
  mutable n_busy_sources : int;
  mutable n_busy_dests : int;
  mutable n_routes : int;
  middle_occ : int array;  (* busy stage-1 slots into middle j, index j-1 *)
  mutable next_id : int;
  mutable routes : route Imap.t;
  mutable faults : Fault.Set.t;
  (* derived views of [faults], rebuilt on every inject/clear *)
  mutable failed_middles : Iset.t;
  mutable failed_inputs : Iset.t;
  mutable failed_outputs : Iset.t;
  mutable dead_converters : Pset.t;  (* (middle, output) pass-through links *)
  (* scratch for the allocation-free selection loops; never observable
     across calls *)
  scratch_uncovered : int array;
  instruments : instruments option;
  (* the resolved plug-in when [strategy] is [Named]; resolved once at
     create/restore so the hot path never consults the registry *)
  plugin : splugin option;
}

(* The plug-in surface (public as [Network.Strategy]): a selection
   context bundling the engine state with one request, and the plug-in
   record itself.  Mutually recursive with [t] so the resolved plug-in
   can be cached on the network. *)
and sctx = {
  net : t;
  c_input_switch : int;
  c_src_wl : int;
  c_fanout : int list;  (* output modules the request must cover *)
}

and splugin = {
  name : string;
  doc : string;
  select : sctx -> (int * int list) list option;
}

module Plugin_registry = Wdm_core.Strategy.Registry (struct
  type t = splugin

  let name p = p.name
end)

let register_instruments (topo : Topology.t) (sink : Tel.Sink.t) =
  let reg = sink.Tel.Sink.metrics in
  let c help name = Tel.Metrics.counter reg ~help name in
  {
    sink;
    attempts =
      c "Connection requests (connect and connect_rearrangeable)"
        "wdmnet_connect_attempts_total";
    successes = c "Requests admitted" "wdmnet_connect_success_total";
    blocked_invalid =
      c "Requests refused by cause"
        "wdmnet_connect_blocked_total{cause=\"invalid\"}";
    blocked_source_busy =
      c "" "wdmnet_connect_blocked_total{cause=\"source_busy\"}";
    blocked_destination_busy =
      c "" "wdmnet_connect_blocked_total{cause=\"destination_busy\"}";
    blocked_unserviceable =
      c "" "wdmnet_connect_blocked_total{cause=\"unserviceable\"}";
    blocked_no_route = c "" "wdmnet_connect_blocked_total{cause=\"blocked\"}";
    rearrange_moves =
      c "Existing connections moved to admit a request"
        "wdmnet_rearrange_moves_total";
    faults_injected = c "Faults taken into force" "wdmnet_faults_injected_total";
    faults_cleared = c "Faults cleared" "wdmnet_faults_cleared_total";
    fault_teardowns =
      c "Live routes torn down by fault injection"
        "wdmnet_fault_teardowns_total";
    g_utilization =
      Tel.Metrics.gauge reg ~help:"Fraction of busy output endpoints"
        "wdmnet_utilization";
    g_input_utilization =
      Tel.Metrics.gauge reg ~help:"Fraction of busy input endpoints"
        "wdmnet_input_utilization";
    g_active_routes =
      Tel.Metrics.gauge reg ~help:"Connections currently routed"
        "wdmnet_active_routes";
    g_faults_in_force =
      Tel.Metrics.gauge reg ~help:"Component faults currently in force"
        "wdmnet_faults_in_force";
    g_stage1_occupancy =
      Array.init topo.m (fun j ->
          Tel.Metrics.gauge reg
            ~help:"Busy first-stage wavelength slots into this middle module"
            (Printf.sprintf "wdmnet_stage1_occupancy{middle=\"%d\"}" (j + 1)));
    h_connect =
      Tel.Metrics.histogram reg ~help:"Latency of Network.connect"
        "wdmnet_connect_latency_seconds";
    h_connect_rearrangeable =
      Tel.Metrics.histogram reg
        ~help:"Latency of Network.connect_rearrangeable"
        "wdmnet_connect_rearrangeable_latency_seconds";
    h_disconnect =
      Tel.Metrics.histogram reg ~help:"Latency of Network.disconnect"
        "wdmnet_disconnect_latency_seconds";
  }

module Config = struct
  type t = {
    strategy : strategy;
    x_limit : int option;  (** [None]: Theorem 1/2 optimum for the topology *)
    link_impl : link_impl option;  (** [None]: [Bitset] when it fits *)
    rearrange_limit : int;
    telemetry : Tel.Sink.t option;
  }

  let default =
    {
      strategy = Min_intersection;
      x_limit = None;
      link_impl = None;
      rearrange_limit = 64;
      telemetry = None;
    }
end

let create ?(config = Config.default) ~construction ~output_model
    (topo : Topology.t) =
  let { Config.strategy; x_limit; link_impl; rearrange_limit; telemetry } =
    config
  in
  let default_x () =
    match construction with
    | Msw_dominant -> (Conditions.msw_dominant ~n:topo.n ~r:topo.r).x
    | Maw_dominant -> (Conditions.maw_dominant ~n:topo.n ~r:topo.r ~k:topo.k).x
  in
  let x_limit = match x_limit with Some x -> x | None -> default_x () in
  if x_limit < 1 then invalid_arg "Network.create: x_limit must be >= 1";
  if rearrange_limit < 1 then
    invalid_arg "Network.create: rearrange_limit must be >= 1";
  let impl =
    match link_impl with
    | Some Bitset when topo.k > max_packed_k ->
      invalid_arg
        (Printf.sprintf "Network.create: Bitset link state needs k <= %d"
           max_packed_k)
    | Some impl -> impl
    | None -> if topo.k <= max_packed_k then Bitset else Reference
  in
  let plugin =
    match strategy with
    | Min_intersection | First_fit | Exhaustive -> None
    | Named name -> (
      match Plugin_registry.resolve name with
      | Some _ as p -> p
      | None ->
        invalid_arg
          (Printf.sprintf "Network.create: unknown strategy %S" name))
  in
  {
    topo;
    construction;
    output_model;
    x_limit;
    strategy;
    impl;
    rearrange_limit;
    stage1 = make_stage impl ~rows:topo.r ~cols:topo.m ~k:topo.k;
    stage2 = make_stage impl ~rows:topo.m ~cols:topo.r ~k:topo.k;
    busy_sources = Eset.empty;
    busy_dests = Eset.empty;
    n_busy_sources = 0;
    n_busy_dests = 0;
    n_routes = 0;
    middle_occ = Array.make topo.m 0;
    next_id = 0;
    routes = Imap.empty;
    faults = Fault.Set.empty;
    failed_middles = Iset.empty;
    failed_inputs = Iset.empty;
    failed_outputs = Iset.empty;
    dead_converters = Pset.empty;
    scratch_uncovered = Array.make topo.r 0;
    instruments = Option.map (register_instruments topo) telemetry;
    plugin;
  }

let topology t = t.topo
let construction t = t.construction
let output_model t = t.output_model
let x_limit t = t.x_limit
let strategy t = t.strategy
let link_impl t = t.impl

(* ----- link-state helpers --------------------------------------------- *)

let stage1_free_wl t ~input_switch ~middle ~wl =
  slot_live_free t.stage1 ~row:input_switch ~col:middle ~wl

let stage1_used_count t ~input_switch ~middle =
  slot_used_count t.stage1 ~row:input_switch ~col:middle

let stage1_first_free t ~input_switch ~middle =
  slot_first_free t.stage1 ~k:t.topo.k ~row:input_switch ~col:middle

let stage1_any_free t ~input_switch ~middle =
  stage1_first_free t ~input_switch ~middle <> None

let stage2_free_wl t ~middle ~out_switch ~wl =
  slot_live_free t.stage2 ~row:middle ~col:out_switch ~wl

let stage2_first_free t ~middle ~out_switch =
  slot_first_free t.stage2 ~k:t.topo.k ~row:middle ~col:out_switch

let stage2_any_free t ~middle ~out_switch =
  stage2_first_free t ~middle ~out_switch <> None

(* Busy-bit writes funnel through these so the per-middle occupancy
   tally can never drift from the planes. *)
let s1_occupy t ~input_switch ~middle ~wl =
  slot_set t.stage1 ~row:input_switch ~col:middle ~wl;
  t.middle_occ.(middle - 1) <- t.middle_occ.(middle - 1) + 1

let s1_release t ~input_switch ~middle ~wl =
  slot_unset t.stage1 ~row:input_switch ~col:middle ~wl;
  t.middle_occ.(middle - 1) <- t.middle_occ.(middle - 1) - 1

let s2_occupy t ~middle ~out_switch ~wl =
  slot_set t.stage2 ~row:middle ~col:out_switch ~wl

let s2_release t ~middle ~out_switch ~wl =
  slot_unset t.stage2 ~row:middle ~col:out_switch ~wl

(* Whether middle [j] has a usable first-stage slot for a request sourced
   at [input_switch] on wavelength [src_wl]. *)
let middle_available t ~input_switch ~src_wl j =
  (not (Iset.mem j t.failed_middles))
  &&
  match t.construction with
  | Msw_dominant -> stage1_free_wl t ~input_switch ~middle:j ~wl:src_wl
  | Maw_dominant -> stage1_any_free t ~input_switch ~middle:j

(* The wavelength a hop through middle [j] would ride on its first-stage
   link, given the current state.  Deterministic, so the coverage check
   and the later allocation agree. *)
let prospective_stage1_wl t ~input_switch ~src_wl j =
  match t.construction with
  | Msw_dominant -> Some src_wl
  | Maw_dominant -> stage1_first_free t ~input_switch ~middle:j

(* Whether middle [j] can reach output module [p] for this request. *)
let middle_covers t ~input_switch ~src_wl j p =
  (not (Iset.mem p t.failed_outputs))
  &&
  match t.construction with
  | Msw_dominant -> stage2_free_wl t ~middle:j ~out_switch:p ~wl:src_wl
  | Maw_dominant -> (
    let converter_dead = Pset.mem (j, p) t.dead_converters in
    match t.output_model with
    | Model.MSW ->
      (* MSW output modules cannot convert: the hop must arrive on the
         destination wavelength, which under the MSW network model is
         the source wavelength.  A dead middle converter additionally
         pins the hop to its incoming wavelength, so both must be the
         source wavelength. *)
      stage2_free_wl t ~middle:j ~out_switch:p ~wl:src_wl
      && ((not converter_dead)
         || prospective_stage1_wl t ~input_switch ~src_wl j = Some src_wl)
    | Model.MSDW | Model.MAW ->
      if converter_dead then
        (* pass-through link: the hop leaves [j] on the wavelength it
           arrived on *)
        match prospective_stage1_wl t ~input_switch ~src_wl j with
        | None -> false
        | Some w1 -> stage2_free_wl t ~middle:j ~out_switch:p ~wl:w1
      else stage2_any_free t ~middle:j ~out_switch:p)

let available_middles t ~input_switch ~src_wl =
  List.filter
    (fun j -> middle_available t ~input_switch ~src_wl j)
    (List.init t.topo.m (fun j -> j + 1))

(* ----- middle-module selection ---------------------------------------- *)

(* Two families of selectors.  The [ref_*] versions are the original
   list-based implementations, kept verbatim as the reference the
   equivalence property test and the benchmark compare against (and as
   the only implementation for [Reference]-mode networks).  The [fast_*]
   versions score with a scratch array and per-link mask probes; they
   must choose byte-identical routes — both scan middles in ascending
   index order and break score ties toward the lower index. *)

(* Min-intersection greedy (the Lemma 5 argument): repeatedly take the
   middle covering the most still-uncovered output modules, i.e.
   minimizing the residual intersection. *)
let ref_min_intersection t ~input_switch ~src_wl available fanout =
  let rec go chosen uncovered remaining picks_left =
    if uncovered = [] then Some (List.rev chosen)
    else if picks_left = 0 || remaining = [] then None
    else begin
      let scored =
        List.map
          (fun j ->
            let covered =
              List.filter (fun p -> middle_covers t ~input_switch ~src_wl j p) uncovered
            in
            (j, covered))
          remaining
      in
      let best =
        List.fold_left
          (fun acc (j, covered) ->
            match acc with
            | None -> Some (j, covered)
            | Some (_, best_cov) ->
              if List.length covered > List.length best_cov then Some (j, covered)
              else acc)
          None scored
      in
      match best with
      | None | Some (_, []) -> None
      | Some (j, covered) ->
        let uncovered' =
          List.filter (fun p -> not (List.mem p covered)) uncovered
        in
        let remaining' = List.filter (fun j' -> j' <> j) remaining in
        go ((j, covered) :: chosen) uncovered' remaining' (picks_left - 1)
    end
  in
  go [] fanout available t.x_limit

let ref_first_fit t ~input_switch ~src_wl available fanout =
  let rec go chosen uncovered remaining picks_left =
    if uncovered = [] then Some (List.rev chosen)
    else
      match remaining with
      | [] -> None
      | j :: rest ->
        if picks_left = 0 then None
        else begin
          let covered =
            List.filter (fun p -> middle_covers t ~input_switch ~src_wl j p) uncovered
          in
          if covered = [] then go chosen uncovered rest picks_left
          else begin
            let uncovered' =
              List.filter (fun p -> not (List.mem p covered)) uncovered
            in
            go ((j, covered) :: chosen) uncovered' rest (picks_left - 1)
          end
        end
  in
  go [] fanout available t.x_limit

(* Fast path: the still-uncovered output modules live in a scratch
   array that is compacted in place as a pick covers some of them, so a
   selection round allocates nothing but the winner's covered list. *)
let load_uncovered t fanout =
  let unc = t.scratch_uncovered in
  let n = ref 0 in
  List.iter
    (fun p ->
      unc.(!n) <- p;
      incr n)
    fanout;
  !n

(* Split [unc.(0 .. n_unc-1)] on coverage by [j]: covered elements (in
   order) are returned as a list, the rest are compacted to the front.
   Returns (covered, new n_unc). *)
let extract_covered t ~input_switch ~src_wl j n_unc =
  let unc = t.scratch_uncovered in
  let covered = ref [] in
  let w = ref 0 in
  for idx = 0 to n_unc - 1 do
    let p = unc.(idx) in
    if middle_covers t ~input_switch ~src_wl j p then covered := p :: !covered
    else begin
      unc.(!w) <- p;
      incr w
    end
  done;
  (List.rev !covered, !w)

let fast_min_intersection t ~input_switch ~src_wl fanout =
  let m = t.topo.m in
  let unc = t.scratch_uncovered in
  let rec pick chosen_rev chosen_js n_unc picks_left =
    if n_unc = 0 then Some (List.rev chosen_rev)
    else if picks_left = 0 then None
    else begin
      let best_j = ref 0 and best_cov = ref 0 in
      for j = 1 to m do
        if
          (not (List.mem j chosen_js))
          && middle_available t ~input_switch ~src_wl j
        then begin
          let c = ref 0 in
          for idx = 0 to n_unc - 1 do
            if middle_covers t ~input_switch ~src_wl j unc.(idx) then incr c
          done;
          if !c > !best_cov then begin
            best_j := j;
            best_cov := !c
          end
        end
      done;
      if !best_cov = 0 then None
      else begin
        let j = !best_j in
        let covered, n_unc = extract_covered t ~input_switch ~src_wl j n_unc in
        pick ((j, covered) :: chosen_rev) (j :: chosen_js) n_unc (picks_left - 1)
      end
    end
  in
  pick [] [] (load_uncovered t fanout) t.x_limit

let fast_first_fit t ~input_switch ~src_wl fanout =
  let m = t.topo.m in
  let rec go chosen_rev n_unc picks_left j =
    if n_unc = 0 then Some (List.rev chosen_rev)
    else if j > m then None
    else if not (middle_available t ~input_switch ~src_wl j) then
      go chosen_rev n_unc picks_left (j + 1)
    else if picks_left = 0 then None
    else begin
      let covered, n_unc' = extract_covered t ~input_switch ~src_wl j n_unc in
      if covered = [] then go chosen_rev n_unc picks_left (j + 1)
      else go ((j, covered) :: chosen_rev) n_unc' (picks_left - 1) (j + 1)
    end
  in
  go [] (load_uncovered t fanout) t.x_limit 1

(* Exhaustive: subsets of increasing size; returns the first full cover.
   Ablation-only, so it shares the list implementation in both modes. *)
let select_exhaustive t ~input_switch ~src_wl available fanout =
  let covers_of j = List.filter (fun p -> middle_covers t ~input_switch ~src_wl j p) fanout in
  let rec subsets size = function
    | [] -> if size = 0 then [ [] ] else []
    | j :: rest ->
      if size = 0 then [ [] ]
      else
        List.map (fun s -> j :: s) (subsets (size - 1) rest) @ subsets size rest
  in
  let try_size size =
    List.find_map
      (fun subset ->
        (* greedily attribute each output module to the first member
           that covers it *)
        let attribution =
          List.map (fun j -> (j, covers_of j)) subset
        in
        let rec assign uncovered acc = function
          | [] -> if uncovered = [] then Some (List.rev acc) else None
          | (j, cov) :: rest ->
            let mine = List.filter (fun p -> List.mem p uncovered) cov in
            let uncovered' = List.filter (fun p -> not (List.mem p mine)) uncovered in
            assign uncovered' ((j, mine) :: acc) rest
        in
        assign fanout [] attribution)
      (subsets size available)
  in
  let rec go size =
    if size > t.x_limit then None
    else match try_size size with Some s -> Some s | None -> go (size + 1)
  in
  go 1

(* ----- strategy plug-ins ----------------------------------------------- *)

module Strategy = struct
  type ctx = sctx
  type plan = (int * int list) list

  type t = splugin = {
    name : string;
    doc : string;
    select : ctx -> plan option;
  }

  let input_switch c = c.c_input_switch
  let src_wl c = c.c_src_wl
  let fanout c = c.c_fanout
  let middles c = c.net.topo.m
  let x_limit c = c.net.x_limit

  let available c =
    available_middles c.net ~input_switch:c.c_input_switch ~src_wl:c.c_src_wl

  let covers c ~middle p =
    middle_covers c.net ~input_switch:c.c_input_switch ~src_wl:c.c_src_wl
      middle p

  let occupancy c ~middle = c.net.middle_occ.(middle - 1)

  (* A replay-safe per-request seed: a pure fingerprint of the request
     against the sourcing coordinates, nothing stateful. *)
  let request_key c =
    List.fold_left Wdm_core.Strategy.mix
      (Wdm_core.Strategy.mix3 0x6d73 c.c_input_switch c.c_src_wl)
      c.c_fanout

  let cover_in_order c order =
    ref_first_fit c.net ~input_switch:c.c_input_switch ~src_wl:c.c_src_wl
      order c.c_fanout

  let register = Plugin_registry.register
  let register_parser = Plugin_registry.register_parser
  let resolve = Plugin_registry.resolve
  let names = Plugin_registry.names
end

(* A plug-in's plan is checked against the engine invariants the
   built-ins uphold by construction, so a buggy plug-in surfaces as a
   loud [Invalid_argument] instead of corrupting the link planes. *)
let check_plan t ~input_switch ~src_wl ~fanout ~name plan =
  let bad reason =
    invalid_arg
      (Printf.sprintf "Network: strategy %S returned an invalid plan (%s)"
         name reason)
  in
  let picks = List.filter (fun (_, serves) -> serves <> []) plan in
  if List.length picks > t.x_limit then bad "more than x_limit middles";
  let js = List.map fst plan in
  if List.length (List.sort_uniq Int.compare js) <> List.length js then
    bad "repeated middle";
  List.iter
    (fun (j, serves) ->
      if j < 1 || j > t.topo.m then bad "middle out of range";
      if serves <> [] && not (middle_available t ~input_switch ~src_wl j) then
        bad "unavailable middle";
      List.iter
        (fun p ->
          if not (List.mem p fanout) then
            bad "serves a module outside the request";
          if not (middle_covers t ~input_switch ~src_wl j p) then
            bad "claims an uncoverable module")
        serves)
    plan;
  let served = List.concat_map snd plan in
  if List.length (List.sort_uniq Int.compare served) <> List.length served
  then bad "module served twice";
  List.iter
    (fun p -> if not (List.mem p served) then bad "module left uncovered")
    fanout

let select t ~input_switch ~src_wl fanout =
  let raw =
    match (t.strategy, t.impl) with
    | Min_intersection, Bitset -> fast_min_intersection t ~input_switch ~src_wl fanout
    | First_fit, Bitset -> fast_first_fit t ~input_switch ~src_wl fanout
    | Min_intersection, Reference ->
      ref_min_intersection t ~input_switch ~src_wl
        (available_middles t ~input_switch ~src_wl)
        fanout
    | First_fit, Reference ->
      ref_first_fit t ~input_switch ~src_wl
        (available_middles t ~input_switch ~src_wl)
        fanout
    | Exhaustive, _ ->
      select_exhaustive t ~input_switch ~src_wl
        (available_middles t ~input_switch ~src_wl)
        fanout
    | Named _, _ -> (
      let p =
        match t.plugin with Some p -> p | None -> assert false
        (* create/restore resolve Named strategies or refuse *)
      in
      match
        p.select
          { net = t; c_input_switch = input_switch; c_src_wl = src_wl;
            c_fanout = fanout }
      with
      | None -> None
      | Some plan ->
        check_plan t ~input_switch ~src_wl ~fanout ~name:p.name plan;
        Some plan)
  in
  (* Drop members that ended up serving nothing. *)
  Option.map (List.filter (fun (_, serves) -> serves <> [])) raw

(* ----- built-in and lab strategy plug-ins ------------------------------ *)

(* Simulated annealing over the middle scan order: greedy covers under
   permuted orders are scored by (middles used, their live stage-1
   occupancy) and explored with a deterministic request-seeded RNG, so
   replays are byte-exact (see the Wdm_core.Strategy contract). *)
let annealed_select (c : sctx) =
  let t = c.net in
  let module R = Wdm_core.Strategy.Det_rng in
  let scan order =
    ref_first_fit t ~input_switch:c.c_input_switch ~src_wl:c.c_src_wl order
      c.c_fanout
  in
  let avail =
    available_middles t ~input_switch:c.c_input_switch ~src_wl:c.c_src_wl
  in
  if avail = [] then None
  else begin
    let cost = function
      | None -> max_int
      | Some plan ->
        List.fold_left
          (fun acc (j, _) -> acc + 1000 + t.middle_occ.(j - 1))
          0 plan
    in
    let rng = R.make ~seed:(Strategy.request_key c) in
    let order = Array.of_list avail in
    let n = Array.length order in
    let current_cost = ref (cost (scan avail)) in
    let best = ref (scan avail) in
    let best_cost = ref !current_cost in
    let temp = ref 2.0 in
    for _ = 1 to 32 do
      if n >= 2 then begin
        let i = R.int rng n and j = R.int rng n in
        let swap () =
          let tmp = order.(i) in
          order.(i) <- order.(j);
          order.(j) <- tmp
        in
        swap ();
        let cand = scan (Array.to_list order) in
        let cc = cost cand in
        let accept =
          cc <= !current_cost
          || cc < max_int
             && R.float rng
                < exp
                    (-.float_of_int (cc - !current_cost)
                    /. (1000. *. !temp))
        in
        if accept then current_cost := cc else swap ();
        if cc < !best_cost then begin
          best := cand;
          best_cost := cc
        end
      end;
      temp := !temp *. 0.85
    done;
    !best
  end

(* [crosstalk[:BASE[:DB]]]: decorate BASE (default min-intersection)
   with a crosstalk budget — reject any plan whose worst-case
   signal-to-crosstalk margin (Wdm_optics.Crosstalk, co-active stage-1
   channels on the chosen middles as first-order leakers) falls below
   DB (default 20 dB). *)
let crosstalk_parser full_name =
  match String.split_on_char ':' full_name with
  | "crosstalk" :: rest -> (
    let base, threshold =
      match rest with
      | [] -> (Some "min-intersection", Some 20.)
      | [ b ] -> (Some b, Some 20.)
      | [ b; db ] -> (Some b, float_of_string_opt db)
      | _ -> (None, None)
    in
    match (base, threshold) with
    | Some base, Some threshold_db ->
      Option.map
        (fun (bp : splugin) ->
          {
            name = full_name;
            doc =
              Printf.sprintf
                "%s, rejecting routes whose crosstalk margin drops below \
                 %g dB"
                base threshold_db;
            select =
              (fun c ->
                match bp.select c with
                | None -> None
                | Some plan ->
                  let sharers =
                    List.fold_left
                      (fun acc (j, _) -> acc + c.net.middle_occ.(j - 1))
                      0 plan
                  in
                  let fan =
                    List.fold_left
                      (fun acc (_, serves) -> acc + List.length serves)
                      0 plan
                  in
                  if
                    Wdm_optics.Crosstalk.acceptable ~threshold_db ~sharers
                      ~fanout:(max 1 fan) ()
                  then Some plan
                  else None);
          })
        (Plugin_registry.resolve base)
    | _ -> None)
  | _ -> None

let () =
  let reg name doc select = Strategy.register { name; doc; select } in
  reg "min-intersection"
    "greedy minimal-residual-intersection cover (Lemma 5); the \
     Min_intersection built-in"
    (fun c ->
      match c.net.impl with
      | Bitset ->
        fast_min_intersection c.net ~input_switch:c.c_input_switch
          ~src_wl:c.c_src_wl c.c_fanout
      | Reference ->
        ref_min_intersection c.net ~input_switch:c.c_input_switch
          ~src_wl:c.c_src_wl
          (available_middles c.net ~input_switch:c.c_input_switch
             ~src_wl:c.c_src_wl)
          c.c_fanout);
  reg "first-fit"
    "ascending middle scan keeping any module that covers something new; \
     the First_fit built-in"
    (fun c ->
      match c.net.impl with
      | Bitset ->
        fast_first_fit c.net ~input_switch:c.c_input_switch
          ~src_wl:c.c_src_wl c.c_fanout
      | Reference ->
        ref_first_fit c.net ~input_switch:c.c_input_switch ~src_wl:c.c_src_wl
          (available_middles c.net ~input_switch:c.c_input_switch
             ~src_wl:c.c_src_wl)
          c.c_fanout);
  reg "exhaustive"
    "smallest-subset search over available middles; the Exhaustive built-in"
    (fun c ->
      select_exhaustive c.net ~input_switch:c.c_input_switch
        ~src_wl:c.c_src_wl
        (available_middles c.net ~input_switch:c.c_input_switch
           ~src_wl:c.c_src_wl)
        c.c_fanout);
  reg "adaptive"
    "load-adaptive middle selection: cover using the least-occupied \
     middles first (live per-middle stage-1 occupancy, ties to the lower \
     index)"
    (fun c ->
      let occ j = c.net.middle_occ.(j - 1) in
      let order =
        List.stable_sort
          (fun a b -> compare (occ a, a) (occ b, b))
          (available_middles c.net ~input_switch:c.c_input_switch
             ~src_wl:c.c_src_wl)
      in
      Strategy.cover_in_order c order);
  reg "annealed"
    "simulated annealing over the middle scan order, seeded by the \
     request fingerprint (deterministic, replay-safe)"
    annealed_select;
  Strategy.register_parser crosstalk_parser

let strategy_to_string = function
  | Min_intersection -> "min-intersection"
  | First_fit -> "first-fit"
  | Exhaustive -> "exhaustive"
  | Named name -> name

let strategy_of_string = function
  | "min-intersection" -> Ok Min_intersection
  | "first-fit" -> Ok First_fit
  | "exhaustive" -> Ok Exhaustive
  | s ->
    if Plugin_registry.mem s then Ok (Named s)
    else
      Error
        (Printf.sprintf
           "unknown strategy %S (want %s, or crosstalk[:BASE[:DB]])" s
           (String.concat ", " (Plugin_registry.names ())))

let pp_strategy ppf s = Format.pp_print_string ppf (strategy_to_string s)

(* ----- admission ------------------------------------------------------ *)

let validate_request t (conn : Connection.t) =
  let spec = Topology.spec t.topo in
  match Assignment.validate spec t.output_model (Assignment.make [ conn ]) with
  | Error e -> Error (Invalid e)
  | Ok () ->
    let src_switch = fst (Topology.switch_of_port t.topo conn.source.port) in
    if Iset.mem src_switch t.failed_inputs then
      Error (Unserviceable (Fault.Input_module src_switch))
    else (
      match
        List.find_opt
          (fun (d : Endpoint.t) ->
            Iset.mem (fst (Topology.switch_of_port t.topo d.port)) t.failed_outputs)
          conn.destinations
      with
      | Some d ->
        Error
          (Unserviceable
             (Fault.Output_module (fst (Topology.switch_of_port t.topo d.port))))
      | None ->
        if Eset.mem conn.source t.busy_sources then Error (Source_busy conn.source)
        else (
          match
            List.find_opt (fun d -> Eset.mem d t.busy_dests) conn.destinations
          with
          | Some d -> Error (Destination_busy d)
          | None -> Ok ()))

let fanout_switches t (conn : Connection.t) =
  conn.destinations
  |> List.map (fun (d : Endpoint.t) -> fst (Topology.switch_of_port t.topo d.port))
  |> List.sort_uniq Int.compare

(* ----- telemetry ------------------------------------------------------- *)

let utilization t =
  float_of_int t.n_busy_dests
  /. float_of_int (Topology.num_ports t.topo * t.topo.k)

let input_utilization t =
  float_of_int t.n_busy_sources
  /. float_of_int (Topology.num_ports t.topo * t.topo.k)

(* O(1) per gauge on the packed path: every tally is maintained
   incrementally by the connect/release paths, so this never rescans
   the planes.  The wide (Reference) path deliberately keeps the
   pre-bitset recomputation — set cardinals and a full O(r*m*k) plane
   scan per call — so differential benchmarks measure the retained
   implementation at its original end-to-end cost.  Both paths set the
   same values (the lockstep equivalence tests compare final states). *)
let update_gauges t =
  match t.instruments with
  | None -> ()
  | Some i -> (
    Tel.Metrics.set i.g_faults_in_force
      (float_of_int (Fault.Set.cardinal t.faults));
    match t.stage1 with
    | SPacked _ ->
      Tel.Metrics.set i.g_utilization (utilization t);
      Tel.Metrics.set i.g_input_utilization (input_utilization t);
      Tel.Metrics.set i.g_active_routes (float_of_int t.n_routes);
      Array.iteri
        (fun j_minus1 g ->
          Tel.Metrics.set g (float_of_int t.middle_occ.(j_minus1)))
        i.g_stage1_occupancy
    | SWide _ ->
      let ports = float_of_int (Topology.num_ports t.topo * t.topo.k) in
      Tel.Metrics.set i.g_utilization
        (float_of_int (Eset.cardinal t.busy_dests) /. ports);
      Tel.Metrics.set i.g_input_utilization
        (float_of_int (Eset.cardinal t.busy_sources) /. ports);
      Tel.Metrics.set i.g_active_routes
        (float_of_int (Imap.cardinal t.routes));
      Array.iteri
        (fun j_minus1 g ->
          let occ = ref 0 in
          for input_switch = 1 to t.topo.r do
            occ := !occ + stage1_used_count t ~input_switch ~middle:(j_minus1 + 1)
          done;
          Tel.Metrics.set g (float_of_int !occ))
        i.g_stage1_occupancy)

let error_cause = function
  | Invalid _ -> "invalid"
  | Source_busy _ -> "source_busy"
  | Destination_busy _ -> "destination_busy"
  | Unserviceable _ -> "unserviceable"
  | Blocked _ -> "blocked"

(* The one place refusals are rendered: the CLI, trace events, and the
   control-plane wire responses all call through here, so a cause reads
   identically in an interactive session, a trace dump, and a client's
   error report. *)
module Error = struct
  type t = error

  let cause = error_cause

  let to_string = function
    | Invalid e -> Format.asprintf "invalid request: %a" Assignment.pp_error e
    | Source_busy e -> Format.asprintf "source %a busy" Endpoint.pp e
    | Destination_busy e ->
      Format.asprintf "destination %a busy" Endpoint.pp e
    | Unserviceable f ->
      Format.asprintf "unserviceable: %a is out of service" Fault.pp f
    | Blocked { fanout_switches; available_middles; uncovered } ->
      Printf.sprintf
        "blocked: fanout over output modules {%s}, %d available middles, \
         uncoverable modules {%s}"
        (String.concat "," (List.map string_of_int fanout_switches))
        (List.length available_middles)
        (String.concat "," (List.map string_of_int uncovered))

  let json_endpoint (e : Endpoint.t) =
    Tel.Json.Obj [ ("port", Tel.Json.Int e.port); ("wl", Tel.Json.Int e.wl) ]

  let to_json e =
    let open Tel.Json in
    let ints l = List (List.map (fun i -> Int i) l) in
    Obj
      (("cause", String (error_cause e))
      ::
      (match e with
      | Invalid a ->
        [ ("detail", String (Format.asprintf "%a" Assignment.pp_error a)) ]
      | Source_busy ep | Destination_busy ep ->
        [ ("endpoint", json_endpoint ep) ]
      | Unserviceable f -> [ ("fault", String (Fault.to_string f)) ]
      | Blocked { fanout_switches; available_middles; uncovered } ->
        [
          ("fanout_switches", ints fanout_switches);
          ("available_middles", ints available_middles);
          ("uncovered", ints uncovered);
        ]))

  let disconnect_cause = function
    | Unknown_route _ -> "unknown_route"
    | Already_released _ -> "already_released"

  let disconnect_to_string = function
    | Unknown_route id -> Printf.sprintf "no route %d was ever allocated" id
    | Already_released id -> Printf.sprintf "route %d already released" id

  let disconnect_to_json e =
    let open Tel.Json in
    let id = match e with Unknown_route id | Already_released id -> id in
    Obj [ ("cause", String (disconnect_cause e)); ("id", Int id) ]
end

let blocked_counter i = function
  | Invalid _ -> i.blocked_invalid
  | Source_busy _ -> i.blocked_source_busy
  | Destination_busy _ -> i.blocked_destination_busy
  | Unserviceable _ -> i.blocked_unserviceable
  | Blocked _ -> i.blocked_no_route

let route_middles route = List.map (fun h -> h.middle) route.hops
let route_stage1_wls route = List.map (fun h -> h.stage1_wl) route.hops

(* Shared by connect and connect_rearrangeable, which differ only in
   the histogram they feed and the moves they may report. *)
let note_connect_outcome t i ~dur ~histogram ~moved result =
  Tel.Metrics.inc i.attempts;
  Tel.Histogram.observe histogram dur;
  match result with
  | Ok route ->
    Tel.Metrics.inc i.successes;
    if moved > 0 then Tel.Metrics.add i.rearrange_moves moved;
    update_gauges t;
    Tel.Sink.record i.sink ~dur ~route_id:route.id
      ~middles:(route_middles route)
      ~wavelengths:(route_stage1_wls route) Tel.Trace.Connect
  | Error e ->
    Tel.Metrics.inc (blocked_counter i e);
    Tel.Sink.record i.sink ~dur
      ~detail:[ ("cause", error_cause e); ("error", Error.to_string e) ]
      Tel.Trace.Block

let mark_endpoints_busy t (conn : Connection.t) =
  t.busy_sources <- Eset.add conn.source t.busy_sources;
  t.busy_dests <-
    List.fold_left (fun s d -> Eset.add d s) t.busy_dests conn.destinations;
  t.n_busy_sources <- t.n_busy_sources + 1;
  t.n_busy_dests <- t.n_busy_dests + List.length conn.destinations

let mark_endpoints_free t (conn : Connection.t) =
  t.busy_sources <- Eset.remove conn.source t.busy_sources;
  t.busy_dests <-
    List.fold_left (fun s d -> Eset.remove d s) t.busy_dests conn.destinations;
  t.n_busy_sources <- t.n_busy_sources - 1;
  t.n_busy_dests <- t.n_busy_dests - List.length conn.destinations

let add_route t route =
  t.routes <- Imap.add route.id route t.routes;
  t.n_routes <- t.n_routes + 1

let remove_route t id =
  t.routes <- Imap.remove id t.routes;
  t.n_routes <- t.n_routes - 1

let connect_raw t (conn : Connection.t) =
  match validate_request t conn with
  | Error _ as e -> e
  | Ok () ->
    let src_wl = conn.source.wl in
    let input_switch = fst (Topology.switch_of_port t.topo conn.source.port) in
    let fanout = fanout_switches t conn in
    (match select t ~input_switch ~src_wl fanout with
    | None ->
      (* cold path: rebuild the availability/coverage picture only to
         explain the refusal *)
      let available = available_middles t ~input_switch ~src_wl in
      let covered_somewhere p =
        List.exists (fun j -> middle_covers t ~input_switch ~src_wl j p) available
      in
      Error
        (Blocked
           {
             fanout_switches = fanout;
             available_middles = available;
             uncovered = List.filter (fun p -> not (covered_somewhere p)) fanout;
           })
    | Some chosen ->
      (* Allocate wavelengths hop by hop. *)
      let hops =
        List.map
          (fun (j, serves) ->
            let stage1_wl =
              match t.construction with
              | Msw_dominant -> src_wl
              | Maw_dominant -> (
                match stage1_first_free t ~input_switch ~middle:j with
                | Some w -> w
                | None -> assert false (* j was available *))
            in
            s1_occupy t ~input_switch ~middle:j ~wl:stage1_wl;
            let serves =
              List.map
                (fun p ->
                  let w2 =
                    match t.construction with
                    | Msw_dominant -> src_wl
                    | Maw_dominant -> (
                      match t.output_model with
                      | Model.MSW -> src_wl
                      | Model.MSDW | Model.MAW ->
                        if Pset.mem (j, p) t.dead_converters then
                          (* pass-through: coverage checked this slot *)
                          stage1_wl
                        else (
                          match stage2_first_free t ~middle:j ~out_switch:p with
                          | Some w -> w
                          | None -> assert false (* p was coverable via j *)))
                  in
                  assert (not (slot_busy t.stage2 ~row:j ~col:p ~wl:w2));
                  s2_occupy t ~middle:j ~out_switch:p ~wl:w2;
                  (p, w2))
                serves
            in
            { middle = j; stage1_wl; serves })
          chosen
      in
      let id = t.next_id in
      t.next_id <- id + 1;
      let route = { id; connection = conn; input_switch; hops } in
      add_route t route;
      mark_endpoints_busy t conn;
      Ok route)

let connect t (conn : Connection.t) =
  match t.instruments with
  | None -> connect_raw t conn
  | Some i ->
    let t0 = Tel.Sink.now i.sink in
    let result = connect_raw t conn in
    let dur = Tel.Sink.now i.sink -. t0 in
    note_connect_outcome t i ~dur ~histogram:i.h_connect ~moved:0 result;
    result

let release t (route : route) =
  List.iter
    (fun { middle = j; stage1_wl; serves } ->
      s1_release t ~input_switch:route.input_switch ~middle:j ~wl:stage1_wl;
      List.iter (fun (p, w2) -> s2_release t ~middle:j ~out_switch:p ~wl:w2) serves)
    route.hops;
  mark_endpoints_free t route.connection

let disconnect_raw t id =
  match Imap.find_opt id t.routes with
  | None ->
    if id >= 0 && id < t.next_id then Error (Already_released id)
    else Error (Unknown_route id)
  | Some route ->
    release t route;
    remove_route t id;
    Ok route

let disconnect t id =
  match t.instruments with
  | None -> disconnect_raw t id
  | Some i ->
    let t0 = Tel.Sink.now i.sink in
    let result = disconnect_raw t id in
    let dur = Tel.Sink.now i.sink -. t0 in
    Tel.Histogram.observe i.h_disconnect dur;
    (match result with
    | Ok route ->
      update_gauges t;
      Tel.Sink.record i.sink ~dur ~route_id:route.id
        ~middles:(route_middles route)
        ~wavelengths:(route_stage1_wls route) Tel.Trace.Disconnect
    | Error _ -> ());
    result

(* Re-mark exactly the resources of a previously released route (its
   slots are known-free); used to roll back rearrangement attempts. *)
let readmit t (route : route) =
  List.iter
    (fun { middle = j; stage1_wl; serves } ->
      assert (not (slot_busy t.stage1 ~row:route.input_switch ~col:j ~wl:stage1_wl));
      s1_occupy t ~input_switch:route.input_switch ~middle:j ~wl:stage1_wl;
      List.iter
        (fun (p, w2) ->
          assert (not (slot_busy t.stage2 ~row:j ~col:p ~wl:w2));
          s2_occupy t ~middle:j ~out_switch:p ~wl:w2)
        serves)
    route.hops;
  mark_endpoints_busy t route.connection;
  add_route t route

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(* Returns the moved victim's new route (already re-keyed under its
   original id) alongside the admitted route, so the telemetry wrapper
   can report the move. *)
let connect_rearrangeable_raw t (conn : Connection.t) =
  match connect_raw t conn with
  | Ok route -> Ok (route, None)
  | Error (Blocked _ as blocked) ->
    (* Try moving one existing connection out of the way: release it,
       place the request, then re-route the victim on what remains.
       Cheap victims first — a route spanning fewer middles frees fewer
       resources but is far likelier to re-home — and the scan is
       capped at [rearrange_limit] so a loaded fabric cannot turn one
       admission into a full-population sweep. *)
    let victims =
      Imap.fold (fun _ route acc -> route :: acc) t.routes []
      |> List.map (fun route -> (List.length route.hops, route))
      |> List.sort (fun (ha, (a : route)) (hb, b) ->
             match Int.compare ha hb with
             | 0 -> Int.compare a.id b.id
             | c -> c)
      |> List.map snd
      |> take t.rearrange_limit
    in
    let rec attempt = function
      | [] -> Error blocked
      | victim :: rest -> (
        release t victim;
        remove_route t victim.id;
        match connect_raw t conn with
        | Error _ ->
          readmit t victim;
          attempt rest
        | Ok new_route -> (
          match connect_raw t victim.connection with
          | Ok moved ->
            (* Re-key the moved route under the victim's original id:
               callers track live connections by id, and a silent
               renumbering would leave their handles stale. *)
            let rekeyed = { moved with id = victim.id } in
            remove_route t moved.id;
            add_route t rekeyed;
            Ok (new_route, Some rekeyed)
          | Error _ ->
            (* undo: drop the new route, restore the victim verbatim *)
            release t new_route;
            remove_route t new_route.id;
            readmit t victim;
            attempt rest))
    in
    attempt victims
  | Error _ as e -> e

let connect_rearrangeable t (conn : Connection.t) =
  match t.instruments with
  | None ->
    Result.map
      (fun (route, moved) -> (route, if moved = None then 0 else 1))
      (connect_rearrangeable_raw t conn)
  | Some i ->
    let t0 = Tel.Sink.now i.sink in
    let result = connect_rearrangeable_raw t conn in
    let dur = Tel.Sink.now i.sink -. t0 in
    let moves = match result with Ok (_, Some _) -> 1 | _ -> 0 in
    note_connect_outcome t i ~dur ~histogram:i.h_connect_rearrangeable
      ~moved:moves
      (Result.map fst result);
    (match result with
    | Ok (_, Some moved) ->
      Tel.Sink.record i.sink ~route_id:moved.id
        ~middles:(route_middles moved)
        ~wavelengths:(route_stage1_wls moved) Tel.Trace.Rearrange
    | _ -> ());
    Result.map (fun (route, moved) -> (route, if moved = None then 0 else 1)) result

let active_routes t = Imap.bindings t.routes |> List.map snd
let find_route t id = Imap.find_opt id t.routes

let destination_multiset t j =
  if j < 1 || j > t.topo.m then invalid_arg "Network.destination_multiset: bad middle";
  let ms = ref (Multiset.create ~r:t.topo.r ~k:t.topo.k) in
  (match t.stage2 with
  | SPacked { busy; _ } ->
    Array.iteri
      (fun p_minus1 plane ->
        Bitops.iter_set ~width:t.topo.k
          (fun _ -> ms := Multiset.add !ms (p_minus1 + 1))
          plane)
      busy.(j - 1)
  | SWide { busy; _ } ->
    Array.iteri
      (fun p_minus1 plane ->
        Array.iter (fun b -> if b then ms := Multiset.add !ms (p_minus1 + 1)) plane)
      busy.(j - 1));
  !ms

let destination_multiset_plane t ~middle ~wl =
  if middle < 1 || middle > t.topo.m then
    invalid_arg "Network.destination_multiset_plane: bad middle";
  if wl < 1 || wl > t.topo.k then
    invalid_arg "Network.destination_multiset_plane: bad wavelength";
  let ms = ref (Multiset.create ~r:t.topo.r ~k:1) in
  for p = 1 to t.topo.r do
    if slot_busy t.stage2 ~row:middle ~col:p ~wl then
      ms := Multiset.add !ms p
  done;
  !ms

let stage1_in_use t ~input_switch ~middle =
  if input_switch < 1 || input_switch > t.topo.r then
    invalid_arg "Network.stage1_in_use: bad input switch";
  if middle < 1 || middle > t.topo.m then
    invalid_arg "Network.stage1_in_use: bad middle";
  stage1_used_count t ~input_switch ~middle

(* ----- fault injection ------------------------------------------------- *)

let rebuild_fault_state t =
  t.failed_middles <- Iset.empty;
  t.failed_inputs <- Iset.empty;
  t.failed_outputs <- Iset.empty;
  stage_reset_dead t.stage1;
  stage_reset_dead t.stage2;
  t.dead_converters <- Pset.empty;
  Fault.Set.iter
    (function
      | Fault.Middle j -> t.failed_middles <- Iset.add j t.failed_middles
      | Fault.Input_module i -> t.failed_inputs <- Iset.add i t.failed_inputs
      | Fault.Output_module p -> t.failed_outputs <- Iset.add p t.failed_outputs
      | Fault.Stage1_laser { input; middle; wl } ->
        slot_dead_set t.stage1 ~row:input ~col:middle ~wl
      | Fault.Stage2_laser { middle; output; wl } ->
        slot_dead_set t.stage2 ~row:middle ~col:output ~wl
      | Fault.Converter { middle; output } ->
        t.dead_converters <- Pset.add (middle, output) t.dead_converters)
    t.faults

(* Whether a live route traverses the faulted component. *)
let route_hit (route : route) = function
  | Fault.Middle j -> List.exists (fun h -> h.middle = j) route.hops
  | Fault.Input_module i -> route.input_switch = i
  | Fault.Output_module p ->
    List.exists (fun h -> List.mem_assoc p h.serves) route.hops
  | Fault.Stage1_laser { input; middle; wl } ->
    route.input_switch = input
    && List.exists (fun h -> h.middle = middle && h.stage1_wl = wl) route.hops
  | Fault.Stage2_laser { middle; output; wl } ->
    List.exists
      (fun h ->
        h.middle = middle
        && List.exists (fun (p, w) -> p = output && w = wl) h.serves)
      route.hops
  | Fault.Converter { middle; output } ->
    (* only routes that actually relied on the converter: the hop
       retuned between its two links.  MSW middle modules never
       convert, so MSW-dominant routes are immune. *)
    List.exists
      (fun h ->
        h.middle = middle
        && List.exists (fun (p, w) -> p = output && w <> h.stage1_wl) h.serves)
      route.hops

let validate_fault t fn fault =
  match Fault.validate ~m:t.topo.m ~r:t.topo.r ~k:t.topo.k fault with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Network.%s: %s" fn e)

let fault_detail fault = ("fault", Format.asprintf "%a" Fault.pp fault)

let inject_fault t fault =
  validate_fault t "inject_fault" fault;
  if Fault.Set.mem fault t.faults then []
  else begin
    t.faults <- Fault.Set.add fault t.faults;
    rebuild_fault_state t;
    let victims =
      Imap.bindings t.routes
      |> List.map snd
      |> List.filter (fun route -> route_hit route fault)
    in
    List.iter
      (fun route ->
        release t route;
        remove_route t route.id)
      victims;
    (match t.instruments with
    | None -> ()
    | Some i ->
      Tel.Metrics.inc i.faults_injected;
      Tel.Metrics.add i.fault_teardowns (List.length victims);
      update_gauges t;
      Tel.Sink.record i.sink
        ~detail:
          [ fault_detail fault;
            ("victims", string_of_int (List.length victims)) ]
        Tel.Trace.Fault_inject);
    List.map (fun route -> route.connection) victims
  end

let clear_fault t fault =
  validate_fault t "clear_fault" fault;
  let was_in_force = Fault.Set.mem fault t.faults in
  t.faults <- Fault.Set.remove fault t.faults;
  rebuild_fault_state t;
  match t.instruments with
  | None -> ()
  | Some i ->
    if was_in_force then begin
      Tel.Metrics.inc i.faults_cleared;
      update_gauges t;
      Tel.Sink.record i.sink ~detail:[ fault_detail fault ]
        Tel.Trace.Fault_clear
    end

let faults t = Fault.Set.elements t.faults
let degraded t = not (Fault.Set.is_empty t.faults)

let fail_middle t j =
  if j < 1 || j > t.topo.m then invalid_arg "Network.fail_middle: bad middle";
  inject_fault t (Fault.Middle j)

let repair_middle t j =
  if j < 1 || j > t.topo.m then invalid_arg "Network.repair_middle: bad middle";
  clear_fault t (Fault.Middle j)

let failed_middles t = Iset.elements t.failed_middles

let clear t =
  List.iter (fun (_, route) -> release t route) (Imap.bindings t.routes);
  t.routes <- Imap.empty;
  t.n_routes <- 0;
  update_gauges t

(* ----- persistence ----------------------------------------------------- *)

(* Everything below is the *minimal* state: busy planes, endpoint sets,
   per-middle occupancy and the derived fault views are all rebuilt on
   restore from the routes and the fault set, so a snapshot cannot
   drift internally inconsistent — there is one source of truth. *)
type snapshot = {
  s_topology : Topology.t;
  s_construction : construction;
  s_output_model : Model.t;
  s_x_limit : int;
  s_strategy : strategy;
  s_link_impl : link_impl;
  s_rearrange_limit : int;
  s_next_id : int;
  s_routes : route list;
  s_faults : Fault.t list;
}

let snapshot t =
  {
    s_topology = t.topo;
    s_construction = t.construction;
    s_output_model = t.output_model;
    s_x_limit = t.x_limit;
    s_strategy = t.strategy;
    s_link_impl = t.impl;
    s_rearrange_limit = t.rearrange_limit;
    s_next_id = t.next_id;
    s_routes = Imap.bindings t.routes |> List.map snd;
    s_faults = Fault.Set.elements t.faults;
  }

let restore ?telemetry s =
  let t =
    create
      ~config:
        {
          Config.strategy = s.s_strategy;
          x_limit = Some s.s_x_limit;
          link_impl = Some s.s_link_impl;
          rearrange_limit = s.s_rearrange_limit;
          telemetry;
        }
      ~construction:s.s_construction ~output_model:s.s_output_model s.s_topology
  in
  if s.s_next_id < 0 then invalid_arg "Network.restore: negative next_id";
  t.faults <-
    List.fold_left
      (fun acc f ->
        validate_fault t "restore" f;
        Fault.Set.add f acc)
      Fault.Set.empty s.s_faults;
  rebuild_fault_state t;
  (* faults first: live routes never occupy a dead slot (injection tears
     them down), so readmitting over the rebuilt dead planes is safe *)
  List.iter
    (fun route ->
      if route.id >= s.s_next_id then
        invalid_arg
          (Printf.sprintf "Network.restore: route id %d >= next_id %d" route.id
             s.s_next_id);
      readmit t route)
    s.s_routes;
  t.next_id <- s.s_next_id;
  update_gauges t;
  t

let copy t =
  {
    t with
    stage1 = copy_stage t.stage1;
    stage2 = copy_stage t.stage2;
    middle_occ = Array.copy t.middle_occ;
    scratch_uncovered = Array.make t.topo.r 0;
    (* a snapshot is for speculative search (the adversary's what-ifs);
       letting it feed the original's instruments would corrupt the
       production counters *)
    instruments = None;
  }

let pp_error ppf e = Format.pp_print_string ppf (Error.to_string e)
let pp_disconnect_error ppf e =
  Format.pp_print_string ppf (Error.disconnect_to_string e)

let pp_state ppf t =
  Format.fprintf ppf "@[<v>stage 1 (wavelengths used per input module x middle):@,";
  for i = 1 to t.topo.r do
    Format.fprintf ppf "  in%d:" i;
    for j = 1 to t.topo.m do
      Format.fprintf ppf " %d/%d" (stage1_used_count t ~input_switch:i ~middle:j) t.topo.k
    done;
    Format.pp_print_cut ppf ()
  done;
  Format.fprintf ppf "middle destination multisets:@,";
  for j = 1 to t.topo.m do
    Format.fprintf ppf "  M_%d = %a@," j Multiset.pp (destination_multiset t j)
  done;
  if degraded t then
    Format.fprintf ppf "faults: %a@,"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Fault.pp)
      (faults t);
  Format.fprintf ppf "active routes: %d, utilization %.1f%%@]"
    t.n_routes (100. *. utilization t)

let pp_route ppf route =
  Format.fprintf ppf "route %d: %a via %a" route.id Connection.pp
    route.connection
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
       (fun ppf { middle; stage1_wl; serves } ->
         Format.fprintf ppf "m%d(in l%d; %s)" middle stage1_wl
           (String.concat ","
              (List.map (fun (p, w) -> Printf.sprintf "o%d:l%d" p w) serves))))
    route.hops
