open Wdm_core

type outcome = {
  construction : Network.construction;
  admitted : int;
  probe_result : (Network.route, Network.error) result;
}

let fig10_topology = Topology.make_exn ~n:2 ~m:2 ~r:2 ~k:2

let ep port wl = Endpoint.make ~port ~wl
let conn src dests = Connection.make_exn ~source:src ~destinations:dests

(* Global ports: 1-2 on input/output module 1, 3-4 on module 2.  The
   three prelude connections all ride wavelength l1.  Under MSW middles
   they exhaust l1 on links (in2 -> m1), (in2 -> m2) at stage one and on
   (m1 -> o1), (m2 -> o2), (m1 -> o2), (m2 -> o1) at stage two; in
   particular the third one must split across both middles, claiming l1
   on both links out of input module 1. *)
let fig10_prelude =
  [
    conn (ep 3 1) [ ep 1 1 ];
    conn (ep 4 1) [ ep 3 1 ];
    conn (ep 2 1) [ ep 4 1; ep 2 1 ];
  ]

(* Sourced on l1 at input module 1, destined to the still-free endpoint
   (2, l2).  The MAW output module may convert, so the request is legal;
   only the l1 plane of the first two stages stands in the way. *)
let fig10_probe = conn (ep 1 1) [ ep 2 2 ]

let fig10 construction =
  let net =
    Network.create
      ~config:{ Network.Config.default with x_limit = Some 2 }
      ~construction ~output_model:Model.MAW fig10_topology
  in
  let admitted =
    List.fold_left
      (fun acc c ->
        match Network.connect net c with
        | Ok _ -> acc + 1
        | Error e ->
          invalid_arg
            (Format.asprintf "Scenarios.fig10: prelude rejected: %a"
               Network.pp_error e))
      0 fig10_prelude
  in
  { construction; admitted; probe_result = Network.connect net fig10_probe }
