(** Routing for recursively constructed multistage networks.

    Section 3 opens with: "In general, a network can have any odd number
    of stages and be built in a recursive fashion from these switching
    modules, which are in fact regarded as networks of a smaller size."
    {!Recursive} prices those networks; this module {e routes} them: a
    three-stage {!Network} whose middle "switches" may themselves be
    recursive networks one level smaller.

    When the outer router picks middle module [j] for a hop, the nested
    network behind [j] must itself carry a connection from local input
    [i] (the outer input module's index) on the stage-1 wavelength to
    the served local outputs on their stage-2 wavelengths.  Atomic
    (crossbar) middles always can; nested middles run their own
    admission, and a nested refusal makes the whole request block — so
    a recursive network is nonblocking when {e every} level is
    provisioned to its own Theorem-1/2 bound, which is exactly the
    experiment the tests run.  (On a nested refusal this implementation
    does not retry the outer selection with other middles, so below the
    bounds it may block slightly more than an ideal router.) *)

open Wdm_core

type t

type route = {
  base : Network.route;  (** this level's hops *)
  subroutes : (int * route) list;
      (** per nested middle module index (1-based), the inner route *)
}

val create :
  ?strategy:Network.strategy ->
  construction:Network.construction ->
  Recursive.t ->
  t
(** Instantiates the design tree: every level gets its own link state
    and (per-level default) [x_limit]; inner levels use the
    construction's dominant model end to end, the outermost output
    stage uses the design's model. *)

val stages : t -> int
val topology : t -> Topology.t
(** The outermost level's topology. *)

val connect : t -> Connection.t -> (route, Network.error) result
val disconnect : t -> int -> (route, Network.disconnect_error) result
(** By the outer route id. *)

val active_routes : t -> route list
val utilization : t -> float
