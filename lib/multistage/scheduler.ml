open Wdm_core

type outcome = {
  routes : Network.route list;
  reroutes : int;
  order_attempts : int;
}

let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let place ~rearrange net conns =
  let reroutes = ref 0 in
  let rec go = function
    | [] -> Ok ()
    | c :: rest -> (
      let result =
        if rearrange then
          Result.map
            (fun (route, moved) ->
              reroutes := !reroutes + moved;
              route)
            (Network.connect_rearrangeable net c)
        else Network.connect net c
      in
      match result with
      | Ok _ -> go rest
      | Error e ->
        Network.clear net;
        Error e)
  in
  Result.map (fun () -> !reroutes) (go conns)

let route_assignment ?(max_order_attempts = 8) ?(rearrange = false) ?(seed = 0)
    net (a : Assignment.t) =
  if Network.active_routes net <> [] then
    invalid_arg "Scheduler.route_assignment: network not empty";
  if max_order_attempts < 1 then
    invalid_arg "Scheduler.route_assignment: need at least one attempt";
  let rng = Random.State.make [| seed |] in
  let rec attempt i order last_error =
    if i > max_order_attempts then
      Error (Option.get last_error)
    else
      match place ~rearrange net order with
      | Ok reroutes ->
        Ok { routes = Network.active_routes net; reroutes; order_attempts = i }
      | Error e ->
        attempt (i + 1) (shuffle rng a.Assignment.connections) (Some e)
  in
  match a.Assignment.connections with
  | [] -> Ok { routes = []; reroutes = 0; order_attempts = 1 }
  | conns -> attempt 1 conns None

(* ----- connection repair ------------------------------------------------ *)

type repair_outcome = {
  repaired : (Connection.t * Network.route) list;
  dropped : (Connection.t * Network.error) list;
  repair_moves : int;
}

module Tel = Wdm_telemetry

type repair_instruments = {
  sink : Tel.Sink.t;
  repaired_c : Tel.Metrics.counter;
  dropped_c : Tel.Metrics.counter;
  moves_c : Tel.Metrics.counter;
  h_repair : Tel.Histogram.t;
}

let repair_instruments (sink : Tel.Sink.t) =
  let reg = sink.Tel.Sink.metrics in
  {
    sink;
    repaired_c =
      Tel.Metrics.counter reg ~help:"Fault victims re-homed"
        "scheduler_repairs_total";
    dropped_c =
      Tel.Metrics.counter reg
        ~help:"Fault victims no degraded-mode route could carry"
        "scheduler_repair_dropped_total";
    moves_c =
      Tel.Metrics.counter reg
        ~help:"Rearrangement moves spent on re-homing"
        "scheduler_repair_moves_total";
    h_repair =
      Tel.Metrics.histogram reg ~help:"Latency of one victim re-home attempt"
        "scheduler_repair_latency_seconds";
  }

let repair ?telemetry ?(rearrange = true) net victims =
  let instruments = Option.map repair_instruments telemetry in
  let attempt conn =
    if rearrange then Network.connect_rearrangeable net conn
    else Result.map (fun route -> (route, 0)) (Network.connect net conn)
  in
  let attempt conn =
    match instruments with
    | None -> attempt conn
    | Some i ->
      let t0 = Tel.Sink.now i.sink in
      let result = attempt conn in
      let dur = Tel.Sink.now i.sink -. t0 in
      Tel.Histogram.observe i.h_repair dur;
      (match result with
      | Ok (route, moved) ->
        Tel.Metrics.inc i.repaired_c;
        Tel.Metrics.add i.moves_c moved;
        Tel.Sink.record i.sink ~dur ~route_id:route.Network.id
          ~middles:(List.map (fun h -> h.Network.middle) route.Network.hops)
          ~detail:[ ("outcome", "repaired") ]
          Tel.Trace.Repair
      | Error e ->
        Tel.Metrics.inc i.dropped_c;
        Tel.Sink.record i.sink ~dur
          ~detail:
            [
              ("outcome", "dropped");
              ( "cause",
                match e with
                | Network.Invalid _ -> "invalid"
                | Network.Source_busy _ -> "source_busy"
                | Network.Destination_busy _ -> "destination_busy"
                | Network.Unserviceable _ -> "unserviceable"
                | Network.Blocked _ -> "blocked" );
            ]
          Tel.Trace.Repair);
      result
  in
  let outcome =
    List.fold_left
      (fun acc conn ->
        match attempt conn with
        | Ok (route, moved) ->
          {
            acc with
            repaired = (conn, route) :: acc.repaired;
            repair_moves = acc.repair_moves + moved;
          }
        | Error e -> { acc with dropped = (conn, e) :: acc.dropped })
      { repaired = []; dropped = []; repair_moves = 0 }
      victims
  in
  {
    outcome with
    repaired = List.rev outcome.repaired;
    dropped = List.rev outcome.dropped;
  }

let pp_repair_outcome ppf { repaired; dropped; repair_moves } =
  Format.fprintf ppf "%d repaired (%d rearrangement moves), %d dropped"
    (List.length repaired) repair_moves (List.length dropped)
