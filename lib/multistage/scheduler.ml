open Wdm_core

type outcome = {
  routes : Network.route list;
  reroutes : int;
  order_attempts : int;
}

let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let place ~rearrange net conns =
  let reroutes = ref 0 in
  let rec go = function
    | [] -> Ok ()
    | c :: rest -> (
      let result =
        if rearrange then
          Result.map
            (fun (route, moved) ->
              reroutes := !reroutes + moved;
              route)
            (Network.connect_rearrangeable net c)
        else Network.connect net c
      in
      match result with
      | Ok _ -> go rest
      | Error e ->
        Network.clear net;
        Error e)
  in
  Result.map (fun () -> !reroutes) (go conns)

let route_assignment ?(max_order_attempts = 8) ?(rearrange = false) ?(seed = 0)
    net (a : Assignment.t) =
  if Network.active_routes net <> [] then
    invalid_arg "Scheduler.route_assignment: network not empty";
  if max_order_attempts < 1 then
    invalid_arg "Scheduler.route_assignment: need at least one attempt";
  let rng = Random.State.make [| seed |] in
  let rec attempt i order last_error =
    if i > max_order_attempts then
      Error (Option.get last_error)
    else
      match place ~rearrange net order with
      | Ok reroutes ->
        Ok { routes = Network.active_routes net; reroutes; order_attempts = i }
      | Error e ->
        attempt (i + 1) (shuffle rng a.Assignment.connections) (Some e)
  in
  match a.Assignment.connections with
  | [] -> Ok { routes = []; reroutes = 0; order_attempts = 1 }
  | conns -> attempt 1 conns None

(* ----- connection repair ------------------------------------------------ *)

type repair_outcome = {
  repaired : (Connection.t * Network.route) list;
  dropped : (Connection.t * Network.error) list;
  repair_moves : int;
}

let repair ?(rearrange = true) net victims =
  let outcome =
    List.fold_left
      (fun acc conn ->
        let result =
          if rearrange then
            Result.map
              (fun (route, moved) -> (route, moved))
              (Network.connect_rearrangeable net conn)
          else Result.map (fun route -> (route, 0)) (Network.connect net conn)
        in
        match result with
        | Ok (route, moved) ->
          {
            acc with
            repaired = (conn, route) :: acc.repaired;
            repair_moves = acc.repair_moves + moved;
          }
        | Error e -> { acc with dropped = (conn, e) :: acc.dropped })
      { repaired = []; dropped = []; repair_moves = 0 }
      victims
  in
  {
    outcome with
    repaired = List.rev outcome.repaired;
    dropped = List.rev outcome.dropped;
  }

let pp_repair_outcome ppf { repaired; dropped; repair_moves } =
  Format.fprintf ppf "%d repaired (%d rearrangement moves), %d dropped"
    (List.length repaired) repair_moves (List.length dropped)
