(** Closed-form crosstalk margin estimates.

    {!Circuit.propagate} accounts for crosstalk exactly — off gates with
    finite extinction leak attenuated copies that arrive at sinks marked
    as noise — but building and propagating a circuit per admission is
    far too heavy for a routing hot path.  This module gives the
    closed-form worst case the crosstalk-budget routing strategies gate
    on: every interferer is assumed to leak through exactly one off gate
    at the model's extinction, and leaked powers add linearly.

    For a signal split [fanout] ways sharing components with [sharers]
    co-active channels, the worst-case signal-to-crosstalk ratio at a
    destination is

    {v margin = extinction - splitting_loss(fanout) - 10 log10 sharers v}

    — the signal pays its own splitting loss while each interferer is
    assumed unsplit (worst case), and [sharers] equal-power leaks add
    [10 log10 sharers] dB of noise.  With ideal gates
    ([gate_extinction_db = None]) or no sharers the margin is
    [infinity]. *)

val margin_db : ?model:Loss_model.t -> sharers:int -> fanout:int -> unit -> float
(** Worst-case signal-to-crosstalk ratio in dB.  [model] defaults to
    [Loss_model.leaky ()] (30 dB extinction).  [sharers] is the number
    of co-active channels that can each contribute one first-order leak;
    [fanout] is the multicast fanout of the signal under test. *)

val acceptable :
  ?model:Loss_model.t -> threshold_db:float -> sharers:int -> fanout:int ->
  unit -> bool
(** [margin_db ... >= threshold_db]. *)
