let margin_db ?(model = Loss_model.leaky ()) ~sharers ~fanout () =
  match model.Loss_model.gate_extinction_db with
  | None -> infinity
  | Some extinction ->
    if sharers <= 0 then infinity
    else
      extinction
      -. Loss_model.splitting_loss model ~fanout
      -. (10. *. log10 (float_of_int sharers))

let acceptable ?model ~threshold_db ~sharers ~fanout () =
  margin_db ?model ~sharers ~fanout () >= threshold_db
