(** The control-plane service: a live {!Wdm_multistage.Network}
    behind a TCP or Unix-domain socket, optionally replicated to
    follower nodes.

    Concurrency model — event loop in front, single-writer admission
    behind (DESIGN.md §12): one loop thread owns every socket.  It
    accepts, reads readiness-notified connections into per-connection
    buffers ({!Framebuf}), decodes complete frames and enqueues
    requests on a bounded queue; one admission thread drains the queue
    in batches (up to [batch_limit] at a time) and is the only thread
    that executes requests or touches the network and the WAL store.
    Responses travel back through per-connection output queues the
    loop flushes — consecutive responses coalesce into single writes,
    which is what makes pipelined ({!Wdm_persist.Resp.request.Batch})
    clients fast.  The network needs no locks, every client observes
    its own requests in order, and when the queue is full the loop
    stops reading sockets — TCP flow control propagates the
    backpressure to the clients.  Connection count is bounded by
    [max_conns] (accept-time gate), not by a thread per client: idle
    connections cost one buffer each, no stack, so thousands can sit
    idle ({!Evloop} uses [epoll] on Linux, [select] elsewhere).
    Replica subscriptions are the exception: each detaches from the
    loop onto a dedicated blocking thread pair, as before.

    With [store], every state-changing request is also appended to the
    WAL after it executes (a refused connect is still recorded — WAL
    semantics record requests, replay re-derives outcomes), so a served
    session crash-recovers exactly like a recorded in-process run.
    Requests that failed to execute at all — a disconnect of an unknown
    or already-released route, a fault op with out-of-range indices —
    are answered but never logged: replaying them would fail and read
    as WAL corruption on recovery.

    {b Replication} (DESIGN.md §10): a peer greeting with the ['F']
    hello subscribes to the committed-op stream.  The leader answers
    with a full state snapshot (or a resume point when the follower's
    position is still inside the in-memory ring) and then ships every
    committed op, interleaving state digests every [digest_every] ops;
    the follower acknowledges each digest.  Each follower gets a
    bounded outbox drained by its own sender thread — a slow follower
    is {e evicted}, never allowed to stall admission.  A node started
    with [follower] dials its leader, applies the stream through the
    same admission queue (the single-writer invariant holds on both
    roles), persists to its own WAL when [follower.wal] is set, serves
    read-only requests, refuses mutations with [Not_leader], and
    reconnects with capped exponential backoff when the link drops.
    {!promote} (or a wire [Promote] request) turns the follower into a
    leader from the newest consistent state it reached.

    With [telemetry], the server feeds [server_requests_total] (plus a
    per-client [server_client_requests_total{client="N"}] family),
    [server_responses_total], [server_malformed_total],
    [server_clients_total], [server_accept_errors_total],
    [server_clients_active] / [server_queue_depth] gauges,
    [server_batches_total], and [server_batch_size] /
    [server_request_latency_seconds] histograms (latency is enqueue to
    response written, so it includes queueing delay).  Replication
    adds, leader-side, [repl_followers] / [repl_lag_ops] /
    [repl_lag_bytes] gauges and [repl_snapshots_sent_total],
    [repl_resumes_total], [repl_ops_sent_total],
    [repl_bytes_sent_total], [repl_evictions_total],
    [repl_digest_checks_total], [repl_digest_failures_total] counters;
    follower-side, [repl_applied_total],
    [repl_snapshots_received_total], [repl_reconnects_total],
    [repl_digest_mismatch_total] and a [repl_follower_lag_ops] gauge.
    The network's own [wdmnet_*] instruments live on whatever sink the
    network was created with.

    {b Observability} (DESIGN.md §11): with [telemetry], every served
    request is also timed per stage — reader decode, admission-queue
    wait, execute, WAL append, replication ship, response write — into
    [server_stage_<stage>_seconds] histograms and a bounded in-memory
    span ring ([span_buffer] records, exported as Chrome trace events
    through {!spans} / the [/spans] endpoint, and mirrored to the
    sink's trace when one is attached).  Clients negotiating the span
    extension ({!Protocol.flag_spans}) stamp each request with a span
    id that correlates the server-side record with the caller.  [http]
    starts a minimal HTTP 1.0 endpoint serving [/metrics] (Prometheus
    text), [/healthz], a role-aware [/readyz] (see {!ready}) and
    [/spans]; [slow_ms] enables a JSONL slow-request log (to [slow_log]
    or stderr) carrying the span id and the per-stage breakdown of
    every request at or over the threshold. *)

module Network = Wdm_multistage.Network

type address =
  | Tcp of string * int  (** host, port; port [0] binds an ephemeral *)
  | Unix_socket of string  (** path; unlinked stale socket on bind *)

val pp_address : Format.formatter -> address -> unit

type role = Leader | Follower

type follower_config = {
  leader : address;  (** where to subscribe for the op stream *)
  wal : string option;
      (** the follower's own WAL: every replicated op is logged, and a
          restart resumes from it (plus the [<wal>.repl] mark) instead
          of refetching a snapshot.  [None] keeps state in memory
          only. *)
}

type t

val start :
  ?telemetry:Wdm_telemetry.Sink.t ->
  ?store:Wdm_persist.Store.t ->
  ?queue_capacity:int ->
  ?batch_limit:int ->
  ?digest_every:int ->
  ?resume_window:int ->
  ?outbox_capacity:int ->
  ?follower_sndbuf:int ->
  ?follower:follower_config ->
  ?http:address ->
  ?ready_lag:int ->
  ?slow_ms:float ->
  ?slow_log:string ->
  ?span_buffer:int ->
  ?max_conns:int ->
  ?conn_sndbuf:int ->
  net:Network.t ->
  address ->
  t
(** {!start_backend} specialized to the multistage fabric.

    Binds, listens and spawns the event-loop + admission threads (and
    the replication client thread when [follower] is given).
    [queue_capacity] (default 256) bounds the admission queue;
    [batch_limit] (default 64) caps how many requests one drain takes.
    [max_conns] caps concurrently open request-plane connections: past
    it, accepted fds are closed immediately (counted in
    [server_accept_errors_total]); the observability plane is exempt
    so health stays scrapable at the cap.  [conn_sndbuf] sets
    [SO_SNDBUF] on accepted request connections (tests use a tiny
    value to exercise the loop's partial-write path).
    [digest_every] (default 64) is the committed-op interval between
    replicated state digests; [resume_window] (default 1024) how many
    recent ops the leader keeps for follower resume; [outbox_capacity]
    (default 1024) the per-follower outbox bound past which a slow
    follower is evicted; [follower_sndbuf] sets [SO_SNDBUF] on
    follower connections, bounding how much the kernel can buffer on
    top of the outbox (eviction tests use a tiny value to make "slow"
    deterministic).  The caller keeps ownership of [store] (close it
    after {!stop}); a [follower] node instead manages its own store
    for [follower.wal] — read it back with {!current_store}.

    Observability: [http] binds a second listener for the [/metrics],
    [/healthz], [/readyz], [/spans] plane; [ready_lag] (default 64) is
    the apply-lag bound within which a follower reports ready;
    [slow_ms] (with optional [slow_log] path) enables the slow-request
    JSONL log; [span_buffer] (default 1024) bounds the span ring.
    @raise Invalid_argument when a numeric option is [< 1]
    ([ready_lag]/[slow_ms]: [< 0]), or when both [store] and
    [follower] are given.
    @raise Unix.Unix_error when an address cannot be bound. *)

val start_backend :
  ?telemetry:Wdm_telemetry.Sink.t ->
  ?store:Wdm_persist.Store.t ->
  ?queue_capacity:int ->
  ?batch_limit:int ->
  ?digest_every:int ->
  ?resume_window:int ->
  ?outbox_capacity:int ->
  ?follower_sndbuf:int ->
  ?follower:follower_config ->
  ?http:address ->
  ?ready_lag:int ->
  ?slow_ms:float ->
  ?slow_log:string ->
  ?span_buffer:int ->
  ?max_conns:int ->
  ?conn_sndbuf:int ->
  backend:Wdm_persist.Backend.t ->
  address ->
  t
(** {!start} for either state kind — a mesh backend serves the same
    wire protocol (mesh results are mapped onto the multistage route
    vocabulary; fault ops are refused with [Server_error]). *)

val address : t -> address
(** The actual bound address — with [Tcp (host, 0)] the kernel-chosen
    port is filled in. *)

val http_address : t -> address option
(** The observability endpoint's bound address, when [http] was given. *)

val role : t -> role

val applied : t -> int
(** Committed ops so far: ops this node executed as leader plus ops it
    applied from a leader's stream.  A follower whose [applied] equals
    the leader's has caught up. *)

val backend : t -> Wdm_persist.Backend.t
(** The live state machine.  On a follower this is {e replaced} when a
    snapshot installs, so do not cache it across attaches; reading
    state through a {!Client} request is always safe, reading it
    in-process is only safe once the server is stopped or known
    quiescent. *)

val network : t -> Network.t
(** {!backend} for servers started with {!start}.
    @raise Invalid_argument on a mesh backend. *)

val current_store : t -> Wdm_persist.Store.t option
(** The store currently in use: the one passed to {!start}, or the one
    a follower created for its [wal].  After {!stop}, checkpoint and
    close it here. *)

val promote : t -> (int, string) result
(** Make this follower the leader: cut the replication link, adopt a
    fresh epoch, start accepting mutations and follower subscriptions
    from the newest consistent state.  Returns {!applied} at the
    moment of promotion.  [Error] when already the leader or stopped.
    Blocks until the admission thread performs the switch, so on
    return every subsequent request sees the new role. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, shut client receive sides down
    (requests already admitted are still answered — an answered
    request is one a retrying client will not replay against the next
    leader), drain the queue, let follower outboxes flush (bounded
    grace), and join all threads.  After [stop] returns no thread
    touches the network or the store, so the caller can checkpoint and
    close them safely.  Idempotent. *)

val served : t -> int
(** Requests answered so far (monotone; stable after {!stop}).  A
    pipelined [Batch] counts once per sub-request, so the number is
    the same however the ops were carried. *)

val ready : t -> bool
(** What [/readyz] answers.  A leader is ready as soon as it serves
    (WAL recovery, when any, completed before {!start} returned).  A
    follower is ready while its replication link is live, it has
    synced to a leader generation, and its apply lag — the newest seq
    the leader has shown minus {!applied} — is within [ready_lag].
    {!promote} flips a follower to ready-as-leader. *)

val spans :
  t -> (int option * int * float * float * (string * float) list) list
(** The span ring, oldest first: [(span id, client id, start, total,
    stages)] per request, where [stages] are [(name, seconds)] slices
    in [decode; queue; execute; wal; replicate; respond] order.  Spans
    are recorded only when the server has [telemetry].  Taken under
    the server mutex — cheap, but a snapshot, not a live view. *)

val spans_chrome : t -> string
(** The span ring as Chrome [trace_event] JSON (what [/spans] serves):
    one [stage] slice per stage, span-id correlated, loadable in
    [chrome://tracing] / Perfetto. *)
