(** The control-plane service: a live {!Wdm_multistage.Network}
    behind a TCP or Unix-domain socket.

    Concurrency model — single-writer admission: one reader thread per
    client decodes frames and enqueues requests on a bounded queue;
    one admission thread drains the queue in batches (up to
    [batch_limit] at a time) and is the only thread that touches the
    network, the WAL store, or client sockets' write sides.  The
    network needs no locks, every client observes its own requests in
    order, and when the queue is full reader threads block — TCP flow
    control propagates the backpressure to the clients.

    With [store], every state-changing request is also appended to the
    WAL after it executes (a refused connect is still recorded — WAL
    semantics record requests, replay re-derives outcomes), so a served
    session crash-recovers exactly like a recorded in-process run.
    Requests that failed to execute at all — a disconnect of an unknown
    or already-released route, a fault op with out-of-range indices —
    are answered but never logged: replaying them would fail and read
    as WAL corruption on recovery.

    With [telemetry], the server feeds [server_requests_total] (plus a
    per-client [server_client_requests_total{client="N"}] family),
    [server_responses_total], [server_malformed_total],
    [server_clients_total], [server_clients_active] /
    [server_queue_depth] gauges, [server_batches_total], and
    [server_batch_size] / [server_request_latency_seconds] histograms
    (latency is enqueue to response written, so it includes queueing
    delay).  The network's own [wdmnet_*] instruments live on whatever
    sink the network was created with. *)

module Network = Wdm_multistage.Network

type address =
  | Tcp of string * int  (** host, port; port [0] binds an ephemeral *)
  | Unix_socket of string  (** path; unlinked stale socket on bind *)

val pp_address : Format.formatter -> address -> unit

type t

val start :
  ?telemetry:Wdm_telemetry.Sink.t ->
  ?store:Wdm_persist.Store.t ->
  ?queue_capacity:int ->
  ?batch_limit:int ->
  net:Network.t ->
  address ->
  t
(** Binds, listens and spawns the accept + admission threads.
    [queue_capacity] (default 256) bounds the admission queue;
    [batch_limit] (default 64) caps how many requests one drain takes.
    The caller keeps ownership of [store] (close it after {!stop}).
    @raise Invalid_argument when [queue_capacity < 1] or
    [batch_limit < 1].
    @raise Unix.Unix_error when the address cannot be bound. *)

val address : t -> address
(** The actual bound address — with [Tcp (host, 0)] the kernel-chosen
    port is filled in. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, disconnect clients, drain and
    answer everything already admitted to the queue, and join all
    threads.  After [stop] returns no thread touches the network or
    the store, so the caller can checkpoint and close them safely.
    Idempotent. *)

val served : t -> int
(** Requests answered so far (monotone; stable after {!stop}). *)
