(** Socket-side framing for the control plane.

    The on-wire format is the persistence layer's: after an 8-byte
    header handshake (client hello kind ['C'], server hello kind
    ['R'] — same magic and version byte as the WAL's), each direction
    carries {!Wdm_persist.Wire} CRC32-framed records.  A request
    payload is one {!Wdm_persist.Resp.request}, a response payload one
    {!Wdm_persist.Resp.t}.  This module only moves and validates
    frames; what is inside them is {!Wdm_persist.Resp}'s business.

    All blocking primitives here retry [EINTR]: a signal mid-syscall
    (SIGUSR1 promote, SIGTERM's grace window) must neither tear down a
    healthy connection nor leave half a frame on the wire. *)

val client_hello : string
val server_hello : string

val follower_hello : string
(** Kind ['F']: the connecting peer is a replica asking for the WAL
    stream ({!Wdm_persist.Repl}), not a request/response client.  The
    server answers with the same ['R'] hello either way. *)

val check_client_hello : string -> (unit, string) result
val check_server_hello : string -> (unit, string) result
val check_follower_hello : string -> (unit, string) result

(** {1 Span capability}

    The hello's byte 6 was reserved-zero padding; it now carries
    capability flags ({!Wdm_persist.Wire.header_with_flags}).
    [check_*_hello] ignores it, so flagged and plain hellos
    interoperate in both directions.  When both sides flagged
    {!flag_spans}, every request payload carries a trailing 8-byte
    span id minted by the client ({!Client}); a plain peer on either
    side silently downgrades the connection to span-less framing. *)

val flag_spans : int
(** Bit [0x01]: the sender can mint / decode trailing span ids. *)

val client_hello_spans : string
val server_hello_spans : string

val hello_has_spans : string -> bool
(** Whether a received hello advertised {!flag_spans}. *)

val write_all : Unix.file_descr -> string -> unit
(** Loops over short writes, retrying [EINTR].
    @raise Unix.Unix_error as [Unix.write] for every other failure. *)

type exactly =
  | Exact of string  (** all [n] bytes arrived *)
  | Eof_clean  (** EOF before any byte — a clean close *)
  | Eof_torn of int  (** EOF after [got] bytes — the peer died mid-value *)

val read_exactly : Unix.file_descr -> int -> exactly
(** Reads exactly [n] bytes, retrying short reads and [EINTR].  A torn
    tail is an ordinary constructor, not an exception: every caller
    must classify it, which is how a half-frame-then-close lands in
    {!recv}'s [Bad] path rather than killing the reader. *)

val send_frame : Unix.file_descr -> string -> unit
(** Frames ({!Wdm_persist.Wire.frame}) and writes one payload. *)

type recv = Frame of string | Eof | Bad of string

val recv_frame : Unix.file_descr -> recv
(** Reads one frame off the socket: [Eof] at a clean record boundary,
    [Bad] on an implausible length, a CRC mismatch, or a peer that
    died mid-frame — the stream is unrecoverable past a [Bad]. *)

val recv_frame_buffered : Unix.file_descr -> Framebuf.t -> recv
(** Like {!recv_frame}, but consuming/refilling a {!Framebuf} that may
    already hold bytes read past a previous boundary.  Used when a
    connection leaves the event loop for a dedicated thread (replica
    attach) with loop-buffered bytes still pending. *)
