external ep_create : unit -> int = "wdm_epoll_create"

external ep_ctl : int -> int -> Unix.file_descr -> bool -> bool -> int
  = "wdm_epoll_ctl"

external ep_wait : int -> int -> int array = "wdm_epoll_wait"
external raise_nofile : int -> int = "wdm_raise_nofile"

(* Unix.file_descr is the underlying int on Unix; the stubs already
   treat it as such, and the select fallback needs the reverse mapping
   to hand epoll-style (fd, flags) results back out. *)
external fd_of_int : int -> Unix.file_descr = "%identity"

type backend = Epoll of int | Select

type t = {
  backend : backend;
  (* registered interest, also the working set for the select fallback *)
  interest : (Unix.file_descr, bool * bool) Hashtbl.t;
}

let create () =
  let ep = ep_create () in
  let backend = if ep >= 0 then Epoll ep else Select in
  { backend; interest = Hashtbl.create 64 }

let backend_name t = match t.backend with Epoll _ -> "epoll" | Select -> "select"

let available_backend () =
  let ep = ep_create () in
  if ep >= 0 then begin
    (try Unix.close (fd_of_int ep) with Unix.Unix_error _ -> ());
    "epoll"
  end
  else "select"

let op_add = 0
let op_mod = 1
let op_del = 2

let add t fd ~read ~write =
  if not (Hashtbl.mem t.interest fd) then begin
    Hashtbl.replace t.interest fd (read, write);
    match t.backend with
    | Epoll ep -> ignore (ep_ctl ep op_add fd read write)
    | Select -> ()
  end

let modify t fd ~read ~write =
  match Hashtbl.find_opt t.interest fd with
  | None -> ()
  | Some (r, w) when r = read && w = write -> ()
  | Some _ -> (
    Hashtbl.replace t.interest fd (read, write);
    match t.backend with
    | Epoll ep -> ignore (ep_ctl ep op_mod fd read write)
    | Select -> ())

let remove t fd =
  if Hashtbl.mem t.interest fd then begin
    Hashtbl.remove t.interest fd;
    match t.backend with
    | Epoll ep -> ignore (ep_ctl ep op_del fd false false)
    | Select -> ()
  end

let registered t fd = Hashtbl.mem t.interest fd
let interest t fd = Hashtbl.find_opt t.interest fd

let wait t ~timeout_ms =
  match t.backend with
  | Epoll ep ->
    let raw = ep_wait ep timeout_ms in
    let n = Array.length raw / 2 in
    let out = ref [] in
    for i = n - 1 downto 0 do
      let fd = fd_of_int raw.(2 * i) in
      (* an event may arrive for an fd removed earlier in the same
         batch's processing; interest is the source of truth *)
      if Hashtbl.mem t.interest fd then begin
        let flags = raw.((2 * i) + 1) in
        out := (fd, flags land 1 <> 0, flags land 2 <> 0) :: !out
      end
    done;
    !out
  | Select ->
    let rds = ref [] and wrs = ref [] in
    Hashtbl.iter
      (fun fd (r, w) ->
        if r then rds := fd :: !rds;
        if w then wrs := fd :: !wrs)
      t.interest;
    let timeout = float_of_int timeout_ms /. 1000. in
    if !rds = [] && !wrs = [] then begin
      (* nothing to watch: just honour the timeout *)
      (try ignore (Unix.select [] [] [] timeout)
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      []
    end
    else begin
      match Unix.select !rds !wrs [] timeout with
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> []
      | r, w, _ ->
        let tbl = Hashtbl.create (List.length r + List.length w) in
        List.iter (fun fd -> Hashtbl.replace tbl fd (true, false)) r;
        List.iter
          (fun fd ->
            let rd =
              match Hashtbl.find_opt tbl fd with Some (b, _) -> b | None -> false
            in
            Hashtbl.replace tbl fd (rd, true))
          w;
        Hashtbl.fold (fun fd (rd, wr) acc -> (fd, rd, wr) :: acc) tbl []
    end

let close t =
  Hashtbl.reset t.interest;
  match t.backend with
  | Epoll ep -> ( try Unix.close (fd_of_int ep) with Unix.Unix_error _ -> ())
  | Select -> ()

let ensure_fd_capacity want = raise_nofile want
