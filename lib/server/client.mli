(** Synchronous control-plane client: one request, one framed
    response, in order, over a {!Server.address}, with per-request
    deadlines.

    Failures are typed: [Timeout] is a deadline expiring ([SO_RCVTIMEO]
    on the socket — the dial has its own [dial_timeout]), [Transport]
    is the connection failing (refused, reset, EOF mid-exchange),
    [Protocol] is the peer speaking nonsense (bad hello, CRC mismatch,
    undecodable payload), and [Closed] is a request on a client a
    previous failure already shut down.  A request the server
    {e answered} — even with a refusal or [Not_leader] — is [Ok _]
    carrying the typed {!Wdm_persist.Resp.t}.  A transport failure or
    timeout mid-exchange leaves the byte stream unusable, so it also
    closes the client: every request after it fails fast with
    [Closed].  {!Resilient} wraps this with reconnection and leader
    redirect; this client stays one-socket, fail-fast. *)

module Network = Wdm_multistage.Network

type error =
  | Timeout  (** the deadline expired before the response arrived *)
  | Closed  (** the client was closed (by {!close} or a prior failure) *)
  | Transport of string  (** the connection failed *)
  | Protocol of string  (** the peer violated the wire protocol *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type t

val connect :
  ?dial_timeout:float -> ?deadline:float -> Server.address -> (t, error) result
(** Dials (bounded by [dial_timeout], default 5s) and performs the
    hello handshake.  [deadline] (default 30s) becomes the default
    per-request deadline, and already bounds the handshake read. *)

val close : t -> unit

val spans : t -> bool
(** Whether the span extension was negotiated: both hellos carried
    {!Protocol.flag_spans}.  When [false] (e.g. a pre-flags server)
    requests go out without the trailing span id and still work. *)

val last_span : t -> int option
(** The span id sent with the most recent {!request}; [None] before
    the first request or when spans are off.  Correlates a response
    with the server's slow-op log and stage trace. *)

val request :
  ?deadline:float ->
  t ->
  Wdm_persist.Resp.request ->
  (Wdm_persist.Resp.t, error) result
(** One request, one response.  [deadline] overrides the connect-time
    default for this and subsequent requests. *)

val request_batch :
  ?deadline:float ->
  t ->
  Wdm_persist.Resp.request list ->
  (Wdm_persist.Resp.t list, error) result
(** Pipelining: the requests travel in one
    {!Wdm_persist.Resp.request.Batch} frame and come back as one
    response list of the same arity, in request order.  [Ok []] for an
    empty list without touching the wire; [Error (Protocol _)] without
    sending when the list exceeds {!Wdm_persist.Resp.max_batch}.  A
    reply of the wrong shape or arity closes the client like a torn
    frame would — request/response pairing can no longer be trusted.
    The list must not itself contain a [Batch]. *)

val digest : t -> (int, error) result
(** [request Get_digest] narrowed to its payload. *)

val stats_json : t -> (string, error) result
(** [request Get_stats] narrowed to its payload. *)

val promote : t -> (int, error) result
(** [request Promote] narrowed: [Ok seq] when the follower took over,
    [Error (Protocol _)] when the node refused (already the leader). *)

val churn_sut :
  ?on_admit:(Network.route -> unit) ->
  t ->
  (int, Network.error) Wdm_traffic.Churn.sut
(** The traffic generator's switch-under-test interface served over
    the socket, so a seeded {!Wdm_traffic.Churn.run} drives a remote
    network exactly as it would an in-process one: [connect] maps to
    an [Admit (Connect _)] request (admitted → [Ok id], refused →
    [Error e] with the same typed {!Network.error} the in-process call
    returns), [disconnect] to [Admit (Disconnect _)].  [on_admit]
    observes every admitted route (e.g. to fold
    {!Wdm_persist.Op.route_checksum} for equivalence checks).
    Transport failures and protocol violations raise [Failure] — a
    loadgen run against a dead server must abort, not tally refusals.
    For a sut that survives failover, see {!Resilient.churn_sut}. *)

val churn_sut_pipelined :
  ?on_admit:(Network.route -> unit) ->
  ?depth:int ->
  t ->
  (int, Network.error) Wdm_traffic.Churn.sut * (unit -> unit)
(** {!churn_sut} over {!request_batch}: disconnects are buffered (up
    to [depth], default 64) and flushed — in issue order, inside the
    same [Batch], ahead of the next connect — so the server executes
    exactly the op sequence the sequential sut produces and digests
    stay comparable, while round-trips collapse by roughly the batch
    arity.  Connects are answered synchronously (the generator needs
    the admitted id).  Returns the sut and a [flush] to drain buffered
    disconnects; call it after {!Wdm_traffic.Churn.run} returns,
    before comparing digests.  Failure semantics match {!churn_sut}. *)
