(** Synchronous control-plane client: one request, one framed
    response, in order, over a {!Server.address}.

    Transport failures (connection refused, server gone mid-exchange,
    undecodable response) are [Error _]; a request the server
    {e answered} — even with a refusal — is [Ok _] carrying the typed
    {!Wdm_persist.Resp.t}.  A transport failure mid-exchange leaves
    the byte stream unusable, so it also closes the client: every
    request after it fails fast with ["client is closed"]. *)

module Network = Wdm_multistage.Network

type t

val connect : Server.address -> (t, string) result
(** Dials and performs the hello handshake. *)

val close : t -> unit

val request : t -> Wdm_persist.Resp.request -> (Wdm_persist.Resp.t, string) result

val digest : t -> (int, string) result
(** [request (Get_digest)] narrowed to its payload. *)

val stats_json : t -> (string, string) result
(** [request (Get_stats)] narrowed to its payload. *)

val churn_sut :
  ?on_admit:(Network.route -> unit) ->
  t ->
  (int, Network.error) Wdm_traffic.Churn.sut
(** The traffic generator's switch-under-test interface served over
    the socket, so a seeded {!Wdm_traffic.Churn.run} drives a remote
    network exactly as it would an in-process one: [connect] maps to
    an [Admit (Connect _)] request (admitted → [Ok id], refused →
    [Error e] with the same typed {!Network.error} the in-process call
    returns), [disconnect] to [Admit (Disconnect _)].  [on_admit]
    observes every admitted route (e.g. to fold
    {!Wdm_persist.Op.route_checksum} for equivalence checks).
    Transport failures and protocol violations raise [Failure] — a
    loadgen run against a dead server must abort, not tally refusals. *)
