(** A self-healing control-plane client: {!Client} plus reconnection,
    address rotation and capped exponential backoff, so a caller
    survives a leader death and lands on the promoted follower.

    Every retryable failure — dial refused, deadline expired,
    connection reset, or an answered [Not_leader] — drops the
    connection, rotates to the next address in the list, sleeps the
    current backoff (doubling from [backoff] up to [backoff_cap]) and
    tries again, up to [max_attempts] per request.  [Not_leader]
    backs off too: right after a leader dies the follower answers it
    until someone promotes it, and hammering doesn't help.

    {b At-least-once caveat}: a request the old leader {e executed}
    but whose response was lost in the crash is retried against the
    new leader and executes again.  Deterministic failover tests kill
    the leader at an op boundary (gracefully, so every executed
    request was answered) precisely to keep this window shut; code
    that cannot tolerate a duplicate must not retry blindly. *)

module Network = Wdm_multistage.Network

type t

val create :
  ?dial_timeout:float ->
  ?deadline:float ->
  ?max_attempts:int ->
  ?backoff:float ->
  ?backoff_cap:float ->
  Server.address list ->
  t
(** [addrs] are tried in rotation, starting at the head.  Defaults:
    2s dial timeout, 10s per-request deadline, 12 attempts, backoff
    50ms doubling to a 2s cap (worst case ≈ 14s of sleeping per
    request — enough to ride out a kill + promote sequence).
    Connections are dialed lazily, on the first {!request}.
    @raise Invalid_argument on an empty address list or
    [max_attempts < 1]. *)

val request :
  t -> Wdm_persist.Resp.request -> (Wdm_persist.Resp.t, Client.error) result
(** Like {!Client.request}, but retrying as described above.  [Error]
    carries the {e last} failure once attempts are exhausted. *)

val digest : t -> (int, Client.error) result

val churn_sut :
  ?on_admit:(Network.route -> unit) ->
  t ->
  (int, Network.error) Wdm_traffic.Churn.sut
(** {!Client.churn_sut} over the retrying transport: the sut a
    failover test drives through a leader kill.  Raises [Failure]
    only when retries are exhausted. *)

val reconnects : t -> int
(** Retry transitions performed so far (rotation + backoff events) —
    observability for tests asserting a failover actually exercised
    the healing path. *)

val close : t -> unit
