(** Readiness notification for the event-driven server core.

    A thin façade over two backends: [epoll] (Linux, via C stubs) and a
    portable [Unix.select] fallback.  The server's single loop thread
    registers every connection here and blocks in {!wait}; epoll keeps
    that O(ready) rather than O(watched), and — unlike [select] — has
    no FD_SETSIZE ceiling, which is what makes the 1k+ idle-connection
    target possible.

    Not thread-safe: exactly one thread (the event loop) may touch a
    [t].  Level-triggered on both backends — an fd keeps reporting
    ready until its condition is consumed or its interest cleared. *)

type t

val create : unit -> t
(** Picks [epoll] when the kernel offers it, [select] otherwise. *)

val backend_name : t -> string
(** ["epoll"] or ["select"]. *)

val available_backend : unit -> string
(** The backend {!create} would pick right now, without keeping one. *)

val add : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Start watching an fd.  No-op if already registered. *)

val modify : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Change interest.  Skips the syscall when nothing changed; no-op on
    unregistered fds. *)

val remove : t -> Unix.file_descr -> unit
(** Stop watching.  Call before closing the fd. *)

val registered : t -> Unix.file_descr -> bool

val interest : t -> Unix.file_descr -> (bool * bool) option
(** The [(read, write)] interest currently registered for an fd, so a
    caller can change one side without clobbering the other. *)

val wait : t -> timeout_ms:int -> (Unix.file_descr * bool * bool) list
(** Block up to [timeout_ms] for events; [(fd, readable, writable)]
    per ready descriptor.  Error/hangup conditions are folded into
    both flags so the caller's read or write attempt surfaces the
    failure.  EINTR and timeouts both return [[]]. *)

val close : t -> unit
(** Release the backend (closes the epoll fd).  The watched fds are
    the caller's to close. *)

val ensure_fd_capacity : int -> int
(** Raise [RLIMIT_NOFILE]'s soft limit toward the argument (capped at
    the hard limit) and return the soft limit now in force, or [-1]
    when the limit cannot be read.  Used by the idle-connection soak
    and the serving bench, which hold >1k sockets in one process. *)
