module Wire = Wdm_persist.Wire
module Crc32 = Wdm_persist.Crc32

let client_hello = Wire.header ~kind:'C'
let server_hello = Wire.header ~kind:'R'
let follower_hello = Wire.header ~kind:'F'
let check_client_hello s = Wire.check_header ~kind:'C' s
let check_server_hello s = Wire.check_header ~kind:'R' s
let check_follower_hello s = Wire.check_header ~kind:'F' s

(* Span capability: advertised in the hello's flags byte (reserved-zero
   padding to pre-flags peers, so either side may be old).  The
   extension is live on a connection only when BOTH hellos carried the
   bit; only then does the client append a trailing span id to each
   request payload. *)
let flag_spans = 0x01
let client_hello_spans = Wire.header_with_flags ~kind:'C' ~flags:flag_spans
let server_hello_spans = Wire.header_with_flags ~kind:'R' ~flags:flag_spans
let hello_has_spans s = Wire.header_flags s land flag_spans <> 0

let write_all fd s =
  let n = String.length s in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write_substring fd s !written (n - !written)
  done

let read_exactly fd n =
  let buf = Bytes.create n in
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < n do
    match Unix.read fd buf !got (n - !got) with
    | 0 -> eof := true
    | r -> got := !got + r
  done;
  if !got = n then Some (Bytes.unsafe_to_string buf)
  else if !got = 0 then None
  else failwith "Protocol.read_exactly: EOF mid-value"

let send_frame fd payload = write_all fd (Wire.frame payload)

type recv = Frame of string | Eof | Bad of string

(* The socket variant of [Wire.read_frame]: same 4-byte length + 4-byte
   CRC prelude, but a torn tail here means the peer died mid-frame —
   there is no file to truncate, so it is reported as damage. *)
let recv_frame fd =
  match read_exactly fd 8 with
  | None -> Eof
  | exception Failure _ -> Bad "peer closed mid-frame-header"
  | Some prelude -> (
    let r = Wire.reader prelude in
    let len = Wire.get_u32 r in
    let crc = Wire.get_u32 r in
    if len = 0 || len > Wire.max_payload then
      Bad (Printf.sprintf "implausible record length %d" len)
    else
      match read_exactly fd len with
      | None | (exception Failure _) -> Bad "peer closed mid-payload"
      | Some payload ->
        if Crc32.string payload <> crc then Bad "CRC mismatch" else Frame payload)
