module Wire = Wdm_persist.Wire
module Crc32 = Wdm_persist.Crc32

let client_hello = Wire.header ~kind:'C'
let server_hello = Wire.header ~kind:'R'
let follower_hello = Wire.header ~kind:'F'
let check_client_hello s = Wire.check_header ~kind:'C' s
let check_server_hello s = Wire.check_header ~kind:'R' s
let check_follower_hello s = Wire.check_header ~kind:'F' s

(* Span capability: advertised in the hello's flags byte (reserved-zero
   padding to pre-flags peers, so either side may be old).  The
   extension is live on a connection only when BOTH hellos carried the
   bit; only then does the client append a trailing span id to each
   request payload. *)
let flag_spans = 0x01
let client_hello_spans = Wire.header_with_flags ~kind:'C' ~flags:flag_spans
let server_hello_spans = Wire.header_with_flags ~kind:'R' ~flags:flag_spans
let hello_has_spans s = Wire.header_flags s land flag_spans <> 0

(* Every blocking syscall below retries EINTR: a signal landing
   mid-write (SIGUSR1 promote, SIGTERM's grace window, an interval
   timer) must not tear down a healthy connection or leave half a
   frame on the wire. *)

let write_all fd s =
  let n = String.length s in
  let written = ref 0 in
  while !written < n do
    match Unix.write_substring fd s !written (n - !written) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | w -> written := !written + w
  done

let rec read_retry fd buf off len =
  match Unix.read fd buf off len with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd buf off len
  | r -> r

type exactly = Exact of string | Eof_clean | Eof_torn of int

let read_exactly fd n =
  let buf = Bytes.create n in
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < n do
    match read_retry fd buf !got (n - !got) with
    | 0 -> eof := true
    | r -> got := !got + r
  done;
  if !got = n then Exact (Bytes.unsafe_to_string buf)
  else if !got = 0 then Eof_clean
  else Eof_torn !got

let send_frame fd payload = write_all fd (Wire.frame payload)

type recv = Frame of string | Eof | Bad of string

(* The socket variant of [Wire.read_frame]: same 4-byte length + 4-byte
   CRC prelude, but a torn tail here means the peer died mid-frame —
   there is no file to truncate, so it is reported as damage. *)
let recv_frame fd =
  match read_exactly fd 8 with
  | Eof_clean -> Eof
  | Eof_torn _ -> Bad "peer closed mid-frame-header"
  | Exact prelude -> (
    let r = Wire.reader prelude in
    let len = Wire.get_u32 r in
    let crc = Wire.get_u32 r in
    if len = 0 || len > Wire.max_payload then
      Bad (Printf.sprintf "implausible record length %d" len)
    else
      match read_exactly fd len with
      | Eof_clean | Eof_torn _ -> Bad "peer closed mid-payload"
      | Exact payload ->
        if Crc32.string payload <> crc then Bad "CRC mismatch" else Frame payload)

(* Blocking frame reads over a Framebuf that may already hold bytes —
   the hand-off path when the event loop detaches a replica connection
   to its own thread after the hello (the loop may have read past the
   hello into the first Subscribe frame). *)
let recv_frame_buffered fd fb =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Framebuf.next_frame fb with
    | Framebuf.Frame p -> Frame p
    | Framebuf.Bad reason -> Bad reason
    | Framebuf.Need _ -> (
      match read_retry fd chunk 0 (Bytes.length chunk) with
      | 0 -> if Framebuf.length fb = 0 then Eof else Bad "peer closed mid-frame"
      | n ->
        Framebuf.add_subbytes fb chunk ~off:0 ~len:n;
        go ())
  in
  go ()
