(** Per-connection receive buffer with incremental frame decoding.

    The event loop ({!Server}) reads whatever the kernel has into a
    scratch buffer and appends it here; {!next_frame} then yields zero
    or more complete {!Wdm_persist.Wire} CRC32-framed records without
    ever blocking.  The same accumulator doubles as a raw byte buffer
    for the 8-byte hello handshake and for HTTP request heads
    ({!take} / {!index}), and carries leftover bytes across the
    detach-to-thread boundary for replica connections
    ({!Protocol.recv_frame_buffered}). *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty buffer.  [capacity] is the initial allocation (bytes);
    the buffer grows geometrically as needed. *)

val length : t -> int
(** Bytes currently buffered and not yet consumed. *)

val add_subbytes : t -> Bytes.t -> off:int -> len:int -> unit
(** Append [len] bytes of [src] starting at [off]. *)

val add_string : t -> string -> unit

val take : t -> int -> string
(** Consume and return the first [n] buffered bytes.
    @raise Invalid_argument if fewer than [n] bytes are buffered. *)

val contents : t -> string
(** The buffered bytes, without consuming them. *)

val index : t -> char -> int option
(** Offset of the first occurrence of a byte, if buffered. *)

type frame =
  | Frame of string  (** one complete, CRC-verified payload, consumed *)
  | Bad of string  (** framing damage — the stream is unrecoverable *)
  | Need of int  (** at least [n] more bytes must arrive first *)

val next_frame : t -> frame
(** Try to decode one frame off the front of the buffer.  [Frame] and
    [Bad] follow {!Protocol.recv} semantics; [Need] is the streaming
    third case that a blocking reader never sees. *)
