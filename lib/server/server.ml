module Network = Wdm_multistage.Network
module P = Wdm_persist
module Tel = Wdm_telemetry

type address = Tcp of string * int | Unix_socket of string

let pp_address ppf = function
  | Tcp (host, port) -> Format.fprintf ppf "tcp:%s:%d" host port
  | Unix_socket path -> Format.fprintf ppf "unix:%s" path

type role = Leader | Follower

type follower_config = { leader : address; wal : string option }

type client = {
  cid : int;
  fd : Unix.file_descr;
  mutable open_ : bool;  (** guarded by the server mutex *)
  mutable spans : bool;
      (** the hello negotiated the span extension; written once by the
          client's own thread before any frame is read *)
  mutable c_requests : Tel.Metrics.counter option;
      (** registered after the handshake, guarded by the server mutex *)
}

(* A leader-side replica connection.  The admission thread pushes
   pre-framed bytes into [outbox]; one sender thread per replica drains
   it, so a slow replica can never stall admission — when the outbox
   overflows the replica is evicted instead.  [client.open_] is the
   single close-once guard, exactly as for ordinary clients. *)
type replica = {
  client : client;
  outbox : string Queue.t;  (** guarded by the server mutex *)
  fcond : Condition.t;  (** signalled on push / close, waits on the mutex *)
  mutable closing : bool;  (** drain what is queued, then exit *)
  mutable outbox_bytes : int;
  mutable acked_seq : int;
  mutable pending_digests : (int * int) list;  (** (seq, digest) awaiting ack *)
  mutable sender : Thread.t option;
}

(* The follower side's link to its leader.  [alive] lets the admission
   thread tell frames of the current connection from stragglers of a
   dead one, and guards ack writes against a closed fd. *)
type repl_conn = { rfd : Unix.file_descr; mutable alive : bool }

type promote_waiter = {
  mutable result : (int, string) result option;
  pcond : Condition.t;
}

type item =
  | Request of {
      client : client;
      req : P.Resp.request;
      enqueued : float;
      span : int option;  (** client-minted id from the trailing extension *)
      decode : float;  (** reader-thread decode time, observed at admission *)
    }
  | Malformed of { client : client; reason : string }
  | Gone of client
  | Attach of { client : client; epoch : int; last_seq : int }
  | Repl_msg of { conn : repl_conn; msg : P.Repl.to_follower }
  | Do_promote of promote_waiter

type instruments = {
  sink : Tel.Sink.t;
  requests : Tel.Metrics.counter;
  responses : Tel.Metrics.counter;
  malformed : Tel.Metrics.counter;
  clients_total : Tel.Metrics.counter;
  batches : Tel.Metrics.counter;
  accept_errors : Tel.Metrics.counter;
  g_clients_active : Tel.Metrics.gauge;
  g_queue_depth : Tel.Metrics.gauge;
  h_batch_size : Tel.Histogram.t;
  h_latency : Tel.Histogram.t;
  (* per-request stage breakdown (tentpole: where a request's time goes) *)
  h_st_decode : Tel.Histogram.t;
  h_st_queue : Tel.Histogram.t;
  h_st_execute : Tel.Histogram.t;
  h_st_wal : Tel.Histogram.t;
  h_st_replicate : Tel.Histogram.t;
  h_st_respond : Tel.Histogram.t;
  slow_requests : Tel.Metrics.counter;
  (* replication, leader side *)
  r_snapshots_sent : Tel.Metrics.counter;
  r_resumes : Tel.Metrics.counter;
  r_ops_sent : Tel.Metrics.counter;
  r_bytes_sent : Tel.Metrics.counter;
  r_evictions : Tel.Metrics.counter;
  r_digest_checks : Tel.Metrics.counter;
  r_digest_failures : Tel.Metrics.counter;
  g_followers : Tel.Metrics.gauge;
  g_lag_ops : Tel.Metrics.gauge;
  g_lag_bytes : Tel.Metrics.gauge;
  (* replication, follower side *)
  r_applied : Tel.Metrics.counter;
  r_snapshots_recv : Tel.Metrics.counter;
  r_reconnects : Tel.Metrics.counter;
  r_digest_mismatch : Tel.Metrics.counter;
  g_follower_lag : Tel.Metrics.gauge;
}

(* One served request's timing record: what the span ring holds, what
   the slow-op log and the Chrome export render.  [sr_start] is the
   sink-clock instant the reader began decoding the frame; stages are
   contiguous slices in emission order. *)
type span_record = {
  sr_span : int option;
  sr_cid : int;
  sr_start : float;
  sr_total : float;
  sr_stages : (string * float) list;
}

type t = {
  mutable net : Network.t;
      (** replaced when a follower installs a leader snapshot; only the
          admission thread writes it *)
  mutable store : P.Store.t option;
      (** replaced alongside [net] in follower mode *)
  ins : instruments option;
  tel : Tel.Sink.t option;
  listen_fd : Unix.file_descr;
  mutable bound : address;
  queue : item Queue.t;
  capacity : int;
  batch_limit : int;
  mu : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable stopping : bool;
  mutable stopped : bool;
  mutable next_cid : int;
  mutable clients : client list;
  mutable served_count : int;
  mutable accept_thread : Thread.t option;
  mutable admit_thread : Thread.t option;
  (* replication *)
  mutable role : role;
  mutable epoch : int;  (** this leader generation's id *)
  mutable rep_seq : int;  (** committed ops so far (WAL record stream) *)
  ring : (int * P.Op.t) Queue.t;  (** recent (seq, op) for replica resume *)
  resume_window : int;
  digest_every : int;
  outbox_capacity : int;
  follower_sndbuf : int option;
  mutable last_digest_seq : int;
  mutable replicas : replica list;  (** guarded by the server mutex *)
  (* follower role *)
  follower_cfg : follower_config option;
  mutable repl_epoch : int;  (** leader generation we last synced to; 0 none *)
  mutable repl_conn : repl_conn option;  (** guarded by the server mutex *)
  mutable force_snapshot : bool;  (** next subscribe must ask for a snapshot *)
  mutable repl_thread : Thread.t option;
  mutable leader_seq : int;
      (** follower: highest seq the leader has shown us (op or digest);
          [leader_seq - rep_seq] is the apply lag *)
  (* observability plane *)
  span_buffer : int;
  spans_ring : span_record Queue.t;  (** guarded by the server mutex *)
  slow_ms : float option;
  slow_out : out_channel option;  (** admission thread only *)
  slow_owned : bool;  (** [stop] closes [slow_out] only if we opened it *)
  ready_lag : int;
  mutable http_fd : Unix.file_descr option;
  mutable http_bound : address option;
  mutable http_thread : Thread.t option;
}

let register_instruments sink =
  let reg = sink.Tel.Sink.metrics in
  let c help name = Tel.Metrics.counter reg ~help name in
  let g help name = Tel.Metrics.gauge reg ~help name in
  {
    sink;
    requests = c "Requests admitted to the queue" "server_requests_total";
    responses = c "Responses written back" "server_responses_total";
    malformed = c "Undecodable frames received" "server_malformed_total";
    clients_total = c "Client connections accepted" "server_clients_total";
    batches = c "Admission-loop drains" "server_batches_total";
    accept_errors =
      c "Transient accept(2) failures survived" "server_accept_errors_total";
    g_clients_active = g "Clients currently connected" "server_clients_active";
    g_queue_depth = g "Requests waiting for admission" "server_queue_depth";
    h_batch_size =
      Tel.Metrics.histogram reg ~help:"Requests taken per drain"
        ~bounds:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. |]
        "server_batch_size";
    h_latency =
      Tel.Metrics.histogram reg
        ~help:"Enqueue-to-response-written latency of one request"
        "server_request_latency_seconds";
    h_st_decode =
      Tel.Metrics.histogram reg ~help:"Reader-thread frame decode time"
        "server_stage_decode_seconds";
    h_st_queue =
      Tel.Metrics.histogram reg ~help:"Admission-queue wait"
        "server_stage_queue_seconds";
    h_st_execute =
      Tel.Metrics.histogram reg ~help:"Network execute time"
        "server_stage_execute_seconds";
    h_st_wal =
      Tel.Metrics.histogram reg ~help:"WAL append (incl. fsync policy) time"
        "server_stage_wal_seconds";
    h_st_replicate =
      Tel.Metrics.histogram reg
        ~help:"Replication ship time (outbox enqueue across followers)"
        "server_stage_replicate_seconds";
    h_st_respond =
      Tel.Metrics.histogram reg ~help:"Response frame write time"
        "server_stage_respond_seconds";
    slow_requests =
      c "Requests whose total latency crossed the --slow-ms threshold"
        "server_slow_requests_total";
    r_snapshots_sent =
      c "Full state snapshots sent to attaching followers"
        "repl_snapshots_sent_total";
    r_resumes = c "Follower attaches resumed from the ring" "repl_resumes_total";
    r_ops_sent = c "Replicated ops queued to followers" "repl_ops_sent_total";
    r_bytes_sent =
      c "Replication bytes queued to followers (incl. framing)"
        "repl_bytes_sent_total";
    r_evictions =
      c "Followers dropped for falling too far behind" "repl_evictions_total";
    r_digest_checks =
      c "Follower digest acknowledgements verified" "repl_digest_checks_total";
    r_digest_failures =
      c "Follower digest acknowledgements that disagreed"
        "repl_digest_failures_total";
    g_followers = g "Followers currently attached" "repl_followers";
    g_lag_ops = g "Largest follower outbox backlog, in ops" "repl_lag_ops";
    g_lag_bytes = g "Largest follower outbox backlog, in bytes" "repl_lag_bytes";
    r_applied = c "Replicated ops applied locally" "repl_applied_total";
    r_snapshots_recv =
      c "Leader snapshots installed" "repl_snapshots_received_total";
    r_reconnects =
      c "Replication links re-established after a drop" "repl_reconnects_total";
    r_digest_mismatch =
      c "Leader digests that disagreed with local state"
        "repl_digest_mismatch_total";
    g_follower_lag =
      g "Ops the leader has shown that this follower has not yet applied"
        "repl_follower_lag_ops";
  }

let now t = match t.ins with Some i -> Tel.Sink.now i.sink | None -> 0.
let inc t f = match t.ins with Some i -> Tel.Metrics.inc (f i) | None -> ()

(* Distinct across leader generations on one machine — what guards a
   follower's resume against replaying into a diverged successor. *)
let fresh_epoch () =
  let usec = int_of_float (Unix.gettimeofday () *. 1e6) in
  max 1 ((usec lxor (Unix.getpid () lsl 44)) land ((1 lsl 54) - 1))

let leader_string t =
  match t.follower_cfg with
  | Some { leader; _ } -> Format.asprintf "%a" pp_address leader
  | None -> ""

(* ----- bounded queue --------------------------------------------------- *)

let set_depth t =
  match t.ins with
  | Some i -> Tel.Metrics.set i.g_queue_depth (float_of_int (Queue.length t.queue))
  | None -> ()

(* Reader-thread side.  Blocking here when the queue is full is the
   backpressure mechanism: the reader stops pulling bytes off its
   socket, the kernel's receive window fills, and the client's sends
   stall.  During shutdown the capacity check is waived so readers can
   always deposit their final [Gone] and exit. *)
let push t item =
  Mutex.lock t.mu;
  while Queue.length t.queue >= t.capacity && not t.stopping do
    Condition.wait t.not_full t.mu
  done;
  Queue.add item t.queue;
  set_depth t;
  Condition.signal t.not_empty;
  Mutex.unlock t.mu

(* Admission side: take up to [batch_limit] items in one lock hold. *)
let drain_batch t =
  Mutex.lock t.mu;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.not_empty t.mu
  done;
  let batch = ref [] in
  let n = ref 0 in
  while !n < t.batch_limit && not (Queue.is_empty t.queue) do
    batch := Queue.pop t.queue :: !batch;
    incr n
  done;
  set_depth t;
  Condition.broadcast t.not_full;
  let finished = t.stopping && Queue.is_empty t.queue && !batch = [] in
  Mutex.unlock t.mu;
  if finished then None else Some (List.rev !batch)

(* ----- per-client plumbing --------------------------------------------- *)

let close_client t client =
  Mutex.lock t.mu;
  let was_open = client.open_ in
  if was_open then begin
    client.open_ <- false;
    t.clients <- List.filter (fun c -> c.cid <> client.cid) t.clients;
    (match t.ins with
    | Some i ->
      Tel.Metrics.set i.g_clients_active (float_of_int (List.length t.clients))
    | None -> ())
  end;
  Mutex.unlock t.mu;
  if was_open then try Unix.close client.fd with Unix.Unix_error _ -> ()

let reader_loop t client =
  let stop_reading = ref false in
  while not !stop_reading do
    match Protocol.recv_frame client.fd with
    | exception Unix.Unix_error _ ->
      push t (Gone client);
      stop_reading := true
    | Protocol.Eof ->
      push t (Gone client);
      stop_reading := true
    | Protocol.Bad reason ->
      push t (Malformed { client; reason });
      stop_reading := true
    | Protocol.Frame payload -> (
      let t0 = now t in
      let r = P.Wire.reader payload in
      match
        let req = P.Resp.decode_request r in
        (* requests are self-delimiting, so the negotiated trailing
           span id sits cleanly after the request proper *)
        let span = if client.spans then Some (P.Wire.get_int r) else None in
        P.Wire.expect_end r;
        (req, span)
      with
      | req, span ->
        Option.iter (fun c -> Tel.Metrics.inc c) client.c_requests;
        (match t.ins with Some i -> Tel.Metrics.inc i.requests | None -> ());
        let enqueued = now t in
        push t (Request { client; req; enqueued; span; decode = enqueued -. t0 })
      | exception P.Wire.Decode_error { offset; reason } ->
        push t
          (Malformed
             {
               client;
               reason = Printf.sprintf "%s at payload offset %d" reason offset;
             });
        stop_reading := true)
  done

(* ----- leader-side replication ----------------------------------------- *)

let frame_to_follower msg =
  let b = Buffer.create 256 in
  P.Repl.encode_to_follower b msg;
  P.Wire.frame (Buffer.contents b)

let set_follower_gauges t =
  match t.ins with
  | None -> ()
  | Some i ->
    Tel.Metrics.set i.g_followers (float_of_int (List.length t.replicas));
    let lag_ops, lag_bytes =
      List.fold_left
        (fun (o, b) f -> (max o (Queue.length f.outbox), max b f.outbox_bytes))
        (0, 0) t.replicas
    in
    Tel.Metrics.set i.g_lag_ops (float_of_int lag_ops);
    Tel.Metrics.set i.g_lag_bytes (float_of_int lag_bytes)

(* Under the mutex: take the replica out of both registries and flag
   the fd closed-once.  Returns whether the caller must close it. *)
let unlink_replica t f =
  t.replicas <- List.filter (fun g -> g.client.cid <> f.client.cid) t.replicas;
  set_follower_gauges t;
  Condition.broadcast f.fcond;
  if f.client.open_ then begin
    f.client.open_ <- false;
    t.clients <- List.filter (fun c -> c.cid <> f.client.cid) t.clients;
    true
  end
  else false

let drop_replica t f =
  Mutex.lock t.mu;
  let close = unlink_replica t f in
  Mutex.unlock t.mu;
  if close then begin
    (try Unix.shutdown f.client.fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    try Unix.close f.client.fd with Unix.Unix_error _ -> ()
  end

(* One sender thread per replica: pop, write, repeat.  Exits when the
   outbox is empty and the replica is closing (graceful stop drained
   everything) or gone (evicted / connection lost). *)
let sender_loop t f =
  let run = ref true in
  while !run do
    Mutex.lock t.mu;
    while Queue.is_empty f.outbox && f.client.open_ && not f.closing do
      Condition.wait f.fcond t.mu
    done;
    if not (Queue.is_empty f.outbox) then begin
      let frame = Queue.pop f.outbox in
      f.outbox_bytes <- f.outbox_bytes - String.length frame;
      Mutex.unlock t.mu;
      match Protocol.write_all f.client.fd frame with
      | () -> ()
      | exception (Unix.Unix_error _ | Sys_error _) ->
        drop_replica t f;
        run := false
    end
    else begin
      Mutex.unlock t.mu;
      run := false (* empty and closing-or-closed *)
    end
  done

(* Admission-thread side: queue one frame to every live replica.  A
   full outbox evicts the replica — admission must never wait for a
   slow consumer.  Returns the evicted replicas for fd teardown
   outside the lock. *)
let offer_frame t frame =
  let evicted = ref [] in
  Mutex.lock t.mu;
  List.iter
    (fun f ->
      if f.client.open_ && not f.closing then begin
        if Queue.length f.outbox >= t.outbox_capacity then
          evicted := f :: !evicted
        else begin
          Queue.add frame f.outbox;
          f.outbox_bytes <- f.outbox_bytes + String.length frame;
          (match t.ins with
          | Some i ->
            Tel.Metrics.inc i.r_ops_sent;
            Tel.Metrics.add i.r_bytes_sent (String.length frame)
          | None -> ());
          Condition.signal f.fcond
        end
      end)
    t.replicas;
  set_follower_gauges t;
  Mutex.unlock t.mu;
  List.iter
    (fun f ->
      inc t (fun i -> i.r_evictions);
      drop_replica t f)
    !evicted

let offer_digest t =
  let digest = P.Store.digest t.net in
  let seq = t.rep_seq in
  let frame = frame_to_follower (P.Repl.Rep_digest { seq; digest }) in
  Mutex.lock t.mu;
  List.iter
    (fun f ->
      if f.client.open_ && not f.closing
         && Queue.length f.outbox < t.outbox_capacity
      then begin
        Queue.add frame f.outbox;
        f.outbox_bytes <- f.outbox_bytes + String.length frame;
        f.pending_digests <- (seq, digest) :: f.pending_digests;
        Condition.signal f.fcond
      end)
    t.replicas;
  Mutex.unlock t.mu

(* Called by the admission thread for every committed op, after the
   WAL append: the replication stream is the WAL, frame by frame. *)
let replicate t op =
  t.rep_seq <- t.rep_seq + 1;
  Queue.add (t.rep_seq, op) t.ring;
  if Queue.length t.ring > t.resume_window then ignore (Queue.pop t.ring);
  let have_replicas =
    Mutex.lock t.mu;
    let r = t.replicas <> [] in
    Mutex.unlock t.mu;
    r
  in
  if have_replicas then begin
    offer_frame t (frame_to_follower (P.Repl.Rep_op { seq = t.rep_seq; op }));
    if t.rep_seq - t.last_digest_seq >= t.digest_every then begin
      t.last_digest_seq <- t.rep_seq;
      offer_digest t
    end
  end

(* Admission-thread handling of a follower's Subscribe: decide resume
   vs snapshot at a point where no op can slip between the decision
   and the stream start — the admission thread is the only writer. *)
let handle_attach t client ~epoch ~last_seq =
  if t.role <> Leader then begin
    (try
       Protocol.write_all client.fd
         (frame_to_follower (P.Repl.Goodbye { reason = "not the leader" }))
     with Unix.Unix_error _ | Sys_error _ -> ());
    close_client t client
  end
  else begin
    Mutex.lock t.mu;
    let live = client.open_ in
    let f =
      if not live then None
      else begin
        (* migrate from the client registry to the replica registry:
           replication connections outlive the client shutdown phase
           of [stop] so the final ops still reach them *)
        t.clients <- List.filter (fun c -> c.cid <> client.cid) t.clients;
        (match t.ins with
        | Some i ->
          Tel.Metrics.set i.g_clients_active
            (float_of_int (List.length t.clients))
        | None -> ());
        let f =
          {
            client;
            outbox = Queue.create ();
            fcond = Condition.create ();
            closing = false;
            outbox_bytes = 0;
            acked_seq = last_seq;
            pending_digests = [];
            sender = None;
          }
        in
        t.replicas <- f :: t.replicas;
        set_follower_gauges t;
        Some f
      end
    in
    Mutex.unlock t.mu;
    match f with
    | None -> ()
    | Some f ->
      let ring_floor = t.rep_seq - Queue.length t.ring in
      let init =
        if
          epoch = t.epoch && last_seq >= ring_floor && last_seq <= t.rep_seq
        then begin
          inc t (fun i -> i.r_resumes);
          let backlog =
            Queue.fold
              (fun acc (seq, op) ->
                if seq > last_seq then
                  frame_to_follower (P.Repl.Rep_op { seq; op }) :: acc
                else acc)
              [] t.ring
          in
          frame_to_follower (P.Repl.Init_resume { epoch = t.epoch; seq = last_seq })
          :: List.rev backlog
        end
        else begin
          inc t (fun i -> i.r_snapshots_sent);
          [
            frame_to_follower
              (P.Repl.Init_snapshot
                 {
                   epoch = t.epoch;
                   seq = t.rep_seq;
                   state = P.Store.encode_state (Network.snapshot t.net);
                 });
          ]
        end
      in
      let digest = P.Store.digest t.net in
      let dig_frame =
        frame_to_follower (P.Repl.Rep_digest { seq = t.rep_seq; digest })
      in
      Mutex.lock t.mu;
      if f.client.open_ then begin
        List.iter
          (fun frame ->
            Queue.add frame f.outbox;
            f.outbox_bytes <- f.outbox_bytes + String.length frame)
          (init @ [ dig_frame ]);
        f.pending_digests <- [ (t.rep_seq, digest) ];
        f.sender <- Some (Thread.create (fun () -> sender_loop t f) ());
        Condition.signal f.fcond
      end;
      Mutex.unlock t.mu
  end

(* Ack handling runs on the replica's reader thread, not admission:
   it only touches the replica record (under the mutex), never the
   network.  Returns [false] when the replica was dropped. *)
let handle_ack t client ~seq ~digest =
  Mutex.lock t.mu;
  let f = List.find_opt (fun f -> f.client.cid = client.cid) t.replicas in
  let verdict =
    match f with
    | None -> `Ignore
    | Some f -> (
      f.acked_seq <- max f.acked_seq seq;
      match List.assoc_opt seq f.pending_digests with
      | None -> `Ignore (* an ack we no longer remember sending *)
      | Some sent ->
        f.pending_digests <- List.remove_assoc seq f.pending_digests;
        if sent = digest then `Ok else `Mismatch f)
  in
  Mutex.unlock t.mu;
  match verdict with
  | `Ignore -> true
  | `Ok ->
    inc t (fun i -> i.r_digest_checks);
    true
  | `Mismatch f ->
    inc t (fun i -> i.r_digest_checks);
    inc t (fun i -> i.r_digest_failures);
    inc t (fun i -> i.r_evictions);
    drop_replica t f;
    false

(* The per-connection thread of an attached follower, after the
   Subscribe was queued: consume acks until the link dies. *)
let replica_reader_loop t client =
  let run = ref true in
  while !run do
    match Protocol.recv_frame client.fd with
    | exception Unix.Unix_error _ -> run := false
    | Protocol.Eof | Protocol.Bad _ -> run := false
    | Protocol.Frame payload -> (
      match P.Repl.to_leader_of_string payload with
      | Ok (P.Repl.Ack { seq; digest }) ->
        if not (handle_ack t client ~seq ~digest) then run := false
      | Ok (P.Repl.Subscribe _) | Error _ -> run := false)
  done;
  Mutex.lock t.mu;
  let f = List.find_opt (fun f -> f.client.cid = client.cid) t.replicas in
  Mutex.unlock t.mu;
  match f with
  | Some f -> drop_replica t f
  | None ->
    (* the Attach may still be queued, or was refused; the admission
       thread owns the cleanup either way *)
    push t (Gone client)

(* ----- follower-side replication --------------------------------------- *)

let shutdown_conn conn =
  conn.alive <- false;
  try Unix.shutdown conn.rfd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

(* Admission thread, follower role: the replication stream diverged
   (bad seq, undecodable state, digest mismatch).  Drop the link and
   make the next subscribe demand a fresh snapshot. *)
let resync t conn =
  Mutex.lock t.mu;
  t.force_snapshot <- true;
  (match t.repl_conn with
  | Some c when c == conn -> t.repl_conn <- None
  | _ -> ());
  Mutex.unlock t.mu;
  shutdown_conn conn

let send_ack t conn ~seq ~digest =
  let b = Buffer.create 32 in
  P.Repl.encode_to_leader b (P.Repl.Ack { seq; digest });
  let frame = P.Wire.frame (Buffer.contents b) in
  Mutex.lock t.mu;
  (if conn.alive then
     try Protocol.write_all conn.rfd frame
     with Unix.Unix_error _ | Sys_error _ -> ());
  Mutex.unlock t.mu

(* Admission thread: apply one replication message.  Stale frames from
   a connection the follower already abandoned are dropped — the new
   subscribe re-fetches whatever they carried. *)
let handle_repl t conn msg =
  let current =
    Mutex.lock t.mu;
    let c = match t.repl_conn with Some c -> c == conn | None -> false in
    Mutex.unlock t.mu;
    c
  in
  if current then begin
    (* every message that names a leader seq tells us how far ahead the
       leader is; the gap to [rep_seq] is the apply lag /readyz gates on *)
    (match msg with
    | P.Repl.Init_snapshot { seq; _ }
    | P.Repl.Init_resume { seq; _ }
    | P.Repl.Rep_op { seq; _ }
    | P.Repl.Rep_digest { seq; _ } ->
      if seq > t.leader_seq then t.leader_seq <- seq
    | P.Repl.Goodbye _ -> ());
    (match msg with
    | P.Repl.Init_snapshot { epoch; seq; state } -> (
      match P.Store.decode_state state with
      | Error _ -> resync t conn
      | Ok snap -> (
        match Network.restore ?telemetry:t.tel snap with
        | exception Invalid_argument _ -> resync t conn
        | net ->
          t.net <- net;
          t.rep_seq <- seq;
          t.repl_epoch <- epoch;
          inc t (fun i -> i.r_snapshots_recv);
          (match t.follower_cfg with
          | Some { wal = Some wal; _ } ->
            (match t.store with
            | Some s -> ( try P.Store.close s with Sys_error _ -> ())
            | None -> ());
            t.store <- Some (P.Store.start ?telemetry:t.tel ~wal net);
            P.Repl.save_mark ~wal { P.Repl.epoch; base_seq = seq }
          | _ -> ())))
    | P.Repl.Init_resume { epoch; seq } ->
      if seq <> t.rep_seq then resync t conn else t.repl_epoch <- epoch
    | P.Repl.Rep_op { seq; op } ->
      if seq <> t.rep_seq + 1 then resync t conn
      else (
        match P.Op.apply t.net op with
        | Ok _ ->
          t.rep_seq <- seq;
          inc t (fun i -> i.r_applied);
          Option.iter (fun s -> P.Store.log s op) t.store
        | Error _ -> resync t conn)
    | P.Repl.Rep_digest { seq; digest } ->
      let own = P.Store.digest t.net in
      if seq <> t.rep_seq || own <> digest then begin
        inc t (fun i -> i.r_digest_mismatch);
        resync t conn
      end
      else send_ack t conn ~seq ~digest:own
    | P.Repl.Goodbye _ -> ());
    match t.ins with
    | Some i ->
      Tel.Metrics.set i.g_follower_lag
        (float_of_int (max 0 (t.leader_seq - t.rep_seq)))
    | None -> ()
  end

let sockaddr_of_address = function
  | Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    (Unix.PF_INET, Unix.ADDR_INET (inet, port))
  | Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)

(* Sleep in small slices so [stop] never waits out a full backoff. *)
let nap t seconds =
  let left = ref seconds in
  while !left > 0. && not t.stopping do
    Thread.delay (min 0.05 !left);
    left := !left -. 0.05
  done

(* The follower's replication client: dial the leader, subscribe,
   feed frames into the admission queue, reconnect with capped
   exponential backoff on any failure.  Runs until the server stops
   or this node is promoted. *)
let repl_loop t cfg =
  let backoff = ref 0.05 in
  let had_conn = ref false in
  let running () =
    Mutex.lock t.mu;
    let r = (not t.stopping) && t.role = Follower in
    Mutex.unlock t.mu;
    r
  in
  while running () do
    let fd =
      match
        let domain, sockaddr = sockaddr_of_address cfg.leader in
        let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
        (try Unix.connect fd sockaddr
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        Protocol.write_all fd Protocol.follower_hello;
        match Protocol.read_exactly fd P.Wire.header_len with
        | Some hello when Protocol.check_server_hello hello = Ok () -> fd
        | _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          failwith "bad hello"
      with
      | fd -> Some fd
      | exception (Unix.Unix_error _ | Failure _ | Not_found) -> None
    in
    match fd with
    | None ->
      nap t !backoff;
      backoff := min 2.0 (!backoff *. 2.)
    | Some fd ->
      let conn = { rfd = fd; alive = true } in
      Mutex.lock t.mu;
      let go = (not t.stopping) && t.role = Follower in
      if go then t.repl_conn <- Some conn;
      let epoch = t.repl_epoch in
      let last_seq = if t.force_snapshot then -1 else t.rep_seq in
      Mutex.unlock t.mu;
      if not go then ( try Unix.close fd with Unix.Unix_error _ -> ())
      else begin
        let subscribed =
          match
            let b = Buffer.create 32 in
            P.Repl.encode_to_leader b (P.Repl.Subscribe { epoch; last_seq });
            Protocol.send_frame fd (Buffer.contents b)
          with
          | () -> true
          | exception (Unix.Unix_error _ | Sys_error _) -> false
        in
        if subscribed then begin
          if !had_conn then inc t (fun i -> i.r_reconnects);
          had_conn := true;
          backoff := 0.05;
          let run = ref true in
          while !run do
            match Protocol.recv_frame fd with
            | exception Unix.Unix_error _ -> run := false
            | Protocol.Eof | Protocol.Bad _ -> run := false
            | Protocol.Frame payload -> (
              match P.Repl.to_follower_of_string payload with
              | Ok (P.Repl.Goodbye _) -> run := false
              | Ok msg -> push t (Repl_msg { conn; msg })
              | Error _ -> run := false)
          done
        end;
        Mutex.lock t.mu;
        conn.alive <- false;
        (match t.repl_conn with
        | Some c when c == conn -> t.repl_conn <- None
        | _ -> ());
        Mutex.unlock t.mu;
        (try Unix.close fd with Unix.Unix_error _ -> ());
        nap t !backoff
      end
  done

(* ----- admission loop -------------------------------------------------- *)

let send_response t client resp =
  let b = Buffer.create 64 in
  P.Resp.encode b resp;
  match Protocol.send_frame client.fd (Buffer.contents b) with
  | () -> (match t.ins with Some i -> Tel.Metrics.inc i.responses | None -> ())
  | exception (Unix.Unix_error _ | Sys_error _) ->
    (* the client is gone; its reader thread will deliver the [Gone] *)
    ()

(* How far behind the slowest consumer is: on a follower the gap to
   the leader's newest shown seq, on a leader the deepest replica
   outbox.  Admission-thread callers already own the interesting
   fields; the replica scan still takes the mutex. *)
let current_lag t =
  match t.role with
  | Follower -> max 0 (t.leader_seq - t.rep_seq)
  | Leader ->
    Mutex.lock t.mu;
    let lag =
      List.fold_left (fun acc f -> max acc (Queue.length f.outbox)) 0 t.replicas
    in
    Mutex.unlock t.mu;
    lag

(* Get_stats runs on the admission thread.  Role, epoch, applied seq
   and lag ride alongside the metrics so a poller (wdmnet top, the CI
   smoke) can assert convergence without a digest round-trip; a
   follower reports the leader generation it synced to. *)
let stats_renderer t () =
  let base =
    match t.ins with
    | None -> []
    | Some i -> (
      (* under the server mutex: reader threads may be registering
         per-client counters in the same registry concurrently *)
      Mutex.lock t.mu;
      let snap = Tel.Sink.snapshot i.sink in
      Mutex.unlock t.mu;
      match Tel.Metrics.to_json snap with
      | Tel.Json.Obj kvs -> kvs
      | j -> [ ("metrics", j) ])
  in
  let role, epoch =
    match t.role with
    | Leader -> ("leader", t.epoch)
    | Follower -> ("follower", t.repl_epoch)
  in
  Tel.Json.to_string
    (Tel.Json.Obj
       ([
          ("role", Tel.Json.String role);
          ("epoch", Tel.Json.Int epoch);
          ("applied", Tel.Json.Int t.rep_seq);
          ("lag", Tel.Json.Int (current_lag t));
        ]
       @ base))

(* ----- span recording (admission thread) ------------------------------- *)

let slow_line sr =
  Tel.Json.to_string
    (Tel.Json.Obj
       ([ ("ts", Tel.Json.Float sr.sr_start) ]
       @ (match sr.sr_span with
         | Some s -> [ ("span", Tel.Json.Int s) ]
         | None -> [])
       @ [
           ("client", Tel.Json.Int sr.sr_cid);
           ("total_ms", Tel.Json.Float (sr.sr_total *. 1000.));
           ( "stages_ms",
             Tel.Json.Obj
               (List.map
                  (fun (k, v) -> (k, Tel.Json.Float (v *. 1000.)))
                  sr.sr_stages) );
         ]))

(* Ring-buffer the record, mirror it to the trace sink as one Stage
   slice per stage, and append the slow-op JSONL line when the total
   crosses the threshold.  Only called when instruments exist — with
   telemetry off the request path never builds a record at all. *)
let record_span t i sr =
  List.iter
    (fun (name, d) ->
      let h =
        match name with
        | "decode" -> i.h_st_decode
        | "queue" -> i.h_st_queue
        | "execute" -> i.h_st_execute
        | "wal" -> i.h_st_wal
        | "replicate" -> i.h_st_replicate
        | _ -> i.h_st_respond
      in
      Tel.Histogram.observe h d)
    sr.sr_stages;
  Mutex.lock t.mu;
  Queue.add sr t.spans_ring;
  if Queue.length t.spans_ring > t.span_buffer then
    ignore (Queue.pop t.spans_ring);
  Mutex.unlock t.mu;
  (match i.sink.Tel.Sink.trace with
  | None -> ()
  | Some trace ->
    let span_detail =
      (match sr.sr_span with
      | Some s -> [ ("span", string_of_int s) ]
      | None -> [])
      @ [ ("client", string_of_int sr.sr_cid) ]
    in
    let ts = ref sr.sr_start in
    List.iter
      (fun (name, d) ->
        Tel.Trace.record trace ~ts:!ts ~dur:d
          ~detail:(("stage", name) :: span_detail)
          Tel.Trace.Stage;
        ts := !ts +. d)
      sr.sr_stages);
  match t.slow_ms with
  | Some threshold when sr.sr_total *. 1000. >= threshold -> (
    Tel.Metrics.inc i.slow_requests;
    match t.slow_out with
    | Some oc ->
      output_string oc (slow_line sr);
      output_char oc '\n';
      flush oc
    | None -> ())
  | _ -> ()

(* The op this request committed, if any — what the WAL records and
   the replication stream carries.  Ops that failed to execute are
   excluded: [Store.recover] treats a failing [Op.apply] as
   corruption, and replaying a refused Disconnect or an out-of-range
   fault fails again — one such client request would poison the WAL
   permanently.  (Refused Connect and Repair are still committed;
   replay tolerates those.)  A [Repair] record carries the outcome
   this server actually produced, keeping divergence detection
   honest. *)
let committed_op req resp =
  match (req : P.Resp.request) with
  | P.Resp.Get_digest | P.Resp.Get_stats | P.Resp.Promote -> None
  | P.Resp.Admit op -> (
    match (resp : P.Resp.t) with
    | P.Resp.Release_failed _ | P.Resp.Server_error _ -> None
    | P.Resp.Admitted _ -> (
      match op with
      | P.Op.Repair { connection; _ } ->
        Some (P.Op.Repair { connection; rehomed = true })
      | _ -> Some op)
    | _ -> (
      match op with
      | P.Op.Repair { connection; _ } ->
        Some (P.Op.Repair { connection; rehomed = false })
      | _ -> Some op))

(* Promotion, on the admission thread: cut the replication link, take
   a fresh epoch, start leading.  The store and network continue as
   they are — the newest boundary-consistent state this follower
   reached is exactly what it starts serving. *)
let do_promote t =
  if t.role = Leader then Error "already the leader"
  else begin
    Mutex.lock t.mu;
    t.role <- Leader;
    t.epoch <- fresh_epoch ();
    let conn = t.repl_conn in
    t.repl_conn <- None;
    Mutex.unlock t.mu;
    Option.iter shutdown_conn conn;
    Queue.clear t.ring;
    t.last_digest_seq <- t.rep_seq;
    (match t.follower_cfg with
    | Some { wal = Some wal; _ } -> P.Repl.remove_mark ~wal
    | _ -> ());
    Ok t.rep_seq
  end

let execute_request t req =
  match (req : P.Resp.request) with
  | P.Resp.Promote -> (
    match do_promote t with
    | Ok seq -> P.Resp.Promoted { seq }
    | Error e -> P.Resp.Server_error e)
  | P.Resp.Admit _ when t.role = Follower ->
    P.Resp.Not_leader { leader = leader_string t }
  | _ -> P.Resp.execute ~stats:(stats_renderer t) t.net req

let handle_request t client req ~enqueued ~span ~decode =
  match t.ins with
  | None ->
    (* untimed path: no clock reads, no record — behaviourally the
       pre-tracing server *)
    let resp = execute_request t req in
    (if t.role = Leader then
       match committed_op req resp with
       | None -> ()
       | Some op ->
         Option.iter (fun s -> P.Store.log s op) t.store;
         replicate t op);
    send_response t client resp;
    t.served_count <- t.served_count + 1
  | Some i ->
    let t_start = now t in
    let resp = execute_request t req in
    let t_exec = now t in
    let wal_dt, repl_dt =
      if t.role = Leader then (
        match committed_op req resp with
        | None -> (0., 0.)
        | Some op ->
          Option.iter (fun s -> P.Store.log s op) t.store;
          let t_wal = now t in
          replicate t op;
          (t_wal -. t_exec, now t -. t_wal))
      else (0., 0.)
    in
    let t_repl = now t in
    send_response t client resp;
    let t_done = now t in
    t.served_count <- t.served_count + 1;
    Tel.Histogram.observe i.h_latency (t_done -. enqueued);
    let start = enqueued -. decode in
    record_span t i
      {
        sr_span = span;
        sr_cid = client.cid;
        sr_start = start;
        sr_total = t_done -. start;
        sr_stages =
          [
            ("decode", decode);
            ("queue", max 0. (t_start -. enqueued));
            ("execute", t_exec -. t_start);
            ("wal", wal_dt);
            ("replicate", repl_dt);
            ("respond", t_done -. t_repl);
          ];
      }

let admit_loop t =
  let continue = ref true in
  while !continue do
    match drain_batch t with
    | None -> continue := false
    | Some batch ->
      (match t.ins with
      | Some i ->
        Tel.Metrics.inc i.batches;
        Tel.Histogram.observe i.h_batch_size (float_of_int (List.length batch))
      | None -> ());
      List.iter
        (fun item ->
          match item with
          | Gone client -> close_client t client
          | Malformed { client; reason } ->
            (match t.ins with
            | Some i -> Tel.Metrics.inc i.malformed
            | None -> ());
            send_response t client (P.Resp.Server_error reason);
            close_client t client
          | Request { client; req; enqueued; span; decode } ->
            handle_request t client req ~enqueued ~span ~decode
          | Attach { client; epoch; last_seq } ->
            handle_attach t client ~epoch ~last_seq
          | Repl_msg { conn; msg } -> handle_repl t conn msg
          | Do_promote w ->
            let result = do_promote t in
            Mutex.lock t.mu;
            w.result <- Some result;
            Condition.broadcast w.pcond;
            Mutex.unlock t.mu)
        batch
  done

(* ----- accept loop ----------------------------------------------------- *)

type hello = Hello_client | Hello_follower

let handshake fd =
  match Protocol.read_exactly fd P.Wire.header_len with
  | None -> None
  | exception (Unix.Unix_error _ | Failure _) -> None
  | Some hello ->
    let kind =
      if Protocol.check_client_hello hello = Ok () then Some Hello_client
      else if Protocol.check_follower_hello hello = Ok () then
        Some Hello_follower
      else None
    in
    (match kind with
    | None -> None
    | Some k -> (
      (* always advertise the span capability; a pre-flags client reads
         the flag byte as the reserved padding it has always ignored *)
      match Protocol.write_all fd Protocol.server_hello_spans with
      | () -> Some (k, Protocol.hello_has_spans hello)
      | exception Unix.Unix_error _ -> None))

(* The hello exchange happens on the per-client thread: a peer that
   connects and then sends nothing must never stall the accept loop
   (or [stop], which joins it).  The client is registered before the
   handshake so [stop] can shut its fd down and unblock a read in
   flight; the telemetry that counts it as a real client is deferred
   until the handshake succeeds. *)
let client_loop t client =
  match handshake client.fd with
  | None -> close_client t client
  | Some (Hello_follower, _) -> (
    (match t.follower_sndbuf with
    | Some n -> (
      try Unix.setsockopt_int client.fd Unix.SO_SNDBUF n
      with Unix.Unix_error _ -> ())
    | None -> ());
    match Protocol.recv_frame client.fd with
    | exception Unix.Unix_error _ -> close_client t client
    | Protocol.Eof | Protocol.Bad _ -> close_client t client
    | Protocol.Frame payload -> (
      match P.Repl.to_leader_of_string payload with
      | Ok (P.Repl.Subscribe { epoch; last_seq }) ->
        push t (Attach { client; epoch; last_seq });
        replica_reader_loop t client
      | Ok (P.Repl.Ack _) | Error _ -> close_client t client))
  | Some (Hello_client, spans) ->
    client.spans <- spans;
    (match t.ins with
    | Some i ->
      Mutex.lock t.mu;
      if client.open_ then begin
        client.c_requests <-
          Some
            (Tel.Metrics.counter i.sink.Tel.Sink.metrics
               ~help:"Requests received from this client"
               (Printf.sprintf "server_client_requests_total{client=\"%d\"}"
                  client.cid));
        Tel.Metrics.inc i.clients_total
      end;
      Mutex.unlock t.mu
    | None -> ());
    reader_loop t client

(* EMFILE/ENFILE (fd exhaustion), ECONNABORTED (peer gave up while
   queued) and EINTR are conditions a server rides out, not reasons to
   die; anything else is still survived with the same short sleep so a
   persistent error cannot spin the loop hot. *)
let accept_transient = function
  | Unix.EMFILE | Unix.ENFILE | Unix.ECONNABORTED | Unix.EINTR -> true
  | _ -> false

let accept_loop t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error (err, _, _) ->
      if t.stopping then continue := false
      else begin
        (match t.ins with
        | Some i -> Tel.Metrics.inc i.accept_errors
        | None -> ());
        Thread.delay (if accept_transient err then 0.05 else 0.25)
      end
    | fd, _peer ->
      if t.stopping then begin
        (try Unix.close fd with Unix.Unix_error _ -> ());
        continue := false
      end
      else begin
        Mutex.lock t.mu;
        let cid = t.next_cid in
        t.next_cid <- cid + 1;
        let client =
          { cid; fd; open_ = true; spans = false; c_requests = None }
        in
        t.clients <- client :: t.clients;
        (match t.ins with
        | Some i ->
          Tel.Metrics.set i.g_clients_active
            (float_of_int (List.length t.clients))
        | None -> ());
        Mutex.unlock t.mu;
        ignore (Thread.create (fun () -> client_loop t client) ())
      end
  done

(* ----- observability plane (HTTP 1.0) ---------------------------------- *)

(* Leader: WAL recovery runs synchronously before [start] returns, so a
   leader that answers at all has recovered.  Follower: ready only once
   the replication link is live, it has synced to some leader
   generation, and the apply lag is within [ready_lag]; [promote] flips
   the role and with it the answer. *)
let ready t =
  match t.role with
  | Leader -> true
  | Follower ->
    Mutex.lock t.mu;
    let linked = t.repl_conn <> None && t.repl_epoch <> 0 in
    Mutex.unlock t.mu;
    linked && t.leader_seq - t.rep_seq <= t.ready_lag

(* The span ring rendered as a Chrome trace: each request is its
   contiguous stage slices, correlated by span id in [args]. *)
let spans_chrome t =
  Mutex.lock t.mu;
  let records = List.of_seq (Queue.to_seq t.spans_ring) in
  Mutex.unlock t.mu;
  let trace = Tel.Trace.create () in
  List.iter
    (fun sr ->
      let span_detail =
        (match sr.sr_span with
        | Some s -> [ ("span", string_of_int s) ]
        | None -> [])
        @ [ ("client", string_of_int sr.sr_cid) ]
      in
      let ts = ref sr.sr_start in
      List.iter
        (fun (name, d) ->
          Tel.Trace.record trace ~ts:!ts ~dur:d
            ~detail:(("stage", name) :: span_detail)
            Tel.Trace.Stage;
          ts := !ts +. d)
        sr.sr_stages)
    records;
  Tel.Trace.to_chrome trace

let http_route t path =
  match path with
  | "/healthz" -> ("200 OK", "text/plain; charset=utf-8", "ok\n")
  | "/readyz" ->
    let body =
      Printf.sprintf "role=%s applied=%d lag=%d\n"
        (match t.role with Leader -> "leader" | Follower -> "follower")
        t.rep_seq
        (max 0 (t.leader_seq - t.rep_seq))
    in
    if ready t then ("200 OK", "text/plain; charset=utf-8", "ready\n" ^ body)
    else
      ("503 Service Unavailable", "text/plain; charset=utf-8", "behind\n" ^ body)
  | "/metrics" ->
    let body =
      match t.ins with
      | None -> ""
      | Some i ->
        Mutex.lock t.mu;
        let snap = Tel.Sink.snapshot i.sink in
        Mutex.unlock t.mu;
        Tel.Metrics.to_prometheus snap
    in
    ("200 OK", "text/plain; version=0.0.4; charset=utf-8", body)
  | "/spans" -> ("200 OK", "application/json", spans_chrome t)
  | _ -> ("404 Not Found", "text/plain; charset=utf-8", "not found\n")

(* One connection: read the request head (we only need the request
   line), answer, close.  HTTP/1.0, Connection: close — a scraper per
   connection, no keep-alive state to manage. *)
let http_serve_conn t fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0
       with Unix.Unix_error _ -> ());
      let buf = Bytes.create 4096 in
      let got = ref 0 in
      let head_done () =
        let s = Bytes.sub_string buf 0 !got in
        let has sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        has "\r\n\r\n" || has "\n\n"
      in
      (try
         let eof = ref false in
         while (not !eof) && (not (head_done ())) && !got < Bytes.length buf do
           match Unix.read fd buf !got (Bytes.length buf - !got) with
           | 0 -> eof := true
           | n -> got := !got + n
         done
       with Unix.Unix_error _ -> ());
      let request = Bytes.sub_string buf 0 !got in
      let status, ctype, body =
        match String.split_on_char ' ' request with
        | "GET" :: path :: _ ->
          (* strip any query string: /readyz?verbose -> /readyz *)
          let path =
            match String.index_opt path '?' with
            | Some q -> String.sub path 0 q
            | None -> path
          in
          http_route t path
        | _ ->
          ( "400 Bad Request",
            "text/plain; charset=utf-8",
            "only GET is served here\n" )
      in
      let response =
        Printf.sprintf
          "HTTP/1.0 %s\r\n\
           Content-Type: %s\r\n\
           Content-Length: %d\r\n\
           Connection: close\r\n\
           \r\n\
           %s"
          status ctype (String.length body) body
      in
      try Protocol.write_all fd response with
      | Unix.Unix_error _ | Sys_error _ -> ())

let http_loop t lfd =
  let continue = ref true in
  while !continue do
    match Unix.accept lfd with
    | exception Unix.Unix_error (err, _, _) ->
      if t.stopping then continue := false
      else Thread.delay (if accept_transient err then 0.05 else 0.25)
    | fd, _peer ->
      if t.stopping then begin
        (try Unix.close fd with Unix.Unix_error _ -> ());
        continue := false
      end
      else ignore (Thread.create (fun () -> http_serve_conn t fd) ())
  done

(* ----- lifecycle ------------------------------------------------------- *)

let bind_listen addr =
  match addr with
  | Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 64;
    let bound =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (a, p) -> Tcp (Unix.string_of_inet_addr a, p)
      | Unix.ADDR_UNIX _ -> addr
    in
    (fd, bound)
  | Unix_socket path ->
    if Sys.file_exists path then Unix.unlink path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (fd, addr)

let start ?telemetry ?store ?(queue_capacity = 256) ?(batch_limit = 64)
    ?(digest_every = 64) ?(resume_window = 1024) ?(outbox_capacity = 1024)
    ?follower_sndbuf ?follower ?http ?(ready_lag = 64) ?slow_ms ?slow_log
    ?(span_buffer = 1024) ~net addr =
  if queue_capacity < 1 then
    invalid_arg "Server.start: queue_capacity must be >= 1";
  if batch_limit < 1 then invalid_arg "Server.start: batch_limit must be >= 1";
  if digest_every < 1 then invalid_arg "Server.start: digest_every must be >= 1";
  if resume_window < 1 then
    invalid_arg "Server.start: resume_window must be >= 1";
  if outbox_capacity < 1 then
    invalid_arg "Server.start: outbox_capacity must be >= 1";
  if follower <> None && store <> None then
    invalid_arg "Server.start: a follower manages its own store";
  if ready_lag < 0 then invalid_arg "Server.start: ready_lag must be >= 0";
  if span_buffer < 1 then invalid_arg "Server.start: span_buffer must be >= 1";
  (match slow_ms with
  | Some ms when ms < 0. -> invalid_arg "Server.start: slow_ms must be >= 0"
  | _ -> ());
  (* a peer that vanishes mid-response must surface as EPIPE on the
     write, not as a process-killing signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* A restarting follower with a WAL resumes from its own disk: the
     mark says where in the leader's stream its log began, the local
     recovery replays what it had applied, and the subscribe asks only
     for the remainder. *)
  let net, store, repl_epoch, rep_seq =
    match follower with
    | Some { wal = Some wal; _ } -> (
      match P.Repl.load_mark ~wal with
      | None -> (net, None, 0, -1)
      | Some { P.Repl.epoch; base_seq } -> (
        match P.Store.resume ?telemetry ~wal () with
        | Error _ -> (net, None, 0, -1)
        | Ok (store, recovery) ->
          ( recovery.P.Store.network,
            Some store,
            epoch,
            base_seq + P.Store.wal_records store )))
    | Some { wal = None; _ } -> (net, None, 0, -1)
    | None ->
      let base = match store with Some s -> P.Store.wal_records s | None -> 0 in
      (net, store, 0, base)
  in
  let listen_fd, bound = bind_listen addr in
  let http_fd, http_bound =
    match http with
    | None -> (None, None)
    | Some haddr ->
      let fd, hbound = bind_listen haddr in
      (Some fd, Some hbound)
  in
  let slow_out, slow_owned =
    match slow_ms with
    | None -> (None, false)
    | Some _ -> (
      match slow_log with
      | Some path -> (Some (open_out path), true)
      | None -> (Some stderr, false))
  in
  let t =
    {
      net;
      store;
      ins = Option.map register_instruments telemetry;
      tel = telemetry;
      listen_fd;
      bound;
      queue = Queue.create ();
      capacity = queue_capacity;
      batch_limit;
      mu = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      stopping = false;
      stopped = false;
      next_cid = 1;
      clients = [];
      served_count = 0;
      accept_thread = None;
      admit_thread = None;
      role = (match follower with Some _ -> Follower | None -> Leader);
      epoch = fresh_epoch ();
      rep_seq = max 0 rep_seq;
      ring = Queue.create ();
      resume_window;
      digest_every;
      outbox_capacity;
      follower_sndbuf;
      last_digest_seq = max 0 rep_seq;
      replicas = [];
      follower_cfg = follower;
      repl_epoch;
      repl_conn = None;
      force_snapshot = rep_seq < 0;
      repl_thread = None;
      leader_seq = max 0 rep_seq;
      span_buffer;
      spans_ring = Queue.create ();
      slow_ms;
      slow_out;
      slow_owned;
      ready_lag;
      http_fd;
      http_bound;
      http_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t.admit_thread <- Some (Thread.create (fun () -> admit_loop t) ());
  (match follower with
  | Some cfg -> t.repl_thread <- Some (Thread.create (fun () -> repl_loop t cfg) ())
  | None -> ());
  (match http_fd with
  | Some lfd -> t.http_thread <- Some (Thread.create (fun () -> http_loop t lfd) ())
  | None -> ());
  t

let address t = t.bound
let http_address t = t.http_bound
let role t = t.role
let applied t = t.rep_seq
let network t = t.net
let current_store t = t.store

let spans t =
  Mutex.lock t.mu;
  let records = List.of_seq (Queue.to_seq t.spans_ring) in
  Mutex.unlock t.mu;
  List.map
    (fun sr -> (sr.sr_span, sr.sr_cid, sr.sr_start, sr.sr_total, sr.sr_stages))
    records

let promote t =
  if t.stopped then Error "server is stopped"
  else begin
    let w = { result = None; pcond = Condition.create () } in
    push t (Do_promote w);
    Mutex.lock t.mu;
    while w.result = None do
      Condition.wait w.pcond t.mu
    done;
    Mutex.unlock t.mu;
    Option.get w.result
  end

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Mutex.lock t.mu;
    t.stopping <- true;
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full;
    Mutex.unlock t.mu;
    (* Closing the listener does NOT wake a thread already blocked in
       [accept] on Linux; dial a throwaway connection instead — the
       accept thread sees [stopping] on the next iteration and exits. *)
    (try
       let domain, sockaddr =
         match t.bound with
         | Tcp (host, port) ->
           (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
         | Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
       in
       let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
       Fun.protect
         ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
         (fun () -> Unix.connect fd sockaddr)
     with Unix.Unix_error _ | Failure _ -> ());
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.bound with
    | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ());
    (* the observability listener needs the same wake-by-dialing trick *)
    (match t.http_bound with
    | None -> ()
    | Some haddr ->
      (try
         let domain, sockaddr = sockaddr_of_address haddr in
         let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
         Fun.protect
           ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
           (fun () -> Unix.connect fd sockaddr)
       with Unix.Unix_error _ | Failure _ | Not_found -> ());
      Option.iter Thread.join t.http_thread;
      (match t.http_fd with
      | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
      (match haddr with
      | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
      | Tcp _ -> ()));
    (* The accept thread has exited, so the client list is final —
       capture it only now: a client whose registration was in flight
       when [stopping] was set is included and gets shut down too.
       SHUTDOWN_RECEIVE (not ALL): blocked readers wake on EOF and
       enqueue their final [Gone] (the capacity bound is waived while
       stopping), but the write sides stay open so every request
       already executed still gets its response — an answered request
       is one the client will not retry against the next leader. *)
    Mutex.lock t.mu;
    let live = t.clients in
    Mutex.unlock t.mu;
    List.iter
      (fun c ->
        try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      live;
    (* Unblock the replication client if this node follows a leader. *)
    Mutex.lock t.mu;
    let conn = t.repl_conn in
    Mutex.unlock t.mu;
    Option.iter shutdown_conn conn;
    Option.iter Thread.join t.admit_thread;
    Option.iter Thread.join t.repl_thread;
    (* The admission thread is done, so the outboxes are final: let
       each replica's sender drain what is queued (a live follower
       takes milliseconds; a stuck one is cut off after the grace
       period), then tear the connections down. *)
    Mutex.lock t.mu;
    let reps = t.replicas in
    let goodbye = frame_to_follower (P.Repl.Goodbye { reason = "shutdown" }) in
    List.iter
      (fun f ->
        if f.client.open_ then begin
          Queue.add goodbye f.outbox;
          f.closing <- true;
          Condition.broadcast f.fcond
        end)
      reps;
    Mutex.unlock t.mu;
    let deadline = 500 (* x 10ms = 5s *) in
    let rec wait_drained n =
      if n < deadline then begin
        Mutex.lock t.mu;
        let drained =
          List.for_all
            (fun f -> Queue.is_empty f.outbox || not f.client.open_)
            reps
        in
        Mutex.unlock t.mu;
        if not drained then begin
          Thread.delay 0.01;
          wait_drained (n + 1)
        end
      end
    in
    wait_drained 0;
    List.iter (fun f -> drop_replica t f) reps;
    List.iter (fun f -> Option.iter Thread.join f.sender) reps;
    List.iter (fun c -> close_client t c) live;
    match t.slow_out with
    | Some oc ->
      (try flush oc with Sys_error _ -> ());
      if t.slow_owned then ( try close_out oc with Sys_error _ -> ())
    | None -> ()
  end

let served t = t.served_count
