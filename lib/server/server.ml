module Network = Wdm_multistage.Network
module P = Wdm_persist
module Tel = Wdm_telemetry

type address = Tcp of string * int | Unix_socket of string

let pp_address ppf = function
  | Tcp (host, port) -> Format.fprintf ppf "tcp:%s:%d" host port
  | Unix_socket path -> Format.fprintf ppf "unix:%s" path

type client = {
  cid : int;
  fd : Unix.file_descr;
  mutable open_ : bool;  (** guarded by the server mutex *)
  mutable c_requests : Tel.Metrics.counter option;
      (** registered after the handshake, guarded by the server mutex *)
}

type item =
  | Request of { client : client; req : P.Resp.request; enqueued : float }
  | Malformed of { client : client; reason : string }
  | Gone of client

type instruments = {
  sink : Tel.Sink.t;
  requests : Tel.Metrics.counter;
  responses : Tel.Metrics.counter;
  malformed : Tel.Metrics.counter;
  clients_total : Tel.Metrics.counter;
  batches : Tel.Metrics.counter;
  g_clients_active : Tel.Metrics.gauge;
  g_queue_depth : Tel.Metrics.gauge;
  h_batch_size : Tel.Histogram.t;
  h_latency : Tel.Histogram.t;
}

type t = {
  net : Network.t;
  store : P.Store.t option;
  ins : instruments option;
  listen_fd : Unix.file_descr;
  mutable bound : address;
  queue : item Queue.t;
  capacity : int;
  batch_limit : int;
  mu : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable stopping : bool;
  mutable stopped : bool;
  mutable next_cid : int;
  mutable clients : client list;
  mutable served_count : int;
  mutable accept_thread : Thread.t option;
  mutable admit_thread : Thread.t option;
}

let register_instruments sink =
  let reg = sink.Tel.Sink.metrics in
  let c help name = Tel.Metrics.counter reg ~help name in
  {
    sink;
    requests = c "Requests admitted to the queue" "server_requests_total";
    responses = c "Responses written back" "server_responses_total";
    malformed = c "Undecodable frames received" "server_malformed_total";
    clients_total = c "Client connections accepted" "server_clients_total";
    batches = c "Admission-loop drains" "server_batches_total";
    g_clients_active =
      Tel.Metrics.gauge reg ~help:"Clients currently connected"
        "server_clients_active";
    g_queue_depth =
      Tel.Metrics.gauge reg ~help:"Requests waiting for admission"
        "server_queue_depth";
    h_batch_size =
      Tel.Metrics.histogram reg ~help:"Requests taken per drain"
        ~bounds:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. |]
        "server_batch_size";
    h_latency =
      Tel.Metrics.histogram reg
        ~help:"Enqueue-to-response-written latency of one request"
        "server_request_latency_seconds";
  }

let now t = match t.ins with Some i -> Tel.Sink.now i.sink | None -> 0.

(* ----- bounded queue --------------------------------------------------- *)

let set_depth t =
  match t.ins with
  | Some i -> Tel.Metrics.set i.g_queue_depth (float_of_int (Queue.length t.queue))
  | None -> ()

(* Reader-thread side.  Blocking here when the queue is full is the
   backpressure mechanism: the reader stops pulling bytes off its
   socket, the kernel's receive window fills, and the client's sends
   stall.  During shutdown the capacity check is waived so readers can
   always deposit their final [Gone] and exit. *)
let push t item =
  Mutex.lock t.mu;
  while Queue.length t.queue >= t.capacity && not t.stopping do
    Condition.wait t.not_full t.mu
  done;
  Queue.add item t.queue;
  set_depth t;
  Condition.signal t.not_empty;
  Mutex.unlock t.mu

(* Admission side: take up to [batch_limit] items in one lock hold. *)
let drain_batch t =
  Mutex.lock t.mu;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.not_empty t.mu
  done;
  let batch = ref [] in
  let n = ref 0 in
  while !n < t.batch_limit && not (Queue.is_empty t.queue) do
    batch := Queue.pop t.queue :: !batch;
    incr n
  done;
  set_depth t;
  Condition.broadcast t.not_full;
  let finished = t.stopping && Queue.is_empty t.queue && !batch = [] in
  Mutex.unlock t.mu;
  if finished then None else Some (List.rev !batch)

(* ----- per-client plumbing --------------------------------------------- *)

let close_client t client =
  Mutex.lock t.mu;
  let was_open = client.open_ in
  if was_open then begin
    client.open_ <- false;
    t.clients <- List.filter (fun c -> c.cid <> client.cid) t.clients;
    (match t.ins with
    | Some i ->
      Tel.Metrics.set i.g_clients_active (float_of_int (List.length t.clients))
    | None -> ())
  end;
  Mutex.unlock t.mu;
  if was_open then try Unix.close client.fd with Unix.Unix_error _ -> ()

let reader_loop t client =
  let stop_reading = ref false in
  while not !stop_reading do
    match Protocol.recv_frame client.fd with
    | exception Unix.Unix_error _ ->
      push t (Gone client);
      stop_reading := true
    | Protocol.Eof ->
      push t (Gone client);
      stop_reading := true
    | Protocol.Bad reason ->
      push t (Malformed { client; reason });
      stop_reading := true
    | Protocol.Frame payload -> (
      let r = P.Wire.reader payload in
      match
        let req = P.Resp.decode_request r in
        P.Wire.expect_end r;
        req
      with
      | req ->
        Option.iter (fun c -> Tel.Metrics.inc c) client.c_requests;
        (match t.ins with Some i -> Tel.Metrics.inc i.requests | None -> ());
        push t (Request { client; req; enqueued = now t })
      | exception P.Wire.Decode_error { offset; reason } ->
        push t
          (Malformed
             {
               client;
               reason = Printf.sprintf "%s at payload offset %d" reason offset;
             });
        stop_reading := true)
  done

(* ----- admission loop -------------------------------------------------- *)

let send_response t client resp =
  let b = Buffer.create 64 in
  P.Resp.encode b resp;
  match Protocol.send_frame client.fd (Buffer.contents b) with
  | () -> (match t.ins with Some i -> Tel.Metrics.inc i.responses | None -> ())
  | exception (Unix.Unix_error _ | Sys_error _) ->
    (* the client is gone; its reader thread will deliver the [Gone] *)
    ()

let stats_renderer t () =
  match t.ins with
  | None -> "{}"
  | Some i ->
    (* under the server mutex: reader threads may be registering
       per-client counters in the same registry concurrently *)
    Mutex.lock t.mu;
    let snap = Tel.Sink.snapshot i.sink in
    Mutex.unlock t.mu;
    Tel.Json.to_string (Tel.Metrics.to_json snap)

(* Log after execution so a [Repair] record carries the outcome this
   server actually produced, keeping WAL divergence detection honest.
   Ops that failed to execute are not logged at all: [Store.recover]
   treats a failing [Op.apply] as corruption, and replaying a refused
   Disconnect or an out-of-range fault index fails again — one such
   client request would poison the WAL permanently.  (Refused Connect
   and Repair are still recorded; replay tolerates those.) *)
let log_op t req resp =
  match (t.store, req) with
  | None, _ | _, (P.Resp.Get_digest | P.Resp.Get_stats) -> ()
  | Some _, P.Resp.Admit _
    when match resp with
         | P.Resp.Release_failed _ | P.Resp.Server_error _ -> true
         | _ -> false -> ()
  | Some store, P.Resp.Admit op ->
    let op =
      match (op, resp) with
      | P.Op.Repair { connection; _ }, P.Resp.Admitted _ ->
        P.Op.Repair { connection; rehomed = true }
      | P.Op.Repair { connection; _ }, _ ->
        P.Op.Repair { connection; rehomed = false }
      | _ -> op
    in
    P.Store.log store op

let admit_loop t =
  let continue = ref true in
  while !continue do
    match drain_batch t with
    | None -> continue := false
    | Some batch ->
      (match t.ins with
      | Some i ->
        Tel.Metrics.inc i.batches;
        Tel.Histogram.observe i.h_batch_size (float_of_int (List.length batch))
      | None -> ());
      List.iter
        (fun item ->
          match item with
          | Gone client -> close_client t client
          | Malformed { client; reason } ->
            (match t.ins with
            | Some i -> Tel.Metrics.inc i.malformed
            | None -> ());
            send_response t client (P.Resp.Server_error reason);
            close_client t client
          | Request { client; req; enqueued } ->
            let resp = P.Resp.execute ~stats:(stats_renderer t) t.net req in
            log_op t req resp;
            send_response t client resp;
            t.served_count <- t.served_count + 1;
            (match t.ins with
            | Some i -> Tel.Histogram.observe i.h_latency (now t -. enqueued)
            | None -> ()))
        batch
  done

(* ----- accept loop ----------------------------------------------------- *)

let handshake fd =
  match Protocol.read_exactly fd P.Wire.header_len with
  | None -> false
  | exception (Unix.Unix_error _ | Failure _) -> false
  | Some hello -> (
    match Protocol.check_client_hello hello with
    | Error _ -> false
    | Ok () -> (
      match Protocol.write_all fd Protocol.server_hello with
      | () -> true
      | exception Unix.Unix_error _ -> false))

(* The hello exchange happens on the per-client thread: a peer that
   connects and then sends nothing must never stall the accept loop
   (or [stop], which joins it).  The client is registered before the
   handshake so [stop] can shut its fd down and unblock a read in
   flight; the telemetry that counts it as a real client is deferred
   until the handshake succeeds. *)
let client_loop t client =
  if not (handshake client.fd) then close_client t client
  else begin
    (match t.ins with
    | Some i ->
      Mutex.lock t.mu;
      if client.open_ then begin
        client.c_requests <-
          Some
            (Tel.Metrics.counter i.sink.Tel.Sink.metrics
               ~help:"Requests received from this client"
               (Printf.sprintf "server_client_requests_total{client=\"%d\"}"
                  client.cid));
        Tel.Metrics.inc i.clients_total
      end;
      Mutex.unlock t.mu
    | None -> ());
    reader_loop t client
  end

let accept_loop t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error _ -> if t.stopping then continue := false
    | fd, _peer ->
      if t.stopping then begin
        (try Unix.close fd with Unix.Unix_error _ -> ());
        continue := false
      end
      else begin
        Mutex.lock t.mu;
        let cid = t.next_cid in
        t.next_cid <- cid + 1;
        let client = { cid; fd; open_ = true; c_requests = None } in
        t.clients <- client :: t.clients;
        (match t.ins with
        | Some i ->
          Tel.Metrics.set i.g_clients_active
            (float_of_int (List.length t.clients))
        | None -> ());
        Mutex.unlock t.mu;
        ignore (Thread.create (fun () -> client_loop t client) ())
      end
  done

(* ----- lifecycle ------------------------------------------------------- *)

let bind_listen addr =
  match addr with
  | Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 64;
    let bound =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (a, p) -> Tcp (Unix.string_of_inet_addr a, p)
      | Unix.ADDR_UNIX _ -> addr
    in
    (fd, bound)
  | Unix_socket path ->
    if Sys.file_exists path then Unix.unlink path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (fd, addr)

let start ?telemetry ?store ?(queue_capacity = 256) ?(batch_limit = 64) ~net
    addr =
  if queue_capacity < 1 then
    invalid_arg "Server.start: queue_capacity must be >= 1";
  if batch_limit < 1 then invalid_arg "Server.start: batch_limit must be >= 1";
  (* a peer that vanishes mid-response must surface as EPIPE on the
     write, not as a process-killing signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd, bound = bind_listen addr in
  let t =
    {
      net;
      store;
      ins = Option.map register_instruments telemetry;
      listen_fd;
      bound;
      queue = Queue.create ();
      capacity = queue_capacity;
      batch_limit;
      mu = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      stopping = false;
      stopped = false;
      next_cid = 1;
      clients = [];
      served_count = 0;
      accept_thread = None;
      admit_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t.admit_thread <- Some (Thread.create (fun () -> admit_loop t) ());
  t

let address t = t.bound

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Mutex.lock t.mu;
    t.stopping <- true;
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full;
    Mutex.unlock t.mu;
    (* Closing the listener does NOT wake a thread already blocked in
       [accept] on Linux; dial a throwaway connection instead — the
       accept thread sees [stopping] on the next iteration and exits. *)
    (try
       let domain, sockaddr =
         match t.bound with
         | Tcp (host, port) ->
           (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
         | Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
       in
       let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
       Fun.protect
         ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
         (fun () -> Unix.connect fd sockaddr)
     with Unix.Unix_error _ | Failure _ -> ());
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.bound with
    | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ());
    (* The accept thread has exited, so the client list is final —
       capture it only now: a client whose registration was in flight
       when [stopping] was set is included and gets shut down too.
       Shutting the sockets down wakes blocked readers (including any
       still in the handshake); they enqueue their final [Gone] items
       (the capacity bound is waived while stopping) and exit, and the
       admission thread drains the rest. *)
    Mutex.lock t.mu;
    let live = t.clients in
    Mutex.unlock t.mu;
    List.iter
      (fun c ->
        try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      live;
    Option.iter Thread.join t.admit_thread;
    List.iter (fun c -> close_client t c) live
  end

let served t = t.served_count
