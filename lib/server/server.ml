module Network = Wdm_multistage.Network
module P = Wdm_persist
module Tel = Wdm_telemetry

type address = Tcp of string * int | Unix_socket of string

let pp_address ppf = function
  | Tcp (host, port) -> Format.fprintf ppf "tcp:%s:%d" host port
  | Unix_socket path -> Format.fprintf ppf "unix:%s" path

type role = Leader | Follower

type follower_config = { leader : address; wal : string option }

(* What the event loop believes a connection is.  Every accepted fd
   starts as [Chello]; the 8-byte hello routes it to the framed
   request stream, the observability plane, or out of the loop
   entirely (followers get a dedicated thread, as before). *)
type ckind =
  | Chello  (** awaiting the 8-byte hello *)
  | Creq  (** framed request stream *)
  | Chttp  (** observability scraper (/metrics, /healthz, ...) *)
  | Cdetached  (** handed to a replica thread; the loop forgot it *)

type client = {
  cid : int;
  fd : Unix.file_descr;
  mutable open_ : bool;  (** guarded by the server mutex *)
  mutable spans : bool;
      (** the hello negotiated the span extension; written once by the
          loop thread before any frame is read *)
  mutable c_requests : Tel.Metrics.counter option;
      (** registered after the handshake, guarded by the server mutex *)
  (* --- event-loop connection state.  [kind], [fb], [rd_eof] and
     [deadline] belong to the loop thread alone; the output queue
     ([out_off] loop-only, [out_q]/[out_bytes] shared with the
     admission thread) and the [want_close]/[kill]/[in_dirty]
     flags are guarded by the server mutex. *)
  mutable kind : ckind;
  fb : Framebuf.t;  (** incremental receive buffer *)
  out_q : string Queue.t;
      (** pending response frames, oldest first; the loop gathers a
          batch of them into one writev(2) instead of copying them
          through a coalescing buffer *)
  mutable out_off : int;  (** bytes of the front frame already written *)
  mutable out_bytes : int;  (** unwritten output across all queued frames *)
  mutable want_close : bool;  (** close once the output drains *)
  mutable kill : bool;  (** close now, dropping pending output *)
  mutable rd_eof : bool;  (** loop: stop reading this connection *)
  mutable in_dirty : bool;  (** already queued on [t.dirty] *)
  mutable deadline : float;  (** HTTP head timeout (absolute); 0 = none *)
}

(* An output queue larger than this means the peer is not reading its
   responses (or asked for more than it can swallow): cut it loose
   rather than buffer without bound.  Twice the largest legal frame,
   so one maximal response always fits. *)
let out_limit = 2 * P.Wire.max_payload

(* A leader-side replica connection.  The admission thread pushes
   pre-framed bytes into [outbox]; one sender thread per replica drains
   it, so a slow replica can never stall admission — when the outbox
   overflows the replica is evicted instead.  [client.open_] is the
   single close-once guard, exactly as for ordinary clients. *)
type replica = {
  client : client;
  outbox : string Queue.t;  (** guarded by the server mutex *)
  fcond : Condition.t;  (** signalled on push / close, waits on the mutex *)
  mutable closing : bool;  (** drain what is queued, then exit *)
  mutable outbox_bytes : int;
  mutable acked_seq : int;
  mutable pending_digests : (int * int) list;  (** (seq, digest) awaiting ack *)
  mutable sender : Thread.t option;
}

(* The follower side's link to its leader.  [alive] lets the admission
   thread tell frames of the current connection from stragglers of a
   dead one, and guards ack writes against a closed fd. *)
type repl_conn = { rfd : Unix.file_descr; mutable alive : bool }

type promote_waiter = {
  mutable result : (int, string) result option;
  pcond : Condition.t;
}

type item =
  | Request of {
      client : client;
      req : P.Resp.request;
      enqueued : float;
      span : int option;  (** client-minted id from the trailing extension *)
      decode : float;  (** reader-thread decode time, observed at admission *)
    }
  | Malformed of { client : client; reason : string }
  | Gone of client
  | Attach of { client : client; epoch : int; last_seq : int }
  | Repl_msg of { conn : repl_conn; msg : P.Repl.to_follower }
  | Do_promote of promote_waiter

type instruments = {
  sink : Tel.Sink.t;
  requests : Tel.Metrics.counter;
  responses : Tel.Metrics.counter;
  malformed : Tel.Metrics.counter;
  clients_total : Tel.Metrics.counter;
  batches : Tel.Metrics.counter;
  accept_errors : Tel.Metrics.counter;
  g_clients_active : Tel.Metrics.gauge;
  g_queue_depth : Tel.Metrics.gauge;
  h_batch_size : Tel.Histogram.t;
  h_latency : Tel.Histogram.t;
  (* per-request stage breakdown (tentpole: where a request's time goes) *)
  h_st_decode : Tel.Histogram.t;
  h_st_queue : Tel.Histogram.t;
  h_st_execute : Tel.Histogram.t;
  h_st_wal : Tel.Histogram.t;
  h_st_replicate : Tel.Histogram.t;
  h_st_respond : Tel.Histogram.t;
  slow_requests : Tel.Metrics.counter;
  (* replication, leader side *)
  r_snapshots_sent : Tel.Metrics.counter;
  r_resumes : Tel.Metrics.counter;
  r_ops_sent : Tel.Metrics.counter;
  r_bytes_sent : Tel.Metrics.counter;
  r_evictions : Tel.Metrics.counter;
  r_digest_checks : Tel.Metrics.counter;
  r_digest_failures : Tel.Metrics.counter;
  g_followers : Tel.Metrics.gauge;
  g_lag_ops : Tel.Metrics.gauge;
  g_lag_bytes : Tel.Metrics.gauge;
  (* replication, follower side *)
  r_applied : Tel.Metrics.counter;
  r_snapshots_recv : Tel.Metrics.counter;
  r_reconnects : Tel.Metrics.counter;
  r_digest_mismatch : Tel.Metrics.counter;
  g_follower_lag : Tel.Metrics.gauge;
}

(* One served request's timing record: what the span ring holds, what
   the slow-op log and the Chrome export render.  [sr_start] is the
   sink-clock instant the reader began decoding the frame; stages are
   contiguous slices in emission order. *)
type span_record = {
  sr_span : int option;
  sr_cid : int;
  sr_start : float;
  sr_total : float;
  sr_stages : (string * float) list;
}

type t = {
  mutable backend : P.Backend.t;
      (** the replicated state machine — multistage fabric or mesh;
          replaced when a follower installs a leader snapshot; only
          the admission thread writes it *)
  mutable store : P.Store.t option;
      (** replaced alongside [backend] in follower mode *)
  ins : instruments option;
  tel : Tel.Sink.t option;
  listen_fd : Unix.file_descr;
  mutable bound : address;
  queue : item Queue.t;
  capacity : int;
  batch_limit : int;
  mu : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable stopping : bool;
  mutable stopped : bool;
  mutable next_cid : int;
  mutable clients : client list;
  mutable served_count : int;
  mutable loop_thread : Thread.t option;
  mutable admit_thread : Thread.t option;
  (* event loop *)
  ev : Evloop.t;
  wake_r : Unix.file_descr;  (** loop side of the wake pipe *)
  wake_w : Unix.file_descr;  (** any thread pokes this to wake the loop *)
  mutable dirty : client list;
      (** connections with fresh output / close flags awaiting the
          loop's attention; guarded by the server mutex *)
  mutable read_paused : bool;
      (** loop-written under the mutex: the admission queue is at
          capacity and the loop is waiting on the wake pipe only *)
  mutable loop_finish : bool;
      (** stop(): flush remaining output, close everything, exit *)
  mutable finish_deadline : float;
  max_conns : int option;
  conn_sndbuf : int option;
  (* replication *)
  mutable role : role;
  mutable epoch : int;  (** this leader generation's id *)
  mutable rep_seq : int;  (** committed ops so far (WAL record stream) *)
  ring : (int * P.Op.t) Queue.t;  (** recent (seq, op) for replica resume *)
  resume_window : int;
  digest_every : int;
  outbox_capacity : int;
  follower_sndbuf : int option;
  mutable last_digest_seq : int;
  mutable replicas : replica list;  (** guarded by the server mutex *)
  (* follower role *)
  follower_cfg : follower_config option;
  mutable repl_epoch : int;  (** leader generation we last synced to; 0 none *)
  mutable repl_conn : repl_conn option;  (** guarded by the server mutex *)
  mutable force_snapshot : bool;  (** next subscribe must ask for a snapshot *)
  mutable repl_thread : Thread.t option;
  mutable leader_seq : int;
      (** follower: highest seq the leader has shown us (op or digest);
          [leader_seq - rep_seq] is the apply lag *)
  (* observability plane *)
  span_buffer : int;
  spans_ring : span_record Queue.t;  (** guarded by the server mutex *)
  slow_ms : float option;
  slow_out : out_channel option;  (** admission thread only *)
  slow_owned : bool;  (** [stop] closes [slow_out] only if we opened it *)
  ready_lag : int;
  mutable http_fd : Unix.file_descr option;
  mutable http_bound : address option;
}

let register_instruments sink =
  let reg = sink.Tel.Sink.metrics in
  let c help name = Tel.Metrics.counter reg ~help name in
  let g help name = Tel.Metrics.gauge reg ~help name in
  {
    sink;
    requests = c "Requests admitted to the queue" "server_requests_total";
    responses = c "Responses written back" "server_responses_total";
    malformed = c "Undecodable frames received" "server_malformed_total";
    clients_total = c "Client connections accepted" "server_clients_total";
    batches = c "Admission-loop drains" "server_batches_total";
    accept_errors =
      c "Transient accept(2) failures survived and connections rejected \
         by the --max-conns gate"
        "server_accept_errors_total";
    g_clients_active = g "Clients currently connected" "server_clients_active";
    g_queue_depth = g "Requests waiting for admission" "server_queue_depth";
    h_batch_size =
      Tel.Metrics.histogram reg ~help:"Requests taken per drain"
        ~bounds:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. |]
        "server_batch_size";
    h_latency =
      Tel.Metrics.histogram reg
        ~help:"Enqueue-to-response-written latency of one request"
        "server_request_latency_seconds";
    h_st_decode =
      Tel.Metrics.histogram reg ~help:"Reader-thread frame decode time"
        "server_stage_decode_seconds";
    h_st_queue =
      Tel.Metrics.histogram reg ~help:"Admission-queue wait"
        "server_stage_queue_seconds";
    h_st_execute =
      Tel.Metrics.histogram reg ~help:"Network execute time"
        "server_stage_execute_seconds";
    h_st_wal =
      Tel.Metrics.histogram reg ~help:"WAL append (incl. fsync policy) time"
        "server_stage_wal_seconds";
    h_st_replicate =
      Tel.Metrics.histogram reg
        ~help:"Replication ship time (outbox enqueue across followers)"
        "server_stage_replicate_seconds";
    h_st_respond =
      Tel.Metrics.histogram reg ~help:"Response frame write time"
        "server_stage_respond_seconds";
    slow_requests =
      c "Requests whose total latency crossed the --slow-ms threshold"
        "server_slow_requests_total";
    r_snapshots_sent =
      c "Full state snapshots sent to attaching followers"
        "repl_snapshots_sent_total";
    r_resumes = c "Follower attaches resumed from the ring" "repl_resumes_total";
    r_ops_sent = c "Replicated ops queued to followers" "repl_ops_sent_total";
    r_bytes_sent =
      c "Replication bytes queued to followers (incl. framing)"
        "repl_bytes_sent_total";
    r_evictions =
      c "Followers dropped for falling too far behind" "repl_evictions_total";
    r_digest_checks =
      c "Follower digest acknowledgements verified" "repl_digest_checks_total";
    r_digest_failures =
      c "Follower digest acknowledgements that disagreed"
        "repl_digest_failures_total";
    g_followers = g "Followers currently attached" "repl_followers";
    g_lag_ops = g "Largest follower outbox backlog, in ops" "repl_lag_ops";
    g_lag_bytes = g "Largest follower outbox backlog, in bytes" "repl_lag_bytes";
    r_applied = c "Replicated ops applied locally" "repl_applied_total";
    r_snapshots_recv =
      c "Leader snapshots installed" "repl_snapshots_received_total";
    r_reconnects =
      c "Replication links re-established after a drop" "repl_reconnects_total";
    r_digest_mismatch =
      c "Leader digests that disagreed with local state"
        "repl_digest_mismatch_total";
    g_follower_lag =
      g "Ops the leader has shown that this follower has not yet applied"
        "repl_follower_lag_ops";
  }

let now t = match t.ins with Some i -> Tel.Sink.now i.sink | None -> 0.
let inc t f = match t.ins with Some i -> Tel.Metrics.inc (f i) | None -> ()

(* Distinct across leader generations on one machine — what guards a
   follower's resume against replaying into a diverged successor. *)
let fresh_epoch () =
  let usec = int_of_float (Unix.gettimeofday () *. 1e6) in
  max 1 ((usec lxor (Unix.getpid () lsl 44)) land ((1 lsl 54) - 1))

let leader_string t =
  match t.follower_cfg with
  | Some { leader; _ } -> Format.asprintf "%a" pp_address leader
  | None -> ""

(* ----- bounded queue --------------------------------------------------- *)

let set_depth t =
  match t.ins with
  | Some i -> Tel.Metrics.set i.g_queue_depth (float_of_int (Queue.length t.queue))
  | None -> ()

(* Poke the event loop's wake pipe.  Unconditional and non-blocking: a
   full pipe means the loop has wakeups queued already, which is all a
   wake can ask for. *)
let wake_byte = Bytes.of_string "!"

let wake t =
  try ignore (Unix.write t.wake_w wake_byte 0 1) with Unix.Unix_error _ -> ()

(* Replica/follower threads, which may legitimately block.  Blocking
   here when the queue is full is their backpressure.  During shutdown
   the capacity check is waived so they can always deposit their final
   [Gone] and exit. *)
let push t item =
  Mutex.lock t.mu;
  while Queue.length t.queue >= t.capacity && not t.stopping do
    Condition.wait t.not_full t.mu
  done;
  Queue.add item t.queue;
  set_depth t;
  Condition.signal t.not_empty;
  Mutex.unlock t.mu

(* Event-loop side: the loop must never sleep on [not_full] (the
   admission thread wakes it through the pipe, not the condition), so
   it deposits unconditionally and instead stops reading sockets while
   the queue is over capacity — same backpressure, different valve. *)
let push_loop t item =
  Mutex.lock t.mu;
  Queue.add item t.queue;
  set_depth t;
  Condition.signal t.not_empty;
  Mutex.unlock t.mu

let queue_depth t =
  Mutex.lock t.mu;
  let n = Queue.length t.queue in
  Mutex.unlock t.mu;
  n

(* Admission side: take up to [batch_limit] items in one lock hold. *)
let drain_batch t =
  Mutex.lock t.mu;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.not_empty t.mu
  done;
  let batch = ref [] in
  let n = ref 0 in
  while !n < t.batch_limit && not (Queue.is_empty t.queue) do
    batch := Queue.pop t.queue :: !batch;
    incr n
  done;
  set_depth t;
  Condition.broadcast t.not_full;
  let wake_loop = t.read_paused in
  let finished = t.stopping && Queue.is_empty t.queue && !batch = [] in
  Mutex.unlock t.mu;
  if wake_loop then wake t;
  if finished then None else Some (List.rev !batch)

(* ----- per-client plumbing --------------------------------------------- *)

let close_client t client =
  Mutex.lock t.mu;
  let was_open = client.open_ in
  if was_open then begin
    client.open_ <- false;
    t.clients <- List.filter (fun c -> c.cid <> client.cid) t.clients;
    (match t.ins with
    | Some i ->
      Tel.Metrics.set i.g_clients_active (float_of_int (List.length t.clients))
    | None -> ())
  end;
  Mutex.unlock t.mu;
  if was_open then try Unix.close client.fd with Unix.Unix_error _ -> ()

(* Append bytes to a connection's output queue (any thread) and flag
   it for the loop.  Returns whether the bytes were accepted — a
   closed or closing connection swallows them, exactly as the old
   direct write swallowed EPIPE. *)
let enqueue_out t c data =
  Mutex.lock t.mu;
  let accepted = c.open_ && (not c.want_close) && not c.kill in
  if accepted then begin
    if String.length data > 0 then Queue.add data c.out_q;
    c.out_bytes <- c.out_bytes + String.length data;
    if c.out_bytes > out_limit then c.kill <- true;
    if not c.in_dirty then begin
      c.in_dirty <- true;
      t.dirty <- c :: t.dirty
    end
  end;
  Mutex.unlock t.mu;
  if accepted then wake t;
  accepted

(* Ask the loop to close an event connection once its queued output has
   been written — the ordered replacement for closing the fd directly,
   which would race responses still in flight. *)
let mark_want_close t c =
  Mutex.lock t.mu;
  let flag = c.open_ && not c.want_close in
  if flag then begin
    c.want_close <- true;
    if not c.in_dirty then begin
      c.in_dirty <- true;
      t.dirty <- c :: t.dirty
    end
  end;
  Mutex.unlock t.mu;
  if flag then wake t

(* ----- leader-side replication ----------------------------------------- *)

let frame_to_follower msg =
  let b = Buffer.create 256 in
  P.Repl.encode_to_follower b msg;
  P.Wire.frame (Buffer.contents b)

let set_follower_gauges t =
  match t.ins with
  | None -> ()
  | Some i ->
    Tel.Metrics.set i.g_followers (float_of_int (List.length t.replicas));
    let lag_ops, lag_bytes =
      List.fold_left
        (fun (o, b) f -> (max o (Queue.length f.outbox), max b f.outbox_bytes))
        (0, 0) t.replicas
    in
    Tel.Metrics.set i.g_lag_ops (float_of_int lag_ops);
    Tel.Metrics.set i.g_lag_bytes (float_of_int lag_bytes)

(* Under the mutex: take the replica out of both registries and flag
   the fd closed-once.  Returns whether the caller must close it. *)
let unlink_replica t f =
  t.replicas <- List.filter (fun g -> g.client.cid <> f.client.cid) t.replicas;
  set_follower_gauges t;
  Condition.broadcast f.fcond;
  if f.client.open_ then begin
    f.client.open_ <- false;
    t.clients <- List.filter (fun c -> c.cid <> f.client.cid) t.clients;
    true
  end
  else false

let drop_replica t f =
  Mutex.lock t.mu;
  let close = unlink_replica t f in
  Mutex.unlock t.mu;
  if close then begin
    (try Unix.shutdown f.client.fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    try Unix.close f.client.fd with Unix.Unix_error _ -> ()
  end

(* One sender thread per replica: pop, write, repeat.  Exits when the
   outbox is empty and the replica is closing (graceful stop drained
   everything) or gone (evicted / connection lost). *)
let sender_loop t f =
  let run = ref true in
  while !run do
    Mutex.lock t.mu;
    while Queue.is_empty f.outbox && f.client.open_ && not f.closing do
      Condition.wait f.fcond t.mu
    done;
    if not (Queue.is_empty f.outbox) then begin
      let frame = Queue.pop f.outbox in
      f.outbox_bytes <- f.outbox_bytes - String.length frame;
      Mutex.unlock t.mu;
      match Protocol.write_all f.client.fd frame with
      | () -> ()
      | exception (Unix.Unix_error _ | Sys_error _) ->
        drop_replica t f;
        run := false
    end
    else begin
      Mutex.unlock t.mu;
      run := false (* empty and closing-or-closed *)
    end
  done

(* Admission-thread side: queue one frame to every live replica.  A
   full outbox evicts the replica — admission must never wait for a
   slow consumer.  Returns the evicted replicas for fd teardown
   outside the lock. *)
let offer_frame t frame =
  let evicted = ref [] in
  Mutex.lock t.mu;
  List.iter
    (fun f ->
      if f.client.open_ && not f.closing then begin
        if Queue.length f.outbox >= t.outbox_capacity then
          evicted := f :: !evicted
        else begin
          Queue.add frame f.outbox;
          f.outbox_bytes <- f.outbox_bytes + String.length frame;
          (match t.ins with
          | Some i ->
            Tel.Metrics.inc i.r_ops_sent;
            Tel.Metrics.add i.r_bytes_sent (String.length frame)
          | None -> ());
          Condition.signal f.fcond
        end
      end)
    t.replicas;
  set_follower_gauges t;
  Mutex.unlock t.mu;
  List.iter
    (fun f ->
      inc t (fun i -> i.r_evictions);
      drop_replica t f)
    !evicted

let offer_digest t =
  let digest = P.Backend.digest t.backend in
  let seq = t.rep_seq in
  let frame = frame_to_follower (P.Repl.Rep_digest { seq; digest }) in
  Mutex.lock t.mu;
  List.iter
    (fun f ->
      if f.client.open_ && not f.closing
         && Queue.length f.outbox < t.outbox_capacity
      then begin
        Queue.add frame f.outbox;
        f.outbox_bytes <- f.outbox_bytes + String.length frame;
        f.pending_digests <- (seq, digest) :: f.pending_digests;
        Condition.signal f.fcond
      end)
    t.replicas;
  Mutex.unlock t.mu

(* Called by the admission thread for every committed op, after the
   WAL append: the replication stream is the WAL, frame by frame. *)
let replicate t op =
  t.rep_seq <- t.rep_seq + 1;
  Queue.add (t.rep_seq, op) t.ring;
  if Queue.length t.ring > t.resume_window then ignore (Queue.pop t.ring);
  let have_replicas =
    Mutex.lock t.mu;
    let r = t.replicas <> [] in
    Mutex.unlock t.mu;
    r
  in
  if have_replicas then begin
    offer_frame t (frame_to_follower (P.Repl.Rep_op { seq = t.rep_seq; op }));
    if t.rep_seq - t.last_digest_seq >= t.digest_every then begin
      t.last_digest_seq <- t.rep_seq;
      offer_digest t
    end
  end

(* Admission-thread handling of a follower's Subscribe: decide resume
   vs snapshot at a point where no op can slip between the decision
   and the stream start — the admission thread is the only writer. *)
let handle_attach t client ~epoch ~last_seq =
  if t.role <> Leader then begin
    (try
       Protocol.write_all client.fd
         (frame_to_follower (P.Repl.Goodbye { reason = "not the leader" }))
     with Unix.Unix_error _ | Sys_error _ -> ());
    close_client t client
  end
  else begin
    Mutex.lock t.mu;
    let live = client.open_ in
    let f =
      if not live then None
      else begin
        (* migrate from the client registry to the replica registry:
           replication connections outlive the client shutdown phase
           of [stop] so the final ops still reach them *)
        t.clients <- List.filter (fun c -> c.cid <> client.cid) t.clients;
        (match t.ins with
        | Some i ->
          Tel.Metrics.set i.g_clients_active
            (float_of_int (List.length t.clients))
        | None -> ());
        let f =
          {
            client;
            outbox = Queue.create ();
            fcond = Condition.create ();
            closing = false;
            outbox_bytes = 0;
            acked_seq = last_seq;
            pending_digests = [];
            sender = None;
          }
        in
        t.replicas <- f :: t.replicas;
        set_follower_gauges t;
        Some f
      end
    in
    Mutex.unlock t.mu;
    match f with
    | None -> ()
    | Some f ->
      let ring_floor = t.rep_seq - Queue.length t.ring in
      let init =
        if
          epoch = t.epoch && last_seq >= ring_floor && last_seq <= t.rep_seq
        then begin
          inc t (fun i -> i.r_resumes);
          let backlog =
            Queue.fold
              (fun acc (seq, op) ->
                if seq > last_seq then
                  frame_to_follower (P.Repl.Rep_op { seq; op }) :: acc
                else acc)
              [] t.ring
          in
          frame_to_follower (P.Repl.Init_resume { epoch = t.epoch; seq = last_seq })
          :: List.rev backlog
        end
        else begin
          inc t (fun i -> i.r_snapshots_sent);
          [
            frame_to_follower
              (P.Repl.Init_snapshot
                 {
                   epoch = t.epoch;
                   seq = t.rep_seq;
                   state = P.Backend.encode_state t.backend;
                 });
          ]
        end
      in
      let digest = P.Backend.digest t.backend in
      let dig_frame =
        frame_to_follower (P.Repl.Rep_digest { seq = t.rep_seq; digest })
      in
      Mutex.lock t.mu;
      if f.client.open_ then begin
        List.iter
          (fun frame ->
            Queue.add frame f.outbox;
            f.outbox_bytes <- f.outbox_bytes + String.length frame)
          (init @ [ dig_frame ]);
        f.pending_digests <- [ (t.rep_seq, digest) ];
        f.sender <- Some (Thread.create (fun () -> sender_loop t f) ());
        Condition.signal f.fcond
      end;
      Mutex.unlock t.mu
  end

(* Ack handling runs on the replica's reader thread, not admission:
   it only touches the replica record (under the mutex), never the
   network.  Returns [false] when the replica was dropped. *)
let handle_ack t client ~seq ~digest =
  Mutex.lock t.mu;
  let f = List.find_opt (fun f -> f.client.cid = client.cid) t.replicas in
  let verdict =
    match f with
    | None -> `Ignore
    | Some f -> (
      f.acked_seq <- max f.acked_seq seq;
      match List.assoc_opt seq f.pending_digests with
      | None -> `Ignore (* an ack we no longer remember sending *)
      | Some sent ->
        f.pending_digests <- List.remove_assoc seq f.pending_digests;
        if sent = digest then `Ok else `Mismatch f)
  in
  Mutex.unlock t.mu;
  match verdict with
  | `Ignore -> true
  | `Ok ->
    inc t (fun i -> i.r_digest_checks);
    true
  | `Mismatch f ->
    inc t (fun i -> i.r_digest_checks);
    inc t (fun i -> i.r_digest_failures);
    inc t (fun i -> i.r_evictions);
    drop_replica t f;
    false

(* The per-connection thread of an attached follower, after the
   Subscribe was queued: consume acks until the link dies.  Reads go
   through the connection's Framebuf — the event loop may have read
   past the hello before detaching this fd to us. *)
let replica_reader_loop t client =
  let run = ref true in
  while !run do
    match Protocol.recv_frame_buffered client.fd client.fb with
    | exception Unix.Unix_error _ -> run := false
    | Protocol.Eof | Protocol.Bad _ -> run := false
    | Protocol.Frame payload -> (
      match P.Repl.to_leader_of_string payload with
      | Ok (P.Repl.Ack { seq; digest }) ->
        if not (handle_ack t client ~seq ~digest) then run := false
      | Ok (P.Repl.Subscribe _) | Error _ -> run := false)
  done;
  Mutex.lock t.mu;
  let stopping = t.stopping in
  let f = List.find_opt (fun f -> f.client.cid = client.cid) t.replicas in
  Mutex.unlock t.mu;
  match f with
  | Some f ->
    (* During [stop] this EOF is self-inflicted (the SHUTDOWN_RECEIVE
       that wakes blocked readers): dropping here would cut the outbox
       with the tail ops still queued, losing the stream's end.  [stop]
       drains and tears the replica down itself; a genuinely dead peer
       is still caught by the sender's own write failure. *)
    if not stopping then drop_replica t f
  | None ->
    (* the Attach may still be queued, or was refused; the admission
       thread owns the cleanup either way *)
    push t (Gone client)

(* ----- follower-side replication --------------------------------------- *)

let shutdown_conn conn =
  conn.alive <- false;
  try Unix.shutdown conn.rfd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

(* Admission thread, follower role: the replication stream diverged
   (bad seq, undecodable state, digest mismatch).  Drop the link and
   make the next subscribe demand a fresh snapshot. *)
let resync t conn =
  Mutex.lock t.mu;
  t.force_snapshot <- true;
  (match t.repl_conn with
  | Some c when c == conn -> t.repl_conn <- None
  | _ -> ());
  Mutex.unlock t.mu;
  shutdown_conn conn

let send_ack t conn ~seq ~digest =
  let b = Buffer.create 32 in
  P.Repl.encode_to_leader b (P.Repl.Ack { seq; digest });
  let frame = P.Wire.frame (Buffer.contents b) in
  Mutex.lock t.mu;
  (if conn.alive then
     try Protocol.write_all conn.rfd frame
     with Unix.Unix_error _ | Sys_error _ -> ());
  Mutex.unlock t.mu

(* Admission thread: apply one replication message.  Stale frames from
   a connection the follower already abandoned are dropped — the new
   subscribe re-fetches whatever they carried. *)
let handle_repl t conn msg =
  let current =
    Mutex.lock t.mu;
    let c = match t.repl_conn with Some c -> c == conn | None -> false in
    Mutex.unlock t.mu;
    c
  in
  if current then begin
    (* every message that names a leader seq tells us how far ahead the
       leader is; the gap to [rep_seq] is the apply lag /readyz gates on *)
    (match msg with
    | P.Repl.Init_snapshot { seq; _ }
    | P.Repl.Init_resume { seq; _ }
    | P.Repl.Rep_op { seq; _ }
    | P.Repl.Rep_digest { seq; _ } ->
      if seq > t.leader_seq then t.leader_seq <- seq
    | P.Repl.Goodbye _ -> ());
    (match msg with
    | P.Repl.Init_snapshot { epoch; seq; state } -> (
      match P.Backend.restore ?telemetry:t.tel state with
      | Error _ -> resync t conn
      | exception Invalid_argument _ -> resync t conn
      | Ok backend ->
        t.backend <- backend;
        t.rep_seq <- seq;
        t.repl_epoch <- epoch;
        inc t (fun i -> i.r_snapshots_recv);
        (match t.follower_cfg with
        | Some { wal = Some wal; _ } ->
          (match t.store with
          | Some s -> ( try P.Store.close s with Sys_error _ -> ())
          | None -> ());
          t.store <- Some (P.Store.start_backend ?telemetry:t.tel ~wal backend);
          P.Repl.save_mark ~wal { P.Repl.epoch; base_seq = seq }
        | _ -> ()))
    | P.Repl.Init_resume { epoch; seq } ->
      if seq <> t.rep_seq then resync t conn else t.repl_epoch <- epoch
    | P.Repl.Rep_op { seq; op } ->
      if seq <> t.rep_seq + 1 then resync t conn
      else (
        match P.Backend.apply t.backend op with
        | Ok _ ->
          t.rep_seq <- seq;
          inc t (fun i -> i.r_applied);
          Option.iter (fun s -> P.Store.log s op) t.store
        | Error _ -> resync t conn)
    | P.Repl.Rep_digest { seq; digest } ->
      let own = P.Backend.digest t.backend in
      if seq <> t.rep_seq || own <> digest then begin
        inc t (fun i -> i.r_digest_mismatch);
        resync t conn
      end
      else send_ack t conn ~seq ~digest:own
    | P.Repl.Goodbye _ ->
      (* end of this link's stream (leader goodbye, or the reader's
         synthetic one after EOF): every earlier message has been
         applied, so dropping the link reference is now loss-free *)
      Mutex.lock t.mu;
      (match t.repl_conn with
      | Some c when c == conn -> t.repl_conn <- None
      | _ -> ());
      Mutex.unlock t.mu);
    match t.ins with
    | Some i ->
      Tel.Metrics.set i.g_follower_lag
        (float_of_int (max 0 (t.leader_seq - t.rep_seq)))
    | None -> ()
  end

let sockaddr_of_address = function
  | Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    (Unix.PF_INET, Unix.ADDR_INET (inet, port))
  | Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)

(* Sleep in small slices so [stop] never waits out a full backoff. *)
let nap t seconds =
  let left = ref seconds in
  while !left > 0. && not t.stopping do
    Thread.delay (min 0.05 !left);
    left := !left -. 0.05
  done

(* The follower's replication client: dial the leader, subscribe,
   feed frames into the admission queue, reconnect with capped
   exponential backoff on any failure.  Runs until the server stops
   or this node is promoted. *)
let repl_loop t cfg =
  let backoff = ref 0.05 in
  let had_conn = ref false in
  let running () =
    Mutex.lock t.mu;
    let r = (not t.stopping) && t.role = Follower in
    Mutex.unlock t.mu;
    r
  in
  while running () do
    let fd =
      match
        let domain, sockaddr = sockaddr_of_address cfg.leader in
        let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
        (try Unix.connect fd sockaddr
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        Protocol.write_all fd Protocol.follower_hello;
        match Protocol.read_exactly fd P.Wire.header_len with
        | Protocol.Exact hello when Protocol.check_server_hello hello = Ok () ->
          fd
        | _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          failwith "bad hello"
      with
      | fd -> Some fd
      | exception (Unix.Unix_error _ | Failure _ | Not_found) -> None
    in
    match fd with
    | None ->
      nap t !backoff;
      backoff := min 2.0 (!backoff *. 2.)
    | Some fd ->
      let conn = { rfd = fd; alive = true } in
      Mutex.lock t.mu;
      let go = (not t.stopping) && t.role = Follower in
      if go then t.repl_conn <- Some conn;
      let epoch = t.repl_epoch in
      let last_seq = if t.force_snapshot then -1 else t.rep_seq in
      Mutex.unlock t.mu;
      if not go then ( try Unix.close fd with Unix.Unix_error _ -> ())
      else begin
        let subscribed =
          match
            let b = Buffer.create 32 in
            P.Repl.encode_to_leader b (P.Repl.Subscribe { epoch; last_seq });
            Protocol.send_frame fd (Buffer.contents b)
          with
          | () -> true
          | exception (Unix.Unix_error _ | Sys_error _) -> false
        in
        if subscribed then begin
          if !had_conn then inc t (fun i -> i.r_reconnects);
          had_conn := true;
          backoff := 0.05;
          let run = ref true in
          while !run do
            match Protocol.recv_frame fd with
            | exception Unix.Unix_error _ -> run := false
            | Protocol.Eof | Protocol.Bad _ -> run := false
            | Protocol.Frame payload -> (
              match P.Repl.to_follower_of_string payload with
              | Ok (P.Repl.Goodbye _) -> run := false
              | Ok msg -> push t (Repl_msg { conn; msg })
              | Error _ -> run := false)
          done
        end;
        Mutex.lock t.mu;
        conn.alive <- false;
        Mutex.unlock t.mu;
        (* The link is down, but the stream's tail may still sit in the
           admission queue: clearing [repl_conn] here would make
           [handle_repl] drop those messages as stale and lose the ops
           for good (a dead leader cannot resend them).  Instead, push
           a synthetic Goodbye through the same queue — the admission
           thread clears the link only after applying everything that
           arrived before it — and wait for that to happen so the next
           subscribe's [last_seq] counts the whole tail. *)
        push t (Repl_msg { conn; msg = P.Repl.Goodbye { reason = "link closed" } });
        let rec wait_cleared n =
          let cleared =
            Mutex.lock t.mu;
            let c =
              match t.repl_conn with Some c -> not (c == conn) | None -> true
            in
            Mutex.unlock t.mu;
            c
          in
          if (not cleared) && n < 500 && not t.stopping then begin
            Thread.delay 0.01;
            wait_cleared (n + 1)
          end
        in
        wait_cleared 0;
        (try Unix.close fd with Unix.Unix_error _ -> ());
        nap t !backoff
      end
  done

(* ----- admission loop -------------------------------------------------- *)

(* Frame a response and hand it to the event loop's output queue: the
   admission thread never blocks on a peer's socket.  A batch reply
   counts once per sub-response so the counter reconciles with
   [server_requests_total] whichever way the ops arrived. *)
let send_response t client resp =
  let b = Buffer.create 64 in
  P.Resp.encode b resp;
  if enqueue_out t client (P.Wire.frame (Buffer.contents b)) then
    match t.ins with
    | Some i ->
      let n =
        match (resp : P.Resp.t) with
        | P.Resp.Batch_reply rs -> List.length rs
        | _ -> 1
      in
      Tel.Metrics.add i.responses n
    | None -> ()

(* How far behind the slowest consumer is: on a follower the gap to
   the leader's newest shown seq, on a leader the deepest replica
   outbox.  Admission-thread callers already own the interesting
   fields; the replica scan still takes the mutex. *)
let current_lag t =
  match t.role with
  | Follower -> max 0 (t.leader_seq - t.rep_seq)
  | Leader ->
    Mutex.lock t.mu;
    let lag =
      List.fold_left (fun acc f -> max acc (Queue.length f.outbox)) 0 t.replicas
    in
    Mutex.unlock t.mu;
    lag

(* Get_stats runs on the admission thread.  Role, epoch, applied seq
   and lag ride alongside the metrics so a poller (wdmnet top, the CI
   smoke) can assert convergence without a digest round-trip; a
   follower reports the leader generation it synced to. *)
let stats_renderer t () =
  let base =
    match t.ins with
    | None -> []
    | Some i -> (
      (* under the server mutex: the event loop may be registering
         per-client counters in the same registry concurrently *)
      Mutex.lock t.mu;
      let snap = Tel.Sink.snapshot i.sink in
      Mutex.unlock t.mu;
      match Tel.Metrics.to_json snap with
      | Tel.Json.Obj kvs -> kvs
      | j -> [ ("metrics", j) ])
  in
  let role, epoch =
    match t.role with
    | Leader -> ("leader", t.epoch)
    | Follower -> ("follower", t.repl_epoch)
  in
  Tel.Json.to_string
    (Tel.Json.Obj
       ([
          ("role", Tel.Json.String role);
          ("epoch", Tel.Json.Int epoch);
          ("applied", Tel.Json.Int t.rep_seq);
          ("lag", Tel.Json.Int (current_lag t));
        ]
       @ base))

(* ----- span recording (admission thread) ------------------------------- *)

let slow_line sr =
  Tel.Json.to_string
    (Tel.Json.Obj
       ([ ("ts", Tel.Json.Float sr.sr_start) ]
       @ (match sr.sr_span with
         | Some s -> [ ("span", Tel.Json.Int s) ]
         | None -> [])
       @ [
           ("client", Tel.Json.Int sr.sr_cid);
           ("total_ms", Tel.Json.Float (sr.sr_total *. 1000.));
           ( "stages_ms",
             Tel.Json.Obj
               (List.map
                  (fun (k, v) -> (k, Tel.Json.Float (v *. 1000.)))
                  sr.sr_stages) );
         ]))

(* Ring-buffer the record, mirror it to the trace sink as one Stage
   slice per stage, and append the slow-op JSONL line when the total
   crosses the threshold.  Only called when instruments exist — with
   telemetry off the request path never builds a record at all. *)
let record_span t i sr =
  List.iter
    (fun (name, d) ->
      let h =
        match name with
        | "decode" -> i.h_st_decode
        | "queue" -> i.h_st_queue
        | "execute" -> i.h_st_execute
        | "wal" -> i.h_st_wal
        | "replicate" -> i.h_st_replicate
        | _ -> i.h_st_respond
      in
      Tel.Histogram.observe h d)
    sr.sr_stages;
  Mutex.lock t.mu;
  Queue.add sr t.spans_ring;
  if Queue.length t.spans_ring > t.span_buffer then
    ignore (Queue.pop t.spans_ring);
  Mutex.unlock t.mu;
  (match i.sink.Tel.Sink.trace with
  | None -> ()
  | Some trace ->
    let span_detail =
      (match sr.sr_span with
      | Some s -> [ ("span", string_of_int s) ]
      | None -> [])
      @ [ ("client", string_of_int sr.sr_cid) ]
    in
    let ts = ref sr.sr_start in
    List.iter
      (fun (name, d) ->
        Tel.Trace.record trace ~ts:!ts ~dur:d
          ~detail:(("stage", name) :: span_detail)
          Tel.Trace.Stage;
        ts := !ts +. d)
      sr.sr_stages);
  match t.slow_ms with
  | Some threshold when sr.sr_total *. 1000. >= threshold -> (
    Tel.Metrics.inc i.slow_requests;
    match t.slow_out with
    | Some oc ->
      output_string oc (slow_line sr);
      output_char oc '\n';
      flush oc
    | None -> ())
  | _ -> ()

(* The op this request committed, if any — what the WAL records and
   the replication stream carries.  Ops that failed to execute are
   excluded: [Store.recover] treats a failing [Op.apply] as
   corruption, and replaying a refused Disconnect or an out-of-range
   fault fails again — one such client request would poison the WAL
   permanently.  (Refused Connect and Repair are still committed;
   replay tolerates those.)  A [Repair] record carries the outcome
   this server actually produced, keeping divergence detection
   honest. *)
let committed_op req resp =
  match (req : P.Resp.request) with
  | P.Resp.Get_digest | P.Resp.Get_stats | P.Resp.Promote -> None
  (* batches are unrolled sub-op by sub-op before commit; a whole
     batch never reaches the WAL as one record *)
  | P.Resp.Batch _ -> None
  | P.Resp.Admit op -> (
    match (resp : P.Resp.t) with
    | P.Resp.Release_failed _ | P.Resp.Server_error _ -> None
    | P.Resp.Admitted _ -> (
      match op with
      | P.Op.Repair { connection; _ } ->
        Some (P.Op.Repair { connection; rehomed = true })
      | _ -> Some op)
    | _ -> (
      match op with
      | P.Op.Repair { connection; _ } ->
        Some (P.Op.Repair { connection; rehomed = false })
      | _ -> Some op))

(* Promotion, on the admission thread: cut the replication link, take
   a fresh epoch, start leading.  The store and network continue as
   they are — the newest boundary-consistent state this follower
   reached is exactly what it starts serving. *)
let do_promote t =
  if t.role = Leader then Error "already the leader"
  else begin
    Mutex.lock t.mu;
    t.role <- Leader;
    t.epoch <- fresh_epoch ();
    let conn = t.repl_conn in
    t.repl_conn <- None;
    Mutex.unlock t.mu;
    Option.iter shutdown_conn conn;
    Queue.clear t.ring;
    t.last_digest_seq <- t.rep_seq;
    (match t.follower_cfg with
    | Some { wal = Some wal; _ } -> P.Repl.remove_mark ~wal
    | _ -> ());
    Ok t.rep_seq
  end

let execute_request t req =
  match (req : P.Resp.request) with
  | P.Resp.Promote -> (
    match do_promote t with
    | Ok seq -> P.Resp.Promoted { seq }
    | Error e -> P.Resp.Server_error e)
  | P.Resp.Admit _ when t.role = Follower ->
    P.Resp.Not_leader { leader = leader_string t }
  | _ -> P.Resp.execute_backend ~stats:(stats_renderer t) t.backend req

(* Commit one executed request: WAL append, then replication fan-out.
   Batches unroll here, sub-op by sub-op, so the WAL and the stream
   see exactly the records a sequential client would have produced. *)
let commit t req resp =
  if t.role = Leader then
    match committed_op req resp with
    | None -> ()
    | Some op ->
      Option.iter (fun s -> P.Store.log s op) t.store;
      replicate t op

let request_weight (req : P.Resp.request) =
  match req with P.Resp.Batch subs -> List.length subs | _ -> 1

let handle_request t client req ~enqueued ~span ~decode =
  match t.ins with
  | None ->
    (* untimed path: no clock reads, no record — behaviourally the
       pre-tracing server *)
    let resp =
      match (req : P.Resp.request) with
      | P.Resp.Batch subs ->
        P.Resp.Batch_reply
          (List.map
             (fun sub ->
               let r = execute_request t sub in
               commit t sub r;
               r)
             subs)
      | _ ->
        let r = execute_request t req in
        commit t req r;
        r
    in
    send_response t client resp;
    t.served_count <- t.served_count + request_weight req
  | Some i ->
    let t_start = now t in
    (* a batch interleaves execute / wal / replicate per sub-op;
       accumulate the commit slices so the stage histograms keep their
       meaning whichever way the ops arrived *)
    let wal_acc = ref 0. and repl_acc = ref 0. in
    let commit_timed sub r =
      if t.role = Leader then
        match committed_op sub r with
        | None -> ()
        | Some op ->
          let t0 = now t in
          Option.iter (fun s -> P.Store.log s op) t.store;
          let t1 = now t in
          replicate t op;
          wal_acc := !wal_acc +. (t1 -. t0);
          repl_acc := !repl_acc +. (now t -. t1)
    in
    let resp =
      match (req : P.Resp.request) with
      | P.Resp.Batch subs ->
        P.Resp.Batch_reply
          (List.map
             (fun sub ->
               let r = execute_request t sub in
               commit_timed sub r;
               r)
             subs)
      | _ ->
        let r = execute_request t req in
        commit_timed req r;
        r
    in
    let t_exec = now t in
    send_response t client resp;
    let t_done = now t in
    t.served_count <- t.served_count + request_weight req;
    Tel.Histogram.observe i.h_latency (t_done -. enqueued);
    let start = enqueued -. decode in
    record_span t i
      {
        sr_span = span;
        sr_cid = client.cid;
        sr_start = start;
        sr_total = t_done -. start;
        sr_stages =
          [
            ("decode", decode);
            ("queue", max 0. (t_start -. enqueued));
            ("execute", max 0. (t_exec -. t_start -. !wal_acc -. !repl_acc));
            ("wal", !wal_acc);
            ("replicate", !repl_acc);
            ("respond", t_done -. t_exec);
          ];
      }

let admit_loop t =
  let continue = ref true in
  while !continue do
    match drain_batch t with
    | None -> continue := false
    | Some batch ->
      (match t.ins with
      | Some i ->
        Tel.Metrics.inc i.batches;
        Tel.Histogram.observe i.h_batch_size (float_of_int (List.length batch))
      | None -> ());
      List.iter
        (fun item ->
          match item with
          | Gone client ->
            (* an event connection closes through the loop so responses
               already queued ahead of the EOF still go out; a detached
               (replica-path) fd is ours to close directly *)
            if client.kind = Cdetached then close_client t client
            else mark_want_close t client
          | Malformed { client; reason } ->
            (match t.ins with
            | Some i -> Tel.Metrics.inc i.malformed
            | None -> ());
            send_response t client (P.Resp.Server_error reason);
            mark_want_close t client
          | Request { client; req; enqueued; span; decode } ->
            handle_request t client req ~enqueued ~span ~decode
          | Attach { client; epoch; last_seq } ->
            handle_attach t client ~epoch ~last_seq
          | Repl_msg { conn; msg } -> handle_repl t conn msg
          | Do_promote w ->
            let result = do_promote t in
            Mutex.lock t.mu;
            w.result <- Some result;
            Condition.broadcast w.pcond;
            Mutex.unlock t.mu)
        batch
  done

(* ----- follower hand-off ----------------------------------------------- *)

(* A connection whose hello said 'F' leaves the event loop for a
   dedicated thread: the replication stream wants blocking writes with
   its own pacing (sender thread + bounded outbox), and there are only
   ever a handful of replicas.  The loop cleared O_NONBLOCK before
   spawning us; any bytes it read past the hello ride in [client.fb]. *)
let follower_conn_loop t client =
  match Protocol.write_all client.fd Protocol.server_hello_spans with
  | exception (Unix.Unix_error _ | Sys_error _) -> close_client t client
  | () -> (
    (match t.follower_sndbuf with
    | Some n -> (
      try Unix.setsockopt_int client.fd Unix.SO_SNDBUF n
      with Unix.Unix_error _ -> ())
    | None -> ());
    match Protocol.recv_frame_buffered client.fd client.fb with
    | exception Unix.Unix_error _ -> close_client t client
    | Protocol.Eof | Protocol.Bad _ -> close_client t client
    | Protocol.Frame payload -> (
      match P.Repl.to_leader_of_string payload with
      | Ok (P.Repl.Subscribe { epoch; last_seq }) ->
        push t (Attach { client; epoch; last_seq });
        replica_reader_loop t client
      | Ok (P.Repl.Ack _) | Error _ -> close_client t client))

(* EMFILE/ENFILE (fd exhaustion), ECONNABORTED (peer gave up while
   queued) and EINTR are conditions a server rides out, not reasons to
   die; anything else is still survived with the same short sleep so a
   persistent error cannot spin the loop hot. *)
let accept_transient = function
  | Unix.EMFILE | Unix.ENFILE | Unix.ECONNABORTED | Unix.EINTR -> true
  | _ -> false

(* ----- observability plane (HTTP 1.0) ---------------------------------- *)

(* Leader: WAL recovery runs synchronously before [start] returns, so a
   leader that answers at all has recovered.  Follower: ready only once
   the replication link is live, it has synced to some leader
   generation, and the apply lag is within [ready_lag]; [promote] flips
   the role and with it the answer. *)
let ready t =
  match t.role with
  | Leader -> true
  | Follower ->
    Mutex.lock t.mu;
    let linked = t.repl_conn <> None && t.repl_epoch <> 0 in
    Mutex.unlock t.mu;
    linked && t.leader_seq - t.rep_seq <= t.ready_lag

(* The span ring rendered as a Chrome trace: each request is its
   contiguous stage slices, correlated by span id in [args]. *)
let spans_chrome t =
  Mutex.lock t.mu;
  let records = List.of_seq (Queue.to_seq t.spans_ring) in
  Mutex.unlock t.mu;
  let trace = Tel.Trace.create () in
  List.iter
    (fun sr ->
      let span_detail =
        (match sr.sr_span with
        | Some s -> [ ("span", string_of_int s) ]
        | None -> [])
        @ [ ("client", string_of_int sr.sr_cid) ]
      in
      let ts = ref sr.sr_start in
      List.iter
        (fun (name, d) ->
          Tel.Trace.record trace ~ts:!ts ~dur:d
            ~detail:(("stage", name) :: span_detail)
            Tel.Trace.Stage;
          ts := !ts +. d)
        sr.sr_stages)
    records;
  Tel.Trace.to_chrome trace

let http_route t path =
  match path with
  | "/healthz" -> ("200 OK", "text/plain; charset=utf-8", "ok\n")
  | "/readyz" ->
    let body =
      Printf.sprintf "role=%s applied=%d lag=%d\n"
        (match t.role with Leader -> "leader" | Follower -> "follower")
        t.rep_seq
        (max 0 (t.leader_seq - t.rep_seq))
    in
    if ready t then ("200 OK", "text/plain; charset=utf-8", "ready\n" ^ body)
    else
      ("503 Service Unavailable", "text/plain; charset=utf-8", "behind\n" ^ body)
  | "/metrics" ->
    let body =
      match t.ins with
      | None -> ""
      | Some i ->
        Mutex.lock t.mu;
        let snap = Tel.Sink.snapshot i.sink in
        Mutex.unlock t.mu;
        Tel.Metrics.to_prometheus snap
    in
    ("200 OK", "text/plain; version=0.0.4; charset=utf-8", body)
  | "/spans" -> ("200 OK", "application/json", spans_chrome t)
  | _ -> ("404 Not Found", "text/plain; charset=utf-8", "not found\n")

(* ----- event loop ------------------------------------------------------ *)

(* State the loop thread alone owns.  [conns] is keyed by fd; because
   the kernel recycles fds, every deferred reference to a client is
   validated by physical equality against this table before use. *)
type loopstate = {
  conns : (Unix.file_descr, client) Hashtbl.t;
  scratch : Bytes.t;  (** shared read buffer; bytes move to [c.fb] *)
  mutable reads_disabled : bool;  (** [stopping]: drain writes only *)
  mutable last_sweep : float;
}

let drain_wake t =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r b 0 (Bytes.length b) with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let loop_close t ls c =
  (match Hashtbl.find_opt ls.conns c.fd with
  | Some c' when c' == c ->
    Hashtbl.remove ls.conns c.fd;
    Evloop.remove t.ev c.fd
  | _ -> ());
  close_client t c

let owned_by_loop ls c =
  match Hashtbl.find_opt ls.conns c.fd with
  | Some c' -> c' == c
  | None -> false

(* Gather-write: bytes written, -1 EAGAIN, -2 EINTR, -3 dead peer.
   The stub keeps the runtime lock (the iovec points into the heap),
   which a nonblocking fd makes harmless. *)
external writev_frames : Unix.file_descr -> string array -> int -> int
  = "wdm_writev"

(* How many queued frames one writev gathers; must not exceed the
   stub's WDM_IOV_MAX. *)
let max_iov = 64

(* Write as much queued output as the kernel will take.  A batch of
   queued frames is snapshotted under the lock and handed to writev
   as an iovec — the syscall gathers what the old code achieved by
   copying every pending response through a coalescing buffer.  Only
   fully-written frames are popped, so a partial write (tiny
   SO_SNDBUF) resumes from [out_off] of the front frame. *)
let conn_flush t ls c =
  let continue = ref (owned_by_loop ls c) in
  while !continue do
    Mutex.lock t.mu;
    let kill = c.kill and wclose = c.want_close in
    let nframes = min (Queue.length c.out_q) max_iov in
    let batch = Array.make nframes "" in
    let i = ref 0 in
    (try
       Queue.iter
         (fun s ->
           if !i >= nframes then raise Exit;
           batch.(!i) <- s;
           incr i)
         c.out_q
     with Exit -> ());
    Mutex.unlock t.mu;
    if kill then begin
      loop_close t ls c;
      continue := false
    end
    else if nframes = 0 then begin
      if wclose then loop_close t ls c
      else
        Evloop.modify t.ev c.fd
          ~read:((not c.rd_eof) && not ls.reads_disabled)
          ~write:false;
      continue := false
    end
    else begin
      match writev_frames c.fd batch c.out_off with
      | -2 (* EINTR *) -> ()
      | -1 | 0 (* EAGAIN, or a kernel that took nothing *) ->
        Evloop.modify t.ev c.fd
          ~read:((not c.rd_eof) && not ls.reads_disabled)
          ~write:true;
        continue := false
      | n when n < 0 ->
        (* EPIPE/ECONNRESET: the peer is gone; pending output is moot *)
        loop_close t ls c;
        continue := false
      | n ->
        (* pop the frames the kernel swallowed whole; a partial tail
           frame stays as the new head with its offset advanced *)
        Mutex.lock t.mu;
        c.out_bytes <- c.out_bytes - n;
        let rem = ref n in
        while !rem > 0 do
          let head = Queue.peek c.out_q in
          let avail = String.length head - c.out_off in
          if !rem >= avail then begin
            ignore (Queue.pop c.out_q);
            c.out_off <- 0;
            rem := !rem - avail
          end
          else begin
            c.out_off <- c.out_off + !rem;
            rem := 0
          end
        done;
        Mutex.unlock t.mu
    end
  done

(* Serve the connections other threads flagged since the last pass.
   [in_dirty] is reset under the lock, so a flag raised during the
   flush re-queues the connection rather than being lost. *)
let refresh_dirty t ls =
  Mutex.lock t.mu;
  let dirty = t.dirty in
  t.dirty <- [];
  List.iter (fun c -> c.in_dirty <- false) dirty;
  Mutex.unlock t.mu;
  List.iter (fun c -> if owned_by_loop ls c then conn_flush t ls c) dirty

(* Decode every complete frame buffered on a request connection and
   queue the results for admission.  Mirrors the retired per-client
   reader thread, minus the blocking. *)
let process_frames t c =
  let continue = ref true in
  while !continue do
    match Framebuf.next_frame c.fb with
    | Framebuf.Need _ -> continue := false
    | Framebuf.Bad reason ->
      c.rd_eof <- true;
      push_loop t (Malformed { client = c; reason });
      continue := false
    | Framebuf.Frame payload -> (
      let t0 = now t in
      let r = P.Wire.reader payload in
      match
        let req = P.Resp.decode_request r in
        (* requests are self-delimiting, so the negotiated trailing
           span id sits cleanly after the request proper *)
        let span = if c.spans then Some (P.Wire.get_int r) else None in
        P.Wire.expect_end r;
        (req, span)
      with
      | req, span ->
        let w = request_weight req in
        Option.iter (fun cr -> Tel.Metrics.add cr w) c.c_requests;
        (match t.ins with
        | Some i -> Tel.Metrics.add i.requests w
        | None -> ());
        let enqueued = now t in
        push_loop t
          (Request { client = c; req; enqueued; span; decode = enqueued -. t0 })
      | exception P.Wire.Decode_error { offset; reason } ->
        c.rd_eof <- true;
        push_loop t
          (Malformed
             {
               client = c;
               reason = Printf.sprintf "%s at payload offset %d" reason offset;
             });
        continue := false)
  done

(* Answer an observability request with whatever head has arrived —
   the request line is all we parse — and close once it drains.
   HTTP/1.0, Connection: close: a scraper per connection. *)
let http_answer t ls c =
  let request = Framebuf.contents c.fb in
  let status, ctype, body =
    match String.split_on_char ' ' request with
    | "GET" :: path :: _ ->
      (* strip any query string: /readyz?verbose -> /readyz *)
      let path =
        match String.index_opt path '?' with
        | Some q -> String.sub path 0 q
        | None -> path
      in
      http_route t path
    | _ ->
      ( "400 Bad Request",
        "text/plain; charset=utf-8",
        "only GET is served here\n" )
  in
  let response =
    Printf.sprintf
      "HTTP/1.0 %s\r\n\
       Content-Type: %s\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n\
       %s"
      status ctype (String.length body) body
  in
  c.rd_eof <- true;
  c.deadline <- 0.;
  (* order matters: [enqueue_out] refuses bytes once [want_close] is up *)
  ignore (enqueue_out t c response);
  mark_want_close t c;
  conn_flush t ls c

let http_head_done c =
  Framebuf.length c.fb >= 4096
  ||
  let s = Framebuf.contents c.fb in
  let has sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  has "\r\n\r\n" || has "\n\n"

(* A follower leaves the loop for a dedicated blocking thread (see
   [follower_conn_loop]); bytes already buffered ride along in [fb]. *)
let detach_follower t ls c =
  Hashtbl.remove ls.conns c.fd;
  Evloop.remove t.ev c.fd;
  c.kind <- Cdetached;
  (try Unix.clear_nonblock c.fd with Unix.Unix_error _ -> ());
  ignore (Thread.create (fun () -> follower_conn_loop t c) ())

(* Route freshly buffered bytes according to what the connection turned
   out to be.  Runs after every successful read. *)
let rec conn_dispatch t ls c =
  match c.kind with
  | Cdetached -> ()
  | Chello ->
    if Framebuf.length c.fb >= P.Wire.header_len then begin
      let hello = Framebuf.take c.fb P.Wire.header_len in
      if Protocol.check_client_hello hello = Ok () then begin
        c.kind <- Creq;
        c.spans <- Protocol.hello_has_spans hello;
        (match t.ins with
        | Some i ->
          Mutex.lock t.mu;
          if c.open_ then begin
            c.c_requests <-
              Some
                (Tel.Metrics.counter i.sink.Tel.Sink.metrics
                   ~help:"Requests received from this client"
                   (Printf.sprintf
                      "server_client_requests_total{client=\"%d\"}" c.cid));
            Tel.Metrics.inc i.clients_total
          end;
          Mutex.unlock t.mu
        | None -> ());
        (* always advertise the span capability; a pre-flags client
           reads the flag byte as the reserved padding it has always
           ignored *)
        ignore (enqueue_out t c Protocol.server_hello_spans);
        conn_dispatch t ls c
      end
      else if Protocol.check_follower_hello hello = Ok () then
        detach_follower t ls c
      else loop_close t ls c
    end
  | Creq -> process_frames t c
  | Chttp -> if http_head_done c then http_answer t ls c

(* Drain readable bytes into the connection's buffer, a bounded number
   of chunks per readiness event so one firehose client cannot starve
   the rest (level-triggered backends re-report the remainder), and
   never past the admission queue's capacity. *)
let conn_readable t ls c =
  let rounds = ref 0 in
  let continue = ref true in
  while !continue && not c.rd_eof do
    if !rounds >= 4 || queue_depth t >= t.capacity then continue := false
    else begin
      incr rounds;
      match Unix.read c.fd ls.scratch 0 (Bytes.length ls.scratch) with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ ->
        loop_close t ls c;
        continue := false
      | 0 ->
        c.rd_eof <- true;
        continue := false;
        (match c.kind with
        | Chello -> loop_close t ls c
        | Chttp -> http_answer t ls c
        | Creq ->
          (* half a frame followed by EOF is protocol damage, not a
             clean goodbye; either way the close is ordered through
             the admission queue so queued responses still go out *)
          if Framebuf.length c.fb > 0 then
            push_loop t
              (Malformed { client = c; reason = "peer closed mid-frame" })
          else push_loop t (Gone c)
        | Cdetached -> ())
      | n ->
        Framebuf.add_subbytes c.fb ls.scratch ~off:0 ~len:n;
        conn_dispatch t ls c;
        if not (owned_by_loop ls c) then continue := false
    end
  done;
  (* a connection we stopped reading keeps only its write interest *)
  if owned_by_loop ls c && c.rd_eof then
    match Evloop.interest t.ev c.fd with
    | Some (true, w) -> Evloop.modify t.ev c.fd ~read:false ~write:w
    | _ -> ()

let accept_ready t ls lfd ~http =
  let continue = ref true in
  while !continue do
    match Unix.accept lfd with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (err, _, _) ->
      if not t.stopping then begin
        (match t.ins with
        | Some i -> Tel.Metrics.inc i.accept_errors
        | None -> ());
        Thread.delay (if accept_transient err then 0.05 else 0.25)
      end;
      continue := false
    | fd, _peer ->
      if t.stopping then begin
        (try Unix.close fd with Unix.Unix_error _ -> ());
        continue := false
      end
      else begin
        let over =
          (* the gate protects the request plane; scrapes stay
             answerable even at the connection cap *)
          (not http)
          &&
          match t.max_conns with
          | Some m -> Hashtbl.length ls.conns >= m
          | None -> false
        in
        if over then begin
          (match t.ins with
          | Some i -> Tel.Metrics.inc i.accept_errors
          | None -> ());
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
        else begin
          Unix.set_nonblock fd;
          (* raises on unix sockets; harmless to skip there *)
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          (match t.conn_sndbuf with
          | Some n when not http -> (
            try Unix.setsockopt_int fd Unix.SO_SNDBUF n
            with Unix.Unix_error _ -> ())
          | _ -> ());
          Mutex.lock t.mu;
          let cid = t.next_cid in
          t.next_cid <- cid + 1;
          let c =
            {
              cid;
              fd;
              open_ = true;
              spans = false;
              c_requests = None;
              kind = (if http then Chttp else Chello);
              fb = Framebuf.create ();
              out_q = Queue.create ();
              out_off = 0;
              out_bytes = 0;
              want_close = false;
              kill = false;
              rd_eof = false;
              in_dirty = false;
              deadline = 0.;
            }
          in
          if not http then begin
            t.clients <- c :: t.clients;
            match t.ins with
            | Some i ->
              Tel.Metrics.set i.g_clients_active
                (float_of_int (List.length t.clients))
            | None -> ()
          end;
          Mutex.unlock t.mu;
          if http then c.deadline <- Unix.gettimeofday () +. 5.0;
          Hashtbl.replace ls.conns fd c;
          Evloop.add t.ev fd ~read:(not ls.reads_disabled) ~write:false
        end
      end
  done

(* An HTTP peer that never finishes its head gets answered with what
   arrived once its deadline passes — the event-loop translation of
   the old per-connection SO_RCVTIMEO. *)
let sweep t ls nw =
  if nw -. ls.last_sweep >= 1.0 then begin
    ls.last_sweep <- nw;
    let expired =
      Hashtbl.fold
        (fun _ c acc ->
          if c.kind = Chttp && c.deadline > 0. && nw > c.deadline then c :: acc
          else acc)
        ls.conns []
    in
    List.iter (fun c -> http_answer t ls c) expired
  end

let handle_event t ls (fd, rd, wr) =
  if fd = t.wake_r then begin
    if rd then drain_wake t
  end
  else if fd = t.listen_fd then begin
    if rd && not ls.reads_disabled then accept_ready t ls fd ~http:false
  end
  else if match t.http_fd with Some h -> fd = h | None -> false then begin
    if rd && not ls.reads_disabled then accept_ready t ls fd ~http:true
  end
  else
    match Hashtbl.find_opt ls.conns fd with
    | None -> ()
    | Some c ->
      if wr then conn_flush t ls c;
      if rd && owned_by_loop ls c then conn_readable t ls c

let loop_run t =
  let ls =
    {
      conns = Hashtbl.create 64;
      scratch = Bytes.create 65536;
      reads_disabled = false;
      last_sweep = 0.;
    }
  in
  Unix.set_nonblock t.listen_fd;
  Evloop.add t.ev t.wake_r ~read:true ~write:false;
  Evloop.add t.ev t.listen_fd ~read:true ~write:false;
  (match t.http_fd with
  | Some h ->
    Unix.set_nonblock h;
    Evloop.add t.ev h ~read:true ~write:false
  | None -> ());
  let finished = ref false in
  while not !finished do
    Mutex.lock t.mu;
    let stopping = t.stopping in
    let finishing = t.loop_finish in
    let paused = (not stopping) && Queue.length t.queue >= t.capacity in
    t.read_paused <- paused;
    Mutex.unlock t.mu;
    if stopping && not ls.reads_disabled then begin
      (* no new connections, no new requests; what remains is flushing
         responses for everything already admitted *)
      ls.reads_disabled <- true;
      Evloop.modify t.ev t.listen_fd ~read:false ~write:false;
      (match t.http_fd with
      | Some h -> Evloop.modify t.ev h ~read:false ~write:false
      | None -> ());
      Hashtbl.iter
        (fun fd c ->
          c.rd_eof <- true;
          match Evloop.interest t.ev fd with
          | Some (true, w) -> Evloop.modify t.ev fd ~read:false ~write:w
          | _ -> ())
        ls.conns
    end;
    refresh_dirty t ls;
    if paused then begin
      (* admission backpressure: sockets stay unread (their bytes sit
         in the kernel, which is the peer's backpressure), but response
         flushing must go on or the queue could never drain *)
      (try ignore (Unix.select [ t.wake_r ] [] [] 0.05)
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      drain_wake t
    end
    else begin
      let timeout_ms = if finishing then 10 else 100 in
      let events = Evloop.wait t.ev ~timeout_ms in
      List.iter (fun ev -> handle_event t ls ev) events
    end;
    let nw = Unix.gettimeofday () in
    sweep t ls nw;
    if finishing then begin
      let drained =
        Hashtbl.fold (fun _ c acc -> acc && c.out_bytes = 0) ls.conns true
      in
      if drained || nw > t.finish_deadline then begin
        let cs = Hashtbl.fold (fun _ c acc -> c :: acc) ls.conns [] in
        List.iter (fun c -> loop_close t ls c) cs;
        finished := true
      end
    end
  done;
  Evloop.close t.ev

(* ----- lifecycle ------------------------------------------------------- *)

let bind_listen addr =
  match addr with
  | Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 512;
    let bound =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (a, p) -> Tcp (Unix.string_of_inet_addr a, p)
      | Unix.ADDR_UNIX _ -> addr
    in
    (fd, bound)
  | Unix_socket path ->
    if Sys.file_exists path then Unix.unlink path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 512;
    (fd, addr)

let start_backend ?telemetry ?store ?(queue_capacity = 256) ?(batch_limit = 64)
    ?(digest_every = 64) ?(resume_window = 1024) ?(outbox_capacity = 1024)
    ?follower_sndbuf ?follower ?http ?(ready_lag = 64) ?slow_ms ?slow_log
    ?(span_buffer = 1024) ?max_conns ?conn_sndbuf ~backend addr =
  if queue_capacity < 1 then
    invalid_arg "Server.start: queue_capacity must be >= 1";
  (match max_conns with
  | Some m when m < 1 -> invalid_arg "Server.start: max_conns must be >= 1"
  | _ -> ());
  if batch_limit < 1 then invalid_arg "Server.start: batch_limit must be >= 1";
  if digest_every < 1 then invalid_arg "Server.start: digest_every must be >= 1";
  if resume_window < 1 then
    invalid_arg "Server.start: resume_window must be >= 1";
  if outbox_capacity < 1 then
    invalid_arg "Server.start: outbox_capacity must be >= 1";
  if follower <> None && store <> None then
    invalid_arg "Server.start: a follower manages its own store";
  if ready_lag < 0 then invalid_arg "Server.start: ready_lag must be >= 0";
  if span_buffer < 1 then invalid_arg "Server.start: span_buffer must be >= 1";
  (match slow_ms with
  | Some ms when ms < 0. -> invalid_arg "Server.start: slow_ms must be >= 0"
  | _ -> ());
  (* a peer that vanishes mid-response must surface as EPIPE on the
     write, not as a process-killing signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* A restarting follower with a WAL resumes from its own disk: the
     mark says where in the leader's stream its log began, the local
     recovery replays what it had applied, and the subscribe asks only
     for the remainder. *)
  let backend, store, repl_epoch, rep_seq =
    match follower with
    | Some { wal = Some wal; _ } -> (
      match P.Repl.load_mark ~wal with
      | None -> (backend, None, 0, -1)
      | Some { P.Repl.epoch; base_seq } -> (
        match P.Store.resume_backend ?telemetry ~wal () with
        | Error _ -> (backend, None, 0, -1)
        | Ok (store, recovery) ->
          ( recovery.P.Store.backend,
            Some store,
            epoch,
            base_seq + P.Store.wal_records store )))
    | Some { wal = None; _ } -> (backend, None, 0, -1)
    | None ->
      let base = match store with Some s -> P.Store.wal_records s | None -> 0 in
      (backend, store, 0, base)
  in
  let listen_fd, bound = bind_listen addr in
  let http_fd, http_bound =
    match http with
    | None -> (None, None)
    | Some haddr ->
      let fd, hbound = bind_listen haddr in
      (Some fd, Some hbound)
  in
  let slow_out, slow_owned =
    match slow_ms with
    | None -> (None, false)
    | Some _ -> (
      match slow_log with
      | Some path -> (Some (open_out path), true)
      | None -> (Some stderr, false))
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      backend;
      store;
      ins = Option.map register_instruments telemetry;
      tel = telemetry;
      listen_fd;
      bound;
      queue = Queue.create ();
      capacity = queue_capacity;
      batch_limit;
      mu = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      stopping = false;
      stopped = false;
      next_cid = 1;
      clients = [];
      served_count = 0;
      loop_thread = None;
      admit_thread = None;
      ev = Evloop.create ();
      wake_r;
      wake_w;
      dirty = [];
      read_paused = false;
      loop_finish = false;
      finish_deadline = 0.;
      max_conns;
      conn_sndbuf;
      role = (match follower with Some _ -> Follower | None -> Leader);
      epoch = fresh_epoch ();
      rep_seq = max 0 rep_seq;
      ring = Queue.create ();
      resume_window;
      digest_every;
      outbox_capacity;
      follower_sndbuf;
      last_digest_seq = max 0 rep_seq;
      replicas = [];
      follower_cfg = follower;
      repl_epoch;
      repl_conn = None;
      force_snapshot = rep_seq < 0;
      repl_thread = None;
      leader_seq = max 0 rep_seq;
      span_buffer;
      spans_ring = Queue.create ();
      slow_ms;
      slow_out;
      slow_owned;
      ready_lag;
      http_fd;
      http_bound;
    }
  in
  t.loop_thread <- Some (Thread.create (fun () -> loop_run t) ());
  t.admit_thread <- Some (Thread.create (fun () -> admit_loop t) ());
  (match follower with
  | Some cfg -> t.repl_thread <- Some (Thread.create (fun () -> repl_loop t cfg) ())
  | None -> ());
  t

let start ?telemetry ?store ?queue_capacity ?batch_limit ?digest_every
    ?resume_window ?outbox_capacity ?follower_sndbuf ?follower ?http
    ?ready_lag ?slow_ms ?slow_log ?span_buffer ?max_conns ?conn_sndbuf ~net
    addr =
  start_backend ?telemetry ?store ?queue_capacity ?batch_limit ?digest_every
    ?resume_window ?outbox_capacity ?follower_sndbuf ?follower ?http
    ?ready_lag ?slow_ms ?slow_log ?span_buffer ?max_conns ?conn_sndbuf
    ~backend:(P.Backend.Net net) addr

let address t = t.bound
let http_address t = t.http_bound
let role t = t.role
let applied t = t.rep_seq
let backend t = t.backend

let network t =
  match t.backend with
  | P.Backend.Net net -> net
  | P.Backend.Mesh _ -> invalid_arg "Server.network: this server runs a mesh backend"

let current_store t = t.store

let spans t =
  Mutex.lock t.mu;
  let records = List.of_seq (Queue.to_seq t.spans_ring) in
  Mutex.unlock t.mu;
  List.map
    (fun sr -> (sr.sr_span, sr.sr_cid, sr.sr_start, sr.sr_total, sr.sr_stages))
    records

let promote t =
  if t.stopped then Error "server is stopped"
  else begin
    let w = { result = None; pcond = Condition.create () } in
    push t (Do_promote w);
    Mutex.lock t.mu;
    while w.result = None do
      Condition.wait w.pcond t.mu
    done;
    Mutex.unlock t.mu;
    Option.get w.result
  end

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Mutex.lock t.mu;
    t.stopping <- true;
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full;
    Mutex.unlock t.mu;
    (* the loop wakes through its pipe, sees [stopping], and stops
       accepting and reading on its own — no dial-a-throwaway-
       connection trick needed any more *)
    wake t;
    (* SHUTDOWN_RECEIVE (not ALL) on every connection: a detached
       (replica-path) reader blocked in recv wakes on EOF and enqueues
       its final [Gone] (the capacity bound is waived while stopping),
       and the write sides stay open so every request already executed
       still gets its response — an answered request is one the client
       will not retry against the next leader.  For loop-owned
       connections this merely accelerates EOF detection. *)
    Mutex.lock t.mu;
    let live = t.clients in
    Mutex.unlock t.mu;
    List.iter
      (fun c ->
        try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      live;
    (* Unblock the replication client if this node follows a leader. *)
    Mutex.lock t.mu;
    let conn = t.repl_conn in
    Mutex.unlock t.mu;
    Option.iter shutdown_conn conn;
    Option.iter Thread.join t.admit_thread;
    Option.iter Thread.join t.repl_thread;
    (* The admission thread is done, so the outboxes are final: let
       each replica's sender drain what is queued (a live follower
       takes milliseconds; a stuck one is cut off after the grace
       period), then tear the connections down. *)
    Mutex.lock t.mu;
    let reps = t.replicas in
    let goodbye = frame_to_follower (P.Repl.Goodbye { reason = "shutdown" }) in
    List.iter
      (fun f ->
        if f.client.open_ then begin
          Queue.add goodbye f.outbox;
          f.closing <- true;
          Condition.broadcast f.fcond
        end)
      reps;
    Mutex.unlock t.mu;
    let deadline = 500 (* x 10ms = 5s *) in
    let rec wait_drained n =
      if n < deadline then begin
        Mutex.lock t.mu;
        let drained =
          List.for_all
            (fun f -> Queue.is_empty f.outbox || not f.client.open_)
            reps
        in
        Mutex.unlock t.mu;
        if not drained then begin
          Thread.delay 0.01;
          wait_drained (n + 1)
        end
      end
    in
    wait_drained 0;
    List.iter (fun f -> drop_replica t f) reps;
    List.iter (fun f -> Option.iter Thread.join f.sender) reps;
    (* Every response is enqueued by now: tell the loop to flush what
       remains, close its connections and exit, bounded by a grace
       deadline so one unreadable peer cannot hold shutdown hostage. *)
    t.finish_deadline <- Unix.gettimeofday () +. 5.0;
    t.loop_finish <- true;
    wake t;
    Option.iter Thread.join t.loop_thread;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.bound with
    | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ());
    (match t.http_fd with
    | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    (match t.http_bound with
    | Some (Unix_socket path) -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
    | _ -> ());
    (* stragglers: detached connections whose threads have not closed
       them yet; [close_client] is a no-op on anything already closed *)
    Mutex.lock t.mu;
    let leftover = t.clients in
    Mutex.unlock t.mu;
    List.iter (fun c -> close_client t c) leftover;
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
    match t.slow_out with
    | Some oc ->
      (try flush oc with Sys_error _ -> ());
      if t.slow_owned then ( try close_out oc with Sys_error _ -> ())
    | None -> ()
  end

let served t = t.served_count
