/* Readiness-notification stubs for the event-driven server core.
 *
 * On Linux these wrap epoll so one loop thread can watch tens of
 * thousands of connections — Unix.select tops out at FD_SETSIZE
 * (1024) descriptors, which the idle-connection target blows through.
 * Everywhere else every function reports "unavailable" and the OCaml
 * side (Evloop) falls back to a select-based backend.
 *
 * File descriptors cross the boundary as the plain ints they are on
 * every Unix; all results are immediates, so no GC roots are needed
 * beyond the one allocation in wdm_epoll_wait.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/threads.h>

#ifndef _WIN32
#include <sys/resource.h>
#endif

#ifdef __linux__

#include <sys/epoll.h>
#include <errno.h>
#include <string.h>
#include <unistd.h>

#define WDM_EV_MAX 512

CAMLprim value wdm_epoll_create(value unit)
{
  (void)unit;
  return Val_int(epoll_create1(0)); /* -1: kernel refused; caller falls back */
}

/* op: 0 = add, 1 = modify, 2 = delete */
CAMLprim value wdm_epoll_ctl(value vep, value vop, value vfd, value vread,
                             value vwrite)
{
  struct epoll_event ev;
  static const int ops[3] = { EPOLL_CTL_ADD, EPOLL_CTL_MOD, EPOLL_CTL_DEL };
  memset(&ev, 0, sizeof ev);
  ev.events = (Bool_val(vread) ? EPOLLIN : 0u)
            | (Bool_val(vwrite) ? EPOLLOUT : 0u);
  ev.data.fd = Int_val(vfd);
  if (epoll_ctl(Int_val(vep), ops[Int_val(vop)], Int_val(vfd), &ev) != 0)
    return Val_int(-errno);
  return Val_int(0);
}

/* Returns a flat int array [fd0; flags0; fd1; flags1; ...] with flags
 * bit 0 = readable, bit 1 = writable.  ERR/HUP are folded into both
 * bits: the caller's read/write attempt is what surfaces the error. */
CAMLprim value wdm_epoll_wait(value vep, value vtimeout_ms)
{
  CAMLparam2(vep, vtimeout_ms);
  CAMLlocal1(res);
  struct epoll_event evs[WDM_EV_MAX];
  int ep = Int_val(vep);
  int timeout = Int_val(vtimeout_ms);
  int n, i;

  caml_release_runtime_system();
  n = epoll_wait(ep, evs, WDM_EV_MAX, timeout);
  caml_acquire_runtime_system();

  if (n <= 0) /* timeout, or EINTR: both mean "nothing this round" */
    CAMLreturn(Atom(0));

  res = caml_alloc(2 * n, 0);
  for (i = 0; i < n; i++) {
    int flags = 0;
    if (evs[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) flags |= 1;
    if (evs[i].events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) flags |= 2;
    Store_field(res, 2 * i, Val_int(evs[i].data.fd));
    Store_field(res, 2 * i + 1, Val_int(flags));
  }
  CAMLreturn(res);
}

#else /* !__linux__ */

CAMLprim value wdm_epoll_create(value unit)
{
  (void)unit;
  return Val_int(-1);
}

CAMLprim value wdm_epoll_ctl(value vep, value vop, value vfd, value vread,
                             value vwrite)
{
  (void)vep; (void)vop; (void)vfd; (void)vread; (void)vwrite;
  return Val_int(-1);
}

CAMLprim value wdm_epoll_wait(value vep, value vtimeout_ms)
{
  (void)vep; (void)vtimeout_ms;
  return Atom(0);
}

#endif /* __linux__ */

/* Gather-write a batch of queued frames with one writev(2).  [vstrs]
 * is an array of OCaml strings (at most WDM_IOV_MAX are sent per
 * call), [voff] how many bytes of the first one were already written.
 * Returns bytes written, -1 for EAGAIN/EWOULDBLOCK, -2 for EINTR, -3
 * for a dead peer (EPIPE/ECONNRESET/...).
 *
 * The runtime lock is deliberately NOT released: the iovec bases
 * point into the OCaml heap, and a GC from another thread could move
 * the strings mid-syscall.  The fds are nonblocking, so the call
 * cannot stall the loop. */
#ifndef _WIN32
#include <sys/uio.h>
#include <errno.h>

#define WDM_IOV_MAX 64

CAMLprim value wdm_writev(value vfd, value vstrs, value voff)
{
  struct iovec iov[WDM_IOV_MAX];
  int count = (int)Wosize_val(vstrs);
  long off = Long_val(voff);
  int i, used = 0;
  ssize_t w;
  if (count > WDM_IOV_MAX) count = WDM_IOV_MAX;
  for (i = 0; i < count; i++) {
    value s = Field(vstrs, i);
    const char *base = String_val(s);
    size_t len = caml_string_length(s);
    if (i == 0) {
      if ((size_t)off >= len) continue; /* defensive: fully-sent head */
      base += off;
      len -= (size_t)off;
    }
    if (len == 0) continue;
    iov[used].iov_base = (void *)base;
    iov[used].iov_len = len;
    used++;
  }
  if (used == 0) return Val_long(0);
  w = writev(Int_val(vfd), iov, used);
  if (w >= 0) return Val_long((long)w);
  if (errno == EAGAIN || errno == EWOULDBLOCK) return Val_long(-1);
  if (errno == EINTR) return Val_long(-2);
  return Val_long(-3);
}
#else
CAMLprim value wdm_writev(value vfd, value vstrs, value voff)
{
  (void)vfd; (void)vstrs; (void)voff;
  return Val_long(-3);
}
#endif

/* Raise RLIMIT_NOFILE's soft limit toward [want] (capped at the hard
 * limit).  Returns the soft limit now in force, or -1 if it cannot
 * even be read.  Needed by the idle-connection soak and bench: many
 * distros default the soft limit to 1024. */
CAMLprim value wdm_raise_nofile(value vwant)
{
#ifdef _WIN32
  (void)vwant;
  return Val_long(-1);
#else
  struct rlimit rl;
  rlim_t want = (rlim_t)Long_val(vwant);
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return Val_long(-1);
  if (rl.rlim_cur < want) {
    struct rlimit bid = rl;
    bid.rlim_cur = (rl.rlim_max == RLIM_INFINITY || want < rl.rlim_max)
                     ? want
                     : rl.rlim_max;
    if (setrlimit(RLIMIT_NOFILE, &bid) == 0) rl = bid;
  }
  if (rl.rlim_cur == RLIM_INFINITY) return Val_long(1 << 24);
  return Val_long((long)rl.rlim_cur);
#endif
}
