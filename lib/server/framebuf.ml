module Wire = Wdm_persist.Wire
module Crc32 = Wdm_persist.Crc32

(* A growable byte accumulator with amortized-O(1) appends and an
   incremental frame decoder.  Data lives in [buf.(start .. start+len)];
   consuming advances [start] and appending compacts lazily, so a
   steady stream of small frames never reallocates. *)
type t = { mutable buf : Bytes.t; mutable start : int; mutable len : int }

let create ?(capacity = 4096) () =
  { buf = Bytes.create (max 8 capacity); start = 0; len = 0 }

let length t = t.len

let compact t =
  if t.start > 0 then begin
    Bytes.blit t.buf t.start t.buf 0 t.len;
    t.start <- 0
  end

let ensure t extra =
  if t.start + t.len + extra > Bytes.length t.buf then begin
    compact t;
    if t.len + extra > Bytes.length t.buf then begin
      let cap = ref (max 8 (Bytes.length t.buf)) in
      while t.len + extra > !cap do
        cap := !cap * 2
      done;
      let grown = Bytes.create !cap in
      Bytes.blit t.buf 0 grown 0 t.len;
      t.buf <- grown
    end
  end

let add_subbytes t src ~off ~len =
  if len < 0 || off < 0 || off + len > Bytes.length src then
    invalid_arg "Framebuf.add_subbytes";
  ensure t len;
  Bytes.blit src off t.buf (t.start + t.len) len;
  t.len <- t.len + len

let add_string t s =
  let len = String.length s in
  ensure t len;
  Bytes.blit_string s 0 t.buf (t.start + t.len) len;
  t.len <- t.len + len

let take t n =
  if n < 0 || n > t.len then invalid_arg "Framebuf.take";
  let s = Bytes.sub_string t.buf t.start n in
  t.start <- t.start + n;
  t.len <- t.len - n;
  if t.len = 0 then t.start <- 0;
  s

let contents t = Bytes.sub_string t.buf t.start t.len

let index t c =
  let rec go i =
    if i >= t.len then None
    else if Bytes.get t.buf (t.start + i) = c then Some i
    else go (i + 1)
  in
  go 0

let u32_at t i =
  let byte k = Char.code (Bytes.get t.buf (t.start + i + k)) in
  byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)

type frame = Frame of string | Bad of string | Need of int

(* The streaming sibling of [Wire.read_frame]: same 4-byte length +
   4-byte CRC prelude, but over a buffer that may end mid-frame.
   [Need n] means at least [n] more bytes must arrive before a verdict;
   a peer that closes while we still [Need] died mid-frame. *)
let next_frame t =
  if t.len < 8 then Need (8 - t.len)
  else begin
    let len = u32_at t 0 in
    let crc = u32_at t 4 in
    if len = 0 || len > Wire.max_payload then
      Bad (Printf.sprintf "implausible record length %d" len)
    else if t.len < 8 + len then Need (8 + len - t.len)
    else begin
      ignore (take t 8);
      let payload = take t len in
      if Crc32.string payload <> crc then Bad "CRC mismatch" else Frame payload
    end
  end
