module Network = Wdm_multistage.Network
module P = Wdm_persist

type t = {
  mutable addrs : Server.address list;  (** head = the one to try next *)
  dial_timeout : float;
  deadline : float;
  max_attempts : int;
  backoff_floor : float;
  backoff_cap : float;
  mutable conn : Client.t option;
  mutable closed : bool;
  mutable reconnects : int;
}

let create ?(dial_timeout = 2.0) ?(deadline = 10.0) ?(max_attempts = 12)
    ?(backoff = 0.05) ?(backoff_cap = 2.0) addrs =
  if addrs = [] then invalid_arg "Resilient.create: no addresses";
  if max_attempts < 1 then
    invalid_arg "Resilient.create: max_attempts must be >= 1";
  {
    addrs;
    dial_timeout;
    deadline;
    max_attempts;
    backoff_floor = backoff;
    backoff_cap;
    conn = None;
    closed = false;
    reconnects = 0;
  }

let reconnects t = t.reconnects

let close t =
  t.closed <- true;
  Option.iter Client.close t.conn;
  t.conn <- None

let rotate t =
  match t.addrs with [] -> () | a :: rest -> t.addrs <- rest @ [ a ]

let drop_conn t =
  Option.iter Client.close t.conn;
  t.conn <- None

(* One dial attempt against the current head address. *)
let ensure_conn t =
  match t.conn with
  | Some c -> Ok c
  | None -> (
    match
      Client.connect ~dial_timeout:t.dial_timeout ~deadline:t.deadline
        (List.hd t.addrs)
    with
    | Ok c ->
      t.conn <- Some c;
      Ok c
    | Error e -> Error e)

(* Every failure mode funnels here: drop the connection, move to the
   next address, sleep the (capped, doubling) backoff.  Rotating on
   every retry is what turns "the leader died" into "found the
   promoted follower" without any discovery machinery. *)
let retry t ~backoff =
  drop_conn t;
  rotate t;
  t.reconnects <- t.reconnects + 1;
  Thread.delay !backoff;
  backoff := min t.backoff_cap (!backoff *. 2.)

let request t req =
  if t.closed then Error Client.Closed
  else begin
    let backoff = ref t.backoff_floor in
    let attempts = ref 0 in
    let result = ref None in
    while !result = None && !attempts < t.max_attempts do
      incr attempts;
      match ensure_conn t with
      | Error e ->
        if !attempts >= t.max_attempts then result := Some (Error e)
        else retry t ~backoff
      | Ok c -> (
        match Client.request c req with
        | Ok (P.Resp.Not_leader _) ->
          (* answered, but by a follower: the leader is elsewhere —
             possibly not promoted yet, so this also backs off *)
          if !attempts >= t.max_attempts then
            result := Some (Error (Client.Transport "no leader found"))
          else retry t ~backoff
        | Ok _ as ok -> result := Some ok
        | Error Client.Closed ->
          (* stale handle from a previous failure *)
          drop_conn t
        | Error e ->
          if !attempts >= t.max_attempts then result := Some (Error e)
          else retry t ~backoff)
    done;
    match !result with
    | Some r -> r
    | None -> Error (Client.Transport "retries exhausted")
  end

let digest t =
  match request t P.Resp.Get_digest with
  | Ok (P.Resp.Digest_is d) -> Ok d
  | Ok resp ->
    Error
      (Client.Protocol (Format.asprintf "unexpected response: %a" P.Resp.pp resp))
  | Error _ as e -> e

let churn_sut ?(on_admit = fun _ -> ()) t =
  {
    Wdm_traffic.Churn.connect =
      (fun conn ->
        match request t (P.Resp.Admit (P.Op.Connect conn)) with
        | Ok (P.Resp.Admitted { route; _ }) ->
          on_admit route;
          Ok route.Network.id
        | Ok (P.Resp.Refused e) -> Error e
        | Ok resp ->
          failwith
            (Format.asprintf "Resilient.churn_sut: unexpected response: %a"
               P.Resp.pp resp)
        | Error e ->
          failwith ("Resilient.churn_sut: " ^ Client.error_to_string e));
    disconnect =
      (fun id ->
        match request t (P.Resp.Admit (P.Op.Disconnect id)) with
        | Ok (P.Resp.Released _) -> ()
        | Ok resp ->
          failwith
            (Format.asprintf "Resilient.churn_sut: unexpected response: %a"
               P.Resp.pp resp)
        | Error e ->
          failwith ("Resilient.churn_sut: " ^ Client.error_to_string e));
  }
