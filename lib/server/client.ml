module Network = Wdm_multistage.Network
module P = Wdm_persist

type t = { fd : Unix.file_descr; mutable closed : bool }

let sockaddr_of = function
  | Server.Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    (Unix.PF_INET, Unix.ADDR_INET (inet, port))
  | Server.Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)

let connect addr =
  match
    let domain, sockaddr = sockaddr_of addr in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    (try Unix.connect fd sockaddr
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  with
  | exception Unix.Unix_error (err, _, _) ->
    Error
      (Format.asprintf "cannot connect to %a: %s" Server.pp_address addr
         (Unix.error_message err))
  | exception Not_found ->
    Error (Format.asprintf "cannot resolve %a" Server.pp_address addr)
  | fd -> (
    match
      Protocol.write_all fd Protocol.client_hello;
      Protocol.read_exactly fd P.Wire.header_len
    with
    | exception (Unix.Unix_error _ | Failure _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error "handshake failed: server closed the connection"
    | None ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error "handshake failed: no server hello"
    | Some hello -> (
      match Protocol.check_server_hello hello with
      | Ok () -> Ok { fd; closed = false }
      | Error e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error ("handshake failed: " ^ e)))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* A transport failure mid-exchange (partial send, EOF or a bad frame
   mid-receive) desynchronizes the byte stream: another request on the
   same fd could misframe and return garbage.  Close the connection so
   every subsequent request fails fast instead.  A CRC-valid frame
   whose payload merely fails to decode leaves the stream aligned, so
   that case keeps the connection. *)
let request t req =
  if t.closed then Error "client is closed"
  else
    let broken msg =
      close t;
      Error msg
    in
    let b = Buffer.create 64 in
    P.Resp.encode_request b req;
    match Protocol.send_frame t.fd (Buffer.contents b) with
    | exception Unix.Unix_error (err, _, _) ->
      broken ("send failed: " ^ Unix.error_message err)
    | () -> (
      match Protocol.recv_frame t.fd with
      | exception Unix.Unix_error (err, _, _) ->
        broken ("receive failed: " ^ Unix.error_message err)
      | Protocol.Eof -> broken "server closed the connection"
      | Protocol.Bad reason -> broken ("bad response frame: " ^ reason)
      | Protocol.Frame payload -> P.Resp.decode_string payload)

let digest t =
  match request t P.Resp.Get_digest with
  | Ok (P.Resp.Digest_is d) -> Ok d
  | Ok (P.Resp.Server_error e) -> Error e
  | Ok resp -> Error (Format.asprintf "unexpected response: %a" P.Resp.pp resp)
  | Error _ as e -> e

let stats_json t =
  match request t P.Resp.Get_stats with
  | Ok (P.Resp.Stats_json s) -> Ok s
  | Ok (P.Resp.Server_error e) -> Error e
  | Ok resp -> Error (Format.asprintf "unexpected response: %a" P.Resp.pp resp)
  | Error _ as e -> e

let churn_sut ?(on_admit = fun _ -> ()) t =
  {
    Wdm_traffic.Churn.connect =
      (fun conn ->
        match request t (P.Resp.Admit (P.Op.Connect conn)) with
        | Ok (P.Resp.Admitted { route; _ }) ->
          on_admit route;
          Ok route.Network.id
        | Ok (P.Resp.Refused e) -> Error e
        | Ok resp ->
          failwith
            (Format.asprintf "Client.churn_sut: unexpected response: %a"
               P.Resp.pp resp)
        | Error e -> failwith ("Client.churn_sut: " ^ e));
    disconnect =
      (fun id ->
        match request t (P.Resp.Admit (P.Op.Disconnect id)) with
        | Ok (P.Resp.Released _) -> ()
        | Ok resp ->
          failwith
            (Format.asprintf "Client.churn_sut: unexpected response: %a"
               P.Resp.pp resp)
        | Error e -> failwith ("Client.churn_sut: " ^ e));
  }
