module Network = Wdm_multistage.Network
module P = Wdm_persist

type error =
  | Timeout
  | Closed
  | Transport of string
  | Protocol of string

let pp_error ppf = function
  | Timeout -> Format.pp_print_string ppf "request deadline exceeded"
  | Closed -> Format.pp_print_string ppf "client is closed"
  | Transport e -> Format.fprintf ppf "transport: %s" e
  | Protocol e -> Format.fprintf ppf "protocol: %s" e

let error_to_string e = Format.asprintf "%a" pp_error e

type t = {
  fd : Unix.file_descr;
  mutable closed : bool;
  mutable deadline : float;
  spans : bool;  (* both hellos carried Protocol.flag_spans *)
  span_tag : int;  (* process-unique per connection *)
  mutable span_seq : int;
  mutable last_span : int option;
}

(* Span ids are [tag * 2^32 + seq]: unique within the process without
   cross-thread coordination on the request path (connects are rare, so
   they can afford a lock; requests cannot). *)
let span_tag_counter = ref 0
let span_tag_mu = Mutex.create ()

let next_span_tag () =
  Mutex.lock span_tag_mu;
  incr span_tag_counter;
  let tag = !span_tag_counter land 0x3fffff in
  Mutex.unlock span_tag_mu;
  tag

let sockaddr_of = function
  | Server.Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    (Unix.PF_INET, Unix.ADDR_INET (inet, port))
  | Server.Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)

(* EAGAIN/EWOULDBLOCK out of a socket with SO_RCVTIMEO set is the
   deadline expiring, not a transport fault. *)
let error_of_unix = function
  | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT -> Timeout
  | err -> Transport (Unix.error_message err)

(* A bounded connect: non-blocking dial, wait for writability, then
   read the pending error the kernel stored for the attempt.  SIGPIPE
   is ignored first: a server that closes mid-request must surface as
   EPIPE on the write — a typed [Transport] error — not kill the
   process. *)
let dial ~dial_timeout sockaddr domain =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  let give_up = Unix.gettimeofday () +. dial_timeout in
  match
    Unix.set_nonblock fd;
    (let rec attempt () =
       match Unix.connect fd sockaddr with
       | () -> ()
       | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
         when domain = Unix.PF_UNIX ->
         (* a unix socket answers EAGAIN when the listener's backlog is
            full, and unlike TCP's EINPROGRESS the attempt was NOT
            started — waiting for writability would read garbage from
            getsockopt.  Back off and redial until the timeout. *)
         if Unix.gettimeofday () >= give_up then
           raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""));
         Unix.sleepf 0.005;
         attempt ()
       | exception
           Unix.Unix_error
             ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _)
         -> (
         let left = give_up -. Unix.gettimeofday () in
         match Unix.select [] [ fd ] [] (Float.max 0.01 left) with
         | _, [], _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
         | _ -> (
           match Unix.getsockopt_error fd with
           | None -> ()
           | Some err -> raise (Unix.Unix_error (err, "connect", ""))))
     in
     attempt ());
    Unix.clear_nonblock fd;
    fd
  with
  | fd -> Ok fd
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (error_of_unix err)

let connect ?(dial_timeout = 5.0) ?(deadline = 30.0) addr =
  match sockaddr_of addr with
  | exception Not_found ->
    Error (Transport (Format.asprintf "cannot resolve %a" Server.pp_address addr))
  | domain, sockaddr -> (
    match dial ~dial_timeout sockaddr domain with
    | Error Timeout -> Error Timeout
    | Error (Transport e) ->
      Error
        (Transport
           (Format.asprintf "cannot connect to %a: %s" Server.pp_address addr e))
    | Error e -> Error e
    | Ok fd -> (
      (* the deadline covers the handshake too: a server that accepts
         and never answers must not hang the caller *)
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO deadline
       with Unix.Unix_error _ -> ());
      match
        Protocol.write_all fd Protocol.client_hello_spans;
        Protocol.read_exactly fd P.Wire.header_len
      with
      | exception Unix.Unix_error (err, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (error_of_unix err)
      | Protocol.Eof_clean ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Transport "handshake failed: no server hello")
      | Protocol.Eof_torn _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Transport "handshake failed: server closed mid-hello")
      | Protocol.Exact hello -> (
        match Protocol.check_server_hello hello with
        | Ok () ->
          (* a pre-flags server replies with zeroed padding, so the
             connection silently downgrades to span-less framing *)
          Ok
            {
              fd;
              closed = false;
              deadline;
              spans = Protocol.hello_has_spans hello;
              span_tag = next_span_tag ();
              span_seq = 0;
              last_span = None;
            }
        | Error e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Protocol ("handshake failed: " ^ e)))))

let spans t = t.spans
let last_span t = t.last_span

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* A transport failure mid-exchange (partial send, EOF, a bad frame,
   or a deadline expiring with the response half-read) desynchronizes
   the byte stream: another request on the same fd could misframe and
   return garbage.  Close the connection so every subsequent request
   fails fast instead.  A CRC-valid frame whose payload merely fails
   to decode leaves the stream aligned, so that case keeps the
   connection. *)
let request ?deadline t req =
  if t.closed then Error Closed
  else begin
    (match deadline with
    | Some d when d <> t.deadline -> (
      t.deadline <- d;
      try Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO d
      with Unix.Unix_error _ -> ())
    | _ -> ());
    let broken err =
      close t;
      Error err
    in
    let b = Buffer.create 64 in
    P.Resp.encode_request b req;
    if t.spans then begin
      t.span_seq <- t.span_seq + 1;
      let span = (t.span_tag * 0x100000000) + t.span_seq in
      t.last_span <- Some span;
      P.Wire.put_int b span
    end;
    match Protocol.send_frame t.fd (Buffer.contents b) with
    | exception Unix.Unix_error (err, _, _) -> broken (error_of_unix err)
    | () -> (
      match Protocol.recv_frame t.fd with
      | exception Unix.Unix_error (err, _, _) -> broken (error_of_unix err)
      | Protocol.Eof -> broken (Transport "server closed the connection")
      | Protocol.Bad reason ->
        (* a peer dying mid-frame is the connection failing, not the
           protocol being violated *)
        if String.length reason >= 11 && String.sub reason 0 11 = "peer closed"
        then broken (Transport ("server closed mid-frame: " ^ reason))
        else broken (Protocol ("bad response frame: " ^ reason))
      | Protocol.Frame payload -> (
        match P.Resp.decode_string payload with
        | Ok resp -> Ok resp
        | Error e -> Error (Protocol e)))
  end

let digest t =
  match request t P.Resp.Get_digest with
  | Ok (P.Resp.Digest_is d) -> Ok d
  | Ok resp ->
    Error (Protocol (Format.asprintf "unexpected response: %a" P.Resp.pp resp))
  | Error _ as e -> e

let stats_json t =
  match request t P.Resp.Get_stats with
  | Ok (P.Resp.Stats_json s) -> Ok s
  | Ok resp ->
    Error (Protocol (Format.asprintf "unexpected response: %a" P.Resp.pp resp))
  | Error _ as e -> e

let promote t =
  match request t P.Resp.Promote with
  | Ok (P.Resp.Promoted { seq }) -> Ok seq
  | Ok (P.Resp.Server_error e) -> Error (Protocol e)
  | Ok resp ->
    Error (Protocol (Format.asprintf "unexpected response: %a" P.Resp.pp resp))
  | Error _ as e -> e

(* Pipelining: many requests in one [Batch] frame, one [Batch_reply]
   back — one syscall round-trip instead of [n].  An answer of the
   wrong shape or arity desynchronizes request/response pairing the
   same way a torn frame does, so it closes the client. *)
let request_batch ?deadline t reqs =
  match reqs with
  | [] -> Ok []
  | _ when List.length reqs > P.Resp.max_batch ->
    Error
      (Protocol
         (Printf.sprintf "batch of %d exceeds the wire limit of %d"
            (List.length reqs) P.Resp.max_batch))
  | _ -> (
    match request ?deadline t (P.Resp.Batch reqs) with
    | Ok (P.Resp.Batch_reply rs) when List.length rs = List.length reqs -> Ok rs
    | Ok (P.Resp.Batch_reply rs) ->
      close t;
      Error
        (Protocol
           (Printf.sprintf "batch reply arity %d for %d requests"
              (List.length rs) (List.length reqs)))
    | Ok resp ->
      close t;
      Error
        (Protocol (Format.asprintf "unexpected batch response: %a" P.Resp.pp resp))
    | Error _ as e -> e)

let churn_sut ?(on_admit = fun _ -> ()) t =
  {
    Wdm_traffic.Churn.connect =
      (fun conn ->
        match request t (P.Resp.Admit (P.Op.Connect conn)) with
        | Ok (P.Resp.Admitted { route; _ }) ->
          on_admit route;
          Ok route.Network.id
        | Ok (P.Resp.Refused e) -> Error e
        | Ok resp ->
          failwith
            (Format.asprintf "Client.churn_sut: unexpected response: %a"
               P.Resp.pp resp)
        | Error e -> failwith ("Client.churn_sut: " ^ error_to_string e));
    disconnect =
      (fun id ->
        match request t (P.Resp.Admit (P.Op.Disconnect id)) with
        | Ok (P.Resp.Released _) -> ()
        | Ok resp ->
          failwith
            (Format.asprintf "Client.churn_sut: unexpected response: %a"
               P.Resp.pp resp)
        | Error e -> failwith ("Client.churn_sut: " ^ error_to_string e));
  }

(* The pipelined sut keeps the op order a sequential client would
   produce: disconnects are buffered, and any buffered run is flushed
   in the same [Batch] immediately {e before} the next connect — the
   server executes sub-requests in order, so state digests come out
   identical to the one-request-at-a-time path.  Only connects need
   their answers synchronously (the generator routes future disconnects
   by the returned id); disconnects' answers are checked at flush. *)
let churn_sut_pipelined ?(on_admit = fun _ -> ()) ?(depth = 64) t =
  if depth < 1 then invalid_arg "Client.churn_sut_pipelined: depth must be >= 1";
  let depth = min depth (P.Resp.max_batch - 1) in
  let pending = ref [] (* buffered disconnects, newest first *) in
  let npending = ref 0 in
  let unexpected resp =
    failwith
      (Format.asprintf "Client.churn_sut_pipelined: unexpected response: %a"
         P.Resp.pp resp)
  in
  let flush_with extra =
    let reqs = List.rev_append !pending extra in
    pending := [];
    npending := 0;
    if reqs = [] then []
    else
      match request_batch t reqs with
      | Ok rs -> rs
      | Error e -> failwith ("Client.churn_sut_pipelined: " ^ error_to_string e)
  in
  let expect_released rs =
    List.iter (function P.Resp.Released _ -> () | r -> unexpected r) rs
  in
  let sut =
    {
      Wdm_traffic.Churn.connect =
        (fun conn ->
          match
            List.rev (flush_with [ P.Resp.Admit (P.Op.Connect conn) ])
          with
          | [] -> assert false
          | last :: released_rev ->
            expect_released released_rev;
            (match last with
            | P.Resp.Admitted { route; _ } ->
              on_admit route;
              Ok route.Network.id
            | P.Resp.Refused e -> Error e
            | r -> unexpected r));
      disconnect =
        (fun id ->
          pending := P.Resp.Admit (P.Op.Disconnect id) :: !pending;
          incr npending;
          if !npending >= depth then expect_released (flush_with []));
    }
  in
  let flush () = expect_released (flush_with []) in
  (sut, flush)
