open Wdm_core
open Wdm_multistage
module Churn = Wdm_traffic.Churn
module Fanout = Wdm_traffic.Fanout

type measurement = {
  m : int;
  attempts : int;
  blocked : int;
  probability : float;
}

let churn_sut t =
  {
    Churn.connect =
      (fun c ->
        match Network.connect t c with
        | Ok route -> Ok route.Network.id
        | Error e -> Error e);
    disconnect = (fun id -> ignore (Network.disconnect t id));
  }

let run_once ~seed ~steps ~fanout ~teardown_bias ~construction ~output_model topo =
  let t = Network.create ~construction ~output_model topo in
  let spec = Topology.spec topo in
  Churn.run (Random.State.make [| seed |]) ~spec ~model:output_model ~fanout
    ~steps ~teardown_bias (churn_sut t)

let blocking_vs_m ?(seeds = [ 1; 2; 3; 4; 5 ]) ?(steps = 400)
    ?(fanout = Fanout.Zipf { max = 64; s = 1.1 }) ?(teardown_bias = 0.3)
    ~construction ~output_model ~n ~r ~k ~ms () =
  (* every (m, seed) run owns all its state: fan out over domains *)
  let runs =
    Parallel.map
      (fun (m, seed) ->
        let topo = Topology.make_exn ~n ~m ~r ~k in
        let stats =
          run_once ~seed ~steps ~fanout ~teardown_bias ~construction
            ~output_model topo
        in
        (m, stats))
      (List.concat_map (fun m -> List.map (fun s -> (m, s)) seeds) ms)
  in
  List.map
    (fun m ->
      let attempts, blocked =
        List.fold_left
          (fun (a, b) (m', stats) ->
            if m' = m then (a + stats.Churn.attempts, b + stats.Churn.blocked)
            else (a, b))
          (0, 0) runs
      in
      {
        m;
        attempts;
        blocked;
        probability =
          (if attempts = 0 then 0.
           else float_of_int blocked /. float_of_int attempts);
      })
    ms

let blocking_table ~construction ~output_model ~n ~r ~k =
  let eval =
    match construction with
    | Network.Msw_dominant -> Conditions.msw_dominant ~n ~r
    | Network.Maw_dominant -> Conditions.maw_dominant ~n ~r ~k
  in
  let m_min = eval.Conditions.m_min in
  let ms =
    List.sort_uniq Int.compare
      (List.filter (fun m -> m >= n) [ n; (n + m_min) / 2; m_min - 1; m_min; m_min + 1 ])
  in
  let results =
    blocking_vs_m ~construction ~output_model ~n ~r ~k ~ms ()
  in
  let cname =
    match construction with
    | Network.Msw_dominant -> "MSW-dominant"
    | Network.Maw_dominant -> "MAW-dominant"
  in
  let t =
    Table.make
      ~title:
        (Format.asprintf
           "Blocking probability vs m (%s, %a, n=%d r=%d k=%d, m_min=%d)" cname
           Model.pp output_model n r k m_min)
      ~header:[ "m"; "attempts"; "blocked"; "P(block)"; "note" ]
      ()
  in
  List.iter
    (fun res ->
      Table.add_row t
        [
          string_of_int res.m;
          string_of_int res.attempts;
          string_of_int res.blocked;
          Printf.sprintf "%.4f" res.probability;
          (if res.m >= m_min then "m >= m_min (theorem: nonblocking)" else "");
        ])
    results;
  t

let construction_ablation ~n ~r ~k ~ms =
  let t =
    Table.make
      ~title:
        (Printf.sprintf
           "Construction ablation at equal m (network model MAW, n=%d r=%d k=%d)"
           n r k)
      ~header:[ "m"; "MSW-dom blocked"; "MAW-dom blocked"; "attempts each" ]
      ()
  in
  List.iter
    (fun m ->
      let measure construction =
        match
          blocking_vs_m ~construction ~output_model:Model.MAW ~n ~r ~k ~ms:[ m ] ()
        with
        | [ res ] -> res
        | _ -> assert false
      in
      let a = measure Network.Msw_dominant in
      let b = measure Network.Maw_dominant in
      Table.add_row t
        [
          string_of_int m;
          string_of_int a.blocked;
          string_of_int b.blocked;
          string_of_int a.attempts;
        ])
    ms;
  t

let blocking_vs_load ?(seeds = [ 11; 12; 13 ]) ?(steps = 500) ~construction
    ~output_model ~n ~r ~k ~m () =
  let topo = Topology.make_exn ~n ~m ~r ~k in
  let t =
    Table.make
      ~title:
        (Format.asprintf "Blocking vs offered load (%a, n=%d r=%d k=%d, m=%d)"
           Model.pp output_model n r k m)
      ~header:[ "teardown bias"; "attempts"; "blocked"; "P(block)"; "mean util %" ]
      ()
  in
  List.iter
    (fun bias ->
      let attempts = ref 0 and blocked = ref 0 and util = ref 0. in
      List.iter
        (fun seed ->
          let net = Network.create ~construction ~output_model topo in
          let stats =
            Churn.run
              (Random.State.make [| seed |])
              ~spec:(Topology.spec topo) ~model:output_model
              ~fanout:(Fanout.Zipf { max = n * r; s = 1.1 })
              ~steps ~teardown_bias:bias (churn_sut net)
          in
          attempts := !attempts + stats.Churn.attempts;
          blocked := !blocked + stats.Churn.blocked;
          util := !util +. Network.utilization net)
        seeds;
      Table.add_row t
        [
          Printf.sprintf "%.2f" bias;
          string_of_int !attempts;
          string_of_int !blocked;
          Printf.sprintf "%.4f"
            (if !attempts = 0 then 0.
             else float_of_int !blocked /. float_of_int !attempts);
          Printf.sprintf "%.1f" (100. *. !util /. float_of_int (List.length seeds));
        ])
    [ 0.6; 0.45; 0.3; 0.15; 0.05 ];
  t

let erlang_curve ?(seed = 33) ?(horizon = 300.) ~construction ~output_model ~n
    ~r ~k ~m ~offered () =
  let topo = Topology.make_exn ~n ~m ~r ~k in
  let t =
    Table.make
      ~title:
        (Format.asprintf
           "Erlang view: blocking vs offered load (%a, n=%d r=%d k=%d, m=%d)"
           Model.pp output_model n r k m)
      ~header:[ "offered (E)"; "attempts"; "blocked"; "P(block)"; "mean active" ]
      ()
  in
  List.iter
    (fun load ->
      let net = Network.create ~construction ~output_model topo in
      let stats =
        Churn.run_timed
          (Random.State.make [| seed |])
          ~spec:(Topology.spec topo) ~model:output_model
          ~fanout:(Fanout.Zipf { max = n * r; s = 1.2 })
          ~arrival_rate:load ~mean_holding:1.0 ~horizon (churn_sut net)
      in
      Table.add_row t
        [
          Printf.sprintf "%.1f" stats.Churn.offered_erlangs;
          string_of_int stats.Churn.t_attempts;
          string_of_int stats.Churn.t_blocked;
          Printf.sprintf "%.4f"
            (if stats.Churn.t_attempts = 0 then 0.
             else
               float_of_int stats.Churn.t_blocked
               /. float_of_int stats.Churn.t_attempts);
          Printf.sprintf "%.2f" stats.Churn.mean_active;
        ])
    offered;
  t

let frontier ?(seeds = List.init 8 (fun i -> 100 + i)) ?(steps = 600)
    ~construction ~output_model ~n ~r ~k () =
  let eval =
    match construction with
    | Network.Msw_dominant -> Conditions.msw_dominant ~n ~r
    | Network.Maw_dominant -> Conditions.maw_dominant ~n ~r ~k
  in
  let ms =
    List.init (Stdlib.max 0 (eval.Conditions.m_min - n)) (fun i -> n + i)
  in
  let blocked_at m =
    List.exists
      (fun seed ->
        let topo = Topology.make_exn ~n ~m ~r ~k in
        let stats =
          run_once ~seed ~steps
            ~fanout:(Fanout.Zipf { max = n * r; s = 1.0 })
            ~teardown_bias:0.3 ~construction ~output_model topo
        in
        stats.Churn.blocked > 0)
      seeds
  in
  List.fold_left (fun acc m -> if blocked_at m then Some m else acc) None ms

let rearrangement_ablation ?(seeds = [ 5; 6; 7 ]) ?(steps = 1500) ~construction
    ~output_model ~n ~r ~k ~ms () =
  let t =
    Table.make
      ~title:
        (Format.asprintf "Rearrangement ablation (%a, n=%d r=%d k=%d)"
           Model.pp output_model n r k)
      ~header:[ "m"; "attempts"; "blocked"; "rescued"; "rescue rate" ]
      ()
  in
  List.iter
    (fun m ->
      let attempts = ref 0 and blocked = ref 0 and rescued = ref 0 in
      List.iter
        (fun seed ->
          let topo = Topology.make_exn ~n ~m ~r ~k in
          let net = Network.create ~construction ~output_model topo in
          let sut =
            {
              Churn.connect =
                (fun c ->
                  match Network.connect net c with
                  | Ok route -> Ok route.Network.id
                  | Error _ -> (
                    incr blocked;
                    match Network.connect_rearrangeable net c with
                    | Ok (route, _) ->
                      incr rescued;
                      Ok route.Network.id
                    | Error e -> Error e));
              disconnect = (fun id -> ignore (Network.disconnect net id));
            }
          in
          let stats =
            Churn.run
              (Random.State.make [| seed |])
              ~spec:(Topology.spec topo) ~model:output_model
              ~fanout:(Fanout.Zipf { max = n * r; s = 1.0 })
              ~steps ~teardown_bias:0.3 sut
          in
          attempts := !attempts + stats.Churn.attempts)
        seeds;
      Table.add_row t
        [
          string_of_int m;
          string_of_int !attempts;
          string_of_int !blocked;
          string_of_int !rescued;
          (if !blocked = 0 then "-"
           else Printf.sprintf "%.3f" (float_of_int !rescued /. float_of_int !blocked));
        ])
    ms;
  t

let strategy_ablation ~construction ~output_model ~n ~r ~k ~m =
  let t =
    Table.make
      ~title:
        (Printf.sprintf "Routing-strategy ablation (n=%d r=%d k=%d, m=%d)" n r k m)
      ~header:[ "strategy"; "attempts"; "blocked"; "mean middles/route" ]
      ()
  in
  List.iter
    (fun (strategy, name) ->
      let topo = Topology.make_exn ~n ~m ~r ~k in
      let net =
        Network.create
          ~config:{ Network.Config.default with strategy }
          ~construction ~output_model topo
      in
      let hops_total = ref 0 and routes_total = ref 0 in
      let sut =
        {
          Churn.connect =
            (fun c ->
              match Network.connect net c with
              | Ok route ->
                hops_total := !hops_total + List.length route.Network.hops;
                incr routes_total;
                Ok route.Network.id
              | Error e -> Error e);
          disconnect = (fun id -> ignore (Network.disconnect net id));
        }
      in
      let stats =
        Churn.run (Random.State.make [| 97 |]) ~spec:(Topology.spec topo)
          ~model:output_model
          ~fanout:(Fanout.Uniform (1, Stdlib.max 1 (n * r / 2)))
          ~steps:400 ~teardown_bias:0.3 sut
      in
      Table.add_row t
        [
          name;
          string_of_int stats.Churn.attempts;
          string_of_int stats.Churn.blocked;
          (if !routes_total = 0 then "-"
           else Printf.sprintf "%.2f"
               (float_of_int !hops_total /. float_of_int !routes_total));
        ])
    [
      (Network.Min_intersection, "min-intersection");
      (Network.First_fit, "first-fit");
      (Network.Exhaustive, "exhaustive");
    ];
  t
