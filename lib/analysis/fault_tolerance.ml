open Wdm_multistage

type slack = {
  eval : Conditions.evaluation;
  f : int;
  m_required : int;
}

let evaluate ~construction ~n ~r ~k =
  match (construction : Network.construction) with
  | Network.Msw_dominant -> Conditions.msw_dominant ~n ~r
  | Network.Maw_dominant -> Conditions.maw_dominant ~n ~r ~k

let provision ~construction ~n ~r ~k ~f =
  if f < 0 then invalid_arg "Fault_tolerance.provision: f must be >= 0";
  let eval = evaluate ~construction ~n ~r ~k in
  { eval; f; m_required = eval.Conditions.m_min + f }

let tolerates ~construction ~n ~r ~k ~m ~f =
  f >= 0 && m - f >= (evaluate ~construction ~n ~r ~k).Conditions.m_min

type check = {
  failed : int list;
  verdict : Adversary.verdict;
}

(* all size-[f] subsets of [1..m], each ascending *)
let rec choose f lo m =
  if f = 0 then [ [] ]
  else if lo > m then []
  else
    List.map (fun s -> lo :: s) (choose (f - 1) (lo + 1) m)
    @ choose f (lo + 1) m

let verify_middle_slack ?max_states ?max_fanout ?(all_subsets = false)
    ~construction ~output_model ~n ~r ~k ~m ~f () =
  if f < 0 || f > m then
    invalid_arg "Fault_tolerance.verify_middle_slack: need 0 <= f <= m";
  let topo = Topology.make_exn ~n ~m ~r ~k in
  let subsets =
    if all_subsets then choose f 1 m else [ List.init f (fun j -> j + 1) ]
  in
  List.map
    (fun failed ->
      let verdict =
        Adversary.search ?max_states ?max_fanout
          ~prepare:(fun net ->
            List.iter (fun j -> ignore (Network.inject_fault net (Wdm_faults.Fault.Middle j))) failed)
          ~construction ~output_model topo
      in
      { failed; verdict })
    subsets

let pp_check ppf { failed; verdict } =
  Format.fprintf ppf "failed {%s}: %a"
    (String.concat "," (List.map string_of_int failed))
    Adversary.pp_verdict verdict
