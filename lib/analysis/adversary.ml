open Wdm_core
open Wdm_multistage

type step = Connect of Connection.t | Disconnect of Connection.t

type witness = { steps : step list; probe : Connection.t }

type verdict =
  | Blocking of witness
  | Nonblocking_proved of { states_explored : int }
  | Search_exhausted of { states_explored : int }

(* --- request universe --------------------------------------------------- *)

let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
    let s = subsets rest in
    s @ List.map (fun sub -> x :: sub) s

(* all wavelength decorations of a port set, per model *)
let decorate model ~k ~src_wl ports =
  match (model : Model.t) with
  | MSW -> [ List.map (fun p -> Endpoint.make ~port:p ~wl:src_wl) ports ]
  | MSDW ->
    List.init k (fun w ->
        List.map (fun p -> Endpoint.make ~port:p ~wl:(w + 1)) ports)
  | MAW ->
    let rec expand = function
      | [] -> [ [] ]
      | p :: rest ->
        let tails = expand rest in
        List.concat_map
          (fun tail ->
            List.init k (fun w -> Endpoint.make ~port:p ~wl:(w + 1) :: tail))
          tails
    in
    expand ports

let all_requests ~max_fanout model (spec : Network_spec.t) =
  let ports = List.init spec.n (fun p -> p + 1) in
  let port_sets =
    subsets ports
    |> List.filter (fun s -> s <> [] && List.length s <= max_fanout)
  in
  List.concat_map
    (fun (src : Endpoint.t) ->
      List.concat_map
        (fun ps ->
          List.map
            (fun destinations -> Connection.make_exn ~source:src ~destinations)
            (decorate model ~k:spec.k ~src_wl:src.wl ps))
        port_sets)
    (Network_spec.inputs spec)

(* --- state keys ---------------------------------------------------------- *)

let route_key (r : Network.route) =
  Format.asprintf "%a|%a" Connection.pp r.Network.connection
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       (fun ppf (h : Network.hop) ->
         Format.fprintf ppf "%d@%d:%s" h.Network.middle h.Network.stage1_wl
           (String.concat ","
              (List.map
                 (fun (p, w) -> Printf.sprintf "%d/%d" p w)
                 (List.sort compare h.Network.serves)))))
    (List.sort
       (fun (a : Network.hop) b -> Int.compare a.Network.middle b.Network.middle)
       r.Network.hops)

let state_key net =
  Network.active_routes net
  |> List.map route_key
  |> List.sort String.compare
  |> String.concat "&"

(* --- search --------------------------------------------------------------- *)

let search ?(max_states = 50_000) ?max_fanout ?(prepare = fun (_ : Network.t) -> ())
    ~construction ~output_model topo =
  let spec = Topology.spec topo in
  let max_fanout =
    Option.value ~default:(Wdm_core.Network_spec.num_endpoints spec) max_fanout
  in
  let universe = all_requests ~max_fanout output_model spec in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
  let queue : (Network.t * step list) Queue.t = Queue.create () in
  let root = Network.create ~construction ~output_model topo in
  prepare root;
  Hashtbl.add seen (state_key root) ();
  Queue.add (root, []) queue;
  let explored = ref 0 in
  let witness = ref None in
  (try
     while not (Queue.is_empty queue) do
       let net, path = Queue.pop queue in
       incr explored;
       if !explored > max_states then raise Exit;
       (* try every request; any Blocked rejection is a witness *)
       List.iter
         (fun conn ->
           let trial = Network.copy net in
           match Network.connect trial conn with
           | Ok _ ->
             let key = state_key trial in
             if not (Hashtbl.mem seen key) then begin
               Hashtbl.add seen key ();
               Queue.add (trial, Connect conn :: path) queue
             end
           | Error (Network.Blocked _) ->
             witness := Some (List.rev path, conn);
             raise Exit
           | Error
               ( Network.Invalid _ | Network.Source_busy _
               | Network.Destination_busy _ | Network.Unserviceable _ ) ->
             (* not a legal request in this state: no obligation — an
                unserviceable endpoint module means no switch at all
                could carry the request *)
             ())
         universe;
       (* teardown successors *)
       List.iter
         (fun (route : Network.route) ->
           let trial = Network.copy net in
           ignore (Network.disconnect trial route.Network.id);
           let key = state_key trial in
           if not (Hashtbl.mem seen key) then begin
             Hashtbl.add seen key ();
             Queue.add (trial, Disconnect route.Network.connection :: path) queue
           end)
         (Network.active_routes net)
     done
   with Exit -> ());
  match !witness with
  | Some (steps, probe) -> Blocking { steps; probe }
  | None ->
    if !explored > max_states then Search_exhausted { states_explored = max_states }
    else Nonblocking_proved { states_explored = !explored }

let frontier_exact ?max_states ~construction ~output_model ~n ~r ~k () =
  let eval =
    match construction with
    | Network.Msw_dominant -> Conditions.msw_dominant ~n ~r
    | Network.Maw_dominant -> Conditions.maw_dominant ~n ~r ~k
  in
  List.init (eval.Conditions.m_min - n + 1) (fun i ->
      let m = n + i in
      let topo = Topology.make_exn ~n ~m ~r ~k in
      (m, search ?max_states ~construction ~output_model topo))

let replay ~construction ~output_model topo { steps; probe } =
  let net = Network.create ~construction ~output_model topo in
  let step_ok = function
    | Connect c -> Result.is_ok (Network.connect net c)
    | Disconnect c -> (
      match
        List.find_opt
          (fun (r : Network.route) ->
            Connection.equal r.Network.connection c)
          (Network.active_routes net)
      with
      | Some r -> Result.is_ok (Network.disconnect net r.Network.id)
      | None -> false)
  in
  List.for_all step_ok steps
  &&
  match Network.connect net probe with
  | Error (Network.Blocked _) -> true
  | Ok _ | Error _ -> false

let pp_step ppf = function
  | Connect c -> Format.fprintf ppf "  connect %a" Connection.pp c
  | Disconnect c -> Format.fprintf ppf "  disconnect %a" Connection.pp c

let pp_verdict ppf = function
  | Blocking { steps; probe } ->
    Format.fprintf ppf "@[<v>BLOCKING witness:@ %a@ probe: %a@]"
      (Format.pp_print_list pp_step) steps Connection.pp probe
  | Nonblocking_proved { states_explored } ->
    Format.fprintf ppf "nonblocking (all %d reachable states admit every request)"
      states_explored
  | Search_exhausted { states_explored } ->
    Format.fprintf ppf "inconclusive (budget of %d states exhausted)" states_explored
