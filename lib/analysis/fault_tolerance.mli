(** The [m + f] slack rule and its adversarial verification.

    Theorems 1-2 give a sufficient middle-module count [m_min] for
    strictly nonblocking operation.  Middle modules are interchangeable
    — the routing engine treats them symmetrically, and the theorems'
    counting arguments only use how many are usable — so a fabric
    provisioned with [m_min + f] middles that has lost {e any} [f] of
    them is behaviourally a healthy fabric with [m_min] middles, and
    stays strictly nonblocking.  That is the provisioning rule:

    {e to tolerate [f] middle-module faults, provision [f] modules of
    slack above the theorem bound.}

    {!provision} computes the rule; {!verify_middle_slack} checks it
    the hard way on small fabrics, by running the exhaustive
    {!Adversary} search over the {e degraded} network for every way the
    adversary can choose the [f] failed modules. *)

open Wdm_core
open Wdm_multistage

type slack = {
  eval : Conditions.evaluation;  (** the healthy-network theorem bound *)
  f : int;  (** middle faults to tolerate *)
  m_required : int;  (** [eval.m_min + f] *)
}

val provision :
  construction:Network.construction -> n:int -> r:int -> k:int -> f:int -> slack
(** @raise Invalid_argument if [f < 0]. *)

val tolerates :
  construction:Network.construction ->
  n:int ->
  r:int ->
  k:int ->
  m:int ->
  f:int ->
  bool
(** [m - f >= m_min]: whether a fabric provisioned with [m] middles is
    still theorem-nonblocking after losing [f] of them. *)

type check = {
  failed : int list;  (** the middle modules failed for this search *)
  verdict : Adversary.verdict;
}

val verify_middle_slack :
  ?max_states:int ->
  ?max_fanout:int ->
  ?all_subsets:bool ->
  construction:Network.construction ->
  output_model:Model.t ->
  n:int ->
  r:int ->
  k:int ->
  m:int ->
  f:int ->
  unit ->
  check list
(** Builds the [m]-middle fabric, fails [f] middles, and runs the
    exhaustive adversarial search on what remains.  With [all_subsets]
    (default [false]) every [C(m, f)] choice of failed modules is
    searched — the full adversarial enumeration; by default only the
    canonical prefix [{1..f}] is, which symmetry makes representative.
    Expect [Nonblocking_proved] whenever {!tolerates} holds {e and}
    [m - f] is at or above the fabric's exact (searched) frontier;
    expect a [Blocking] witness when the degraded fabric falls below
    the frontier. *)

val pp_check : Format.formatter -> check -> unit
