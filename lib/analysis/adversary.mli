(** Exhaustive adversarial search for blocking witnesses.

    Theorems 1-2 are sufficient conditions; the paper notes (citing its
    reference [16]) that matching necessary conditions hold under the
    usual routing strategies.  This module explores the {e entire}
    reachable state space of a small three-stage network — every legal
    connect and disconnect, breadth-first with state memoization — and
    either produces a concrete {e blocking witness} (a reachable state
    plus a legal request the router refuses) or proves that, under the
    engine's deterministic routing, no request sequence whatsoever can
    block the network.

    This is far stronger than randomized churn: it certifies
    nonblocking for concrete small instances and finds the true
    blocking frontier, which randomized traffic only brackets.  It is
    exponential, so it is meant for the small topologies where the
    theorems' arithmetic is also exercised by hand. *)

open Wdm_core
open Wdm_multistage

type step =
  | Connect of Connection.t
  | Disconnect of Connection.t
      (** identified by its connection — a live source endpoint names
          its route uniquely *)

type witness = {
  steps : step list;
      (** the exact action sequence from the empty network; replaying
          it is deterministic *)
  probe : Connection.t;  (** the legal request the router then refused *)
}

type verdict =
  | Blocking of witness
  | Nonblocking_proved of { states_explored : int }
      (** every reachable state admits every legal request *)
  | Search_exhausted of { states_explored : int }
      (** state budget hit before exploring everything *)

val search :
  ?max_states:int ->
  ?max_fanout:int ->
  ?prepare:(Network.t -> unit) ->
  construction:Network.construction ->
  output_model:Model.t ->
  Topology.t ->
  verdict
(** [max_states] bounds the explored state count (default [50_000]);
    [max_fanout] caps the fanout of generated requests (default: no
    cap).  Teardowns are explored as well as connects, so witnesses
    needing churn are found.  [prepare] mutates the root (empty)
    network before the search — e.g. injecting faults, so the search
    certifies nonblocking operation of the {e degraded} fabric
    ({!Fault_tolerance}). *)

val frontier_exact :
  ?max_states:int ->
  construction:Network.construction ->
  output_model:Model.t ->
  n:int ->
  r:int ->
  k:int ->
  unit ->
  (int * verdict) list
(** Runs {!search} for every [m] from the topological minimum to the
    theorem's [m_min], returning the verdict per [m] — the exact
    blocking frontier when all searches complete. *)

val replay :
  construction:Network.construction ->
  output_model:Model.t ->
  Topology.t ->
  witness ->
  bool
(** Re-executes the witness on a fresh network and checks the probe is
    indeed refused with [Blocked] (and every step succeeds) — witnesses
    are independently checkable artifacts, not just search claims. *)

val pp_verdict : Format.formatter -> verdict -> unit
