(** Deterministic shortest-path routing: Dijkstra, Yen's k-shortest
    loopless paths, and the multi-source variant the light-tree
    builder grows grafts with.

    Determinism contract: ties between equal-cost paths are broken by
    smaller node id at every selection point, and Yen orders equal-cost
    candidates lexicographically by node sequence — the same graph and
    arguments always yield byte-identical answers, which is what lets
    WAL replay reproduce routes exactly. *)

val shortest_path :
  ?skip_node:(int -> bool) ->
  ?use_edge:(int -> bool) ->
  Graph.t ->
  src:int ->
  dst:int ->
  (float * int list) option
(** Cost and node sequence [src .. dst].  [skip_node] excludes
    intermediate/terminal nodes (never [src]); [use_edge] filters edges
    by id (e.g. wavelength-free). *)

val k_shortest :
  ?use_edge:(int -> bool) ->
  Graph.t ->
  src:int ->
  dst:int ->
  k:int ->
  (float * int list) list
(** Up to [k] loopless paths, cheapest first; equal costs ordered
    lexicographically by node sequence. *)

val grow :
  sources:int list ->
  skip_node:(int -> bool) ->
  use_edge:(int -> bool) ->
  target:(int -> bool) ->
  Graph.t ->
  (float * int list) option
(** Cheapest path from any source (all at distance 0) to the nearest
    node satisfying [target]; ties prefer the smaller target id.  The
    returned node list starts at the chosen source.  Sources are
    exempt from [skip_node]; targets are not. *)
