(** A stateful mesh RWA network with the same operational surface as
    {!Wdm_multistage.Network}: validated connect / typed-error refusal,
    disconnect by route id (ids are never reused), deterministic
    snapshot/restore with re-derived occupancy, and optional telemetry.

    Endpoints are reinterpreted for a mesh: [Endpoint.port] is the
    1-based node id and the endpoint's wavelength field is {e ignored}
    — the network performs its own wavelength assignment, exactly as
    the RWA literature separates the request (a node pair or group)
    from the lightpath the control plane picks for it.  A destination
    equal to the source is trivially covered (the source taps its own
    signal) and occupies nothing.

    Determinism: every connect outcome is a pure function of the
    construction arguments and the op sequence so far.  The [Random]
    strategy hashes a monotone attempt counter (advanced on every
    connect, accepted or refused), so WAL replay — which records
    refused connects too — reproduces routes byte-for-byte. *)

module Sink = Wdm_telemetry.Sink
module Connection = Wdm_core.Connection
module Endpoint = Wdm_core.Endpoint

type splitters =
  | Split_all  (** every node multicast-capable *)
  | Split_none  (** drop-and-continue only, everywhere *)
  | Split_nodes of int list  (** exactly these nodes are MC *)
  | Split_degree_ge of int
      (** nodes of topology degree >= d are MC — the usual "put the
          splitters at the hubs" sparse-splitting deployment *)

module Config : sig
  type t = {
    k : int;  (** wavelengths per fiber, [1..62] *)
    strategy : Assign.strategy;
    mode : Light_tree.mode;
    splitters : splitters;
    k_paths : int;  (** Yen candidates for unicast routing, [>= 1] *)
  }

  val default : t
  (** 8 wavelengths, first-fit, light-hierarchy, all-MC, 3 paths. *)
end

type t

type route = {
  id : int;
  connection : Connection.t;
  wl : int;  (** the single wavelength the structure occupies *)
  arcs : (int * int * int) list;  (** (from, to, edge id) *)
  cost : float;
}

type error =
  | Source_out_of_range of Endpoint.t
  | Destination_out_of_range of Endpoint.t
  | Blocked of { uncovered : int list }
      (** no (structure, wavelength) pair could cover these nodes *)

type disconnect_error = Unknown_route of int | Already_released of int

val create :
  ?telemetry:Sink.t -> ?config:Config.t -> string -> (t, string) result
(** [create name] builds the {!Zoo} topology [name] (e.g. ["nsf14"],
    ["ring8"]).  Errors on an unknown topology, a [Split_nodes] id out
    of range, or an out-of-range config field. *)

val connect : t -> Connection.t -> (route, error) result
val disconnect : t -> int -> (route, disconnect_error) result

val graph : t -> Graph.t
val topology_name : t -> string
val config : t -> Config.t
val mc_nodes : t -> int list
(** Multicast-capable node ids, ascending. *)

val active_count : t -> int
val utilization : t -> float
(** Occupied (edge, wavelength) slots over [m * k]. *)

(** {1 Snapshot / restore} *)

type state = {
  s_topo : string;
  s_k : int;
  s_strategy : Assign.strategy;
  s_mode : Light_tree.mode;
  s_k_paths : int;
  s_mc : bool array;  (** resolved capability, index 0 unused *)
  s_next_id : int;
  s_attempts : int;
  s_routes : route list;  (** ascending id *)
}

val snapshot : t -> state
val restore : ?telemetry:Sink.t -> state -> (t, string) result
(** Rebuilds the graph from [s_topo] and re-derives wavelength
    occupancy by re-marking every active route, so a restored network
    is behaviorally indistinguishable from the snapshotted one. *)

(** Refusal rendering, mirroring {!Wdm_multistage.Network.Error} so
    callers (wdmnet in particular) print both engines' refusals through
    one code path. *)
module Error : sig
  type nonrec t = error

  val cause : t -> string
  (** Short stable tag ([source_out_of_range],
      [destination_out_of_range], [blocked]). *)

  val to_string : t -> string

  val to_json : t -> Wdm_telemetry.Json.t
  (** [{"cause": ..., ...}] with per-constructor fields: the offending
      endpoint or the uncovered node list. *)

  val disconnect_cause : disconnect_error -> string
  val disconnect_to_string : disconnect_error -> string
  val disconnect_to_json : disconnect_error -> Wdm_telemetry.Json.t
end

val pp_error : Format.formatter -> error -> unit
val pp_disconnect_error : Format.formatter -> disconnect_error -> unit
val pp_route : Format.formatter -> route -> unit
