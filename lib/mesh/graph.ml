type edge = { u : int; v : int; w : float; id : int }

type t = {
  n : int;
  edges : edge array;
  adj : (int * int) list array; (* 1-based node -> (neighbor, edge id) *)
}

let make ~n links =
  if n < 1 then invalid_arg "Graph.make: n must be >= 1";
  let canon (u, v, w) =
    if u < 1 || u > n || v < 1 || v > n then
      invalid_arg (Printf.sprintf "Graph.make: endpoint outside 1..%d" n);
    if u = v then invalid_arg (Printf.sprintf "Graph.make: self-loop at %d" u);
    if not (w > 0.) then
      invalid_arg (Printf.sprintf "Graph.make: non-positive weight %d-%d" u v);
    if u < v then (u, v, w) else (v, u, w)
  in
  let links = List.map canon links in
  let links =
    List.sort (fun (a, b, _) (c, d, _) -> compare (a, b) (c, d)) links
  in
  let rec check_dups = function
    | (a, b, _) :: ((c, d, _) :: _ as rest) ->
      if a = c && b = d then
        invalid_arg (Printf.sprintf "Graph.make: duplicate link %d-%d" a b);
      check_dups rest
    | _ -> ()
  in
  check_dups links;
  let edges =
    Array.of_list (List.mapi (fun id (u, v, w) -> { u; v; w; id }) links)
  in
  let adj = Array.make (n + 1) [] in
  Array.iter
    (fun e ->
      adj.(e.u) <- (e.v, e.id) :: adj.(e.u);
      adj.(e.v) <- (e.u, e.id) :: adj.(e.v))
    edges;
  for i = 1 to n do
    adj.(i) <- List.sort compare adj.(i)
  done;
  { n; edges; adj }

let n t = t.n
let m t = Array.length t.edges
let edges t = t.edges

let edge t id =
  if id < 0 || id >= Array.length t.edges then
    invalid_arg (Printf.sprintf "Graph.edge: no edge %d" id);
  t.edges.(id)

let adj t v =
  if v < 1 || v > t.n then invalid_arg (Printf.sprintf "Graph.adj: node %d" v);
  t.adj.(v)

let edge_between t a b =
  if a < 1 || a > t.n || b < 1 || b > t.n then None
  else List.assoc_opt b t.adj.(a)

let degree t v = List.length (adj t v)

let pp ppf t =
  Format.fprintf ppf "graph(n=%d, m=%d)" t.n (m t)
