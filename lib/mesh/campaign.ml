module Erlang = Wdm_traffic.Erlang
module Churn = Wdm_traffic.Churn
module Fanout = Wdm_traffic.Fanout

type cell = {
  topo : string;
  strategy : Assign.strategy;
  point : Erlang.point;
}

type spec = {
  seed : int;
  k : int;
  mode : Light_tree.mode;
  splitters : Mesh_network.splitters;
  k_paths : int;
  topos : string list;
  strategies : Assign.strategy list;
  loads : float list;
  arrivals : int;
  fanout : Fanout.t;
}

let default =
  {
    seed = 1;
    k = 8;
    mode = Light_tree.Hierarchy;
    splitters = Mesh_network.Split_all;
    k_paths = 3;
    topos = [ "nsf14"; "janet" ];
    strategies = [ Assign.First_fit; Assign.Coloring ];
    loads = [ 4.; 8.; 12.; 16.; 20.; 24. ];
    arrivals = 4000;
    fanout = Fanout.Zipf { max = 4; s = 1.3 };
  }

let quick = { default with arrivals = 400; loads = [ 4.; 12.; 24. ] }

let run ?telemetry spec =
  let cells = ref [] in
  let err = ref None in
  List.iteri
    (fun ti topo ->
      List.iteri
        (fun si strategy ->
          List.iteri
            (fun li load ->
              if !err = None then begin
                let config =
                  {
                    Mesh_network.Config.k = spec.k;
                    strategy;
                    mode = spec.mode;
                    splitters = spec.splitters;
                    k_paths = spec.k_paths;
                  }
                in
                match Mesh_network.create ?telemetry ~config topo with
                | Error e -> err := Some e
                | Ok net ->
                  let sut =
                    {
                      Churn.connect =
                        (fun c ->
                          match Mesh_network.connect net c with
                          | Ok r -> Ok r.Mesh_network.id
                          | Error e -> Error e);
                      disconnect =
                        (fun id ->
                          match Mesh_network.disconnect net id with
                          | Ok _ -> ()
                          | Error _ ->
                            invalid_arg "mesh campaign: bad teardown");
                    }
                  in
                  let rng =
                    Random.State.make
                      [| spec.seed; 7919 * ti; 104729 * si; 1299709 * li |]
                  in
                  let point =
                    Erlang.run rng
                      ~nodes:(Graph.n (Mesh_network.graph net))
                      ~fanout:spec.fanout ~offered:load
                      ~arrivals:spec.arrivals sut
                  in
                  cells := { topo; strategy; point } :: !cells
              end)
            spec.loads)
        spec.strategies)
    spec.topos;
  match !err with Some e -> Error e | None -> Ok (List.rev !cells)

let pp_table ppf cells =
  Format.fprintf ppf "%-8s %-12s %10s %9s %9s %9s@." "topo" "strategy"
    "erlangs" "blocked" "pb" "active";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-8s %-12s %10.1f %9d %9.4f %9.2f@." c.topo
        (Assign.strategy_to_string c.strategy)
        c.point.Erlang.offered_erlangs c.point.Erlang.blocked
        c.point.Erlang.blocking c.point.Erlang.mean_active)
    cells
