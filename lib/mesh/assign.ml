type strategy =
  | First_fit
  | Most_used
  | Least_used
  | Random
  | Coloring
  | Named of string

let strategy_to_string = function
  | First_fit -> "first-fit"
  | Most_used -> "most-used"
  | Least_used -> "least-used"
  | Random -> "random"
  | Coloring -> "coloring"
  | Named name -> name

let strategies = [ First_fit; Most_used; Least_used; Random; Coloring ]

type t = {
  k : int;
  mask : int array; (* edge id -> bitmask, bit (wl-1) set = in use *)
  counts : int array; (* wl (1-based) -> edges carrying it *)
  mutable slots : int;
}

let create ~k ~m =
  if k < 1 || k > 62 then invalid_arg "Assign.create: k must be in 1..62";
  if m < 0 then invalid_arg "Assign.create: negative edge count";
  { k; mask = Array.make m 0; counts = Array.make (k + 1) 0; slots = 0 }

let k t = t.k

let check t ~edge ~wl =
  if wl < 1 || wl > t.k then invalid_arg "Assign: wavelength out of range";
  if edge < 0 || edge >= Array.length t.mask then
    invalid_arg "Assign: edge out of range"

let used t ~edge ~wl =
  check t ~edge ~wl;
  t.mask.(edge) land (1 lsl (wl - 1)) <> 0

let free_on t ~edges ~wl = List.for_all (fun e -> not (used t ~edge:e ~wl)) edges

let occupy t ~edges ~wl =
  if not (free_on t ~edges ~wl) then
    invalid_arg "Assign.occupy: wavelength already in use on an edge";
  List.iter
    (fun e ->
      t.mask.(e) <- t.mask.(e) lor (1 lsl (wl - 1));
      t.counts.(wl) <- t.counts.(wl) + 1;
      t.slots <- t.slots + 1)
    edges

let release t ~edges ~wl =
  List.iter
    (fun e ->
      if not (used t ~edge:e ~wl) then
        invalid_arg "Assign.release: wavelength not in use on an edge";
      t.mask.(e) <- t.mask.(e) land lnot (1 lsl (wl - 1));
      t.counts.(wl) <- t.counts.(wl) - 1;
      t.slots <- t.slots - 1)
    edges

let use_count t ~wl =
  if wl < 1 || wl > t.k then invalid_arg "Assign.use_count";
  t.counts.(wl)

let occupied_slots t = t.slots

let edge_load t ~edge =
  if edge < 0 || edge >= Array.length t.mask then
    invalid_arg "Assign.edge_load: edge out of range";
  let rec pop acc m = if m = 0 then acc else pop (acc + (m land 1)) (m lsr 1) in
  pop 0 t.mask.(edge)

(* ----- strategy plug-ins ------------------------------------------------ *)

type plugin = {
  p_name : string;
  p_doc : string;
  p_order : t -> hash:int -> int list;
  p_admit : (t -> edges:int list -> wl:int -> fanout:int -> bool) option;
}

module Plugin_registry = Wdm_core.Strategy.Registry (struct
  type t = plugin

  let name p = p.p_name
end)

let first_fit_order t ~hash:_ = List.init t.k (fun i -> i + 1)

let most_used_order t ~hash:_ =
  List.stable_sort
    (fun a b -> compare (t.counts.(b), a) (t.counts.(a), b))
    (List.init t.k (fun i -> i + 1))

let least_used_order t ~hash:_ =
  List.stable_sort
    (fun a b -> compare (t.counts.(a), a) (t.counts.(b), b))
    (List.init t.k (fun i -> i + 1))

let random_order t ~hash =
  let start = (hash land max_int) mod t.k in
  List.init t.k (fun i -> ((start + i) mod t.k) + 1)

let order t strategy ~hash =
  match strategy with
  | First_fit | Coloring -> first_fit_order t ~hash
  | Most_used -> most_used_order t ~hash
  | Least_used -> least_used_order t ~hash
  | Random -> random_order t ~hash
  | Named name -> (
    match Plugin_registry.resolve name with
    | Some p -> p.p_order t ~hash
    | None ->
      (* builds resolve Named up front, so an unknown name here means a
         caller bypassed Mesh_network.build *)
      invalid_arg (Printf.sprintf "Assign.order: unknown strategy %S" name))

(* Simulated annealing over the wavelength scan order, seeded from the
   request hash so WAL replay re-derives the same order.  Cost prefers
   heavily-used wavelengths early (packing, like most-used) but the
   stochastic swaps let it escape the strict sort when loads tie or
   nearly tie. *)
let annealed_order t ~hash =
  let rng = Wdm_core.Strategy.Det_rng.make ~seed:hash in
  let order = Array.init t.k (fun i -> i + 1) in
  let cost o =
    let c = ref 0. in
    Array.iteri
      (fun i wl -> c := !c +. (float_of_int (i * (1000 + (t.counts.(wl) * 10))) /. 1000.))
      o;
    !c
  in
  let current = ref (cost order) in
  let temp = ref 2.0 in
  for _ = 1 to 32 do
    if t.k > 1 then begin
      let i = Wdm_core.Strategy.Det_rng.int rng t.k in
      let j = Wdm_core.Strategy.Det_rng.int rng t.k in
      let a = order.(i) and b = order.(j) in
      order.(i) <- b;
      order.(j) <- a;
      let c = cost order in
      let accept =
        c <= !current
        || Wdm_core.Strategy.Det_rng.float rng
           < exp ((!current -. c) /. !temp)
      in
      if accept then current := c
      else begin
        order.(i) <- a;
        order.(j) <- b
      end
    end;
    temp := !temp *. 0.85
  done;
  Array.to_list order

let crosstalk_parser name =
  match String.split_on_char ':' name with
  | "crosstalk" :: rest -> (
    let base_name, threshold =
      match rest with
      | [] -> (Some "first-fit", Some 20.)
      | [ b ] -> (Some b, Some 20.)
      | [ b; db ] -> (Some b, float_of_string_opt db)
      | _ -> (None, None)
    in
    match (base_name, threshold) with
    | Some base_name, Some threshold_db -> (
      match Plugin_registry.resolve base_name with
      | None -> None
      | Some base ->
        let admit t ~edges ~wl:_ ~fanout =
          let sharers =
            List.fold_left (fun acc e -> acc + edge_load t ~edge:e) 0 edges
          in
          Wdm_optics.Crosstalk.acceptable ~threshold_db ~sharers
            ~fanout:(max 1 fanout) ()
        in
        Some
          {
            p_name = name;
            p_doc =
              Printf.sprintf
                "%s, refusing wavelengths whose worst-case crosstalk margin \
                 on the chosen edges falls below %g dB"
                base.p_name threshold_db;
            p_order = base.p_order;
            p_admit = Some admit;
          })
    | _ -> None)
  | _ -> None

let () =
  let reg p_name p_doc p_order =
    Plugin_registry.register { p_name; p_doc; p_order; p_admit = None }
  in
  reg "first-fit" "lowest-index free wavelength" first_fit_order;
  reg "most-used" "pack onto the globally busiest wavelengths first"
    most_used_order;
  reg "least-used" "spread onto the globally least-busy wavelengths first"
    least_used_order;
  reg "random" "request-hash rotation of the wavelength scan" random_order;
  reg "coloring"
    "first-fit scan order (greedy conflict-graph coloring equals first-fit)"
    first_fit_order;
  reg "adaptive"
    "load-adaptive: rank wavelengths by the live per-wavelength occupancy \
     gauge, least-loaded first"
    least_used_order;
  reg "annealed"
    "simulated annealing over the wavelength scan order, request-seeded"
    annealed_order;
  Plugin_registry.register_parser crosstalk_parser

let make_plugin ~name ~doc ?admit order =
  { p_name = name; p_doc = doc; p_order = order; p_admit = admit }

let register_plugin = Plugin_registry.register
let register_plugin_parser = Plugin_registry.register_parser
let resolve_plugin name = Plugin_registry.resolve name
let plugin_names () = Plugin_registry.names ()
let plugin_name p = p.p_name
let plugin_doc p = p.p_doc
let plugin_order p = p.p_order

let plugin_admits p t ~edges ~wl ~fanout =
  match p.p_admit with
  | None -> true
  | Some admit -> admit t ~edges ~wl ~fanout

let strategy_of_string s =
  match
    List.find_opt (fun st -> strategy_to_string st = s) strategies
  with
  | Some st -> Ok st
  | None ->
    if Plugin_registry.mem s then Ok (Named s)
    else
      Error
        (Printf.sprintf "unknown strategy %S (want %s, or crosstalk[:BASE[:DB]])"
           s
           (String.concat ", " (Plugin_registry.names ())))

let pp_strategy ppf s = Format.pp_print_string ppf (strategy_to_string s)
