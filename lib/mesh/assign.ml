type strategy = First_fit | Most_used | Least_used | Random | Coloring

let strategy_to_string = function
  | First_fit -> "first-fit"
  | Most_used -> "most-used"
  | Least_used -> "least-used"
  | Random -> "random"
  | Coloring -> "coloring"

let strategies = [ First_fit; Most_used; Least_used; Random; Coloring ]

let strategy_of_string s =
  match
    List.find_opt (fun st -> strategy_to_string st = s) strategies
  with
  | Some st -> Ok st
  | None ->
    Error
      (Printf.sprintf "unknown strategy %S (want %s)" s
         (String.concat ", " (List.map strategy_to_string strategies)))

let pp_strategy ppf s = Format.pp_print_string ppf (strategy_to_string s)

type t = {
  k : int;
  mask : int array; (* edge id -> bitmask, bit (wl-1) set = in use *)
  counts : int array; (* wl (1-based) -> edges carrying it *)
  mutable slots : int;
}

let create ~k ~m =
  if k < 1 || k > 62 then invalid_arg "Assign.create: k must be in 1..62";
  if m < 0 then invalid_arg "Assign.create: negative edge count";
  { k; mask = Array.make m 0; counts = Array.make (k + 1) 0; slots = 0 }

let k t = t.k

let check t ~edge ~wl =
  if wl < 1 || wl > t.k then invalid_arg "Assign: wavelength out of range";
  if edge < 0 || edge >= Array.length t.mask then
    invalid_arg "Assign: edge out of range"

let used t ~edge ~wl =
  check t ~edge ~wl;
  t.mask.(edge) land (1 lsl (wl - 1)) <> 0

let free_on t ~edges ~wl = List.for_all (fun e -> not (used t ~edge:e ~wl)) edges

let occupy t ~edges ~wl =
  if not (free_on t ~edges ~wl) then
    invalid_arg "Assign.occupy: wavelength already in use on an edge";
  List.iter
    (fun e ->
      t.mask.(e) <- t.mask.(e) lor (1 lsl (wl - 1));
      t.counts.(wl) <- t.counts.(wl) + 1;
      t.slots <- t.slots + 1)
    edges

let release t ~edges ~wl =
  List.iter
    (fun e ->
      if not (used t ~edge:e ~wl) then
        invalid_arg "Assign.release: wavelength not in use on an edge";
      t.mask.(e) <- t.mask.(e) land lnot (1 lsl (wl - 1));
      t.counts.(wl) <- t.counts.(wl) - 1;
      t.slots <- t.slots - 1)
    edges

let use_count t ~wl =
  if wl < 1 || wl > t.k then invalid_arg "Assign.use_count";
  t.counts.(wl)

let occupied_slots t = t.slots

let order t strategy ~hash =
  let all = List.init t.k (fun i -> i + 1) in
  match strategy with
  | First_fit | Coloring -> all
  | Most_used ->
    List.stable_sort
      (fun a b -> compare (t.counts.(b), a) (t.counts.(a), b))
      all
  | Least_used ->
    List.stable_sort
      (fun a b -> compare (t.counts.(a), a) (t.counts.(b), b))
      all
  | Random ->
    let start = (hash land max_int) mod t.k in
    List.init t.k (fun i -> ((start + i) mod t.k) + 1)
