let never _ = false
let always _ = true

(* O(n^2) selection Dijkstra: the zoo graphs are tens of nodes, and the
   plain loop has an easy determinism story (ascending node scan means
   equal distances resolve to the smallest id with no heap-order
   subtleties). *)
let run g ~sources ~skip_node ~use_edge =
  let n = Graph.n g in
  let dist = Array.make (n + 1) infinity in
  let pred = Array.make (n + 1) (-1) in (* edge id into the node *)
  let prev = Array.make (n + 1) 0 in    (* predecessor node *)
  let visited = Array.make (n + 1) false in
  List.iter (fun s -> dist.(s) <- 0.) sources;
  let rec loop () =
    let best = ref 0 in
    for v = 1 to n do
      if (not visited.(v)) && dist.(v) < infinity
         && (!best = 0 || dist.(v) < dist.(!best))
      then best := v
    done;
    if !best <> 0 then begin
      let u = !best in
      visited.(u) <- true;
      List.iter
        (fun (v, e) ->
          if (not visited.(v)) && (not (skip_node v)) && use_edge e then begin
            let d = dist.(u) +. (Graph.edge g e).Graph.w in
            if d < dist.(v) then begin
              dist.(v) <- d;
              pred.(v) <- e;
              prev.(v) <- u
            end
          end)
        (Graph.adj g u);
      loop ()
    end
  in
  loop ();
  (dist, pred, prev)

let walk_back ~prev ~pred ~sources dst =
  let rec go v acc =
    if List.mem v sources && pred.(v) = -1 then v :: acc
    else go prev.(v) (v :: acc)
  in
  go dst []

let shortest_path ?(skip_node = never) ?(use_edge = always) g ~src ~dst =
  if src = dst then Some (0., [ src ])
  else begin
    let dist, pred, prev =
      run g ~sources:[ src ] ~skip_node ~use_edge
    in
    if dist.(dst) = infinity then None
    else Some (dist.(dst), walk_back ~prev ~pred ~sources:[ src ] dst)
  end

let grow ~sources ~skip_node ~use_edge ~target g =
  let dist, pred, prev = run g ~sources ~skip_node ~use_edge in
  let n = Graph.n g in
  let best = ref 0 in
  for v = 1 to n do
    if target v && dist.(v) < infinity
       && (!best = 0 || dist.(v) < dist.(!best))
    then best := v
  done;
  if !best = 0 then None
  else Some (dist.(!best), walk_back ~prev ~pred ~sources !best)

(* ----- Yen ------------------------------------------------------------- *)

let path_cost g nodes =
  let rec go acc = function
    | a :: (b :: _ as rest) -> (
      match Graph.edge_between g a b with
      | Some e -> go (acc +. (Graph.edge g e).Graph.w) rest
      | None -> invalid_arg "Shortest.path_cost: not a path")
    | _ -> acc
  in
  go 0. nodes

let candidate_compare (c1, p1) (c2, p2) =
  match compare (c1 : float) c2 with 0 -> compare (p1 : int list) p2 | c -> c

let k_shortest ?(use_edge = always) g ~src ~dst ~k =
  if k < 1 then invalid_arg "Shortest.k_shortest: k must be >= 1";
  match shortest_path ~use_edge g ~src ~dst with
  | None -> []
  | Some first ->
    let a = ref [ first ] (* accepted, newest first *) in
    let b = ref [] (* candidates, sorted ascending *) in
    let rec take_prefix i = function
      | [] -> []
      | x :: rest -> if i = 0 then [] else x :: take_prefix (i - 1) rest
    in
    let rec fill count =
      if count >= k then ()
      else begin
        let _, last = List.hd !a in
        let len = List.length last in
        (* spur at every node of the previous path except the last *)
        for i = 0 to len - 2 do
          let root = take_prefix (i + 1) last in
          let spur = List.nth last i in
          (* edges leaving any accepted path that shares this root *)
          let banned_edges = Hashtbl.create 8 in
          List.iter
            (fun (_, p) ->
              if take_prefix (i + 1) p = root && List.length p > i + 1 then
                match
                  Graph.edge_between g (List.nth p i) (List.nth p (i + 1))
                with
                | Some e -> Hashtbl.replace banned_edges e ()
                | None -> ())
            !a;
          let root_nodes = take_prefix i last in
          let skip_node v = List.mem v root_nodes in
          let use_edge' e = use_edge e && not (Hashtbl.mem banned_edges e) in
          match shortest_path ~skip_node ~use_edge:use_edge' g ~src:spur ~dst with
          | None -> ()
          | Some (_, spur_path) ->
            let total = root_nodes @ spur_path in
            let cand = (path_cost g total, total) in
            if
              (not (List.exists (fun (_, p) -> p = total) !a))
              && not (List.mem cand !b)
            then b := List.sort candidate_compare (cand :: !b)
        done;
        match !b with
        | [] -> ()
        | best :: rest ->
          b := rest;
          a := best :: !a;
          fill (count + 1)
      end
    in
    fill 1;
    List.sort candidate_compare !a
