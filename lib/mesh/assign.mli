(** Per-edge wavelength occupancy and assignment strategies.

    Occupancy is an int bitmask per edge (so [k <= 62]) plus a per-
    wavelength global use count, giving O(1) occupy/release/test and
    O(k) strategy ordering.  Strategies only *order* the candidate
    wavelengths; feasibility (free on every edge of the candidate
    structure) is checked by the caller, which keeps the ordering
    reusable for both unicast paths and multicast trees.

    [Random] is a stateless hash rotation: the caller passes a
    replay-deterministic hash (the network uses its monotonically
    increasing attempt counter mixed with the request), so a WAL replay
    reproduces the exact same "random" choices — the determinism
    contract of DESIGN.md section 6 extends to mesh unchanged.

    [Coloring] orders like first-fit; {!Mesh_network} implements it by
    greedy coloring of the active-route conflict graph and asserts the
    two agree — the classic result that incremental greedy coloring of
    interval-free conflict graphs is exactly first-fit. *)

type strategy = First_fit | Most_used | Least_used | Random | Coloring

val strategy_of_string : string -> (strategy, string) result
val strategy_to_string : strategy -> string
val pp_strategy : Format.formatter -> strategy -> unit
val strategies : strategy list

type t

val create : k:int -> m:int -> t
(** [k] wavelengths per fiber over [m] edges.
    @raise Invalid_argument unless [1 <= k <= 62] and [m >= 0]. *)

val k : t -> int
val used : t -> edge:int -> wl:int -> bool
val free_on : t -> edges:int list -> wl:int -> bool
(** Free on {e every} listed edge. *)

val occupy : t -> edges:int list -> wl:int -> unit
(** @raise Invalid_argument if any edge already carries [wl]. *)

val release : t -> edges:int list -> wl:int -> unit
(** @raise Invalid_argument if any edge does not carry [wl]. *)

val use_count : t -> wl:int -> int
(** Edges currently carrying this wavelength. *)

val occupied_slots : t -> int
(** Total (edge, wavelength) pairs in use. *)

val order : t -> strategy -> hash:int -> int list
(** Candidate wavelengths [1..k] in strategy preference order. *)
