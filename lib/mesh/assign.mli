(** Per-edge wavelength occupancy and assignment strategies.

    Occupancy is an int bitmask per edge (so [k <= 62]) plus a per-
    wavelength global use count, giving O(1) occupy/release/test and
    O(k) strategy ordering.  Strategies only *order* the candidate
    wavelengths; feasibility (free on every edge of the candidate
    structure) is checked by the caller, which keeps the ordering
    reusable for both unicast paths and multicast trees.

    [Random] is a stateless hash rotation: the caller passes a
    replay-deterministic hash (the network uses its monotonically
    increasing attempt counter mixed with the request), so a WAL replay
    reproduces the exact same "random" choices — the determinism
    contract of DESIGN.md section 6 extends to mesh unchanged.

    [Coloring] orders like first-fit; {!Mesh_network} implements it by
    greedy coloring of the active-route conflict graph and asserts the
    two agree — the classic result that incremental greedy coloring of
    interval-free conflict graphs is exactly first-fit. *)

type strategy =
  | First_fit
  | Most_used
  | Least_used
  | Random
  | Coloring
  | Named of string
      (** A wavelength-selection plug-in by registry name (see the
          plug-in section below).  The five classic strategies are
          registered under their own names and order identically to
          their enum constructors; the lab strategies ([adaptive],
          [annealed], [crosstalk:BASE:DB]) are only reachable this way.
          {!Mesh_network.build} refuses unknown names. *)

val strategy_of_string : string -> (strategy, string) result
(** Classic names map to their enum constructors; any other name the
    plug-in registry resolves maps to [Named]. *)

val strategy_to_string : strategy -> string
val pp_strategy : Format.formatter -> strategy -> unit

val strategies : strategy list
(** The classic enum strategies only (not registry plug-ins). *)

type t

val create : k:int -> m:int -> t
(** [k] wavelengths per fiber over [m] edges.
    @raise Invalid_argument unless [1 <= k <= 62] and [m >= 0]. *)

val k : t -> int
val used : t -> edge:int -> wl:int -> bool
val free_on : t -> edges:int list -> wl:int -> bool
(** Free on {e every} listed edge. *)

val occupy : t -> edges:int list -> wl:int -> unit
(** @raise Invalid_argument if any edge already carries [wl]. *)

val release : t -> edges:int list -> wl:int -> unit
(** @raise Invalid_argument if any edge does not carry [wl]. *)

val use_count : t -> wl:int -> int
(** Edges currently carrying this wavelength. *)

val occupied_slots : t -> int
(** Total (edge, wavelength) pairs in use. *)

val edge_load : t -> edge:int -> int
(** Wavelengths currently in use on one edge — the live load signal the
    crosstalk-budget plug-in estimates sharers from. *)

val order : t -> strategy -> hash:int -> int list
(** Candidate wavelengths [1..k] in strategy preference order.
    @raise Invalid_argument on a [Named] strategy whose name no longer
    resolves (builds check names up front, so this means the registry
    changed underneath a live network). *)

(** {2 Strategy plug-ins}

    The mesh half of the shared {!Wdm_core.Strategy} contract.  A mesh
    plug-in contributes the wavelength scan {e order} and may veto
    individual assignments via an {e admit} predicate; path search,
    light-tree construction and feasibility stay with {!Mesh_network},
    which keeps plug-ins reusable across unicast and multicast exactly
    like the enum strategies.

    Determinism: [order] and [admit] must be pure in the assignment
    state and the request hash — derive randomness from the hash via
    {!Wdm_core.Strategy.Det_rng} only, so WAL replay re-derives the
    same choices.

    Registered names: [first-fit], [most-used], [least-used], [random],
    [coloring] (the classics as plug-ins), [adaptive] (least-loaded
    wavelength first, driven by the live per-wavelength use counts),
    [annealed] (simulated annealing over the scan order, request-
    seeded), and the parameterized decorator [crosstalk[:BASE[:DB]]]
    (BASE's order, refusing wavelengths whose worst-case
    {!Wdm_optics.Crosstalk} margin over the chosen edges falls below DB;
    defaults [first-fit] and 20 dB). *)

type plugin

val make_plugin :
  name:string ->
  doc:string ->
  ?admit:(t -> edges:int list -> wl:int -> fanout:int -> bool) ->
  (t -> hash:int -> int list) ->
  plugin
(** A plug-in from its scan ordering and optional admission veto. *)

val register_plugin : plugin -> unit
(** Install (or replace) under its name; reachable as [Named name]. *)

val register_plugin_parser : (string -> plugin option) -> unit
(** Install a parser for parameterized names such as
    [crosstalk:most-used:18]. *)

val resolve_plugin : string -> plugin option
val plugin_names : unit -> string list
val plugin_name : plugin -> string
val plugin_doc : plugin -> string

val plugin_order : plugin -> t -> hash:int -> int list
(** The plug-in's candidate wavelength ordering. *)

val plugin_admits : plugin -> t -> edges:int list -> wl:int -> fanout:int -> bool
(** Whether the plug-in accepts assigning [wl] over [edges] for a
    request of the given fanout; always [true] for plug-ins without an
    admission predicate. *)
