(** Blocking-probability-vs-load campaigns over the topology zoo.

    A campaign crosses topologies x assignment strategies x offered
    loads, running one fresh {!Mesh_network} per cell under the
    {!Wdm_traffic.Erlang} driver.  Per-cell seeds are derived from the
    campaign seed and the cell's coordinates, so any cell — and hence
    the whole table — is reproducible independently of evaluation
    order. *)

type cell = {
  topo : string;
  strategy : Assign.strategy;
  point : Wdm_traffic.Erlang.point;
}

type spec = {
  seed : int;
  k : int;  (** wavelengths per fiber *)
  mode : Light_tree.mode;
  splitters : Mesh_network.splitters;
  k_paths : int;
  topos : string list;
  strategies : Assign.strategy list;
  loads : float list;  (** offered Erlangs *)
  arrivals : int;  (** per cell *)
  fanout : Wdm_traffic.Fanout.t;
}

val default : spec
(** nsf14 + janet, first-fit + graph-coloring, loads 4..24, 4000
    arrivals of Zipf(1.3) fanout over 8 wavelengths — the acceptance
    table (2 topologies x 2 strategies). *)

val quick : spec
(** [default] shrunk to 400 arrivals and 3 loads for CI smoke. *)

val run :
  ?telemetry:Wdm_telemetry.Sink.t -> spec -> (cell list, string) result
(** Cells in [topos x strategies x loads] order.  Errors on an unknown
    topology or invalid config rather than raising. *)

val pp_table : Format.formatter -> cell list -> unit
(** Aligned blocking-probability table grouped by topology/strategy. *)
