module Sink = Wdm_telemetry.Sink
module Metrics = Wdm_telemetry.Metrics
module Connection = Wdm_core.Connection
module Endpoint = Wdm_core.Endpoint

type splitters =
  | Split_all
  | Split_none
  | Split_nodes of int list
  | Split_degree_ge of int

module Config = struct
  type t = {
    k : int;
    strategy : Assign.strategy;
    mode : Light_tree.mode;
    splitters : splitters;
    k_paths : int;
  }

  let default =
    {
      k = 8;
      strategy = Assign.First_fit;
      mode = Light_tree.Hierarchy;
      splitters = Split_all;
      k_paths = 3;
    }
end

type route = {
  id : int;
  connection : Connection.t;
  wl : int;
  arcs : (int * int * int) list;
  cost : float;
}

type error =
  | Source_out_of_range of Endpoint.t
  | Destination_out_of_range of Endpoint.t
  | Blocked of { uncovered : int list }

type disconnect_error = Unknown_route of int | Already_released of int

type tel = {
  connects : Metrics.counter;
  blocked : Metrics.counter;
  releases : Metrics.counter;
  active_g : Metrics.gauge;
  slots_g : Metrics.gauge;
}

type t = {
  graph : Graph.t;
  topo_name : string;
  cfg : Config.t;
  mc : bool array;
  assign : Assign.t;
  plugin : Assign.plugin option;
      (* resolved once at build time when cfg.strategy is [Named _];
         plug-ins are pure so sharing the resolution is safe *)
  active : (int, route) Hashtbl.t;
  mutable next_id : int;
  mutable attempts : int;
  tel : tel option;
}

type state = {
  s_topo : string;
  s_k : int;
  s_strategy : Assign.strategy;
  s_mode : Light_tree.mode;
  s_k_paths : int;
  s_mc : bool array;
  s_next_id : int;
  s_attempts : int;
  s_routes : route list;
}

let make_tel = function
  | None -> None
  | Some (sink : Sink.t) ->
    let m = sink.Sink.metrics in
    Some
      {
        connects =
          Metrics.counter m ~help:"Accepted mesh connects"
            "mesh_connects_total";
        blocked =
          Metrics.counter m ~help:"Refused mesh connects"
            "mesh_connects_blocked_total";
        releases =
          Metrics.counter m ~help:"Released mesh routes"
            "mesh_releases_total";
        active_g =
          Metrics.gauge m ~help:"Active mesh routes" "mesh_active_routes";
        slots_g =
          Metrics.gauge m ~help:"Occupied edge-wavelength slots"
            "mesh_occupied_slots";
      }

let resolve_splitters graph = function
  | Split_all -> Ok (Array.make (Graph.n graph + 1) true)
  | Split_none -> Ok (Array.make (Graph.n graph + 1) false)
  | Split_degree_ge d ->
    Ok
      (Array.init
         (Graph.n graph + 1)
         (fun v -> v >= 1 && Graph.degree graph v >= d))
  | Split_nodes nodes ->
    let mc = Array.make (Graph.n graph + 1) false in
    let bad = List.find_opt (fun v -> v < 1 || v > Graph.n graph) nodes in
    (match bad with
    | Some v -> Error (Printf.sprintf "splitter node %d out of range" v)
    | None ->
      List.iter (fun v -> mc.(v) <- true) nodes;
      Ok mc)

let build ?telemetry ~(cfg : Config.t) ~topo_name ~mc graph =
  if cfg.k < 1 || cfg.k > 62 then Error "wavelength count must be in 1..62"
  else if cfg.k_paths < 1 then Error "k_paths must be >= 1"
  else
    let plugin =
      match cfg.strategy with
      | Assign.Named name -> (
        match Assign.resolve_plugin name with
        | Some _ as p -> Ok p
        | None -> Error (Printf.sprintf "unknown strategy %S" name))
      | _ -> Ok None
    in
    match plugin with
    | Error _ as e -> e
    | Ok plugin ->
      Ok
        {
          graph;
          topo_name;
          cfg;
          mc;
          assign = Assign.create ~k:cfg.k ~m:(Graph.m graph);
          plugin;
          active = Hashtbl.create 64;
          next_id = 1;
          attempts = 0;
          tel = make_tel telemetry;
        }

let create ?telemetry ?(config = Config.default) name =
  match Zoo.by_name name with
  | Error _ as e -> e
  | Ok graph -> (
    match resolve_splitters graph config.splitters with
    | Error _ as e -> e
    | Ok mc -> build ?telemetry ~cfg:config ~topo_name:name ~mc graph)

let graph t = t.graph
let topology_name t = t.topo_name
let config t = t.cfg

let mc_nodes t =
  List.filter (fun v -> t.mc.(v)) (List.init (Graph.n t.graph) (fun i -> i + 1))

let active_count t = Hashtbl.length t.active

let utilization t =
  let cap = Graph.m t.graph * t.cfg.k in
  if cap = 0 then 0. else float_of_int (Assign.occupied_slots t.assign) /. float_of_int cap

let gauges t =
  match t.tel with
  | None -> ()
  | Some tel ->
    Metrics.set tel.active_g (float_of_int (Hashtbl.length t.active));
    Metrics.set tel.slots_g (float_of_int (Assign.occupied_slots t.assign))

(* ----- connect --------------------------------------------------------- *)

let path_edges g nodes =
  let rec go acc = function
    | a :: (b :: _ as rest) -> (
      match Graph.edge_between g a b with
      | Some e -> go ((a, b, e) :: acc) rest
      | None -> assert false)
    | _ -> List.rev acc
  in
  go [] nodes

let arc_edge_ids arcs = List.map (fun (_, _, e) -> e) arcs

(* The [Random] strategy's rotation hash: a deterministic mix of the
   monotone attempt counter and the request, so replayed WALs make the
   same "random" choices (the counter advances on refusals too, and
   refused connects are themselves WAL-recorded). *)
let request_hash t (c : Connection.t) =
  let mix h v = (h * 1000003) lxor v in
  let h = mix 0x9e3779b9 t.attempts in
  let h = mix h c.Connection.source.Endpoint.port in
  List.fold_left
    (fun h (d : Endpoint.t) -> mix h d.Endpoint.port)
    h c.Connection.destinations

(* Independent implementation of greedy coloring for unicast requests:
   collect the wavelengths of active routes sharing an edge with the
   candidate path and take the smallest absent one.  Because the
   occupancy mask on those edges is exactly the union of those routes'
   wavelengths, this provably equals first-fit — the test suite holds
   the two implementations to that. *)
let coloring_pick t edge_ids =
  let conflict = ref 0 in
  Hashtbl.iter
    (fun _ (r : route) ->
      if List.exists (fun e -> List.mem e (arc_edge_ids r.arcs)) edge_ids then
        conflict := !conflict lor (1 lsl (r.wl - 1)))
    t.active;
  let rec first wl =
    if wl > t.cfg.k then None
    else if !conflict land (1 lsl (wl - 1)) = 0 then Some wl
    else first (wl + 1)
  in
  first 1

(* Candidate wavelength scan order: the enum strategies dispatch through
   Assign.order exactly as before the plug-in API; a [Named] strategy
   uses its resolved plug-in (cached on [t]). *)
let scan_order t ~hash =
  match t.plugin with
  | Some p -> Assign.plugin_order p t.assign ~hash
  | None -> Assign.order t.assign t.cfg.strategy ~hash

(* A plug-in may additionally veto an otherwise-feasible assignment
   (e.g. the crosstalk-budget decorator); enum strategies never do. *)
let admits t ~edges ~wl ~fanout =
  match t.plugin with
  | Some p -> Assign.plugin_admits p t.assign ~edges ~wl ~fanout
  | None -> true

let try_unicast t ~hash ~src ~dst =
  let paths =
    Shortest.k_shortest t.graph ~src ~dst ~k:t.cfg.k_paths
  in
  let pick_for_path nodes =
    let arcs = path_edges t.graph nodes in
    let edge_ids = arc_edge_ids arcs in
    let chosen =
      match t.cfg.strategy with
      | Assign.Coloring -> (
        match coloring_pick t edge_ids with
        | Some wl when Assign.free_on t.assign ~edges:edge_ids ~wl -> Some wl
        | Some _ ->
          (* conflict-graph coloring and edge occupancy disagree: the
             invariant relating them is broken *)
          assert false
        | None -> None)
      | _ ->
        List.find_opt
          (fun wl ->
            Assign.free_on t.assign ~edges:edge_ids ~wl
            && admits t ~edges:edge_ids ~wl ~fanout:1)
          (scan_order t ~hash)
    in
    Option.map (fun wl -> (arcs, wl)) chosen
  in
  let rec first = function
    | [] -> Error [ dst ]
    | (cost, nodes) :: rest -> (
      match pick_for_path nodes with
      | Some (arcs, wl) -> Ok (arcs, wl, cost)
      | None -> first rest)
  in
  first paths

let try_multicast t ~hash ~src ~dests =
  let order = scan_order t ~hash in
  let fanout = List.length dests in
  let rec first worst = function
    | [] -> Error (match worst with [] -> dests | w -> w)
    | wl :: rest -> (
      let use_edge e = not (Assign.used t.assign ~edge:e ~wl) in
      match
        Light_tree.build ~mode:t.cfg.mode ~mc:t.mc ~use_edge t.graph ~src
          ~dests
      with
      | Ok s
        when admits t ~edges:(arc_edge_ids s.Light_tree.arcs) ~wl ~fanout ->
        Ok (s.Light_tree.arcs, wl, s.Light_tree.cost)
      | Ok _ ->
        (* feasible but vetoed by the plug-in's admission predicate:
           try the next wavelength, reporting nothing uncovered *)
        first worst rest
      | Error uncovered ->
        let worst =
          match worst with
          | [] -> uncovered
          | w when List.length uncovered < List.length w -> uncovered
          | w -> w
        in
        first worst rest)
  in
  first [] order

let connect t (c : Connection.t) =
  t.attempts <- t.attempts + 1;
  let n = Graph.n t.graph in
  let in_range (e : Endpoint.t) = e.Endpoint.port >= 1 && e.Endpoint.port <= n in
  let refuse e =
    (match t.tel with Some tel -> Metrics.inc tel.blocked | None -> ());
    Error e
  in
  if not (in_range c.Connection.source) then
    refuse (Source_out_of_range c.Connection.source)
  else
    match
      List.find_opt (fun d -> not (in_range d)) c.Connection.destinations
    with
    | Some d -> refuse (Destination_out_of_range d)
    | None -> (
      let src = c.Connection.source.Endpoint.port in
      let dests =
        List.sort_uniq compare
          (List.filter
             (fun p -> p <> src)
             (List.map
                (fun (d : Endpoint.t) -> d.Endpoint.port)
                c.Connection.destinations))
      in
      let hash = request_hash t c in
      let outcome =
        match dests with
        | [] -> Ok ([], 1, 0.)
        | [ dst ] -> try_unicast t ~hash ~src ~dst
        | dests -> try_multicast t ~hash ~src ~dests
      in
      match outcome with
      | Error uncovered -> refuse (Blocked { uncovered })
      | Ok (arcs, wl, cost) ->
        let edges = arc_edge_ids arcs in
        if edges <> [] then Assign.occupy t.assign ~edges ~wl;
        let id = t.next_id in
        t.next_id <- id + 1;
        let route = { id; connection = c; wl; arcs; cost } in
        Hashtbl.replace t.active id route;
        (match t.tel with Some tel -> Metrics.inc tel.connects | None -> ());
        gauges t;
        Ok route)

let disconnect t id =
  match Hashtbl.find_opt t.active id with
  | Some r ->
    let edges = arc_edge_ids r.arcs in
    if edges <> [] then Assign.release t.assign ~edges ~wl:r.wl;
    Hashtbl.remove t.active id;
    (match t.tel with Some tel -> Metrics.inc tel.releases | None -> ());
    gauges t;
    Ok r
  | None ->
    if id >= 1 && id < t.next_id then Error (Already_released id)
    else Error (Unknown_route id)

(* ----- snapshot / restore ---------------------------------------------- *)

let snapshot t =
  let routes =
    Hashtbl.fold (fun _ r acc -> r :: acc) t.active []
    |> List.sort (fun a b -> compare a.id b.id)
  in
  {
    s_topo = t.topo_name;
    s_k = t.cfg.k;
    s_strategy = t.cfg.strategy;
    s_mode = t.cfg.mode;
    s_k_paths = t.cfg.k_paths;
    s_mc = Array.copy t.mc;
    s_next_id = t.next_id;
    s_attempts = t.attempts;
    s_routes = routes;
  }

let restore ?telemetry (s : state) =
  match Zoo.by_name s.s_topo with
  | Error _ as e -> e
  | Ok graph ->
    if Array.length s.s_mc <> Graph.n graph + 1 then
      Error "mesh restore: capability array does not match topology"
    else
      let cfg =
        {
          Config.k = s.s_k;
          strategy = s.s_strategy;
          mode = s.s_mode;
          splitters = Split_all (* resolved capability is authoritative *);
          k_paths = s.s_k_paths;
        }
      in
      (match build ?telemetry ~cfg ~topo_name:s.s_topo ~mc:s.s_mc graph with
      | Error _ as e -> e
      | Ok t -> (
        match
          List.iter
            (fun r ->
              let edges = arc_edge_ids r.arcs in
              if edges <> [] then Assign.occupy t.assign ~edges ~wl:r.wl;
              Hashtbl.replace t.active r.id r)
            s.s_routes
        with
        | () ->
          t.next_id <- s.s_next_id;
          t.attempts <- s.s_attempts;
          gauges t;
          Ok t
        | exception Invalid_argument e ->
          Error (Printf.sprintf "mesh restore: %s" e)))

(* ----- printers -------------------------------------------------------- *)

let pp_error ppf = function
  | Source_out_of_range e ->
    Format.fprintf ppf "source %a outside the node range" Endpoint.pp e
  | Destination_out_of_range e ->
    Format.fprintf ppf "destination %a outside the node range" Endpoint.pp e
  | Blocked { uncovered } ->
    Format.fprintf ppf "blocked (uncovered:%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Format.pp_print_int)
      uncovered

let pp_disconnect_error ppf = function
  | Unknown_route id -> Format.fprintf ppf "no route %d was ever allocated" id
  | Already_released id -> Format.fprintf ppf "route %d already released" id

module Error = struct
  type nonrec t = error

  let cause = function
    | Source_out_of_range _ -> "source_out_of_range"
    | Destination_out_of_range _ -> "destination_out_of_range"
    | Blocked _ -> "blocked"

  let to_string e = Format.asprintf "%a" pp_error e

  let json_endpoint (e : Endpoint.t) =
    Wdm_telemetry.Json.Obj
      [
        ("port", Wdm_telemetry.Json.Int e.Endpoint.port);
        ("wl", Wdm_telemetry.Json.Int e.Endpoint.wl);
      ]

  let to_json e =
    let open Wdm_telemetry.Json in
    Obj
      (("cause", String (cause e))
      ::
      (match e with
      | Source_out_of_range ep | Destination_out_of_range ep ->
        [ ("endpoint", json_endpoint ep) ]
      | Blocked { uncovered } ->
        [ ("uncovered", List (List.map (fun i -> Int i) uncovered)) ]))

  let disconnect_cause = function
    | Unknown_route _ -> "unknown_route"
    | Already_released _ -> "already_released"

  let disconnect_to_string e = Format.asprintf "%a" pp_disconnect_error e

  let disconnect_to_json e =
    let open Wdm_telemetry.Json in
    let id = match e with Unknown_route id | Already_released id -> id in
    Obj [ ("cause", String (disconnect_cause e)); ("id", Int id) ]
end

let pp_route ppf r =
  Format.fprintf ppf "route %d wl=%d cost=%.1f arcs=[%a]" r.id r.wl r.cost
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       (fun ppf (a, b, _) -> Format.fprintf ppf "%d>%d" a b))
    r.arcs
