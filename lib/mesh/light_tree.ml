type mode = Tree | Hierarchy

let mode_to_string = function Tree -> "tree" | Hierarchy -> "hierarchy"

let mode_of_string = function
  | "tree" -> Ok Tree
  | "hierarchy" -> Ok Hierarchy
  | s -> Error (Printf.sprintf "unknown mode %S (want tree or hierarchy)" s)

type structure = {
  arcs : (int * int * int) list;
  cost : float;
}

let build ~mode ~mc ~use_edge g ~src ~dests =
  let n = Graph.n g in
  let in_t = Array.make (n + 1) false in
  (* ins counts signal arrivals at a node (the source's transmitter
     counts as one); outs counts departures.  An MI node can grow a new
     branch only while ins > outs — each arrival forwards at most once
     (drop-and-continue).  MC nodes split freely. *)
  let ins = Array.make (n + 1) 0 in
  let outs = Array.make (n + 1) 0 in
  let used_here = Hashtbl.create 16 in
  in_t.(src) <- true;
  ins.(src) <- 1;
  let covered = Array.make (n + 1) false in
  covered.(src) <- true;
  let uncovered = ref (List.filter (fun d -> d <> src) dests) in
  let arcs = ref [] in
  let cost = ref 0. in
  let can_attach v = in_t.(v) && (mc.(v) || ins.(v) > outs.(v)) in
  let graft path =
    let rec go = function
      | a :: (b :: _ as rest) ->
        let e =
          match Graph.edge_between g a b with
          | Some e -> e
          | None -> assert false
        in
        arcs := (a, b, e) :: !arcs;
        cost := !cost +. (Graph.edge g e).Graph.w;
        Hashtbl.replace used_here e ();
        outs.(a) <- outs.(a) + 1;
        ins.(b) <- ins.(b) + 1;
        in_t.(b) <- true;
        covered.(b) <- true;
        go rest
      | _ -> ()
    in
    go path
  in
  let rec loop () =
    match !uncovered with
    | [] -> Ok { arcs = List.rev !arcs; cost = !cost }
    | pending -> (
      let sources =
        List.filter can_attach (List.init n (fun i -> i + 1))
      in
      let skip_node v =
        match mode with
        | Tree -> in_t.(v) (* node-disjoint grafts: attach only at ends *)
        | Hierarchy -> false (* edge-disjoint only: cross-pair reuse *)
      in
      let use_edge' e = use_edge e && not (Hashtbl.mem used_here e) in
      let target v = (not covered.(v)) && List.mem v pending in
      match
        Shortest.grow ~sources ~skip_node ~use_edge:use_edge' ~target g
      with
      | None -> Error (List.sort compare pending)
      | Some (_, path) ->
        graft path;
        uncovered := List.filter (fun d -> not covered.(d)) pending;
        loop ())
  in
  loop ()
