(** Multicast structures under sparse splitting.

    Nodes are either multicast-capable (MC: an optical splitter, may
    branch arbitrarily) or multicast-incapable (MI: drop-and-continue
    only — each incoming signal can be tapped locally and forwarded on
    at most one outgoing link).  Following the Zhou-Molnar-Cousin
    Light-Hierarchy papers:

    - [Tree] builds a classic light-tree: every node appears at most
      once, so an MI node's out-degree is capped at 1 and grafts may
      only attach at MC nodes or at current leaves.
    - [Hierarchy] relaxes trees to light-hierarchies: {e edges} are
      used at most once, but a node may be crossed several times via
      distinct incoming/outgoing edge pairs ("cross-pair reuse"), which
      lets routes bypass MI branching limits that would block a tree.

    Construction is Member-Only-style greedy: repeatedly graft the
    nearest uncovered destination onto the structure via the cheapest
    path from any attach-capable node, with deterministic tie-breaks
    inherited from {!Shortest}. *)

type mode = Tree | Hierarchy

val mode_of_string : string -> (mode, string) result
val mode_to_string : mode -> string

type structure = {
  arcs : (int * int * int) list;
      (** (from, to, edge id), in construction order — a directed
          walk-forest rooted at the source *)
  cost : float;  (** sum of arc edge weights *)
}

val build :
  mode:mode ->
  mc:bool array ->
  use_edge:(int -> bool) ->
  Graph.t ->
  src:int ->
  dests:int list ->
  (structure, int list) result
(** Covers [dests] from [src] on the subgraph passing [use_edge].
    [mc] is indexed by node (1-based; index 0 unused).  An MI source
    has a single transmitter (out-degree 1 until revisited in
    [Hierarchy] mode).  [Error uncovered] lists the destinations (in
    ascending order) no further graft could reach. *)
