(** Named mesh topologies and parametric generators.

    The three named networks follow the topologies shipped by the
    rwa-wdm-sim exemplar (NSFNET T1 backbone, RedCLARA, JANET); edge
    weights are unit hop costs, so routing minimizes hop count with
    deterministic tie-breaks.  The generators cover the synthetic
    shapes the hotspot-ring and torus literature sweeps over. *)

val nsf14 : unit -> Graph.t
(** The 14-node / 21-link NSFNET T1 backbone. *)

val clara : unit -> Graph.t
(** The 13-node RedCLARA Latin-American academic backbone. *)

val janet : unit -> Graph.t
(** The 7-node UK JANET core. *)

val ring : int -> Graph.t
(** [ring n]: cycle on [n >= 3] nodes. *)

val torus : int -> int -> Graph.t
(** [torus rows cols]: wrap-around grid, [rows, cols >= 2] and
    [rows * cols >= 3]; node [(r, c)] (0-based) is [r * cols + c + 1]. *)

val by_name : string -> (Graph.t, string) result
(** Parses ["nsf14"], ["clara"], ["janet"], ["ringN"] (e.g. ["ring8"])
    and ["torusRxC"] (e.g. ["torus4x4"]). *)

val names : string list
(** The named (non-parametric) topologies, for CLI docs. *)
