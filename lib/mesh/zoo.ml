let unit_links l = List.map (fun (u, v) -> (u, v, 1.)) l

(* NSFNET T1: the standard 14-node, 21-link backbone used throughout
   the RWA literature (nodes renumbered 1-based). *)
let nsf14 () =
  Graph.make ~n:14
    (unit_links
       [
         (1, 2); (1, 3); (1, 6); (2, 3); (2, 4); (3, 9); (4, 5); (4, 7);
         (4, 14); (5, 6); (5, 10); (6, 11); (6, 13); (7, 8); (8, 9); (9, 10);
         (10, 12); (10, 14); (11, 12); (11, 13); (12, 14);
       ])

(* RedCLARA: 13 PoPs on the Latin-American ring with cross links. *)
let clara () =
  Graph.make ~n:13
    (unit_links
       [
         (1, 2); (2, 3); (3, 4); (4, 5); (5, 6); (6, 7); (7, 8); (8, 9);
         (9, 10); (10, 11); (11, 12); (12, 13); (13, 1); (2, 7); (3, 9);
         (5, 11); (6, 13); (4, 12);
       ])

(* JANET core: 7 nodes, 11 links. *)
let janet () =
  Graph.make ~n:7
    (unit_links
       [
         (1, 2); (1, 3); (2, 3); (2, 4); (2, 5); (3, 5); (4, 5); (4, 6);
         (4, 7); (5, 7); (6, 7);
       ])

let ring n =
  if n < 3 then invalid_arg "Zoo.ring: need n >= 3";
  let links = ref [] in
  for i = 1 to n - 1 do
    links := (i, i + 1) :: !links
  done;
  Graph.make ~n (unit_links ((n, 1) :: !links))

let torus rows cols =
  if rows < 2 || cols < 2 then invalid_arg "Zoo.torus: need rows, cols >= 2";
  let node r c = (r * cols) + c + 1 in
  let links = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let right = node r ((c + 1) mod cols) in
      let down = node ((r + 1) mod rows) c in
      let here = node r c in
      (* a 2-wide dimension wraps onto the same neighbor: keep one *)
      if here <> right && not (List.mem (right, here) !links) then
        links := (here, right) :: !links;
      if here <> down && not (List.mem (down, here) !links) then
        links := (here, down) :: !links
    done
  done;
  Graph.make ~n:(rows * cols) (unit_links !links)

let names = [ "nsf14"; "clara"; "janet" ]

let by_name name =
  let parse_int s = match int_of_string_opt s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "bad topology %S" name)
  in
  match name with
  | "nsf14" | "nsf" -> Ok (nsf14 ())
  | "clara" -> Ok (clara ())
  | "janet" -> Ok (janet ())
  | _ -> (
    let try_make f = match f () with
      | g -> Ok g
      | exception Invalid_argument e -> Error e
    in
    match String.index_opt name 'x' with
    | Some _ when String.length name > 5 && String.sub name 0 5 = "torus" -> (
      let dims = String.sub name 5 (String.length name - 5) in
      match String.split_on_char 'x' dims with
      | [ r; c ] -> (
        match (parse_int r, parse_int c) with
        | Ok r, Ok c -> try_make (fun () -> torus r c)
        | (Error _ as e), _ | _, (Error _ as e) -> e)
      | _ -> Error (Printf.sprintf "bad topology %S" name))
    | _ ->
      if String.length name > 4 && String.sub name 0 4 = "ring" then
        match parse_int (String.sub name 4 (String.length name - 4)) with
        | Ok n -> try_make (fun () -> ring n)
        | Error _ as e -> e
      else
        Error
          (Printf.sprintf
             "unknown topology %S (want nsf14, clara, janet, ringN or torusRxC)"
             name))
