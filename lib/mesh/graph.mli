(** Undirected weighted multigraph-free graphs for mesh RWA.

    Nodes are 1-based ints (matching {!Wdm_core.Endpoint.t.port});
    edges are canonicalized with [u < v] and numbered densely from 0 in
    a deterministic order (sorted by endpoints), so per-edge wavelength
    occupancy can live in plain arrays indexed by edge id.  Graphs are
    immutable; all mutable RWA state lives in {!Assign} and
    {!Mesh_network}. *)

type edge = private { u : int; v : int; w : float; id : int }
(** One undirected fiber link, [1 <= u < v <= n], [w > 0]. *)

type t

val make : n:int -> (int * int * float) list -> t
(** [make ~n links] builds a graph on nodes [1..n].  Links are given as
    [(u, v, w)] in either endpoint order and are canonicalized,
    deduplicated checks applied.
    @raise Invalid_argument on [n < 1], an endpoint outside [1..n], a
    self-loop, a duplicate link, or a non-positive weight. *)

val n : t -> int
(** Node count. *)

val m : t -> int
(** Edge count. *)

val edges : t -> edge array
(** Indexed by edge id; do not mutate. *)

val edge : t -> int -> edge
(** By id. @raise Invalid_argument out of range. *)

val adj : t -> int -> (int * int) list
(** [(neighbor, edge id)] pairs in ascending neighbor order. *)

val edge_between : t -> int -> int -> int option
(** Edge id joining two nodes, if any (either order). *)

val degree : t -> int -> int
val pp : Format.formatter -> t -> unit
