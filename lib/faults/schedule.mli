(** Seedable fault schedules.

    A schedule is a timeline of inject/clear events against a step-based
    driver ({!Wdm_traffic.Churn.run_with_faults}): an event at step [s]
    is applied just before the [s]-th churn step executes.

    {!generate} draws one from the classic availability model: each
    component alternates exponentially distributed uptimes (mean
    [mtbf]) and downtimes (mean [mttr]), independently, starting
    healthy.  Everything is driven by the supplied [Random.State], so a
    campaign is reproducible from its seed. *)

type action = Inject of Fault.t | Clear of Fault.t

type event = { step : int; action : action }

type t = event list
(** Sorted by [step], ascending; for one component, inject and clear
    events alternate. *)

val of_events : event list -> t
(** Sorts into schedule order (stable, so same-step events keep their
    relative order). *)

val generate :
  rng:Random.State.t ->
  universe:Fault.t list ->
  mtbf:float ->
  mttr:float ->
  steps:int ->
  t
(** Failure/repair processes for every component of [universe] over
    [steps] churn steps, [mtbf]/[mttr] in steps.  @raise
    Invalid_argument unless [mtbf > 0.], [mttr > 0.] and [steps >= 0]. *)

val injections : t -> int
val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
