type action = Inject of Fault.t | Clear of Fault.t

type event = { step : int; action : action }

type t = event list

let of_events events =
  List.stable_sort (fun a b -> Int.compare a.step b.step) events

(* Inverse-CDF exponential draw.  [Random.State.float rng 1.] can
   return exactly 0., which would make [u = 1] and the dwell 0 — a
   zero-length up/down period, i.e. an inject at step 0 or a same-step
   inject/clear pair.  Resample so every period is strictly positive,
   as the alternating renewal model promises. *)
let rec exponential rng mean =
  let u = 1. -. Random.State.float rng 1. in
  if u >= 1. then exponential rng mean else -.mean *. Float.log u

let generate ~rng ~universe ~mtbf ~mttr ~steps =
  if mtbf <= 0. || mttr <= 0. then
    invalid_arg "Schedule.generate: mtbf and mttr must be positive";
  if steps < 0 then invalid_arg "Schedule.generate: steps must be >= 0";
  let component fault =
    (* alternate up (mean mtbf) / down (mean mttr) from time 0 *)
    let rec go acc time up =
      let dwell = exponential rng (if up then mtbf else mttr) in
      let time = time +. dwell in
      let step = int_of_float (Float.ceil time) in
      if step > steps then List.rev acc
      else
        let action = if up then Inject fault else Clear fault in
        go ({ step; action } :: acc) time (not up)
    in
    go [] 0. true
  in
  of_events (List.concat_map component universe)

let injections t =
  List.length (List.filter (fun e -> match e.action with Inject _ -> true | Clear _ -> false) t)

let pp_event ppf { step; action } =
  match action with
  | Inject f -> Format.fprintf ppf "@%d inject %a" step Fault.pp f
  | Clear f -> Format.fprintf ppf "@%d clear %a" step Fault.pp f

let pp ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_event ppf t
