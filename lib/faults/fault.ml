type t =
  | Middle of int
  | Input_module of int
  | Output_module of int
  | Stage1_laser of { input : int; middle : int; wl : int }
  | Stage2_laser of { middle : int; output : int; wl : int }
  | Converter of { middle : int; output : int }

let compare = Stdlib.compare
let equal a b = compare a b = 0

let check name lo hi v =
  if v < lo || v > hi then
    Error (Printf.sprintf "%s %d out of range [%d, %d]" name v lo hi)
  else Ok ()

let ( let* ) = Result.bind

let validate ~m ~r ~k = function
  | Middle j -> check "middle module" 1 m j
  | Input_module i -> check "input module" 1 r i
  | Output_module p -> check "output module" 1 r p
  | Stage1_laser { input; middle; wl } ->
    let* () = check "input module" 1 r input in
    let* () = check "middle module" 1 m middle in
    check "wavelength" 1 k wl
  | Stage2_laser { middle; output; wl } ->
    let* () = check "middle module" 1 m middle in
    let* () = check "output module" 1 r output in
    check "wavelength" 1 k wl
  | Converter { middle; output } ->
    let* () = check "middle module" 1 m middle in
    check "output module" 1 r output

let class_name = function
  | Middle _ -> "middle"
  | Input_module _ -> "input-module"
  | Output_module _ -> "output-module"
  | Stage1_laser _ -> "stage1-laser"
  | Stage2_laser _ -> "stage2-laser"
  | Converter _ -> "converter"

let middles ~m = List.init m (fun j -> Middle (j + 1))

let universe ~m ~r ~k =
  let range n f = List.init n (fun i -> f (i + 1)) in
  middles ~m
  @ range r (fun i -> Input_module i)
  @ range r (fun p -> Output_module p)
  @ List.concat_map
      (fun input ->
        List.concat_map
          (fun middle ->
            range k (fun wl -> Stage1_laser { input; middle; wl }))
          (range m Fun.id))
      (range r Fun.id)
  @ List.concat_map
      (fun middle ->
        List.concat_map
          (fun output ->
            range k (fun wl -> Stage2_laser { middle; output; wl }))
          (range r Fun.id))
      (range m Fun.id)
  @ List.concat_map
      (fun middle -> range r (fun output -> Converter { middle; output }))
      (range m Fun.id)

let pp ppf = function
  | Middle j -> Format.fprintf ppf "middle m%d" j
  | Input_module i -> Format.fprintf ppf "input module i%d" i
  | Output_module p -> Format.fprintf ppf "output module o%d" p
  | Stage1_laser { input; middle; wl } ->
    Format.fprintf ppf "laser l%d on i%d->m%d" wl input middle
  | Stage2_laser { middle; output; wl } ->
    Format.fprintf ppf "laser l%d on m%d->o%d" wl middle output
  | Converter { middle; output } ->
    Format.fprintf ppf "converter m%d->o%d" middle output

let to_string f = Format.asprintf "%a" pp f

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
