(** Component faults of a three-stage WDM switching fabric.

    The nonblocking theorems assume every resource of the Fig. 8
    topology is healthy.  Real optical fabrics lose components in a few
    characteristic ways — a whole module goes dark, one laser on one
    fiber stops emitting a wavelength, one wavelength converter drifts
    out of tune — and a production switch must keep routing around
    whatever is left.  This module is the shared vocabulary for those
    failure classes; {!Wdm_multistage.Network.inject_fault} gives them
    routing semantics.

    Indices are 1-based and follow {!Wdm_multistage.Topology}: [r]
    input and output modules, [m] middle modules, [k] wavelengths per
    fiber. *)

type t =
  | Middle of int  (** middle module entirely out of service *)
  | Input_module of int
      (** input module dark: nothing can be sourced through it *)
  | Output_module of int
      (** output module dark: none of its ports are reachable *)
  | Stage1_laser of { input : int; middle : int; wl : int }
      (** the transmitter for wavelength [wl] on the fiber from input
          module [input] to middle module [middle] is dead; the other
          [k - 1] wavelengths of that fiber still work *)
  | Stage2_laser of { middle : int; output : int; wl : int }
      (** same failure on a middle-to-output fiber *)
  | Converter of { middle : int; output : int }
      (** the wavelength converter driving middle module [middle]'s
          port toward output module [output] is stuck: signals pass
          through unconverted, so that hop can only carry its incoming
          wavelength.  Only meaningful where the middle stage converts
          (MSDW/MAW modules, i.e. the MAW-dominant construction); a
          no-op for MSW middle modules, which never convert. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val validate : m:int -> r:int -> k:int -> t -> (unit, string) result
(** Checks every index against the fabric dimensions. *)

val class_name : t -> string
(** Failure class for reporting: ["middle"], ["input-module"],
    ["output-module"], ["stage1-laser"], ["stage2-laser"],
    ["converter"]. *)

val middles : m:int -> t list
(** [Middle 1 .. Middle m]. *)

val universe : m:int -> r:int -> k:int -> t list
(** Every individual fault the fabric can suffer, all classes. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
