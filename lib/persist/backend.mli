(** The replicated state machine behind the WAL, the snapshots and the
    server: either the paper's multistage fabric or a mesh RWA network.

    One WAL format, one op codec, one digest definition cover both —
    the state snapshot carries the dispatch tag.  A multistage state
    begins with its topology's [n] (always [>= 1]); a mesh state
    begins with a [0] word followed by a version byte, so every
    pre-mesh snapshot and WAL on disk decodes exactly as before and a
    mesh snapshot can never be misread as a fabric.

    The multistage state codec lives here (moved from {!Store}, which
    re-exports it) so the dispatching functions sit below {!Store} in
    the module order and recovery can restore either kind. *)

module Network = Wdm_multistage.Network
module Mesh = Wdm_mesh.Mesh_network

type t = Net of Network.t | Mesh of Mesh.t

val kind : t -> string
(** ["multistage"] or ["mesh"], for logs and /readyz. *)

(** {1 Multistage state codec} *)

val encode_net_state : Network.snapshot -> string
val decode_net_state : string -> (Network.snapshot, string) result
val encode_route : Buffer.t -> Network.route -> unit
val decode_route : Wire.reader -> Network.route

(** {1 Mesh state codec} *)

val encode_mesh_state : Mesh.state -> string
val decode_mesh_state : string -> (Mesh.state, string) result
(** Arc edge ids and route costs are re-derived from the topology on
    decode, so the encoding stores only what replay cannot rebuild. *)

(** {1 Dispatch} *)

val is_mesh_state : string -> bool
(** Peeks the leading tag word. *)

val encode_state : t -> string
(** Deterministic byte encoding of the backend's current state. *)

val restore :
  ?telemetry:Wdm_telemetry.Sink.t -> string -> (t, string) result
(** Decode an {!encode_state} string and rebuild a live backend. *)

val apply : t -> Op.t -> (unit, string) result
(** Replay one op with {!Op.apply} semantics: refusals of [Connect] /
    [Repair] are [Ok] (the WAL records refused admissions too), a
    failed [Disconnect] or fault op is [Error].  Mesh backends refuse
    fault ops as [Error] — they cannot appear in a mesh WAL because
    the service layer never commits their [Server_error] responses. *)

val digest : t -> int
(** CRC32 of {!encode_state} — the recovery-check fingerprint. *)

(** {1 Mesh-to-wire adapters}

    The control-plane protocol speaks {!Network.route} /
    {!Network.error}; mesh results are mapped onto that vocabulary so
    clients, the response codec and checksums work unchanged.  A mesh
    route's arcs become hops: [middle] is the arc's tail node,
    [stage1_wl] the structure's wavelength, [serves] the single
    (head node, wavelength) pair. *)

val net_route_of_mesh : Mesh.route -> Network.route
val net_error_of_mesh : Mesh.error -> Network.error
val net_disconnect_error_of_mesh : Mesh.disconnect_error -> Network.disconnect_error
