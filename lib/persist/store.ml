module Tel = Wdm_telemetry
module Network = Wdm_multistage.Network

(* ----- state codec -----------------------------------------------------

   The codec itself lives in Backend (which dispatches between the
   multistage fabric and the mesh network); these aliases keep the
   historical Store API stable. *)

let encode_state = Backend.encode_net_state
let decode_state = Backend.decode_net_state
let encode_route = Backend.encode_route
let decode_route = Backend.decode_route
let digest net = Backend.digest (Backend.Net net)

let fail (r : Wire.reader) reason =
  raise (Wire.Decode_error { offset = r.Wire.pos; reason })

(* ----- snapshot files -------------------------------------------------- *)

let snapshot_path ~wal ~seq = Printf.sprintf "%s.snap.%d" wal seq

let write_state ~path ~seq ~wal_offset state =
  let b = Buffer.create 4096 in
  Wire.put_u32 b seq;
  Wire.put_int b wal_offset;
  Buffer.add_string b state;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Wire.header ~kind:'S');
      output_string oc (Wire.frame (Buffer.contents b));
      flush oc)

let write_snapshot ~path ~seq ~wal_offset snap =
  write_state ~path ~seq ~wal_offset (encode_state snap)

(* Reads the framed (seq, wal_offset, state-bytes) triple without
   committing to a state kind — recovery dispatches on the bytes. *)
let read_snapshot_raw path =
  let contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
    with Sys_error e -> Error e
  in
  match contents with
  | Error e -> Error (Printf.sprintf "cannot read snapshot: %s" e)
  | Ok src -> (
    match Wire.check_header ~kind:'S' src with
    | Error e -> Error e
    | Ok () -> (
      match Wire.read_frame src ~pos:Wire.header_len with
      | Wire.End -> Error "snapshot has no payload record"
      | Wire.Torn at -> Error (Printf.sprintf "torn snapshot at byte %d" at)
      | Wire.Corrupt { offset; reason } ->
        Error (Printf.sprintf "%s at byte %d" reason offset)
      | Wire.Frame { payload; next } ->
        if next <> String.length src then
          Error "trailing bytes after snapshot record"
        else (
          match
            let r = Wire.reader payload in
            let seq = Wire.get_u32 r in
            let wal_offset = Wire.get_int r in
            if wal_offset < Wire.header_len then
              fail r "snapshot WAL offset inside the header";
            let state = String.sub payload r.Wire.pos
                (String.length payload - r.Wire.pos) in
            (seq, wal_offset, state)
          with
          | triple -> Ok triple
          | exception Wire.Decode_error { offset; reason } ->
            Error (Printf.sprintf "%s at payload offset %d" reason offset))))

let read_snapshot path =
  match read_snapshot_raw path with
  | Error _ as e -> e
  | Ok (seq, wal_offset, state) -> (
    match decode_state state with
    | Ok snap -> Ok (seq, wal_offset, snap)
    | Error e -> Error e)

let list_snapshots ~wal =
  let dir = Filename.dirname wal in
  let prefix = Filename.basename wal ^ ".snap." in
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.to_list entries
    |> List.filter_map (fun name ->
           if String.length name > String.length prefix
              && String.sub name 0 (String.length prefix) = prefix
           then
             let suffix =
               String.sub name (String.length prefix)
                 (String.length name - String.length prefix)
             in
             match int_of_string_opt suffix with
             | Some seq when seq >= 0 -> Some (seq, Filename.concat dir name)
             | _ -> None
           else None)
    |> List.sort (fun (a, _) (b, _) -> compare b a)

let delete_snapshots ~wal ~keep_above =
  List.iter
    (fun (seq, path) ->
      if seq < keep_above then try Sys.remove path with Sys_error _ -> ())
    (list_snapshots ~wal)

(* ----- recording session ----------------------------------------------- *)

type instruments = {
  c_snapshots : Tel.Metrics.counter;
  h_snapshot : Tel.Histogram.t;
  sink : Tel.Sink.t;
}

type t = {
  wal_path : string;
  writer : Wal.writer;
  retain : int;
  mutable seq : int;
  instruments : instruments option;
}

let session_instruments (sink : Tel.Sink.t) =
  let reg = sink.Tel.Sink.metrics in
  {
    c_snapshots =
      Tel.Metrics.counter reg ~help:"Snapshots written"
        "persist_snapshots_total";
    h_snapshot =
      Tel.Metrics.histogram reg ~help:"Latency of one snapshot write"
        "persist_snapshot_latency_seconds";
    sink;
  }

let take_snapshot t backend =
  let offset = Wal.tell t.writer in
  let write () =
    write_state
      ~path:(snapshot_path ~wal:t.wal_path ~seq:t.seq)
      ~seq:t.seq ~wal_offset:offset
      (Backend.encode_state backend)
  in
  (match t.instruments with
  | None -> write ()
  | Some i ->
    let t0 = Tel.Sink.now i.sink in
    write ();
    Tel.Histogram.observe i.h_snapshot (Tel.Sink.now i.sink -. t0);
    Tel.Metrics.inc i.c_snapshots);
  delete_snapshots ~wal:t.wal_path ~keep_above:(t.seq - t.retain + 1);
  t.seq <- t.seq + 1

let start_backend ?telemetry ?policy ?(retain = 2) ~wal backend =
  if retain < 1 then invalid_arg "Store.start: retain must be >= 1";
  delete_snapshots ~wal ~keep_above:max_int;
  let writer = Wal.create ?telemetry ?policy wal in
  let t =
    {
      wal_path = wal;
      writer;
      retain;
      seq = 0;
      instruments = Option.map session_instruments telemetry;
    }
  in
  take_snapshot t backend;
  t

let start ?telemetry ?policy ?retain ~wal net =
  start_backend ?telemetry ?policy ?retain ~wal (Backend.Net net)

let log t op = Wal.append t.writer op
let checkpoint_backend t backend = take_snapshot t backend
let checkpoint t net = take_snapshot t (Backend.Net net)
let wal_records t = Wal.records t.writer
let wal_offset t = Wal.tell t.writer
let snapshot_seq t = t.seq
let close t = Wal.close t.writer

(* ----- recovery -------------------------------------------------------- *)

type recovery = {
  network : Network.t;
  snapshot_seq : int;
  snapshot_offset : int;
  replayed : int;
  tear : int option;
}

type backend_recovery = {
  backend : Backend.t;
  b_snapshot_seq : int;
  b_snapshot_offset : int;
  b_replayed : int;
  b_tear : int option;
}

type recovery_error =
  | No_snapshot of string
  | Corrupt of { path : string; offset : int; reason : string }

let pp_recovery_error ppf = function
  | No_snapshot why -> Format.fprintf ppf "no usable snapshot: %s" why
  | Corrupt { path; offset; reason } ->
    Format.fprintf ppf "corrupt state in %s at byte %d: %s" path offset reason

(* Wal.read reports mid-stream corruption as a formatted message; keep
   the byte offset machine-readable by re-scanning here. *)
let scan_wal path =
  let contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
    with Sys_error e -> Error (Corrupt { path; offset = 0; reason = e })
  in
  match contents with
  | Error _ as e -> e
  | Ok src -> (
    match Wire.check_header ~kind:'W' src with
    | Error reason -> Error (Corrupt { path; offset = 0; reason })
    | Ok () ->
      let rec scan pos acc =
        match Wire.read_frame src ~pos with
        | Wire.End -> Ok (List.rev acc, None, pos)
        | Wire.Torn at -> Ok (List.rev acc, Some at, at)
        | Wire.Corrupt { offset; reason } ->
          Error (Corrupt { path; offset; reason })
        | Wire.Frame { payload; next } -> (
          match Op.decode_string payload with
          | Ok op -> scan next ((pos, op) :: acc)
          | Error reason -> Error (Corrupt { path; offset = pos; reason }))
      in
      scan Wire.header_len [])

let recover_backend ?telemetry ?(truncate = true) ~wal () =
  match scan_wal wal with
  | Error _ as e -> e
  | Ok (ops, tear, valid_end) ->
    (* A snapshot is usable only if its WAL offset is a record boundary
       of the valid prefix — otherwise it describes a different file. *)
    let boundary off =
      off = Wire.header_len || off = valid_end
      || List.exists (fun (pos, _) -> pos = off) ops
    in
    let candidates = list_snapshots ~wal in
    let rec pick last_err = function
      | [] ->
        Error
          (No_snapshot
             (match last_err with
             | Some e -> e
             | None -> "no snapshot files found"))
      | (seq, path) :: rest -> (
        match read_snapshot_raw path with
        | Error e -> pick (Some (Printf.sprintf "%s: %s" path e)) rest
        | Ok (file_seq, wal_off, state) ->
          if file_seq <> seq then
            pick
              (Some
                 (Printf.sprintf "%s: sequence %d does not match filename"
                    path file_seq))
              rest
          else if not (boundary wal_off) then
            pick
              (Some
                 (Printf.sprintf
                    "%s: WAL offset %d is not a record boundary" path wal_off))
              rest
          else Ok (seq, wal_off, state))
    in
    (match pick None candidates with
    | Error _ as e -> e
    | Ok (b_snapshot_seq, b_snapshot_offset, state) -> (
      let t0 = Option.map (fun s -> Tel.Sink.now s) telemetry in
      match Backend.restore ?telemetry state with
      | Error reason ->
        Error
          (Corrupt
             {
               path = snapshot_path ~wal ~seq:b_snapshot_seq;
               offset = Wire.header_len;
               reason;
             })
      | Ok backend ->
        let tail =
          List.filter (fun (pos, _) -> pos >= b_snapshot_offset) ops
        in
        let rec replay count = function
          | [] -> Ok count
          | (pos, op) :: rest -> (
            match Backend.apply backend op with
            | Ok () -> replay (count + 1) rest
            | Error reason -> Error (Corrupt { path = wal; offset = pos; reason })
            | exception Invalid_argument reason ->
              Error (Corrupt { path = wal; offset = pos; reason }))
        in
        (match replay 0 tail with
        | Error _ as e -> e
        | Ok b_replayed ->
          (match (tear, truncate) with
          | Some at, true -> Wal.truncate_at wal at
          | _ -> ());
          (match (telemetry, t0) with
          | Some sink, Some t0 ->
            let reg = sink.Tel.Sink.metrics in
            Tel.Metrics.inc
              (Tel.Metrics.counter reg ~help:"Completed recoveries"
                 "persist_recoveries_total");
            Tel.Histogram.observe
              (Tel.Metrics.histogram reg
                 ~help:"Latency of snapshot restore + WAL replay"
                 "persist_restore_latency_seconds")
              (Tel.Sink.now sink -. t0)
          | _ -> ());
          Ok
            {
              backend;
              b_snapshot_seq;
              b_snapshot_offset;
              b_replayed;
              b_tear = tear;
            })))

let recover ?telemetry ?truncate ~wal () =
  match recover_backend ?telemetry ?truncate ~wal () with
  | Error _ as e -> e
  | Ok r -> (
    match r.backend with
    | Backend.Net network ->
      Ok
        {
          network;
          snapshot_seq = r.b_snapshot_seq;
          snapshot_offset = r.b_snapshot_offset;
          replayed = r.b_replayed;
          tear = r.b_tear;
        }
    | Backend.Mesh _ ->
      Error
        (No_snapshot
           "the WAL holds a mesh session; recover it with recover_backend"))

(* ----- resume ---------------------------------------------------------- *)

(* Recover, then continue the same WAL instead of truncating it: the
   writer reopens in append mode, the snapshot sequence carries on past
   the newest file on disk, and an immediate checkpoint pins the
   recovered state at the current offset (also healing the case where
   the newest snapshot had become inconsistent with the truncated
   WAL). *)
let resume_backend ?telemetry ?policy ?(retain = 2) ~wal () =
  if retain < 1 then invalid_arg "Store.resume: retain must be >= 1";
  match recover_backend ?telemetry ~truncate:true ~wal () with
  | Error _ as e -> e
  | Ok recovery ->
    let records =
      match Wal.read wal with
      | Ok { Wal.ops; _ } -> List.length ops
      | Error _ -> 0
    in
    let writer = Wal.open_append ?telemetry ?policy ~records wal in
    let seq =
      match list_snapshots ~wal with (s, _) :: _ -> s + 1 | [] -> 0
    in
    let t =
      {
        wal_path = wal;
        writer;
        retain;
        seq;
        instruments = Option.map session_instruments telemetry;
      }
    in
    take_snapshot t recovery.backend;
    Ok (t, recovery)

let resume ?telemetry ?policy ?retain ~wal () =
  match resume_backend ?telemetry ?policy ?retain ~wal () with
  | Error _ as e -> e
  | Ok (t, r) -> (
    match r.backend with
    | Backend.Net network ->
      Ok
        ( t,
          {
            network;
            snapshot_seq = r.b_snapshot_seq;
            snapshot_offset = r.b_snapshot_offset;
            replayed = r.b_replayed;
            tear = r.b_tear;
          } )
    | Backend.Mesh _ ->
      close t;
      Error
        (No_snapshot
           "the WAL holds a mesh session; resume it with resume_backend"))
