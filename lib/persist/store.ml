module Tel = Wdm_telemetry
module Network = Wdm_multistage.Network
module Topology = Wdm_multistage.Topology
module Model = Wdm_core.Model

(* ----- state codec ----------------------------------------------------- *)

let construction_tag = function
  | Network.Msw_dominant -> 0
  | Network.Maw_dominant -> 1

let strategy_tag = function
  | Network.Min_intersection -> 0
  | Network.First_fit -> 1
  | Network.Exhaustive -> 2

let link_impl_tag = function Network.Bitset -> 0 | Network.Reference -> 1
let model_tag = function Model.MSW -> 0 | Model.MSDW -> 1 | Model.MAW -> 2

let fail (r : Wire.reader) reason =
  raise (Wire.Decode_error { offset = r.Wire.pos; reason })

let put_route b (route : Network.route) =
  Wire.put_int b route.Network.id;
  Op.encode_connection b route.Network.connection;
  Wire.put_u32 b route.Network.input_switch;
  Wire.put_u32 b (List.length route.Network.hops);
  List.iter
    (fun (h : Network.hop) ->
      Wire.put_u32 b h.Network.middle;
      Wire.put_u32 b h.Network.stage1_wl;
      Wire.put_u32 b (List.length h.Network.serves);
      List.iter
        (fun (o, w) ->
          Wire.put_u32 b o;
          Wire.put_u32 b w)
        h.Network.serves)
    route.Network.hops

let get_route r : Network.route =
  let id = Wire.get_int r in
  if id < 0 then fail r "negative route id";
  let connection = Op.decode_connection r in
  let input_switch = Wire.get_u32 r in
  let nhops = Wire.get_u32 r in
  if nhops > 0xffff then fail r "implausible hop count";
  let hops =
    List.init nhops (fun _ ->
        let middle = Wire.get_u32 r in
        let stage1_wl = Wire.get_u32 r in
        let nserves = Wire.get_u32 r in
        if nserves > 0xffff then fail r "implausible serve count";
        let serves =
          List.init nserves (fun _ ->
              let o = Wire.get_u32 r in
              let w = Wire.get_u32 r in
              (o, w))
        in
        { Network.middle; stage1_wl; serves })
  in
  { Network.id; connection; input_switch; hops }

let encode_route = put_route
let decode_route = get_route

let encode_state (s : Network.snapshot) =
  let b = Buffer.create 4096 in
  let topo = s.Network.s_topology in
  Wire.put_u32 b topo.Topology.n;
  Wire.put_u32 b topo.Topology.m;
  Wire.put_u32 b topo.Topology.r;
  Wire.put_u32 b topo.Topology.k;
  Wire.put_u8 b (construction_tag s.Network.s_construction);
  Wire.put_u8 b (model_tag s.Network.s_output_model);
  Wire.put_u32 b s.Network.s_x_limit;
  Wire.put_u8 b (strategy_tag s.Network.s_strategy);
  Wire.put_u8 b (link_impl_tag s.Network.s_link_impl);
  Wire.put_u32 b s.Network.s_rearrange_limit;
  Wire.put_int b s.Network.s_next_id;
  Wire.put_u32 b (List.length s.Network.s_routes);
  List.iter (put_route b) s.Network.s_routes;
  Wire.put_u32 b (List.length s.Network.s_faults);
  List.iter (Op.encode_fault b) s.Network.s_faults;
  Buffer.contents b

let decode_state_reader r : Network.snapshot =
  let n = Wire.get_u32 r in
  let m = Wire.get_u32 r in
  let rr = Wire.get_u32 r in
  let k = Wire.get_u32 r in
  let s_topology =
    match Topology.make ~n ~m ~r:rr ~k with
    | Ok t -> t
    | Error e -> fail r (Printf.sprintf "invalid topology: %s" e)
  in
  let s_construction =
    match Wire.get_u8 r with
    | 0 -> Network.Msw_dominant
    | 1 -> Network.Maw_dominant
    | t -> fail r (Printf.sprintf "unknown construction tag %d" t)
  in
  let s_output_model =
    match Wire.get_u8 r with
    | 0 -> Model.MSW
    | 1 -> Model.MSDW
    | 2 -> Model.MAW
    | t -> fail r (Printf.sprintf "unknown model tag %d" t)
  in
  let s_x_limit = Wire.get_u32 r in
  let s_strategy =
    match Wire.get_u8 r with
    | 0 -> Network.Min_intersection
    | 1 -> Network.First_fit
    | 2 -> Network.Exhaustive
    | t -> fail r (Printf.sprintf "unknown strategy tag %d" t)
  in
  let s_link_impl =
    match Wire.get_u8 r with
    | 0 -> Network.Bitset
    | 1 -> Network.Reference
    | t -> fail r (Printf.sprintf "unknown link impl tag %d" t)
  in
  let s_rearrange_limit = Wire.get_u32 r in
  let s_next_id = Wire.get_int r in
  let nroutes = Wire.get_u32 r in
  if nroutes > 0xffffff then fail r "implausible route count";
  let s_routes = List.init nroutes (fun _ -> get_route r) in
  let nfaults = Wire.get_u32 r in
  if nfaults > 0xffffff then fail r "implausible fault count";
  let s_faults = List.init nfaults (fun _ -> Op.decode_fault r) in
  Wire.expect_end r;
  {
    Network.s_topology;
    s_construction;
    s_output_model;
    s_x_limit;
    s_strategy;
    s_link_impl;
    s_rearrange_limit;
    s_next_id;
    s_routes;
    s_faults;
  }

let decode_state s =
  match decode_state_reader (Wire.reader s) with
  | snap -> Ok snap
  | exception Wire.Decode_error { offset; reason } ->
    Error (Printf.sprintf "%s at state offset %d" reason offset)

let digest net = Crc32.string (encode_state (Network.snapshot net))

(* ----- snapshot files -------------------------------------------------- *)

let snapshot_path ~wal ~seq = Printf.sprintf "%s.snap.%d" wal seq

let write_snapshot ~path ~seq ~wal_offset snap =
  let b = Buffer.create 4096 in
  Wire.put_u32 b seq;
  Wire.put_int b wal_offset;
  Buffer.add_string b (encode_state snap);
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Wire.header ~kind:'S');
      output_string oc (Wire.frame (Buffer.contents b));
      flush oc)

let read_snapshot path =
  let contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
    with Sys_error e -> Error e
  in
  match contents with
  | Error e -> Error (Printf.sprintf "cannot read snapshot: %s" e)
  | Ok src -> (
    match Wire.check_header ~kind:'S' src with
    | Error e -> Error e
    | Ok () -> (
      match Wire.read_frame src ~pos:Wire.header_len with
      | Wire.End -> Error "snapshot has no payload record"
      | Wire.Torn at -> Error (Printf.sprintf "torn snapshot at byte %d" at)
      | Wire.Corrupt { offset; reason } ->
        Error (Printf.sprintf "%s at byte %d" reason offset)
      | Wire.Frame { payload; next } ->
        if next <> String.length src then
          Error "trailing bytes after snapshot record"
        else (
          match
            let r = Wire.reader payload in
            let seq = Wire.get_u32 r in
            let wal_offset = Wire.get_int r in
            if wal_offset < Wire.header_len then
              fail r "snapshot WAL offset inside the header";
            let state = String.sub payload r.Wire.pos
                (String.length payload - r.Wire.pos) in
            (seq, wal_offset, state)
          with
          | seq, wal_offset, state -> (
            match decode_state state with
            | Ok snap -> Ok (seq, wal_offset, snap)
            | Error e -> Error e)
          | exception Wire.Decode_error { offset; reason } ->
            Error (Printf.sprintf "%s at payload offset %d" reason offset))))

let list_snapshots ~wal =
  let dir = Filename.dirname wal in
  let prefix = Filename.basename wal ^ ".snap." in
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.to_list entries
    |> List.filter_map (fun name ->
           if String.length name > String.length prefix
              && String.sub name 0 (String.length prefix) = prefix
           then
             let suffix =
               String.sub name (String.length prefix)
                 (String.length name - String.length prefix)
             in
             match int_of_string_opt suffix with
             | Some seq when seq >= 0 -> Some (seq, Filename.concat dir name)
             | _ -> None
           else None)
    |> List.sort (fun (a, _) (b, _) -> compare b a)

let delete_snapshots ~wal ~keep_above =
  List.iter
    (fun (seq, path) ->
      if seq < keep_above then try Sys.remove path with Sys_error _ -> ())
    (list_snapshots ~wal)

(* ----- recording session ----------------------------------------------- *)

type instruments = {
  c_snapshots : Tel.Metrics.counter;
  h_snapshot : Tel.Histogram.t;
  sink : Tel.Sink.t;
}

type t = {
  wal_path : string;
  writer : Wal.writer;
  retain : int;
  mutable seq : int;
  instruments : instruments option;
}

let session_instruments (sink : Tel.Sink.t) =
  let reg = sink.Tel.Sink.metrics in
  {
    c_snapshots =
      Tel.Metrics.counter reg ~help:"Snapshots written"
        "persist_snapshots_total";
    h_snapshot =
      Tel.Metrics.histogram reg ~help:"Latency of one snapshot write"
        "persist_snapshot_latency_seconds";
    sink;
  }

let take_snapshot t net =
  let offset = Wal.tell t.writer in
  let write () =
    write_snapshot
      ~path:(snapshot_path ~wal:t.wal_path ~seq:t.seq)
      ~seq:t.seq ~wal_offset:offset (Network.snapshot net)
  in
  (match t.instruments with
  | None -> write ()
  | Some i ->
    let t0 = Tel.Sink.now i.sink in
    write ();
    Tel.Histogram.observe i.h_snapshot (Tel.Sink.now i.sink -. t0);
    Tel.Metrics.inc i.c_snapshots);
  delete_snapshots ~wal:t.wal_path ~keep_above:(t.seq - t.retain + 1);
  t.seq <- t.seq + 1

let start ?telemetry ?policy ?(retain = 2) ~wal net =
  if retain < 1 then invalid_arg "Store.start: retain must be >= 1";
  delete_snapshots ~wal ~keep_above:max_int;
  let writer = Wal.create ?telemetry ?policy wal in
  let t =
    {
      wal_path = wal;
      writer;
      retain;
      seq = 0;
      instruments = Option.map session_instruments telemetry;
    }
  in
  take_snapshot t net;
  t

let log t op = Wal.append t.writer op
let checkpoint t net = take_snapshot t net
let wal_records t = Wal.records t.writer
let wal_offset t = Wal.tell t.writer
let snapshot_seq t = t.seq
let close t = Wal.close t.writer

(* ----- recovery -------------------------------------------------------- *)

type recovery = {
  network : Network.t;
  snapshot_seq : int;
  snapshot_offset : int;
  replayed : int;
  tear : int option;
}

type recovery_error =
  | No_snapshot of string
  | Corrupt of { path : string; offset : int; reason : string }

let pp_recovery_error ppf = function
  | No_snapshot why -> Format.fprintf ppf "no usable snapshot: %s" why
  | Corrupt { path; offset; reason } ->
    Format.fprintf ppf "corrupt state in %s at byte %d: %s" path offset reason

(* Wal.read reports mid-stream corruption as a formatted message; keep
   the byte offset machine-readable by re-scanning here. *)
let scan_wal path =
  let contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
    with Sys_error e -> Error (Corrupt { path; offset = 0; reason = e })
  in
  match contents with
  | Error _ as e -> e
  | Ok src -> (
    match Wire.check_header ~kind:'W' src with
    | Error reason -> Error (Corrupt { path; offset = 0; reason })
    | Ok () ->
      let rec scan pos acc =
        match Wire.read_frame src ~pos with
        | Wire.End -> Ok (List.rev acc, None, pos)
        | Wire.Torn at -> Ok (List.rev acc, Some at, at)
        | Wire.Corrupt { offset; reason } ->
          Error (Corrupt { path; offset; reason })
        | Wire.Frame { payload; next } -> (
          match Op.decode_string payload with
          | Ok op -> scan next ((pos, op) :: acc)
          | Error reason -> Error (Corrupt { path; offset = pos; reason }))
      in
      scan Wire.header_len [])

let recover ?telemetry ?(truncate = true) ~wal () =
  match scan_wal wal with
  | Error _ as e -> e
  | Ok (ops, tear, valid_end) ->
    (* A snapshot is usable only if its WAL offset is a record boundary
       of the valid prefix — otherwise it describes a different file. *)
    let boundary off =
      off = Wire.header_len || off = valid_end
      || List.exists (fun (pos, _) -> pos = off) ops
    in
    let candidates = list_snapshots ~wal in
    let rec pick last_err = function
      | [] ->
        Error
          (No_snapshot
             (match last_err with
             | Some e -> e
             | None -> "no snapshot files found"))
      | (seq, path) :: rest -> (
        match read_snapshot path with
        | Error e -> pick (Some (Printf.sprintf "%s: %s" path e)) rest
        | Ok (file_seq, wal_off, snap) ->
          if file_seq <> seq then
            pick
              (Some
                 (Printf.sprintf "%s: sequence %d does not match filename"
                    path file_seq))
              rest
          else if not (boundary wal_off) then
            pick
              (Some
                 (Printf.sprintf
                    "%s: WAL offset %d is not a record boundary" path wal_off))
              rest
          else Ok (seq, wal_off, snap))
    in
    (match pick None candidates with
    | Error _ as e -> e
    | Ok (snapshot_seq, snapshot_offset, snap) -> (
      let t0 = Option.map (fun s -> Tel.Sink.now s) telemetry in
      match Network.restore ?telemetry snap with
      | exception Invalid_argument reason ->
        Error
          (Corrupt
             {
               path = snapshot_path ~wal ~seq:snapshot_seq;
               offset = Wire.header_len;
               reason;
             })
      | network ->
        let tail = List.filter (fun (pos, _) -> pos >= snapshot_offset) ops in
        let rec replay count = function
          | [] -> Ok count
          | (pos, op) :: rest -> (
            match Op.apply network op with
            | Ok _ -> replay (count + 1) rest
            | Error reason -> Error (Corrupt { path = wal; offset = pos; reason })
            | exception Invalid_argument reason ->
              Error (Corrupt { path = wal; offset = pos; reason }))
        in
        (match replay 0 tail with
        | Error _ as e -> e
        | Ok replayed ->
          (match (tear, truncate) with
          | Some at, true -> Wal.truncate_at wal at
          | _ -> ());
          (match (telemetry, t0) with
          | Some sink, Some t0 ->
            let reg = sink.Tel.Sink.metrics in
            Tel.Metrics.inc
              (Tel.Metrics.counter reg ~help:"Completed recoveries"
                 "persist_recoveries_total");
            Tel.Histogram.observe
              (Tel.Metrics.histogram reg
                 ~help:"Latency of snapshot restore + WAL replay"
                 "persist_restore_latency_seconds")
              (Tel.Sink.now sink -. t0)
          | _ -> ());
          Ok { network; snapshot_seq; snapshot_offset; replayed; tear })))

(* ----- resume ---------------------------------------------------------- *)

(* Recover, then continue the same WAL instead of truncating it: the
   writer reopens in append mode, the snapshot sequence carries on past
   the newest file on disk, and an immediate checkpoint pins the
   recovered state at the current offset (also healing the case where
   the newest snapshot had become inconsistent with the truncated
   WAL). *)
let resume ?telemetry ?policy ?(retain = 2) ~wal () =
  if retain < 1 then invalid_arg "Store.resume: retain must be >= 1";
  match recover ?telemetry ~truncate:true ~wal () with
  | Error _ as e -> e
  | Ok recovery ->
    let records =
      match Wal.read wal with
      | Ok { Wal.ops; _ } -> List.length ops
      | Error _ -> 0
    in
    let writer = Wal.open_append ?telemetry ?policy ~records wal in
    let seq =
      match list_snapshots ~wal with (s, _) :: _ -> s + 1 | [] -> 0
    in
    let t =
      {
        wal_path = wal;
        writer;
        retain;
        seq;
        instruments = Option.map session_instruments telemetry;
      }
    in
    take_snapshot t recovery.network;
    Ok (t, recovery)
