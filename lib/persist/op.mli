(** The network operation vocabulary and its binary codec.

    One value of {!t} is one state-changing (or deliberately refused)
    call against a {!Wdm_multistage.Network}: the bench harness records
    them to measure routing throughput, the WAL persists them for crash
    recovery, and the tests replay them to pin down determinism.  All
    three share this codec, so a trace recorded anywhere replays
    anywhere.

    Replay correctness rests on the network's determinism contract
    (DESIGN.md §6): connects are recorded as *requests*, not results —
    re-executing the same request sequence against the same starting
    state reallocates byte-identical routes and ids, which {!apply}
    relies on and {!route_checksum} verifies. *)

open Wdm_core
module Network = Wdm_multistage.Network

type t =
  | Connect of Connection.t
      (** a [Network.connect] request (recorded whether or not it was
          admitted: refused requests leave no state but do advance
          telemetry, and replaying them costs nothing) *)
  | Disconnect of int  (** [Network.disconnect] by route id *)
  | Inject_fault of Wdm_faults.Fault.t
  | Clear_fault of Wdm_faults.Fault.t
  | Repair of { connection : Connection.t; rehomed : bool }
      (** a repair attempt for a fault victim via
          [Network.connect_rearrangeable]; [rehomed] records the
          original outcome so replay divergence is detectable *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Codec}

    [encode] appends the payload bytes of one op (tag byte, then the
    op-specific fields); framing and CRC are {!Wire}'s job. *)

val encode : Buffer.t -> t -> unit

val encode_connection : Buffer.t -> Connection.t -> unit
val decode_connection : Wire.reader -> Connection.t

val encode_fault : Buffer.t -> Wdm_faults.Fault.t -> unit
val decode_fault : Wire.reader -> Wdm_faults.Fault.t

val encode_endpoint : Buffer.t -> Wdm_core.Endpoint.t -> unit
val decode_endpoint : Wire.reader -> Wdm_core.Endpoint.t
(** The endpoint, connection and fault sub-codecs, shared with the
    snapshot format ({!Store}) and the control-plane responses
    ({!Resp}) so a value serializes identically everywhere. *)

val decode : Wire.reader -> t
(** Consumes exactly one op.  @raise Wire.Decode_error on malformed
    input (bad tag, out-of-range field, structurally invalid
    connection). *)

val decode_string : string -> (t, string) result
(** Decodes a whole payload; trailing bytes are an error. *)

(** {1 Replay} *)

val apply : Network.t -> t -> (Network.route option, string) result
(** Applies one op with the semantics the recorders use: [Connect] via
    [Network.connect] ([Ok None] when refused — a refusal is a valid
    recorded outcome), [Repair] via [Network.connect_rearrangeable],
    [Disconnect] of an unknown id is an [Error] (the trace is
    inconsistent with the state).  Returns the route a connect-like op
    admitted, for checksumming. *)

val route_checksum : int -> Network.route -> int
(** Folds one admitted route into a running hop checksum (the bench
    harness's byte-identical-routes check, promoted here so bench,
    recovery tests and CI smoke checks agree on the formula). *)
