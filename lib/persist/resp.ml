open Wdm_core
module Network = Wdm_multistage.Network
module Fault = Wdm_faults.Fault

(* ----- requests -------------------------------------------------------- *)

(* Control tags live at the top of the byte range so the op vocabulary
   (tags 1-5) can keep growing underneath them. *)
let tag_digest = 0xF1
let tag_stats = 0xF2
let tag_promote = 0xF3
let tag_batch = 0xF4
let max_batch = 4096

type request =
  | Admit of Op.t
  | Get_digest
  | Get_stats
  | Promote
  | Batch of request list

let rec encode_request b = function
  | Admit op -> Op.encode b op
  | Get_digest -> Wire.put_u8 b tag_digest
  | Get_stats -> Wire.put_u8 b tag_stats
  | Promote -> Wire.put_u8 b tag_promote
  | Batch reqs ->
    let n = List.length reqs in
    if n > max_batch then invalid_arg "Resp.encode_request: batch too large";
    if List.exists (function Batch _ -> true | _ -> false) reqs then
      invalid_arg "Resp.encode_request: nested batch";
    Wire.put_u8 b tag_batch;
    Wire.put_u32 b n;
    List.iter (encode_request b) reqs

(* [depth] forbids Batch-in-Batch: one level of pipelining is the whole
   contract, and rejecting nesting at decode keeps the server's
   execution loop flat and the response arity obvious. *)
let rec decode_request_at ~depth r =
  (* peek: ops read their own tag byte *)
  if r.Wire.pos >= String.length r.Wire.src then
    raise (Wire.Decode_error { offset = r.Wire.pos; reason = "empty request" });
  let tag = Char.code r.Wire.src.[r.Wire.pos] in
  if tag = tag_digest then (
    r.Wire.pos <- r.Wire.pos + 1;
    Get_digest)
  else if tag = tag_stats then (
    r.Wire.pos <- r.Wire.pos + 1;
    Get_stats)
  else if tag = tag_promote then (
    r.Wire.pos <- r.Wire.pos + 1;
    Promote)
  else if tag = tag_batch then begin
    if depth > 0 then
      raise (Wire.Decode_error { offset = r.Wire.pos; reason = "nested batch" });
    r.Wire.pos <- r.Wire.pos + 1;
    let n = Wire.get_u32 r in
    if n > max_batch then
      raise
        (Wire.Decode_error
           { offset = r.Wire.pos;
             reason = Printf.sprintf "implausible batch size %d" n });
    Batch (List.init n (fun _ -> decode_request_at ~depth:(depth + 1) r))
  end
  else Admit (Op.decode r)

let decode_request r = decode_request_at ~depth:0 r

(* ----- responses ------------------------------------------------------- *)

type t =
  | Admitted of { route : Network.route; moved : int }
  | Refused of Network.error
  | Released of Network.route
  | Release_failed of Network.disconnect_error
  | Fault_applied of { torn_down : int }
  | Fault_cleared
  | Digest_is of int
  | Stats_json of string
  | Server_error of string
  | Not_leader of { leader : string }
  | Promoted of { seq : int }
  | Batch_reply of t list
      (** one response per request of a {!Batch}, in request order *)

let fail (r : Wire.reader) reason =
  raise (Wire.Decode_error { offset = r.Wire.pos; reason })

let put_string b s =
  Wire.put_u32 b (String.length s);
  Buffer.add_string b s

let get_string r =
  let n = Wire.get_u32 r in
  if n > Wire.max_payload then fail r "implausible string length";
  if r.Wire.pos + n > String.length r.Wire.src then fail r "truncated string";
  let s = String.sub r.Wire.src r.Wire.pos n in
  r.Wire.pos <- r.Wire.pos + n;
  s

let put_int_list b l =
  Wire.put_u32 b (List.length l);
  List.iter (Wire.put_u32 b) l

let get_int_list r =
  let n = Wire.get_u32 r in
  if n > 0xffff then fail r "implausible list length";
  List.init n (fun _ -> Wire.get_u32 r)

let model_tag = function Model.MSW -> 0 | Model.MSDW -> 1 | Model.MAW -> 2

let get_model r =
  match Wire.get_u8 r with
  | 0 -> Model.MSW
  | 1 -> Model.MSDW
  | 2 -> Model.MAW
  | tag -> fail r (Printf.sprintf "unknown model tag %d" tag)

let put_assignment_error b = function
  | Assignment.Source_reused e ->
    Wire.put_u8 b 0;
    Op.encode_endpoint b e
  | Assignment.Destination_reused e ->
    Wire.put_u8 b 1;
    Op.encode_endpoint b e
  | Assignment.Source_out_of_range e ->
    Wire.put_u8 b 2;
    Op.encode_endpoint b e
  | Assignment.Destination_out_of_range e ->
    Wire.put_u8 b 3;
    Op.encode_endpoint b e
  | Assignment.Model_violation { model; connection } ->
    Wire.put_u8 b 4;
    Wire.put_u8 b (model_tag model);
    Op.encode_connection b connection

let get_assignment_error r =
  match Wire.get_u8 r with
  | 0 -> Assignment.Source_reused (Op.decode_endpoint r)
  | 1 -> Assignment.Destination_reused (Op.decode_endpoint r)
  | 2 -> Assignment.Source_out_of_range (Op.decode_endpoint r)
  | 3 -> Assignment.Destination_out_of_range (Op.decode_endpoint r)
  | 4 ->
    let model = get_model r in
    let connection = Op.decode_connection r in
    Assignment.Model_violation { model; connection }
  | tag -> fail r (Printf.sprintf "unknown assignment error tag %d" tag)

let put_error b = function
  | Network.Invalid e ->
    Wire.put_u8 b 0;
    put_assignment_error b e
  | Network.Source_busy e ->
    Wire.put_u8 b 1;
    Op.encode_endpoint b e
  | Network.Destination_busy e ->
    Wire.put_u8 b 2;
    Op.encode_endpoint b e
  | Network.Unserviceable f ->
    Wire.put_u8 b 3;
    Op.encode_fault b f
  | Network.Blocked { fanout_switches; available_middles; uncovered } ->
    Wire.put_u8 b 4;
    put_int_list b fanout_switches;
    put_int_list b available_middles;
    put_int_list b uncovered

let get_error r =
  match Wire.get_u8 r with
  | 0 -> Network.Invalid (get_assignment_error r)
  | 1 -> Network.Source_busy (Op.decode_endpoint r)
  | 2 -> Network.Destination_busy (Op.decode_endpoint r)
  | 3 -> Network.Unserviceable (Op.decode_fault r)
  | 4 ->
    let fanout_switches = get_int_list r in
    let available_middles = get_int_list r in
    let uncovered = get_int_list r in
    Network.Blocked { fanout_switches; available_middles; uncovered }
  | tag -> fail r (Printf.sprintf "unknown error tag %d" tag)

let rec encode b = function
  | Admitted { route; moved } ->
    Wire.put_u8 b 1;
    Wire.put_u32 b moved;
    Store.encode_route b route
  | Refused e ->
    Wire.put_u8 b 2;
    put_error b e
  | Released route ->
    Wire.put_u8 b 3;
    Store.encode_route b route
  | Release_failed e ->
    Wire.put_u8 b 4;
    (match e with
    | Network.Unknown_route id ->
      Wire.put_u8 b 0;
      Wire.put_int b id
    | Network.Already_released id ->
      Wire.put_u8 b 1;
      Wire.put_int b id)
  | Fault_applied { torn_down } ->
    Wire.put_u8 b 5;
    Wire.put_u32 b torn_down
  | Fault_cleared -> Wire.put_u8 b 6
  | Digest_is d ->
    Wire.put_u8 b 7;
    Wire.put_int b d
  | Stats_json s ->
    Wire.put_u8 b 8;
    put_string b s
  | Server_error s ->
    Wire.put_u8 b 9;
    put_string b s
  | Not_leader { leader } ->
    Wire.put_u8 b 10;
    put_string b leader
  | Promoted { seq } ->
    Wire.put_u8 b 11;
    Wire.put_int b seq
  | Batch_reply resps ->
    let n = List.length resps in
    if n > max_batch then invalid_arg "Resp.encode: batch reply too large";
    if List.exists (function Batch_reply _ -> true | _ -> false) resps then
      invalid_arg "Resp.encode: nested batch reply";
    Wire.put_u8 b 12;
    Wire.put_u32 b n;
    List.iter (encode b) resps

let rec decode_at ~depth r =
  match Wire.get_u8 r with
  | 1 ->
    let moved = Wire.get_u32 r in
    let route = Store.decode_route r in
    Admitted { route; moved }
  | 2 -> Refused (get_error r)
  | 3 -> Released (Store.decode_route r)
  | 4 -> (
    match Wire.get_u8 r with
    | 0 -> Release_failed (Network.Unknown_route (Wire.get_int r))
    | 1 -> Release_failed (Network.Already_released (Wire.get_int r))
    | tag -> fail r (Printf.sprintf "unknown disconnect error tag %d" tag))
  | 5 -> Fault_applied { torn_down = Wire.get_u32 r }
  | 6 -> Fault_cleared
  | 7 -> Digest_is (Wire.get_int r)
  | 8 -> Stats_json (get_string r)
  | 9 -> Server_error (get_string r)
  | 10 -> Not_leader { leader = get_string r }
  | 11 -> Promoted { seq = Wire.get_int r }
  | 12 ->
    if depth > 0 then fail r "nested batch reply";
    let n = Wire.get_u32 r in
    if n > max_batch then fail r (Printf.sprintf "implausible batch size %d" n);
    Batch_reply (List.init n (fun _ -> decode_at ~depth:(depth + 1) r))
  | tag -> fail r (Printf.sprintf "unknown response tag %d" tag)

let decode r = decode_at ~depth:0 r

let decode_string s =
  let r = Wire.reader s in
  match
    let resp = decode r in
    Wire.expect_end r;
    resp
  with
  | resp -> Ok resp
  | exception Wire.Decode_error { offset; reason } ->
    Error (Printf.sprintf "%s at payload offset %d" reason offset)

let rec equal a b =
  match (a, b) with
  | Admitted a, Admitted b -> a.moved = b.moved && a.route = b.route
  | Refused a, Refused b -> a = b
  | Released a, Released b -> a = b
  | Release_failed a, Release_failed b -> a = b
  | Fault_applied a, Fault_applied b -> a.torn_down = b.torn_down
  | Fault_cleared, Fault_cleared -> true
  | Digest_is a, Digest_is b -> a = b
  | Stats_json a, Stats_json b | Server_error a, Server_error b -> a = b
  | Not_leader a, Not_leader b -> a.leader = b.leader
  | Promoted a, Promoted b -> a.seq = b.seq
  | Batch_reply a, Batch_reply b ->
    List.length a = List.length b && List.for_all2 equal a b
  | _ -> false

let rec pp ppf = function
  | Admitted { route; moved } ->
    Format.fprintf ppf "admitted(moved %d) %a" moved Network.pp_route route
  | Refused e -> Format.fprintf ppf "refused: %a" Network.pp_error e
  | Released route -> Format.fprintf ppf "released %a" Network.pp_route route
  | Release_failed e ->
    Format.fprintf ppf "release failed: %a" Network.pp_disconnect_error e
  | Fault_applied { torn_down } ->
    Format.fprintf ppf "fault applied, %d routes torn down" torn_down
  | Fault_cleared -> Format.pp_print_string ppf "fault cleared"
  | Digest_is d -> Format.fprintf ppf "digest %d" d
  | Stats_json s -> Format.fprintf ppf "stats %s" s
  | Server_error s -> Format.fprintf ppf "server error: %s" s
  | Not_leader { leader } ->
    Format.fprintf ppf "not the leader%s"
      (if leader = "" then "" else " (try " ^ leader ^ ")")
  | Promoted { seq } -> Format.fprintf ppf "promoted at seq %d" seq
  | Batch_reply resps ->
    Format.fprintf ppf "batch(%d):@ [%a]" (List.length resps)
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp)
      resps

(* ----- execution ------------------------------------------------------- *)

let execute_mesh net = function
  | Op.Connect c -> (
    match Backend.Mesh.connect net c with
    | Ok route -> Admitted { route = Backend.net_route_of_mesh route; moved = 0 }
    | Error e -> Refused (Backend.net_error_of_mesh e))
  | Op.Disconnect id -> (
    match Backend.Mesh.disconnect net id with
    | Ok route -> Released (Backend.net_route_of_mesh route)
    | Error e -> Release_failed (Backend.net_disconnect_error_of_mesh e))
  | Op.Inject_fault _ | Op.Clear_fault _ ->
    (* answered but never WAL-committed: committed_op drops
       Server_error responses, so a mesh WAL stays replayable *)
    Server_error "mesh backend does not support fault ops"
  | Op.Repair { connection; rehomed = _ } -> (
    (* no rearrangement pass on a mesh: a repair is a fresh admit *)
    match Backend.Mesh.connect net connection with
    | Ok route -> Admitted { route = Backend.net_route_of_mesh route; moved = 0 }
    | Error e -> Refused (Backend.net_error_of_mesh e))

let rec execute_backend ?(stats = fun () -> "{}") backend = function
  | Batch reqs -> Batch_reply (List.map (execute_backend ~stats backend) reqs)
  | Get_digest -> Digest_is (Backend.digest backend)
  | Get_stats -> Stats_json (stats ())
  (* Promotion is a server-role concern; a bare network has no role to
     change, and the server intercepts the request before execute. *)
  | Promote -> Server_error "promotion is handled by the server"
  | Admit op -> (
    match backend with
    | Backend.Mesh net -> execute_mesh net op
    | Backend.Net net -> execute_net net op)

and execute_net net op =
  (match op with
    | Op.Connect c -> (
      match Network.connect net c with
      | Ok route -> Admitted { route; moved = 0 }
      | Error e -> Refused e)
    | Op.Disconnect id -> (
      match Network.disconnect net id with
      | Ok route -> Released route
      | Error e -> Release_failed e)
    | Op.Inject_fault f -> (
      match Network.inject_fault net f with
      | victims -> Fault_applied { torn_down = List.length victims }
      | exception Invalid_argument e -> Server_error e)
    | Op.Clear_fault f -> (
      match Network.clear_fault net f with
      | () -> Fault_cleared
      | exception Invalid_argument e -> Server_error e)
    | Op.Repair { connection; rehomed = _ } -> (
      match Network.connect_rearrangeable net connection with
      | Ok (route, moved) -> Admitted { route; moved }
      | Error e -> Refused e))

let execute ?stats net req = execute_backend ?stats (Backend.Net net) req
