module Tel = Wdm_telemetry

type flush_policy = Buffered | Flush_every of int | Fsync_every of int

type instruments = {
  c_records : Tel.Metrics.counter;
  c_bytes : Tel.Metrics.counter;
  h_fsync : Tel.Histogram.t;
  sink : Tel.Sink.t;
}

type writer = {
  oc : out_channel;
  policy : flush_policy;
  mutable records : int;
  mutable unsynced : int;  (* records since the last fsync *)
  instruments : instruments option;
}

let check_policy = function
  | Buffered -> ()
  | Flush_every n ->
    if n < 1 then invalid_arg "Wal.create: Flush_every interval must be >= 1"
  | Fsync_every n ->
    if n < 1 then invalid_arg "Wal.create: Fsync_every interval must be >= 1"

let instruments_of_sink (sink : Tel.Sink.t) =
  let reg = sink.Tel.Sink.metrics in
  {
    c_records =
      Tel.Metrics.counter reg ~help:"Operations appended to the WAL"
        "persist_wal_records_total";
    c_bytes =
      Tel.Metrics.counter reg ~help:"Bytes appended to the WAL (incl. framing)"
        "persist_wal_bytes_total";
    h_fsync =
      Tel.Metrics.histogram reg ~help:"Latency of one WAL fsync"
        "persist_fsync_latency_seconds";
    sink;
  }

(* A signal landing mid-fsync (SIGTERM grace, SIGUSR1 promote) returns
   EINTR with the data NOT yet durable — swallowing it silently would
   void the durability the policy promised, so retry until the kernel
   answers.  Other errors (e.g. fsync on a pipe in tests) stay
   best-effort as before. *)
let rec fsync_retry fd =
  match Unix.fsync fd with
  | () -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> fsync_retry fd
  | exception Unix.Unix_error _ -> ()

let fsync w =
  flush w.oc;
  (match w.instruments with
  | None -> fsync_retry (Unix.descr_of_out_channel w.oc)
  | Some i ->
    let t0 = Tel.Sink.now i.sink in
    fsync_retry (Unix.descr_of_out_channel w.oc);
    Tel.Histogram.observe i.h_fsync (Tel.Sink.now i.sink -. t0));
  w.unsynced <- 0

let create ?telemetry ?(policy = Flush_every 1) path =
  check_policy policy;
  let oc = open_out_bin path in
  output_string oc (Wire.header ~kind:'W');
  let w =
    {
      oc;
      policy;
      records = 0;
      unsynced = 0;
      instruments = Option.map instruments_of_sink telemetry;
    }
  in
  (match policy with Buffered -> () | Flush_every _ | Fsync_every _ -> flush oc);
  w

(* Reopen an existing WAL for appending: the header is verified, the
   channel positioned at end-of-file.  [records] seeds the writer's
   record count (the caller knows it from scanning the file) so
   Flush_every cadence and the records counter stay meaningful. *)
let open_append ?telemetry ?(policy = Flush_every 1) ?(records = 0) path =
  check_policy policy;
  let header =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        if in_channel_length ic < Wire.header_len then
          Error "file shorter than its header"
        else Ok (really_input_string ic Wire.header_len))
  in
  (match Result.bind header (Wire.check_header ~kind:'W') with
  | Ok () -> ()
  | Error e -> invalid_arg ("Wal.open_append: " ^ e));
  let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 path in
  seek_out oc (out_channel_length oc);
  {
    oc;
    policy;
    records;
    unsynced = 0;
    instruments = Option.map instruments_of_sink telemetry;
  }

let append w op =
  let b = Buffer.create 64 in
  Op.encode b op;
  let framed = Wire.frame (Buffer.contents b) in
  output_string w.oc framed;
  w.records <- w.records + 1;
  w.unsynced <- w.unsynced + 1;
  (match w.instruments with
  | None -> ()
  | Some i ->
    Tel.Metrics.inc i.c_records;
    Tel.Metrics.add i.c_bytes (String.length framed));
  match w.policy with
  | Buffered -> ()
  | Flush_every n -> if w.records mod n = 0 then flush w.oc
  | Fsync_every n ->
    flush w.oc;
    if w.unsynced >= n then fsync w

let records w = w.records

let tell w =
  flush w.oc;
  pos_out w.oc

let sync w = fsync w

let close w =
  flush w.oc;
  close_out w.oc

(* ----- reading --------------------------------------------------------- *)

type read_outcome = { ops : (int * Op.t) list; tear : int option }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read path =
  match read_file path with
  | exception Sys_error e -> Error (Printf.sprintf "cannot read WAL: %s" e)
  | src -> (
    match Wire.check_header ~kind:'W' src with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok () ->
      let rec scan pos acc =
        match Wire.read_frame src ~pos with
        | Wire.End -> Ok { ops = List.rev acc; tear = None }
        | Wire.Torn at -> Ok { ops = List.rev acc; tear = Some at }
        | Wire.Corrupt { offset; reason } ->
          Error (Printf.sprintf "%s: %s at byte %d" path reason offset)
        | Wire.Frame { payload; next } -> (
          match Op.decode_string payload with
          | Ok op -> scan next ((pos, op) :: acc)
          | Error e ->
            Error (Printf.sprintf "%s: undecodable op at byte %d: %s" path pos e))
      in
      scan Wire.header_len [])

(* The truncation must itself be durable: without the fsyncs a crash
   right after recovery can resurrect the torn bytes (the shortened
   length was only in the page cache), and the next recovery would see
   a different file than the one this recovery validated.  The
   directory fsync covers filesystems that journal data and metadata
   separately. *)
let truncate_at path offset =
  if offset < Wire.header_len then
    invalid_arg "Wal.truncate_at: offset inside the header";
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd offset;
      fsync_retry fd);
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dirfd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close dirfd with Unix.Unix_error _ -> ())
      (fun () -> fsync_retry dirfd)
