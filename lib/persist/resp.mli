(** Control-plane requests and responses, in the WAL's dialect.

    The server speaks the persistence layer's language: a request is
    one CRC32-framed {!Op} payload (plus two read-only control
    requests in a reserved tag range), a response is one framed value
    of {!t}.  Reusing the {!Op} and {!Store} sub-codecs means a bench
    trace, a WAL record and a network request are interchangeable
    byte strings — anything that can replay a WAL can drive a server,
    and vice versa.

    DESIGN.md §9 documents the full wire exchange (header handshake,
    frame layout, batching semantics). *)

module Network = Wdm_multistage.Network

(** {1 Requests} *)

type request =
  | Admit of Op.t
      (** a state-changing op, encoded exactly as in the WAL
          (tags 1-5) *)
  | Get_digest
      (** whole-state fingerprint ({!Store.digest}) of the live
          network — tag [0xF1] *)
  | Get_stats
      (** server-side telemetry snapshot as JSON — tag [0xF2] *)
  | Promote
      (** ask a follower to become the leader — tag [0xF3]; answered
          with {!t.Promoted} by a follower, [Server_error] by a node
          that is already the leader *)
  | Batch of request list
      (** pipelining: up to {!max_batch} requests carried in one frame
          — tag [0xF4] — executed in order and answered with a single
          {!t.Batch_reply} of the same arity.  Nesting is rejected at
          both encode and decode. *)

val max_batch : int
(** Upper bound on {!request.Batch} arity (and [Batch_reply]'s). *)

val encode_request : Buffer.t -> request -> unit
(** @raise Invalid_argument on an oversized or nested [Batch]. *)

val decode_request : Wire.reader -> request
(** Consumes exactly one request.  @raise Wire.Decode_error on
    malformed input, including nested or oversized batches. *)

(** {1 Responses} *)

type t =
  | Admitted of { route : Network.route; moved : int }
      (** a connect-like op was admitted; [moved] is the number of
          existing connections rerouted to make room (always [0] for
          plain [Connect]) *)
  | Refused of Network.error  (** a connect-like op was refused *)
  | Released of Network.route  (** a disconnect succeeded *)
  | Release_failed of Network.disconnect_error
  | Fault_applied of { torn_down : int }
      (** an [Inject_fault] took effect; [torn_down] live routes were
          lost to it *)
  | Fault_cleared  (** a [Clear_fault] took effect *)
  | Digest_is of int
  | Stats_json of string
  | Server_error of string
      (** the request could not be executed at all (malformed frame,
          out-of-range fault indices, ...); the payload is
          human-readable *)
  | Not_leader of { leader : string }
      (** a follower refusing a state-changing request; [leader] is
          the address to retry against when the follower knows it
          ([""] otherwise) *)
  | Promoted of { seq : int }
      (** a follower accepted {!request.Promote} and now leads, with
          [seq] ops applied *)
  | Batch_reply of t list
      (** tag [12]: one response per request of a {!request.Batch}, in
          request order — the pipelined path's single coalesced answer *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val encode : Buffer.t -> t -> unit

val decode : Wire.reader -> t
(** @raise Wire.Decode_error on malformed input. *)

val decode_string : string -> (t, string) result
(** Decodes a whole payload; trailing bytes are an error. *)

(** {1 Execution} *)

val execute_backend :
  ?stats:(unit -> string) -> Backend.t -> request -> t
(** {!execute} over either state kind.  A mesh backend answers
    [Connect] / [Repair] / [Disconnect] through the mesh engine with
    results mapped onto the multistage route vocabulary
    ({!Backend.net_route_of_mesh}); fault ops answer [Server_error] —
    a mesh has no switch fabric to fault — and the server never
    commits [Server_error] responses, so they cannot reach a WAL. *)

val execute : ?stats:(unit -> string) -> Network.t -> request -> t
(** The one place request semantics live, shared by the server's
    admission loop and the loopback equivalence tests: [Connect] and
    [Repair] map to {!Network.connect} / {!Network.connect_rearrangeable}
    and answer [Admitted]/[Refused]; [Disconnect] answers
    [Released]/[Release_failed]; fault ops answer
    [Fault_applied]/[Fault_cleared]; [Get_digest] answers with
    {!Store.digest}.  [Get_stats] answers with [stats ()] (default:
    ["{}"] — the server passes its metrics renderer).
    [Invalid_argument] from fault validation is caught and answered as
    [Server_error] — a bad request must not take the server down.
    [Promote] answers [Server_error]: promotion changes a server's
    role, not network state, so the server intercepts it before this
    function ever sees it.  [Batch] maps [execute] over its requests
    and answers [Batch_reply] — the server instead unrolls batches
    itself so each sub-op hits the WAL and replication stream
    individually. *)
