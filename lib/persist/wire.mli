(** Binary primitives shared by the WAL and snapshot codecs.

    Everything on disk is little-endian.  Files open with an 8-byte
    header ([magic], a kind byte, a version byte, two reserved zero
    bytes) followed by CRC32-framed records: a 4-byte payload length, a
    4-byte CRC32 of the payload, then the payload itself.  The framing
    is what lets recovery classify damage: an incomplete frame at end
    of file is a torn write (truncate and carry on), a complete frame
    whose CRC does not match is corruption (fail loudly with the byte
    offset).  DESIGN.md documents the full format. *)

exception Decode_error of { offset : int; reason : string }
(** Raised by the [get_*] readers; [offset] is relative to the start of
    the string being decoded. *)

(** {1 Writing} *)

val put_u8 : Buffer.t -> int -> unit
(** @raise Invalid_argument outside [0, 255]. *)

val put_u32 : Buffer.t -> int -> unit
(** Little-endian. @raise Invalid_argument outside [0, 2{^32}-1]. *)

val put_int : Buffer.t -> int -> unit
(** 8 bytes, little-endian, sign-extended.  Restricted to
    [|v| < 2{^55}] so every value round-trips exactly on 64-bit OCaml.
    @raise Invalid_argument outside that range. *)

(** {1 Reading} *)

type reader = { src : string; mutable pos : int }

val reader : ?pos:int -> string -> reader
val get_u8 : reader -> int
val get_u32 : reader -> int
val get_int : reader -> int
val expect_end : reader -> unit
(** @raise Decode_error if any input remains. *)

(** {1 File header} *)

val header_len : int
(** 8 bytes. *)

val header : kind:char -> string
(** Kinds in use: ['W'] (op WAL), ['S'] (network snapshot), ['M']
    (follower replication mark), plus the socket hellos ['C'] / ['R'] /
    ['F'] ({!Wdm_server.Protocol}). *)

val header_with_flags : kind:char -> flags:int -> string
(** Like {!header} with byte 6 (reserved-zero since v0) carrying a
    capability bitmap — e.g. the hello span-extension flag
    ({!Wdm_server.Protocol.flag_spans}).  Decoders that predate flags
    ignore the byte, so a flagged header is universally accepted.
    @raise Invalid_argument outside [0, 255]. *)

val header_flags : string -> int
(** The flags byte of a header string; [0] for a pre-flags header or a
    string too short to carry one. *)

val check_header : kind:char -> string -> (unit, string) result
(** Validates magic, kind and version of a whole-file string.  The
    flags byte is deliberately not validated — unknown flags must not
    reject a file or a hello. *)

(** {1 Framing} *)

val max_payload : int
(** Upper bound on a plausible record payload (64 MiB).  A length
    field beyond it is classified as corruption, not as a torn write —
    a flipped length byte must not silently swallow the rest of the
    file as "torn". *)

val frame : string -> string
(** [frame payload] is the length + CRC header followed by the
    payload, ready to append to a file. *)

type frame_result =
  | Frame of { payload : string; next : int }  (** [next]: offset after *)
  | Torn of int  (** incomplete trailing record starting at this offset *)
  | Corrupt of { offset : int; reason : string }
  | End

val read_frame : string -> pos:int -> frame_result
(** Classifies the bytes at [pos] of a whole-file string. *)
