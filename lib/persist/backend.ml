module Tel = Wdm_telemetry
module Network = Wdm_multistage.Network
module Topology = Wdm_multistage.Topology
module Model = Wdm_core.Model
module Mesh = Wdm_mesh.Mesh_network
module Mesh_assign = Wdm_mesh.Assign
module Mesh_tree = Wdm_mesh.Light_tree
module Mesh_graph = Wdm_mesh.Graph
module Zoo = Wdm_mesh.Zoo

type t = Net of Network.t | Mesh of Mesh.t

let kind = function Net _ -> "multistage" | Mesh _ -> "mesh"

let fail (r : Wire.reader) reason =
  raise (Wire.Decode_error { offset = r.Wire.pos; reason })

let put_string b s =
  Wire.put_u32 b (String.length s);
  Buffer.add_string b s

let get_string r =
  let len = Wire.get_u32 r in
  if len > 0xffff then fail r "implausible string length";
  if r.Wire.pos + len > String.length r.Wire.src then fail r "truncated string";
  let s = String.sub r.Wire.src r.Wire.pos len in
  r.Wire.pos <- r.Wire.pos + len;
  s

(* ----- multistage state codec (moved verbatim from Store) -------------- *)

let construction_tag = function
  | Network.Msw_dominant -> 0
  | Network.Maw_dominant -> 1

(* [Named] built-ins canonicalize onto the tags their enum twins have
   carried since v1, so routing through the plug-in API leaves snapshots
   — and therefore digests — byte-identical; only genuinely new plug-in
   names take the string-carrying tag 3.  Old WALs never contain tag 3
   and decode unchanged. *)
let canonical_strategy = function
  | Network.Named "min-intersection" -> Network.Min_intersection
  | Network.Named "first-fit" -> Network.First_fit
  | Network.Named "exhaustive" -> Network.Exhaustive
  | s -> s

let put_strategy b s =
  match canonical_strategy s with
  | Network.Min_intersection -> Wire.put_u8 b 0
  | Network.First_fit -> Wire.put_u8 b 1
  | Network.Exhaustive -> Wire.put_u8 b 2
  | Network.Named name ->
    Wire.put_u8 b 3;
    put_string b name

let get_strategy r =
  match Wire.get_u8 r with
  | 0 -> Network.Min_intersection
  | 1 -> Network.First_fit
  | 2 -> Network.Exhaustive
  | 3 -> Network.Named (get_string r)
  | t -> fail r (Printf.sprintf "unknown strategy tag %d" t)

let link_impl_tag = function Network.Bitset -> 0 | Network.Reference -> 1
let model_tag = function Model.MSW -> 0 | Model.MSDW -> 1 | Model.MAW -> 2

let put_route b (route : Network.route) =
  Wire.put_int b route.Network.id;
  Op.encode_connection b route.Network.connection;
  Wire.put_u32 b route.Network.input_switch;
  Wire.put_u32 b (List.length route.Network.hops);
  List.iter
    (fun (h : Network.hop) ->
      Wire.put_u32 b h.Network.middle;
      Wire.put_u32 b h.Network.stage1_wl;
      Wire.put_u32 b (List.length h.Network.serves);
      List.iter
        (fun (o, w) ->
          Wire.put_u32 b o;
          Wire.put_u32 b w)
        h.Network.serves)
    route.Network.hops

let get_route r : Network.route =
  let id = Wire.get_int r in
  if id < 0 then fail r "negative route id";
  let connection = Op.decode_connection r in
  let input_switch = Wire.get_u32 r in
  let nhops = Wire.get_u32 r in
  if nhops > 0xffff then fail r "implausible hop count";
  let hops =
    List.init nhops (fun _ ->
        let middle = Wire.get_u32 r in
        let stage1_wl = Wire.get_u32 r in
        let nserves = Wire.get_u32 r in
        if nserves > 0xffff then fail r "implausible serve count";
        let serves =
          List.init nserves (fun _ ->
              let o = Wire.get_u32 r in
              let w = Wire.get_u32 r in
              (o, w))
        in
        { Network.middle; stage1_wl; serves })
  in
  { Network.id; connection; input_switch; hops }

let encode_route = put_route
let decode_route = get_route

let encode_net_state (s : Network.snapshot) =
  let b = Buffer.create 4096 in
  let topo = s.Network.s_topology in
  Wire.put_u32 b topo.Topology.n;
  Wire.put_u32 b topo.Topology.m;
  Wire.put_u32 b topo.Topology.r;
  Wire.put_u32 b topo.Topology.k;
  Wire.put_u8 b (construction_tag s.Network.s_construction);
  Wire.put_u8 b (model_tag s.Network.s_output_model);
  Wire.put_u32 b s.Network.s_x_limit;
  put_strategy b s.Network.s_strategy;
  Wire.put_u8 b (link_impl_tag s.Network.s_link_impl);
  Wire.put_u32 b s.Network.s_rearrange_limit;
  Wire.put_int b s.Network.s_next_id;
  Wire.put_u32 b (List.length s.Network.s_routes);
  List.iter (put_route b) s.Network.s_routes;
  Wire.put_u32 b (List.length s.Network.s_faults);
  List.iter (Op.encode_fault b) s.Network.s_faults;
  Buffer.contents b

let decode_net_state_reader r : Network.snapshot =
  let n = Wire.get_u32 r in
  let m = Wire.get_u32 r in
  let rr = Wire.get_u32 r in
  let k = Wire.get_u32 r in
  let s_topology =
    match Topology.make ~n ~m ~r:rr ~k with
    | Ok t -> t
    | Error e -> fail r (Printf.sprintf "invalid topology: %s" e)
  in
  let s_construction =
    match Wire.get_u8 r with
    | 0 -> Network.Msw_dominant
    | 1 -> Network.Maw_dominant
    | t -> fail r (Printf.sprintf "unknown construction tag %d" t)
  in
  let s_output_model =
    match Wire.get_u8 r with
    | 0 -> Model.MSW
    | 1 -> Model.MSDW
    | 2 -> Model.MAW
    | t -> fail r (Printf.sprintf "unknown model tag %d" t)
  in
  let s_x_limit = Wire.get_u32 r in
  let s_strategy = get_strategy r in
  let s_link_impl =
    match Wire.get_u8 r with
    | 0 -> Network.Bitset
    | 1 -> Network.Reference
    | t -> fail r (Printf.sprintf "unknown link impl tag %d" t)
  in
  let s_rearrange_limit = Wire.get_u32 r in
  let s_next_id = Wire.get_int r in
  let nroutes = Wire.get_u32 r in
  if nroutes > 0xffffff then fail r "implausible route count";
  let s_routes = List.init nroutes (fun _ -> get_route r) in
  let nfaults = Wire.get_u32 r in
  if nfaults > 0xffffff then fail r "implausible fault count";
  let s_faults = List.init nfaults (fun _ -> Op.decode_fault r) in
  Wire.expect_end r;
  {
    Network.s_topology;
    s_construction;
    s_output_model;
    s_x_limit;
    s_strategy;
    s_link_impl;
    s_rearrange_limit;
    s_next_id;
    s_routes;
    s_faults;
  }

let decode_net_state s =
  match decode_net_state_reader (Wire.reader s) with
  | snap -> Ok snap
  | exception Wire.Decode_error { offset; reason } ->
    Error (Printf.sprintf "%s at state offset %d" reason offset)

(* ----- mesh state codec ------------------------------------------------ *)

(* A multistage state opens with its topology's n >= 1; the mesh tag is
   the impossible n = 0, then a codec version byte. *)
let mesh_tag = 0
let mesh_version = 1

(* Same canonicalization as the multistage codec: named classics keep
   their v1 tags; new plug-in names take the string-carrying tag 5. *)
let canonical_mesh_strategy = function
  | Mesh_assign.Named "first-fit" -> Mesh_assign.First_fit
  | Mesh_assign.Named "most-used" -> Mesh_assign.Most_used
  | Mesh_assign.Named "least-used" -> Mesh_assign.Least_used
  | Mesh_assign.Named "random" -> Mesh_assign.Random
  | Mesh_assign.Named "coloring" -> Mesh_assign.Coloring
  | s -> s

let put_mesh_strategy b s =
  match canonical_mesh_strategy s with
  | Mesh_assign.First_fit -> Wire.put_u8 b 0
  | Mesh_assign.Most_used -> Wire.put_u8 b 1
  | Mesh_assign.Least_used -> Wire.put_u8 b 2
  | Mesh_assign.Random -> Wire.put_u8 b 3
  | Mesh_assign.Coloring -> Wire.put_u8 b 4
  | Mesh_assign.Named name ->
    Wire.put_u8 b 5;
    put_string b name

let get_mesh_strategy r =
  match Wire.get_u8 r with
  | 0 -> Mesh_assign.First_fit
  | 1 -> Mesh_assign.Most_used
  | 2 -> Mesh_assign.Least_used
  | 3 -> Mesh_assign.Random
  | 4 -> Mesh_assign.Coloring
  | 5 -> Mesh_assign.Named (get_string r)
  | t -> fail r (Printf.sprintf "unknown mesh strategy tag %d" t)

let mesh_mode_tag = function Mesh_tree.Tree -> 0 | Mesh_tree.Hierarchy -> 1

let encode_mesh_state (s : Mesh.state) =
  let b = Buffer.create 1024 in
  Wire.put_u32 b mesh_tag;
  Wire.put_u8 b mesh_version;
  put_string b s.Mesh.s_topo;
  Wire.put_u8 b s.Mesh.s_k;
  put_mesh_strategy b s.Mesh.s_strategy;
  Wire.put_u8 b (mesh_mode_tag s.Mesh.s_mode);
  Wire.put_u32 b s.Mesh.s_k_paths;
  let n = Array.length s.Mesh.s_mc - 1 in
  Wire.put_u32 b n;
  (* capability bitmap, nodes 1..n packed LSB-first *)
  let byte = ref 0 and bits = ref 0 in
  for v = 1 to n do
    if s.Mesh.s_mc.(v) then byte := !byte lor (1 lsl !bits);
    incr bits;
    if !bits = 8 then begin
      Wire.put_u8 b !byte;
      byte := 0;
      bits := 0
    end
  done;
  if !bits > 0 then Wire.put_u8 b !byte;
  Wire.put_int b s.Mesh.s_next_id;
  Wire.put_int b s.Mesh.s_attempts;
  Wire.put_u32 b (List.length s.Mesh.s_routes);
  List.iter
    (fun (r : Mesh.route) ->
      Wire.put_int b r.Mesh.id;
      Op.encode_connection b r.Mesh.connection;
      Wire.put_u8 b r.Mesh.wl;
      Wire.put_u32 b (List.length r.Mesh.arcs);
      List.iter
        (fun (a, b', _) ->
          Wire.put_u32 b a;
          Wire.put_u32 b b')
        r.Mesh.arcs)
    s.Mesh.s_routes;
  Buffer.contents b

let decode_mesh_state_reader r : Mesh.state =
  let tag = Wire.get_u32 r in
  if tag <> mesh_tag then fail r "not a mesh state";
  let version = Wire.get_u8 r in
  if version <> mesh_version then
    fail r (Printf.sprintf "unknown mesh state version %d" version);
  let s_topo = get_string r in
  let graph =
    match Zoo.by_name s_topo with
    | Ok g -> g
    | Error e -> fail r (Printf.sprintf "invalid mesh topology: %s" e)
  in
  let s_k = Wire.get_u8 r in
  let s_strategy = get_mesh_strategy r in
  let s_mode =
    match Wire.get_u8 r with
    | 0 -> Mesh_tree.Tree
    | 1 -> Mesh_tree.Hierarchy
    | t -> fail r (Printf.sprintf "unknown mesh mode tag %d" t)
  in
  let s_k_paths = Wire.get_u32 r in
  let n = Wire.get_u32 r in
  if n <> Mesh_graph.n graph then fail r "capability bitmap size mismatch";
  let s_mc = Array.make (n + 1) false in
  let byte = ref 0 and bits = ref 0 in
  for v = 1 to n do
    if !bits = 0 then begin
      byte := Wire.get_u8 r;
      bits := 8
    end;
    s_mc.(v) <- !byte land 1 = 1;
    byte := !byte lsr 1;
    decr bits
  done;
  let s_next_id = Wire.get_int r in
  let s_attempts = Wire.get_int r in
  let nroutes = Wire.get_u32 r in
  if nroutes > 0xffffff then fail r "implausible route count";
  let s_routes =
    List.init nroutes (fun _ ->
        let id = Wire.get_int r in
        if id < 0 then fail r "negative route id";
        let connection = Op.decode_connection r in
        let wl = Wire.get_u8 r in
        let narcs = Wire.get_u32 r in
        if narcs > 0xffff then fail r "implausible arc count";
        let cost = ref 0. in
        let arcs =
          List.init narcs (fun _ ->
              let a = Wire.get_u32 r in
              let b = Wire.get_u32 r in
              match Mesh_graph.edge_between graph a b with
              | Some e ->
                cost := !cost +. (Mesh_graph.edge graph e).Mesh_graph.w;
                (a, b, e)
              | None ->
                fail r (Printf.sprintf "arc %d-%d is not a topology edge" a b))
        in
        { Mesh.id; connection; wl; arcs; cost = !cost })
  in
  Wire.expect_end r;
  { Mesh.s_topo; s_k; s_strategy; s_mode; s_k_paths; s_mc; s_next_id;
    s_attempts; s_routes }

let decode_mesh_state s =
  match decode_mesh_state_reader (Wire.reader s) with
  | state -> Ok state
  | exception Wire.Decode_error { offset; reason } ->
    Error (Printf.sprintf "%s at state offset %d" reason offset)

(* ----- dispatch -------------------------------------------------------- *)

let is_mesh_state s =
  String.length s >= 4
  &&
  match Wire.get_u32 (Wire.reader s) with
  | tag -> tag = mesh_tag
  | exception Wire.Decode_error _ -> false

let encode_state = function
  | Net net -> encode_net_state (Network.snapshot net)
  | Mesh net -> encode_mesh_state (Mesh.snapshot net)

let restore ?telemetry s =
  if is_mesh_state s then
    match decode_mesh_state s with
    | Error _ as e -> e
    | Ok state -> (
      match Mesh.restore ?telemetry state with
      | Ok net -> Ok (Mesh net)
      | Error _ as e -> e)
  else
    match decode_net_state s with
    | Error _ as e -> e
    | Ok snap -> (
      match Network.restore ?telemetry snap with
      | net -> Ok (Net net)
      | exception Invalid_argument reason -> Error reason)

let digest t = Crc32.string (encode_state t)

(* ----- replay ---------------------------------------------------------- *)

let mesh_disconnect_to_string = function
  | Mesh.Unknown_route id -> Printf.sprintf "unknown route %d" id
  | Mesh.Already_released id -> Printf.sprintf "route %d already released" id

let apply t op =
  match t with
  | Net net -> (
    match Op.apply net op with Ok _ -> Ok () | Error _ as e -> e)
  | Mesh net -> (
    match (op : Op.t) with
    | Op.Connect c | Op.Repair { connection = c; _ } -> (
      (* like Op.apply: a refused admission replays as a no-op *)
      match Mesh.connect net c with Ok _ | Error _ -> Ok ())
    | Op.Disconnect id -> (
      match Mesh.disconnect net id with
      | Ok _ -> Ok ()
      | Error e -> Error (mesh_disconnect_to_string e))
    | Op.Inject_fault _ | Op.Clear_fault _ ->
      (* never WAL-committed for a mesh: the server answers them with
         Server_error, which committed_op excludes *)
      Error "mesh backend does not support fault ops")

(* ----- mesh-to-wire adapters ------------------------------------------- *)

let net_route_of_mesh (r : Mesh.route) : Network.route =
  {
    Network.id = r.Mesh.id;
    connection = r.Mesh.connection;
    input_switch = r.Mesh.connection.Wdm_core.Connection.source.Wdm_core.Endpoint.port;
    hops =
      List.map
        (fun (a, b, _) ->
          { Network.middle = a; stage1_wl = r.Mesh.wl; serves = [ (b, r.Mesh.wl) ] })
        r.Mesh.arcs;
  }

let net_error_of_mesh : Mesh.error -> Network.error = function
  | Mesh.Source_out_of_range e ->
    Network.Invalid (Wdm_core.Assignment.Source_out_of_range e)
  | Mesh.Destination_out_of_range e ->
    Network.Invalid (Wdm_core.Assignment.Destination_out_of_range e)
  | Mesh.Blocked { uncovered } ->
    Network.Blocked
      { fanout_switches = []; available_middles = []; uncovered }

let net_disconnect_error_of_mesh :
    Mesh.disconnect_error -> Network.disconnect_error = function
  | Mesh.Unknown_route id -> Network.Unknown_route id
  | Mesh.Already_released id -> Network.Already_released id
