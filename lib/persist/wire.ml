exception Decode_error of { offset : int; reason : string }

(* ----- writing --------------------------------------------------------- *)

let put_u8 b v =
  if v < 0 || v > 0xff then invalid_arg "Wire.put_u8: out of range";
  Buffer.add_char b (Char.chr v)

let put_u32 b v =
  if v < 0 || v > 0xffffffff then invalid_arg "Wire.put_u32: out of range";
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))

let int_limit = 1 lsl 55

let put_int b v =
  if v >= int_limit || v <= -int_limit then
    invalid_arg "Wire.put_int: out of range";
  for i = 0 to 7 do
    Buffer.add_char b (Char.chr ((v asr (8 * i)) land 0xff))
  done

(* ----- reading --------------------------------------------------------- *)

type reader = { src : string; mutable pos : int }

let reader ?(pos = 0) src = { src; pos }

let error r reason = raise (Decode_error { offset = r.pos; reason })

let need r n =
  if r.pos + n > String.length r.src then error r "truncated value"

let byte r i = Char.code (String.unsafe_get r.src (r.pos + i))

let get_u8 r =
  need r 1;
  let v = byte r 0 in
  r.pos <- r.pos + 1;
  v

let get_u32 r =
  need r 4;
  let v =
    byte r 0 lor (byte r 1 lsl 8) lor (byte r 2 lsl 16) lor (byte r 3 lsl 24)
  in
  r.pos <- r.pos + 4;
  v

let get_int r =
  need r 8;
  let low = ref 0 in
  for i = 0 to 6 do
    low := !low lor (byte r i lsl (8 * i))
  done;
  let top = byte r 7 in
  (* values are restricted to |v| < 2^55 on encode, so the top byte is
     pure sign extension: anything else is corrupt input *)
  if top <> 0 && top <> 0xff then error r "int out of range";
  let v = if top = 0 then !low else !low lor (-1 lsl 56) in
  r.pos <- r.pos + 8;
  v

let expect_end r =
  if r.pos <> String.length r.src then error r "trailing bytes in record"

(* ----- file header ----------------------------------------------------- *)

let magic = "WDMP"
let version = 1
let header_len = 8

let header ~kind = Printf.sprintf "%s%c%c\000\000" magic kind (Char.chr version)

(* Byte 6 of the 8-byte header was reserved-zero from v0; it now
   carries optional capability flags.  [check_header] never inspects
   it, so a flagged header is accepted by every deployed decoder and a
   plain header reads back as flags = 0 — that asymmetry is the whole
   backward-compatibility story for the span extension. *)
let header_with_flags ~kind ~flags =
  if flags < 0 || flags > 0xff then
    invalid_arg "Wire.header_with_flags: flags outside [0, 255]";
  Printf.sprintf "%s%c%c%c\000" magic kind (Char.chr version) (Char.chr flags)

let header_flags s = if String.length s >= 7 then Char.code s.[6] else 0

let check_header ~kind s =
  if String.length s < header_len then Error "file shorter than its header"
  else if String.sub s 0 4 <> magic then Error "bad magic"
  else if s.[4] <> kind then
    Error (Printf.sprintf "wrong file kind '%c' (want '%c')" s.[4] kind)
  else if Char.code s.[5] <> version then
    Error (Printf.sprintf "unsupported format version %d" (Char.code s.[5]))
  else Ok ()

(* ----- framing --------------------------------------------------------- *)

let max_payload = 1 lsl 26

let frame payload =
  let b = Buffer.create (String.length payload + 8) in
  put_u32 b (String.length payload);
  put_u32 b (Crc32.string payload);
  Buffer.add_string b payload;
  Buffer.contents b

type frame_result =
  | Frame of { payload : string; next : int }
  | Torn of int
  | Corrupt of { offset : int; reason : string }
  | End

let read_frame src ~pos =
  let total = String.length src in
  if pos = total then End
  else if pos + 8 > total then Torn pos
  else begin
    let r = reader ~pos src in
    let len = get_u32 r in
    let crc = get_u32 r in
    if len = 0 || len > max_payload then
      Corrupt
        { offset = pos;
          reason = Printf.sprintf "implausible record length %d" len }
    else if pos + 8 + len > total then Torn pos
    else
      let payload = String.sub src (pos + 8) len in
      if Crc32.string payload <> crc then
        Corrupt { offset = pos; reason = "CRC mismatch" }
      else Frame { payload; next = pos + 8 + len }
  end
