(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial).

    The persistence layer frames every on-disk record with a CRC so
    recovery can tell a torn write from silent corruption.  The sealed
    build environment has no zlib binding, so the table-driven
    implementation lives here; values are plain non-negative [int]s in
    [0, 2{^32}) — OCaml's 63-bit native int holds them exactly. *)

val update : int -> string -> pos:int -> len:int -> int
(** [update crc s ~pos ~len] extends a running checksum over
    [s.[pos .. pos+len-1]].  Start from [0]; the pre/post conditioning
    of the standard algorithm is handled internally, so checksums
    compose: [update (update 0 a ...) b ...] equals the checksum of
    the concatenation. *)

val string : string -> int
(** [update 0 s ~pos:0 ~len:(String.length s)]. *)
