(* Replication wire vocabulary: what a leader and a follower say to
   each other after the 'F' hello, plus the follower's little on-disk
   mark pairing its local WAL with a position in the leader's op
   stream.  Framing and CRC are Wire's job, as everywhere else. *)

let fail (r : Wire.reader) reason =
  raise (Wire.Decode_error { offset = r.Wire.pos; reason })

let put_string b s =
  Wire.put_u32 b (String.length s);
  Buffer.add_string b s

let get_string r =
  let n = Wire.get_u32 r in
  if n > Wire.max_payload then fail r "implausible string length";
  if r.Wire.pos + n > String.length r.Wire.src then fail r "truncated string";
  let s = String.sub r.Wire.src r.Wire.pos n in
  r.Wire.pos <- r.Wire.pos + n;
  s

(* ----- follower -> leader ---------------------------------------------- *)

type to_leader =
  | Subscribe of { epoch : int; last_seq : int }
  | Ack of { seq : int; digest : int }

let encode_to_leader b = function
  | Subscribe { epoch; last_seq } ->
    Wire.put_u8 b 1;
    Wire.put_int b epoch;
    Wire.put_int b last_seq
  | Ack { seq; digest } ->
    Wire.put_u8 b 2;
    Wire.put_int b seq;
    Wire.put_int b digest

let decode_to_leader r =
  match Wire.get_u8 r with
  | 1 ->
    let epoch = Wire.get_int r in
    let last_seq = Wire.get_int r in
    Subscribe { epoch; last_seq }
  | 2 ->
    let seq = Wire.get_int r in
    let digest = Wire.get_int r in
    Ack { seq; digest }
  | tag -> fail r (Printf.sprintf "unknown to-leader tag %d" tag)

let pp_to_leader ppf = function
  | Subscribe { epoch; last_seq } ->
    Format.fprintf ppf "subscribe(epoch %d, last seq %d)" epoch last_seq
  | Ack { seq; digest } -> Format.fprintf ppf "ack(seq %d, digest %d)" seq digest

(* ----- leader -> follower ---------------------------------------------- *)

type to_follower =
  | Init_snapshot of { epoch : int; seq : int; state : string }
  | Init_resume of { epoch : int; seq : int }
  | Rep_op of { seq : int; op : Op.t }
  | Rep_digest of { seq : int; digest : int }
  | Goodbye of { reason : string }

let encode_to_follower b = function
  | Init_snapshot { epoch; seq; state } ->
    Wire.put_u8 b 1;
    Wire.put_int b epoch;
    Wire.put_int b seq;
    put_string b state
  | Init_resume { epoch; seq } ->
    Wire.put_u8 b 2;
    Wire.put_int b epoch;
    Wire.put_int b seq
  | Rep_op { seq; op } ->
    Wire.put_u8 b 3;
    Wire.put_int b seq;
    Op.encode b op
  | Rep_digest { seq; digest } ->
    Wire.put_u8 b 4;
    Wire.put_int b seq;
    Wire.put_int b digest
  | Goodbye { reason } ->
    Wire.put_u8 b 5;
    put_string b reason

let decode_to_follower r =
  match Wire.get_u8 r with
  | 1 ->
    let epoch = Wire.get_int r in
    let seq = Wire.get_int r in
    let state = get_string r in
    Init_snapshot { epoch; seq; state }
  | 2 ->
    let epoch = Wire.get_int r in
    let seq = Wire.get_int r in
    Init_resume { epoch; seq }
  | 3 ->
    let seq = Wire.get_int r in
    let op = Op.decode r in
    Rep_op { seq; op }
  | 4 ->
    let seq = Wire.get_int r in
    let digest = Wire.get_int r in
    Rep_digest { seq; digest }
  | 5 -> Goodbye { reason = get_string r }
  | tag -> fail r (Printf.sprintf "unknown to-follower tag %d" tag)

let pp_to_follower ppf = function
  | Init_snapshot { epoch; seq; state } ->
    Format.fprintf ppf "snapshot(epoch %d, seq %d, %d state bytes)" epoch seq
      (String.length state)
  | Init_resume { epoch; seq } ->
    Format.fprintf ppf "resume(epoch %d, seq %d)" epoch seq
  | Rep_op { seq; op } -> Format.fprintf ppf "op(seq %d, %a)" seq Op.pp op
  | Rep_digest { seq; digest } ->
    Format.fprintf ppf "digest(seq %d, %d)" seq digest
  | Goodbye { reason } -> Format.fprintf ppf "goodbye(%s)" reason

let decode_string decode s =
  let r = Wire.reader s in
  match
    let v = decode r in
    Wire.expect_end r;
    v
  with
  | v -> Ok v
  | exception Wire.Decode_error { offset; reason } ->
    Error (Printf.sprintf "%s at payload offset %d" reason offset)

let to_leader_of_string s = decode_string decode_to_leader s
let to_follower_of_string s = decode_string decode_to_follower s

(* ----- follower mark --------------------------------------------------- *)

(* The mark pairs the follower's local WAL with the leader's stream:
   [base_seq] is the leader seq the WAL's origin state corresponds to,
   so after a local recovery the follower's position is [base_seq]
   plus the number of records in its (truncated) WAL.  Written with a
   rename so a crash mid-write leaves the previous mark intact. *)

type mark = { epoch : int; base_seq : int }

let mark_path ~wal = wal ^ ".repl"

let save_mark ~wal { epoch; base_seq } =
  let b = Buffer.create 32 in
  Wire.put_int b epoch;
  Wire.put_int b base_seq;
  let tmp = mark_path ~wal ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Wire.header ~kind:'M');
      output_string oc (Wire.frame (Buffer.contents b));
      flush oc;
      try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error _ -> ());
  Sys.rename tmp (mark_path ~wal)

let load_mark ~wal =
  let path = mark_path ~wal in
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> None
  | src -> (
    match Wire.check_header ~kind:'M' src with
    | Error _ -> None
    | Ok () -> (
      match Wire.read_frame src ~pos:Wire.header_len with
      | Wire.Frame { payload; next } when next = String.length src -> (
        match
          let r = Wire.reader payload in
          let epoch = Wire.get_int r in
          let base_seq = Wire.get_int r in
          Wire.expect_end r;
          { epoch; base_seq }
        with
        | mark -> Some mark
        | exception Wire.Decode_error _ -> None)
      | _ -> None))

let remove_mark ~wal =
  try Sys.remove (mark_path ~wal) with Sys_error _ -> ()
