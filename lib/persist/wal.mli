(** The operation write-ahead log.

    A WAL file is the {!Wire} header (kind ['W']) followed by one
    CRC32-framed {!Op} record per operation, appended in execution
    order.  Recovery ({!Store.recover}) replays the tail past the
    newest snapshot; this module only reads and writes the file.

    Durability is the caller's trade to make, so flushing is a
    pluggable {!flush_policy}: a simulation recording a trace wants
    [Buffered], a service that must not lose admitted circuits wants
    [Fsync_every 1] and pays the disk's price for it — the
    [persist_fsync_latency_seconds] histogram shows exactly how
    much. *)

type flush_policy =
  | Buffered  (** OS-buffered; data reaches the file on {!close} *)
  | Flush_every of int  (** channel flush every [n] records (default [1]) *)
  | Fsync_every of int  (** flush every record, [fsync] every [n] records *)

type writer

val create : ?telemetry:Wdm_telemetry.Sink.t -> ?policy:flush_policy ->
  string -> writer
(** Truncates [path] and writes a fresh header.  [policy] defaults to
    [Flush_every 1].  [telemetry] feeds [persist_wal_records_total],
    [persist_wal_bytes_total] and [persist_fsync_latency_seconds].
    @raise Invalid_argument on a non-positive policy interval. *)

val open_append :
  ?telemetry:Wdm_telemetry.Sink.t ->
  ?policy:flush_policy ->
  ?records:int ->
  string ->
  writer
(** Reopens an existing WAL for appending (header verified, channel
    positioned at end-of-file) — what {!Store.resume} uses to continue
    a recovered session instead of truncating its history.  [records]
    seeds the writer's record count, so {!records} and the
    [Flush_every] cadence continue where the previous session left
    off.  @raise Invalid_argument when [path] is not a WAL (missing or
    bad header) or on a non-positive policy interval. *)

val append : writer -> Op.t -> unit
val records : writer -> int
(** Records appended so far. *)

val tell : writer -> int
(** Byte offset after the last appended record — what a snapshot taken
    now must store as its WAL offset.  Flushes first, so the offset
    never points past the file's durable content. *)

val sync : writer -> unit
(** Flush and [fsync] now, regardless of policy. *)

val close : writer -> unit

(** {1 Reading} *)

type read_outcome = {
  ops : (int * Op.t) list;  (** (byte offset of the record, op) *)
  tear : int option;
      (** byte offset of an incomplete trailing record, if any *)
}

val read : string -> (read_outcome, string) result
(** Reads a whole WAL.  A torn trailing record is reported, not an
    error; a bad header, an implausible length or a CRC mismatch on a
    complete record is an [Error] naming the byte offset. *)

val truncate_at : string -> int -> unit
(** Cuts the file at a tear offset so a recovered process can append.
    The shortened file and its directory are both [fsync]ed before
    returning: a crash immediately after recovery must not resurrect
    the torn bytes the recovery decided to discard. *)
