(** Durable network state: snapshot files, a live WAL session, and
    crash recovery.

    A store pairs one WAL ([<wal>]) with its snapshot files
    ([<wal>.snap.<seq>]).  A snapshot file is the {!Wire} header (kind
    ['S']) plus a single CRC32-framed payload: the snapshot sequence
    number, the WAL byte offset it covers, and the encoded
    {!Wdm_multistage.Network.snapshot}.  Recovery loads the newest
    snapshot consistent with the WAL and replays the ops past its
    offset; a torn trailing WAL record is truncated, mid-stream
    corruption fails loudly with the byte offset. *)

module Network = Wdm_multistage.Network

(** {1 State codec} *)

val encode_state : Network.snapshot -> string
(** The deterministic byte encoding of a network snapshot (without the
    seq / WAL-offset metadata). *)

val decode_state : string -> (Network.snapshot, string) result

val encode_route : Buffer.t -> Network.route -> unit
val decode_route : Wire.reader -> Network.route
(** The allocated-route sub-codec of the snapshot format, also reused
    by {!Resp} for wire responses, so a route serializes identically
    in a snapshot file and on a control-plane socket.
    [decode_route] @raise Wire.Decode_error on malformed input. *)

val digest : Network.t -> int
(** CRC32 of {!encode_state} of the network's snapshot — a cheap
    whole-state fingerprint for "did recovery reproduce the same
    network" checks (the CI smoke test compares these across a
    record / kill / recover cycle). *)

val snapshot_path : wal:string -> seq:int -> string
(** [<wal>.snap.<seq>]. *)

val write_snapshot : path:string -> seq:int -> wal_offset:int ->
  Network.snapshot -> unit

val read_snapshot :
  string -> (int * int * Network.snapshot, string) result
(** [(seq, wal_offset, snapshot)], or why the file is unusable. *)

(** {1 Recording session} *)

type t

val start :
  ?telemetry:Wdm_telemetry.Sink.t ->
  ?policy:Wal.flush_policy ->
  ?retain:int ->
  wal:string ->
  Network.t ->
  t
(** [start_backend] specialized to the multistage fabric. *)

val start_backend :
  ?telemetry:Wdm_telemetry.Sink.t ->
  ?policy:Wal.flush_policy ->
  ?retain:int ->
  wal:string ->
  Backend.t ->
  t
(** Begins a fresh recording: truncates [wal], deletes stale
    [<wal>.snap.*] files, and writes snapshot 0 of the network's
    current state.  [retain] (default 2) is how many of the most
    recent snapshots each checkpoint keeps on disk ([max_int] keeps
    them all — what a crash-at-every-boundary test wants).
    [telemetry] feeds the WAL instruments plus
    [persist_snapshots_total] and [persist_snapshot_latency_seconds].
    @raise Invalid_argument when [retain < 1]. *)

val log : t -> Op.t -> unit
(** Appends one op.  Call it for every state-changing request, before
    or after applying — the codec records requests, and replay
    re-derives outcomes deterministically. *)

val checkpoint : t -> Network.t -> unit
val checkpoint_backend : t -> Backend.t -> unit
(** Flushes the WAL and writes the next snapshot at the current WAL
    offset.  The [retain] most recent snapshots are kept (the default
    of 2 means a corrupt newest snapshot still leaves a recovery
    path); older ones are deleted. *)

val wal_records : t -> int
val wal_offset : t -> int
(** Current end-of-WAL byte offset (flushes first). *)

val snapshot_seq : t -> int
(** Sequence number the next {!checkpoint} will write. *)

val close : t -> unit

(** {1 Recovery} *)

type recovery = {
  network : Network.t;
  snapshot_seq : int;  (** which snapshot seeded the state *)
  snapshot_offset : int;  (** WAL offset the snapshot covered *)
  replayed : int;  (** WAL ops applied past the snapshot *)
  tear : int option;
      (** byte offset of a torn trailing record, if one was found
          (and truncated, unless [~truncate:false]) *)
}

type backend_recovery = {
  backend : Backend.t;
  b_snapshot_seq : int;
  b_snapshot_offset : int;
  b_replayed : int;
  b_tear : int option;
}
(** {!recovery} for either state kind; the snapshot's own tag decides
    whether a multistage fabric or a mesh network comes back. *)

type recovery_error =
  | No_snapshot of string
      (** no usable snapshot file — nothing to seed the state from *)
  | Corrupt of { path : string; offset : int; reason : string }
      (** mid-stream damage in the named file at the given byte
          offset; recovery refuses to guess past it *)

val pp_recovery_error : Format.formatter -> recovery_error -> unit

val recover :
  ?telemetry:Wdm_telemetry.Sink.t ->
  ?truncate:bool ->
  wal:string ->
  unit ->
  (recovery, recovery_error) result
(** Loads the newest snapshot whose WAL offset is a record boundary of
    the (valid prefix of the) WAL, restores it, and replays the tail.
    A torn trailing record is truncated from the file ([truncate]
    defaults to [true]) so the recovered process can keep appending.
    An unusable newest snapshot falls back to the previous one.
    [telemetry] instruments the restored network and feeds
    [persist_recoveries_total] and
    [persist_restore_latency_seconds].  Errors with [No_snapshot] if
    the WAL holds a mesh session — use {!recover_backend}. *)

val recover_backend :
  ?telemetry:Wdm_telemetry.Sink.t ->
  ?truncate:bool ->
  wal:string ->
  unit ->
  (backend_recovery, recovery_error) result
(** {!recover} without committing to a state kind. *)

val resume_backend :
  ?telemetry:Wdm_telemetry.Sink.t ->
  ?policy:Wal.flush_policy ->
  ?retain:int ->
  wal:string ->
  unit ->
  (t * backend_recovery, recovery_error) result
(** {!resume} without committing to a state kind. *)

val resume :
  ?telemetry:Wdm_telemetry.Sink.t ->
  ?policy:Wal.flush_policy ->
  ?retain:int ->
  wal:string ->
  unit ->
  (t * recovery, recovery_error) result
(** {!recover}, then continue the {e same} WAL in append mode instead
    of starting a fresh one — a restarting service keeps its history.
    The snapshot sequence continues past the newest file on disk, and
    an immediate checkpoint pins the recovered state at the current
    WAL offset.  @raise Invalid_argument when [retain < 1]. *)
