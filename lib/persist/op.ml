open Wdm_core
module Fault = Wdm_faults.Fault
module Network = Wdm_multistage.Network

type t =
  | Connect of Connection.t
  | Disconnect of int
  | Inject_fault of Fault.t
  | Clear_fault of Fault.t
  | Repair of { connection : Connection.t; rehomed : bool }

let equal a b =
  match (a, b) with
  | Connect c1, Connect c2 -> Connection.equal c1 c2
  | Disconnect i1, Disconnect i2 -> i1 = i2
  | Inject_fault f1, Inject_fault f2 | Clear_fault f1, Clear_fault f2 ->
    Fault.equal f1 f2
  | Repair r1, Repair r2 ->
    Connection.equal r1.connection r2.connection && r1.rehomed = r2.rehomed
  | _ -> false

let pp ppf = function
  | Connect c -> Format.fprintf ppf "connect %a" Connection.pp c
  | Disconnect id -> Format.fprintf ppf "disconnect %d" id
  | Inject_fault f -> Format.fprintf ppf "inject %a" Fault.pp f
  | Clear_fault f -> Format.fprintf ppf "clear %a" Fault.pp f
  | Repair { connection; rehomed } ->
    Format.fprintf ppf "repair(%s) %a"
      (if rehomed then "rehomed" else "dropped")
      Connection.pp connection

(* ----- encoding -------------------------------------------------------- *)

let put_endpoint b (e : Endpoint.t) =
  Wire.put_u32 b e.port;
  Wire.put_u32 b e.wl

let put_connection b (c : Connection.t) =
  put_endpoint b c.source;
  Wire.put_u32 b (List.length c.destinations);
  List.iter (put_endpoint b) c.destinations

let put_fault b = function
  | Fault.Middle j ->
    Wire.put_u8 b 1;
    Wire.put_u32 b j
  | Fault.Input_module i ->
    Wire.put_u8 b 2;
    Wire.put_u32 b i
  | Fault.Output_module p ->
    Wire.put_u8 b 3;
    Wire.put_u32 b p
  | Fault.Stage1_laser { input; middle; wl } ->
    Wire.put_u8 b 4;
    Wire.put_u32 b input;
    Wire.put_u32 b middle;
    Wire.put_u32 b wl
  | Fault.Stage2_laser { middle; output; wl } ->
    Wire.put_u8 b 5;
    Wire.put_u32 b middle;
    Wire.put_u32 b output;
    Wire.put_u32 b wl
  | Fault.Converter { middle; output } ->
    Wire.put_u8 b 6;
    Wire.put_u32 b middle;
    Wire.put_u32 b output

let encode b = function
  | Connect c ->
    Wire.put_u8 b 1;
    put_connection b c
  | Disconnect id ->
    Wire.put_u8 b 2;
    Wire.put_int b id
  | Inject_fault f ->
    Wire.put_u8 b 3;
    put_fault b f
  | Clear_fault f ->
    Wire.put_u8 b 4;
    put_fault b f
  | Repair { connection; rehomed } ->
    Wire.put_u8 b 5;
    Wire.put_u8 b (if rehomed then 1 else 0);
    put_connection b connection

(* ----- decoding -------------------------------------------------------- *)

let fail (r : Wire.reader) reason =
  raise (Wire.Decode_error { offset = r.Wire.pos; reason })

let get_endpoint r =
  let port = Wire.get_u32 r in
  let wl = Wire.get_u32 r in
  Endpoint.make ~port ~wl

let get_connection r =
  let source = get_endpoint r in
  let n = Wire.get_u32 r in
  if n = 0 || n > 0xffff then fail r "implausible destination count";
  let destinations = List.init n (fun _ -> get_endpoint r) in
  match Connection.make ~source ~destinations with
  | Ok c -> c
  | Error _ -> fail r "structurally invalid connection"

let get_fault r =
  match Wire.get_u8 r with
  | 1 -> Fault.Middle (Wire.get_u32 r)
  | 2 -> Fault.Input_module (Wire.get_u32 r)
  | 3 -> Fault.Output_module (Wire.get_u32 r)
  | 4 ->
    let input = Wire.get_u32 r in
    let middle = Wire.get_u32 r in
    let wl = Wire.get_u32 r in
    Fault.Stage1_laser { input; middle; wl }
  | 5 ->
    let middle = Wire.get_u32 r in
    let output = Wire.get_u32 r in
    let wl = Wire.get_u32 r in
    Fault.Stage2_laser { middle; output; wl }
  | 6 ->
    let middle = Wire.get_u32 r in
    let output = Wire.get_u32 r in
    Fault.Converter { middle; output }
  | tag -> fail r (Printf.sprintf "unknown fault tag %d" tag)

let decode r =
  match Wire.get_u8 r with
  | 1 -> Connect (get_connection r)
  | 2 -> Disconnect (Wire.get_int r)
  | 3 -> Inject_fault (get_fault r)
  | 4 -> Clear_fault (get_fault r)
  | 5 ->
    let rehomed =
      match Wire.get_u8 r with
      | 0 -> false
      | 1 -> true
      | _ -> fail r "bad repair outcome"
    in
    let connection = get_connection r in
    Repair { connection; rehomed }
  | tag -> fail r (Printf.sprintf "unknown op tag %d" tag)

let encode_connection = put_connection
let decode_connection = get_connection
let encode_fault = put_fault
let decode_fault = get_fault
let encode_endpoint = put_endpoint
let decode_endpoint = get_endpoint

let decode_string s =
  let r = Wire.reader s in
  match
    let op = decode r in
    Wire.expect_end r;
    op
  with
  | op -> Ok op
  | exception Wire.Decode_error { offset; reason } ->
    Error (Printf.sprintf "%s at payload offset %d" reason offset)

(* ----- replay ---------------------------------------------------------- *)

let apply net = function
  | Connect c -> (
    match Network.connect net c with
    | Ok route -> Ok (Some route)
    | Error _ -> Ok None)
  | Disconnect id -> (
    match Network.disconnect net id with
    | Ok _ -> Ok None
    | Error e -> Error (Network.Error.disconnect_to_string e))
  | Inject_fault f -> (
    match Network.inject_fault net f with
    | _victims -> Ok None
    | exception Invalid_argument e -> Error e)
  | Clear_fault f -> (
    match Network.clear_fault net f with
    | () -> Ok None
    | exception Invalid_argument e -> Error e)
  | Repair { connection; rehomed = _ } -> (
    match Network.connect_rearrangeable net connection with
    | Ok (route, _) -> Ok (Some route)
    | Error _ -> Ok None)

let route_checksum acc (route : Network.route) =
  List.fold_left
    (fun acc (h : Network.hop) ->
      (acc * 131)
      lxor (route.Network.id + (31 * h.Network.middle)
           + (7 * h.Network.stage1_wl)
           + List.fold_left (fun a (o, w) -> a + (o * 13) + w) 0 h.Network.serves))
    acc route.Network.hops
