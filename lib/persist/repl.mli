(** The replication wire vocabulary and the follower's on-disk mark.

    After a follower identifies itself with the ['F'] hello
    ({!Wdm_server.Protocol}), the conversation is CRC32-framed
    {!Wire} records in both directions: the follower sends one
    {!to_leader.Subscribe}, the leader answers with either a full
    state ({!to_follower.Init_snapshot}) or a resume point
    ({!to_follower.Init_resume}) and then streams committed ops; the
    follower acknowledges digest checkpoints with {!to_leader.Ack}.
    Sequence numbers count committed ops since the leader's store
    began — the same record stream its WAL holds — so "seq" means the
    same position on the wire, in the leader's WAL and in the
    follower's replayed state.  DESIGN.md §10 documents the protocol
    and its consistency argument. *)

(** {1 Follower to leader} *)

type to_leader =
  | Subscribe of { epoch : int; last_seq : int }
      (** [epoch] is the leader generation the follower last spoke to
          (0 when it has none); [last_seq] the last op it has applied,
          or [-1] to demand a fresh snapshot.  A leader only honours a
          resume from its own epoch. *)
  | Ack of { seq : int; digest : int }
      (** The follower's state digest after applying op [seq], sent in
          response to {!to_follower.Rep_digest}. *)

val encode_to_leader : Buffer.t -> to_leader -> unit
val decode_to_leader : Wire.reader -> to_leader
val to_leader_of_string : string -> (to_leader, string) result
val pp_to_leader : Format.formatter -> to_leader -> unit

(** {1 Leader to follower} *)

type to_follower =
  | Init_snapshot of { epoch : int; seq : int; state : string }
      (** Full state ({!Store.encode_state} bytes) as of op [seq];
          the stream continues from [seq + 1]. *)
  | Init_resume of { epoch : int; seq : int }
      (** The follower's [last_seq] was honoured; the stream continues
          from [seq + 1] atop its existing state. *)
  | Rep_op of { seq : int; op : Op.t }
  | Rep_digest of { seq : int; digest : int }
      (** Leader's state digest after op [seq]; the follower compares
          against its own and must answer with {!to_leader.Ack}. *)
  | Goodbye of { reason : string }
      (** The leader is dropping this follower deliberately (slow
          consumer, shutdown) — reconnect is the follower's call. *)

val encode_to_follower : Buffer.t -> to_follower -> unit
val decode_to_follower : Wire.reader -> to_follower
val to_follower_of_string : string -> (to_follower, string) result
val pp_to_follower : Format.formatter -> to_follower -> unit

(** {1 Follower mark}

    A follower persists ops to its own WAL, but that WAL alone does
    not say {e where in the leader's stream} its origin snapshot sat.
    The mark ([<wal>.repl], header kind ['M']) records that: after a
    local recovery the follower resumes from [base_seq] + the number
    of records in its truncated WAL.  Written atomically (temp file +
    rename), so a crash mid-write leaves the previous mark. *)

type mark = { epoch : int; base_seq : int }

val mark_path : wal:string -> string
val save_mark : wal:string -> mark -> unit
val load_mark : wal:string -> mark option
(** [None] when the file is missing, unreadable or malformed — the
    follower then asks for a fresh snapshot, which is always safe. *)

val remove_mark : wal:string -> unit
