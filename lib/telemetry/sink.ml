type t = {
  metrics : Metrics.t;
  trace : Trace.t option;
  clock : unit -> float;
  origin : float;
}

let create ?trace ?(clock = Unix.gettimeofday) () =
  { metrics = Metrics.create (); trace; clock; origin = clock () }

let now t = t.clock () -. t.origin

let record t ?dur ?route_id ?middles ?wavelengths ?detail kind =
  match t.trace with
  | None -> ()
  | Some trace ->
    Trace.record trace ~ts:(now t) ?dur ?route_id ?middles ?wavelengths
      ?detail kind

let snapshot t = Metrics.snapshot t.metrics
