(** A registry of named counters, gauges and latency histograms.

    Instrumented code registers its instruments once (at network or
    driver creation) and then mutates them directly on the hot path —
    registration does the name lookup, so an increment is a single
    in-place field update with no hashing and no allocation.

    Names follow the Prometheus convention ([snake_case], counters
    suffixed [_total], base units in the name, e.g.
    [wdmnet_connect_latency_seconds]); a per-middle or per-cause family
    is registered as one instrument per member with the label baked
    into the name ([wdmnet_connect_blocked_total{cause="blocked"}]),
    which {!to_prometheus} passes through verbatim. *)

type t

val create : unit -> t

(** {1 Instruments} *)

type counter

val counter : t -> ?help:string -> string -> counter
(** Get-or-create by name: registering the same name twice returns the
    same instrument, so a network and a driver sharing a sink can share
    a counter. *)

val inc : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

type gauge

val gauge : t -> ?help:string -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : t -> ?help:string -> ?bounds:float array -> string -> Histogram.t
(** Get-or-create; [bounds] is only consulted on first registration. *)

(** {1 Snapshots}

    A snapshot decouples exposition from the live registry: it is an
    immutable copy, safe to render or serialize while the run
    continues.  Instruments appear in registration order. *)

type snapshot = {
  counters : (string * string * int) list;  (** name, help, value *)
  gauges : (string * string * float) list;
  histograms : (string * string * Histogram.snapshot) list;
}

val snapshot : t -> snapshot

val find_counter : snapshot -> string -> int option
val find_gauge : snapshot -> string -> float option
val find_histogram : snapshot -> string -> Histogram.snapshot option

val sum_counters : snapshot -> prefix:string -> int
(** Sum of every counter whose name starts with [prefix] — e.g. the
    total blocks across the per-cause family. *)

val to_json : snapshot -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}] with
    histograms as [{"bounds": [...], "cumulative": [...], "sum": s,
    "count": n}]. *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition format: samples grouped by family (the
    name before any baked-in ["{...}"] label set) in first-registration
    order, [# HELP] (first non-empty help among members) and [# TYPE]
    exactly once per family, label values and help text escaped per the
    exposition spec, and [_bucket]/[_sum]/[_count] series per histogram
    with cumulative [le] labels — a labeled histogram family emits
    [fam_bucket{labels,le="..."}]. *)

val pp_text : Format.formatter -> snapshot -> unit
(** Human-readable aligned table: counters, gauges, then histograms
    with count/mean/p50/p99. *)
