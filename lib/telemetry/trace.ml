type kind =
  | Connect
  | Disconnect
  | Block
  | Fault_inject
  | Fault_clear
  | Rearrange
  | Repair
  | Stage

let kind_to_string = function
  | Connect -> "connect"
  | Disconnect -> "disconnect"
  | Block -> "block"
  | Fault_inject -> "fault-inject"
  | Fault_clear -> "fault-clear"
  | Rearrange -> "rearrange"
  | Repair -> "repair"
  | Stage -> "stage"

let kind_of_string = function
  | "connect" -> Some Connect
  | "disconnect" -> Some Disconnect
  | "block" -> Some Block
  | "fault-inject" -> Some Fault_inject
  | "fault-clear" -> Some Fault_clear
  | "rearrange" -> Some Rearrange
  | "repair" -> Some Repair
  | "stage" -> Some Stage
  | _ -> None

type event = {
  ts : float;
  dur : float option;
  kind : kind;
  route_id : int option;
  middles : int list;
  wavelengths : int list;
  detail : (string * string) list;
}

type t = { mutable events : event list (* reversed *); mutable last_ts : float }

let create () = { events = []; last_ts = 0. }

let record t ~ts ?dur ?route_id ?(middles = []) ?(wavelengths = [])
    ?(detail = []) kind =
  let ts = if ts < t.last_ts then t.last_ts else ts in
  t.last_ts <- ts;
  t.events <-
    { ts; dur; kind; route_id; middles; wavelengths; detail } :: t.events

let events t = List.rev t.events
let length t = List.length t.events

(* ----- JSONL ----------------------------------------------------------- *)

let event_to_json e =
  let base =
    [
      ("ts", Json.Float e.ts);
      ("kind", Json.String (kind_to_string e.kind));
    ]
  in
  let opt name = function Some v -> [ (name, v) ] | None -> [] in
  let ints name = function
    | [] -> []
    | l -> [ (name, Json.List (List.map (fun i -> Json.Int i) l)) ]
  in
  Json.Obj
    (base
    @ opt "dur" (Option.map (fun d -> Json.Float d) e.dur)
    @ opt "route_id" (Option.map (fun i -> Json.Int i) e.route_id)
    @ ints "middles" e.middles
    @ ints "wavelengths" e.wavelengths
    @
    match e.detail with
    | [] -> []
    | d -> [ ("detail", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) d)) ]
    )

let event_of_json json =
  let ( let* ) r f = Result.bind r f in
  let require name conv =
    match Option.bind (Json.member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)
  in
  let* ts = require "ts" Json.to_float_opt in
  let* kind_s = require "kind" Json.to_string_opt in
  let* kind =
    match kind_of_string kind_s with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "unknown event kind %S" kind_s)
  in
  let dur = Option.bind (Json.member "dur" json) Json.to_float_opt in
  let route_id = Option.bind (Json.member "route_id" json) Json.to_int in
  let int_list name =
    match Option.bind (Json.member name json) Json.to_list with
    | None -> []
    | Some l -> List.filter_map Json.to_int l
  in
  let detail =
    match Json.member "detail" json with
    | Some (Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_string_opt v))
        kvs
    | _ -> []
  in
  Ok
    {
      ts;
      dur;
      kind;
      route_id;
      middles = int_list "middles";
      wavelengths = int_list "wavelengths";
      detail;
    }

let event_of_jsonl line =
  match Json.parse line with
  | Error e -> Error e
  | Ok json -> event_of_json json

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_to_json e));
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

(* ----- Chrome trace_event ---------------------------------------------- *)

let to_chrome t =
  let us s = s *. 1e6 in
  let args e =
    let str_of_ints l = String.concat "," (List.map string_of_int l) in
    (match e.route_id with
    | Some id -> [ ("route_id", Json.Int id) ]
    | None -> [])
    @ (match e.middles with
      | [] -> []
      | l -> [ ("middles", Json.String (str_of_ints l)) ])
    @ (match e.wavelengths with
      | [] -> []
      | l -> [ ("wavelengths", Json.String (str_of_ints l)) ])
    @ List.map (fun (k, v) -> (k, Json.String v)) e.detail
  in
  let trace_event e =
    let name =
      (* a server request stage names its slice after the stage, so a
         span's decode/queue/execute/... slices are distinguishable on
         the timeline *)
      match (e.kind, List.assoc_opt "stage" e.detail) with
      | Stage, Some s -> "stage:" ^ s
      | _ -> kind_to_string e.kind
    in
    let common =
      [
        ("name", Json.String name);
        ("cat", Json.String "wdmnet");
        ("pid", Json.Int 1);
        ("tid", Json.Int 1);
        ("ts", Json.Float (us e.ts));
        ("args", Json.Obj (args e));
      ]
    in
    match e.dur with
    | Some d ->
      Json.Obj (("ph", Json.String "X") :: ("dur", Json.Float (us d)) :: common)
    | None ->
      Json.Obj (("ph", Json.String "i") :: ("s", Json.String "t") :: common)
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (List.map trace_event (events t)));
         ("displayTimeUnit", Json.String "ms");
       ])
