type t = {
  name : string;
  bounds : float array;
  counts : int array;  (* length = Array.length bounds + 1; last = overflow *)
  mutable sum : float;
  mutable count : int;
}

let default_latency_bounds =
  [|
    5e-8; 1e-7; 2.5e-7; 5e-7; 1e-6; 2.5e-6; 5e-6; 1e-5; 2.5e-5; 5e-5; 1e-4;
    2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3; 1e-2; 2.5e-2; 5e-2; 1e-1;
  |]

let create ?(bounds = default_latency_bounds) name =
  if Array.length bounds = 0 then
    invalid_arg "Histogram.create: need at least one bound";
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Histogram.create: bounds must be strictly increasing"
  done;
  {
    name;
    bounds = Array.copy bounds;
    counts = Array.make (Array.length bounds + 1) 0;
    sum = 0.;
    count = 0;
  }

let name t = t.name

let observe t v =
  let n = Array.length t.bounds in
  let rec bucket i = if i >= n then n else if v <= t.bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  t.counts.(i) <- t.counts.(i) + 1;
  t.sum <- t.sum +. v;
  t.count <- t.count + 1

let count t = t.count
let sum t = t.sum

type snapshot = {
  bounds : float array;
  cumulative : int array;
  sum : float;
  count : int;
}

let snapshot t =
  let cumulative = Array.make (Array.length t.counts) 0 in
  let acc = ref 0 in
  Array.iteri
    (fun i c ->
      acc := !acc + c;
      cumulative.(i) <- !acc)
    t.counts;
  { bounds = Array.copy t.bounds; cumulative; sum = t.sum; count = t.count }

let mean s = if s.count = 0 then None else Some (s.sum /. float_of_int s.count)

let quantile s q =
  if q < 0. || q > 1. then invalid_arg "Histogram.quantile: q must be in [0, 1]";
  if s.count = 0 then None
  else begin
    let target = q *. float_of_int s.count in
    let n = Array.length s.bounds in
    let rec go i =
      if i >= n then s.bounds.(n - 1)
      else if float_of_int s.cumulative.(i) >= target then s.bounds.(i)
      else go (i + 1)
    in
    Some (go 0)
  end
