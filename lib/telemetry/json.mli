(** A minimal JSON value, printer and parser.

    The telemetry layer emits machine-readable artifacts (JSONL traces,
    Chrome [trace_event] files, metrics snapshots) and the test suite
    must round-trip them without external dependencies, so this module
    implements just enough of RFC 8259: objects, arrays, strings with
    the standard escapes, integers, floats, booleans and null.  It is
    not a streaming parser and keeps whole documents in memory — fine
    for traces of simulation runs, not for gigabyte logs. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Floats use a round-trippable
    format; NaN and infinities, which JSON cannot represent as
    numbers, are rendered as the strings ["nan"], ["inf"] and
    ["-inf"] (not [null] — a histogram's [+inf] bucket bound must
    survive a round trip).  {!to_float_opt} maps them back. *)

val parse : string -> (t, string) result
(** Parses one JSON document.  Trailing whitespace is allowed, trailing
    garbage is an error.  Numbers with [.], [e] or [E] parse as
    {!Float}, all others as {!Int}. *)

val member : string -> t -> t option
(** [member key (Obj ...)] looks up a key; [None] on missing key or
    non-object. *)

val to_int : t -> int option
(** {!Int} directly, or a {!Float} with integral value. *)

val to_float_opt : t -> float option
(** {!Float}, {!Int}, or one of the non-finite marker strings ["nan"],
    ["inf"], ["-inf"]. *)

val to_list : t -> t list option
val to_string_opt : t -> string option
