type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ----- printing -------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* JSON has no non-finite literals; encode them as strings rather
       than silently degrading to null, so a histogram bound of
       infinity survives a round trip (to_float_opt maps them back) *)
    if Float.is_nan f then Buffer.add_string buf "\"nan\""
    else if f = Float.infinity then Buffer.add_string buf "\"inf\""
    else if f = Float.neg_infinity then Buffer.add_string buf "\"-inf\""
    else Buffer.add_string buf (float_to_string f)
  | String s -> escape_string buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf v)
      l;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        emit buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* ----- parsing --------------------------------------------------------- *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

let error st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> error st (Printf.sprintf "expected '%c'" c)

let parse_literal st lit value =
  if
    st.pos + String.length lit <= String.length st.src
    && String.sub st.src st.pos (String.length lit) = lit
  then begin
    st.pos <- st.pos + String.length lit;
    value
  end
  else error st (Printf.sprintf "expected %s" lit)

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
      | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
      | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
      | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
      | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
      | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
      | Some 'u' ->
        advance st;
        if st.pos + 4 > String.length st.src then error st "bad \\u escape";
        let hex = String.sub st.src st.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex) with _ -> error st "bad \\u escape"
        in
        st.pos <- st.pos + 4;
        (* basic-multilingual-plane only; encode as UTF-8 *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
        end;
        go ()
      | _ -> error st "bad escape")
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_number_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_number_char c ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let text = String.sub st.src start (st.pos - start) in
  let is_float =
    String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text
  in
  if is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> error st "bad number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> error st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some '"' -> String (parse_string_body st)
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> error st "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let member () =
        skip_ws st;
        let k = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let rec members acc =
        let kv = member () in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members (kv :: acc)
        | Some '}' ->
          advance st;
          List.rev (kv :: acc)
        | _ -> error st "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected character '%c'" c)

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then Error "trailing garbage"
    else Ok v
  | exception Parse_error msg -> Error msg

(* ----- accessors ------------------------------------------------------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | String "nan" -> Some Float.nan
  | String "inf" -> Some Float.infinity
  | String "-inf" -> Some Float.neg_infinity
  | _ -> None

let to_list = function List l -> Some l | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
