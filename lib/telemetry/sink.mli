(** The telemetry sink instrumented code takes as [?telemetry].

    One sink bundles a metrics registry, an optional trace, and a
    clock.  Instrumented entry points ({!Wdm_multistage.Network.create},
    {!Wdm_multistage.Scheduler.repair}, the {!Wdm_traffic.Churn}
    drivers) accept [?telemetry:Sink.t]; when omitted the instrumented
    code takes the [None] branch of a single [match] and touches
    neither the clock nor any instrument — the disabled path allocates
    nothing and existing call sites compile and behave unchanged.

    Timestamps are seconds since the sink was created, from a wall
    clock ([Unix.gettimeofday]) by default; {!Trace.record} clamps them
    non-decreasing so the emitted trace is monotone even across a
    clock step.  Pass [~clock] for deterministic traces (e.g. a step
    counter in tests). *)

type t = {
  metrics : Metrics.t;
  trace : Trace.t option;
  clock : unit -> float;  (** absolute; {!now} subtracts the origin *)
  origin : float;
}

val create : ?trace:Trace.t -> ?clock:(unit -> float) -> unit -> t
(** A sink with a fresh registry.  [trace] (default: none) enables
    event recording; share one {!Trace.t} across several sinks to
    merge their events on one timeline. *)

val now : t -> float
(** Seconds since sink creation. *)

val record :
  t ->
  ?dur:float ->
  ?route_id:int ->
  ?middles:int list ->
  ?wavelengths:int list ->
  ?detail:(string * string) list ->
  Trace.kind ->
  unit
(** Appends a trace event stamped {!now}; no-op when the sink carries
    no trace. *)

val snapshot : t -> Metrics.snapshot
