(** A structured event log of fabric activity.

    Every consequential state change of a running network — a
    connection routed, a request refused, a component failing, a repair
    — is one {!event} with a monotone timestamp and the routing facts
    (route id, middle modules used, first-stage wavelengths) that the
    Section 3 analysis reasons about.  Two serializations:

    - {!to_jsonl}: one JSON object per line, the machine-diffable form
      ({!event_of_jsonl} parses it back — the tests round-trip);
    - {!to_chrome}: the Chrome [trace_event] JSON format, loadable in
      [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto} so a
      churn run can be scrubbed on a timeline.  Events carrying a
      duration render as spans ([ph = "X"]), the rest as instants. *)

type kind =
  | Connect  (** request admitted; carries the allocated route *)
  | Disconnect
  | Block  (** request refused; the cause is in [detail] *)
  | Fault_inject
  | Fault_clear
  | Rearrange  (** an existing route moved to admit a request *)
  | Repair  (** a fault victim re-homed (or dropped, per [detail]) *)
  | Stage
      (** one timed stage of a served request ({!Wdm_server.Server});
          [detail] carries ["stage"] (decode/queue/execute/wal/
          replicate/respond), ["span"] and ["client"] for correlation *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type event = {
  ts : float;  (** seconds since trace start; non-decreasing *)
  dur : float option;  (** span duration in seconds, when measured *)
  kind : kind;
  route_id : int option;
  middles : int list;  (** middle modules the route rides *)
  wavelengths : int list;  (** first-stage wavelength per hop *)
  detail : (string * string) list;  (** free-form context, e.g. cause *)
}

type t

val create : unit -> t

val record :
  t ->
  ts:float ->
  ?dur:float ->
  ?route_id:int ->
  ?middles:int list ->
  ?wavelengths:int list ->
  ?detail:(string * string) list ->
  kind ->
  unit
(** Appends one event.  Timestamps are clamped to be non-decreasing
    (a wall-clock step backwards cannot produce a disordered trace). *)

val events : t -> event list
(** In emission order. *)

val length : t -> int

val to_jsonl : t -> string
(** One event per line. *)

val event_to_json : event -> Json.t
val event_of_json : Json.t -> (event, string) result

val event_of_jsonl : string -> (event, string) result
(** Parses one line of {!to_jsonl} output. *)

val to_chrome : t -> string
(** The whole trace as [{"traceEvents": [...], "displayTimeUnit":
    "ms"}].  Timestamps convert to microseconds as the format
    requires. *)
