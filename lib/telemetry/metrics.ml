type counter = { c_name : string; c_help : string; mutable c_value : int }
type gauge = { g_name : string; g_help : string; mutable g_value : float }

type t = {
  mutable counters : counter list;  (* reverse registration order *)
  mutable gauges : gauge list;
  mutable histograms : (Histogram.t * string) list;  (* instrument, help *)
}

let create () = { counters = []; gauges = []; histograms = [] }

let counter t ?(help = "") name =
  match List.find_opt (fun c -> c.c_name = name) t.counters with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_help = help; c_value = 0 } in
    t.counters <- c :: t.counters;
    c

let inc c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let counter_value c = c.c_value

let gauge t ?(help = "") name =
  match List.find_opt (fun g -> g.g_name = name) t.gauges with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_help = help; g_value = 0. } in
    t.gauges <- g :: t.gauges;
    g

let set g v = g.g_value <- v
let gauge_value g = g.g_value

let histogram t ?(help = "") ?bounds name =
  match
    List.find_opt (fun (h, _) -> Histogram.name h = name) t.histograms
  with
  | Some (h, _) -> h
  | None ->
    let h = Histogram.create ?bounds name in
    t.histograms <- (h, help) :: t.histograms;
    h

type snapshot = {
  counters : (string * string * int) list;
  gauges : (string * string * float) list;
  histograms : (string * string * Histogram.snapshot) list;
}

let snapshot (t : t) : snapshot =
  {
    counters =
      List.rev_map (fun c -> (c.c_name, c.c_help, c.c_value)) t.counters;
    gauges = List.rev_map (fun g -> (g.g_name, g.g_help, g.g_value)) t.gauges;
    histograms =
      List.rev_map
        (fun (h, help) -> (Histogram.name h, help, Histogram.snapshot h))
        t.histograms;
  }

let find_counter s name =
  List.find_map (fun (n, _, v) -> if n = name then Some v else None) s.counters

let find_gauge s name =
  List.find_map (fun (n, _, v) -> if n = name then Some v else None) s.gauges

let find_histogram s name =
  List.find_map
    (fun (n, _, v) -> if n = name then Some v else None)
    s.histograms

let sum_counters s ~prefix =
  let starts_with p n =
    String.length n >= String.length p && String.sub n 0 (String.length p) = p
  in
  List.fold_left
    (fun acc (n, _, v) -> if starts_with prefix n then acc + v else acc)
    0 s.counters

let to_json s =
  let hist (h : Histogram.snapshot) =
    Json.Obj
      [
        ("bounds", Json.List (Array.to_list (Array.map (fun b -> Json.Float b) h.bounds)));
        ( "cumulative",
          Json.List (Array.to_list (Array.map (fun c -> Json.Int c) h.cumulative)) );
        ("sum", Json.Float h.sum);
        ("count", Json.Int h.count);
      ]
  in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, _, v) -> (n, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (n, _, v) -> (n, Json.Float v)) s.gauges));
      ( "histograms",
        Json.Obj (List.map (fun (n, _, v) -> (n, hist v)) s.histograms) );
    ]

(* The family name is the part before any baked-in label set; TYPE and
   HELP comments must name the family, while the sample line keeps the
   labels.  Baked-in labels arrive as the raw text between '{' and the final
   '}'; split it back into (key, value) pairs so exposition can escape
   the values.  A value is everything between its opening quote and
   the quote that precedes either ',' + the next key or the end —
   i.e. raw quotes inside values survive as long as the value does not
   itself contain the exact sequence '","'. *)
let parse_labels name =
  match String.index_opt name '{' with
  | None -> (name, [])
  | Some i ->
    let fam = String.sub name 0 i in
    let len = String.length name in
    let body =
      if len > i + 1 && name.[len - 1] = '}' then
        String.sub name (i + 1) (len - i - 2)
      else String.sub name (i + 1) (len - i - 1)
    in
    let pairs = ref [] in
    let pos = ref 0 in
    let n = String.length body in
    (try
       while !pos < n do
         let eq =
           match String.index_from_opt body !pos '=' with
           | Some e -> e
           | None -> raise Exit
         in
         let key = String.sub body !pos (eq - !pos) in
         if eq + 1 >= n || body.[eq + 1] <> '"' then raise Exit;
         (* the value's closing quote is the last '"' before the next
            '","' separator (or the final one) *)
         let vstart = eq + 2 in
         let rec find_close j =
           if j >= n then n - 1
           else if body.[j] = '"' && (j + 1 >= n || body.[j + 1] = ',') then j
           else find_close (j + 1)
         in
         let close = find_close vstart in
         let v =
           if close >= vstart then String.sub body vstart (close - vstart)
           else ""
         in
         pairs := (key, v) :: !pairs;
         pos := close + 2 (* skip closing quote + ',' *)
       done
     with Exit -> ());
    (fam, List.rev !pairs)

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let escape_help h =
  let buf = Buffer.create (String.length h) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    h;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | pairs ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
           pairs)
    ^ "}"

type sample =
  | S_counter of (string * string) list * int
  | S_gauge of (string * string) list * float
  | S_hist of (string * string) list * Histogram.snapshot

type fam_entry = {
  f_kind : string;
  mutable f_help : string;
  mutable f_samples : sample list;  (* reverse order *)
}

(* Exposition-format invariants the naive per-instrument loop broke:
   all samples of a family are contiguous, # HELP / # TYPE appear
   exactly once per family (even when members register interleaved
   with other metrics, or only a later member carries help text), and
   label values are escaped.  Labeled histograms become
   [fam_bucket{labels,le="..."}], not [fam{labels}_bucket{...}]. *)
let to_prometheus s =
  let tbl : (string, fam_entry) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let note name help sample kind =
    let fam, labels = parse_labels name in
    let entry =
      match Hashtbl.find_opt tbl fam with
      | Some e -> e
      | None ->
        let e = { f_kind = kind; f_help = ""; f_samples = [] } in
        Hashtbl.add tbl fam e;
        order := fam :: !order;
        e
    in
    if entry.f_help = "" && help <> "" then entry.f_help <- help;
    entry.f_samples <- sample labels :: entry.f_samples
  in
  List.iter
    (fun (n, help, v) -> note n help (fun l -> S_counter (l, v)) "counter")
    s.counters;
  List.iter
    (fun (n, help, v) -> note n help (fun l -> S_gauge (l, v)) "gauge")
    s.gauges;
  List.iter
    (fun (n, help, h) -> note n help (fun l -> S_hist (l, h)) "histogram")
    s.histograms;
  let buf = Buffer.create 1024 in
  List.iter
    (fun fam ->
      let e = Hashtbl.find tbl fam in
      if e.f_help <> "" then
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" fam (escape_help e.f_help));
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" fam e.f_kind);
      List.iter
        (fun sample ->
          match sample with
          | S_counter (labels, v) ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %d\n" fam (render_labels labels) v)
          | S_gauge (labels, v) ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %g\n" fam (render_labels labels) v)
          | S_hist (labels, h) ->
            let with_le b = render_labels (labels @ [ ("le", b) ]) in
            Array.iteri
              (fun i b ->
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %d\n" fam
                     (with_le (Printf.sprintf "%g" b))
                     h.cumulative.(i)))
              h.bounds;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" fam (with_le "+Inf") h.count);
            Buffer.add_string buf
              (Printf.sprintf "%s_sum%s %.9g\n" fam (render_labels labels)
                 h.sum);
            Buffer.add_string buf
              (Printf.sprintf "%s_count%s %d\n" fam (render_labels labels)
                 h.count))
        (List.rev e.f_samples))
    (List.rev !order);
  Buffer.contents buf

let pp_text ppf s =
  let open Format in
  let width =
    List.fold_left
      (fun acc n -> Stdlib.max acc (String.length n))
      0
      (List.map (fun (n, _, _) -> n) s.counters
      @ List.map (fun (n, _, _) -> n) s.gauges
      @ List.map (fun (n, _, _) -> n) s.histograms)
  in
  fprintf ppf "@[<v>";
  if s.counters <> [] then begin
    fprintf ppf "counters:@,";
    List.iter
      (fun (n, _, v) -> fprintf ppf "  %-*s %d@," width n v)
      s.counters
  end;
  if s.gauges <> [] then begin
    fprintf ppf "gauges:@,";
    List.iter
      (fun (n, _, v) -> fprintf ppf "  %-*s %.4f@," width n v)
      s.gauges
  end;
  if s.histograms <> [] then begin
    fprintf ppf "histograms:@,";
    List.iter
      (fun (n, _, (h : Histogram.snapshot)) ->
        let mean =
          match Histogram.mean h with
          | Some m -> Printf.sprintf "%.2e s" m
          | None -> "n/a"
        in
        let q p =
          match Histogram.quantile h p with
          | Some v -> Printf.sprintf "<=%.1e s" v
          | None -> "n/a"
        in
        fprintf ppf "  %-*s count %d, mean %s, p50 %s, p99 %s@," width n
          h.count mean (q 0.5) (q 0.99))
      s.histograms
  end;
  fprintf ppf "@]"
