type counter = { c_name : string; c_help : string; mutable c_value : int }
type gauge = { g_name : string; g_help : string; mutable g_value : float }

type t = {
  mutable counters : counter list;  (* reverse registration order *)
  mutable gauges : gauge list;
  mutable histograms : (Histogram.t * string) list;  (* instrument, help *)
}

let create () = { counters = []; gauges = []; histograms = [] }

let counter t ?(help = "") name =
  match List.find_opt (fun c -> c.c_name = name) t.counters with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_help = help; c_value = 0 } in
    t.counters <- c :: t.counters;
    c

let inc c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let counter_value c = c.c_value

let gauge t ?(help = "") name =
  match List.find_opt (fun g -> g.g_name = name) t.gauges with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_help = help; g_value = 0. } in
    t.gauges <- g :: t.gauges;
    g

let set g v = g.g_value <- v
let gauge_value g = g.g_value

let histogram t ?(help = "") ?bounds name =
  match
    List.find_opt (fun (h, _) -> Histogram.name h = name) t.histograms
  with
  | Some (h, _) -> h
  | None ->
    let h = Histogram.create ?bounds name in
    t.histograms <- (h, help) :: t.histograms;
    h

type snapshot = {
  counters : (string * string * int) list;
  gauges : (string * string * float) list;
  histograms : (string * string * Histogram.snapshot) list;
}

let snapshot (t : t) : snapshot =
  {
    counters =
      List.rev_map (fun c -> (c.c_name, c.c_help, c.c_value)) t.counters;
    gauges = List.rev_map (fun g -> (g.g_name, g.g_help, g.g_value)) t.gauges;
    histograms =
      List.rev_map
        (fun (h, help) -> (Histogram.name h, help, Histogram.snapshot h))
        t.histograms;
  }

let find_counter s name =
  List.find_map (fun (n, _, v) -> if n = name then Some v else None) s.counters

let find_gauge s name =
  List.find_map (fun (n, _, v) -> if n = name then Some v else None) s.gauges

let find_histogram s name =
  List.find_map
    (fun (n, _, v) -> if n = name then Some v else None)
    s.histograms

let sum_counters s ~prefix =
  let starts_with p n =
    String.length n >= String.length p && String.sub n 0 (String.length p) = p
  in
  List.fold_left
    (fun acc (n, _, v) -> if starts_with prefix n then acc + v else acc)
    0 s.counters

let to_json s =
  let hist (h : Histogram.snapshot) =
    Json.Obj
      [
        ("bounds", Json.List (Array.to_list (Array.map (fun b -> Json.Float b) h.bounds)));
        ( "cumulative",
          Json.List (Array.to_list (Array.map (fun c -> Json.Int c) h.cumulative)) );
        ("sum", Json.Float h.sum);
        ("count", Json.Int h.count);
      ]
  in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, _, v) -> (n, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (n, _, v) -> (n, Json.Float v)) s.gauges));
      ( "histograms",
        Json.Obj (List.map (fun (n, _, v) -> (n, hist v)) s.histograms) );
    ]

(* The family name is the part before any baked-in label set; TYPE and
   HELP comments must name the family, while the sample line keeps the
   labels. *)
let family name =
  match String.index_opt name '{' with
  | Some i -> String.sub name 0 i
  | None -> name

let to_prometheus s =
  let buf = Buffer.create 1024 in
  let seen = Hashtbl.create 16 in
  let header name help kind =
    let fam = family name in
    if not (Hashtbl.mem seen fam) then begin
      Hashtbl.add seen fam ();
      if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" fam help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" fam kind)
    end
  in
  List.iter
    (fun (n, help, v) ->
      header n help "counter";
      Buffer.add_string buf (Printf.sprintf "%s %d\n" n v))
    s.counters;
  List.iter
    (fun (n, help, v) ->
      header n help "gauge";
      Buffer.add_string buf (Printf.sprintf "%s %g\n" n v))
    s.gauges;
  List.iter
    (fun (n, help, (h : Histogram.snapshot)) ->
      header n help "histogram";
      Array.iteri
        (fun i b ->
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%g\"} %d\n" n b h.cumulative.(i)))
        h.bounds;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n h.count);
      Buffer.add_string buf (Printf.sprintf "%s_sum %.9g\n" n h.sum);
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n h.count))
    s.histograms;
  Buffer.contents buf

let pp_text ppf s =
  let open Format in
  let width =
    List.fold_left
      (fun acc n -> Stdlib.max acc (String.length n))
      0
      (List.map (fun (n, _, _) -> n) s.counters
      @ List.map (fun (n, _, _) -> n) s.gauges
      @ List.map (fun (n, _, _) -> n) s.histograms)
  in
  fprintf ppf "@[<v>";
  if s.counters <> [] then begin
    fprintf ppf "counters:@,";
    List.iter
      (fun (n, _, v) -> fprintf ppf "  %-*s %d@," width n v)
      s.counters
  end;
  if s.gauges <> [] then begin
    fprintf ppf "gauges:@,";
    List.iter
      (fun (n, _, v) -> fprintf ppf "  %-*s %.4f@," width n v)
      s.gauges
  end;
  if s.histograms <> [] then begin
    fprintf ppf "histograms:@,";
    List.iter
      (fun (n, _, (h : Histogram.snapshot)) ->
        let mean =
          match Histogram.mean h with
          | Some m -> Printf.sprintf "%.2e s" m
          | None -> "n/a"
        in
        let q p =
          match Histogram.quantile h p with
          | Some v -> Printf.sprintf "<=%.1e s" v
          | None -> "n/a"
        in
        fprintf ppf "  %-*s count %d, mean %s, p50 %s, p99 %s@," width n
          h.count mean (q 0.5) (q 0.99))
      s.histograms
  end;
  fprintf ppf "@]"
