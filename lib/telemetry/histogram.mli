(** Fixed-bucket histograms for latency measurements.

    Buckets are defined by a sorted array of upper bounds (in the unit
    of the observed values — the routing hot paths observe seconds); an
    implicit [+inf] bucket catches everything above the last bound.
    Observation is O(number of buckets) with no allocation, so wrapping
    the {!Wdm_multistage.Network.connect} hot path costs a clock read
    and an array scan. *)

type t

val default_latency_bounds : float array
(** Upper bounds in seconds, roughly logarithmic from 50 ns to 100 ms
    — fine enough at the bottom for in-process routing ops (tens to
    hundreds of ns) and at the top for socket round-trips and fsyncs.
    Snapshots taken with an older, coarser ladder stay readable: the
    bounds travel with every {!snapshot}, nothing assumes this array. *)

val create : ?bounds:float array -> string -> t
(** [create name] makes an empty histogram.  [bounds] (default
    {!default_latency_bounds}) must be strictly increasing.
    @raise Invalid_argument otherwise. *)

val name : t -> string

val observe : t -> float -> unit
(** Adds one observation.  Values above the last bound land in the
    implicit overflow bucket. *)

val count : t -> int
(** Total observations. *)

val sum : t -> float
(** Sum of all observed values. *)

type snapshot = {
  bounds : float array;  (** upper bounds, ascending *)
  cumulative : int array;
      (** [cumulative.(i)]: observations [<= bounds.(i)]; one extra
          final entry equal to {!count} (the [+inf] bucket), so the
          array is non-decreasing by construction of a correct
          implementation — the tests check exactly that *)
  sum : float;
  count : int;
}

val snapshot : t -> snapshot

val mean : snapshot -> float option
(** [sum /. count]; [None] when empty. *)

val quantile : snapshot -> float -> float option
(** [quantile s q] estimates the [q]-quantile ([0 <= q <= 1]) as the
    upper bound of the bucket where the cumulative count first reaches
    [q * count].  [None] when empty; observations in the overflow
    bucket report the last finite bound. *)
