module Rng = Wdm_core.Strategy.Det_rng

type result = { order : int list; score : int; evaluations : int }

let identity n = Array.init n (fun i -> i)

let swap a i j =
  let t = a.(i) in
  a.(i) <- a.(j);
  a.(j) <- t

let anneal ?(iterations = 400) ~seed ~score n =
  if n < 0 then invalid_arg "Optimizer.anneal: negative batch size";
  let rng = Rng.make ~seed in
  let evals = ref 0 in
  let eval a =
    incr evals;
    score (Array.to_list a)
  in
  let current = identity n in
  let current_score = ref (eval current) in
  let best = Array.copy current in
  let best_score = ref !current_score in
  let temp = ref (float_of_int (max 1 n)) in
  for _ = 1 to iterations do
    if n > 1 then begin
      let i = Rng.int rng n and j = Rng.int rng n in
      swap current i j;
      let s = eval current in
      let accept =
        s >= !current_score
        || Rng.float rng < exp (float_of_int (s - !current_score) /. !temp)
      in
      if accept then begin
        current_score := s;
        if s > !best_score then begin
          best_score := s;
          Array.blit current 0 best 0 n
        end
      end
      else swap current i j
    end;
    temp := Float.max 0.05 (!temp *. 0.97)
  done;
  { order = Array.to_list best; score = !best_score; evaluations = !evals }

(* Order crossover (OX1): copy a slice of parent a, fill the rest in
   parent b's order — preserves permutation-ness. *)
let crossover rng a b =
  let n = Array.length a in
  let lo = Rng.int rng n in
  let hi = lo + Rng.int rng (n - lo) in
  let child = Array.make n (-1) in
  let taken = Array.make n false in
  for i = lo to hi do
    child.(i) <- a.(i);
    taken.(a.(i)) <- true
  done;
  let pos = ref 0 in
  Array.iter
    (fun g ->
      if not taken.(g) then begin
        while !pos >= lo && !pos <= hi do
          incr pos
        done;
        child.(!pos) <- g;
        incr pos
      end)
    b;
  child

let evolve ?(generations = 40) ?(population = 24) ~seed ~score n =
  if n < 0 then invalid_arg "Optimizer.evolve: negative batch size";
  if population < 2 then invalid_arg "Optimizer.evolve: population < 2";
  let rng = Rng.make ~seed in
  let evals = ref 0 in
  let eval a =
    incr evals;
    score (Array.to_list a)
  in
  let shuffled () =
    let a = identity n in
    for i = n - 1 downto 1 do
      swap a i (Rng.int rng (i + 1))
    done;
    a
  in
  (* seed the population with the identity (arrival order) plus
     shuffles, so the search never does worse than no optimization *)
  let pop =
    Array.init population (fun i -> if i = 0 then identity n else shuffled ())
  in
  let scores = Array.map eval pop in
  let best = ref (Array.copy pop.(0)) in
  let best_score = ref scores.(0) in
  Array.iteri
    (fun i s ->
      if s > !best_score then begin
        best_score := s;
        best := Array.copy pop.(i)
      end)
    scores;
  let tournament () =
    let a = Rng.int rng population and b = Rng.int rng population in
    if scores.(a) >= scores.(b) then pop.(a) else pop.(b)
  in
  for _ = 1 to generations do
    let next =
      Array.init population (fun _ ->
          let child =
            if n > 1 then crossover rng (tournament ()) (tournament ())
            else Array.copy (tournament ())
          in
          (* swap mutation at a fixed small rate *)
          if n > 1 && Rng.int rng 4 = 0 then
            swap child (Rng.int rng n) (Rng.int rng n);
          child)
    in
    Array.iteri
      (fun i c ->
        pop.(i) <- c;
        scores.(i) <- eval c;
        if scores.(i) > !best_score then begin
          best_score := scores.(i);
          best := Array.copy c
        end)
      next
  done;
  { order = Array.to_list !best; score = !best_score; evaluations = !evals }
