module Network = Wdm_multistage.Network
module Topology = Wdm_multistage.Topology
module Model = Wdm_core.Model
module Mesh = Wdm_mesh.Mesh_network
module Assign = Wdm_mesh.Assign
module Churn = Wdm_traffic.Churn
module Erlang = Wdm_traffic.Erlang
module Fanout = Wdm_traffic.Fanout

type workload =
  | Multistage of {
      label : string;
      n : int;
      m : int;
      r : int;
      k : int;
      steps : int;
      teardown_bias : float;
      fanout : Fanout.t;
    }
  | Mesh of {
      label : string;
      topo : string;
      k : int;
      k_paths : int;
      offered : float;
      arrivals : int;
      fanout : Fanout.t;
    }

let workload_label = function
  | Multistage { label; _ } -> label
  | Mesh { label; _ } -> label

let workload_engine = function
  | Multistage _ -> "multistage"
  | Mesh _ -> "mesh"

type spec = { seed : int; strategies : string list; workloads : workload list }

type cell = {
  engine : string;
  workload : string;
  strategy : string;
  attempts : int;
  accepted : int;
  blocked : int;
  blocking : float;
  mean_connect_us : float;
}

let default =
  {
    seed = 20000;
    strategies = [ "first-fit"; "adaptive"; "annealed"; "crosstalk" ];
    workloads =
      [
        (* m chosen well under the Theorem 1 nonblocking minimum
           (13 for n=r=4, k=2), so strategy choice is load-bearing *)
        Multistage
          {
            label = "churn-4x4-m8";
            n = 4;
            m = 8;
            r = 4;
            k = 2;
            steps = 4000;
            teardown_bias = 0.3;
            fanout = Fanout.Zipf { max = 9; s = 1.0 };
          };
        Multistage
          {
            label = "churn-5x5-m10";
            n = 5;
            m = 10;
            r = 5;
            k = 2;
            steps = 4000;
            teardown_bias = 0.3;
            fanout = Fanout.Zipf { max = 11; s = 1.2 };
          };
        Mesh
          {
            label = "nsf14-16E";
            topo = "nsf14";
            k = 8;
            k_paths = 3;
            offered = 16.;
            arrivals = 3000;
            fanout = Fanout.Zipf { max = 6; s = 1.3 };
          };
        Mesh
          {
            label = "janet-12E";
            topo = "janet";
            k = 8;
            k_paths = 3;
            offered = 12.;
            arrivals = 3000;
            fanout = Fanout.Zipf { max = 6; s = 1.3 };
          };
      ];
  }

let shrink = function
  | Multistage w -> Multistage { w with steps = 600 }
  | Mesh w -> Mesh { w with arrivals = 300 }

let quick = { default with workloads = List.map shrink default.workloads }

(* The per-cell RNG is a function of the campaign seed and the workload
   index only — NOT the strategy — so every strategy in a row faces the
   same offered stream. *)
let cell_rng spec ~workload_index =
  Random.State.make [| spec.seed; 7919 * (workload_index + 1) |]

type meter = { mutable calls : int; mutable total_s : float }

let timed meter f x =
  let t0 = Unix.gettimeofday () in
  let r = f x in
  meter.calls <- meter.calls + 1;
  meter.total_s <- meter.total_s +. (Unix.gettimeofday () -. t0);
  r

let mean_us meter =
  if meter.calls = 0 then 0.
  else meter.total_s /. float_of_int meter.calls *. 1e6

let run_multistage rng ~strategy ~n ~m ~r ~k ~steps ~teardown_bias ~fanout =
  match Topology.make ~n ~m ~r ~k with
  | Error e -> Error (Printf.sprintf "invalid multistage workload: %s" e)
  | Ok topo ->
    let net =
      Network.create
        ~config:{ Network.Config.default with strategy }
        ~construction:Network.Msw_dominant ~output_model:Model.MSW topo
    in
    let meter = { calls = 0; total_s = 0. } in
    let sut =
      {
        Churn.connect =
          (fun c ->
            match timed meter (Network.connect net) c with
            | Ok route -> Ok route.Network.id
            | Error e -> Error e);
        disconnect = (fun id -> ignore (Network.disconnect net id));
      }
    in
    let stats =
      Churn.run rng ~spec:(Topology.spec topo) ~model:Model.MSW ~fanout ~steps
        ~teardown_bias sut
    in
    Ok
      ( stats.Churn.attempts,
        stats.Churn.accepted,
        stats.Churn.blocked,
        mean_us meter )

let run_mesh rng ~strategy ~topo ~k ~k_paths ~offered ~arrivals ~fanout =
  let config =
    {
      Mesh.Config.k;
      strategy;
      mode = Wdm_mesh.Light_tree.Hierarchy;
      splitters = Mesh.Split_all;
      k_paths;
    }
  in
  match Mesh.create ~config topo with
  | Error e -> Error (Printf.sprintf "invalid mesh workload: %s" e)
  | Ok net ->
    let meter = { calls = 0; total_s = 0. } in
    let sut =
      {
        Churn.connect =
          (fun c ->
            match timed meter (Mesh.connect net) c with
            | Ok route -> Ok route.Mesh.id
            | Error e -> Error e);
        disconnect = (fun id -> ignore (Mesh.disconnect net id));
      }
    in
    let nodes = Wdm_mesh.Graph.n (Mesh.graph net) in
    let point = Erlang.run rng ~nodes ~fanout ~offered ~arrivals sut in
    Ok
      ( point.Erlang.arrivals,
        point.Erlang.accepted,
        point.Erlang.blocked,
        mean_us meter )

let run_cell spec ~workload_index workload name =
  let rng = cell_rng spec ~workload_index in
  let outcome =
    match workload with
    | Multistage { n; m; r; k; steps; teardown_bias; fanout; label = _ } -> (
      match Network.strategy_of_string name with
      | Error e -> Error (Printf.sprintf "multistage: %s" e)
      | Ok strategy ->
        run_multistage rng ~strategy ~n ~m ~r ~k ~steps ~teardown_bias ~fanout)
    | Mesh { topo; k; k_paths; offered; arrivals; fanout; label = _ } -> (
      match Assign.strategy_of_string name with
      | Error e -> Error (Printf.sprintf "mesh: %s" e)
      | Ok strategy ->
        run_mesh rng ~strategy ~topo ~k ~k_paths ~offered ~arrivals ~fanout)
  in
  match outcome with
  | Error _ as e -> e
  | Ok (attempts, accepted, blocked, mean_connect_us) ->
    Ok
      {
        engine = workload_engine workload;
        workload = workload_label workload;
        strategy = name;
        attempts;
        accepted;
        blocked;
        blocking =
          (if attempts = 0 then 0.
           else float_of_int blocked /. float_of_int attempts);
        mean_connect_us;
      }

let run spec =
  if spec.strategies = [] then Error "compare: no strategies"
  else if spec.workloads = [] then Error "compare: no workloads"
  else
    let rec go acc wi = function
      | [] -> Ok (List.rev acc)
      | w :: ws ->
        let rec strategies acc = function
          | [] -> Ok acc
          | name :: rest -> (
            match run_cell spec ~workload_index:wi w name with
            | Error _ as e -> e
            | Ok cell -> strategies (cell :: acc) rest)
        in
        (match strategies acc spec.strategies with
        | Error _ as e -> e
        | Ok acc -> go acc (wi + 1) ws)
    in
    go [] 0 spec.workloads

let pp_table ppf cells =
  let by_workload =
    List.fold_left
      (fun acc c ->
        if List.mem_assoc c.workload acc then acc
        else (c.workload, List.filter (fun x -> x.workload = c.workload) cells) :: acc)
      [] cells
    |> List.rev
  in
  List.iter
    (fun (w, group) ->
      (match group with
      | [] -> ()
      | c :: _ -> Format.fprintf ppf "%s (%s)@," w c.engine);
      List.iter
        (fun c ->
          Format.fprintf ppf "  %-24s attempts=%-6d blocked=%-6d pb=%.4f mean=%.1fus@,"
            c.strategy c.attempts c.blocked c.blocking c.mean_connect_us)
        group)
    by_workload

let pp_table ppf cells =
  Format.fprintf ppf "@[<v>";
  pp_table ppf cells;
  Format.fprintf ppf "@]"
