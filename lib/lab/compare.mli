(** Race routing strategies over identical seeded traffic.

    The strategy plug-in API ({!Wdm_multistage.Network.Strategy},
    {!Wdm_mesh.Assign}) makes strategies values with names; this module
    makes them comparable: every strategy in a spec is driven over the
    {e same} per-workload seeded traffic stream — the per-cell RNG is
    derived from the campaign seed and the workload index only, never
    the strategy — so two cells in one row differ only by the routing
    decisions under test.

    Workloads span both engines: multistage cells run the
    {!Wdm_traffic.Churn} setup/teardown driver against an
    (intentionally undersized) three-stage fabric, mesh cells run the
    {!Wdm_traffic.Erlang} Poisson-load driver against a {!Wdm_mesh}
    topology.  Latency is the observed wall-clock mean around the
    connect call; it is measured outside the traffic driver's RNG, so
    it never perturbs the routed stream. *)

type workload =
  | Multistage of {
      label : string;
      n : int;  (** input/output modules *)
      m : int;  (** middle modules — pick below the nonblocking bound *)
      r : int;  (** ports per module *)
      k : int;  (** wavelengths *)
      steps : int;
      teardown_bias : float;
      fanout : Wdm_traffic.Fanout.t;
    }
  | Mesh of {
      label : string;
      topo : string;  (** a {!Wdm_mesh.Zoo} topology name *)
      k : int;  (** wavelengths per fiber *)
      k_paths : int;
      offered : float;  (** Erlangs *)
      arrivals : int;
      fanout : Wdm_traffic.Fanout.t;
    }

val workload_label : workload -> string
val workload_engine : workload -> string
(** ["multistage"] or ["mesh"]. *)

type spec = {
  seed : int;
  strategies : string list;
      (** registry names; each must resolve on every engine the
          workload list exercises *)
  workloads : workload list;
}

type cell = {
  engine : string;
  workload : string;
  strategy : string;
  attempts : int;
  accepted : int;
  blocked : int;
  blocking : float;  (** [blocked / attempts], 0 when no attempts *)
  mean_connect_us : float;  (** wall-clock mean of the connect call *)
}

val default : spec
(** Two undersized multistage fabrics and two mesh topologies, racing
    [first-fit], [adaptive], [annealed] and [crosstalk] — the lab
    acceptance table. *)

val quick : spec
(** [default] shrunk for CI smoke. *)

val run : spec -> (cell list, string) result
(** Cells in [workloads x strategies] order.  Errors (rather than
    raises) on a strategy name an engine cannot resolve or an invalid
    workload. *)

val pp_table : Format.formatter -> cell list -> unit
(** Aligned blocking/latency table grouped by workload. *)
