(** Offline batch-assignment optimizers.

    The online strategies route one request at a time; given the whole
    batch up front, the order requests are admitted in is itself a
    degree of freedom — a batch that blocks under arrival order often
    fits completely under another.  This module searches permutation
    space for an admission order maximizing a caller-supplied score
    (typically "requests admitted into a fresh network").

    Both searches draw only from {!Wdm_core.Strategy.Det_rng} seeded by
    the caller, so a run is a pure function of its arguments —
    rerunnable and replayable like everything else in the tree.

    The evaluator receives the batch in candidate order and returns the
    score to maximize; it must not mutate shared state (build a fresh
    network per call). *)

type result = {
  order : int list;  (** indices into the input batch, best-found order *)
  score : int;
  evaluations : int;  (** evaluator calls spent *)
}

val anneal :
  ?iterations:int ->
  seed:int ->
  score:(int list -> int) ->
  int ->
  result
(** [anneal ~seed ~score n] — simulated annealing over permutations of
    [0..n-1] by pairwise swaps (400 iterations by default), geometric
    cooling, Metropolis acceptance.  [score order] evaluates a
    candidate. *)

val evolve :
  ?generations:int ->
  ?population:int ->
  seed:int ->
  score:(int list -> int) ->
  int ->
  result
(** [evolve ~seed ~score n] — a small genetic search: tournament
    selection, order-preserving crossover, swap mutation (40
    generations of 24 by default).  Same contract as {!anneal}. *)
