(** Bit tricks for packed wavelength planes and endpoint bitsets.

    All functions treat an OCaml [int] as a word of up to 62 usable
    bits, which bounds the packed representations built on top (one
    wavelength plane needs [k <= 62] bits; larger universes use arrays
    of words). *)

val popcount : int -> int
(** Number of set bits (SWAR, no lookup table, no branches). *)

val ctz : int -> int
(** 0-based index of the least-significant set bit.  [ctz 0 = 62] by
    convention; callers must treat 0 specially. *)

val mask : width:int -> int
(** [mask ~width] has the low [width] bits set.
    @raise Invalid_argument unless [0 <= width <= 62]. *)

val lowest_clear : width:int -> int -> int option
(** [lowest_clear ~width x] is the 0-based position of the first clear
    bit among the low [width] bits of [x], or [None] when they are all
    set.  This is the packed equivalent of a linear first-free scan. *)

val iter_set : width:int -> (int -> unit) -> int -> unit
(** [iter_set ~width f x] applies [f] to each set-bit position among
    the low [width] bits of [x], in increasing order. *)
