(* Branch-light bit tricks for the packed link-state planes.  All
   functions operate on non-negative OCaml ints, i.e. at most 62 usable
   bits on 64-bit platforms — enough for one wavelength plane (k <= 62)
   or one word of a larger bitset. *)

(* SWAR popcount (Hacker's Delight, fig. 5-2), widened to OCaml's
   63-bit ints.  The final multiply gathers the per-byte sums into the
   top byte; shifting by 56 works because a 63-bit int holds at most 63
   set bits, which fits in that byte. *)
let popcount x =
  let x = x - ((x lsr 1) land 0x5555555555555555) in
  let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (x * 0x0101010101010101) lsr 56

(* Index of the least-significant set bit, by binary search on halves.
   Undefined on 0 (returns 62); callers guard. *)
let ctz x =
  if x = 0 then 62
  else begin
    let n = ref 0 in
    let x = ref x in
    if !x land 0xFFFFFFFF = 0 then begin
      n := !n + 32;
      x := !x lsr 32
    end;
    if !x land 0xFFFF = 0 then begin
      n := !n + 16;
      x := !x lsr 16
    end;
    if !x land 0xFF = 0 then begin
      n := !n + 8;
      x := !x lsr 8
    end;
    if !x land 0xF = 0 then begin
      n := !n + 4;
      x := !x lsr 4
    end;
    if !x land 0x3 = 0 then begin
      n := !n + 2;
      x := !x lsr 2
    end;
    if !x land 0x1 = 0 then n := !n + 1;
    !n
  end

let mask ~width =
  if width < 0 || width > 62 then invalid_arg "Bitops.mask: width must be in [0, 62]";
  (1 lsl width) - 1

(* First clear bit position (0-based) among the low [width] bits of
   [x], or None when all [width] are set. *)
let lowest_clear ~width x =
  let free = lnot x land mask ~width in
  if free = 0 then None else Some (ctz free)

let iter_set ~width f x =
  let rem = ref (x land mask ~width) in
  while !rem <> 0 do
    let b = ctz !rem in
    f b;
    rem := !rem land lnot (1 lsl b)
  done
