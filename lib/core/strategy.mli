(** The shared routing-strategy plug-in contract.

    Both engines — the three-stage fabric ([Wdm_multistage.Network]) and
    the mesh RWA engine ([Wdm_mesh]) — route a request by enumerating
    candidates (middle-module covers; wavelength/path pairs), scoring
    them, and picking one.  A strategy plug-in packages that pipeline
    behind a name, so new disciplines can be added, composed (decorated)
    and raced without editing either engine core.  This module holds the
    engine-agnostic pieces: the signature shape, the name registry, and
    the deterministic pseudo-randomness every stochastic strategy must
    draw from.

    {2 Determinism / replay contract}

    A plug-in's [select] must be a pure function of its context — the
    engine state it is given plus the request.  In particular it must
    never consult [Random.self_init]-style ambient state, the clock, or
    anything outside the context: the WAL replays connect/disconnect
    sequences and must land on byte-identical routes (and therefore
    digests).  Strategies that want randomness derive it from the
    deterministic request key the engine provides — the mesh engine's
    monotone attempt counter mixed with the request, or the multistage
    request fingerprint — through {!mix}/{!Det_rng}.  Decorators
    (strategies wrapping a base strategy) inherit the contract from
    their base plus their own parameters.

    {2 Registry naming}

    Registry names are lowercase kebab-case ([min-intersection],
    [first-fit], [adaptive], [annealed]).  Parameterized strategies use
    colon-separated arguments parsed by a registered parser, e.g.
    [crosstalk:first-fit:18] — the full string is the strategy's
    identity and is what snapshots persist, so a restore re-resolves the
    exact same plug-in. *)

(** The common shape of an engine's plug-in type: a name (its registry
    identity), a one-line doc string, and the candidate
    enumeration/scoring/pick pipeline collapsed into [select], returning
    [None] when the strategy declines to route the request (the engine
    reports its blocked cause).  Engines whose pick pipeline has more
    than one seam (the mesh engine separates wavelength ordering from
    route admission) expose those seams as additional record fields but
    keep [name]/[doc] and the registry below. *)
module type S = sig
  type ctx
  (** Everything [select] may consult: engine state + request. *)

  type plan
  (** A fully-specified routing decision the engine can execute. *)

  type t = { name : string; doc : string; select : ctx -> plan option }
end

(** A name-keyed plug-in registry.  [register] installs (or replaces) a
    plug-in under its fixed name; [register_parser] installs a fallback
    that may synthesize a plug-in from a parameterized name.  [resolve]
    tries exact names first, then parsers in registration order. *)
module Registry (P : sig
  type t

  val name : t -> string
end) : sig
  val register : P.t -> unit
  (** Install under [P.name]; replaces any previous plug-in of that
      name. *)

  val register_parser : (string -> P.t option) -> unit
  (** Install a parser for parameterized names ([prefix:arg:...]).  A
      parser returning [Some p] ends the search; [p] is {e not} cached
      under the name, so parsers must be deterministic in the name. *)

  val resolve : string -> P.t option
  (** Exact registered names first, then parsers in registration
      order. *)

  val mem : string -> bool
  (** [resolve name <> None]. *)

  val names : unit -> string list
  (** Exactly-registered names, sorted (parameterized forms are open-
      ended and not enumerable). *)
end

val mix : int -> int -> int
(** A deterministic avalanche mix of two ints into a non-negative int
    (splitmix64-style finalizer).  The replay-safe way to derive seeds
    from request fingerprints: equal inputs give equal outputs on every
    run, platform and evaluation order. *)

val mix3 : int -> int -> int -> int
(** [mix3 a b c = mix (mix a b) c]. *)

(** A tiny deterministic generator for annealing/genetic strategies:
    a 62-bit xorshift stepped purely by its own state, seeded from
    {!mix}.  Not [Random.State] — that would tempt ambient seeding and
    ties the byte-exact replay contract to the stdlib's generator
    evolution. *)
module Det_rng : sig
  type t

  val make : seed:int -> t
  val int : t -> int -> int
  (** [int t bound] draws uniformly from [0 .. bound-1] ([bound >= 1]).
      Advances the state. *)

  val float : t -> float
  (** Uniform in [0, 1). Advances the state. *)
end
