module type S = sig
  type ctx
  type plan
  type t = { name : string; doc : string; select : ctx -> plan option }
end

module Registry (P : sig
  type t

  val name : t -> string
end) =
struct
  let table : (string, P.t) Hashtbl.t = Hashtbl.create 16
  let parsers : (string -> P.t option) list ref = ref []

  let register p = Hashtbl.replace table (P.name p) p
  let register_parser f = parsers := !parsers @ [ f ]

  let resolve name =
    match Hashtbl.find_opt table name with
    | Some _ as p -> p
    | None -> List.find_map (fun f -> f name) !parsers

  let mem name = resolve name <> None

  let names () =
    Hashtbl.fold (fun name _ acc -> name :: acc) table []
    |> List.sort String.compare
end

(* splitmix64's finalizer with its multipliers truncated to OCaml's
   63-bit int (the top hex digit is masked off the 64-bit originals)
   and the result forced non-negative: still strong avalanche, no
   allocation, and identical on every 64-bit platform — the properties
   a replayed WAL needs from a request-derived seed. *)
let finalize z =
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 in
  let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb in
  (z lxor (z lsr 31)) land max_int

let mix a b = finalize ((a * 0x1e3779b97f4a7c15) + b)
let mix3 a b c = mix (mix a b) c

module Det_rng = struct
  type t = { mutable state : int }

  let make ~seed = { state = finalize (seed lor 1) }

  let next t =
    (* xorshift over the 62 usable bits; period is ample for the tens
       of draws an annealing pass makes per request *)
    let x = t.state in
    let x = x lxor (x lsl 13) land max_int in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) land max_int in
    t.state <- (if x = 0 then 0x2545f4914f6cdd1d else x);
    t.state

  let int t bound =
    if bound < 1 then invalid_arg "Strategy.Det_rng.int: bound must be >= 1";
    next t mod bound

  let float t = float_of_int (next t) /. float_of_int max_int
end
