(* Textual reproductions of the paper's construction figures, generated
   from the same constructors the simulators use.

   Run with: dune exec examples/figures.exe *)

open Wdm_core
open Wdm_multistage
module An = Wdm_analysis

let () =
  print_endline (An.Diagram.fig1_network (Network_spec.make_exn ~n:4 ~k:3));
  print_endline (An.Diagram.fig2_models ());
  print_endline (An.Diagram.fig5_space_crossbar ~n:3);

  (* Figs. 4/6/7 as component inventories of the real circuits *)
  print_endline "Figs. 4/6/7 - crossbar fabrics as built (N=3, k=2):\n";
  List.iter
    (fun model ->
      let f = Wdm_crossbar.Fabric.create ~model (Network_spec.make_exn ~n:3 ~k:2) in
      Printf.printf "  %-4s fabric: %3d SOA gates, %d converters\n"
        (Model.to_string model)
        (Wdm_crossbar.Fabric.crosspoints f)
        (Wdm_crossbar.Fabric.converters f))
    Model.all;
  print_newline ();

  let topo = Topology.make_exn ~n:2 ~m:4 ~r:2 ~k:2 in
  print_endline (An.Diagram.fig8_three_stage topo);
  print_endline
    (An.Diagram.fig9_construction ~construction:Network.Msw_dominant
       ~output_model:Model.MAW topo);
  print_endline
    (An.Diagram.fig9_construction ~construction:Network.Maw_dominant
       ~output_model:Model.MAW topo);

  (* Fig. 10 state, rendered from the live network *)
  print_endline "Fig. 10 - the state that blocks MSW middles (see blocking_demo):\n";
  let net =
    Network.create
      ~config:{ Network.Config.default with x_limit = Some 2 }
      ~construction:Network.Msw_dominant ~output_model:Model.MAW
      Scenarios.fig10_topology
  in
  List.iter
    (fun c -> ignore (Result.get_ok (Network.connect net c)))
    Scenarios.fig10_prelude;
  Format.printf "%a@." Network.pp_state net
