(* Quickstart: the library in five minutes.

   Builds the N=4, k=3 WDM network of Fig. 1, shows what each multicast
   model allows (Fig. 2), computes exact multicast capacities
   (Lemmas 1-3), then physically realizes a multicast assignment on the
   MAW crossbar fabric of Fig. 7 and prints what every receiver saw.

   Run with: dune exec examples/quickstart.exe *)

open Wdm_core

let ep port wl = Endpoint.make ~port ~wl

let () =
  let spec = Network_spec.make_exn ~n:4 ~k:3 in
  print_endline "--- Fig. 1: the network ---";
  print_endline (Network_spec.describe spec);

  (* One multicast connection per model flavour (Fig. 2). *)
  print_endline "\n--- Fig. 2: what each model allows ---";
  let same_wl = Connection.make_exn ~source:(ep 1 2) ~destinations:[ ep 2 2; ep 3 2 ] in
  let same_dest_wl = Connection.make_exn ~source:(ep 1 1) ~destinations:[ ep 2 3; ep 3 3 ] in
  let any_wl = Connection.make_exn ~source:(ep 1 1) ~destinations:[ ep 2 1; ep 3 2; ep 4 3 ] in
  List.iter
    (fun (name, conn) ->
      Format.printf "%-32s" (Format.asprintf "%s: %a" name Connection.pp conn);
      List.iter
        (fun m ->
          Format.printf "  %a:%s" Model.pp m
            (if Model.allows m conn then "yes" else "no "))
        Model.all;
      Format.print_newline ())
    [ ("same wavelength", same_wl); ("same dest wavelength", same_dest_wl);
      ("any wavelength", any_wl) ];

  (* Exact capacities. *)
  print_endline "\n--- Lemmas 1-3: multicast capacity of this network ---";
  List.iter
    (fun m ->
      Format.printf "%a: %a full-multicast-assignments, %a any\n" Model.pp m
        Wdm_bignum.Nat.pp_approx
        (Capacity.full m ~n:4 ~k:3)
        Wdm_bignum.Nat.pp_approx
        (Capacity.any m ~n:4 ~k:3))
    Model.all;

  (* Physically realize an assignment on the Fig. 7 fabric. *)
  print_endline "\n--- Fig. 7: realizing an assignment on the MAW crossbar ---";
  let fabric = Wdm_crossbar.Fabric.create ~model:Model.MAW spec in
  Printf.printf "built fabric: %d crosspoints, %d converters\n"
    (Wdm_crossbar.Fabric.crosspoints fabric)
    (Wdm_crossbar.Fabric.converters fabric);
  let assignment =
    Assignment.make
      [
        (* node 1 multicasts a video stream to three receivers *)
        Connection.make_exn ~source:(ep 1 1)
          ~destinations:[ ep 2 1; ep 3 2; ep 4 1 ];
        (* node 2 sends a second stream - node 3 receives BOTH at once,
           on different wavelengths: the WDM multicast advantage *)
        Connection.make_exn ~source:(ep 2 2) ~destinations:[ ep 3 1; ep 1 2 ];
        (* and a unicast *)
        Connection.unicast ~source:(ep 4 3) ~destination:(ep 2 3);
      ]
  in
  match Wdm_crossbar.Fabric.realize fabric assignment with
  | Error f ->
    Format.printf "failed: %a\n" Wdm_crossbar.Delivery.pp_failure f;
    exit 1
  | Ok outcome ->
    List.iter
      (fun (sink, signals) ->
        Format.printf "%s received: %a\n" sink
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
             Wdm_optics.Signal.pp)
          signals)
      outcome.Wdm_optics.Circuit.deliveries;
    (match Wdm_crossbar.Delivery.min_power_db outcome with
    | Some p -> Printf.printf "worst delivered power: %.2f dB\n" p
    | None -> ());
    print_endline "\nquickstart OK"
