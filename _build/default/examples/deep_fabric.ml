(* A 5-stage recursive fabric, end to end.

   The paper notes a network "can have any odd number of stages and be
   built in a recursive fashion".  This example designs a 5-stage N=27
   network (every level at its own Theorem-1 minimum), routes live
   traffic through it, realizes the surviving sessions on the actual
   optical circuit, and shows the price of depth: the power budget
   worsens with every extra stage of splitters and gates.

   Run with: dune exec examples/deep_fabric.exe *)

open Wdm_core
open Wdm_multistage

let () =
  let design stages big_n =
    match Recursive.design ~stages ~big_n ~k:2 ~output_model:Model.MSW with
    | Ok d -> d
    | Error e -> failwith e
  in
  (* cost of depth at fixed N = 4096 *)
  print_endline "crosspoints at N=4096, k=2 (MSW):";
  List.iter
    (fun stages ->
      let d = design stages 4096 in
      Printf.printf "  %d stages: %9d crosspoints (m per level: %s)\n" stages
        (Recursive.crosspoints d)
        (String.concat ","
           (List.map string_of_int (Recursive.middle_modules_per_level d))))
    [ 3; 5; 7 ];

  (* now run a 5-stage N=27 network for real *)
  let d = design 5 27 in
  Format.printf "\nbuilding and routing: %a\n" Recursive.pp d;
  let net = Rnetwork.create ~construction:Network.Msw_dominant d in
  let sut =
    {
      Wdm_traffic.Churn.connect =
        (fun c ->
          match Rnetwork.connect net c with
          | Ok route -> Ok route.Rnetwork.base.Network.id
          | Error e -> Error e);
      disconnect = (fun id -> ignore (Rnetwork.disconnect net id));
    }
  in
  let stats =
    Wdm_traffic.Churn.run (Random.State.make [| 99 |])
      ~spec:(Topology.spec (Rnetwork.topology net))
      ~model:Model.MSW
      ~fanout:(Wdm_traffic.Fanout.Zipf { max = 27; s = 1.2 })
      ~steps:3000 ~teardown_bias:0.35 sut
  in
  Format.printf "churn: %a\n" Wdm_traffic.Churn.pp_stats stats;
  assert (stats.Wdm_traffic.Churn.blocked = 0);

  (* realize the live sessions optically on the 5-stage circuit *)
  let phys = Physical_recursive.create ~construction:Network.Msw_dominant d in
  let routes = Rnetwork.active_routes net in
  Printf.printf "realizing %d live sessions on the %d-stage circuit (%d gates)...\n"
    (List.length routes)
    (Physical_recursive.stages phys)
    (Physical_recursive.crosspoints phys);
  (match Physical_recursive.realize phys routes with
  | Ok outcome ->
    (match Wdm_crossbar.Delivery.min_power_db outcome with
    | Some p -> Printf.printf "worst delivered power (5 stages): %.1f dB\n" p
    | None -> ());
    (match Wdm_crossbar.Delivery.max_gates_passed outcome with
    | Some g -> Printf.printf "crosspoints per path: %d (one per stage)\n" g
    | None -> ())
  | Error f ->
    Format.printf "failed: %a\n" Wdm_crossbar.Delivery.pp_failure f;
    exit 1);

  (* the 3-stage comparison point at a comparable size *)
  let d3 = design 3 25 in
  let net3 = Rnetwork.create ~construction:Network.Msw_dominant d3 in
  let c =
    Connection.make_exn ~source:(Endpoint.make ~port:1 ~wl:1)
      ~destinations:(List.init 25 (fun p -> Endpoint.make ~port:(p + 1) ~wl:1))
  in
  let phys3 = Physical_recursive.create ~construction:Network.Msw_dominant d3 in
  (match Rnetwork.connect net3 c with
  | Ok _ -> ()
  | Error e -> failwith (Format.asprintf "%a" Network.pp_error e));
  match Physical_recursive.realize phys3 (Rnetwork.active_routes net3) with
  | Ok outcome ->
    (match Wdm_crossbar.Delivery.min_power_db outcome with
    | Some p ->
      Printf.printf
        "broadcast on a 3-stage N=25 fabric for comparison: %.1f dB\n\
         -> every extra stage pair costs splitters, gates and combiners;\n\
         \   the paper's log-depth trade-off is a real power trade-off.\n"
        p
    | None -> ())
  | Error f ->
    Format.printf "failed: %a\n" Wdm_crossbar.Delivery.pp_failure f;
    exit 1
