(* Video-on-demand over a nonblocking three-stage WDM network.

   A VoD head-end with N = 16 ports (n = r = 4, k = 2) serves movie
   multicast groups that subscribers join and leave continuously.  The
   network uses the paper's MSW-dominant construction with the minimal
   Theorem-1 middle-stage count, so no join request that respects the
   endpoint rules is ever refused; we drive thousands of join/leave
   events to demonstrate it and then realize the final state optically.

   Run with: dune exec examples/video_on_demand.exe *)

open Wdm_core
open Wdm_multistage

let n = 4
and r = 4
and k = 2

let () =
  let eval = Conditions.msw_dominant ~n ~r in
  Printf.printf
    "designing head-end: N=%d, k=%d; Theorem 1 gives m_min=%d (optimal x=%d)\n"
    (n * r) k eval.Conditions.m_min eval.Conditions.x;
  let topo = Topology.make_exn ~n ~m:eval.Conditions.m_min ~r ~k in
  let output_model = Model.MSW in
  let net = Network.create ~construction:Network.Msw_dominant ~output_model topo in

  (* churn: movie sessions come and go; fanouts are Zipf (a few hits,
     many niche titles) *)
  let rng = Random.State.make [| 2000 |] in
  let sut =
    {
      Wdm_traffic.Churn.connect =
        (fun c ->
          match Network.connect net c with
          | Ok route -> Ok route.Network.id
          | Error e -> Error e);
      disconnect = (fun id -> ignore (Network.disconnect net id));
    }
  in
  let stats =
    Wdm_traffic.Churn.run rng ~spec:(Topology.spec topo) ~model:output_model
      ~fanout:(Wdm_traffic.Fanout.Zipf { max = n * r; s = 1.1 })
      ~steps:5000 ~teardown_bias:0.35 sut
  in
  Format.printf "after 5000 events: %a\n" Wdm_traffic.Churn.pp_stats stats;
  assert (stats.Wdm_traffic.Churn.blocked = 0);
  Printf.printf "zero blocking, as Theorem 1 guarantees.\n\n";

  (* realize the surviving sessions on the physical fabric *)
  let routes = Network.active_routes net in
  Printf.printf "%d live movie sessions; realizing them optically...\n"
    (List.length routes);
  let phys =
    Physical.create ~construction:Network.Msw_dominant ~output_model topo
  in
  (match Physical.realize phys routes with
  | Ok outcome ->
    Printf.printf "optical delivery verified at %d subscriber endpoints\n"
      (List.fold_left
         (fun acc (_, signals) -> acc + List.length signals)
         0 outcome.Wdm_optics.Circuit.deliveries);
    (match Wdm_crossbar.Delivery.min_power_db outcome with
    | Some p -> Printf.printf "worst-case power budget: %.2f dB\n" p
    | None -> ())
  | Error f ->
    Format.printf "optical realization failed: %a\n"
      Wdm_crossbar.Delivery.pp_failure f;
    exit 1);
  Printf.printf "head-end hardware: %d crosspoints, %d converters\n"
    (Physical.crosspoints phys) (Physical.converters phys);
  let cb = Wdm_core.Cost.crossbar_crosspoints output_model ~n:(n * r) ~k in
  Printf.printf "(a flat crossbar would need %d crosspoints)\n" cb
