(* Network designer: pick the cheapest nonblocking WDM multicast switch.

   Given target dimensions (N ports, k wavelengths) and a multicast
   model, compares the crossbar design of Section 2 against the
   MSW-dominant three-stage design of Section 3 and prints a bill of
   materials for the winner — the cost-performance trade-off workflow
   the paper's comparison tables support.

   Run with: dune exec examples/network_designer.exe -- [N] [k] [MODEL]
   (defaults: 64 4 MAW) *)

open Wdm_core
open Wdm_multistage

let usage () =
  prerr_endline "usage: network_designer [N] [k] [MSW|MSDW|MAW]";
  exit 2

let () =
  let argv = Sys.argv in
  let big_n = if Array.length argv > 1 then int_of_string argv.(1) else 64 in
  let k = if Array.length argv > 2 then int_of_string argv.(2) else 4 in
  let model =
    if Array.length argv > 3 then
      match Model.of_string argv.(3) with Ok m -> m | Error _ -> usage ()
    else Model.MAW
  in
  if big_n < 1 || k < 1 then usage ();

  Format.printf "Designing a nonblocking %dx%d k=%d WDM multicast switch (%a)\n\n"
    big_n big_n k Model.pp model;

  Format.printf "Capacity under %a: %a full / %a any multicast assignments\n\n"
    Model.pp model Wdm_bignum.Nat.pp_approx
    (Capacity.full model ~n:big_n ~k)
    Wdm_bignum.Nat.pp_approx
    (Capacity.any model ~n:big_n ~k);

  (* Option A: crossbar *)
  let cb = Wdm_core.Cost.summarize model ~n:big_n ~k in
  Format.printf "Option A - crossbar (Section 2):\n  %a\n\n" Wdm_core.Cost.pp_summary cb;

  (* Option B: three-stage MSW-dominant, if N is a perfect square *)
  match
    Cost.recommended ~construction:Network.Msw_dominant ~output_model:model
      ~big_n ~k
  with
  | Error e ->
    Format.printf "Option B - three-stage: not applicable (%s)\n" e;
    Format.printf "\nRecommendation: crossbar.\n"
  | Ok (topo, eval, b) ->
    Format.printf
      "Option B - three-stage MSW-dominant (Section 3):\n\
      \  topology: %a\n\
      \  Theorem 1: m > %.2f at x=%d -> m = %d\n\
      \  %a\n\n"
      Topology.pp topo eval.Conditions.bound eval.Conditions.x
      eval.Conditions.m_min Cost.pp_breakdown b;
    let winner_is_ms = b.Cost.total_crosspoints < cb.Wdm_core.Cost.crosspoints in
    Format.printf "Recommendation: %s (%d vs %d crosspoints%s)\n"
      (if winner_is_ms then "three-stage" else "crossbar")
      (min b.Cost.total_crosspoints cb.Wdm_core.Cost.crosspoints)
      (max b.Cost.total_crosspoints cb.Wdm_core.Cost.crosspoints)
      (if model = Model.MSDW then
         "; note Section 2.4: prefer MAW over MSDW - same cost, more capacity"
       else "");
    if winner_is_ms then begin
      Format.printf "\nBill of materials (three-stage):\n";
      Format.printf "  input stage : %d modules %dx%d\n" topo.Topology.r
        topo.Topology.n topo.Topology.m;
      Format.printf "  middle stage: %d modules %dx%d\n" topo.Topology.m
        topo.Topology.r topo.Topology.r;
      Format.printf "  output stage: %d modules %dx%d (%a)\n" topo.Topology.r
        topo.Topology.m topo.Topology.n Model.pp model;
      Format.printf "  SOA gates   : %d\n" b.Cost.total_crosspoints;
      Format.printf "  converters  : %d\n" b.Cost.total_converters
    end
