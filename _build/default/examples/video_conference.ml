(* Video conferencing on a WDM multicast crossbar.

   The paper motivates WDM multicast with bandwidth-hungry group
   applications.  Here eight sites run several simultaneous video
   conferences on one 8x8, k=4 MAW crossbar: each participant multicasts
   its own camera stream to the other members of its conference, so a
   site participating in two conferences receives several streams at
   once on different wavelengths — impossible in a single-wavelength
   electronic switch, where each destination receives at most one
   message at a time.

   Run with: dune exec examples/video_conference.exe *)

open Wdm_core

let n = 8
let k = 4

(* conference id -> member sites (1-based ports).  Sites 2 and 3 each
   join two conferences; with k = 4 receiver wavelengths a site can
   absorb at most four concurrent streams, so memberships are sized to
   fit. *)
let conferences = [ ("standup", [ 1; 2; 3 ]); ("board", [ 2; 4; 5 ]); ("ops", [ 3; 7; 8 ]) ]

let () =
  let spec = Network_spec.make_exn ~n ~k in
  let fabric = Wdm_crossbar.Fabric.create ~model:Model.MAW spec in

  (* Allocate endpoints: walk each conference, give every member one
     transmitter wavelength for its outgoing stream and one receiver
     wavelength per incoming stream.  A simple first-free allocator per
     port suffices here. *)
  let next_tx = Array.make (n + 1) 1 and next_rx = Array.make (n + 1) 1 in
  let alloc arr port =
    let wl = arr.(port) in
    if wl > k then failwith (Printf.sprintf "port %d out of wavelengths" port);
    arr.(port) <- wl + 1;
    Endpoint.make ~port ~wl
  in
  let connections =
    List.concat_map
      (fun (conf, members) ->
        List.map
          (fun speaker ->
            let listeners = List.filter (fun m -> m <> speaker) members in
            let source = alloc next_tx speaker in
            let destinations = List.map (alloc next_rx) listeners in
            Printf.printf "[%s] site %d streams %s -> %s\n" conf speaker
              (Endpoint.to_string source)
              (String.concat ", " (List.map Endpoint.to_string destinations));
            Connection.make_exn ~source ~destinations)
          members)
      conferences
  in
  let assignment = Assignment.make connections in
  Printf.printf "\n%d simultaneous multicast connections, %d streams delivered\n"
    (Assignment.size assignment)
    (Assignment.total_fanout assignment);

  match Wdm_crossbar.Fabric.realize fabric assignment with
  | Error f ->
    Format.printf "conference setup failed: %a\n" Wdm_crossbar.Delivery.pp_failure f;
    exit 1
  | Ok outcome ->
    print_endline "all conferences up - per-site receive load:";
    List.iter
      (fun (sink, signals) ->
        Printf.printf "  %s: %d concurrent streams\n" sink (List.length signals))
      (List.sort compare outcome.Wdm_optics.Circuit.deliveries);
    (* Sites 2 and 3 are each in two conferences: they must be
       receiving from both at once. *)
    let streams_at site =
      match
        List.assoc_opt (Wdm_crossbar.Labels.output_port site)
          outcome.Wdm_optics.Circuit.deliveries
      with
      | Some s -> List.length s
      | None -> 0
    in
    List.iter
      (fun site ->
        assert (streams_at site = 4)
        (* two from each of its two conferences *))
      [ 2; 3 ];
    Printf.printf
      "\nWDM advantage confirmed: the two-conference sites receive %d and %d \
       streams concurrently.\n"
      (streams_at 2) (streams_at 3)
