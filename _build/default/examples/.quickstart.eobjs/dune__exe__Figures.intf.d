examples/figures.mli:
