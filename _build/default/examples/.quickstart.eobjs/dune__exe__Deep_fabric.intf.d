examples/deep_fabric.mli:
