examples/deep_fabric.ml: Connection Endpoint Format List Model Network Physical_recursive Printf Random Recursive Rnetwork String Topology Wdm_core Wdm_crossbar Wdm_multistage Wdm_traffic
