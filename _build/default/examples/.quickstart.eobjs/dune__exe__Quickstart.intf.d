examples/quickstart.mli:
