examples/video_on_demand.ml: Conditions Format List Model Network Physical Printf Random Topology Wdm_core Wdm_crossbar Wdm_multistage Wdm_optics Wdm_traffic
