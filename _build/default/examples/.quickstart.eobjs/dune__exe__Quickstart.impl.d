examples/quickstart.ml: Assignment Capacity Connection Endpoint Format List Model Network_spec Printf Wdm_bignum Wdm_core Wdm_crossbar Wdm_optics
