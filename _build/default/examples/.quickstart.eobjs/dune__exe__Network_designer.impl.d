examples/network_designer.ml: Array Capacity Conditions Cost Format Model Network Sys Topology Wdm_bignum Wdm_core Wdm_multistage
