examples/video_conference.ml: Array Assignment Connection Endpoint Format List Model Network_spec Printf String Wdm_core Wdm_crossbar Wdm_optics
