examples/blocking_demo.ml: Connection Format List Network Scenarios Topology Wdm_core Wdm_multistage
