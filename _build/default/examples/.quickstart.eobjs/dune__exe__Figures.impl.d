examples/figures.ml: Format List Model Network Network_spec Printf Result Scenarios Topology Wdm_analysis Wdm_core Wdm_crossbar Wdm_multistage
