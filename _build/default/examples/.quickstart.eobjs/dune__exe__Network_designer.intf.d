examples/network_designer.mli:
