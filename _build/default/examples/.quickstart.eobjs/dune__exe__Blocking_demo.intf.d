examples/blocking_demo.mli:
