(* Fig. 10 walkthrough: why the MAW-dominant construction exists.

   Plays the paper's blocking scenario step by step on two networks with
   identical topology (n = r = k = 2, m = 2): one with MSW input/middle
   modules, one with MAW.  The same three connections are admitted by
   both; the fourth is blocked only where the middle stage cannot
   convert wavelengths.

   Run with: dune exec examples/blocking_demo.exe *)

open Wdm_core
open Wdm_multistage

let () =
  Format.printf "topology: %a\n\n" Topology.pp Scenarios.fig10_topology;
  Format.printf "prelude connections (all on wavelength l1):\n";
  List.iteri
    (fun i c -> Format.printf "  %d. %a\n" (i + 1) Connection.pp c)
    Scenarios.fig10_prelude;
  Format.printf "probe: %a  (destination on l2 - needs conversion)\n\n"
    Connection.pp Scenarios.fig10_probe;

  List.iter
    (fun (construction, name, modules) ->
      Format.printf "--- %s construction (first two stages: %s modules) ---\n"
        name modules;
      let outcome = Scenarios.fig10 construction in
      Format.printf "  prelude: %d/3 admitted\n" outcome.Scenarios.admitted;
      (match outcome.Scenarios.probe_result with
      | Ok route -> Format.printf "  probe: ROUTED - %a\n" Network.pp_route route
      | Error e -> Format.printf "  probe: BLOCKED - %a\n" Network.pp_error e);
      Format.print_newline ())
    [
      (Network.Msw_dominant, "MSW-dominant", "MSW");
      (Network.Maw_dominant, "MAW-dominant", "MAW");
    ];

  print_endline
    "Under MSW middles the probe's source wavelength l1 is pinned through\n\
     the first two stages, and the prelude exhausted l1 on every link out\n\
     of input module 1.  MAW middles may retune hop by hop, so the same\n\
     request rides a free wavelength instead - exactly the advantage the\n\
     paper illustrates in Fig. 10.  (Theorems 1 and 2 then show how large\n\
     m must be so that, with the right construction, this never happens.)"
