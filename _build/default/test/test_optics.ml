(* Tests for the optical circuit simulator: component semantics, error
   detection, topological propagation and loss accounting. *)

module C = Wdm_optics.Circuit
module S = Wdm_optics.Signal
module L = Wdm_optics.Loss_model

let signal ?(wl = 1) origin = S.inject ~origin ~wl

let test_direct_wire () =
  let c = C.create ~loss:L.lossless () in
  let src = C.add_source c "a" in
  let sink = C.add_sink c "z" in
  C.connect c src 0 sink 0;
  C.inject c src [ signal "a1" ];
  let { C.deliveries; errors } = C.propagate c in
  Alcotest.(check int) "no errors" 0 (List.length errors);
  match deliveries with
  | [ ("z", [ s ]) ] ->
    Alcotest.(check string) "origin" "a1" s.S.origin;
    Alcotest.(check (float 1e-9)) "no loss" 0. s.S.power_db
  | _ -> Alcotest.fail "expected one delivery"

let test_gate_blocks () =
  let c = C.create () in
  let src = C.add_source c "a" in
  let g = C.add_gate c in
  let sink = C.add_sink c "z" in
  C.connect c src 0 g 0;
  C.connect c g 0 sink 0;
  C.inject c src [ signal "a1" ];
  (* gate off: light absorbed *)
  let { C.deliveries; errors } = C.propagate c in
  Alcotest.(check int) "no errors" 0 (List.length errors);
  Alcotest.(check int) "nothing delivered" 0 (List.length deliveries);
  (* gate on: light passes, counted *)
  C.set_gate c g true;
  let { C.deliveries; _ } = C.propagate c in
  match deliveries with
  | [ ("z", [ s ]) ] -> Alcotest.(check int) "gate counted" 1 s.S.gates_passed
  | _ -> Alcotest.fail "expected delivery through on gate"

let test_splitter_broadcast () =
  let c = C.create ~loss:L.lossless () in
  let src = C.add_source c "a" in
  let spl = C.add_splitter c 4 in
  C.connect c src 0 spl 0;
  let sinks = List.init 4 (fun i -> C.add_sink c (Printf.sprintf "z%d" i)) in
  List.iteri (fun i s -> C.connect c spl i s 0) sinks;
  C.inject c src [ signal "a1" ];
  let { C.deliveries; errors } = C.propagate c in
  Alcotest.(check int) "no errors" 0 (List.length errors);
  Alcotest.(check int) "four copies" 4 (List.length deliveries);
  List.iter
    (fun (_, signals) ->
      match signals with
      | [ s ] ->
        (* ideal 1x4 split = -6.02 dB *)
        Alcotest.(check (float 0.01)) "quarter power" (-6.0206) s.S.power_db
      | _ -> Alcotest.fail "one signal per sink")
    deliveries

let test_combiner_collision () =
  let c = C.create () in
  let a = C.add_source c "a" and b = C.add_source c "b" in
  let comb = C.add_combiner c 2 in
  let sink = C.add_sink c "z" in
  C.connect c a 0 comb 0;
  C.connect c b 0 comb 1;
  C.connect c comb 0 sink 0;
  C.inject c a [ signal ~wl:1 "a1" ];
  C.inject c b [ signal ~wl:2 "b1" ];
  (* even distinct wavelengths collide in a combiner: it is not a mux *)
  let { C.errors; _ } = C.propagate c in
  match errors with
  | [ C.Combiner_collision { origins; _ } ] ->
    Alcotest.(check (list string)) "both named" [ "a1"; "b1" ]
      (List.sort String.compare origins)
  | _ -> Alcotest.fail "expected combiner collision"

let test_combiner_single_ok () =
  let c = C.create () in
  let a = C.add_source c "a" and b = C.add_source c "b" in
  let comb = C.add_combiner c 2 in
  let sink = C.add_sink c "z" in
  C.connect c a 0 comb 0;
  C.connect c b 0 comb 1;
  C.connect c comb 0 sink 0;
  C.inject c a [ signal "a1" ];
  (* b silent *)
  let { C.deliveries; errors } = C.propagate c in
  Alcotest.(check int) "no errors" 0 (List.length errors);
  Alcotest.(check int) "delivered" 1 (List.length deliveries)

let test_mux_demux () =
  let c = C.create ~loss:L.lossless () in
  let src = C.add_source c "a" in
  let dmx = C.add_demux c 3 in
  let mux = C.add_mux c 3 in
  let sink = C.add_sink c "z" in
  C.connect c src 0 dmx 0;
  for w = 0 to 2 do
    C.connect c dmx w mux w
  done;
  C.connect c mux 0 sink 0;
  C.inject c src [ signal ~wl:1 "s1"; signal ~wl:2 "s2"; signal ~wl:3 "s3" ];
  let { C.deliveries; errors } = C.propagate c in
  Alcotest.(check int) "no errors" 0 (List.length errors);
  match deliveries with
  | [ ("z", signals) ] -> Alcotest.(check int) "all three" 3 (List.length signals)
  | _ -> Alcotest.fail "expected one sink with three signals"

let test_demux_out_of_range () =
  let c = C.create () in
  let src = C.add_source c "a" in
  let dmx = C.add_demux c 2 in
  C.connect c src 0 dmx 0;
  C.inject c src [ signal ~wl:5 "hot" ];
  let { C.errors; _ } = C.propagate c in
  match errors with
  | [ C.Demux_out_of_range { wl = 5; _ } ] -> ()
  | _ -> Alcotest.fail "expected demux range error"

let test_wavelength_clash () =
  let c = C.create () in
  let a = C.add_source c "a" in
  (* two signals on the same wavelength from one source *)
  C.inject c a [ signal ~wl:1 "x"; signal ~wl:1 "y" ];
  let { C.errors; _ } = C.propagate c in
  match errors with
  | [ C.Wavelength_clash { wl = 1; origins; _ } ] ->
    Alcotest.(check int) "two origins" 2 (List.length origins)
  | _ -> Alcotest.fail "expected wavelength clash"

let test_converter () =
  let c = C.create ~loss:L.lossless () in
  let src = C.add_source c "a" in
  let conv = C.add_converter c in
  let sink = C.add_sink c "z" in
  C.connect c src 0 conv 0;
  C.connect c conv 0 sink 0;
  C.inject c src [ signal ~wl:1 "a1" ];
  C.set_converter c conv (Some 4);
  let { C.deliveries; _ } = C.propagate c in
  (match deliveries with
  | [ (_, [ s ]) ] -> Alcotest.(check int) "retuned" 4 s.S.wl
  | _ -> Alcotest.fail "expected delivery");
  (* pass-through by default after reset *)
  C.reset_configuration c;
  C.inject c src [ signal ~wl:1 "a1" ];
  let { C.deliveries; _ } = C.propagate c in
  match deliveries with
  | [ (_, [ s ]) ] -> Alcotest.(check int) "unchanged" 1 s.S.wl
  | _ -> Alcotest.fail "expected delivery"

let test_dangling_output_drops () =
  let c = C.create () in
  let src = C.add_source c "a" in
  let spl = C.add_splitter c 2 in
  let sink = C.add_sink c "z" in
  C.connect c src 0 spl 0;
  C.connect c spl 0 sink 0;
  (* splitter slot 1 left dangling *)
  C.inject c src [ signal "a1" ];
  let { C.deliveries; errors } = C.propagate c in
  Alcotest.(check int) "no errors" 0 (List.length errors);
  Alcotest.(check int) "one delivery" 1 (List.length deliveries)

let test_connect_validation () =
  let c = C.create () in
  let src = C.add_source c "a" in
  let g = C.add_gate c in
  C.connect c src 0 g 0;
  Alcotest.check_raises "double output"
    (Invalid_argument "Circuit.connect: output slot already wired") (fun () ->
      C.connect c src 0 g 0);
  let src2 = C.add_source c "b" in
  Alcotest.check_raises "double input"
    (Invalid_argument "Circuit.connect: input slot already wired") (fun () ->
      C.connect c src2 0 g 0);
  Alcotest.check_raises "bad slot" (Invalid_argument "Circuit.connect: bad output slot")
    (fun () -> C.connect c src2 1 g 0)

let test_counts () =
  let c = C.create () in
  ignore (C.add_source c "a");
  ignore (C.add_gate c);
  ignore (C.add_gate c);
  ignore (C.add_converter c);
  ignore (C.add_splitter c 3);
  ignore (C.add_combiner c 3);
  Alcotest.(check int) "gates" 2 (C.num_gates c);
  Alcotest.(check int) "converters" 1 (C.num_converters c);
  Alcotest.(check int) "splitters" 1 (C.num_splitters c);
  Alcotest.(check int) "combiners" 1 (C.num_combiners c);
  Alcotest.(check int) "size" 6 (C.size c)

let test_grows_past_initial_capacity () =
  let c = C.create () in
  let nodes = List.init 100 (fun i -> C.add_source c (string_of_int i)) in
  Alcotest.(check int) "100 nodes" 100 (C.size c);
  List.iteri
    (fun i id ->
      match C.kind_of c id with
      | C.Source s -> Alcotest.(check string) "label kept" (string_of_int i) s
      | _ -> Alcotest.fail "expected source")
    nodes

let test_loss_model () =
  Alcotest.(check (float 0.01)) "1x8 split" 9.53
    (L.splitting_loss L.default ~fanout:8);
  Alcotest.(check (float 0.01)) "fanout 1" L.default.L.splitter_excess_db
    (L.splitting_loss L.default ~fanout:1);
  Alcotest.(check (float 0.01)) "lossless" 0.
    (L.splitting_loss L.lossless ~fanout:8 -. (10. *. Float.log10 8.))

let test_gate_leakage () =
  (* With finite extinction an off gate leaks attenuated crosstalk. *)
  let c = C.create ~loss:(L.leaky ~extinction_db:30. ()) () in
  let src = C.add_source c "a" in
  let g = C.add_gate c in
  let sink = C.add_sink c "z" in
  C.connect c src 0 g 0;
  C.connect c g 0 sink 0;
  C.inject c src [ signal "a1" ];
  let { C.deliveries; errors } = C.propagate c in
  Alcotest.(check int) "no errors" 0 (List.length errors);
  match deliveries with
  | [ ("z", [ s ]) ] ->
    Alcotest.(check bool) "marked leakage" true s.S.leakage;
    Alcotest.(check (float 0.01)) "attenuated by extinction + insertion" (-31.)
      s.S.power_db
  | _ -> Alcotest.fail "expected one leaked signal"

let test_leakage_exempt_from_collisions () =
  (* A payload and a leakage signal meeting in a combiner is the normal
     crosstalk situation, not a collision. *)
  let c = C.create ~loss:(L.leaky ()) () in
  let a = C.add_source c "a" and b = C.add_source c "b" in
  let ga = C.add_gate c and gb = C.add_gate c in
  let comb = C.add_combiner c 2 in
  let sink = C.add_sink c "z" in
  C.connect c a 0 ga 0;
  C.connect c b 0 gb 0;
  C.connect c ga 0 comb 0;
  C.connect c gb 0 comb 1;
  C.connect c comb 0 sink 0;
  C.set_gate c ga true (* b's gate stays off: leaks *);
  C.inject c a [ signal ~wl:1 "a1" ];
  C.inject c b [ signal ~wl:1 "b1" ];
  let { C.deliveries; errors } = C.propagate c in
  Alcotest.(check int) "no collision error" 0 (List.length errors);
  match deliveries with
  | [ ("z", signals) ] ->
    Alcotest.(check int) "payload + leak delivered" 2 (List.length signals);
    Alcotest.(check int) "exactly one leak" 1
      (List.length (List.filter (fun s -> s.S.leakage) signals))
  | _ -> Alcotest.fail "expected both signals at the sink"

let test_ideal_gates_do_not_leak () =
  let c = C.create ~loss:L.default () in
  let src = C.add_source c "a" in
  let g = C.add_gate c in
  let sink = C.add_sink c "z" in
  C.connect c src 0 g 0;
  C.connect c g 0 sink 0;
  C.inject c src [ signal "a1" ];
  Alcotest.(check int) "dark sink" 0 (List.length (C.propagate c).C.deliveries)

(* Property: a chain of n on-gates delivers with gates_passed = n and
   power = -n * insertion loss. *)
let prop_gate_chain =
  QCheck.Test.make ~name:"gate chain accounting" ~count:50
    (QCheck.make (QCheck.Gen.int_range 1 30)) (fun n ->
      let c = C.create () in
      let src = C.add_source c "a" in
      let sink = C.add_sink c "z" in
      let rec chain prev i =
        if i = n then C.connect c prev 0 sink 0
        else begin
          let g = C.add_gate c in
          C.connect c prev 0 g 0;
          C.set_gate c g true;
          chain g (i + 1)
        end
      in
      let g0 = C.add_gate c in
      C.connect c src 0 g0 0;
      C.set_gate c g0 true;
      chain g0 1;
      C.inject c src [ signal "a1" ];
      match (C.propagate c).C.deliveries with
      | [ (_, [ s ]) ] ->
        s.S.gates_passed = n
        && Float.abs (s.S.power_db +. (float_of_int n *. L.default.L.gate_insertion_db))
           < 1e-9
      | _ -> false)

let () =
  Alcotest.run "wdm_optics"
    [
      ( "components",
        [
          Alcotest.test_case "direct wire" `Quick test_direct_wire;
          Alcotest.test_case "gate blocks/passes" `Quick test_gate_blocks;
          Alcotest.test_case "splitter broadcast" `Quick test_splitter_broadcast;
          Alcotest.test_case "combiner collision" `Quick test_combiner_collision;
          Alcotest.test_case "combiner single ok" `Quick test_combiner_single_ok;
          Alcotest.test_case "mux/demux" `Quick test_mux_demux;
          Alcotest.test_case "demux range" `Quick test_demux_out_of_range;
          Alcotest.test_case "wavelength clash" `Quick test_wavelength_clash;
          Alcotest.test_case "converter" `Quick test_converter;
          Alcotest.test_case "dangling output" `Quick test_dangling_output_drops;
        ] );
      ( "limited-range-conversion",
        [
          Alcotest.test_case "within range converts" `Quick (fun () ->
              let c = C.create ~loss:L.lossless () in
              let src = C.add_source c "a" in
              let conv = C.add_converter ~range:1 c in
              let sink = C.add_sink c "z" in
              C.connect c src 0 conv 0;
              C.connect c conv 0 sink 0;
              C.set_converter c conv (Some 2);
              C.inject c src [ signal ~wl:1 "a1" ];
              match (C.propagate c).C.deliveries with
              | [ (_, [ s ]) ] -> Alcotest.(check int) "shifted by 1" 2 s.S.wl
              | _ -> Alcotest.fail "expected delivery");
          Alcotest.test_case "beyond range errors" `Quick (fun () ->
              let c = C.create () in
              let src = C.add_source c "a" in
              let conv = C.add_converter ~range:1 c in
              let sink = C.add_sink c "z" in
              C.connect c src 0 conv 0;
              C.connect c conv 0 sink 0;
              C.set_converter c conv (Some 3);
              C.inject c src [ signal ~wl:1 "a1" ];
              let { C.deliveries; errors } = C.propagate c in
              Alcotest.(check int) "nothing delivered" 0 (List.length deliveries);
              match errors with
              | [ C.Conversion_out_of_range { from_wl = 1; to_wl = 3; range = 1; _ } ] -> ()
              | _ -> Alcotest.fail "expected conversion range error");
          Alcotest.test_case "negative range rejected" `Quick (fun () ->
              let c = C.create () in
              Alcotest.check_raises "negative"
                (Invalid_argument "Circuit.add_converter: negative range")
                (fun () -> ignore (C.add_converter ~range:(-1) c)));
        ] );
      ( "crosstalk-leakage",
        [
          Alcotest.test_case "off gate leaks" `Quick test_gate_leakage;
          Alcotest.test_case "leakage exempt from collisions" `Quick
            test_leakage_exempt_from_collisions;
          Alcotest.test_case "ideal gates absorb" `Quick test_ideal_gates_do_not_leak;
        ] );
      ( "construction",
        [
          Alcotest.test_case "to_dot" `Quick (fun () ->
              let c = C.create () in
              let src = C.add_source c "a" in
              let g = C.add_gate c in
              let sink = C.add_sink c "z" in
              C.connect c src 0 g 0;
              C.connect c g 0 sink 0;
              C.set_gate c g true;
              let dot = C.to_dot c in
              List.iter
                (fun needle ->
                  Alcotest.(check bool) needle true
                    (let nh = String.length dot and nn = String.length needle in
                     let rec go i =
                       if i + nn > nh then false
                       else if String.sub dot i nn = needle then true
                       else go (i + 1)
                     in
                     go 0))
                [ "digraph"; "gate ON"; "src a"; "sink z"; "n0 -> n1" ]);
          Alcotest.test_case "connect validation" `Quick test_connect_validation;
          Alcotest.test_case "component counts" `Quick test_counts;
          Alcotest.test_case "arena growth" `Quick test_grows_past_initial_capacity;
          Alcotest.test_case "loss model" `Quick test_loss_model;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_gate_chain ]);
    ]
