test/test_module_fabric.mli:
