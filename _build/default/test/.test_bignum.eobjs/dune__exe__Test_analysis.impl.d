test/test_analysis.ml: Alcotest Conditions Float Format Fun List Model Network Network_spec Printf String Wdm_analysis Wdm_core Wdm_multistage
