test/test_module_fabric.ml: Alcotest Array Format List Model Module_fabric Printf Wdm_core Wdm_crossbar Wdm_optics
