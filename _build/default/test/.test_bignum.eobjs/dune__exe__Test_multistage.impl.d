test/test_multistage.ml: Alcotest Array Conditions Cost Float Format List Multiset Network Printf QCheck QCheck_alcotest Recursive Result Stdlib Topology Wdm_core Wdm_multistage
