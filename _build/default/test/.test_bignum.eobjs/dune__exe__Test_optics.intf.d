test/test_optics.mli:
