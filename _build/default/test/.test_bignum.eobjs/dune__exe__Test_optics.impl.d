test/test_optics.ml: Alcotest Float List Printf QCheck QCheck_alcotest String Wdm_optics
