test/test_traffic.ml: Alcotest Array Assignment Churn Connection Endpoint Fanout Float Format Generator Hashtbl List Model Network_spec Printf QCheck QCheck_alcotest Random Wdm_core Wdm_traffic
