test/test_multistage.mli:
