test/test_bignum.ml: Alcotest Combinatorics Float Format Int List Nat QCheck QCheck_alcotest String Wdm_bignum
