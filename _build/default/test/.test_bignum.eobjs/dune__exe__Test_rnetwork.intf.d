test/test_rnetwork.mli:
