(* Tests for the workload generators: distribution sanity, model
   legality of everything generated, determinism from seeds, and the
   churn driver's bookkeeping. *)

open Wdm_core
open Wdm_traffic

let spec n k = Network_spec.make_exn ~n ~k
let rng seed = Random.State.make [| seed |]

(* --- fanout distributions ---------------------------------------------- *)

let test_fanout_fixed () =
  let r = rng 1 in
  for _ = 1 to 50 do
    Alcotest.(check int) "fixed" 3 (Fanout.sample r (Fanout.Fixed 3) ~max_available:10);
    Alcotest.(check int) "clamped" 4 (Fanout.sample r (Fanout.Fixed 9) ~max_available:4)
  done

let test_fanout_uniform_bounds () =
  let r = rng 2 in
  for _ = 1 to 500 do
    let f = Fanout.sample r (Fanout.Uniform (2, 5)) ~max_available:10 in
    Alcotest.(check bool) "in bounds" true (f >= 2 && f <= 5)
  done

let test_fanout_zipf_shape () =
  let r = rng 3 in
  let counts = Array.make 8 0 in
  for _ = 1 to 4000 do
    let f = Fanout.sample r (Fanout.Zipf { max = 8; s = 1.5 }) ~max_available:8 in
    counts.(f - 1) <- counts.(f - 1) + 1
  done;
  Alcotest.(check bool) "head heavier than tail" true (counts.(0) > counts.(7) * 4);
  Alcotest.(check bool) "tail occurs" true (counts.(7) > 0)

let test_fanout_broadcast () =
  let r = rng 4 in
  Alcotest.(check int) "broadcast" 7 (Fanout.sample r Fanout.Broadcast ~max_available:7)

let test_fanout_validation () =
  let r = rng 5 in
  Alcotest.check_raises "no room" (Invalid_argument "Fanout.sample: nothing available")
    (fun () -> ignore (Fanout.sample r (Fanout.Fixed 1) ~max_available:0))

(* --- connection / assignment generation -------------------------------- *)

let test_random_connection_legal () =
  let sp = spec 4 3 in
  List.iter
    (fun model ->
      let r = rng 10 in
      for _ = 1 to 200 do
        match
          Generator.random_connection r sp model
            ~fanout:(Fanout.Uniform (1, 4))
            ~free_sources:(Network_spec.inputs sp)
            ~free_dests:(Network_spec.outputs sp)
        with
        | None -> Alcotest.fail "expected a connection on an idle network"
        | Some c ->
          Alcotest.(check bool)
            (Format.asprintf "legal under %a" Model.pp model)
            true (Model.allows model c)
      done)
    Model.all

let test_random_connection_respects_free_sets () =
  let sp = spec 3 2 in
  let r = rng 11 in
  let free_sources = [ Endpoint.make ~port:2 ~wl:1 ] in
  let free_dests =
    [ Endpoint.make ~port:1 ~wl:1; Endpoint.make ~port:3 ~wl:1 ]
  in
  for _ = 1 to 100 do
    match
      Generator.random_connection r sp Model.MSW ~fanout:(Fanout.Uniform (1, 3))
        ~free_sources ~free_dests
    with
    | None -> Alcotest.fail "should find the available pattern"
    | Some c ->
      Alcotest.(check bool) "source from free set" true
        (Endpoint.equal c.Connection.source (List.hd free_sources));
      List.iter
        (fun d ->
          Alcotest.(check bool) "dest from free set" true
            (List.exists (Endpoint.equal d) free_dests))
        c.Connection.destinations
  done

let test_random_connection_msw_starvation () =
  (* Under MSW a source whose wavelength has no free destination cannot
     form a connection. *)
  let sp = spec 2 2 in
  let r = rng 12 in
  let free_sources = [ Endpoint.make ~port:1 ~wl:1 ] in
  let free_dests = [ Endpoint.make ~port:1 ~wl:2 ] in
  Alcotest.(check bool) "starved" true
    (Generator.random_connection r sp Model.MSW ~fanout:(Fanout.Fixed 1)
       ~free_sources ~free_dests
    = None)

let test_random_assignment_valid_and_loaded () =
  List.iter
    (fun model ->
      let sp = spec 5 3 in
      let r = rng 13 in
      let a =
        Generator.random_assignment r sp model ~fanout:(Fanout.Uniform (1, 4))
          ~load:0.6
      in
      (match Assignment.validate sp model a with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Format.asprintf "%a" Assignment.pp_error e));
      let used = List.length (Assignment.used_destinations a) in
      let total = Network_spec.num_endpoints sp in
      Alcotest.(check bool)
        (Format.asprintf "%a load near target (%d/%d)" Model.pp model used total)
        true
        (float_of_int used >= 0.4 *. float_of_int total))
    Model.all

let test_random_full_assignment () =
  List.iter
    (fun model ->
      List.iter
        (fun (n, k) ->
          let sp = spec n k in
          let r = rng (100 + n + k) in
          for _ = 1 to 20 do
            let a = Generator.random_full_assignment r sp model in
            (match Assignment.validate sp model a with
            | Ok () -> ()
            | Error e ->
              Alcotest.fail
                (Format.asprintf "%a n=%d k=%d: %a" Model.pp model n k
                   Assignment.pp_error e));
            Alcotest.(check bool)
              (Format.asprintf "full %a n=%d k=%d" Model.pp model n k)
              true (Assignment.is_full sp a)
          done)
        [ (2, 2); (3, 2); (4, 3); (5, 1) ])
    Model.all

let test_generator_determinism () =
  let sp = spec 4 2 in
  let gen seed =
    Generator.random_full_assignment (rng seed) sp Model.MAW
  in
  Alcotest.(check bool) "same seed, same assignment" true
    (Assignment.equal (gen 77) (gen 77));
  Alcotest.(check bool) "different seeds differ" false
    (Assignment.equal (gen 77) (gen 78))

(* --- churn driver ------------------------------------------------------- *)

let test_churn_against_ideal_switch () =
  (* An ideal (always-accepting) switch: the driver must never generate
     a request that double-books endpoints, so acceptance bookkeeping
     must balance exactly. *)
  let sp = spec 4 2 in
  let active = Hashtbl.create 16 in
  let next = ref 0 in
  let busy_dests = ref [] in
  let sut =
    {
      Churn.connect =
        (fun c ->
          (* verify no double-booking *)
          List.iter
            (fun d ->
              if List.exists (Endpoint.equal d) !busy_dests then
                Alcotest.fail "churn double-booked a destination")
            c.Connection.destinations;
          busy_dests := c.Connection.destinations @ !busy_dests;
          let id = !next in
          incr next;
          Hashtbl.add active id c;
          Ok id);
      disconnect =
        (fun id ->
          let c = Hashtbl.find active id in
          Hashtbl.remove active id;
          busy_dests :=
            List.filter
              (fun d ->
                not (List.exists (Endpoint.equal d) c.Connection.destinations))
              !busy_dests);
    }
  in
  let stats =
    Churn.run (rng 21) ~spec:sp ~model:Model.MAW
      ~fanout:(Fanout.Uniform (1, 3)) ~steps:500 ~teardown_bias:0.4 sut
  in
  Alcotest.(check int) "ideal switch never blocks" 0 stats.Churn.blocked;
  Alcotest.(check int) "accepted = attempts" stats.Churn.attempts stats.Churn.accepted;
  Alcotest.(check bool) "teardowns happened" true (stats.Churn.torn_down > 50);
  Alcotest.(check bool) "peak tracked" true (stats.Churn.peak_active > 0)

let test_churn_counts_blocking () =
  (* A switch that rejects every third request. *)
  let n = ref 0 in
  let sut =
    {
      Churn.connect =
        (fun _ ->
          incr n;
          if !n mod 3 = 0 then Error "no" else Ok !n);
      disconnect = ignore;
    }
  in
  let sp = spec 3 2 in
  let stats =
    Churn.run (rng 22) ~spec:sp ~model:Model.MAW ~fanout:(Fanout.Fixed 1)
      ~steps:60 ~teardown_bias:0.0 sut
  in
  Alcotest.(check bool) "blocked counted" true (stats.Churn.blocked > 0);
  Alcotest.(check int) "balance" stats.Churn.attempts
    (stats.Churn.accepted + stats.Churn.blocked)

let test_churn_validation () =
  let sut = { Churn.connect = (fun _ -> Ok 0); disconnect = ignore } in
  Alcotest.check_raises "bias range"
    (Invalid_argument "Churn.run: teardown_bias must be in [0, 1]") (fun () ->
      ignore
        (Churn.run (rng 23) ~spec:(spec 2 1) ~model:Model.MSW
           ~fanout:(Fanout.Fixed 1) ~steps:1 ~teardown_bias:1.5 sut))

(* --- continuous-time churn ------------------------------------------------ *)

let ideal_sut () =
  let active = Hashtbl.create 16 in
  let next = ref 0 in
  {
    Churn.connect =
      (fun c ->
        let id = !next in
        incr next;
        Hashtbl.add active id c;
        Ok id);
    disconnect = (fun id -> Hashtbl.remove active id);
  }

let test_timed_littles_law () =
  (* On an unconstrained switch at light load, mean active connections
     must approach the offered load (Little's law). *)
  let sp = spec 16 4 in
  let stats =
    Churn.run_timed (rng 5) ~spec:sp ~model:Model.MAW ~fanout:(Fanout.Fixed 1)
      ~arrival_rate:2.0 ~mean_holding:1.5 ~horizon:400. (ideal_sut ())
  in
  Alcotest.(check (float 1e-9)) "offered" 3.0 stats.Churn.offered_erlangs;
  Alcotest.(check int) "ideal: no blocking" 0 stats.Churn.t_blocked;
  Alcotest.(check bool)
    (Printf.sprintf "Little's law: %.2f within 20%% of 3.0" stats.Churn.mean_active)
    true
    (Float.abs (stats.Churn.mean_active -. 3.0) < 0.6)

let test_timed_accounting () =
  let sp = spec 4 2 in
  let stats =
    Churn.run_timed (rng 6) ~spec:sp ~model:Model.MSW
      ~fanout:(Fanout.Uniform (1, 2)) ~arrival_rate:1.0 ~mean_holding:2.0
      ~horizon:200. (ideal_sut ())
  in
  Alcotest.(check int) "balance" stats.Churn.t_attempts
    (stats.Churn.t_accepted + stats.Churn.t_blocked);
  Alcotest.(check bool) "completions happened" true (stats.Churn.completed > 20);
  Alcotest.(check bool) "completions <= accepted" true
    (stats.Churn.completed <= stats.Churn.t_accepted)

let test_timed_determinism () =
  let sp = spec 4 2 in
  let run seed =
    Churn.run_timed (rng seed) ~spec:sp ~model:Model.MAW
      ~fanout:(Fanout.Fixed 1) ~arrival_rate:1.0 ~mean_holding:1.0
      ~horizon:100. (ideal_sut ())
  in
  Alcotest.(check bool) "same seed same run" true (run 7 = run 7);
  Alcotest.(check bool) "different seed differs" true (run 7 <> run 8)

let test_timed_validation () =
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Churn.run_timed: rates and horizon must be positive")
    (fun () ->
      ignore
        (Churn.run_timed (rng 9) ~spec:(spec 2 1) ~model:Model.MSW
           ~fanout:(Fanout.Fixed 1) ~arrival_rate:0. ~mean_holding:1.
           ~horizon:1. (ideal_sut ())))

(* --- properties --------------------------------------------------------- *)

let prop_full_assignment_valid =
  QCheck.Test.make ~name:"random full assignments always validate" ~count:100
    (QCheck.make
       QCheck.Gen.(triple (int_range 1 5) (int_range 1 3) (int_range 0 1000)))
    (fun (n, k, seed) ->
      let sp = spec n k in
      List.for_all
        (fun model ->
          let a = Generator.random_full_assignment (rng seed) sp model in
          Assignment.is_valid sp model a && Assignment.is_full sp a)
        Model.all)

let () =
  Alcotest.run "wdm_traffic"
    [
      ( "fanout",
        [
          Alcotest.test_case "fixed" `Quick test_fanout_fixed;
          Alcotest.test_case "uniform bounds" `Quick test_fanout_uniform_bounds;
          Alcotest.test_case "zipf shape" `Quick test_fanout_zipf_shape;
          Alcotest.test_case "broadcast" `Quick test_fanout_broadcast;
          Alcotest.test_case "validation" `Quick test_fanout_validation;
        ] );
      ( "generator",
        [
          Alcotest.test_case "connections legal" `Quick test_random_connection_legal;
          Alcotest.test_case "free sets respected" `Quick
            test_random_connection_respects_free_sets;
          Alcotest.test_case "MSW starvation" `Quick test_random_connection_msw_starvation;
          Alcotest.test_case "assignment valid & loaded" `Quick
            test_random_assignment_valid_and_loaded;
          Alcotest.test_case "full assignments" `Quick test_random_full_assignment;
          Alcotest.test_case "determinism" `Quick test_generator_determinism;
        ] );
      ( "churn",
        [
          Alcotest.test_case "ideal switch" `Quick test_churn_against_ideal_switch;
          Alcotest.test_case "blocking counted" `Quick test_churn_counts_blocking;
          Alcotest.test_case "validation" `Quick test_churn_validation;
        ] );
      ( "timed-churn",
        [
          Alcotest.test_case "Little's law" `Slow test_timed_littles_law;
          Alcotest.test_case "accounting" `Quick test_timed_accounting;
          Alcotest.test_case "determinism" `Quick test_timed_determinism;
          Alcotest.test_case "validation" `Quick test_timed_validation;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_full_assignment_valid ]);
    ]
