(* Tests for the analysis layer: table rendering, the Table 1/2
   generators, parameter sweeps and the blocking experiments. *)

open Wdm_core
open Wdm_multistage
module An = Wdm_analysis

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  go 0

(* --- table renderer ------------------------------------------------------ *)

let test_table_render () =
  let t =
    An.Table.make ~title:"T" ~header:[ "a"; "bb" ]
      ~align:[ An.Table.Left; An.Table.Right ] ()
  in
  An.Table.add_row t [ "x"; "1" ];
  An.Table.add_row t [ "yyy"; "22" ];
  let out = An.Table.render t in
  Alcotest.(check bool) "title" true (String.length out > 0 && out.[0] = 'T');
  let lines =
    String.split_on_char '\n' out |> List.filter (fun l -> l <> "")
  in
  (match lines with
  | [ _title; _hdr; _rule; l1; l2 ] ->
    Alcotest.(check int) "equal widths" (String.length l1) (String.length l2);
    Alcotest.(check bool) "right align" true
      (String.ends_with ~suffix:" 1" l1 && String.ends_with ~suffix:"22" l2)
  | _ -> Alcotest.fail (Printf.sprintf "expected 5 lines, got %d" (List.length lines)));
  Alcotest.check_raises "row width" (Invalid_argument "Table.add_row: width mismatch")
    (fun () -> An.Table.add_row t [ "only one" ])

let test_table_csv () =
  let t = An.Table.make ~header:[ "a"; "b" ] () in
  An.Table.add_row t [ "plain"; "has,comma" ];
  An.Table.add_row t [ "has\"quote"; "x" ];
  An.Table.add_rule t;
  let csv = An.Table.to_csv t in
  Alcotest.(check string) "csv"
    "a,b\nplain,\"has,comma\"\n\"has\"\"quote\",x\n" csv

let test_table_align_default () =
  let t = An.Table.make ~header:[ "name"; "value" ] () in
  An.Table.add_row t [ "a"; "1" ];
  Alcotest.(check bool) "renders" true (String.length (An.Table.render t) > 0);
  Alcotest.check_raises "align width"
    (Invalid_argument "Table.make: align width mismatch") (fun () ->
      ignore (An.Table.make ~header:[ "a"; "b" ] ~align:[ An.Table.Left ] ()))

(* --- Table 1 / Table 2 generators ---------------------------------------- *)

let test_table1_census_agrees () =
  (* every censused cell must be marked "=", never "!!" *)
  let out = An.Table.render (An.Table1.numeric ~with_census:true [ (2, 2); (3, 1) ]) in
  Alcotest.(check bool) "census mismatch marker absent" false (contains out "!!");
  Alcotest.(check bool) "census match marker present" true (contains out " =")

let test_table1_infeasible_census_dashes () =
  let out = An.Table.render (An.Table1.numeric ~with_census:true [ (16, 8) ]) in
  Alcotest.(check bool) "dashes" true (contains out "-");
  Alcotest.(check bool) "big capacity approximated" true (contains out "e+")

let test_table2_rows () =
  let t = An.Table2.numeric ~big_ns:[ 16 ] ~ks:[ 2 ] in
  let csv = An.Table.to_csv t in
  (* three model rows with the Theorem-1 m = 13 for n = r = 4 *)
  Alcotest.(check bool) "m=13 present" true (contains csv "16,2,MSW,13,2");
  Alcotest.(check bool) "MSDW row" true (contains csv "16,2,MSDW,13");
  Alcotest.(check bool) "MAW row" true (contains csv "16,2,MAW,13")

(* --- sweeps --------------------------------------------------------------- *)

let test_crossover_consistency () =
  (* first_crossover must be the first "MS" row of the crossover table. *)
  List.iter
    (fun (model, k) ->
      let first = An.Sweeps.first_crossover ~output_model:model ~k ~max_big_n:1024 in
      let csv = An.Table.to_csv (An.Sweeps.crossover ~output_model:model ~k ~max_big_n:1024) in
      let rows = String.split_on_char '\n' csv in
      let first_ms =
        List.find_map
          (fun row ->
            match String.split_on_char ',' row with
            | [ n; _; _; "MS" ] -> int_of_string_opt n
            | _ -> None)
          rows
      in
      Alcotest.(check (option int))
        (Format.asprintf "%a k=%d" Model.pp model k)
        first first_ms)
    [ (Model.MSW, 2); (Model.MAW, 2); (Model.MAW, 4) ]

let test_crossover_earlier_for_maw () =
  (* k^2 N^2 crossbars are beaten earlier than k N^2 ones. *)
  let f model = An.Sweeps.first_crossover ~output_model:model ~k:2 ~max_big_n:4096 in
  match (f Model.MSW, f Model.MAW) with
  | Some msw, Some maw -> Alcotest.(check bool) "MAW first" true (maw <= msw)
  | _ -> Alcotest.fail "expected crossovers below 4096"

let test_theorem_bounds_table_shape () =
  let csv = An.Table.to_csv (An.Sweeps.theorem_bounds ~ns:[ 4; 8 ] ~ks:[ 1; 2 ]) in
  let rows = String.split_on_char '\n' csv |> List.filter (fun r -> r <> "") in
  Alcotest.(check int) "header + 2 rows" 3 (List.length rows);
  (* Theorem 2 at k=1 must equal Theorem 1 column *)
  List.iter
    (fun row ->
      match String.split_on_char ',' row with
      | [ _n; _x; thm1; _asym; thm2k1; _thm2k2 ] when thm1 <> "Thm1 m_min" ->
        Alcotest.(check string) "k=1 collapse" thm1 thm2k1
      | _ -> ())
    rows

let test_capacity_growth_monotone () =
  let csv = An.Table.to_csv (An.Sweeps.capacity_growth ~k:2 ~ns:[ 2; 4; 8 ]) in
  let rows =
    String.split_on_char '\n' csv
    |> List.filter_map (fun row ->
           match String.split_on_char ',' row with
           | [ _n; msw; msdw; maw; elec ] when msw <> "MSW" ->
             Some
               ( float_of_string msw,
                 float_of_string msdw,
                 float_of_string maw,
                 float_of_string elec )
           | _ -> None)
  in
  Alcotest.(check int) "3 rows" 3 (List.length rows);
  List.iter
    (fun (msw, msdw, maw, elec) ->
      Alcotest.(check bool) "ordering" true (msw <= msdw && msdw <= maw && maw <= elec))
    rows

(* --- blocking experiments -------------------------------------------------- *)

let test_blocking_vs_m_math () =
  let results =
    An.Blocking.blocking_vs_m ~seeds:[ 1; 2 ] ~steps:150
      ~construction:Network.Msw_dominant ~output_model:Model.MSW ~n:2 ~r:2
      ~k:1 ~ms:[ 2; 4 ] ()
  in
  (match results with
  | [ low; high ] ->
    Alcotest.(check int) "m recorded" 2 low.An.Blocking.m;
    Alcotest.(check bool) "probability consistent" true
      (Float.abs
         (low.An.Blocking.probability
         -. float_of_int low.An.Blocking.blocked
            /. float_of_int (max 1 low.An.Blocking.attempts))
      < 1e-9);
    Alcotest.(check int) "no blocking at theorem m" 0 high.An.Blocking.blocked
  | _ -> Alcotest.fail "expected two measurements")

let test_blocking_vs_load_zero_at_theorem_m () =
  let m = (Conditions.msw_dominant ~n:2 ~r:2).Conditions.m_min in
  let csv =
    An.Table.to_csv
      (An.Blocking.blocking_vs_load ~seeds:[ 3 ] ~steps:200
         ~construction:Network.Msw_dominant ~output_model:Model.MSW ~n:2 ~r:2
         ~k:1 ~m ())
  in
  String.split_on_char '\n' csv
  |> List.iter (fun row ->
         match String.split_on_char ',' row with
         | [ _bias; _att; blocked; _p; _util ] when blocked <> "blocked" ->
           Alcotest.(check string) "zero blocked" "0" blocked
         | _ -> ())

let test_strategy_ablation_table () =
  let csv =
    An.Table.to_csv
      (An.Blocking.strategy_ablation ~construction:Network.Msw_dominant
         ~output_model:Model.MSW ~n:2 ~r:2 ~k:1 ~m:4)
  in
  Alcotest.(check bool) "three strategies" true
    (contains csv "min-intersection" && contains csv "first-fit"
   && contains csv "exhaustive")

(* --- parallel substrate ----------------------------------------------------- *)

let test_parallel_map_order () =
  let xs = List.init 57 Fun.id in
  Alcotest.(check (list int)) "order preserved" (List.map (fun x -> x * x) xs)
    (An.Parallel.map ~domains:4 (fun x -> x * x) xs);
  Alcotest.(check (list int)) "empty" [] (An.Parallel.map (fun x -> x) []);
  Alcotest.(check (list int)) "single domain" [ 2; 4 ]
    (An.Parallel.map ~domains:1 (fun x -> 2 * x) [ 1; 2 ])

let test_parallel_map_exception () =
  Alcotest.check_raises "propagates" (Failure "boom") (fun () ->
      ignore
        (An.Parallel.map ~domains:3
           (fun x -> if x = 5 then failwith "boom" else x)
           (List.init 10 Fun.id)))

let test_parallel_census_equals_sequential () =
  List.iter
    (fun (n, k) ->
      let spec = Network_spec.make_exn ~n ~k in
      List.iter
        (fun model ->
          let seq = Wdm_core.Enumerate.census spec model in
          let par = An.Parallel_census.census ~domains:4 spec model in
          Alcotest.(check int)
            (Format.asprintf "full %a %d,%d" Model.pp model n k)
            seq.Wdm_core.Enumerate.full par.Wdm_core.Enumerate.full;
          Alcotest.(check int)
            (Format.asprintf "any %a %d,%d" Model.pp model n k)
            seq.Wdm_core.Enumerate.any par.Wdm_core.Enumerate.any)
        Model.all)
    [ (2, 2); (3, 1); (2, 3) ]

let test_census_branches_partition () =
  (* summing branch censuses = whole census, branch by branch *)
  let spec = Network_spec.make_exn ~n:2 ~k:2 in
  List.iter
    (fun model ->
      let whole = Wdm_core.Enumerate.census spec model in
      let parts =
        List.map
          (fun branch -> Wdm_core.Enumerate.census_branch spec model ~branch)
          (Wdm_core.Enumerate.branches spec)
      in
      let sum f = List.fold_left (fun acc c -> acc + f c) 0 parts in
      Alcotest.(check int) "full sums" whole.Wdm_core.Enumerate.full
        (sum (fun (c : Wdm_core.Enumerate.counts) -> c.Wdm_core.Enumerate.full));
      Alcotest.(check int) "any sums" whole.Wdm_core.Enumerate.any
        (sum (fun (c : Wdm_core.Enumerate.counts) -> c.Wdm_core.Enumerate.any)))
    Model.all

let () =
  Alcotest.run "wdm_analysis"
    [
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "csv" `Quick test_table_csv;
          Alcotest.test_case "align defaults" `Quick test_table_align_default;
        ] );
      ( "table1-table2",
        [
          Alcotest.test_case "census agrees" `Quick test_table1_census_agrees;
          Alcotest.test_case "infeasible census" `Quick
            test_table1_infeasible_census_dashes;
          Alcotest.test_case "table2 rows" `Quick test_table2_rows;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "crossover consistency" `Quick test_crossover_consistency;
          Alcotest.test_case "MAW crossover earlier" `Quick
            test_crossover_earlier_for_maw;
          Alcotest.test_case "theorem bounds shape" `Quick
            test_theorem_bounds_table_shape;
          Alcotest.test_case "capacity growth monotone" `Quick
            test_capacity_growth_monotone;
        ] );
      ( "sparse-conversion",
        [
          Alcotest.test_case "d=0 collapses to MSW capacity" `Slow (fun () ->
              List.iter
                (fun model ->
                  let m = An.Sparse_conversion.measure ~n:2 ~k:2 ~model ~range:0 () in
                  Alcotest.(check int)
                    (Format.asprintf "%a" Model.pp model)
                    81 (* (N+1)^(Nk) = 3^4 *)
                    m.An.Sparse_conversion.realizable)
                [ Model.MSDW; Model.MAW ]);
          Alcotest.test_case "d=k-1 restores full capacity" `Slow (fun () ->
              List.iter
                (fun (model, expected) ->
                  let m = An.Sparse_conversion.measure ~n:2 ~k:2 ~model ~range:1 () in
                  Alcotest.(check int)
                    (Format.asprintf "%a" Model.pp model)
                    expected m.An.Sparse_conversion.realizable;
                  Alcotest.(check int) "totals" expected m.An.Sparse_conversion.total)
                [ (Model.MSDW, 325); (Model.MAW, 441) ]);
          Alcotest.test_case "monotone in d" `Slow (fun () ->
              let frac d =
                let m = An.Sparse_conversion.measure ~n:2 ~k:3 ~model:Model.MAW ~range:d () in
                float_of_int m.An.Sparse_conversion.realizable
                /. float_of_int m.An.Sparse_conversion.total
              in
              let f0 = frac 0 and f1 = frac 1 and f2 = frac 2 in
              Alcotest.(check bool) "0 < 1" true (f0 < f1);
              Alcotest.(check bool) "1 < 2" true (f1 < f2);
              Alcotest.(check (float 1e-9)) "full range realizes all" 1.0 f2);
        ] );
      ( "parallel",
        [
          Alcotest.test_case "map order" `Quick test_parallel_map_order;
          Alcotest.test_case "map exception" `Quick test_parallel_map_exception;
          Alcotest.test_case "parallel census = sequential" `Slow
            test_parallel_census_equals_sequential;
          Alcotest.test_case "branches partition" `Quick test_census_branches_partition;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "blocking_vs_m math" `Slow test_blocking_vs_m_math;
          Alcotest.test_case "no blocking at theorem m" `Slow
            test_blocking_vs_load_zero_at_theorem_m;
          Alcotest.test_case "strategy ablation table" `Slow
            test_strategy_ablation_table;
        ] );
    ]
