(* Tests for the crossbar fabrics of Figs. 4-7.  The central check:
   each fabric realizes EVERY multicast assignment that is legal under
   its model (exhaustively enumerated for small networks) — i.e. the
   fabric is nonblocking — and the built hardware matches the paper's
   component counts (Table 1). *)

open Wdm_core
open Wdm_crossbar
module C = Wdm_optics.Circuit

let ep port wl = Endpoint.make ~port ~wl
let conn src dests = Connection.make_exn ~source:src ~destinations:dests
let spec n k = Network_spec.make_exn ~n ~k

let fabrics : (module Fabric_intf.S) list =
  [ (module Msw_fabric); (module Msdw_fabric); (module Maw_fabric) ]

(* --- space crossbar (Fig. 5) ------------------------------------------ *)

let test_space_xbar_unicast_permutations () =
  (* Standalone wiring of a 3x3 space crossbar: every permutation
     routes. *)
  let n = 3 in
  let c = C.create () in
  let xb = Space_xbar.build c ~inputs:n ~outputs:n in
  let sources = Array.init n (fun i -> C.add_source c (Printf.sprintf "in%d" i)) in
  let sinks = Array.init n (fun j -> C.add_sink c (Printf.sprintf "out%d" j)) in
  for i = 0 to n - 1 do
    let node, slot = Space_xbar.entry xb i in
    C.connect c sources.(i) 0 node slot;
    let node, slot = Space_xbar.exit xb i in
    C.connect c node slot sinks.(i) 0
  done;
  Array.iteri
    (fun i src ->
      C.inject c src [ Wdm_optics.Signal.inject ~origin:(Printf.sprintf "s%d" i) ~wl:1 ])
    sources;
  let perms = [ [| 0; 1; 2 |]; [| 1; 2; 0 |]; [| 2; 0; 1 |]; [| 2; 1; 0 |] ] in
  List.iter
    (fun perm ->
      Space_xbar.clear c xb;
      Array.iteri (fun i j -> Space_xbar.set c xb ~input:i ~output:j true) perm;
      let { C.deliveries; errors } = C.propagate c in
      Alcotest.(check int) "no errors" 0 (List.length errors);
      Alcotest.(check int) "all delivered" 3 (List.length deliveries);
      List.iter
        (fun (label, signals) ->
          match signals with
          | [ s ] ->
            let j = int_of_string (String.sub label 3 1) in
            let expect_i =
              let found = ref (-1) in
              Array.iteri (fun i j' -> if j' = j then found := i) perm;
              !found
            in
            Alcotest.(check string) "right source"
              (Printf.sprintf "s%d" expect_i)
              s.Wdm_optics.Signal.origin
          | _ -> Alcotest.fail "one signal per output")
        deliveries)
    perms

let test_space_xbar_multicast () =
  let n = 4 in
  let c = C.create () in
  let xb = Space_xbar.build c ~inputs:n ~outputs:n in
  let src = C.add_source c "in0" in
  let node, slot = Space_xbar.entry xb 0 in
  C.connect c src 0 node slot;
  let sinks = Array.init n (fun j -> C.add_sink c (Printf.sprintf "out%d" j)) in
  for j = 0 to n - 1 do
    let node, slot = Space_xbar.exit xb j in
    C.connect c node slot sinks.(j) 0
  done;
  C.inject c src [ Wdm_optics.Signal.inject ~origin:"s" ~wl:1 ];
  (* broadcast: one input to all four outputs *)
  for j = 0 to n - 1 do
    Space_xbar.set c xb ~input:0 ~output:j true
  done;
  let { C.deliveries; errors } = C.propagate c in
  Alcotest.(check int) "no errors" 0 (List.length errors);
  Alcotest.(check int) "broadcast reaches all" 4 (List.length deliveries)

let test_space_xbar_crosspoints () =
  let c = C.create () in
  let xb = Space_xbar.build c ~inputs:5 ~outputs:7 in
  Alcotest.(check int) "5x7 crosspoints" 35 (Space_xbar.crosspoints xb);
  Alcotest.(check int) "circuit gates" 35 (C.num_gates c)

(* --- component counts vs Table 1 -------------------------------------- *)

let test_fabric_counts () =
  List.iter
    (fun (module F : Fabric_intf.S) ->
      List.iter
        (fun (n, k) ->
          let f = F.create (spec n k) in
          let label what =
            Format.asprintf "%a %d,%d %s" Model.pp F.model n k what
          in
          Alcotest.(check int) (label "crosspoints")
            (Cost.crossbar_crosspoints F.model ~n ~k)
            (F.crosspoints f);
          Alcotest.(check int) (label "converters")
            (Cost.crossbar_converters F.model ~n ~k)
            (F.converters f))
        [ (2, 2); (3, 2); (3, 3); (4, 2) ])
    fabrics

(* --- the paper's Fig. 6/7 example size -------------------------------- *)

let test_fig6_fig7_gate_counts () =
  let f6 = Msdw_fabric.create (spec 3 2) in
  Alcotest.(check int) "Fig 6: 36 gates" 36 (Msdw_fabric.crosspoints f6);
  Alcotest.(check int) "Fig 6: 6 converters" 6 (Msdw_fabric.converters f6);
  let f7 = Maw_fabric.create (spec 3 2) in
  Alcotest.(check int) "Fig 7: 36 gates" 36 (Maw_fabric.crosspoints f7);
  Alcotest.(check int) "Fig 7: 6 converters" 6 (Maw_fabric.converters f7);
  let f4 = Msw_fabric.create (spec 3 2) in
  Alcotest.(check int) "Fig 4: 18 gates" 18 (Msw_fabric.crosspoints f4);
  Alcotest.(check int) "Fig 4: no converters" 0 (Msw_fabric.converters f4)

(* --- nonblocking: realize EVERY legal assignment ----------------------- *)

let exhaustive_cases = [ (2, 2); (3, 1); (2, 1); (1, 2) ]

let test_fabric_nonblocking (module F : Fabric_intf.S) () =
  List.iter
    (fun (n, k) ->
      let sp = spec n k in
      let fabric = F.create sp in
      let count = ref 0 in
      Enumerate.iter_assignments sp F.model (fun a ->
          incr count;
          match F.realize fabric a with
          | Ok _ -> ()
          | Error failure ->
            Alcotest.fail
              (Format.asprintf "%a N=%d k=%d failed on@ %a:@ %a" Model.pp
                 F.model n k Assignment.pp a Delivery.pp_failure failure));
      Alcotest.(check bool)
        (Printf.sprintf "exercised assignments N=%d k=%d" n k)
        true (!count > 1))
    exhaustive_cases

(* A larger spot-check: all full assignments for N=3, k=2 under MSW. *)
let test_msw_full_3_2 () =
  let sp = spec 3 2 in
  let fabric = Msw_fabric.create sp in
  Enumerate.iter_assignments ~full_only:true sp Model.MSW (fun a ->
      match Msw_fabric.realize fabric a with
      | Ok _ -> ()
      | Error failure ->
        Alcotest.fail
          (Format.asprintf "failed on %a: %a" Assignment.pp a
             Delivery.pp_failure failure))

(* --- model enforcement ------------------------------------------------- *)

let test_fabric_rejects_wrong_model () =
  let sp = spec 3 2 in
  (* (1,l1) -> (2,l2) changes wavelength: legal under MSDW/MAW only. *)
  let a = Assignment.make [ conn (ep 1 1) [ ep 2 2 ] ] in
  let msw = Msw_fabric.create sp in
  (match Msw_fabric.realize msw a with
  | Error (Delivery.Invalid (Assignment.Model_violation _)) -> ()
  | _ -> Alcotest.fail "MSW fabric must reject wavelength conversion");
  let msdw = Msdw_fabric.create sp in
  (match Msdw_fabric.realize msdw a with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Format.asprintf "%a" Delivery.pp_failure e));
  (* mixed destination wavelengths: MAW only *)
  let mixed = Assignment.make [ conn (ep 1 1) [ ep 2 1; ep 3 2 ] ] in
  (match Msdw_fabric.realize msdw mixed with
  | Error (Delivery.Invalid (Assignment.Model_violation _)) -> ()
  | _ -> Alcotest.fail "MSDW fabric must reject mixed destination wavelengths");
  let maw = Maw_fabric.create sp in
  match Maw_fabric.realize maw mixed with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Format.asprintf "%a" Delivery.pp_failure e)

(* --- WDM-specific behaviours ------------------------------------------ *)

let test_node_in_k_connections () =
  (* One node can source k connections and one node can receive k
     different messages at once — the WDM advantage from Section 1. *)
  let sp = spec 2 2 in
  let maw = Maw_fabric.create sp in
  let a =
    Assignment.make
      [
        conn (ep 1 1) [ ep 2 1 ];
        conn (ep 1 2) [ ep 2 2 ];
      ]
  in
  match Maw_fabric.realize maw a with
  | Ok outcome ->
    let to_port2 =
      List.concat_map
        (fun (label, ss) -> if label = "out:2" then ss else [])
        outcome.C.deliveries
    in
    Alcotest.(check int) "port 2 receives two messages" 2 (List.length to_port2)
  | Error e -> Alcotest.fail (Format.asprintf "%a" Delivery.pp_failure e)

let test_power_and_crosstalk_reporting () =
  let sp = spec 3 2 in
  let maw = Maw_fabric.create sp in
  let a = Assignment.make [ conn (ep 1 1) [ ep 1 1; ep 2 1; ep 3 1 ] ] in
  match Maw_fabric.realize maw a with
  | Ok outcome ->
    (match Delivery.min_power_db outcome with
    | Some p -> Alcotest.(check bool) "loss accumulated" true (p < -5.)
    | None -> Alcotest.fail "expected delivered power");
    (match Delivery.max_gates_passed outcome with
    | Some g -> Alcotest.(check int) "exactly one crosspoint per path" 1 g
    | None -> Alcotest.fail "expected gate count")
  | Error e -> Alcotest.fail (Format.asprintf "%a" Delivery.pp_failure e)

let test_crosstalk_margin_on_leaky_fabric () =
  (* With 30 dB extinction gates the fabric still realizes assignments
     (leakage is noise, not payload), and reports a positive but finite
     signal-to-crosstalk margin that shrinks as the gate count grows. *)
  let margin n =
    let sp = spec n 2 in
    let fabric =
      Wdm_crossbar.Fabric.create
        ~loss:(Wdm_optics.Loss_model.leaky ~extinction_db:30. ())
        ~model:Model.MAW sp
    in
    let rng = Random.State.make [| 9 |] in
    let a = Wdm_traffic.Generator.random_full_assignment rng sp Model.MAW in
    match Wdm_crossbar.Fabric.realize fabric a with
    | Error f -> Alcotest.fail (Format.asprintf "%a" Delivery.pp_failure f)
    | Ok outcome -> (
      match Delivery.worst_crosstalk_margin_db outcome with
      | Some m -> m
      | None -> Alcotest.fail "expected crosstalk on a full leaky fabric")
  in
  let m2 = margin 2 and m4 = margin 4 in
  Alcotest.(check bool) "margin positive at N=2" true (m2 > 0.);
  Alcotest.(check bool) "bigger fabric, worse margin" true (m4 < m2);
  (* ideal gates: no crosstalk reported *)
  let sp = spec 3 2 in
  let fabric = Wdm_crossbar.Fabric.create ~model:Model.MAW sp in
  let rng = Random.State.make [| 9 |] in
  let a = Wdm_traffic.Generator.random_full_assignment rng sp Model.MAW in
  match Wdm_crossbar.Fabric.realize fabric a with
  | Ok outcome ->
    Alcotest.(check bool) "no leakage with ideal gates" true
      (Delivery.worst_crosstalk_margin_db outcome = None)
  | Error f -> Alcotest.fail (Format.asprintf "%a" Delivery.pp_failure f)

let test_quiescent_fabric_delivers_nothing () =
  List.iter
    (fun (module F : Fabric_intf.S) ->
      let fabric = F.create (spec 2 2) in
      match F.realize fabric Assignment.empty with
      | Ok outcome ->
        Alcotest.(check int)
          (Format.asprintf "%a idle" Model.pp F.model)
          0
          (List.length outcome.C.deliveries)
      | Error e -> Alcotest.fail (Format.asprintf "%a" Delivery.pp_failure e))
    fabrics

(* --- properties -------------------------------------------------------- *)

(* Random valid MAW assignments realize on a 3x2 fabric. *)
let arb_maw_assignment =
  let gen =
    QCheck.Gen.(
      let* permsize = int_range 0 5 in
      (* pick random (dest, src) pairs over distinct destinations *)
      let all_dests = Endpoint.all ~n:3 ~k:2 in
      let* dests = QCheck.Gen.shuffle_l all_dests in
      let dests = List.filteri (fun i _ -> i < permsize) dests in
      let* srcs =
        flatten_l
          (List.map
             (fun _ -> pair (int_range 1 3) (int_range 1 2))
             dests)
      in
      return
        (List.map2
           (fun d (p, w) -> (d, Endpoint.make ~port:p ~wl:w))
           dests srcs))
  in
  QCheck.make
    ~print:(fun pairs ->
      String.concat ", "
        (List.map
           (fun (d, s) -> Endpoint.to_string d ^ "<-" ^ Endpoint.to_string s)
           pairs))
    gen

let prop_random_maw_assignments_realize =
  let sp = spec 3 2 in
  let fabric = Maw_fabric.create sp in
  QCheck.Test.make ~name:"random MAW assignments realize on Fig. 7 fabric"
    ~count:300 arb_maw_assignment (fun pairs ->
      (* keep only pairs not putting two dests of one source on a port *)
      let ok_pairs =
        List.filter
          (fun ((d : Endpoint.t), s) ->
            not
              (List.exists
                 (fun ((d' : Endpoint.t), s') ->
                   Endpoint.equal s s' && d.port = d'.port
                   && not (Endpoint.equal d d'))
                 pairs))
          pairs
      in
      let a = Assignment.of_pairs ok_pairs in
      QCheck.assume (Assignment.is_valid sp Model.MAW a);
      match Maw_fabric.realize fabric a with Ok _ -> true | Error _ -> false)

let test_verifier_catches_misdelivery () =
  (* A misprogrammed fabric (here: an extra connection configured beyond
     what the acceptance criterion expects — the effect of a stuck-on
     crosspoint) must be caught by the optical verifier. *)
  let sp = spec 3 2 in
  let fabric = Maw_fabric.create sp in
  let wanted = Assignment.make [ conn (ep 1 1) [ ep 2 1 ] ] in
  let programmed =
    Assignment.make
      [ conn (ep 1 1) [ ep 2 1 ]; conn (ep 3 2) [ ep 1 2 ] ]
  in
  match Maw_fabric.realize fabric programmed with
  | Error f -> Alcotest.fail (Format.asprintf "%a" Delivery.pp_failure f)
  | Ok outcome -> (
    (* outcome contains the extra delivery; verifying against the
       smaller intent must flag it *)
    match Delivery.verify wanted outcome with
    | Error (Delivery.Unexpected { port = 1; wl = 2; _ }) -> ()
    | Error f ->
      Alcotest.fail (Format.asprintf "wrong failure: %a" Delivery.pp_failure f)
    | Ok () -> Alcotest.fail "verifier missed the stray delivery")

(* Random valid assignments (any model) realize on the matching fabric;
   the workload generator supplies model-legal traffic from a seed. *)
let prop_generated_assignments_realize =
  let sp = spec 3 2 in
  let fabrics_by_model =
    List.map (fun (module F : Fabric_intf.S) -> (F.model, (module F : Fabric_intf.S))) fabrics
  in
  QCheck.Test.make ~name:"generated assignments realize on every fabric" ~count:150
    (QCheck.make
       ~print:(fun (s, l) -> Printf.sprintf "seed=%d load=%.2f" s l)
       QCheck.Gen.(pair (int_range 0 100000) (float_range 0.1 1.0)))
    (fun (seed, load) ->
      List.for_all
        (fun (model, (module F : Fabric_intf.S)) ->
          let rng = Random.State.make [| seed |] in
          let a =
            Wdm_traffic.Generator.random_assignment rng sp model
              ~fanout:(Wdm_traffic.Fanout.Uniform (1, 3)) ~load
          in
          match F.realize (F.create sp) a with Ok _ -> true | Error _ -> false)
        fabrics_by_model)

(* Full assignments too (every output endpoint lit). *)
let prop_full_assignments_realize =
  let sp = spec 3 2 in
  QCheck.Test.make ~name:"generated FULL assignments realize" ~count:100
    (QCheck.make QCheck.Gen.(int_range 0 100000))
    (fun seed ->
      List.for_all
        (fun (module F : Fabric_intf.S) ->
          let rng = Random.State.make [| seed |] in
          let a = Wdm_traffic.Generator.random_full_assignment rng sp F.model in
          match F.realize (F.create sp) a with Ok _ -> true | Error _ -> false)
        fabrics)

let () =
  Alcotest.run "wdm_crossbar"
    [
      ( "space-xbar",
        [
          Alcotest.test_case "unicast permutations" `Quick
            test_space_xbar_unicast_permutations;
          Alcotest.test_case "multicast broadcast" `Quick test_space_xbar_multicast;
          Alcotest.test_case "crosspoints" `Quick test_space_xbar_crosspoints;
        ] );
      ( "component-counts",
        [
          Alcotest.test_case "Table 1 counts" `Quick test_fabric_counts;
          Alcotest.test_case "Fig 4/6/7 sizes" `Quick test_fig6_fig7_gate_counts;
        ] );
      ( "nonblocking-exhaustive",
        [
          Alcotest.test_case "MSW realizes all assignments" `Slow
            (test_fabric_nonblocking (module Msw_fabric));
          Alcotest.test_case "MSDW realizes all assignments" `Slow
            (test_fabric_nonblocking (module Msdw_fabric));
          Alcotest.test_case "MAW realizes all assignments" `Slow
            (test_fabric_nonblocking (module Maw_fabric));
          Alcotest.test_case "MSW full assignments 3x3 k=2" `Slow test_msw_full_3_2;
        ] );
      ( "model-enforcement",
        [
          Alcotest.test_case "wrong model rejected" `Quick
            test_fabric_rejects_wrong_model;
          Alcotest.test_case "quiescent fabric dark" `Quick
            test_quiescent_fabric_delivers_nothing;
        ] );
      ( "wdm-behaviour",
        [
          Alcotest.test_case "k connections per node" `Quick test_node_in_k_connections;
          Alcotest.test_case "power & crosstalk reports" `Quick
            test_power_and_crosstalk_reporting;
          Alcotest.test_case "crosstalk margin (leaky gates)" `Quick
            test_crosstalk_margin_on_leaky_fabric;
          Alcotest.test_case "verifier catches misdelivery" `Quick
            test_verifier_catches_misdelivery;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_random_maw_assignments_realize;
          QCheck_alcotest.to_alcotest prop_generated_assignments_realize;
          QCheck_alcotest.to_alcotest prop_full_assignments_realize;
        ] );
    ]
