(* Tests for the core WDM model: endpoints, connections, models,
   assignments, and — most importantly — the Lemma 1-3 capacity formulas
   cross-checked against a brute-force census. *)

open Wdm_bignum
open Wdm_core

let nat = Alcotest.testable Nat.pp Nat.equal
let ep port wl = Endpoint.make ~port ~wl
let conn src dests = Connection.make_exn ~source:src ~destinations:dests
let spec n k = Network_spec.make_exn ~n ~k

(* --- endpoints -------------------------------------------------------- *)

let test_endpoint_index () =
  let k = 3 in
  List.iteri
    (fun i e ->
      Alcotest.(check int) "index" i (Endpoint.index ~k e);
      Alcotest.(check bool) "roundtrip" true
        (Endpoint.equal e (Endpoint.of_index ~k i)))
    (Endpoint.all ~n:4 ~k);
  Alcotest.(check int) "count" 12 (List.length (Endpoint.all ~n:4 ~k))

let test_endpoint_order () =
  Alcotest.(check bool) "port major" true (Endpoint.compare (ep 1 3) (ep 2 1) < 0);
  Alcotest.(check bool) "wl minor" true (Endpoint.compare (ep 2 1) (ep 2 2) < 0);
  Alcotest.(check bool) "valid" true (Endpoint.valid ~n:2 ~k:2 (ep 2 2));
  Alcotest.(check bool) "invalid port" false (Endpoint.valid ~n:2 ~k:2 (ep 3 1));
  Alcotest.(check bool) "invalid wl" false (Endpoint.valid ~n:2 ~k:2 (ep 1 3))

(* --- connections ------------------------------------------------------ *)

let test_connection_make () =
  (match Connection.make ~source:(ep 1 1) ~destinations:[] with
  | Error Connection.Empty_destinations -> ()
  | _ -> Alcotest.fail "expected Empty_destinations");
  (match Connection.make ~source:(ep 1 1) ~destinations:[ ep 2 1; ep 2 2 ] with
  | Error (Connection.Repeated_destination_port 2) -> ()
  | _ -> Alcotest.fail "expected Repeated_destination_port 2");
  let c = conn (ep 1 1) [ ep 3 2; ep 2 1 ] in
  Alcotest.(check int) "fanout" 2 (Connection.fanout c);
  Alcotest.(check (list int)) "sorted ports" [ 2; 3 ] (Connection.dest_ports c)

let test_unicast () =
  let c = Connection.unicast ~source:(ep 1 2) ~destination:(ep 4 1) in
  Alcotest.(check int) "fanout 1" 1 (Connection.fanout c)

(* --- models (Fig. 2) -------------------------------------------------- *)

let test_model_allows () =
  let same_wl = conn (ep 1 2) [ ep 2 2; ep 3 2 ] in
  let same_dest_wl = conn (ep 1 1) [ ep 2 2; ep 3 2 ] in
  let mixed = conn (ep 1 1) [ ep 2 1; ep 3 2 ] in
  let check m c expected =
    Alcotest.(check bool)
      (Format.asprintf "%a / %a" Model.pp m Connection.pp c)
      expected (Model.allows m c)
  in
  check Model.MSW same_wl true;
  check Model.MSW same_dest_wl false;
  check Model.MSW mixed false;
  check Model.MSDW same_wl true;
  check Model.MSDW same_dest_wl true;
  check Model.MSDW mixed false;
  check Model.MAW same_wl true;
  check Model.MAW same_dest_wl true;
  check Model.MAW mixed true

let test_model_hierarchy () =
  (* Every MSW-legal connection is MSDW-legal; every MSDW-legal one is
     MAW-legal (Section 2.1). *)
  let sp = spec 3 2 in
  List.iter
    (fun m ->
      Enumerate.iter_assignments sp m (fun a ->
          List.iter
            (fun c ->
              if Model.allows m c then begin
                List.iter
                  (fun m' ->
                    if Model.subsumes m' m then
                      Alcotest.(check bool) "subsumption" true (Model.allows m' c))
                  Model.all
              end)
            a.Assignment.connections))
    [ Model.MSW; Model.MSDW ]

let test_model_strings () =
  List.iter
    (fun m ->
      match Model.of_string (Model.to_string m) with
      | Ok m' -> Alcotest.(check bool) "roundtrip" true (Model.equal m m')
      | Error e -> Alcotest.fail e)
    Model.all;
  (match Model.of_string "msw" with
  | Ok m -> Alcotest.(check bool) "case insensitive" true (Model.equal m Model.MSW)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "bad name" true (Result.is_error (Model.of_string "XYZ"))

let test_converters_per_connection () =
  Alcotest.(check int) "MSW" 0 (Model.converters_per_connection Model.MSW ~fanout:5);
  Alcotest.(check int) "MSDW" 1 (Model.converters_per_connection Model.MSDW ~fanout:5);
  Alcotest.(check int) "MAW" 5 (Model.converters_per_connection Model.MAW ~fanout:5)

(* --- assignments ------------------------------------------------------ *)

let test_assignment_validate () =
  let sp = spec 3 2 in
  let ok =
    Assignment.make
      [ conn (ep 1 1) [ ep 1 1; ep 2 1 ]; conn (ep 1 2) [ ep 3 2 ] ]
  in
  (match Assignment.validate sp Model.MSW ok with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Format.asprintf "%a" Assignment.pp_error e));
  let dup_src =
    Assignment.make [ conn (ep 1 1) [ ep 1 1 ]; conn (ep 1 1) [ ep 2 1 ] ]
  in
  (match Assignment.validate sp Model.MSW dup_src with
  | Error (Assignment.Source_reused e) ->
    Alcotest.(check bool) "src" true (Endpoint.equal e (ep 1 1))
  | _ -> Alcotest.fail "expected Source_reused");
  let dup_dst =
    Assignment.make [ conn (ep 1 1) [ ep 1 1 ]; conn (ep 2 1) [ ep 1 1 ] ]
  in
  (match Assignment.validate sp Model.MSW dup_dst with
  | Error (Assignment.Destination_reused _) -> ()
  | _ -> Alcotest.fail "expected Destination_reused");
  let out_of_range = Assignment.make [ conn (ep 4 1) [ ep 1 1 ] ] in
  (match Assignment.validate sp Model.MSW out_of_range with
  | Error (Assignment.Source_out_of_range _) -> ()
  | _ -> Alcotest.fail "expected Source_out_of_range");
  let model_violation = Assignment.make [ conn (ep 1 1) [ ep 1 2 ] ] in
  match Assignment.validate sp Model.MSW model_violation with
  | Error (Assignment.Model_violation _) -> ()
  | _ -> Alcotest.fail "expected Model_violation"

let test_assignment_full () =
  let sp = spec 2 2 in
  let full =
    Assignment.make
      [
        conn (ep 1 1) [ ep 1 1; ep 2 1 ];
        conn (ep 1 2) [ ep 1 2; ep 2 2 ];
      ]
  in
  Alcotest.(check bool) "full" true (Assignment.is_full sp full);
  let partial = Assignment.make [ conn (ep 1 1) [ ep 1 1 ] ] in
  Alcotest.(check bool) "partial" false (Assignment.is_full sp partial)

let test_assignment_pairs_roundtrip () =
  let a =
    Assignment.make
      [ conn (ep 1 1) [ ep 1 2; ep 2 1 ]; conn (ep 2 2) [ ep 1 1 ] ]
  in
  let b = Assignment.of_pairs (Assignment.to_pairs a) in
  Alcotest.(check bool) "roundtrip" true (Assignment.equal a b)

let test_source_of () =
  let a = Assignment.make [ conn (ep 1 1) [ ep 1 2; ep 2 1 ] ] in
  (match Assignment.source_of a (ep 2 1) with
  | Some s -> Alcotest.(check bool) "found" true (Endpoint.equal s (ep 1 1))
  | None -> Alcotest.fail "expected source");
  Alcotest.(check bool) "absent" true (Assignment.source_of a (ep 2 2) = None)

(* --- capacities: closed form vs census (Lemmas 1-3) ------------------- *)

let census_cases =
  (* Every (n, k) whose census stays under the work budget; the largest,
     N=4 k=2 under MAW, walks ~2.8e7 valid maps. *)
  [ (1, 1); (1, 2); (1, 3); (2, 1); (2, 2); (3, 1); (4, 1); (3, 2); (2, 3); (2, 4); (4, 2) ]

let test_census_matches_formula model () =
  List.iter
    (fun (n, k) ->
      let sp = spec n k in
      let { Enumerate.full; any } = Enumerate.census sp model in
      let label what =
        Format.asprintf "%a N=%d k=%d %s" Model.pp model n k what
      in
      Alcotest.check nat (label "full") (Capacity.full model ~n ~k) (Nat.of_int full);
      Alcotest.check nat (label "any") (Capacity.any model ~n ~k) (Nat.of_int any))
    census_cases

let test_capacity_k1_degenerates () =
  (* With k = 1 every model reduces to the electronic network: N^N full,
     (N+1)^N any (the paper's sanity check after Lemma 3). *)
  List.iter
    (fun n ->
      List.iter
        (fun m ->
          Alcotest.check nat
            (Format.asprintf "full %a N=%d" Model.pp m n)
            (Capacity.electronic_full ~n) (Capacity.full m ~n ~k:1);
          Alcotest.check nat
            (Format.asprintf "any %a N=%d" Model.pp m n)
            (Capacity.electronic_any ~n) (Capacity.any m ~n ~k:1))
        Model.all)
    [ 1; 2; 3; 5; 8 ]

let test_capacity_known_values () =
  (* Hand-computed values for N=2, k=2. *)
  Alcotest.check nat "MSW full 2,2" (Nat.of_int 16) (Capacity.msw_full ~n:2 ~k:2);
  Alcotest.check nat "MSW any 2,2" (Nat.of_int 81) (Capacity.msw_any ~n:2 ~k:2);
  Alcotest.check nat "MAW full 2,2" (Nat.of_int 144) (Capacity.maw_full ~n:2 ~k:2);
  (* per port: P(4,2) + P(4,1)C(2,1) + P(4,0)C(2,2) = 12+8+1 = 21; 21^2 *)
  Alcotest.check nat "MAW any 2,2" (Nat.of_int 441) (Capacity.maw_any ~n:2 ~k:2);
  (* MSDW full: j1,j2 in {1,2}: P(4,2)+2*P(4,3)+P(4,4) = 12+48+24 = 84 *)
  Alcotest.check nat "MSDW full 2,2" (Nat.of_int 84) (Capacity.msdw_full ~n:2 ~k:2)

let test_msdw_dp_equals_naive_tuple_sum () =
  (* Lemma 3's sum over k-tuples (j_1..j_k) is evaluated in Capacity by
     a k-fold convolution; check the optimization against the direct
     nested-tuple sum for small parameters. *)
  let naive_full n k =
    let open Wdm_bignum in
    let rec tuples i acc_sum acc_prod =
      if i = k then
        Nat.mul (Combinatorics.falling (n * k) acc_sum) acc_prod
      else
        List.init n (fun j -> j + 1)
        |> List.map (fun j ->
               tuples (i + 1) (acc_sum + j)
                 (Nat.mul acc_prod (Combinatorics.stirling2 n j)))
        |> Nat.sum
    in
    tuples 0 0 Nat.one
  in
  List.iter
    (fun (n, k) ->
      Alcotest.check nat
        (Printf.sprintf "N=%d k=%d" n k)
        (naive_full n k)
        (Capacity.msdw_full ~n ~k))
    [ (1, 1); (2, 2); (3, 2); (2, 3); (4, 2); (3, 3); (5, 2) ]

let test_capacity_ordering () =
  (* Stronger model => at least the capacity (strictly more for k > 1). *)
  List.iter
    (fun (n, k) ->
      let f m = Capacity.full m ~n ~k and a m = Capacity.any m ~n ~k in
      Alcotest.(check bool) "full MSW < MSDW" true
        (Nat.compare (f Model.MSW) (f Model.MSDW) < 0);
      Alcotest.(check bool) "full MSDW < MAW" true
        (Nat.compare (f Model.MSDW) (f Model.MAW) < 0);
      Alcotest.(check bool) "any MSW < MSDW" true
        (Nat.compare (a Model.MSW) (a Model.MSDW) < 0);
      Alcotest.(check bool) "any MSDW < MAW" true
        (Nat.compare (a Model.MSDW) (a Model.MAW) < 0))
    [ (2, 2); (3, 2); (2, 3); (4, 2); (5, 3); (8, 4) ]

let test_capacity_below_electronic () =
  (* A k-wavelength N x N WDM network is strictly weaker than an
     Nk x Nk electronic network when k > 1 (Section 2.2). *)
  List.iter
    (fun (n, k) ->
      List.iter
        (fun m ->
          Alcotest.(check bool)
            (Format.asprintf "%a %d,%d" Model.pp m n k)
            true
            (Nat.compare (Capacity.full m ~n ~k)
               (Capacity.equivalent_electronic_full ~n ~k)
            < 0))
        Model.all)
    [ (2, 2); (3, 2); (4, 3) ]

let test_census_budget () =
  Alcotest.(check bool) "8,4 infeasible" false
    (Enumerate.feasible (spec 8 4) Model.MSW);
  Alcotest.(check bool) "4,2 feasible under MAW" true
    (Enumerate.feasible (spec 4 2) Model.MAW);
  Alcotest.check_raises "census raises"
    (Invalid_argument
       (Printf.sprintf
          "Enumerate: census of %s under MSW needs ~%.3g candidate maps (budget %.3g)"
          (Format.asprintf "%a" Network_spec.pp (spec 8 4))
          (Enumerate.work_estimate (spec 8 4) Model.MSW)
          5e7))
    (fun () -> ignore (Enumerate.census (spec 8 4) Model.MSW))

let test_enumerated_assignments_are_valid () =
  (* Everything the census yields must pass the validator, and the full
     ones must be recognized as full. *)
  List.iter
    (fun m ->
      let sp = spec 2 2 in
      let total = ref 0 and fulls = ref 0 in
      Enumerate.iter_assignments sp m (fun a ->
          incr total;
          (match Assignment.validate sp m a with
          | Ok () -> ()
          | Error e ->
            Alcotest.fail
              (Format.asprintf "invalid enumerated assignment: %a@ %a"
                 Assignment.pp_error e Assignment.pp a));
          if Assignment.is_full sp a then incr fulls);
      let { Enumerate.full; any } = Enumerate.census sp m in
      Alcotest.(check int) "total matches census" any !total;
      Alcotest.(check int) "fulls match census" full !fulls)
    Model.all

(* --- crossbar cost (Table 1) ------------------------------------------ *)

let test_crossbar_cost () =
  Alcotest.(check int) "MSW xpts" (2 * 9) (Cost.crossbar_crosspoints Model.MSW ~n:3 ~k:2);
  Alcotest.(check int) "MSDW xpts" (4 * 9) (Cost.crossbar_crosspoints Model.MSDW ~n:3 ~k:2);
  Alcotest.(check int) "MAW xpts" (4 * 9) (Cost.crossbar_crosspoints Model.MAW ~n:3 ~k:2);
  Alcotest.(check int) "MSW conv" 0 (Cost.crossbar_converters Model.MSW ~n:3 ~k:2);
  Alcotest.(check int) "MSDW conv" 6 (Cost.crossbar_converters Model.MSDW ~n:3 ~k:2);
  Alcotest.(check int) "MAW conv" 6 (Cost.crossbar_converters Model.MAW ~n:3 ~k:2)

(* --- converters (Fig. 3) ----------------------------------------------- *)

let test_converter_placement () =
  Alcotest.(check bool) "MSW" true (Converters.placement Model.MSW = Converters.None_needed);
  Alcotest.(check bool) "MSDW" true (Converters.placement Model.MSDW = Converters.Input_side);
  Alcotest.(check bool) "MAW" true (Converters.placement Model.MAW = Converters.Output_side);
  Alcotest.(check int) "provisioned MSW" 0 (Converters.provisioned Model.MSW ~n:5 ~k:3);
  Alcotest.(check int) "provisioned MSDW" 15 (Converters.provisioned Model.MSDW ~n:5 ~k:3);
  Alcotest.(check int) "provisioned MAW" 15 (Converters.provisioned Model.MAW ~n:5 ~k:3)

let test_converters_used_by () =
  (* Two connections with total fanout 5. *)
  let a =
    Assignment.make
      [
        conn (ep 1 1) [ ep 1 1; ep 2 1; ep 3 1 ];
        conn (ep 2 2) [ ep 1 2; ep 4 2 ];
      ]
  in
  Alcotest.(check int) "MSW uses none" 0 (Converters.used_by Model.MSW a);
  Alcotest.(check int) "MSDW one per connection" 2 (Converters.used_by Model.MSDW a);
  Alcotest.(check int) "MAW one per destination" 5 (Converters.used_by Model.MAW a)

let test_conversions_required () =
  let a =
    Assignment.make
      [
        (* source l1, dests l1/l2/l2: two conversions unavoidable *)
        conn (ep 1 1) [ ep 1 1; ep 2 2; ep 3 2 ];
        (* same-wavelength connection: none *)
        conn (ep 2 2) [ ep 4 2 ];
      ]
  in
  Alcotest.(check int) "lower bound" 2 (Converters.conversions_required a);
  (* the bound never exceeds what MAW actually spends *)
  Alcotest.(check bool) "MAW covers it" true
    (Converters.conversions_required a <= Converters.used_by Model.MAW a)

(* --- properties -------------------------------------------------------- *)

let arb_nk =
  QCheck.make
    ~print:(fun (n, k) -> Printf.sprintf "N=%d k=%d" n k)
    QCheck.Gen.(pair (int_range 1 6) (int_range 1 4))

let prop_full_le_any =
  QCheck.Test.make ~name:"full count <= any count" ~count:60 arb_nk
    (fun (n, k) ->
      List.for_all
        (fun m -> Nat.compare (Capacity.full m ~n ~k) (Capacity.any m ~n ~k) <= 0)
        Model.all)

let prop_capacity_monotone_n =
  QCheck.Test.make ~name:"capacity monotone in N" ~count:40 arb_nk
    (fun (n, k) ->
      List.for_all
        (fun m ->
          Nat.compare (Capacity.full m ~n ~k) (Capacity.full m ~n:(n + 1) ~k) < 0)
        Model.all)

let arb_nk_multi =
  (* N >= 2: with a single port the MSW full capacity is 1 for every k. *)
  QCheck.make
    ~print:(fun (n, k) -> Printf.sprintf "N=%d k=%d" n k)
    QCheck.Gen.(pair (int_range 2 6) (int_range 1 4))

let prop_capacity_monotone_k =
  QCheck.Test.make ~name:"capacity monotone in k" ~count:40 arb_nk_multi
    (fun (n, k) ->
      List.for_all
        (fun m ->
          Nat.compare (Capacity.full m ~n ~k) (Capacity.full m ~n ~k:(k + 1)) < 0)
        Model.all)

let arb_small_assignment =
  (* Random subsets of output endpoints mapped to random sources for a
     3x3, k=2 network: exercises of_pairs/validate against a reference
     check. *)
  let gen =
    QCheck.Gen.(
      let* pairs =
        list_size (int_range 0 6)
          (pair (pair (int_range 1 3) (int_range 1 2))
             (pair (int_range 1 3) (int_range 1 2)))
      in
      return
        (List.map
           (fun ((op, ow), (ip, iw)) ->
             (Endpoint.make ~port:op ~wl:ow, Endpoint.make ~port:ip ~wl:iw))
           pairs))
  in
  QCheck.make gen

let prop_of_pairs_preserves_mapping =
  QCheck.Test.make ~name:"of_pairs preserves the destination map" ~count:200
    arb_small_assignment (fun pairs ->
      (* Deduplicate output endpoints (an output can appear once). *)
      let module Em = Map.Make (Endpoint) in
      let dedup =
        List.fold_left (fun m (o, s) -> Em.add o s m) Em.empty pairs
      in
      let pairs = Em.bindings dedup in
      (* Skip inputs that would put two destinations of one source on the
         same output port: not expressible as a connection. *)
      let clash =
        List.exists
          (fun ((o1 : Endpoint.t), s1) ->
            List.exists
              (fun ((o2 : Endpoint.t), s2) ->
                Endpoint.equal s1 s2 && o1.port = o2.port
                && not (Endpoint.equal o1 o2))
              pairs)
          pairs
      in
      QCheck.assume (not clash);
      let a = Assignment.of_pairs pairs in
      List.for_all
        (fun (o, s) ->
          match Assignment.source_of a o with
          | Some s' -> Endpoint.equal s s'
          | None -> false)
        pairs)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_full_le_any;
      prop_capacity_monotone_n;
      prop_capacity_monotone_k;
      prop_of_pairs_preserves_mapping;
    ]

let () =
  Alcotest.run "wdm_core"
    [
      ( "endpoint",
        [
          Alcotest.test_case "index" `Quick test_endpoint_index;
          Alcotest.test_case "ordering" `Quick test_endpoint_order;
        ] );
      ( "connection",
        [
          Alcotest.test_case "make" `Quick test_connection_make;
          Alcotest.test_case "unicast" `Quick test_unicast;
        ] );
      ( "model",
        [
          Alcotest.test_case "allows (Fig 2)" `Quick test_model_allows;
          Alcotest.test_case "hierarchy" `Quick test_model_hierarchy;
          Alcotest.test_case "strings" `Quick test_model_strings;
          Alcotest.test_case "converters per connection" `Quick
            test_converters_per_connection;
        ] );
      ( "assignment",
        [
          Alcotest.test_case "validate" `Quick test_assignment_validate;
          Alcotest.test_case "full vs partial" `Quick test_assignment_full;
          Alcotest.test_case "pairs roundtrip" `Quick test_assignment_pairs_roundtrip;
          Alcotest.test_case "source_of" `Quick test_source_of;
        ] );
      ( "capacity-lemmas",
        [
          Alcotest.test_case "census = Lemma 1 (MSW)" `Slow
            (test_census_matches_formula Model.MSW);
          Alcotest.test_case "census = Lemma 3 (MSDW)" `Slow
            (test_census_matches_formula Model.MSDW);
          Alcotest.test_case "census = Lemma 2 (MAW)" `Slow
            (test_census_matches_formula Model.MAW);
          Alcotest.test_case "k=1 degenerates to electronic" `Quick
            test_capacity_k1_degenerates;
          Alcotest.test_case "known values" `Quick test_capacity_known_values;
          Alcotest.test_case "MSDW convolution = naive tuple sum" `Quick
            test_msdw_dp_equals_naive_tuple_sum;
          Alcotest.test_case "model ordering" `Quick test_capacity_ordering;
          Alcotest.test_case "below Nk x Nk electronic" `Quick
            test_capacity_below_electronic;
          Alcotest.test_case "census budget guard" `Quick test_census_budget;
          Alcotest.test_case "enumerated assignments validate" `Quick
            test_enumerated_assignments_are_valid;
        ] );
      ( "cost-table1",
        [ Alcotest.test_case "crossbar cost" `Quick test_crossbar_cost ] );
      ( "converters-fig3",
        [
          Alcotest.test_case "placement" `Quick test_converter_placement;
          Alcotest.test_case "used by assignment" `Quick test_converters_used_by;
          Alcotest.test_case "conversions required" `Quick test_conversions_required;
        ] );
      ("properties", props);
    ]
