(* Direct tests for Module_fabric, the universal WDM switching module:
   rectangular shapes, per-model internals, set_path discipline, and
   optical behaviour when embedded standalone. *)

open Wdm_core
open Wdm_crossbar
module C = Wdm_optics.Circuit
module MF = Module_fabric

(* Wrap a module with sources and sinks so we can push light through. *)
type rig = {
  circuit : C.t;
  core : MF.t;
  sources : C.node_id array;  (* per input port *)
}

let rig ?loss ~model ~inputs ~outputs ~k () =
  let c = C.create ?loss () in
  let core = MF.build c ~model ~inputs ~outputs ~k in
  let sources =
    Array.init inputs (fun p ->
        let src = C.add_source c (Printf.sprintf "src%d" (p + 1)) in
        let node, slot = MF.entry core (p + 1) in
        C.connect c src 0 node slot;
        src)
  in
  for p = 1 to outputs do
    let sink = C.add_sink c (Printf.sprintf "dst%d" p) in
    let node, slot = MF.exit core p in
    C.connect c node slot sink 0
  done;
  { circuit = c; core; sources }

let light_up r ~k =
  Array.iteri
    (fun p src ->
      C.inject r.circuit src
        (List.init k (fun w ->
             Wdm_optics.Signal.inject
               ~origin:(Printf.sprintf "s%d.%d" (p + 1) (w + 1))
               ~wl:(w + 1))))
    r.sources

let deliveries_of r =
  (C.propagate r.circuit).C.deliveries
  |> List.concat_map (fun (label, signals) ->
         List.map
           (fun (s : Wdm_optics.Signal.t) -> (label, s.wl, s.origin))
           signals)
  |> List.sort compare

(* --- shape & counts ------------------------------------------------------- *)

let test_rectangular_counts () =
  List.iter
    (fun (model, expected_x, expected_c) ->
      let c = C.create () in
      let m = MF.build c ~model ~inputs:3 ~outputs:5 ~k:2 in
      Alcotest.(check int)
        (Format.asprintf "%a crosspoints" Model.pp model)
        expected_x (MF.crosspoints m);
      Alcotest.(check int)
        (Format.asprintf "%a converters" Model.pp model)
        expected_c (MF.converters m);
      Alcotest.(check int) "inputs" 3 (MF.inputs m);
      Alcotest.(check int) "outputs" 5 (MF.outputs m);
      Alcotest.(check int) "k" 2 (MF.k m))
    [
      (Model.MSW, 2 * 3 * 5, 0);
      (Model.MSDW, 4 * 3 * 5, 3 * 2);
      (Model.MAW, 4 * 3 * 5, 5 * 2);
    ]

let test_entry_exit_bounds () =
  let c = C.create () in
  let m = MF.build c ~model:Model.MSW ~inputs:2 ~outputs:3 ~k:1 in
  Alcotest.check_raises "entry 0" (Invalid_argument "Module_fabric.entry: bad port")
    (fun () -> ignore (MF.entry m 0));
  Alcotest.check_raises "entry 3" (Invalid_argument "Module_fabric.entry: bad port")
    (fun () -> ignore (MF.entry m 3));
  Alcotest.check_raises "exit 4" (Invalid_argument "Module_fabric.exit: bad port")
    (fun () -> ignore (MF.exit m 4))

(* --- set_path discipline --------------------------------------------------- *)

let test_set_path_model_violations () =
  let c = C.create () in
  let msw = MF.build c ~model:Model.MSW ~inputs:2 ~outputs:2 ~k:2 in
  Alcotest.check_raises "MSW cannot convert"
    (Invalid_argument "Module_fabric.set_path: MSW module cannot convert wavelengths")
    (fun () -> MF.set_path c msw ~src:(1, 1) ~dests:[ (2, 2) ]);
  let msdw = MF.build c ~model:Model.MSDW ~inputs:2 ~outputs:2 ~k:2 in
  Alcotest.check_raises "MSDW needs common wavelength"
    (Invalid_argument
       "Module_fabric.set_path: MSDW module needs one common destination \
        wavelength") (fun () ->
      MF.set_path c msdw ~src:(1, 1) ~dests:[ (1, 1); (2, 2) ]);
  let maw = MF.build c ~model:Model.MAW ~inputs:2 ~outputs:2 ~k:2 in
  (* mixed wavelengths fine under MAW *)
  MF.set_path c maw ~src:(1, 1) ~dests:[ (1, 1); (2, 2) ];
  Alcotest.check_raises "repeated fiber"
    (Invalid_argument "Module_fabric.set_path: repeated destination fiber")
    (fun () -> MF.set_path c maw ~src:(1, 2) ~dests:[ (1, 1); (1, 2) ]);
  Alcotest.check_raises "no destinations"
    (Invalid_argument "Module_fabric.set_path: no destinations") (fun () ->
      MF.set_path c maw ~src:(1, 1) ~dests:[]);
  Alcotest.check_raises "bad wavelength"
    (Invalid_argument "Module_fabric.set_path: bad wavelength") (fun () ->
      MF.set_path c maw ~src:(1, 3) ~dests:[ (1, 1) ])

(* --- optical behaviour ------------------------------------------------------ *)

let test_msw_module_routes_by_plane () =
  let r = rig ~model:Model.MSW ~inputs:2 ~outputs:3 ~k:2 () in
  (* (1,l1) multicast to fibers 1 and 3 on l1; (2,l2) unicast to 2 on l2 *)
  MF.set_path r.circuit r.core ~src:(1, 1) ~dests:[ (1, 1); (3, 1) ];
  MF.set_path r.circuit r.core ~src:(2, 2) ~dests:[ (2, 2) ];
  light_up r ~k:2;
  Alcotest.(check (list (triple string int string)))
    "deliveries"
    [ ("dst1", 1, "s1.1"); ("dst2", 2, "s2.2"); ("dst3", 1, "s1.1") ]
    (deliveries_of r)

let test_msdw_module_converts_at_input () =
  let r = rig ~model:Model.MSDW ~inputs:2 ~outputs:2 ~k:2 () in
  (* source on l1, both destinations on l2 *)
  MF.set_path r.circuit r.core ~src:(1, 1) ~dests:[ (1, 2); (2, 2) ];
  light_up r ~k:2;
  Alcotest.(check (list (triple string int string)))
    "converted multicast"
    [ ("dst1", 2, "s1.1"); ("dst2", 2, "s1.1") ]
    (deliveries_of r)

let test_maw_module_mixed_wavelengths () =
  let r = rig ~model:Model.MAW ~inputs:2 ~outputs:3 ~k:2 () in
  (* one connection fanning to three different wavelengths *)
  MF.set_path r.circuit r.core ~src:(2, 2) ~dests:[ (1, 1); (2, 2); (3, 1) ];
  light_up r ~k:2;
  Alcotest.(check (list (triple string int string)))
    "per-destination wavelengths"
    [ ("dst1", 1, "s2.2"); ("dst2", 2, "s2.2"); ("dst3", 1, "s2.2") ]
    (deliveries_of r)

let test_clear_quiesces () =
  let r = rig ~model:Model.MAW ~inputs:2 ~outputs:2 ~k:2 () in
  MF.set_path r.circuit r.core ~src:(1, 1) ~dests:[ (1, 1); (2, 2) ];
  MF.clear r.circuit r.core;
  light_up r ~k:2;
  Alcotest.(check int) "dark" 0 (List.length (deliveries_of r))

let test_paths_accumulate () =
  (* several set_path calls coexist, as the multistage modules need *)
  let r = rig ~model:Model.MSW ~inputs:3 ~outputs:3 ~k:1 () in
  MF.set_path r.circuit r.core ~src:(1, 1) ~dests:[ (2, 1) ];
  MF.set_path r.circuit r.core ~src:(2, 1) ~dests:[ (3, 1) ];
  MF.set_path r.circuit r.core ~src:(3, 1) ~dests:[ (1, 1) ];
  light_up r ~k:1;
  Alcotest.(check int) "three deliveries" 3 (List.length (deliveries_of r))

let test_module_validation () =
  let c = C.create () in
  Alcotest.check_raises "sizes"
    (Invalid_argument "Module_fabric.build: sizes and k must be >= 1") (fun () ->
      ignore (MF.build c ~model:Model.MSW ~inputs:0 ~outputs:1 ~k:1))

let () =
  Alcotest.run "wdm_module_fabric"
    [
      ( "shape",
        [
          Alcotest.test_case "rectangular counts" `Quick test_rectangular_counts;
          Alcotest.test_case "entry/exit bounds" `Quick test_entry_exit_bounds;
          Alcotest.test_case "validation" `Quick test_module_validation;
        ] );
      ( "set_path",
        [
          Alcotest.test_case "model violations" `Quick test_set_path_model_violations;
          Alcotest.test_case "paths accumulate" `Quick test_paths_accumulate;
          Alcotest.test_case "clear quiesces" `Quick test_clear_quiesces;
        ] );
      ( "optical",
        [
          Alcotest.test_case "MSW planes" `Quick test_msw_module_routes_by_plane;
          Alcotest.test_case "MSDW input conversion" `Quick
            test_msdw_module_converts_at_input;
          Alcotest.test_case "MAW mixed wavelengths" `Quick
            test_maw_module_mixed_wavelengths;
        ] );
    ]
