(* Tests for the multistage machinery: topology arithmetic, destination
   multisets (Section 3.3), nonblocking conditions (Theorems 1-2) and
   the Table 2 cost model. *)

open Wdm_multistage

let topo n m r k = Topology.make_exn ~n ~m ~r ~k

(* --- topology ---------------------------------------------------------- *)

let test_topology_make () =
  Alcotest.(check bool) "m >= n enforced" true
    (Result.is_error (Topology.make ~n:4 ~m:3 ~r:2 ~k:1));
  Alcotest.(check bool) "positive dims" true
    (Result.is_error (Topology.make ~n:0 ~m:1 ~r:1 ~k:1));
  let t = topo 3 5 4 2 in
  Alcotest.(check int) "N = n r" 12 (Topology.num_ports t)

let test_topology_port_mapping () =
  let t = topo 3 4 4 2 in
  Alcotest.(check (pair int int)) "port 1" (1, 1) (Topology.switch_of_port t 1);
  Alcotest.(check (pair int int)) "port 3" (1, 3) (Topology.switch_of_port t 3);
  Alcotest.(check (pair int int)) "port 4" (2, 1) (Topology.switch_of_port t 4);
  Alcotest.(check (pair int int)) "port 12" (4, 3) (Topology.switch_of_port t 12);
  for p = 1 to 12 do
    let switch, local = Topology.switch_of_port t p in
    Alcotest.(check int) "roundtrip" p (Topology.port_of_switch t ~switch ~local)
  done;
  Alcotest.check_raises "bad port"
    (Invalid_argument "Topology.switch_of_port: bad port") (fun () ->
      ignore (Topology.switch_of_port t 13))

(* --- multisets --------------------------------------------------------- *)

let test_multiset_basics () =
  let m = Multiset.of_list ~r:3 ~k:2 [ 1; 1; 3 ] in
  Alcotest.(check int) "mult 1" 2 (Multiset.multiplicity m 1);
  Alcotest.(check int) "mult 2" 0 (Multiset.multiplicity m 2);
  Alcotest.(check int) "mult 3" 1 (Multiset.multiplicity m 3);
  Alcotest.(check bool) "1 saturated" true (Multiset.saturated m 1);
  Alcotest.(check bool) "3 not saturated" false (Multiset.saturated m 3);
  Alcotest.(check int) "total" 3 (Multiset.total m);
  Alcotest.(check string) "paper notation" "{1^2, 3^1}"
    (Format.asprintf "%a" Multiset.pp m)

let test_multiset_cardinality_is_saturation_count () =
  (* Definition (4): |M| counts elements with multiplicity k, not the
     total multiplicity. *)
  let m = Multiset.of_list ~r:4 ~k:2 [ 1; 1; 2; 3; 3 ] in
  Alcotest.(check int) "card counts saturated" 2 (Multiset.cardinality m);
  Alcotest.(check bool) "not null" false (Multiset.is_null m);
  Alcotest.(check (list int)) "saturated elements" [ 1; 3 ]
    (Multiset.saturated_elements m);
  let partial = Multiset.of_list ~r:4 ~k:2 [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "all below k" 0 (Multiset.cardinality partial);
  Alcotest.(check bool) "null" true (Multiset.is_null partial)

let test_multiset_inter () =
  (* Definition (3): elementwise min. *)
  let a = Multiset.of_list ~r:3 ~k:2 [ 1; 1; 2 ] in
  let b = Multiset.of_list ~r:3 ~k:2 [ 1; 2; 2; 3 ] in
  let i = Multiset.inter a b in
  Alcotest.(check int) "min at 1" 1 (Multiset.multiplicity i 1);
  Alcotest.(check int) "min at 2" 1 (Multiset.multiplicity i 2);
  Alcotest.(check int) "min at 3" 0 (Multiset.multiplicity i 3)

let test_multiset_k1_degeneration () =
  (* With k = 1 multisets are plain sets and cardinality is set size. *)
  let a = Multiset.of_list ~r:5 ~k:1 [ 1; 3; 4 ] in
  Alcotest.(check int) "set cardinality" 3 (Multiset.cardinality a);
  let b = Multiset.of_list ~r:5 ~k:1 [ 3; 5 ] in
  Alcotest.(check int) "set intersection" 1 (Multiset.cardinality (Multiset.inter a b))

let test_multiset_add_remove () =
  let m = Multiset.create ~r:2 ~k:2 in
  let m = Multiset.add m 1 in
  let m = Multiset.add m 1 in
  Alcotest.check_raises "cap at k" (Invalid_argument "Multiset.add: element saturated")
    (fun () -> ignore (Multiset.add m 1));
  let m = Multiset.remove m 1 in
  Alcotest.(check int) "down to 1" 1 (Multiset.multiplicity m 1);
  Alcotest.check_raises "remove absent"
    (Invalid_argument "Multiset.remove: element absent") (fun () ->
      ignore (Multiset.remove m 2))

let test_multiset_restrict () =
  let m = Multiset.of_list ~r:4 ~k:2 [ 1; 1; 2; 4; 4 ] in
  let f = Multiset.restrict m [ 1; 3 ] in
  Alcotest.(check int) "kept" 2 (Multiset.multiplicity f 1);
  Alcotest.(check int) "dropped" 0 (Multiset.multiplicity f 4);
  Alcotest.(check int) "card restricted" 1 (Multiset.cardinality f)

(* qcheck: intersection is a lower bound and is commutative/idempotent *)
let arb_multiset =
  let gen =
    QCheck.Gen.(
      let* r = int_range 1 6 in
      let* k = int_range 1 3 in
      let* elems =
        list_size (int_range 0 (r * k)) (int_range 1 r)
      in
      (* keep multiplicities within k *)
      let counts = Array.make r 0 in
      let ok =
        List.filter
          (fun p ->
            if counts.(p - 1) < k then begin
              counts.(p - 1) <- counts.(p - 1) + 1;
              true
            end
            else false)
          elems
      in
      return (Multiset.of_list ~r ~k ok))
  in
  QCheck.make ~print:(Format.asprintf "%a" Multiset.pp) gen

let arb_multiset_pair =
  (* same dimensions for both *)
  let gen =
    QCheck.Gen.(
      let* r = int_range 1 6 in
      let* k = int_range 1 3 in
      let make_one =
        let* elems = list_size (int_range 0 (r * k)) (int_range 1 r) in
        let counts = Array.make r 0 in
        let ok =
          List.filter
            (fun p ->
              if counts.(p - 1) < k then begin
                counts.(p - 1) <- counts.(p - 1) + 1;
                true
              end
              else false)
            elems
        in
        return (Multiset.of_list ~r ~k ok)
      in
      pair make_one make_one)
  in
  QCheck.make
    ~print:(fun (a, b) ->
      Format.asprintf "%a / %a" Multiset.pp a Multiset.pp b)
    gen

let prop_inter_comm =
  QCheck.Test.make ~name:"inter commutative" ~count:200 arb_multiset_pair
    (fun (a, b) -> Multiset.equal (Multiset.inter a b) (Multiset.inter b a))

let prop_inter_idem =
  QCheck.Test.make ~name:"inter idempotent" ~count:200 arb_multiset (fun a ->
      Multiset.equal (Multiset.inter a a) a)

let prop_inter_lower_bound =
  QCheck.Test.make ~name:"inter bounds multiplicities" ~count:200
    arb_multiset_pair (fun (a, b) ->
      let i = Multiset.inter a b in
      List.for_all
        (fun p ->
          Multiset.multiplicity i p
          <= Stdlib.min (Multiset.multiplicity a p) (Multiset.multiplicity b p))
        (List.init (Multiset.r a) (fun x -> x + 1)))

let prop_cardinality_antitone =
  QCheck.Test.make ~name:"cardinality of inter <= both" ~count:200
    arb_multiset_pair (fun (a, b) ->
      let c = Multiset.cardinality (Multiset.inter a b) in
      c <= Multiset.cardinality a && c <= Multiset.cardinality b)

(* --- conditions (Theorems 1-2) ----------------------------------------- *)

let test_theorem1_values () =
  (* (n-1)(x + r^(1/x)) at n = r = 4: x=1: 3*(1+4)=15; x=2: 3*(2+2)=12;
     x=3: 3*(3+4^(1/3)) ~ 13.76.  Minimum at x=2, m_min=13. *)
  Alcotest.(check (float 1e-9)) "x=1" 15. (Conditions.theorem1_term ~n:4 ~r:4 ~x:1);
  Alcotest.(check (float 1e-9)) "x=2" 12. (Conditions.theorem1_term ~n:4 ~r:4 ~x:2);
  let e = Conditions.msw_dominant ~n:4 ~r:4 in
  Alcotest.(check int) "best x" 2 e.Conditions.x;
  Alcotest.(check int) "m_min" 13 e.Conditions.m_min

let test_theorem1_small () =
  (* n = r = 2: only x = 1 legal: (1)(1+2) = 3, m_min = 4. *)
  let e = Conditions.msw_dominant ~n:2 ~r:2 in
  Alcotest.(check int) "x" 1 e.Conditions.x;
  Alcotest.(check int) "m_min" 4 e.Conditions.m_min

let test_theorem1_n1 () =
  let e = Conditions.msw_dominant ~n:1 ~r:4 in
  Alcotest.(check int) "m_min at n=1" 1 e.Conditions.m_min

let test_theorem2_values () =
  (* n = r = 2, k = 2: x = 1: floor(3*1/2) + 1*2 = 1 + 2 = 3; m_min = 4. *)
  Alcotest.(check (float 1e-9)) "term" 3.
    (Conditions.theorem2_term ~n:2 ~r:2 ~k:2 ~x:1);
  let e = Conditions.maw_dominant ~n:2 ~r:2 ~k:2 in
  Alcotest.(check int) "m_min" 4 e.Conditions.m_min

let test_theorem2_ge_theorem1_unavailability () =
  (* floor((nk-1)x/k) >= (n-1)x: the MAW-dominant construction never
     needs fewer middles (Section 3.4's observation). *)
  List.iter
    (fun (n, r, k) ->
      let lo, hi = Conditions.x_range ~n ~r in
      for x = lo to hi do
        Alcotest.(check bool)
          (Printf.sprintf "n=%d r=%d k=%d x=%d" n r k x)
          true
          (Conditions.theorem2_term ~n ~r ~k ~x
          >= Conditions.theorem1_term ~n ~r ~x -. 1e-9)
      done)
    [ (2, 2, 1); (2, 2, 2); (4, 4, 2); (8, 8, 4); (16, 16, 2); (5, 9, 3) ]

let test_theorem2_k1_equals_theorem1 () =
  (* With one wavelength the constructions coincide. *)
  List.iter
    (fun (n, r) ->
      let a = Conditions.msw_dominant ~n ~r in
      let b = Conditions.maw_dominant ~n ~r ~k:1 in
      Alcotest.(check int)
        (Printf.sprintf "m_min n=%d r=%d" n r)
        a.Conditions.m_min b.Conditions.m_min)
    [ (2, 2); (3, 3); (4, 4); (8, 8); (16, 16) ]

let test_asymptotic_reduction () =
  (* Section 3.4: choosing x = log r / log log r gives
     m >= 3 (n-1) log r / log log r, so the optimized bound can never
     exceed the asymptotic expression where the latter's x is legal. *)
  List.iter
    (fun n ->
      let r = n in
      let x_star = int_of_float (Float.round (Conditions.asymptotic_x ~r)) in
      let _, hi = Conditions.x_range ~n ~r in
      if x_star >= 1 && x_star <= hi then begin
        let e = Conditions.msw_dominant ~n ~r in
        Alcotest.(check bool)
          (Printf.sprintf "optimized <= asymptotic at n=r=%d" n)
          true
          (e.Conditions.bound
          <= (Conditions.asymptotic_bound ~n ~r) +. 1e-9)
      end)
    [ 4; 8; 16; 32; 64; 256; 1024 ]

let test_condition_monotonicity () =
  (* More local ports per module -> more middle modules needed. *)
  let prev = ref 0 in
  List.iter
    (fun n ->
      let e = Conditions.msw_dominant ~n ~r:n in
      Alcotest.(check bool) (Printf.sprintf "monotone at %d" n) true
        (e.Conditions.m_min >= !prev);
      prev := e.Conditions.m_min)
    [ 2; 3; 4; 6; 8; 12; 16; 24; 32 ]

(* --- cost model (Table 2) ---------------------------------------------- *)

let test_cost_closed_form_agrees () =
  List.iter
    (fun (n, m, r, k) ->
      let t = topo n m r k in
      List.iter
        (fun output_model ->
          let b =
            Cost.breakdown ~construction:Network.Msw_dominant ~output_model t
          in
          Alcotest.(check int)
            (Format.asprintf "closed form %a n=%d m=%d r=%d k=%d"
               Wdm_core.Model.pp output_model n m r k)
            (Cost.msw_dominant_crosspoints_closed_form ~output_model t)
            b.Cost.total_crosspoints)
        Wdm_core.Model.all)
    [ (2, 4, 2, 2); (4, 13, 4, 2); (3, 7, 5, 3); (8, 30, 8, 4) ]

let test_cost_converter_counts () =
  let t = topo 4 13 4 2 in
  let conv output_model =
    (Cost.breakdown ~construction:Network.Msw_dominant ~output_model t)
      .Cost.total_converters
  in
  (* MSW: none; MSDW: r*m*k (input side of output modules);
     MAW: r*n*k = Nk (output side). *)
  Alcotest.(check int) "MSW" 0 (conv Wdm_core.Model.MSW);
  Alcotest.(check int) "MSDW" (4 * 13 * 2) (conv Wdm_core.Model.MSDW);
  Alcotest.(check int) "MAW" (4 * 4 * 2) (conv Wdm_core.Model.MAW);
  (* Section 3.4: under the multistage MSW-dominant construction the
     MSDW model needs MORE converters than MAW (m > n). *)
  Alcotest.(check bool) "MSDW > MAW" true
    (conv Wdm_core.Model.MSDW > conv Wdm_core.Model.MAW)

let test_cost_maw_dominant_more_expensive () =
  let t = topo 4 13 4 2 in
  List.iter
    (fun output_model ->
      let msw_b = Cost.breakdown ~construction:Network.Msw_dominant ~output_model t in
      let maw_b = Cost.breakdown ~construction:Network.Maw_dominant ~output_model t in
      Alcotest.(check bool)
        (Format.asprintf "crosspoints %a" Wdm_core.Model.pp output_model)
        true
        (maw_b.Cost.total_crosspoints > msw_b.Cost.total_crosspoints);
      Alcotest.(check bool)
        (Format.asprintf "converters %a" Wdm_core.Model.pp output_model)
        true
        (maw_b.Cost.total_converters >= msw_b.Cost.total_converters))
    Wdm_core.Model.all

let test_msdw_placement_remark () =
  (* Section 3.4: optimized MSDW placement still needs N k converters —
     the same as MAW, never fewer; the naive placement needs more. *)
  List.iter
    (fun (n, m, r, k) ->
      let t = topo n m r k in
      let opt = Cost.msdw_converters_optimized t in
      let naive = Cost.msdw_converters_input_side t in
      Alcotest.(check int) "optimized = Nk" (n * r * k) opt;
      Alcotest.(check bool) "optimized <= naive" true (opt <= naive);
      Alcotest.(check int) "equals MAW placement"
        (Cost.breakdown ~construction:Network.Msw_dominant
           ~output_model:Wdm_core.Model.MAW t)
          .Cost.total_converters
        opt;
      if m > n then Alcotest.(check bool) "strictly fewer when m > n" true (opt < naive))
    [ (2, 4, 2, 2); (4, 13, 4, 2); (3, 3, 5, 1) ]

let test_asymptotic_crosspoint_scaling () =
  (* The headline claim: MSW-dominant multistage crosspoints are
     O(k N^1.5 log N / log log N).  Check the ratio to that envelope is
     bounded (and not vanishing) across two decades of N. *)
  let ratio big_n =
    match
      Cost.recommended ~construction:Network.Msw_dominant
        ~output_model:Wdm_core.Model.MSW ~big_n ~k:2
    with
    | Error e -> Alcotest.fail e
    | Ok (_, _, b) ->
      let fn = float_of_int big_n in
      let envelope = 2. *. (fn ** 1.5) *. Float.log fn /. Float.log (Float.log fn) in
      float_of_int b.Cost.total_crosspoints /. envelope
  in
  let ratios = List.map ratio [ 64; 256; 1024; 4096; 16384; 65536 ] in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "ratio %.3f within [0.2, 6]" r)
        true
        (r > 0.2 && r < 6.))
    ratios

let test_recommended_design () =
  match
    Cost.recommended ~construction:Network.Msw_dominant
      ~output_model:Wdm_core.Model.MSW ~big_n:16 ~k:2
  with
  | Error e -> Alcotest.fail e
  | Ok (t, eval, b) ->
    Alcotest.(check int) "n = sqrt N" 4 t.Topology.n;
    Alcotest.(check int) "r = sqrt N" 4 t.Topology.r;
    Alcotest.(check int) "m from Theorem 1" eval.Conditions.m_min t.Topology.m;
    Alcotest.(check int) "closed form" (2 * 13 * 4 * ((2 * 4) + 4))
      b.Cost.total_crosspoints

let test_recommended_rejects_non_square () =
  Alcotest.(check bool) "not a square" true
    (Result.is_error
       (Cost.recommended ~construction:Network.Msw_dominant
          ~output_model:Wdm_core.Model.MSW ~big_n:15 ~k:2))

let test_multistage_beats_crossbar_eventually () =
  (* The whole point of Section 3: for large N the three-stage network
     uses far fewer crosspoints than the crossbar. *)
  List.iter
    (fun output_model ->
      let big_n = 1024 and k = 2 in
      match
        Cost.recommended ~construction:Network.Msw_dominant ~output_model ~big_n ~k
      with
      | Error e -> Alcotest.fail e
      | Ok (_, _, b) ->
        Alcotest.(check bool)
          (Format.asprintf "N=%d %a" big_n Wdm_core.Model.pp output_model)
          true
          (b.Cost.total_crosspoints
          < Cost.crossbar_crosspoints ~output_model ~big_n ~k))
    Wdm_core.Model.all

(* --- Lemma 5, verified mechanically -------------------------------------- *)

(* Enumerate every family of m' destination multisets over {1..r} with
   multiplicities <= k such that (a) across the family each element
   appears at most nk-1 times and (b) the intersection of every
   x-subset is non-null, and check that no family exceeds the bound
   m' <= (n-1) r^(1/x).  This is the paper's counting lemma tested by
   brute force rather than trusted. *)

let all_multisets ~r ~k =
  (* all multiplicity vectors, as int lists of length r *)
  let rec go = function
    | 0 -> [ [] ]
    | i -> List.concat_map (fun tail -> List.init (k + 1) (fun c -> c :: tail)) (go (i - 1))
  in
  go r
  |> List.map (fun counts ->
         Multiset.of_list ~r ~k
           (List.concat (List.mapi (fun i c -> List.init c (fun _ -> i + 1)) counts)))

let rec x_subsets x = function
  | [] -> if x = 0 then [ [] ] else []
  | _ when x = 0 -> [ [] ]
  | m :: rest ->
    List.map (fun s -> m :: s) (x_subsets (x - 1) rest) @ x_subsets x rest

let lemma5_max_family ~n ~r ~k ~x ~limit =
  let candidates =
    (* only non-null multisets can appear: a null one already violates
       the x-subset condition (its own intersection chain is null) *)
    List.filter (fun m -> not (Multiset.is_null m)) (all_multisets ~r ~k)
  in
  let budget_ok family =
    List.for_all
      (fun p ->
        List.fold_left (fun acc m -> acc + Multiset.multiplicity m p) 0 family
        <= (n * k) - 1)
      (List.init r (fun i -> i + 1))
  in
  let intersections_ok family =
    if List.length family < x then true
    else
      List.for_all
        (fun subset ->
          match subset with
          | [] -> true
          | m0 :: rest ->
            not (Multiset.is_null (List.fold_left Multiset.inter m0 rest)))
        (x_subsets x family)
  in
  (* DFS over families (with repetition of multiset shapes allowed:
     distinct middle modules may have equal multisets) *)
  let best = ref 0 in
  let rec grow family size pool =
    if size > !best then best := size;
    if size < limit then
      List.iteri
        (fun i m ->
          let family' = m :: family in
          if budget_ok family' && intersections_ok family' then
            (* allow reuse of the same shape: keep pool from i *)
            grow family' (size + 1)
              (List.filteri (fun j _ -> j >= i) pool))
        pool
  in
  grow [] 0 candidates;
  !best

let test_lemma5_bound_mechanically () =
  List.iter
    (fun (n, r, k, x) ->
      let bound =
        int_of_float
          (Float.floor
             (float_of_int (n - 1) *. (float_of_int r ** (1. /. float_of_int x))))
      in
      let max_family = lemma5_max_family ~n ~r ~k ~x ~limit:(bound + 2) in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d r=%d k=%d x=%d: max %d <= bound %d" n r k x
           max_family bound)
        true (max_family <= bound))
    [
      (2, 2, 1, 1); (2, 2, 2, 1); (2, 3, 1, 1); (2, 2, 1, 2); (2, 2, 2, 2);
      (3, 2, 1, 1); (3, 2, 1, 2); (2, 3, 2, 1); (3, 3, 1, 1);
    ]

let test_lemma5_bound_is_achievable () =
  (* the bound is met with equality somewhere — e.g. n=3, r=2, k=1,
     x=1: the families {{1},{2}} x copies... (n-1)r = 4 singleton sets
     with each element used at most nk-1 = 2 times: {1},{1},{2},{2} *)
  Alcotest.(check int) "achieves 4" 4
    (lemma5_max_family ~n:3 ~r:2 ~k:1 ~x:1 ~limit:6)

(* --- recursive construction -------------------------------------------- *)

let test_recursive_one_stage_is_crossbar () =
  List.iter
    (fun model ->
      match Recursive.design ~stages:1 ~big_n:16 ~k:2 ~output_model:model with
      | Error e -> Alcotest.fail e
      | Ok d ->
        Alcotest.(check int) "stages" 1 (Recursive.stages d);
        Alcotest.(check int) "ports" 16 (Recursive.num_ports d);
        Alcotest.(check int) "crossbar crosspoints"
          (Wdm_core.Cost.crossbar_crosspoints model ~n:16 ~k:2)
          (Recursive.crosspoints d);
        Alcotest.(check int) "crossbar converters"
          (Wdm_core.Cost.crossbar_converters model ~n:16 ~k:2)
          (Recursive.converters d))
    Wdm_core.Model.all

let test_recursive_three_stage_matches_breakdown () =
  List.iter
    (fun model ->
      match Recursive.design ~stages:3 ~big_n:16 ~k:2 ~output_model:model with
      | Error e -> Alcotest.fail e
      | Ok d ->
        let eval = Conditions.msw_dominant ~n:4 ~r:4 in
        let topo = Topology.make_exn ~n:4 ~m:eval.Conditions.m_min ~r:4 ~k:2 in
        let b = Cost.breakdown ~construction:Network.Msw_dominant ~output_model:model topo in
        Alcotest.(check int) "crosspoints agree" b.Cost.total_crosspoints
          (Recursive.crosspoints d);
        Alcotest.(check int) "converters agree" b.Cost.total_converters
          (Recursive.converters d);
        Alcotest.(check (list int)) "one level" [ eval.Conditions.m_min ]
          (Recursive.middle_modules_per_level d))
    Wdm_core.Model.all

let test_recursive_five_stage () =
  match Recursive.design ~stages:5 ~big_n:64 ~k:2 ~output_model:Wdm_core.Model.MSW with
  | Error e -> Alcotest.fail e
  | Ok d ->
    Alcotest.(check int) "stages" 5 (Recursive.stages d);
    Alcotest.(check int) "ports" 64 (Recursive.num_ports d);
    Alcotest.(check int) "two levels of middles" 2
      (List.length (Recursive.middle_modules_per_level d));
    Alcotest.(check int) "depth" 5 (Recursive.splitting_depth d)

let test_recursive_deeper_saves_crosspoints_at_scale () =
  (* Each extra level multiplies in another Theorem-1 m factor, so
     going deeper only pays off once N is enormous: at N = 4096 the
     5-stage build still loses to the 3-stage one, but at N = 2^24
     (= 4096^2 = 256^3) it wins.  Cost evaluation is pure arithmetic,
     so the big case is cheap. *)
  let xpts stages big_n =
    match Recursive.design ~stages ~big_n ~k:2 ~output_model:Wdm_core.Model.MSW with
    | Ok d -> Recursive.crosspoints d
    | Error e -> Alcotest.fail e
  in
  let x1 = Wdm_core.Cost.crossbar_crosspoints Wdm_core.Model.MSW ~n:4096 ~k:2 in
  Alcotest.(check bool) "3-stage < crossbar at N=4096" true (xpts 3 4096 < x1);
  Alcotest.(check bool) "5-stage > 3-stage at N=4096" true (xpts 5 4096 > xpts 3 4096);
  let big = 4096 * 4096 in
  Alcotest.(check bool) "5-stage < 3-stage at N=2^24" true (xpts 5 big < xpts 3 big)

let test_recursive_validation () =
  Alcotest.(check bool) "even stages" true
    (Result.is_error
       (Recursive.design ~stages:2 ~big_n:16 ~k:2 ~output_model:Wdm_core.Model.MSW));
  Alcotest.(check bool) "non-power N" true
    (Result.is_error
       (Recursive.design ~stages:3 ~big_n:15 ~k:2 ~output_model:Wdm_core.Model.MSW));
  Alcotest.(check bool) "5 stages needs a cube" true
    (Result.is_error
       (Recursive.design ~stages:5 ~big_n:16 ~k:2 ~output_model:Wdm_core.Model.MSW))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_inter_comm; prop_inter_idem; prop_inter_lower_bound; prop_cardinality_antitone ]

let () =
  Alcotest.run "wdm_multistage"
    [
      ( "topology",
        [
          Alcotest.test_case "make" `Quick test_topology_make;
          Alcotest.test_case "port mapping" `Quick test_topology_port_mapping;
        ] );
      ( "multiset",
        [
          Alcotest.test_case "basics" `Quick test_multiset_basics;
          Alcotest.test_case "cardinality = saturation count" `Quick
            test_multiset_cardinality_is_saturation_count;
          Alcotest.test_case "intersection" `Quick test_multiset_inter;
          Alcotest.test_case "k=1 degeneration" `Quick test_multiset_k1_degeneration;
          Alcotest.test_case "add/remove caps" `Quick test_multiset_add_remove;
          Alcotest.test_case "restrict" `Quick test_multiset_restrict;
        ] );
      ( "conditions",
        [
          Alcotest.test_case "Theorem 1 values" `Quick test_theorem1_values;
          Alcotest.test_case "Theorem 1 n=r=2" `Quick test_theorem1_small;
          Alcotest.test_case "Theorem 1 n=1" `Quick test_theorem1_n1;
          Alcotest.test_case "Theorem 2 values" `Quick test_theorem2_values;
          Alcotest.test_case "Theorem 2 >= Theorem 1" `Quick
            test_theorem2_ge_theorem1_unavailability;
          Alcotest.test_case "k=1 collapse" `Quick test_theorem2_k1_equals_theorem1;
          Alcotest.test_case "asymptotic reduction" `Quick test_asymptotic_reduction;
          Alcotest.test_case "monotonicity" `Quick test_condition_monotonicity;
        ] );
      ( "cost-table2",
        [
          Alcotest.test_case "closed form" `Quick test_cost_closed_form_agrees;
          Alcotest.test_case "converter counts" `Quick test_cost_converter_counts;
          Alcotest.test_case "MAW-dominant dearer" `Quick
            test_cost_maw_dominant_more_expensive;
          Alcotest.test_case "MSDW placement remark" `Quick test_msdw_placement_remark;
          Alcotest.test_case "asymptotic scaling envelope" `Quick
            test_asymptotic_crosspoint_scaling;
          Alcotest.test_case "recommended design" `Quick test_recommended_design;
          Alcotest.test_case "non-square rejected" `Quick
            test_recommended_rejects_non_square;
          Alcotest.test_case "multistage beats crossbar" `Quick
            test_multistage_beats_crossbar_eventually;
        ] );
      ( "lemma5-mechanical",
        [
          Alcotest.test_case "bound holds" `Slow test_lemma5_bound_mechanically;
          Alcotest.test_case "bound achievable" `Quick test_lemma5_bound_is_achievable;
        ] );
      ( "recursive",
        [
          Alcotest.test_case "1 stage = crossbar" `Quick
            test_recursive_one_stage_is_crossbar;
          Alcotest.test_case "3 stages = breakdown" `Quick
            test_recursive_three_stage_matches_breakdown;
          Alcotest.test_case "5 stages" `Quick test_recursive_five_stage;
          Alcotest.test_case "deeper saves at scale" `Quick
            test_recursive_deeper_saves_crosspoints_at_scale;
          Alcotest.test_case "validation" `Quick test_recursive_validation;
        ] );
      ("properties", props);
    ]
