(* Tests for the recursive (5/7-stage) routed networks and their
   optical realization: the paper's "built in a recursive fashion"
   exercised end to end. *)

open Wdm_core
open Wdm_multistage

let design ?(output_model = Model.MSW) ~stages ~big_n ~k () =
  match Recursive.design ~stages ~big_n ~k ~output_model with
  | Ok d -> d
  | Error e -> Alcotest.fail e

let churn_sut t =
  {
    Wdm_traffic.Churn.connect =
      (fun c ->
        match Rnetwork.connect t c with
        | Ok route -> Ok route.Rnetwork.base.Network.id
        | Error e -> Error e);
    disconnect = (fun id -> ignore (Rnetwork.disconnect t id));
  }

let spec_of t = Topology.spec (Rnetwork.topology t)

(* --- construction ---------------------------------------------------------- *)

let test_create_five_stage () =
  let d = design ~stages:5 ~big_n:8 ~k:2 () in
  let t = Rnetwork.create ~construction:Network.Msw_dominant d in
  Alcotest.(check int) "stages" 5 (Rnetwork.stages t);
  Alcotest.(check int) "outer ports" 8 (Topology.num_ports (Rnetwork.topology t));
  Alcotest.check_raises "1-stage rejected"
    (Invalid_argument "Rnetwork.create: design must have at least 3 stages")
    (fun () ->
      ignore
        (Rnetwork.create ~construction:Network.Msw_dominant
           (design ~stages:1 ~big_n:8 ~k:2 ())))

let test_three_stage_matches_network () =
  (* With atomic middles the recursive engine must make exactly the
     same decisions as the plain three-stage engine. *)
  let d = design ~stages:3 ~big_n:9 ~k:2 () in
  let rnet = Rnetwork.create ~construction:Network.Msw_dominant d in
  let topo = Rnetwork.topology rnet in
  let plain =
    Network.create ~construction:Network.Msw_dominant ~output_model:Model.MSW topo
  in
  let rng = Random.State.make [| 41 |] in
  let spec = Topology.spec topo in
  for _ = 1 to 300 do
    match
      Wdm_traffic.Generator.random_connection rng spec Model.MSW
        ~fanout:(Wdm_traffic.Fanout.Uniform (1, 4))
        ~free_sources:(Network_spec.inputs spec)
        ~free_dests:(Network_spec.outputs spec)
    with
    | None -> ()
    | Some conn -> (
      let a = Rnetwork.connect rnet conn in
      let b = Network.connect plain conn in
      (match (a, b) with
      | Ok ra, Ok rb ->
        Alcotest.(check bool) "same hops" true
          (List.map (fun (h : Network.hop) -> h.Network.middle)
             ra.Rnetwork.base.Network.hops
          = List.map (fun (h : Network.hop) -> h.Network.middle) rb.Network.hops)
      | Error _, Error _ -> ()
      | _ -> Alcotest.fail "recursive and plain engines disagree");
      (* tear down immediately to keep exploring fresh states *)
      match (a, b) with
      | Ok ra, Ok rb ->
        ignore (Rnetwork.disconnect rnet ra.Rnetwork.base.Network.id);
        ignore (Network.disconnect plain rb.Network.id)
      | _ -> ())
  done

(* --- nonblocking at per-level theorem bounds ------------------------------- *)

let nonblocking_case ~stages ~big_n ~k ~output_model ~construction ~seed () =
  let t =
    Rnetwork.create ~construction (design ~output_model ~stages ~big_n ~k ())
  in
  let blocked_detail = ref None in
  let stats =
    Wdm_traffic.Churn.run
      (Random.State.make [| seed |])
      ~spec:(spec_of t) ~model:output_model
      ~fanout:(Wdm_traffic.Fanout.Zipf { max = big_n; s = 1.1 })
      ~steps:400 ~teardown_bias:0.35
      ~on_blocked:(fun c e ->
        if !blocked_detail = None then
          blocked_detail :=
            Some (Format.asprintf "%a: %a" Connection.pp c Network.pp_error e))
      (churn_sut t)
  in
  (match !blocked_detail with
  | Some d -> Alcotest.fail ("recursive network blocked: " ^ d)
  | None -> ());
  Alcotest.(check int) "no blocking" 0 stats.Wdm_traffic.Churn.blocked;
  Alcotest.(check bool) "traffic flowed" true (stats.Wdm_traffic.Churn.accepted > 20)

let nonblocking_suite =
  [
    Alcotest.test_case "5-stage N=8 k=1 MSW" `Slow
      (nonblocking_case ~stages:5 ~big_n:8 ~k:1 ~output_model:Model.MSW
         ~construction:Network.Msw_dominant ~seed:3);
    Alcotest.test_case "5-stage N=8 k=2 MSW" `Slow
      (nonblocking_case ~stages:5 ~big_n:8 ~k:2 ~output_model:Model.MSW
         ~construction:Network.Msw_dominant ~seed:5);
    Alcotest.test_case "5-stage N=8 k=2 MAW out" `Slow
      (nonblocking_case ~stages:5 ~big_n:8 ~k:2 ~output_model:Model.MAW
         ~construction:Network.Msw_dominant ~seed:7);
    Alcotest.test_case "5-stage N=27 k=2 MSW" `Slow
      (nonblocking_case ~stages:5 ~big_n:27 ~k:2 ~output_model:Model.MSW
         ~construction:Network.Msw_dominant ~seed:9);
    Alcotest.test_case "7-stage N=16 k=2 MSW" `Slow
      (nonblocking_case ~stages:7 ~big_n:16 ~k:2 ~output_model:Model.MSW
         ~construction:Network.Msw_dominant ~seed:11);
    Alcotest.test_case "5-stage N=8 k=2 MAW-dominant" `Slow
      (nonblocking_case ~stages:5 ~big_n:8 ~k:2 ~output_model:Model.MAW
         ~construction:Network.Maw_dominant ~seed:13);
  ]

(* --- teardown hygiene -------------------------------------------------------- *)

let test_disconnect_empties_all_levels () =
  let t =
    Rnetwork.create ~construction:Network.Msw_dominant
      (design ~stages:5 ~big_n:8 ~k:2 ())
  in
  let _ =
    Wdm_traffic.Churn.run (Random.State.make [| 17 |]) ~spec:(spec_of t)
      ~model:Model.MSW
      ~fanout:(Wdm_traffic.Fanout.Uniform (1, 4))
      ~steps:200 ~teardown_bias:0.3 (churn_sut t)
  in
  List.iter
    (fun (r : Rnetwork.route) ->
      ignore (Result.get_ok (Rnetwork.disconnect t r.Rnetwork.base.Network.id)))
    (Rnetwork.active_routes t);
  Alcotest.(check int) "no active routes" 0 (List.length (Rnetwork.active_routes t));
  Alcotest.(check (float 1e-9)) "utilization zero" 0. (Rnetwork.utilization t);
  (* and it still accepts a broadcast afterwards *)
  let all_dests =
    List.init 8 (fun p -> Endpoint.make ~port:(p + 1) ~wl:1)
  in
  match
    Rnetwork.connect t
      (Connection.make_exn ~source:(Endpoint.make ~port:1 ~wl:1)
         ~destinations:all_dests)
  with
  | Ok route ->
    Alcotest.(check bool) "broadcast has nested hops" true
      (route.Rnetwork.subroutes <> [])
  | Error e -> Alcotest.fail (Format.asprintf "%a" Network.pp_error e)

(* --- physical realization ----------------------------------------------------- *)

let physical_case ~stages ~big_n ~k ~output_model ~seed () =
  let d = design ~output_model ~stages ~big_n ~k () in
  let t = Rnetwork.create ~construction:Network.Msw_dominant d in
  let phys = Physical_recursive.create ~construction:Network.Msw_dominant d in
  Alcotest.(check int) "stages agree" stages (Physical_recursive.stages phys);
  Alcotest.(check int) "crosspoints = design cost" (Recursive.crosspoints d)
    (Physical_recursive.crosspoints phys);
  Alcotest.(check int) "converters = design cost" (Recursive.converters d)
    (Physical_recursive.converters phys);
  let _ =
    Wdm_traffic.Churn.run
      (Random.State.make [| seed |])
      ~spec:(spec_of t) ~model:output_model
      ~fanout:(Wdm_traffic.Fanout.Uniform (1, 4))
      ~steps:120 ~teardown_bias:0.3 (churn_sut t)
  in
  let routes = Rnetwork.active_routes t in
  Alcotest.(check bool) "live routes" true (routes <> []);
  match Physical_recursive.realize phys routes with
  | Ok _ -> ()
  | Error f ->
    Alcotest.fail
      (Format.asprintf "optical realization failed: %a"
         Wdm_crossbar.Delivery.pp_failure f)

let physical_suite =
  [
    Alcotest.test_case "5-stage N=8 k=1 optical" `Slow
      (physical_case ~stages:5 ~big_n:8 ~k:1 ~output_model:Model.MSW ~seed:19);
    Alcotest.test_case "5-stage N=8 k=2 optical" `Slow
      (physical_case ~stages:5 ~big_n:8 ~k:2 ~output_model:Model.MSW ~seed:23);
    Alcotest.test_case "5-stage N=8 k=2 MAW out optical" `Slow
      (physical_case ~stages:5 ~big_n:8 ~k:2 ~output_model:Model.MAW ~seed:29);
    Alcotest.test_case "7-stage N=16 k=1 optical" `Slow
      (physical_case ~stages:7 ~big_n:16 ~k:1 ~output_model:Model.MSW ~seed:31);
  ]

let () =
  Alcotest.run "wdm_rnetwork"
    [
      ( "construction",
        [
          Alcotest.test_case "5-stage create" `Quick test_create_five_stage;
          Alcotest.test_case "3-stage = plain Network" `Slow
            test_three_stage_matches_network;
        ] );
      ("nonblocking-per-level", nonblocking_suite);
      ( "teardown",
        [ Alcotest.test_case "empties all levels" `Quick test_disconnect_empties_all_levels ]
      );
      ("physical", physical_suite);
    ]
