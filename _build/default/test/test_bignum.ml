(* Unit and property tests for the arbitrary-precision substrate. *)

open Wdm_bignum

let nat = Alcotest.testable Nat.pp Nat.equal

let check_nat = Alcotest.check nat
let n = Nat.of_int

(* --- unit tests ------------------------------------------------------ *)

let test_of_to_int () =
  List.iter
    (fun i -> Alcotest.(check (option int)) "roundtrip" (Some i) (Nat.to_int_opt (n i)))
    [ 0; 1; 2; 42; 1 lsl 29; (1 lsl 30) - 1; 1 lsl 30; 1 lsl 31; max_int ];
  Alcotest.check_raises "negative" (Invalid_argument "Nat.of_int: negative")
    (fun () -> ignore (Nat.of_int (-1)))

let test_add_sub () =
  check_nat "1+1" (n 2) (Nat.add Nat.one Nat.one);
  check_nat "0+x" (n 77) (Nat.add Nat.zero (n 77));
  check_nat "big add"
    (Nat.of_string "2000000000000000000000")
    (Nat.add (Nat.of_string "1999999999999999999999") Nat.one);
  check_nat "sub" (n 5) (Nat.sub (n 12) (n 7));
  check_nat "sub to zero" Nat.zero (Nat.sub (n 12) (n 12));
  Alcotest.check_raises "negative sub"
    (Invalid_argument "Nat.sub: negative result") (fun () ->
      ignore (Nat.sub (n 3) (n 4)))

let test_mul () =
  check_nat "7*6" (n 42) (Nat.mul (n 7) (n 6));
  check_nat "x*0" Nat.zero (Nat.mul (n 7) Nat.zero);
  check_nat "big mul"
    (Nat.of_string "123456789012345678901234567890000000000")
    (Nat.mul (Nat.of_string "123456789012345678901234567890") (Nat.of_string "1000000000"));
  check_nat "mul_int" (n 999_999_999_999) (Nat.mul_int (n 999_999_999) 1000 |> fun x -> Nat.add x (n 999))

let test_pow () =
  check_nat "2^10" (n 1024) (Nat.pow Nat.two 10);
  check_nat "x^0" Nat.one (Nat.pow (n 999) 0);
  check_nat "0^0" Nat.one (Nat.pow Nat.zero 0);
  check_nat "0^5" Nat.zero (Nat.pow Nat.zero 5);
  check_nat "10^30" (Nat.of_string ("1" ^ String.make 30 '0')) (Nat.pow (n 10) 30)

let test_divmod () =
  let q, r = Nat.divmod (n 1000) (n 7) in
  check_nat "q" (n 142) q;
  check_nat "r" (n 6) r;
  let a = Nat.of_string "981234567890123456789012345678901234567" in
  let b = Nat.of_string "123456789123456789" in
  let q, r = Nat.divmod a b in
  check_nat "recompose" a (Nat.add (Nat.mul q b) r);
  Alcotest.(check bool) "r < b" true (Nat.compare r b < 0);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Nat.divmod (n 5) Nat.zero))

let test_divmod_int () =
  let q, r = Nat.divmod_int (Nat.of_string "12345678901234567890") 97 in
  check_nat "q*97+r"
    (Nat.of_string "12345678901234567890")
    (Nat.add (Nat.mul_int q 97) (n r))

let test_to_string () =
  Alcotest.(check string) "zero" "0" (Nat.to_string Nat.zero);
  Alcotest.(check string) "roundtrip" "98765432109876543210987654321"
    (Nat.to_string (Nat.of_string "98765432109876543210987654321"));
  Alcotest.(check string) "underscores" "1000000"
    (Nat.to_string (Nat.of_string "1_000_000"))

let test_shift () =
  check_nat "shl" (n 4096) (Nat.shift_left Nat.one 12);
  check_nat "shr" (n 1) (Nat.shift_right (n 4096) 12);
  check_nat "shr underflow" Nat.zero (Nat.shift_right (n 4096) 13);
  let big = Nat.pow Nat.two 200 in
  check_nat "shl/shr inverse" big (Nat.shift_right (Nat.shift_left big 67) 67)

let test_num_bits_digits () =
  Alcotest.(check int) "bits 0" 0 (Nat.num_bits Nat.zero);
  Alcotest.(check int) "bits 1" 1 (Nat.num_bits Nat.one);
  Alcotest.(check int) "bits 1024" 11 (Nat.num_bits (n 1024));
  Alcotest.(check int) "bits 2^100" 101 (Nat.num_bits (Nat.pow Nat.two 100));
  Alcotest.(check int) "digits 0" 1 (Nat.num_digits Nat.zero);
  Alcotest.(check int) "digits 10^30" 31 (Nat.num_digits (Nat.pow (n 10) 30))

let test_log10 () =
  let approx_eq a b = Float.abs (a -. b) < 1e-9 in
  Alcotest.(check bool) "log10 1000" true (approx_eq (Nat.log10 (n 1000)) 3.);
  let huge = Nat.pow (n 10) 500 in
  Alcotest.(check bool) "log10 10^500" true
    (Float.abs (Nat.log10 huge -. 500.) < 1e-6)

let test_pp_approx () =
  Alcotest.(check string) "small" "123456"
    (Format.asprintf "%a" Nat.pp_approx (n 123456));
  Alcotest.(check string) "large" "1.234e+15"
    (Format.asprintf "%a" Nat.pp_approx (Nat.of_string "1234567890123456"))

let test_limb_boundaries () =
  (* adversarial carries/borrows around the 2^30 limb base *)
  let b30 = Nat.pow Nat.two 30 in
  let m = Nat.pred b30 in
  (* (2^30-1)^2 = 2^60 - 2^31 + 1: full cross-limb carry *)
  check_nat "max-limb square"
    (Nat.add (Nat.sub (Nat.pow Nat.two 60) (Nat.pow Nat.two 31)) Nat.one)
    (Nat.mul m m);
  (* long borrow chain: 2^300 - 1 *)
  let big = Nat.pow Nat.two 300 in
  let bigm1 = Nat.pred big in
  check_nat "borrow chain round trip" big (Nat.succ bigm1);
  Alcotest.(check int) "2^300-1 has 300 bits" 300 (Nat.num_bits bigm1);
  (* division identities *)
  check_nat "x / 1" bigm1 (Nat.div bigm1 Nat.one);
  check_nat "x / x" Nat.one (Nat.div bigm1 bigm1);
  check_nat "x mod x" Nat.zero (Nat.rem bigm1 bigm1);
  (* shifts at exact limb multiples *)
  check_nat "shift at limb multiple" (Nat.pow Nat.two 90)
    (Nat.shift_left Nat.one 90);
  check_nat "shr at limb multiple" Nat.one
    (Nat.shift_right (Nat.pow Nat.two 90) 90);
  Alcotest.check_raises "divexact inexact"
    (Invalid_argument "Nat.divexact: inexact division") (fun () ->
      ignore (Nat.divexact (n 7) (n 2)))

let test_min_max_sum_product () =
  check_nat "min" (n 3) (Nat.min (n 3) (n 5));
  check_nat "max" (n 5) (Nat.max (n 3) (n 5));
  check_nat "sum" (n 10) (Nat.sum [ n 1; n 2; n 3; n 4 ]);
  check_nat "sum empty" Nat.zero (Nat.sum []);
  check_nat "product" (n 24) (Nat.product [ n 1; n 2; n 3; n 4 ]);
  check_nat "product empty" Nat.one (Nat.product [])

(* --- combinatorics ---------------------------------------------------- *)

let test_factorial () =
  check_nat "0!" Nat.one (Combinatorics.factorial 0);
  check_nat "5!" (n 120) (Combinatorics.factorial 5);
  check_nat "20!" (Nat.of_string "2432902008176640000") (Combinatorics.factorial 20);
  check_nat "50!"
    (Nat.of_string "30414093201713378043612608166064768844377641568960512000000000000")
    (Combinatorics.factorial 50)

let test_falling () =
  check_nat "P(x,0)" Nat.one (Combinatorics.falling 5 0);
  check_nat "P(5,2)" (n 20) (Combinatorics.falling 5 2);
  check_nat "P(5,5)" (n 120) (Combinatorics.falling 5 5);
  check_nat "P(5,6)=0" Nat.zero (Combinatorics.falling 5 6);
  check_nat "P(0,0)" Nat.one (Combinatorics.falling 0 0)

let test_binomial () =
  check_nat "C(5,2)" (n 10) (Combinatorics.binomial 5 2);
  check_nat "C(5,0)" Nat.one (Combinatorics.binomial 5 0);
  check_nat "C(5,6)" Nat.zero (Combinatorics.binomial 5 6);
  check_nat "C(50,25)" (Nat.of_string "126410606437752") (Combinatorics.binomial 50 25)

let test_stirling2 () =
  check_nat "S(0,0)" Nat.one (Combinatorics.stirling2 0 0);
  check_nat "S(3,0)" Nat.zero (Combinatorics.stirling2 3 0);
  check_nat "S(3,2)" (n 3) (Combinatorics.stirling2 3 2);
  check_nat "S(4,2)" (n 7) (Combinatorics.stirling2 4 2);
  check_nat "S(5,3)" (n 25) (Combinatorics.stirling2 5 3);
  check_nat "S(10,5)" (n 42525) (Combinatorics.stirling2 10 5);
  (* sum_j S(n,j) * P(n, j) = n^n: surjection decomposition used in the
     paper's k = 1 sanity check of Lemma 3 *)
  let lhs =
    List.init 10 (fun j ->
        Nat.mul (Combinatorics.stirling2 10 (j + 1)) (Combinatorics.falling 10 (j + 1)))
    |> Nat.sum
  in
  check_nat "sum S*P = n^n" (Combinatorics.power 10 10) lhs

(* --- properties ------------------------------------------------------- *)

let small_int = QCheck.Gen.int_range 0 1_000_000

let nat_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map Nat.of_int small_int);
        ( 2,
          map2 (fun a b -> Nat.mul (Nat.of_int a) (Nat.of_int b)) small_int small_int
        );
        ( 1,
          map2 (fun a e -> Nat.pow (Nat.of_int (a + 2)) (e mod 40)) small_int
            (int_range 0 40) );
      ])

let arb_nat = QCheck.make ~print:Nat.to_string nat_gen

let prop_add_comm =
  QCheck.Test.make ~name:"add commutative" ~count:200 (QCheck.pair arb_nat arb_nat)
    (fun (a, b) -> Nat.equal (Nat.add a b) (Nat.add b a))

let prop_add_assoc =
  QCheck.Test.make ~name:"add associative" ~count:200
    (QCheck.triple arb_nat arb_nat arb_nat) (fun (a, b, c) ->
      Nat.equal (Nat.add a (Nat.add b c)) (Nat.add (Nat.add a b) c))

let prop_mul_comm =
  QCheck.Test.make ~name:"mul commutative" ~count:200 (QCheck.pair arb_nat arb_nat)
    (fun (a, b) -> Nat.equal (Nat.mul a b) (Nat.mul b a))

let prop_mul_assoc =
  QCheck.Test.make ~name:"mul associative" ~count:100
    (QCheck.triple arb_nat arb_nat arb_nat) (fun (a, b, c) ->
      Nat.equal (Nat.mul a (Nat.mul b c)) (Nat.mul (Nat.mul a b) c))

let prop_distrib =
  QCheck.Test.make ~name:"mul distributes over add" ~count:100
    (QCheck.triple arb_nat arb_nat arb_nat) (fun (a, b, c) ->
      Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)))

let prop_sub_add =
  QCheck.Test.make ~name:"(a+b)-b = a" ~count:200 (QCheck.pair arb_nat arb_nat)
    (fun (a, b) -> Nat.equal a (Nat.sub (Nat.add a b) b))

let prop_divmod =
  QCheck.Test.make ~name:"divmod recomposition" ~count:200
    (QCheck.pair arb_nat arb_nat) (fun (a, b) ->
      QCheck.assume (not (Nat.is_zero b));
      let q, r = Nat.divmod a b in
      Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.compare r b < 0)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"to_string/of_string roundtrip" ~count:200 arb_nat
    (fun a -> Nat.equal a (Nat.of_string (Nat.to_string a)))

let prop_compare_int =
  QCheck.Test.make ~name:"compare agrees with int compare" ~count:500
    (QCheck.pair (QCheck.make small_int) (QCheck.make small_int)) (fun (a, b) ->
      Int.compare a b = Nat.compare (Nat.of_int a) (Nat.of_int b))

let prop_pow_matches_int =
  QCheck.Test.make ~name:"pow agrees with int_pow_opt" ~count:200
    (QCheck.pair (QCheck.make (QCheck.Gen.int_range 0 20))
       (QCheck.make (QCheck.Gen.int_range 0 12))) (fun (b, e) ->
      match Combinatorics.int_pow_opt b e with
      | None -> true
      | Some v -> Nat.equal (Nat.of_int v) (Nat.pow (Nat.of_int b) e))

let prop_binomial_pascal =
  QCheck.Test.make ~name:"Pascal's rule" ~count:200
    (QCheck.pair (QCheck.make (QCheck.Gen.int_range 1 60))
       (QCheck.make (QCheck.Gen.int_range 1 60))) (fun (n', r) ->
      let open Combinatorics in
      Nat.equal (binomial n' r)
        (Nat.add (binomial (n' - 1) r) (binomial (n' - 1) (r - 1))))

let prop_stirling_total =
  QCheck.Test.make ~name:"sum_j S(n,j) j! C(x,j) identity at x=n" ~count:50
    (QCheck.make (QCheck.Gen.int_range 1 12)) (fun m ->
      (* n^n = sum_j P(n,j) S(n,j) *)
      let lhs = Combinatorics.power m m in
      let rhs =
        List.init m (fun j ->
            Nat.mul (Combinatorics.falling m (j + 1)) (Combinatorics.stirling2 m (j + 1)))
        |> Nat.sum
      in
      Nat.equal lhs rhs)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_add_comm;
      prop_add_assoc;
      prop_mul_comm;
      prop_mul_assoc;
      prop_distrib;
      prop_sub_add;
      prop_divmod;
      prop_string_roundtrip;
      prop_compare_int;
      prop_pow_matches_int;
      prop_binomial_pascal;
      prop_stirling_total;
    ]

let () =
  Alcotest.run "wdm_bignum"
    [
      ( "nat-units",
        [
          Alcotest.test_case "of_int/to_int" `Quick test_of_to_int;
          Alcotest.test_case "add/sub" `Quick test_add_sub;
          Alcotest.test_case "mul" `Quick test_mul;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "divmod" `Quick test_divmod;
          Alcotest.test_case "divmod_int" `Quick test_divmod_int;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "shift" `Quick test_shift;
          Alcotest.test_case "num_bits/digits" `Quick test_num_bits_digits;
          Alcotest.test_case "log10" `Quick test_log10;
          Alcotest.test_case "pp_approx" `Quick test_pp_approx;
          Alcotest.test_case "limb boundaries" `Quick test_limb_boundaries;
          Alcotest.test_case "min/max/sum/product" `Quick test_min_max_sum_product;
        ] );
      ( "combinatorics",
        [
          Alcotest.test_case "factorial" `Quick test_factorial;
          Alcotest.test_case "falling" `Quick test_falling;
          Alcotest.test_case "binomial" `Quick test_binomial;
          Alcotest.test_case "stirling2" `Quick test_stirling2;
        ] );
      ("properties", props);
    ]
