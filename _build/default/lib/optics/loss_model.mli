(** Insertion-loss parameters for the optical components.

    Splitters and combiners are passive: an ideal [1 x f] splitter divides
    power [f] ways ([10 log10 f] dB) plus an excess loss; an [f x 1]
    combiner likewise.  SOA gates, converters and (de)multiplexers add
    fixed insertion losses.  Defaults are representative values from the
    literature of the period; they only affect reported power budgets,
    never connectivity. *)

type t = {
  splitter_excess_db : float;
  combiner_excess_db : float;
  gate_insertion_db : float;  (** SOA gates typically provide gain; we
                                  model net insertion loss, default 0 *)
  gate_extinction_db : float option;
      (** [Some x]: an off gate leaks light attenuated by a further
          [x] dB (marked as crosstalk); [None] (the default): ideal
          gates absorb completely.  SOA extinction ratios of 25-40 dB
          are typical of the period. *)
  converter_db : float;
  mux_db : float;
  demux_db : float;
}

val default : t
val lossless : t
(** All-zero losses: propagation then reports pure split/combine ratios. *)

val leaky : ?extinction_db:float -> unit -> t
(** {!default} with finite gate extinction (default 30 dB), enabling
    crosstalk accounting. *)

val splitting_loss : t -> fanout:int -> float
(** [10 log10 fanout + excess], 0 when [fanout <= 1] plus excess. *)

val combining_loss : t -> fanin:int -> float
