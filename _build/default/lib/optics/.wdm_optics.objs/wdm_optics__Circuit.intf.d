lib/optics/circuit.mli: Format Loss_model Signal
