lib/optics/loss_model.mli:
