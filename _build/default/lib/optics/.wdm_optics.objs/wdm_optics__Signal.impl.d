lib/optics/signal.ml: Bool Float Format String
