lib/optics/signal.mli: Format
