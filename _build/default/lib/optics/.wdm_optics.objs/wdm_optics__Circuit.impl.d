lib/optics/circuit.ml: Array Buffer Format Hashtbl List Loss_model Option Printf Queue Signal String
