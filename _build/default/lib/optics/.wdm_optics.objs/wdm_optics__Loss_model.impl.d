lib/optics/loss_model.ml:
