type t = {
  origin : string;
  wl : int;
  power_db : float;
  gates_passed : int;
  hops : int;
  leakage : bool;
}

let inject ~origin ~wl =
  { origin; wl; power_db = 0.; gates_passed = 0; hops = 0; leakage = false }
let attenuate s loss_db = { s with power_db = s.power_db -. loss_db }

let through_gate s ~loss_db =
  {
    s with
    power_db = s.power_db -. loss_db;
    gates_passed = s.gates_passed + 1;
    hops = s.hops + 1;
  }

let through_component s ~loss_db =
  { s with power_db = s.power_db -. loss_db; hops = s.hops + 1 }

let with_wl s wl = { s with wl }
let as_leakage s = { s with leakage = true }
let linear_power s = 10. ** (s.power_db /. 10.)

let equal a b =
  String.equal a.origin b.origin
  && a.wl = b.wl
  && Float.equal a.power_db b.power_db
  && a.gates_passed = b.gates_passed
  && a.hops = b.hops
  && Bool.equal a.leakage b.leakage

let pp ppf s =
  Format.fprintf ppf "%s@l%d%s (%.2f dB, %d gates, %d hops)" s.origin s.wl
    (if s.leakage then "~leak" else "")
    s.power_db s.gates_passed s.hops
