type node_id = int

type kind =
  | Source of string
  | Sink of string
  | Splitter of int
  | Combiner of int
  | Gate
  | Converter
  | Demux of int
  | Mux of int

type error =
  | Wavelength_clash of { node : node_id; wl : int; origins : string list }
  | Combiner_collision of { node : node_id; origins : string list }
  | Demux_out_of_range of { node : node_id; wl : int }
  | Conversion_out_of_range of {
      node : node_id;
      from_wl : int;
      to_wl : int;
      range : int;
    }

type node = {
  kind : kind;
  outs : (node_id * int) option array;  (* per output slot: (dst, dst_in_slot) *)
  in_degree : int;
}

type t = {
  loss : Loss_model.t;
  mutable nodes : node array;
  mutable n : int;
  gates : (node_id, bool) Hashtbl.t;
  converters : (node_id, int) Hashtbl.t;
  converter_ranges : (node_id, int) Hashtbl.t;  (* absent = unlimited *)
  injected : (node_id, Signal.t list) Hashtbl.t;
  (* (dst, dst_in_slot) already wired, to reject double connections *)
  wired_inputs : (node_id * int, unit) Hashtbl.t;
}

let out_slots = function
  | Source _ -> 1
  | Sink _ -> 0
  | Splitter f -> f
  | Combiner _ -> 1
  | Gate -> 1
  | Converter -> 1
  | Demux k -> k
  | Mux _ -> 1

let in_slots = function
  | Source _ -> 0
  | Sink _ -> 1
  | Splitter _ -> 1
  | Combiner f -> f
  | Gate -> 1
  | Converter -> 1
  | Demux _ -> 1
  | Mux k -> k

let create ?(loss = Loss_model.default) () =
  {
    loss;
    nodes = Array.make 16 { kind = Gate; outs = [||]; in_degree = 0 };
    n = 0;
    gates = Hashtbl.create 64;
    converters = Hashtbl.create 16;
    converter_ranges = Hashtbl.create 16;
    injected = Hashtbl.create 16;
    wired_inputs = Hashtbl.create 64;
  }

let add t kind =
  (match kind with
  | Splitter f | Combiner f | Demux f | Mux f ->
    if f < 1 then invalid_arg "Circuit: component arity must be >= 1"
  | Source _ | Sink _ | Gate | Converter -> ());
  if t.n = Array.length t.nodes then begin
    let bigger = Array.make (2 * t.n) t.nodes.(0) in
    Array.blit t.nodes 0 bigger 0 t.n;
    t.nodes <- bigger
  end;
  let id = t.n in
  t.nodes.(id) <- { kind; outs = Array.make (out_slots kind) None; in_degree = 0 };
  t.n <- t.n + 1;
  id

let add_source t label = add t (Source label)
let add_sink t label = add t (Sink label)
let add_splitter t f = add t (Splitter f)
let add_combiner t f = add t (Combiner f)
let add_gate t = add t Gate
let add_converter ?range t =
  let id = add t Converter in
  (match range with
  | Some d ->
    if d < 0 then invalid_arg "Circuit.add_converter: negative range";
    Hashtbl.replace t.converter_ranges id d
  | None -> ());
  id
let add_demux t k = add t (Demux k)
let add_mux t k = add t (Mux k)

let check_id t id name =
  if id < 0 || id >= t.n then invalid_arg ("Circuit: bad node id in " ^ name)

let connect t a slot_a b slot_b =
  check_id t a "connect";
  check_id t b "connect";
  let na = t.nodes.(a) and nb = t.nodes.(b) in
  if slot_a < 0 || slot_a >= Array.length na.outs then
    invalid_arg "Circuit.connect: bad output slot";
  if slot_b < 0 || slot_b >= in_slots nb.kind then
    invalid_arg "Circuit.connect: bad input slot";
  if na.outs.(slot_a) <> None then
    invalid_arg "Circuit.connect: output slot already wired";
  if Hashtbl.mem t.wired_inputs (b, slot_b) then
    invalid_arg "Circuit.connect: input slot already wired";
  na.outs.(slot_a) <- Some (b, slot_b);
  Hashtbl.add t.wired_inputs (b, slot_b) ();
  t.nodes.(b) <- { nb with in_degree = nb.in_degree + 1 }

let set_gate t id on =
  check_id t id "set_gate";
  (match t.nodes.(id).kind with
  | Gate -> ()
  | _ -> invalid_arg "Circuit.set_gate: not a gate");
  if on then Hashtbl.replace t.gates id true else Hashtbl.remove t.gates id

let set_converter t id target =
  check_id t id "set_converter";
  (match t.nodes.(id).kind with
  | Converter -> ()
  | _ -> invalid_arg "Circuit.set_converter: not a converter");
  match target with
  | Some wl ->
    if wl < 1 then invalid_arg "Circuit.set_converter: wavelength must be >= 1";
    Hashtbl.replace t.converters id wl
  | None -> Hashtbl.remove t.converters id

let inject t id signals =
  check_id t id "inject";
  (match t.nodes.(id).kind with
  | Source _ -> ()
  | _ -> invalid_arg "Circuit.inject: not a source");
  Hashtbl.replace t.injected id signals

let reset_configuration t =
  Hashtbl.reset t.gates;
  Hashtbl.reset t.converters;
  Hashtbl.reset t.injected

type outcome = { deliveries : (string * Signal.t list) list; errors : error list }

let topological_order t =
  let indeg = Array.make t.n 0 in
  for id = 0 to t.n - 1 do
    indeg.(id) <- t.nodes.(id).in_degree
  done;
  let queue = Queue.create () in
  for id = 0 to t.n - 1 do
    if indeg.(id) = 0 then Queue.add id queue
  done;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    order := id :: !order;
    incr seen;
    Array.iter
      (function
        | None -> ()
        | Some (dst, _) ->
          indeg.(dst) <- indeg.(dst) - 1;
          if indeg.(dst) = 0 then Queue.add dst queue)
      t.nodes.(id).outs
  done;
  if !seen <> t.n then invalid_arg "Circuit.propagate: circuit has a cycle";
  List.rev !order

let propagate t =
  let order = topological_order t in
  (* incoming.(id) = signals per input slot *)
  let incoming = Array.init t.n (fun id -> Array.make (in_slots t.nodes.(id).kind) []) in
  let errors = ref [] in
  let deliveries = ref [] in
  let send id slot signal =
    match t.nodes.(id).outs.(slot) with
    | None -> () (* dangling output: light leaves the fabric *)
    | Some (dst, dst_slot) ->
      incoming.(dst).(dst_slot) <- signal :: incoming.(dst).(dst_slot)
  in
  let check_clash id (signals : Signal.t list) =
    (* No fiber (or component aperture) may carry two PAYLOAD signals on
       one wavelength; leakage is low-power noise and may overlap. *)
    let by_wl = Hashtbl.create 4 in
    List.iter
      (fun (s : Signal.t) ->
        if not s.leakage then begin
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_wl s.wl) in
          Hashtbl.replace by_wl s.wl (s.origin :: prev)
        end)
      signals;
    Hashtbl.iter
      (fun wl origins ->
        if List.length origins > 1 then
          errors := Wavelength_clash { node = id; wl; origins } :: !errors)
      by_wl
  in
  List.iter
    (fun id ->
      let node = t.nodes.(id) in
      let ins = incoming.(id) in
      let all_in = Array.to_list ins |> List.concat in
      match node.kind with
      | Source _ ->
        let signals = Option.value ~default:[] (Hashtbl.find_opt t.injected id) in
        check_clash id signals;
        List.iter (send id 0) signals
      | Sink label ->
        check_clash id all_in;
        if all_in <> [] then deliveries := (label, all_in) :: !deliveries
      | Splitter f ->
        check_clash id all_in;
        let loss = Loss_model.splitting_loss t.loss ~fanout:f in
        List.iter
          (fun s ->
            let s = Signal.through_component s ~loss_db:loss in
            for slot = 0 to f - 1 do
              send id slot s
            done)
          all_in
      | Combiner f ->
        (* The paper's combiner: at most one input may carry a payload
           signal at a time (leakage noise inevitably co-arrives). *)
        (match List.filter (fun (s : Signal.t) -> not s.leakage) all_in with
        | [] | [ _ ] -> ()
        | payload ->
          errors :=
            Combiner_collision
              { node = id; origins = List.map (fun (s : Signal.t) -> s.origin) payload }
            :: !errors);
        let loss = Loss_model.combining_loss t.loss ~fanin:f in
        List.iter (fun s -> send id 0 (Signal.through_component s ~loss_db:loss)) all_in
      | Gate ->
        check_clash id all_in;
        if Hashtbl.mem t.gates id then
          List.iter
            (fun s -> send id 0 (Signal.through_gate s ~loss_db:t.loss.gate_insertion_db))
            all_in
        else begin
          (* an off gate absorbs, unless it has finite extinction, in
             which case attenuated light leaks through as crosstalk *)
          match t.loss.Loss_model.gate_extinction_db with
          | None -> ()
          | Some extinction ->
            List.iter
              (fun s ->
                send id 0
                  (Signal.as_leakage
                     (Signal.through_gate s
                        ~loss_db:(t.loss.gate_insertion_db +. extinction))))
              all_in
        end
      | Converter ->
        check_clash id all_in;
        let target = Hashtbl.find_opt t.converters id in
        let range = Hashtbl.find_opt t.converter_ranges id in
        List.iter
          (fun (s : Signal.t) ->
            let s' = Signal.through_component s ~loss_db:t.loss.converter_db in
            match target with
            | None -> send id 0 s'
            | Some wl -> (
              match range with
              | Some d when abs (s.wl - wl) > d ->
                (* leakage noise out of range is silently lost; a
                   payload signal is a configuration error *)
                if not s.leakage then
                  errors :=
                    Conversion_out_of_range
                      { node = id; from_wl = s.wl; to_wl = wl; range = d }
                    :: !errors
              | _ -> send id 0 (Signal.with_wl s' wl)))
          all_in
      | Demux k ->
        check_clash id all_in;
        List.iter
          (fun (s : Signal.t) ->
            if s.wl < 1 || s.wl > k then
              errors := Demux_out_of_range { node = id; wl = s.wl } :: !errors
            else
              send id (s.wl - 1) (Signal.through_component s ~loss_db:t.loss.demux_db))
          all_in
      | Mux _ ->
        check_clash id all_in;
        List.iter
          (fun s -> send id 0 (Signal.through_component s ~loss_db:t.loss.mux_db))
          all_in)
    order;
  { deliveries = List.rev !deliveries; errors = List.rev !errors }

let kind_of t id =
  check_id t id "kind_of";
  t.nodes.(id).kind

let size t = t.n

let count t pred =
  let c = ref 0 in
  for id = 0 to t.n - 1 do
    if pred t.nodes.(id).kind then incr c
  done;
  !c

let num_gates t = count t (function Gate -> true | _ -> false)
let num_converters t = count t (function Converter -> true | _ -> false)
let num_splitters t = count t (function Splitter _ -> true | _ -> false)
let num_combiners t = count t (function Combiner _ -> true | _ -> false)

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph circuit {\n  rankdir=LR;\n  node [fontsize=9];\n";
  for id = 0 to t.n - 1 do
    let label, shape =
      match t.nodes.(id).kind with
      | Source s -> (Printf.sprintf "src %s" s, "rarrow")
      | Sink s -> (Printf.sprintf "sink %s" s, "larrow")
      | Splitter f -> (Printf.sprintf "1x%d split" f, "triangle")
      | Combiner f -> (Printf.sprintf "%dx1 comb" f, "invtriangle")
      | Gate ->
        ((if Hashtbl.mem t.gates id then "gate ON" else "gate off"), "box")
      | Converter -> (
        ( (match Hashtbl.find_opt t.converters id with
          | Some wl -> Printf.sprintf "conv->l%d" wl
          | None -> "conv (pass)"),
          "diamond" ))
      | Demux k -> (Printf.sprintf "demux x%d" k, "house")
      | Mux k -> (Printf.sprintf "mux x%d" k, "invhouse")
    in
    let style =
      match t.nodes.(id).kind with
      | Gate when Hashtbl.mem t.gates id -> ", style=filled, fillcolor=lightgreen"
      | Gate -> ", style=filled, fillcolor=lightgray"
      | _ -> ""
    in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\", shape=%s%s];\n" id label shape style)
  done;
  for id = 0 to t.n - 1 do
    Array.iteri
      (fun slot dst ->
        match dst with
        | None -> ()
        | Some (to_id, to_slot) ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [taillabel=\"%d\", headlabel=\"%d\", fontsize=7];\n"
               id to_id slot to_slot))
      t.nodes.(id).outs
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp_error ppf = function
  | Wavelength_clash { node; wl; origins } ->
    Format.fprintf ppf "wavelength clash at node %d on l%d (origins: %s)" node wl
      (String.concat ", " origins)
  | Combiner_collision { node; origins } ->
    Format.fprintf ppf "combiner collision at node %d (origins: %s)" node
      (String.concat ", " origins)
  | Demux_out_of_range { node; wl } ->
    Format.fprintf ppf "demux %d cannot route wavelength l%d" node wl
  | Conversion_out_of_range { node; from_wl; to_wl; range } ->
    Format.fprintf ppf
      "converter %d (range %d) cannot shift l%d to l%d" node range from_wl
      to_wl
