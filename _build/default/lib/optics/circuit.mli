(** Optical circuits: directed graphs of WDM components.

    A circuit is a DAG of typed components joined by fibers.  Build it
    with the [add_*] functions and {!connect}, configure the active
    elements ({!set_gate}, {!set_converter}, {!inject}), then
    {!propagate} to push every injected signal through the fabric.

    Propagation enforces the physical preconditions from Section 2.1 of
    the paper:
    - a fiber never carries two signals on the same wavelength
      ({!error.Wavelength_clash});
    - at most one input of a combiner carries a signal at a time
      ({!error.Combiner_collision}) — combiners are not multiplexers;
    - a demultiplexer only accepts wavelengths within its range.

    Off gates absorb light; dangling outputs drop it (both silently —
    that is what the hardware does). *)

type t

type node_id = private int

type kind =
  | Source of string  (** label; 1 output, emits injected signals *)
  | Sink of string  (** label; 1 input, records arrivals *)
  | Splitter of int  (** fanout f: 1 input, f outputs *)
  | Combiner of int  (** fanin f: f inputs, 1 output *)
  | Gate  (** SOA crosspoint: 1 in, 1 out; on/off *)
  | Converter  (** 1 in, 1 out; maps wavelength *)
  | Demux of int  (** 1 in, k outputs, routes by wavelength *)
  | Mux of int  (** k inputs, 1 output *)

type error =
  | Wavelength_clash of { node : node_id; wl : int; origins : string list }
      (** two signals on one wavelength entering the same component *)
  | Combiner_collision of { node : node_id; origins : string list }
  | Demux_out_of_range of { node : node_id; wl : int }
  | Conversion_out_of_range of {
      node : node_id;
      from_wl : int;
      to_wl : int;
      range : int;
    }
      (** a limited-range converter was asked to shift further than it
          can (Section 2.1 assumes full-range converters; this error
          appears only when a fabric is built with [?converter_range]) *)

val create : ?loss:Loss_model.t -> unit -> t

val add_source : t -> string -> node_id
val add_sink : t -> string -> node_id
val add_splitter : t -> int -> node_id
val add_combiner : t -> int -> node_id
val add_gate : t -> node_id
val add_converter : ?range:int -> t -> node_id
(** [range] (default: unlimited) bounds the wavelength shift the device
    can perform: a converter with range [d] maps [w] to targets within
    [|w - target| <= d].  Shifting further is reported at propagation
    time as {!error.Conversion_out_of_range}. *)

val add_demux : t -> int -> node_id
val add_mux : t -> int -> node_id

val connect : t -> node_id -> int -> node_id -> int -> unit
(** [connect t a slot_a b slot_b] runs a fiber from output slot [slot_a]
    of [a] to input slot [slot_b] of [b].  Slots are 0-based.
    @raise Invalid_argument on bad slots or double connection. *)

val set_gate : t -> node_id -> bool -> unit
(** Turn an SOA gate on (transparent) or off (absorbing; default). *)

val set_converter : t -> node_id -> int option -> unit
(** [Some wl] converts any passing signal to wavelength [wl];
    [None] (default) passes signals through unchanged. *)

val inject : t -> node_id -> Signal.t list -> unit
(** Replace the signals a source emits. *)

val reset_configuration : t -> unit
(** All gates off, converters to pass-through, injected signals cleared
    — the quiescent fabric.  The topology is untouched. *)

type outcome = {
  deliveries : (string * Signal.t list) list;
      (** per sink label, the signals that arrived (any wavelengths) *)
  errors : error list;
}

val propagate : t -> outcome
(** Pushes all injected signals through the circuit in topological
    order.  @raise Invalid_argument if the circuit has a cycle. *)

val kind_of : t -> node_id -> kind
val size : t -> int
val count : t -> (kind -> bool) -> int

val num_gates : t -> int
(** The circuit's crosspoint count — the paper's cost measure. *)

val num_converters : t -> int
val num_splitters : t -> int
val num_combiners : t -> int

val pp_error : Format.formatter -> error -> unit

val to_dot : t -> string
(** Graphviz rendering of the circuit: component nodes (gates carry
    their on/off state, converters their target wavelength) and fiber
    edges.  Handy for inspecting small fabrics:
    [dune exec ... | dot -Tsvg > fabric.svg]. *)
