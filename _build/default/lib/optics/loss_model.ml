type t = {
  splitter_excess_db : float;
  combiner_excess_db : float;
  gate_insertion_db : float;
  gate_extinction_db : float option;
  converter_db : float;
  mux_db : float;
  demux_db : float;
}

let default =
  {
    splitter_excess_db = 0.5;
    combiner_excess_db = 0.5;
    gate_insertion_db = 1.0;
    gate_extinction_db = None;
    converter_db = 2.0;
    mux_db = 1.5;
    demux_db = 1.5;
  }

let leaky ?(extinction_db = 30.) () =
  { default with gate_extinction_db = Some extinction_db }

let lossless =
  {
    splitter_excess_db = 0.;
    combiner_excess_db = 0.;
    gate_insertion_db = 0.;
    gate_extinction_db = None;
    converter_db = 0.;
    mux_db = 0.;
    demux_db = 0.;
  }

let ratio_db n = if n <= 1 then 0. else 10. *. log10 (float_of_int n)
let splitting_loss t ~fanout = ratio_db fanout +. t.splitter_excess_db
let combining_loss t ~fanin = ratio_db fanin +. t.combiner_excess_db
