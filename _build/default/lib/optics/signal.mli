(** Optical signals.

    A signal is light on one wavelength carrying one message.  We track
    where it was injected (an opaque origin label, e.g. the source
    endpoint), its current wavelength (converters change it), its power
    relative to injection, and how many crosspoints (SOA gates) and
    components it has traversed — the paper uses the crosspoint count as
    a proxy for crosstalk and power loss. *)

type t = {
  origin : string;  (** label of the injecting source endpoint *)
  wl : int;  (** current wavelength, 1-based *)
  power_db : float;  (** cumulative power relative to injection (<= 0) *)
  gates_passed : int;  (** SOA gates traversed so far *)
  hops : int;  (** total components traversed *)
  leakage : bool;
      (** true once the signal has crossed an {e off} gate with finite
          extinction: it is crosstalk noise, not payload.  Leakage is
          exempt from collision/clash checks and from delivery
          verification, but contributes to crosstalk margins. *)
}

val inject : origin:string -> wl:int -> t
(** A fresh (payload) signal at 0 dB. *)

val attenuate : t -> float -> t
(** [attenuate s loss_db] subtracts a non-negative loss. *)

val through_gate : t -> loss_db:float -> t
val through_component : t -> loss_db:float -> t
val with_wl : t -> int -> t

val as_leakage : t -> t
(** Mark as crosstalk noise (monotone: never unset). *)

val linear_power : t -> float
(** [10^(power_db / 10)], for summing noise contributions. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
