lib/analysis/table.ml: Buffer List Stdlib String
