lib/analysis/table2.mli: Table
