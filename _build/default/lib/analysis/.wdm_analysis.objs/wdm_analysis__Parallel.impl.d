lib/analysis/parallel.ml: Array Atomic Domain List Option Stdlib
