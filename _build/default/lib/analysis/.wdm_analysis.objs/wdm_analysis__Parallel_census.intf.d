lib/analysis/parallel_census.mli: Enumerate Model Network_spec Wdm_core
