lib/analysis/adversary.ml: Conditions Connection Endpoint Format Hashtbl Int List Model Network Network_spec Option Printf Queue Result String Topology Wdm_core Wdm_multistage
