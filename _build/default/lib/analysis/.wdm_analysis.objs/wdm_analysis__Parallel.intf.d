lib/analysis/parallel.mli:
