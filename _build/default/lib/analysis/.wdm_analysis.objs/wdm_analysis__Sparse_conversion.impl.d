lib/analysis/sparse_conversion.ml: Capacity Enumerate Fun List Model Network_spec Printf Table Wdm_bignum Wdm_core Wdm_crossbar
