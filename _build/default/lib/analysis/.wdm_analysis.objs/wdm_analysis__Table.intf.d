lib/analysis/table.mli:
