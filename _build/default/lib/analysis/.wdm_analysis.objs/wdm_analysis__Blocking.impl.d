lib/analysis/blocking.ml: Conditions Format Int List Model Network Parallel Printf Random Stdlib Table Topology Wdm_core Wdm_multistage Wdm_traffic
