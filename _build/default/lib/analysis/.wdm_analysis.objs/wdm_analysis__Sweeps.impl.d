lib/analysis/sweeps.ml: Capacity Conditions Cost Format List Model Network Printf Table Wdm_bignum Wdm_core Wdm_multistage
