lib/analysis/diagram.mli: Model Network Network_spec Topology Wdm_core Wdm_multistage
