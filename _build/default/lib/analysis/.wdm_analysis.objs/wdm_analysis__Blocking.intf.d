lib/analysis/blocking.mli: Model Network Table Wdm_core Wdm_multistage Wdm_traffic
