lib/analysis/table1.ml: Capacity Cost Enumerate Format List Model Nat Network_spec Printf Table Wdm_bignum Wdm_core
