lib/analysis/sweeps.mli: Table Wdm_core
