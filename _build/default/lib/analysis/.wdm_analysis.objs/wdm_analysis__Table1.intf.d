lib/analysis/table1.mli: Table
