lib/analysis/diagram.ml: Buffer Connection Endpoint Format List Model Network Network_spec Printf Topology Wdm_core Wdm_multistage
