lib/analysis/sparse_conversion.mli: Model Table Wdm_core
