lib/analysis/parallel_census.ml: Enumerate List Parallel Wdm_core
