lib/analysis/adversary.mli: Connection Format Model Network Topology Wdm_core Wdm_multistage
