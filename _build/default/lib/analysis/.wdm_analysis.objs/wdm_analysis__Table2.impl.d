lib/analysis/table2.ml: Conditions Cost List Model Network Printf Table Topology Wdm_core Wdm_multistage
