(** Capacity under limited-range wavelength conversion.

    The paper assumes full-range converters (any wavelength to any
    wavelength).  Real converters of the period were range-limited, and
    the natural question — how much multicast capacity survives with
    range-[d] devices? — is answered here empirically: enumerate every
    assignment legal under the model and count how many the fabric
    still {e physically} realizes when its converters can shift at most
    [d] positions.  [d = 0] collapses MSDW and MAW to MSW capacity;
    [d = k-1] restores the full Table 1 numbers; between the two the
    measured curve interpolates. *)

open Wdm_core

type measurement = {
  range : int;
  realizable : int;  (** assignments the range-limited fabric delivered *)
  total : int;  (** assignments legal under the model *)
}

val measure :
  ?budget:float -> n:int -> k:int -> model:Model.t -> range:int -> unit -> measurement
(** Exhaustive over the model's any-assignments (subject to the census
    budget); every candidate is realized optically, not just checked
    symbolically. *)

val table : n:int -> k:int -> Table.t
(** Rows for MSDW and MAW at every range [0 .. k-1], with the MSW
    baseline and full-range capacity called out. *)
