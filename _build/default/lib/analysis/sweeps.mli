(** Parameter sweeps behind the "figure-shaped" results: how the
    Theorem 1/2 middle-stage requirement grows, where the multistage
    design overtakes the crossbar, and how close the optimized bound
    runs to the asymptotic [3(n-1) log r / log log r] expression. *)

val theorem_bounds : ns:int list -> ks:int list -> Table.t
(** For square topologies [n = r]: optimal [x], Theorem 1 [m_min],
    Theorem 2 [m_min] per [k], and the asymptotic bound. *)

val crossover : output_model:Wdm_core.Model.t -> k:int -> max_big_n:int -> Table.t
(** Crosspoints CB vs MS over perfect-square [N] up to [max_big_n],
    flagging the first [N] where the multistage network is cheaper. *)

val first_crossover : output_model:Wdm_core.Model.t -> k:int -> max_big_n:int -> int option
(** Just the crossover point. *)

val capacity_growth : k:int -> ns:int list -> Table.t
(** [log10] of the full-multicast capacity under each model — the
    capacity ordering MSW < MSDW < MAW made quantitative. *)
