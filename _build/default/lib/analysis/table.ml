type align = Left | Right
type row = Cells of string list | Rule

type t = {
  title : string option;
  header : string list;
  align : align list;
  mutable rows : row list;  (* reversed *)
}

let make ?title ~header ?align () =
  let align =
    match align with
    | Some a ->
      if List.length a <> List.length header then
        invalid_arg "Table.make: align width mismatch";
      a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  { title; header; align; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.header then
    invalid_arg "Table.add_row: width mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let widths t =
  let base = List.map String.length t.header in
  List.fold_left
    (fun acc row ->
      match row with
      | Rule -> acc
      | Cells cells -> List.map2 (fun w c -> Stdlib.max w (String.length c)) acc cells)
    base (List.rev t.rows)

let pad align width s =
  let gap = width - String.length s in
  if gap <= 0 then s
  else
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s

let render t =
  let ws = widths t in
  let buf = Buffer.create 256 in
  let line cells =
    let padded = List.map2 (fun (w, a) c -> pad a w c)
        (List.combine ws t.align) cells
    in
    Buffer.add_string buf (String.concat "  " padded);
    Buffer.add_char buf '\n'
  in
  let rule () =
    Buffer.add_string buf
      (String.concat "--" (List.map (fun w -> String.make w '-') ws));
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n'
  | None -> ());
  line t.header;
  rule ();
  List.iter
    (function Cells cells -> line cells | Rule -> rule ())
    (List.rev t.rows);
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 256 in
  let line cells =
    Buffer.add_string buf (String.concat "," (List.map csv_escape cells));
    Buffer.add_char buf '\n'
  in
  line t.header;
  List.iter (function Cells cells -> line cells | Rule -> ()) (List.rev t.rows);
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
