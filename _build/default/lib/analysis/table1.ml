open Wdm_bignum
open Wdm_core

let symbolic () =
  let t =
    Table.make ~title:"Table 1 (symbolic): WDM multicast networks under different models"
      ~header:[ "Model"; "Capacity (full)"; "Capacity (any)"; "#Crosspoints"; "#Converters" ]
      ~align:[ Table.Left; Table.Left; Table.Left; Table.Left; Table.Left ]
      ()
  in
  Table.add_row t
    [ "MSW"; "N^(Nk)"; "(N+1)^(Nk)"; "k N^2"; "0" ];
  Table.add_row t
    [
      "MSDW";
      "sum P(Nk,sum j_i) prod S(N,j_i)";
      "sum P(Nk,sum j_i) prod C(N,l_i) S(N-l_i,j_i)";
      "k^2 N^2";
      "k N";
    ];
  Table.add_row t
    [ "MAW"; "[P(Nk,k)]^N"; "[sum_j P(Nk,k-j) C(k,j)]^N"; "k^2 N^2"; "k N" ];
  t

let approx = Format.asprintf "%a" Nat.pp_approx

let numeric ?(with_census = true) cases =
  let header =
    [ "N"; "k"; "Model"; "Capacity(full)"; "Capacity(any)"; "Xpoints"; "Conv" ]
    @ if with_census then [ "Census(full)"; "Census(any)" ] else []
  in
  let t = Table.make ~title:"Table 1 (numeric)" ~header () in
  List.iter
    (fun (n, k) ->
      List.iter
        (fun model ->
          let spec = Network_spec.make_exn ~n ~k in
          let census_cells =
            if not with_census then []
            else if Enumerate.feasible spec model then begin
              let c = Enumerate.census spec model in
              let mark count formula =
                Printf.sprintf "%d%s" count
                  (if Nat.equal (Nat.of_int count) formula then " =" else " !!")
              in
              [
                mark c.Enumerate.full (Capacity.full model ~n ~k);
                mark c.Enumerate.any (Capacity.any model ~n ~k);
              ]
            end
            else [ "-"; "-" ]
          in
          Table.add_row t
            ([
               string_of_int n;
               string_of_int k;
               Model.to_string model;
               approx (Capacity.full model ~n ~k);
               approx (Capacity.any model ~n ~k);
               string_of_int (Cost.crossbar_crosspoints model ~n ~k);
               string_of_int (Cost.crossbar_converters model ~n ~k);
             ]
            @ census_cells))
        Model.all;
      Table.add_rule t)
    cases;
  t
