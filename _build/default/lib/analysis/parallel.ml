let available_domains () = Stdlib.max 1 (Domain.recommended_domain_count ())

type 'b slot = Pending | Done of 'b | Failed of exn

let map ?domains f xs =
  let n = List.length xs in
  let d = Stdlib.max 1 (Stdlib.min n (Option.value ~default:(available_domains ()) domains)) in
  if n = 0 then []
  else if d = 1 then List.map f xs
  else begin
    let inputs = Array.of_list xs in
    let results = Array.make n Pending in
    (* Work stealing via a shared counter: domains pull the next index
       until exhausted.  Atomic is enough - indices are disjoint. *)
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
            (match f inputs.(i) with
            | v -> Done v
            | exception e -> Failed e));
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (d - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list results
    |> List.map (function
         | Done v -> v
         | Failed e -> raise e
         | Pending -> assert false)
  end
