open Wdm_core
open Wdm_multistage

let symbolic () =
  let t =
    Table.make
      ~title:"Table 2 (symbolic): crossbar (CB) vs multistage (MS) WDM networks"
      ~header:[ "Model/Net"; "#Crosspoints"; "#Converters" ]
      ~align:[ Table.Left; Table.Left; Table.Left ] ()
  in
  Table.add_row t [ "MSW/CB"; "k N^2"; "0" ];
  Table.add_row t [ "MSW/MS"; "O(k N^1.5 logN/loglogN)"; "0" ];
  Table.add_row t [ "MSDW/CB"; "k^2 N^2"; "k N" ];
  Table.add_row t [ "MSDW/MS"; "O(k^2 N^1.5 logN/loglogN)"; "O(k N logN/loglogN)" ];
  Table.add_row t [ "MAW/CB"; "k^2 N^2"; "k N" ];
  Table.add_row t [ "MAW/MS"; "O(k^2 N^1.5 logN/loglogN)"; "k N" ];
  t

let numeric ~big_ns ~ks =
  let t =
    Table.make ~title:"Table 2 (numeric, MSW-dominant MS with n=r=sqrt(N))"
      ~header:
        [ "N"; "k"; "Model"; "m"; "x"; "CB xpts"; "MS xpts"; "MS/CB"; "CB conv"; "MS conv" ]
      ()
  in
  List.iter
    (fun big_n ->
      List.iter
        (fun k ->
          List.iter
            (fun model ->
              match
                Cost.recommended ~construction:Network.Msw_dominant
                  ~output_model:model ~big_n ~k
              with
              | Error e -> invalid_arg e
              | Ok (topo, eval, b) ->
                let cb_x = Cost.crossbar_crosspoints ~output_model:model ~big_n ~k in
                let cb_c = Cost.crossbar_converters ~output_model:model ~big_n ~k in
                Table.add_row t
                  [
                    string_of_int big_n;
                    string_of_int k;
                    Model.to_string model;
                    string_of_int topo.Topology.m;
                    string_of_int eval.Conditions.x;
                    string_of_int cb_x;
                    string_of_int b.Cost.total_crosspoints;
                    Printf.sprintf "%.3f"
                      (float_of_int b.Cost.total_crosspoints /. float_of_int cb_x);
                    string_of_int cb_c;
                    string_of_int b.Cost.total_converters;
                  ])
            Model.all;
          Table.add_rule t)
        ks)
    big_ns;
  t
