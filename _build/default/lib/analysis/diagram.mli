(** Text renderings of the paper's construction figures.

    The paper's Figs. 1-9 are structural diagrams; these renderers
    reproduce them as annotated ASCII so the examples and docs can show
    what was built without image output.  All content is derived from
    the same constructors the simulators use, so a diagram is always in
    sync with the code. *)

open Wdm_core
open Wdm_multistage

val fig1_network : Network_spec.t -> string
(** The [N x N] [k]-wavelength WDM network with its transmitter and
    receiver arrays. *)

val fig2_models : unit -> string
(** The three multicast models on one example connection each, with
    the per-model legality verdicts computed by {!Wdm_core.Model}. *)

val fig5_space_crossbar : n:int -> string
(** The single-wavelength multicast space crossbar: splitters, the
    [N^2] gate grid, combiners. *)

val fig8_three_stage : Topology.t -> string
(** The three-stage topology with stage sizes and link counts. *)

val fig9_construction :
  construction:Network.construction -> output_model:Model.t -> Topology.t -> string
(** Fig. 8 annotated with the module models of the chosen construction
    (Fig. 9a: MSW-dominant, Fig. 9b: MAW-dominant). *)
