(** Regenerates the paper's Table 1: multicast capacity, crosspoints and
    wavelength converters of crossbar-based [N x N] [k]-wavelength
    networks under the MSW, MSDW and MAW models, optionally cross-checked
    against the brute-force census where feasible. *)

val symbolic : unit -> Table.t
(** The formulas exactly as Table 1 prints them. *)

val numeric : ?with_census:bool -> (int * int) list -> Table.t
(** One row per (N, k) per model, with exact capacities (approximated in
    scientific notation past 12 digits), crosspoint and converter
    counts.  With [with_census] (default true) adds census columns where
    the enumeration is affordable and marks agreement. *)
