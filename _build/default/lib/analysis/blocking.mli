(** Empirical blocking-probability experiments.

    The paper's theorems predict a sharp edge: at [m >= m_min] no
    request sequence blocks; below it an adversary (and, in practice,
    plain random churn) can produce blocking.  These experiments sweep
    [m] across that edge and compare constructions and routing
    strategies at equal hardware — the dynamic counterpart of Table 2
    and the quantitative version of the Fig. 10 observation. *)

open Wdm_core
open Wdm_multistage

type measurement = {
  m : int;
  attempts : int;
  blocked : int;
  probability : float;
}

val blocking_vs_m :
  ?seeds:int list ->
  ?steps:int ->
  ?fanout:Wdm_traffic.Fanout.t ->
  ?teardown_bias:float ->
  construction:Network.construction ->
  output_model:Model.t ->
  n:int ->
  r:int ->
  k:int ->
  ms:int list ->
  unit ->
  measurement list
(** Aggregates over the seeds; each seed runs an independent churn. *)

val blocking_table :
  construction:Network.construction ->
  output_model:Model.t ->
  n:int ->
  r:int ->
  k:int ->
  Table.t
(** Sweeps [m] from the topological minimum up past the theorem bound,
    marking [m_min]. *)

val construction_ablation : n:int -> r:int -> k:int -> ms:int list -> Table.t
(** MSW-dominant vs MAW-dominant blocking at equal [m] (network model
    MAW) — the Fig. 10 effect under load. *)

val blocking_vs_load :
  ?seeds:int list ->
  ?steps:int ->
  construction:Network.construction ->
  output_model:Model.t ->
  n:int ->
  r:int ->
  k:int ->
  m:int ->
  unit ->
  Table.t
(** Blocking probability and mean utilization as the offered load rises
    (teardown bias falling from 0.6 to 0.05) at fixed hardware [m] —
    the Erlang-flavoured view of an undersized switch.  At
    [m >= m_min] every row must show zero blocking regardless of
    load. *)

val erlang_curve :
  ?seed:int ->
  ?horizon:float ->
  construction:Network.construction ->
  output_model:Model.t ->
  n:int ->
  r:int ->
  k:int ->
  m:int ->
  offered:float list ->
  unit ->
  Table.t
(** Classical telephony view: Poisson arrivals, exponential holding
    (mean 1), blocking probability per offered load in Erlangs at fixed
    hardware.  At a theorem-sized [m] every row is zero regardless of
    load — the nonblocking property expressed in Erlang terms. *)

val frontier :
  ?seeds:int list ->
  ?steps:int ->
  construction:Network.construction ->
  output_model:Model.t ->
  n:int ->
  r:int ->
  k:int ->
  unit ->
  int option
(** The largest [m] (searched from the topological minimum [n] up to
    the theorem's [m_min - 1]) at which any seed still produced
    blocking — an empirical lower estimate of where the true
    nonblocking threshold sits relative to the sufficient condition.
    [None] if even [m = n] never blocked under this traffic. *)

val rearrangement_ablation :
  ?seeds:int list ->
  ?steps:int ->
  construction:Network.construction ->
  output_model:Model.t ->
  n:int ->
  r:int ->
  k:int ->
  ms:int list ->
  unit ->
  Table.t
(** For each undersized [m]: how many churn requests block outright and
    how many of those a single-connection rearrangement rescues — the
    strict-sense vs rearrangeable gap, measured. *)

val strategy_ablation :
  construction:Network.construction ->
  output_model:Model.t ->
  n:int ->
  r:int ->
  k:int ->
  m:int ->
  Table.t
(** Min-intersection vs first-fit vs exhaustive at the same topology:
    blocked counts and mean middles used per route. *)
