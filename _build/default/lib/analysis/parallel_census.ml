open Wdm_core

let census ?domains ?(budget = 4e8) spec model =
  let parts =
    Parallel.map ?domains
      (fun branch -> Enumerate.census_branch ~budget spec model ~branch)
      (Enumerate.branches spec)
  in
  List.fold_left
    (fun acc (c : Enumerate.counts) ->
      { Enumerate.full = acc.Enumerate.full + c.Enumerate.full; any = acc.Enumerate.any + c.Enumerate.any })
    { Enumerate.full = 0; any = 0 }
    parts
