open Wdm_core

type measurement = { range : int; realizable : int; total : int }

let measure ?budget ~n ~k ~model ~range () =
  let spec = Network_spec.make_exn ~n ~k in
  let fabric = Wdm_crossbar.Fabric.create ~converter_range:range ~model spec in
  let realizable = ref 0 and total = ref 0 in
  Enumerate.iter_assignments ?budget spec model (fun a ->
      incr total;
      match Wdm_crossbar.Fabric.realize fabric a with
      | Ok _ -> incr realizable
      | Error _ -> ());
  { range; realizable = !realizable; total = !total }

let table ~n ~k =
  let t =
    Table.make
      ~title:
        (Printf.sprintf
           "Realizable any-assignments with range-d converters (N=%d, k=%d)" n k)
      ~header:[ "model"; "d"; "realizable"; "of total"; "fraction" ]
      ()
  in
  List.iter
    (fun model ->
      List.iter
        (fun range ->
          let m = measure ~n ~k ~model ~range () in
          Table.add_row t
            [
              Model.to_string model;
              string_of_int range;
              string_of_int m.realizable;
              string_of_int m.total;
              Printf.sprintf "%.4f"
                (float_of_int m.realizable /. float_of_int m.total);
            ])
        (List.init k Fun.id);
      Table.add_rule t)
    [ Model.MSDW; Model.MAW ];
  Table.add_row t
    [
      "(MSW baseline)";
      "-";
      Wdm_bignum.Nat.to_string (Capacity.msw_any ~n ~k);
      "-";
      "-";
    ];
  t
