(** Multicore brute-force census.

    The census DFS of {!Wdm_core.Enumerate} partitions exactly along
    the choice made for the first output endpoint ([Nk + 1] branches);
    each branch owns all its state, so they fan out over domains with
    {!Parallel.map} and the counts add up.  This pushes the feasible
    cross-check boundary for Lemmas 1-3 roughly a core-count further. *)

open Wdm_core

val census :
  ?domains:int ->
  ?budget:float ->
  Network_spec.t ->
  Model.t ->
  Enumerate.counts
(** Equal to {!Wdm_core.Enumerate.census} (the tests check it), with a
    default budget of [4e8] candidate maps instead of [2e7]. *)
