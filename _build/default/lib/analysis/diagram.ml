open Wdm_core
open Wdm_multistage

let buf_with f =
  let b = Buffer.create 512 in
  f b;
  Buffer.contents b

let fig1_network (spec : Network_spec.t) =
  let n = spec.n and k = spec.k in
  buf_with (fun b ->
      Buffer.add_string b
        (Printf.sprintf
           "Fig. 1 - %dx%d WDM network, %d wavelengths per fiber\n\n" n n k);
      Buffer.add_string b
        (Printf.sprintf "  %d TX array         %d RX array\n" k k);
      for p = 1 to n do
        Buffer.add_string b
          (Printf.sprintf
             "  node %-2d >==(l1..l%d)==[in %-2d]   %dx%d WDM   [out %-2d]==(l1..l%d)==> node %-2d\n"
             p k p n n p k p)
      done;
      Buffer.add_string b
        (Printf.sprintf
           "\n  %d addressable endpoints per side; a node may take part in up to\n\
           \  %d multicast connections at once (one per wavelength).\n"
           (n * k) k))

let fig2_models () =
  let ep port wl = Endpoint.make ~port ~wl in
  let cases =
    [
      ( "MSW : same wavelength end to end",
        Connection.make_exn ~source:(ep 1 2) ~destinations:[ ep 2 2; ep 3 2 ] );
      ( "MSDW: one destination wavelength, source may differ",
        Connection.make_exn ~source:(ep 1 1) ~destinations:[ ep 2 3; ep 3 3 ] );
      ( "MAW : every endpoint free",
        Connection.make_exn ~source:(ep 1 1) ~destinations:[ ep 2 1; ep 3 2; ep 4 3 ] );
    ]
  in
  buf_with (fun b ->
      Buffer.add_string b "Fig. 2 - the three multicast models\n\n";
      List.iter
        (fun (label, conn) ->
          Buffer.add_string b
            (Format.asprintf "  %-50s %a\n" label Connection.pp conn);
          Buffer.add_string b "      legal under:";
          List.iter
            (fun m ->
              if Model.allows m conn then
                Buffer.add_string b (" " ^ Model.to_string m))
            Model.all;
          Buffer.add_string b "\n")
        cases)

let fig5_space_crossbar ~n =
  buf_with (fun b ->
      Buffer.add_string b
        (Printf.sprintf
           "Fig. 5 - %dx%d single-wavelength multicast space crossbar (%d crosspoints)\n\n"
           n n (n * n));
      Buffer.add_string b "            ";
      for j = 1 to n do
        Buffer.add_string b (Printf.sprintf " out%-3d" j)
      done;
      Buffer.add_string b "\n";
      for i = 1 to n do
        Buffer.add_string b (Printf.sprintf "  in%-2d-[1x%d]" i n);
        for j = 1 to n do
          Buffer.add_string b (Printf.sprintf " (g%d%d) " i j)
        done;
        Buffer.add_string b "\n"
      done;
      Buffer.add_string b "            ";
      for _ = 1 to n do
        Buffer.add_string b (Printf.sprintf " [%dx1] " n)
      done;
      Buffer.add_string b "\n";
      Buffer.add_string b
        "  rows: splitter copies; columns: combiner inputs; an on gate (gij)\n\
        \  connects input i to output j; one on gate per column = no collision.\n")

let stage_line b ~label ~count ~ins ~outs ~model_name =
  Buffer.add_string b
    (Printf.sprintf "  %-7s %2d modules of %2dx%-2d  [%s]\n" label count ins outs
       model_name)

let fig8_generic title note ~input_model ~middle_model ~output_model
    (topo : Topology.t) =
  let { Topology.n; m; r; k } = topo in
  buf_with (fun b ->
      Buffer.add_string b
        (Printf.sprintf "%s: N = n*r = %d, k = %d\n\n" title (n * r) k);
      Buffer.add_string b
        (Printf.sprintf
           "   in 1..%-4d      %d links        %d links       out 1..%d\n"
           (n * r) (r * m) (m * r) (n * r));
      stage_line b ~label:"input" ~count:r ~ins:n ~outs:m ~model_name:input_model;
      stage_line b ~label:"middle" ~count:m ~ins:r ~outs:r ~model_name:middle_model;
      stage_line b ~label:"output" ~count:r ~ins:m ~outs:n ~model_name:output_model;
      Buffer.add_string b
        (Printf.sprintf
           "\n  exactly one fiber (x%d wavelengths) between every module pair in\n\
           \  consecutive stages.%s\n"
           k note))

let fig8_three_stage topo =
  fig8_generic "Fig. 8 - three-stage switching network" "" ~input_model:"-"
    ~middle_model:"-" ~output_model:"-" topo

let fig9_construction ~construction ~output_model topo =
  let inner, title =
    match (construction : Network.construction) with
    | Network.Msw_dominant -> ("MSW", "Fig. 9a - MSW-dominant construction")
    | Network.Maw_dominant -> ("MAW", "Fig. 9b - MAW-dominant construction")
  in
  let note =
    Printf.sprintf
      "\n  The output stage's model (%s) is the network's multicast model;\n\
      \  the first two stages are %s."
      (Model.to_string output_model) inner
  in
  fig8_generic title note ~input_model:inner ~middle_model:inner
    ~output_model:(Model.to_string output_model) topo
