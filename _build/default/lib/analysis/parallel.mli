(** Multicore fan-out for embarrassingly parallel experiments.

    OCaml 5 domains, no external dependency: a bounded pool evaluates
    independent tasks and preserves input order.  Used to parallelize
    the brute-force census ({!Wdm_core.Enumerate} partitions its search
    on the first output endpoint's choice) and the seed sweeps of the
    blocking experiments.

    Tasks must not share mutable state: in this code base that rules
    out concurrent calls into the memoized
    {!Wdm_bignum.Combinatorics} tables (capacity formulas) but admits
    census DFS, network churn and fabric propagation, which own all
    their state. *)

val available_domains : unit -> int
(** [Domain.recommended_domain_count], at least 1. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] evaluates [f] over [xs] on up to [domains] (default
    {!available_domains}) domains and returns results in input order.
    The first raised exception is re-raised in the caller after all
    domains join. *)
