(** Minimal fixed-width text tables for experiment reports.

    Every "regenerate Table N" harness in [bench/] renders through this
    module so outputs line up and can be diffed between runs.  Also
    emits CSV for downstream plotting. *)

type align = Left | Right

type t

val make : ?title:string -> header:string list -> ?align:align list -> unit -> t
(** [align] defaults to left for the first column, right for the rest. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_rule : t -> unit
(** A horizontal separator between row groups. *)

val render : t -> string
val to_csv : t -> string
val print : t -> unit
(** [render] to stdout, followed by a blank line. *)
