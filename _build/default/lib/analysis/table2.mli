(** Regenerates the paper's Table 2: crossbar (CB) vs three-stage
    multistage (MS, MSW-dominant construction, [n = r = sqrt N],
    Theorem 1 minimal [m]) cost for each multicast model. *)

val symbolic : unit -> Table.t

val numeric : big_ns:int list -> ks:int list -> Table.t
(** One row per (N, k, model) pair of CB and MS entries; [big_ns] must
    be perfect squares.  Includes the chosen [m], the optimal [x], and
    the MS/CB crosspoint ratio, which exhibits the [O(sqrt N)] saving. *)
