open Wdm_core
open Wdm_multistage

let theorem_bounds ~ns ~ks =
  let t =
    Table.make ~title:"Nonblocking m (n = r): Theorem 1 vs Theorem 2 vs asymptotic"
      ~header:
        ([ "n=r"; "x*"; "Thm1 m_min"; "3(n-1)logr/loglogr" ]
        @ List.map (fun k -> Printf.sprintf "Thm2 m_min (k=%d)" k) ks)
      ()
  in
  List.iter
    (fun n ->
      let e1 = Conditions.msw_dominant ~n ~r:n in
      Table.add_row t
        ([
           string_of_int n;
           string_of_int e1.Conditions.x;
           string_of_int e1.Conditions.m_min;
           Printf.sprintf "%.1f" (Conditions.asymptotic_bound ~n ~r:n);
         ]
        @ List.map
            (fun k ->
              string_of_int (Conditions.maw_dominant ~n ~r:n ~k).Conditions.m_min)
            ks))
    ns;
  t

let squares max_big_n =
  let rec go i acc =
    if i * i > max_big_n then List.rev acc
    else go (i + 1) ((i * i) :: acc)
  in
  go 2 []

let ms_crosspoints ~output_model ~big_n ~k =
  match Cost.recommended ~construction:Network.Msw_dominant ~output_model ~big_n ~k with
  | Ok (_, _, b) -> b.Cost.total_crosspoints
  | Error e -> invalid_arg e

let first_crossover ~output_model ~k ~max_big_n =
  List.find_opt
    (fun big_n ->
      ms_crosspoints ~output_model ~big_n ~k
      < Cost.crossbar_crosspoints ~output_model ~big_n ~k)
    (squares max_big_n)

let crossover ~output_model ~k ~max_big_n =
  let t =
    Table.make
      ~title:
        (Format.asprintf "Crossbar vs multistage crosspoints (%a, k=%d)"
           Model.pp output_model k)
      ~header:[ "N"; "CB xpts"; "MS xpts"; "winner" ]
      ()
  in
  List.iter
    (fun big_n ->
      let cb = Cost.crossbar_crosspoints ~output_model ~big_n ~k in
      let ms = ms_crosspoints ~output_model ~big_n ~k in
      Table.add_row t
        [
          string_of_int big_n;
          string_of_int cb;
          string_of_int ms;
          (if ms < cb then "MS" else "CB");
        ])
    (squares max_big_n);
  t

let capacity_growth ~k ~ns =
  let t =
    Table.make
      ~title:(Printf.sprintf "log10 of full-multicast capacity (k=%d)" k)
      ~header:[ "N"; "MSW"; "MSDW"; "MAW"; "(Nk)^(Nk) electronic" ]
      ()
  in
  List.iter
    (fun n ->
      let l model = Wdm_bignum.Nat.log10 (Capacity.full model ~n ~k) in
      Table.add_row t
        [
          string_of_int n;
          Printf.sprintf "%.1f" (l Model.MSW);
          Printf.sprintf "%.1f" (l Model.MSDW);
          Printf.sprintf "%.1f" (l Model.MAW);
          Printf.sprintf "%.1f"
            (Wdm_bignum.Nat.log10 (Capacity.equivalent_electronic_full ~n ~k));
        ])
    ns;
  t
