(** Nonblocking conditions for three-stage WDM multicast networks
    (Theorems 1 and 2) and the asymptotic reduction of Section 3.4.

    With the routing strategy that realizes each multicast connection
    through at most [x] middle modules:

    - {b Theorem 1} (MSW-dominant construction): nonblocking if
      [m > (n-1) (x + r^(1/x))] for some [1 <= x <= min(n-1, r)];
    - {b Theorem 2} (MAW-dominant construction): nonblocking if
      [m > floor((nk-1) x / k) + (n-1) r^(1/x)];
    - choosing [x = log r / log log r] reduces Theorem 1 to
      [m >= 3 (n-1) log r / log log r].

    [m_min] here is the smallest integer satisfying the strict
    inequality at the best [x].  These are sufficient conditions; the
    matching necessity is established in the paper's reference [16]
    under the usual routing strategies. *)

type evaluation = {
  x : int;  (** the fanout-splitting bound achieving the minimum *)
  bound : float;  (** value of the minimized right-hand side *)
  m_min : int;  (** smallest [m] strictly above [bound] (at least [n]) *)
}

val theorem1_term : n:int -> r:int -> x:int -> float
(** [(n-1) (x + r^(1/x))].  @raise Invalid_argument if [x < 1]. *)

val theorem2_term : n:int -> r:int -> k:int -> x:int -> float
(** [floor((nk-1) x / k) + (n-1) r^(1/x)]. *)

val msw_dominant : n:int -> r:int -> evaluation
(** Minimizes Theorem 1 over [1 <= x <= min(n-1, r)].  For [n = 1]
    there is no competing traffic in a module and [m_min = 1]. *)

val maw_dominant : n:int -> r:int -> k:int -> evaluation
(** Minimizes Theorem 2 over the same range. *)

val x_range : n:int -> r:int -> int * int
(** [(1, min(n-1, r))], the legal splitting bounds ([ (1, 1)] when
    [n = 1]). *)

val asymptotic_x : r:int -> float
(** [log r / log log r] (clamped to [>= 1]); the paper's choice. *)

val asymptotic_bound : n:int -> r:int -> float
(** [3 (n-1) log r / log log r]. *)

val pp_evaluation : Format.formatter -> evaluation -> unit
