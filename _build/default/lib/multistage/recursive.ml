module Stage_cost = Cost
open Wdm_core

type view = Xbar of int | Clos of { n : int; m : int; r : int; middle : view }
type node = view

type t = { k : int; output_model : Model.t; root : node }

(* Exact integer p-th root, if it exists. *)
let iroot value p =
  if value < 1 || p < 1 then None
  else begin
    let approx = int_of_float (Float.round (float_of_int value ** (1. /. float_of_int p))) in
    let check b = if b >= 1 then
        let rec pow acc i = if i = 0 then acc else pow (acc * b) (i - 1) in
        pow 1 p = value
      else false
    in
    List.find_opt check [ approx - 1; approx; approx + 1 ]
  end

let rec build ~stages ~size =
  if stages = 1 then Ok (Xbar size)
  else begin
    let s = (stages - 1) / 2 in
    match iroot size (s + 1) with
    | None ->
      Error
        (Printf.sprintf
           "Recursive.design: %d is not a perfect %d-th power (needed for %d stages)"
           size (s + 1) stages)
    | Some n ->
      if n < 2 then
        Error
          (Printf.sprintf "Recursive.design: base %d too small for %d stages" n stages)
      else begin
        let r = size / n in
        let m = (Conditions.msw_dominant ~n ~r).Conditions.m_min in
        Result.map
          (fun middle -> Clos { n; m; r; middle })
          (build ~stages:(stages - 2) ~size:r)
      end
  end

let design ~stages ~big_n ~k ~output_model =
  if stages < 1 || stages mod 2 = 0 then
    Error "Recursive.design: stages must be odd and >= 1"
  else if big_n < 1 || k < 1 then Error "Recursive.design: N, k >= 1"
  else Result.map (fun root -> { k; output_model; root }) (build ~stages ~size:big_n)

let rec node_stages = function
  | Xbar _ -> 1
  | Clos { middle; _ } -> 2 + node_stages middle

let stages t = node_stages t.root

let node_ports = function
  | Xbar s -> s
  | Clos { n; r; _ } -> n * r

let num_ports t = node_ports t.root

(* Crosspoints/converters of a node acting as a full network under
   [output_model]; inner middle networks are MSW end to end. *)
let rec node_cost ~k ~output_model = function
  | Xbar s ->
    ( Stage_cost.module_crosspoints output_model ~k ~ins:s ~outs:s,
      Stage_cost.module_converters output_model ~k ~ins:s ~outs:s )
  | Clos { n; m; r; middle } ->
    let input_x = r * Stage_cost.module_crosspoints Model.MSW ~k ~ins:n ~outs:m in
    let mid_x, mid_c = node_cost ~k ~output_model:Model.MSW middle in
    let output_x = r * Stage_cost.module_crosspoints output_model ~k ~ins:m ~outs:n in
    let output_c = r * Stage_cost.module_converters output_model ~k ~ins:m ~outs:n in
    (input_x + (m * mid_x) + output_x, (m * mid_c) + output_c)

let crosspoints t = fst (node_cost ~k:t.k ~output_model:t.output_model t.root)
let converters t = snd (node_cost ~k:t.k ~output_model:t.output_model t.root)

let splitting_depth t = stages t

let middle_modules_per_level t =
  let rec go = function Xbar _ -> [] | Clos { m; middle; _ } -> m :: go middle in
  go t.root

let view t = t.root
let k t = t.k
let output_model t = t.output_model

let rec pp_node ppf = function
  | Xbar s -> Format.fprintf ppf "xbar %dx%d" s s
  | Clos { n; m; r; middle } ->
    Format.fprintf ppf "clos(n=%d, m=%d, r=%d; middle = %a)" n m r pp_node middle

let pp ppf t =
  Format.fprintf ppf "%d-stage N=%d k=%d (%a): %a" (stages t) (num_ports t) t.k
    Model.pp t.output_model pp_node t.root
