(** Optical realization of recursively constructed networks.

    Builds the full circuit of a 5-, 7-, ... stage design: input and
    output stages are {!Wdm_crossbar.Module_fabric} blocks as in
    {!Physical}, and each middle "module" is either a crossbar block or
    a complete nested three-stage fabric one level down.  Routes from
    {!Rnetwork} (whose shape mirrors the recursion) program every level;
    {!realize} then lights all transmitters and verifies delivery — the
    end-to-end check that the recursive construction carries multicast
    in hardware, not just in bookkeeping. *)


type t

val create :
  ?loss:Wdm_optics.Loss_model.t ->
  construction:Network.construction ->
  Recursive.t ->
  t
(** Same parameterization as {!Rnetwork.create}.
    @raise Invalid_argument on a 1-stage design. *)

val circuit : t -> Wdm_optics.Circuit.t
val stages : t -> int

val apply_routes : t -> Rnetwork.route list -> unit

val realize :
  t ->
  Rnetwork.route list ->
  (Wdm_optics.Circuit.outcome, Wdm_crossbar.Delivery.failure) result

val crosspoints : t -> int
(** Censused from the circuit; equals {!Recursive.crosspoints} of the
    design (the tests check it). *)

val converters : t -> int
