(** Recursive multistage construction (Section 3, opening remarks).

    "In general, a network can have any odd number of stages and be
    built in a recursive fashion from these switching modules": the
    [r x r] middle modules of a three-stage network are themselves
    realized as three-stage networks, giving 5, 7, ... stages.  With
    [2s+1] stages the natural symmetric decomposition is
    [N = b^(s+1)] with [n = b] local ports per module at every level
    ([r = b^s] shrinking by one factor of [b] per level), every level
    provisioned with the Theorem-1 minimal [m] — each middle network is
    then nonblocking for the traffic its parent offers it.

    Deeper recursion trades crosspoints for stages (latency, loss): the
    bench harness tabulates the trade-off.  The construction is
    MSW-dominant: every module except the outermost output stage is
    MSW. *)

open Wdm_core

type t

val design :
  stages:int -> big_n:int -> k:int -> output_model:Model.t -> (t, string) result
(** [stages] must be odd and >= 1; [big_n] must be a perfect
    [(stages+1)/2 + 1]-th power (e.g. a square for 3 stages, a cube for
    5).  [stages = 1] is the flat crossbar of Table 1. *)

val stages : t -> int
val num_ports : t -> int
val crosspoints : t -> int
val converters : t -> int

val splitting_depth : t -> int
(** Number of switching modules a signal traverses end to end
    ([stages]); a proxy for insertion loss and crosstalk accumulation. *)

val middle_modules_per_level : t -> int list
(** The Theorem-1 [m] chosen at each recursion level, outermost
    first. *)

type view = Xbar of int | Clos of { n : int; m : int; r : int; middle : view }

val view : t -> view
(** The design tree, for consumers that instantiate it —
    {!Rnetwork} builds a live routed network from it and
    {!Physical_recursive} an optical circuit. *)

val k : t -> int
val output_model : t -> Wdm_core.Model.t

val pp : Format.formatter -> t -> unit
