type evaluation = { x : int; bound : float; m_min : int }

let check_common ~n ~r name =
  if n < 1 || r < 1 then invalid_arg ("Conditions." ^ name ^ ": n, r must be >= 1")

let theorem1_term ~n ~r ~x =
  check_common ~n ~r "theorem1_term";
  if x < 1 then invalid_arg "Conditions.theorem1_term: x must be >= 1";
  float_of_int (n - 1)
  *. (float_of_int x +. (float_of_int r ** (1. /. float_of_int x)))

let theorem2_term ~n ~r ~k ~x =
  check_common ~n ~r "theorem2_term";
  if k < 1 then invalid_arg "Conditions.theorem2_term: k must be >= 1";
  if x < 1 then invalid_arg "Conditions.theorem2_term: x must be >= 1";
  let unavailable = ((n * k) - 1) * x / k in
  float_of_int unavailable
  +. (float_of_int (n - 1) *. (float_of_int r ** (1. /. float_of_int x)))

let x_range ~n ~r =
  check_common ~n ~r "x_range";
  if n = 1 then (1, 1) else (1, Stdlib.min (n - 1) r)

let minimize ~n ~r term =
  let lo, hi = x_range ~n ~r in
  let best = ref { x = lo; bound = term lo; m_min = 0 } in
  for x = lo + 1 to hi do
    let b = term x in
    if b < !best.bound then best := { x; bound = b; m_min = 0 }
  done;
  (* m must strictly exceed the bound, and the topology needs m >= n. *)
  let m_min = Stdlib.max n (int_of_float (Float.floor !best.bound) + 1) in
  { !best with m_min }

let msw_dominant ~n ~r = minimize ~n ~r (fun x -> theorem1_term ~n ~r ~x)
let maw_dominant ~n ~r ~k = minimize ~n ~r (fun x -> theorem2_term ~n ~r ~k ~x)

let asymptotic_x ~r =
  if r < 2 then 1.
  else begin
    let lr = Float.log (float_of_int r) in
    let llr = Float.log lr in
    if llr <= 0. then 1. else Stdlib.max 1. (lr /. llr)
  end

let asymptotic_bound ~n ~r =
  check_common ~n ~r "asymptotic_bound";
  if r < 2 then float_of_int (n - 1)
  else begin
    let lr = Float.log (float_of_int r) in
    let llr = Float.log lr in
    if llr <= 0. then 3. *. float_of_int (n - 1)
    else 3. *. float_of_int (n - 1) *. lr /. llr
  end

let pp_evaluation ppf e =
  Format.fprintf ppf "x=%d bound=%.3f m_min=%d" e.x e.bound e.m_min
