(** Canonical scenarios from the paper.

    {!fig10} reconstructs the situation of Fig. 10: with MSW middle
    modules a multicast connection is blocked by the restricted
    wavelength assignment of the first two stages, while MAW modules
    (the MAW-dominant construction) route the very same sequence — the
    motivation the paper gives for studying the MAW-dominant
    construction at all. *)

open Wdm_core

type outcome = {
  construction : Network.construction;
  admitted : int;  (** connections admitted before the probe *)
  probe_result : (Network.route, Network.error) result;
}

val fig10_topology : Topology.t
(** [n = r = k = 2], [m = 2] — deliberately below the Theorem 1 bound,
    as in the figure. *)

val fig10_prelude : Connection.t list
(** Three connections that, under the MSW-dominant construction, pin
    wavelength [l1] on every link the probe could use. *)

val fig10_probe : Connection.t
(** The connection of interest: sourced on [l1], destined to a free
    endpoint — routable in principle, blocked by MSW middles. *)

val fig10 : Network.construction -> outcome
(** Plays prelude then probe on a fresh network (network model MAW)
    under the given construction. *)
