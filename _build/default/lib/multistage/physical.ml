module C = Wdm_optics.Circuit
module MF = Wdm_crossbar.Module_fabric
module Labels = Wdm_crossbar.Labels
open Wdm_core

type t = {
  topo : Topology.t;
  circuit : C.t;
  sources : C.node_id array;  (* per global input port, 0-based *)
  input_mods : MF.t array;
  middle_mods : MF.t array;
  output_mods : MF.t array;
}

let create ?loss ~construction ~output_model (topo : Topology.t) =
  let { Topology.n; m; r; k } = topo in
  let inner_model =
    match (construction : Network.construction) with
    | Network.Msw_dominant -> Model.MSW
    | Network.Maw_dominant -> Model.MAW
  in
  let c = C.create ?loss () in
  let input_mods =
    Array.init r (fun _ -> MF.build c ~model:inner_model ~inputs:n ~outputs:m ~k)
  in
  let middle_mods =
    Array.init m (fun _ -> MF.build c ~model:inner_model ~inputs:r ~outputs:r ~k)
  in
  let output_mods =
    Array.init r (fun _ -> MF.build c ~model:output_model ~inputs:m ~outputs:n ~k)
  in
  (* Transmitters: one source per global input port. *)
  let sources =
    Array.init (Topology.num_ports topo) (fun gp0 ->
        let gp = gp0 + 1 in
        let i, local = Topology.switch_of_port topo gp in
        let src = C.add_source c (Labels.input_port gp) in
        let node, slot = MF.entry input_mods.(i - 1) local in
        C.connect c src 0 node slot;
        src)
  in
  (* Inter-stage fibers. *)
  for i = 1 to r do
    for j = 1 to m do
      let from_node, from_slot = MF.exit input_mods.(i - 1) j in
      let to_node, to_slot = MF.entry middle_mods.(j - 1) i in
      C.connect c from_node from_slot to_node to_slot
    done
  done;
  for j = 1 to m do
    for p = 1 to r do
      let from_node, from_slot = MF.exit middle_mods.(j - 1) p in
      let to_node, to_slot = MF.entry output_mods.(p - 1) j in
      C.connect c from_node from_slot to_node to_slot
    done
  done;
  (* Receivers: one sink per global output port. *)
  for gp = 1 to Topology.num_ports topo do
    let p, local = Topology.switch_of_port topo gp in
    let sink = C.add_sink c (Labels.output_port gp) in
    let node, slot = MF.exit output_mods.(p - 1) local in
    C.connect c node slot sink 0
  done;
  { topo; circuit = c; sources; input_mods; middle_mods; output_mods }

let topology t = t.topo
let circuit t = t.circuit

let quiesce t =
  Array.iter (MF.clear t.circuit) t.input_mods;
  Array.iter (MF.clear t.circuit) t.middle_mods;
  Array.iter (MF.clear t.circuit) t.output_mods

let apply_route t (route : Network.route) =
  let conn = route.Network.connection in
  let src_wl = conn.Connection.source.Endpoint.wl in
  let i = route.Network.input_switch in
  let _, local_src = Topology.switch_of_port t.topo conn.Connection.source.Endpoint.port in
  (* Input module: local source endpoint to the used middle links. *)
  MF.set_path t.circuit t.input_mods.(i - 1)
    ~src:(local_src, src_wl)
    ~dests:
      (List.map
         (fun (h : Network.hop) -> (h.Network.middle, h.Network.stage1_wl))
         route.Network.hops);
  (* Middle modules: one path per hop. *)
  List.iter
    (fun (h : Network.hop) ->
      MF.set_path t.circuit t.middle_mods.(h.Network.middle - 1)
        ~src:(i, h.Network.stage1_wl)
        ~dests:h.Network.serves)
    route.Network.hops;
  (* Output modules: per output switch served, deliver to the local
     destination endpoints. *)
  List.iter
    (fun (h : Network.hop) ->
      List.iter
        (fun (p, w2) ->
          let local_dests =
            List.filter_map
              (fun (d : Endpoint.t) ->
                let p', local = Topology.switch_of_port t.topo d.port in
                if p' = p then Some (local, d.wl) else None)
              conn.Connection.destinations
          in
          MF.set_path t.circuit t.output_mods.(p - 1)
            ~src:(h.Network.middle, w2)
            ~dests:local_dests)
        h.Network.serves)
    route.Network.hops

let apply_routes t routes =
  quiesce t;
  List.iter (apply_route t) routes

let inject_all t =
  let k = t.topo.Topology.k in
  Array.iteri
    (fun gp0 src ->
      let signals =
        List.init k (fun w ->
            let e = Endpoint.make ~port:(gp0 + 1) ~wl:(w + 1) in
            Wdm_optics.Signal.inject ~origin:(Labels.origin e) ~wl:(w + 1))
      in
      C.inject t.circuit src signals)
    t.sources

let realize t routes =
  apply_routes t routes;
  inject_all t;
  let outcome = C.propagate t.circuit in
  let assignment =
    Assignment.make (List.map (fun (r : Network.route) -> r.Network.connection) routes)
  in
  match Wdm_crossbar.Delivery.verify assignment outcome with
  | Ok () -> Ok outcome
  | Error _ as e -> e

let crosspoints t = C.num_gates t.circuit
let converters t = C.num_converters t.circuit
