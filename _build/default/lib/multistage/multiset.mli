(** Destination multisets (Section 3.3, definitions (2)-(5)).

    For a middle-stage module [j], the destination multiset [M_j]
    records, for every output-stage module [p in {1..r}], how many
    multicast connections currently run over the link [j -> p] — at most
    [k], one per wavelength of the link.  The paper's operations:

    - intersection (3): elementwise [min] of multiplicities;
    - cardinality (4): the number of elements whose multiplicity has
      reached [k] — i.e. output modules {e saturated} through [j];
    - null (5): no saturated element.

    A new connection can reach output module [p] through [j] iff [p] is
    not saturated in [M_j]; [x] middle modules can jointly carry a
    connection with fanout set [F] iff the intersection of their
    multisets, restricted to [F], is null (Lemma 4 extended to
    multisets).  With [k = 1] everything degenerates to the ordinary
    destination sets of the electronic case. *)

type t

val create : r:int -> k:int -> t
(** The empty multiset (all multiplicities 0). *)

val of_list : r:int -> k:int -> int list -> t
(** Multiset from element occurrences, e.g.
    [of_list ~r:3 ~k:2 [1; 1; 3]] has multiplicities [2, 0, 1].
    @raise Invalid_argument on out-of-range elements or multiplicity
    beyond [k]. *)

val r : t -> int
val k : t -> int

val multiplicity : t -> int -> int
(** [multiplicity t p] for [p in 1..r]. *)

val saturated : t -> int -> bool
(** [multiplicity t p = k]. *)

val add : t -> int -> t
(** One more connection towards output module [p].
    @raise Invalid_argument if [p] is already saturated. *)

val remove : t -> int -> t
(** @raise Invalid_argument if [multiplicity t p = 0]. *)

val inter : t -> t -> t
(** Elementwise minimum (definition (3)).
    @raise Invalid_argument on mismatched dimensions. *)

val cardinality : t -> int
(** Number of saturated elements (definition (4)) — {e not} the total
    multiplicity. *)

val is_null : t -> bool
(** Definition (5): cardinality 0. *)

val saturated_elements : t -> int list
val total : t -> int
(** Sum of multiplicities (the number of connections through the module). *)

val restrict : t -> int list -> t
(** Zero out every element not in the given fanout set — used to apply
    Lemma 4 to a specific connection request. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Paper notation, e.g. [{1^2, 3^1}]. *)
