module C = Wdm_optics.Circuit
module MF = Wdm_crossbar.Module_fabric
module Labels = Wdm_crossbar.Labels
open Wdm_core

(* A switch realized in the circuit: a crossbar block or a nested
   three-stage fabric.  Both expose per-port entries and exits. *)
type sw =
  | Atomic of MF.t
  | Clos of {
      topo : Topology.t;
      input_mods : MF.t array;
      middles : sw array;
      output_mods : MF.t array;
    }

type t = {
  circuit : C.t;
  k : int;
  sources : C.node_id array;  (* per outermost global input port *)
  top : sw;
  stages : int;
}

let sw_entry sw port =
  match sw with
  | Atomic mf -> MF.entry mf port
  | Clos { topo; input_mods; _ } ->
    let i, local = Topology.switch_of_port topo port in
    MF.entry input_mods.(i - 1) local

let sw_exit sw port =
  match sw with
  | Atomic mf -> MF.exit mf port
  | Clos { topo; output_mods; _ } ->
    let p, local = Topology.switch_of_port topo port in
    MF.exit output_mods.(p - 1) local

let inner_model = function
  | Network.Msw_dominant -> Model.MSW
  | Network.Maw_dominant -> Model.MAW

(* Build a switch of the given view.  [model] is the model this switch
   presents at its output stage (the dominant model for every nested
   level, the design's model at the outermost level). *)
let rec build_sw c ~construction ~k ~output_model view =
  let dominant = inner_model construction in
  match (view : Recursive.view) with
  | Recursive.Xbar s -> Atomic (MF.build c ~model:output_model ~inputs:s ~outputs:s ~k)
  | Recursive.Clos { n; m; r; middle } ->
    let topo = Topology.make_exn ~n ~m ~r ~k in
    let input_mods =
      Array.init r (fun _ -> MF.build c ~model:dominant ~inputs:n ~outputs:m ~k)
    in
    let middles =
      Array.init m (fun _ ->
          (* nested levels keep the dominant model end to end; an
             atomic middle is a dominant-model crossbar block *)
          build_sw c ~construction ~k ~output_model:dominant middle)
    in
    let output_mods =
      Array.init r (fun _ -> MF.build c ~model:output_model ~inputs:m ~outputs:n ~k)
    in
    for i = 1 to r do
      for j = 1 to m do
        let fn, fs = MF.exit input_mods.(i - 1) j in
        let tn, ts = sw_entry middles.(j - 1) i in
        C.connect c fn fs tn ts
      done
    done;
    for j = 1 to m do
      for p = 1 to r do
        let fn, fs = sw_exit middles.(j - 1) p in
        let tn, ts = MF.entry output_mods.(p - 1) j in
        C.connect c fn fs tn ts
      done
    done;
    Clos { topo; input_mods; middles; output_mods }

let rec sw_stages = function
  | Atomic _ -> 1
  | Clos { middles; _ } -> 2 + sw_stages middles.(0)

let rec sw_clear c = function
  | Atomic mf -> MF.clear c mf
  | Clos { input_mods; middles; output_mods; _ } ->
    Array.iter (MF.clear c) input_mods;
    Array.iter (sw_clear c) middles;
    Array.iter (MF.clear c) output_mods

let create ?loss ~construction design =
  let view = Recursive.view design in
  (match view with
  | Recursive.Xbar _ ->
    invalid_arg "Physical_recursive.create: design must have at least 3 stages"
  | Recursive.Clos _ -> ());
  let k = Recursive.k design in
  let c = C.create ?loss () in
  let top =
    build_sw c ~construction ~k ~output_model:(Recursive.output_model design) view
  in
  let ports =
    match top with
    | Clos { topo; _ } -> Topology.num_ports topo
    | Atomic _ -> assert false
  in
  let sources =
    Array.init ports (fun gp0 ->
        let src = C.add_source c (Labels.input_port (gp0 + 1)) in
        let node, slot = sw_entry top (gp0 + 1) in
        C.connect c src 0 node slot;
        src)
  in
  for gp = 1 to ports do
    let sink = C.add_sink c (Labels.output_port gp) in
    let node, slot = sw_exit top gp in
    C.connect c node slot sink 0
  done;
  { circuit = c; k; sources; top; stages = sw_stages top }

let circuit t = t.circuit
let stages t = t.stages

(* Program one route (and its nested routes) into a switch. *)
let rec apply_sw_route circuit sw (route : Rnetwork.route) =
  match sw with
  | Atomic _ -> invalid_arg "Physical_recursive: route deeper than the fabric"
  | Clos { topo; input_mods; middles; output_mods } ->
    let conn = route.Rnetwork.base.Network.connection in
    let src_wl = conn.Connection.source.Endpoint.wl in
    let i = route.Rnetwork.base.Network.input_switch in
    let _, local_src = Topology.switch_of_port topo conn.Connection.source.Endpoint.port in
    MF.set_path circuit input_mods.(i - 1) ~src:(local_src, src_wl)
      ~dests:
        (List.map
           (fun (h : Network.hop) -> (h.Network.middle, h.Network.stage1_wl))
           route.Rnetwork.base.Network.hops);
    List.iter
      (fun (h : Network.hop) ->
        (match middles.(h.Network.middle - 1) with
        | Atomic mf ->
          MF.set_path circuit mf ~src:(i, h.Network.stage1_wl) ~dests:h.Network.serves
        | Clos _ as nested ->
          let sub =
            List.assoc h.Network.middle route.Rnetwork.subroutes
          in
          apply_sw_route circuit nested sub);
        List.iter
          (fun (p, w2) ->
            let local_dests =
              List.filter_map
                (fun (d : Endpoint.t) ->
                  let p', local = Topology.switch_of_port topo d.port in
                  if p' = p then Some (local, d.wl) else None)
                conn.Connection.destinations
            in
            MF.set_path circuit output_mods.(p - 1) ~src:(h.Network.middle, w2)
              ~dests:local_dests)
          h.Network.serves)
      route.Rnetwork.base.Network.hops

let apply_routes t routes =
  sw_clear t.circuit t.top;
  List.iter (apply_sw_route t.circuit t.top) routes

let inject_all t =
  Array.iteri
    (fun gp0 src ->
      C.inject t.circuit src
        (List.init t.k (fun w ->
             let e = Endpoint.make ~port:(gp0 + 1) ~wl:(w + 1) in
             Wdm_optics.Signal.inject ~origin:(Labels.origin e) ~wl:(w + 1))))
    t.sources

let realize t routes =
  apply_routes t routes;
  inject_all t;
  let outcome = C.propagate t.circuit in
  let assignment =
    Assignment.make
      (List.map
         (fun (r : Rnetwork.route) -> r.Rnetwork.base.Network.connection)
         routes)
  in
  match Wdm_crossbar.Delivery.verify assignment outcome with
  | Ok () -> Ok outcome
  | Error _ as e -> e

let crosspoints t = C.num_gates t.circuit
let converters t = C.num_converters t.circuit
