(** Three-stage network dimensions (Fig. 8).

    An [N x N] three-stage network has [r] input-stage modules of size
    [n x m], [m] middle-stage modules of size [r x r] and [r]
    output-stage modules of size [m x n], with [N = n r] and exactly one
    (WDM, [k]-wavelength) fiber between every pair of modules in
    consecutive stages.  Global ports are numbered [1..N]; port [p]
    lands on module [ceil(p / n)] at local position [((p-1) mod n) + 1]
    on both sides. *)

type t = private { n : int; m : int; r : int; k : int }

val make : n:int -> m:int -> r:int -> k:int -> (t, string) result
(** Requires [n, r, k >= 1] and [m >= n] (the paper assumes [m >= n];
    fewer middle modules than local ports could not even carry a
    permutation). *)

val make_exn : n:int -> m:int -> r:int -> k:int -> t

val num_ports : t -> int
(** [N = n * r]. *)

val spec : t -> Wdm_core.Network_spec.t
(** The [N x N] [k]-wavelength network this topology implements. *)

val switch_of_port : t -> int -> int * int
(** [switch_of_port t p] is [(module_index, local_position)], both
    1-based.  @raise Invalid_argument when [p] is out of range. *)

val port_of_switch : t -> switch:int -> local:int -> int

val square : n:int -> k:int -> m:int -> t
(** The symmetric case [n = r] (so [N = n^2]) used throughout
    Section 3.4. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
