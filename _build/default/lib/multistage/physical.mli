(** Physical realization of a three-stage network (Fig. 8, Fig. 9).

    Builds the actual optical circuit — [r] input modules of size
    [n x m], [m] middle modules of size [r x r], [r] output modules of
    size [m x n], one [k]-wavelength fiber between every pair of modules
    in consecutive stages — out of {!Wdm_crossbar.Module_fabric}
    building blocks, with module models chosen by the construction
    (Fig. 9a: MSW-dominant; Fig. 9b: MAW-dominant).

    Given routes computed by {!Network}, {!realize} configures every
    module, lights all transmitters and verifies by optical propagation
    that exactly the requested multicast pattern is delivered.  This is
    the end-to-end proof that the routing engine's link bookkeeping
    corresponds to hardware that actually works. *)

open Wdm_core

type t

val create :
  ?loss:Wdm_optics.Loss_model.t ->
  construction:Network.construction ->
  output_model:Model.t ->
  Topology.t ->
  t

val topology : t -> Topology.t
val circuit : t -> Wdm_optics.Circuit.t

val apply_routes : t -> Network.route list -> unit
(** Quiesce every module, then program the paths of the given routes.
    @raise Invalid_argument if a route violates a module's model — the
    router never produces such routes. *)

val realize :
  t ->
  Network.route list ->
  (Wdm_optics.Circuit.outcome, Wdm_crossbar.Delivery.failure) result
(** {!apply_routes}, inject the full transmitter load and check that
    every connection's destinations (and nothing else) receive the
    right signals. *)

val crosspoints : t -> int
(** Censused from the built circuit; the tests compare against
    {!Cost.breakdown}. *)

val converters : t -> int
