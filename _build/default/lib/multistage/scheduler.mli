(** Offline (batch) routing of whole multicast assignments.

    The nonblocking theorems are about online arrival; an offline
    scheduler knows the whole assignment up front and may (a) choose
    the order in which connections are placed and (b) optionally move
    already-placed connections ({!Network.connect_rearrangeable}).
    On a Theorem-sized network neither degree of freedom is needed —
    the tests check that — but below the bound they recover routability
    for many assignments that a fixed-order online router loses. *)

open Wdm_core

type outcome = {
  routes : Network.route list;
  reroutes : int;  (** rearrangement moves performed *)
  order_attempts : int;  (** placement orders tried (>= 1) *)
}

val route_assignment :
  ?max_order_attempts:int ->
  ?rearrange:bool ->
  ?seed:int ->
  Network.t ->
  Assignment.t ->
  (outcome, Network.error) result
(** Places every connection of the assignment on the (empty) network.
    Tries the given order first, then up to [max_order_attempts - 1]
    seeded shuffles (default 8 total); with [rearrange] (default false)
    each placement may move one existing connection.  On failure the
    network is left empty; on success it holds exactly the assignment's
    routes.  @raise Invalid_argument if the network is not empty. *)
