type t = { n : int; m : int; r : int; k : int }

let make ~n ~m ~r ~k =
  if n < 1 then Error "Topology.make: n must be >= 1"
  else if r < 1 then Error "Topology.make: r must be >= 1"
  else if k < 1 then Error "Topology.make: k must be >= 1"
  else if m < n then Error "Topology.make: m must be >= n"
  else Ok { n; m; r; k }

let make_exn ~n ~m ~r ~k =
  match make ~n ~m ~r ~k with Ok t -> t | Error msg -> invalid_arg msg

let num_ports t = t.n * t.r
let spec t = Wdm_core.Network_spec.make_exn ~n:(num_ports t) ~k:t.k

let switch_of_port t p =
  if p < 1 || p > num_ports t then invalid_arg "Topology.switch_of_port: bad port";
  (((p - 1) / t.n) + 1, ((p - 1) mod t.n) + 1)

let port_of_switch t ~switch ~local =
  if switch < 1 || switch > t.r then
    invalid_arg "Topology.port_of_switch: bad switch";
  if local < 1 || local > t.n then
    invalid_arg "Topology.port_of_switch: bad local position";
  ((switch - 1) * t.n) + local

let square ~n ~k ~m = make_exn ~n ~m ~r:n ~k

let equal a b = a.n = b.n && a.m = b.m && a.r = b.r && a.k = b.k

let pp ppf t =
  Format.fprintf ppf "3-stage N=%d (r=%d modules of %dx%d | %d of %dx%d | %d of %dx%d), k=%d"
    (num_ports t) t.r t.n t.m t.m t.r t.r t.r t.m t.n t.k
