open Wdm_core

type stage = { crosspoints : int; converters : int }

type breakdown = {
  input : stage;
  middle : stage;
  output : stage;
  total_crosspoints : int;
  total_converters : int;
}

let module_crosspoints model ~k ~ins ~outs =
  match (model : Model.t) with
  | MSW -> k * ins * outs
  | MSDW | MAW -> k * k * ins * outs

let module_converters model ~k ~ins ~outs =
  match (model : Model.t) with
  | MSW -> 0
  | MSDW -> ins * k  (* before the splitters, on the module's input side *)
  | MAW -> outs * k  (* behind the combiners, on the module's output side *)

let stage_of model ~k ~ins ~outs ~count =
  {
    crosspoints = count * module_crosspoints model ~k ~ins ~outs;
    converters = count * module_converters model ~k ~ins ~outs;
  }

let breakdown ~construction ~output_model (topo : Topology.t) =
  let inner_model =
    match (construction : Network.construction) with
    | Network.Msw_dominant -> Model.MSW
    | Network.Maw_dominant -> Model.MAW
  in
  let input = stage_of inner_model ~k:topo.k ~ins:topo.n ~outs:topo.m ~count:topo.r in
  let middle = stage_of inner_model ~k:topo.k ~ins:topo.r ~outs:topo.r ~count:topo.m in
  let output = stage_of output_model ~k:topo.k ~ins:topo.m ~outs:topo.n ~count:topo.r in
  {
    input;
    middle;
    output;
    total_crosspoints = input.crosspoints + middle.crosspoints + output.crosspoints;
    total_converters = input.converters + middle.converters + output.converters;
  }

let msdw_converters_input_side (topo : Topology.t) = topo.r * topo.m * topo.k
let msdw_converters_optimized (topo : Topology.t) = topo.r * topo.n * topo.k

let msw_dominant_crosspoints_closed_form ~output_model (topo : Topology.t) =
  let { Topology.n; m; r; k } = topo in
  match (output_model : Model.t) with
  | MSW -> k * m * r * ((2 * n) + r)
  | MSDW | MAW -> k * m * r * (((k + 1) * n) + r)

let recommended ~construction ~output_model ~big_n ~k =
  if big_n < 1 then Error "Cost.recommended: N must be >= 1"
  else begin
    let root = int_of_float (Float.round (sqrt (float_of_int big_n))) in
    if root * root <> big_n then
      Error (Printf.sprintf "Cost.recommended: N = %d is not a perfect square" big_n)
    else begin
      let n = root and r = root in
      let eval =
        match (construction : Network.construction) with
        | Network.Msw_dominant -> Conditions.msw_dominant ~n ~r
        | Network.Maw_dominant -> Conditions.maw_dominant ~n ~r ~k
      in
      let topo = Topology.make_exn ~n ~m:eval.m_min ~r ~k in
      Ok (topo, eval, breakdown ~construction ~output_model topo)
    end
  end

let crossbar_crosspoints ~output_model ~big_n ~k =
  Wdm_core.Cost.crossbar_crosspoints output_model ~n:big_n ~k

let crossbar_converters ~output_model ~big_n ~k =
  Wdm_core.Cost.crossbar_converters output_model ~n:big_n ~k

let pp_breakdown ppf b =
  Format.fprintf ppf
    "crosspoints %d (in %d / mid %d / out %d), converters %d (in %d / mid %d / out %d)"
    b.total_crosspoints b.input.crosspoints b.middle.crosspoints
    b.output.crosspoints b.total_converters b.input.converters
    b.middle.converters b.output.converters
