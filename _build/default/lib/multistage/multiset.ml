type t = { k : int; counts : int array }

let create ~r ~k =
  if r < 1 || k < 1 then invalid_arg "Multiset.create: r and k must be >= 1";
  { k; counts = Array.make r 0 }

let r t = Array.length t.counts
let k t = t.k

let check_elem t p name =
  if p < 1 || p > r t then invalid_arg ("Multiset." ^ name ^ ": element out of range")

let multiplicity t p =
  check_elem t p "multiplicity";
  t.counts.(p - 1)

let saturated t p = multiplicity t p = t.k

let add t p =
  check_elem t p "add";
  if t.counts.(p - 1) >= t.k then invalid_arg "Multiset.add: element saturated";
  let counts = Array.copy t.counts in
  counts.(p - 1) <- counts.(p - 1) + 1;
  { t with counts }

let remove t p =
  check_elem t p "remove";
  if t.counts.(p - 1) = 0 then invalid_arg "Multiset.remove: element absent";
  let counts = Array.copy t.counts in
  counts.(p - 1) <- counts.(p - 1) - 1;
  { t with counts }

let of_list ~r ~k elems =
  List.fold_left add (create ~r ~k) elems

let inter a b =
  if r a <> r b || a.k <> b.k then invalid_arg "Multiset.inter: dimension mismatch";
  { a with counts = Array.map2 Stdlib.min a.counts b.counts }

let cardinality t =
  Array.fold_left (fun acc c -> if c = t.k then acc + 1 else acc) 0 t.counts

let is_null t = cardinality t = 0

let saturated_elements t =
  let acc = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) = t.k then acc := (i + 1) :: !acc
  done;
  !acc

let total t = Array.fold_left ( + ) 0 t.counts

let restrict t elems =
  let keep = Array.make (r t) false in
  List.iter (fun p -> check_elem t p "restrict"; keep.(p - 1) <- true) elems;
  { t with counts = Array.mapi (fun i c -> if keep.(i) then c else 0) t.counts }

let equal a b = a.k = b.k && a.counts = b.counts

let pp ppf t =
  let elems =
    Array.to_list t.counts
    |> List.mapi (fun i c -> (i + 1, c))
    |> List.filter (fun (_, c) -> c > 0)
  in
  Format.fprintf ppf "{%s}"
    (String.concat ", "
       (List.map (fun (p, c) -> Printf.sprintf "%d^%d" p c) elems))
