(** Network cost of three-stage WDM multicast networks (Section 3.4,
    Table 2).

    Per module: an MSW module of size [a x b] has [k a b] crosspoints
    and no converters; an MSDW or MAW module has [k^2 a b] crosspoints
    and [a k] (input-side) or [b k] (output-side) converters.  Summing
    over the stages of Fig. 8 gives, for the MSW-dominant construction
    with [n = r = sqrt N] and the Theorem-1 minimal [m]:

    - MSW network: [k m r (2n + r) = O(k N^1.5 log N / log log N)]
      crosspoints, no converters;
    - MSDW: [k m r ((k+1) n + r)] crosspoints, [r m k] converters
      (placed on the output modules' input side);
    - MAW: same crosspoints, [r n k = N k] converters (output side) —
      fewer than MSDW, which is why Section 3.4 calls MSDW undesirable. *)

open Wdm_core

type stage = { crosspoints : int; converters : int }

type breakdown = {
  input : stage;
  middle : stage;
  output : stage;
  total_crosspoints : int;
  total_converters : int;
}

val module_crosspoints : Model.t -> k:int -> ins:int -> outs:int -> int
val module_converters : Model.t -> k:int -> ins:int -> outs:int -> int

val breakdown :
  construction:Network.construction -> output_model:Model.t -> Topology.t -> breakdown
(** Exact totals for a topology under a construction and network model. *)

val msdw_converters_input_side : Topology.t -> int
(** [r * m * k]: MSDW converters at the output modules' input side, as
    the paper first places them. *)

val msdw_converters_optimized : Topology.t -> int
(** [r * n * k = N k]: Section 3.4's remark — even with the better
    placement (inside the [m x n] module) MSDW needs as many converters
    as MAW, never fewer; with the naive placement it needs more.  The
    tests check [optimized <= input_side] with equality iff [m = n]. *)

val msw_dominant_crosspoints_closed_form : output_model:Model.t -> Topology.t -> int
(** The paper's closed forms [k m r (2n + r)] (MSW) and
    [k m r ((k+1) n + r)] (MSDW/MAW) — the tests check {!breakdown}
    agrees with them. *)

val recommended :
  construction:Network.construction ->
  output_model:Model.t ->
  big_n:int ->
  k:int ->
  (Topology.t * Conditions.evaluation * breakdown, string) result
(** The Section 3.4 design point: [n = r = sqrt big_n] (requires a
    perfect square), [m] minimal for the construction's theorem. *)

val crossbar_crosspoints : output_model:Model.t -> big_n:int -> k:int -> int
(** Baseline single-crossbar cost for the same [N, k] (Table 1). *)

val crossbar_converters : output_model:Model.t -> big_n:int -> k:int -> int

val pp_breakdown : Format.formatter -> breakdown -> unit
