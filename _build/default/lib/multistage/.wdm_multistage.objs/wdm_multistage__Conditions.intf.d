lib/multistage/conditions.mli: Format
