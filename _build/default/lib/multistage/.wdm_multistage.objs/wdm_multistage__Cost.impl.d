lib/multistage/cost.ml: Conditions Float Format Model Network Printf Topology Wdm_core
