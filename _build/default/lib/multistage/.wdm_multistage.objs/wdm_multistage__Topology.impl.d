lib/multistage/topology.ml: Format Wdm_core
