lib/multistage/rnetwork.mli: Connection Network Recursive Topology Wdm_core
