lib/multistage/topology.mli: Format Wdm_core
