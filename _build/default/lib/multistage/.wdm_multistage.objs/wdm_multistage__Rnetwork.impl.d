lib/multistage/rnetwork.ml: Array Connection Endpoint Hashtbl List Model Network Option Recursive Topology Wdm_core
