lib/multistage/multiset.ml: Array Format List Printf Stdlib String
