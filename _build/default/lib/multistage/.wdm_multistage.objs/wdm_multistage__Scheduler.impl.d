lib/multistage/scheduler.ml: Array Assignment Network Option Random Result Wdm_core
