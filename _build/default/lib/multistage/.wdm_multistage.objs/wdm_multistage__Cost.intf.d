lib/multistage/cost.mli: Conditions Format Model Network Topology Wdm_core
