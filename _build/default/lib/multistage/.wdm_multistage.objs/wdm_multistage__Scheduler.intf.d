lib/multistage/scheduler.mli: Assignment Network Wdm_core
