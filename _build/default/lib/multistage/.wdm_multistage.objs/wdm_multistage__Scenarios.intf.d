lib/multistage/scenarios.mli: Connection Network Topology Wdm_core
