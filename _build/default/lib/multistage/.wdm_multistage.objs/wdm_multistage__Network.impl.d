lib/multistage/network.ml: Array Assignment Conditions Connection Endpoint Format Int List Map Model Multiset Option Printf Set String Topology Wdm_core
