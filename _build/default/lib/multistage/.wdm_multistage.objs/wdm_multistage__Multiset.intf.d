lib/multistage/multiset.mli: Format
