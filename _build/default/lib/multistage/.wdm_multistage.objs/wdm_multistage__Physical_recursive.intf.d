lib/multistage/physical_recursive.mli: Network Recursive Rnetwork Wdm_crossbar Wdm_optics
