lib/multistage/recursive.ml: Conditions Cost Float Format List Model Printf Result Wdm_core
