lib/multistage/physical_recursive.ml: Array Assignment Connection Endpoint List Model Network Recursive Rnetwork Topology Wdm_core Wdm_crossbar Wdm_optics
