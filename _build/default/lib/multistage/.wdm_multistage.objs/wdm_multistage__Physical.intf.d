lib/multistage/physical.mli: Model Network Topology Wdm_core Wdm_crossbar Wdm_optics
