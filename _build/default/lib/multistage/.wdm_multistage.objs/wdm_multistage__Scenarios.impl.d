lib/multistage/scenarios.ml: Connection Endpoint Format List Model Network Topology Wdm_core
