lib/multistage/network.mli: Assignment Connection Endpoint Format Model Multiset Topology Wdm_core
