lib/multistage/physical.ml: Array Assignment Connection Endpoint List Model Network Topology Wdm_core Wdm_crossbar Wdm_optics
