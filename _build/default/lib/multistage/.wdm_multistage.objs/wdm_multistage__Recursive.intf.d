lib/multistage/recursive.mli: Format Model Wdm_core
