lib/multistage/conditions.ml: Float Format Stdlib
