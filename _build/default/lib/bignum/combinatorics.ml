let factorial =
  let cache : (int, Nat.t) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.add cache 0 Nat.one;
  fun n ->
    if n < 0 then invalid_arg "Combinatorics.factorial: negative";
    match Hashtbl.find_opt cache n with
    | Some v -> v
    | None ->
      (* Fill the cache upward from the largest computed entry. *)
      let rec largest i = if Hashtbl.mem cache i then i else largest (i - 1) in
      let start = largest n in
      let acc = ref (Hashtbl.find cache start) in
      for i = start + 1 to n do
        acc := Nat.mul_int !acc i;
        Hashtbl.replace cache i !acc
      done;
      !acc

let falling x i =
  if x < 0 || i < 0 then invalid_arg "Combinatorics.falling: negative";
  if i > x then Nat.zero
  else begin
    let acc = ref Nat.one in
    for j = 0 to i - 1 do
      acc := Nat.mul_int !acc (x - j)
    done;
    !acc
  end

let binomial n r =
  if n < 0 then invalid_arg "Combinatorics.binomial: negative n";
  if r < 0 || r > n then Nat.zero
  else begin
    let r = if r > n - r then n - r else r in
    Nat.divexact (falling n r) (factorial r)
  end

let stirling2 =
  let cache : (int * int, Nat.t) Hashtbl.t = Hashtbl.create 256 in
  let rec s n j =
    if n < 0 || j < 0 then invalid_arg "Combinatorics.stirling2: negative";
    if j > n then Nat.zero
    else if n = 0 then Nat.one (* j = 0 here *)
    else if j = 0 then Nat.zero
    else
      match Hashtbl.find_opt cache (n, j) with
      | Some v -> v
      | None ->
        (* S(n,j) = j * S(n-1,j) + S(n-1,j-1) *)
        let v = Nat.add (Nat.mul_int (s (n - 1) j) j) (s (n - 1) (j - 1)) in
        Hashtbl.add cache (n, j) v;
        v
  in
  s

let power b e = Nat.pow (Nat.of_int b) e

let int_pow_opt b e =
  if b < 0 || e < 0 then None
  else begin
    let rec go acc e = if e = 0 then Some acc else
      if acc > max_int / (if b = 0 then 1 else b) then None
      else go (acc * b) (e - 1)
    in
    go 1 e
  end
