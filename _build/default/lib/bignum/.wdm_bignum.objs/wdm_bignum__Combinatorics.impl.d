lib/bignum/combinatorics.ml: Hashtbl Nat
