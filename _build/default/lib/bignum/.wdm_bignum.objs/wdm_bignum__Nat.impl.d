lib/bignum/nat.ml: Array Buffer Char Format Hashtbl List Printf Stdlib String
