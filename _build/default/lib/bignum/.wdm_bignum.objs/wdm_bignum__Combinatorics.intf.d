lib/bignum/combinatorics.mli: Nat
