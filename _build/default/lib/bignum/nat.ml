(* Unsigned bignum: little-endian limbs in base 2^30.  The invariant is
   that the most-significant limb (last array cell) is non-zero; zero is
   the empty array.  Base 2^30 keeps every intermediate product or
   accumulation below 2^62, safely inside OCaml's 63-bit native ints. *)

let limb_bits = 30
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = int array

let zero : t = [||]

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let is_zero a = Array.length a = 0

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative";
  if n = 0 then zero
  else begin
    let rec count acc v = if v = 0 then acc else count (acc + 1) (v lsr limb_bits) in
    let len = count 0 n in
    let a = Array.make len 0 in
    let v = ref n in
    for i = 0 to len - 1 do
      a.(i) <- !v land limb_mask;
      v := !v lsr limb_bits
    done;
    a
  end

let one = of_int 1
let two = of_int 2

let to_int_opt a =
  (* 63-bit ints hold at most three 30-bit limbs, with the third limited. *)
  let len = Array.length a in
  if len > 3 then None
  else begin
    let rec fold i acc =
      if i < 0 then Some acc
      else
        let acc' = (acc lsl limb_bits) lor a.(i) in
        if acc' < 0 || acc' lsr limb_bits <> acc then None else fold (i - 1) acc'
    in
    if len = 0 then Some 0
    else if len = 3 && a.(2) >= 1 lsl (62 - 2 * limb_bits) then None
    else fold (len - 1) 0
  end

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let l = Stdlib.max la lb in
  let res = Array.make (l + 1) 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    res.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  res.(l) <- !carry;
  normalize res

let succ a = add a one

let sub a b =
  if compare a b < 0 then invalid_arg "Nat.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let res = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      res.(i) <- d + base;
      borrow := 1
    end
    else begin
      res.(i) <- d;
      borrow := 0
    end
  done;
  normalize res

let pred a = sub a one

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let res = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let cur = res.(i + j) + (ai * b.(j)) + !carry in
        res.(i + j) <- cur land limb_mask;
        carry := cur lsr limb_bits
      done;
      (* Propagate the final carry, which may itself overflow one limb. *)
      let p = ref (i + lb) in
      let c = ref !carry in
      while !c <> 0 do
        let cur = res.(!p) + !c in
        res.(!p) <- cur land limb_mask;
        c := cur lsr limb_bits;
        incr p
      done
    done;
    normalize res
  end

let mul_int a m =
  if m < 0 then invalid_arg "Nat.mul_int: negative"
  else if m = 0 || is_zero a then zero
  else if m < base then begin
    let la = Array.length a in
    let res = Array.make (la + 2) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let cur = (a.(i) * m) + !carry in
      res.(i) <- cur land limb_mask;
      carry := cur lsr limb_bits
    done;
    res.(la) <- !carry land limb_mask;
    res.(la + 1) <- !carry lsr limb_bits;
    normalize res
  end
  else mul a (of_int m)

let pow b e =
  if e < 0 then invalid_arg "Nat.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      let e = e lsr 1 in
      if e = 0 then acc else go acc (mul b b) e
    end
  in
  go one b e

let num_bits a =
  let len = Array.length a in
  if len = 0 then 0
  else begin
    let top = a.(len - 1) in
    let rec msb acc v = if v = 0 then acc else msb (acc + 1) (v lsr 1) in
    ((len - 1) * limb_bits) + msb 0 top
  end

let get_bit a i =
  let limb = i / limb_bits and off = i mod limb_bits in
  if limb >= Array.length a then 0 else (a.(limb) lsr off) land 1

let shift_left a s =
  if s < 0 then invalid_arg "Nat.shift_left: negative";
  if is_zero a || s = 0 then a
  else begin
    let limbs = s / limb_bits and off = s mod limb_bits in
    let la = Array.length a in
    let res = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl off in
      res.(i + limbs) <- res.(i + limbs) lor (v land limb_mask);
      res.(i + limbs + 1) <- v lsr limb_bits
    done;
    normalize res
  end

let shift_right a s =
  if s < 0 then invalid_arg "Nat.shift_right: negative";
  if is_zero a || s = 0 then a
  else begin
    let limbs = s / limb_bits and off = s mod limb_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let res = Array.make (la - limbs) 0 in
      for i = 0 to la - limbs - 1 do
        let lo = a.(i + limbs) lsr off in
        let hi =
          if off = 0 || i + limbs + 1 >= la then 0
          else (a.(i + limbs + 1) lsl (limb_bits - off)) land limb_mask
        in
        res.(i) <- lo lor hi
      done;
      normalize res
    end
  end

let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    (* Schoolbook binary long division: scan the dividend bits from most
       to least significant, maintaining the running remainder. *)
    let nb = num_bits a in
    let q = Array.make (Array.length a) 0 in
    let r = ref zero in
    for i = nb - 1 downto 0 do
      let r2 = shift_left !r 1 in
      let r2 = if get_bit a i = 1 then add r2 one else r2 in
      if compare r2 b >= 0 then begin
        r := sub r2 b;
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end
      else r := r2
    done;
    (normalize q, !r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let divmod_int a d =
  if d = 0 then raise Division_by_zero;
  if d < 0 || d >= base then invalid_arg "Nat.divmod_int: out of range";
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, !r)

let divexact a b =
  let q, r = divmod a b in
  if not (is_zero r) then invalid_arg "Nat.divexact: inexact division";
  q

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let sum l = List.fold_left add zero l
let product l = List.fold_left mul one l

let to_float a =
  Array.to_list a
  |> List.rev
  |> List.fold_left (fun acc limb -> (acc *. float_of_int base) +. float_of_int limb) 0.

let log10 a =
  if is_zero a then neg_infinity
  else begin
    let nb = num_bits a in
    if nb <= 52 then log10 (to_float a)
    else begin
      (* log10(a) = log10(top 52 bits) + (dropped bits) * log10(2). *)
      let drop = nb - 52 in
      let top = shift_right a drop in
      log10 (to_float top) +. (float_of_int drop *. log10 2.)
    end
  end

let to_string a =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let groups = ref [] in
    let cur = ref a in
    while not (is_zero !cur) do
      let q, r = divmod_int !cur 1_000_000_000 in
      groups := r :: !groups;
      cur := q
    done;
    (match !groups with
    | [] -> assert false
    | g :: rest ->
      Buffer.add_string buf (string_of_int g);
      List.iter (fun g -> Buffer.add_string buf (Printf.sprintf "%09d" g)) rest);
    Buffer.contents buf
  end

let of_string s =
  if s = "" then invalid_arg "Nat.of_string: empty";
  let acc = ref zero in
  let seen_digit = ref false in
  String.iter
    (fun c ->
      if c = '_' then ()
      else if c >= '0' && c <= '9' then begin
        seen_digit := true;
        acc := add (mul_int !acc 10) (of_int (Char.code c - Char.code '0'))
      end
      else invalid_arg "Nat.of_string: invalid character")
    s;
  if not !seen_digit then invalid_arg "Nat.of_string: no digits";
  !acc

let num_digits a = String.length (to_string a)

let pp ppf a = Format.pp_print_string ppf (to_string a)

let pp_approx ppf a =
  let s = to_string a in
  if String.length s <= 12 then Format.pp_print_string ppf s
  else begin
    let exponent = String.length s - 1 in
    let mantissa = Printf.sprintf "%c.%s" s.[0] (String.sub s 1 3) in
    Format.fprintf ppf "%se+%d" mantissa exponent
  end

let hash a = Hashtbl.hash (Array.to_list a)
