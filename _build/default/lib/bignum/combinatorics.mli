(** Exact combinatorial quantities used throughout the capacity analysis
    (Section 2.2 of the paper): falling factorials [P(x,i)], binomial
    coefficients, factorials and Stirling numbers of the second kind
    [S(n,j)].  All results are arbitrary-precision ({!Nat.t}); the
    factorial and Stirling tables are memoized. *)

val factorial : int -> Nat.t
(** [factorial n] is [n!].  @raise Invalid_argument if [n < 0]. *)

val falling : int -> int -> Nat.t
(** [falling x i] is the falling factorial
    [P(x,i) = x (x-1) ... (x-i+1)] with [falling x 0 = 1].  The paper
    writes this [P(x,i)].  For [i > x] the product crosses zero and the
    result is [0].  @raise Invalid_argument if [x < 0] or [i < 0]. *)

val binomial : int -> int -> Nat.t
(** [binomial n r] is [C(n,r)]; [0] when [r > n] or [r < 0].
    @raise Invalid_argument if [n < 0]. *)

val stirling2 : int -> int -> Nat.t
(** [stirling2 n j] is [S(n,j)], the number of ways to partition [n]
    labelled elements into [j] non-empty unlabelled groups.
    [stirling2 0 0 = 1]; [stirling2 n 0 = 0] for [n > 0]; [0] when
    [j > n].  @raise Invalid_argument on negative arguments. *)

val power : int -> int -> Nat.t
(** [power b e] is [b^e] for non-negative native [b] and [e]. *)

val int_pow_opt : int -> int -> int option
(** [int_pow_opt b e] is [Some (b^e)] when it fits a native int (used by
    tests to cross-check small values), [None] on overflow. *)
