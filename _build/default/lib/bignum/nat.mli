(** Arbitrary-precision natural numbers.

    The multicast capacities of Lemmas 1-3 in the paper grow like [N^(Nk)]
    and [P(Nk,k)^N], which overflow 63-bit integers already for tiny
    networks (e.g. [N = 4], [k = 2] gives [4^8 = 65536] but [N = 8],
    [k = 4] gives [8^32 ~ 7.9e28]).  The sealed build environment has no
    zarith, so this module provides a small, well-tested bignum: unsigned
    integers stored as little-endian limbs in base [2^30].

    All functions are total on naturals; operations that would produce a
    negative result (e.g. {!sub}) raise [Invalid_argument]. *)

type t
(** A natural number.  Values are immutable and structurally comparable
    through {!compare} / {!equal} (do not rely on polymorphic compare). *)

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] converts a non-negative native integer.
    @raise Invalid_argument if [n < 0]. *)

val to_int_opt : t -> int option
(** [to_int_opt n] is [Some i] when [n] fits in a native [int]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val add : t -> t -> t
val succ : t -> t

val sub : t -> t -> t
(** [sub a b] is [a - b].  @raise Invalid_argument if [a < b]. *)

val pred : t -> t
(** @raise Invalid_argument on {!zero}. *)

val mul : t -> t -> t

val mul_int : t -> int -> t
(** [mul_int a m] multiplies by a small non-negative native integer.
    @raise Invalid_argument if [m < 0]. *)

val pow : t -> int -> t
(** [pow b e] is [b] raised to the non-negative exponent [e].
    [pow zero 0 = one].  @raise Invalid_argument if [e < 0]. *)

val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)].  @raise Division_by_zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val divmod_int : t -> int -> t * int
(** Division by a small positive native integer ([0 < d < 2^30]).
    @raise Division_by_zero if [d = 0].
    @raise Invalid_argument if [d < 0] or [d >= 2^30]. *)

val divexact : t -> t -> t
(** [divexact a b] is [a / b] and checks the division is exact.
    @raise Invalid_argument if [b] does not divide [a]. *)

val min : t -> t -> t
val max : t -> t -> t

val sum : t list -> t
val product : t list -> t

val num_bits : t -> int
(** Position of the highest set bit plus one; [num_bits zero = 0]. *)

val num_digits : t -> int
(** Number of decimal digits; [num_digits zero = 1]. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val to_float : t -> float
(** Nearest-ish float; [infinity] when out of range. *)

val log10 : t -> float
(** Base-10 logarithm as a float; [neg_infinity] on {!zero}.  Accurate to
    roughly double precision even for huge values (computed from the top
    bits plus the bit length). *)

val to_string : t -> string
(** Decimal representation. *)

val of_string : string -> t
(** Parses a decimal string (optional [_] separators allowed).
    @raise Invalid_argument on anything else. *)

val pp : Format.formatter -> t -> unit
(** Prints the decimal representation. *)

val pp_approx : Format.formatter -> t -> unit
(** Prints small values exactly and large values as [d.ddde+NN], which is
    how the capacity tables render astronomically large counts. *)

val hash : t -> int
