(** The MAW crossbar network of Fig. 7 (output-side converters, full (Nk)^2 gate matrix),
    exposed through {!Fabric_intf.S} so fabrics are interchangeable in
    tests and benchmarks. *)

include Fabric_intf.S
