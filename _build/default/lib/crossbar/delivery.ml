open Wdm_core
module C = Wdm_optics.Circuit

type failure =
  | Invalid of Assignment.error
  | Optical of C.error list
  | Missing of { destination : Endpoint.t; expected_origin : string }
  | Wrong_origin of { destination : Endpoint.t; expected : string; got : string }
  | Unexpected of { port : int; wl : int; origin : string }

let verify assignment (outcome : C.outcome) =
  if outcome.errors <> [] then Error (Optical outcome.errors)
  else begin
    (* expected: destination endpoint -> origin label of its source *)
    let module Em = Map.Make (Endpoint) in
    let expected =
      List.fold_left
        (fun m (c : Connection.t) ->
          List.fold_left
            (fun m d -> Em.add d (Labels.origin c.source) m)
            m c.destinations)
        Em.empty assignment.Assignment.connections
    in
    (* got: flatten deliveries into destination endpoint -> origin;
       leakage is crosstalk noise, not payload, and is judged by
       crosstalk margins instead *)
    let got =
      List.concat_map
        (fun (label, signals) ->
          match Labels.parse_output_port label with
          | None -> []
          | Some port ->
            List.filter_map
              (fun (s : Wdm_optics.Signal.t) ->
                if s.leakage then None
                else Some (Endpoint.make ~port ~wl:s.wl, s.origin))
              signals)
        outcome.deliveries
    in
    let rec check_got = function
      | [] -> Ok ()
      | (dest, origin) :: rest -> (
        match Em.find_opt dest expected with
        | None ->
          Error (Unexpected { port = dest.Endpoint.port; wl = dest.Endpoint.wl; origin })
        | Some want ->
          if String.equal want origin then check_got rest
          else Error (Wrong_origin { destination = dest; expected = want; got = origin }))
    in
    match check_got got with
    | Error _ as e -> e
    | Ok () ->
      let got_set = List.map fst got in
      let missing =
        Em.to_seq expected
        |> Seq.filter (fun (d, _) ->
               not (List.exists (Endpoint.equal d) got_set))
        |> Seq.uncons
      in
      (match missing with
      | Some ((destination, expected_origin), _) ->
        Error (Missing { destination; expected_origin })
      | None -> Ok ())
  end

let delivered_signals (outcome : C.outcome) =
  List.concat_map snd outcome.deliveries
  |> List.filter (fun (s : Wdm_optics.Signal.t) -> not s.leakage)

(* Worst-case ratio between a delivered payload signal and the summed
   leakage power arriving at the same sink on the same wavelength. *)
let worst_crosstalk_margin_db (outcome : C.outcome) =
  let margins =
    List.concat_map
      (fun (_, signals) ->
        let payload, noise =
          List.partition (fun (s : Wdm_optics.Signal.t) -> not s.leakage) signals
        in
        List.filter_map
          (fun (s : Wdm_optics.Signal.t) ->
            let interferers =
              List.filter (fun (x : Wdm_optics.Signal.t) -> x.wl = s.wl) noise
            in
            match interferers with
            | [] -> None
            | _ ->
              let noise_linear =
                List.fold_left
                  (fun acc x -> acc +. Wdm_optics.Signal.linear_power x)
                  0. interferers
              in
              Some (s.power_db -. (10. *. Float.log10 noise_linear)))
          payload)
      outcome.deliveries
  in
  match margins with
  | [] -> None
  | m :: rest -> Some (List.fold_left Float.min m rest)

let min_power_db outcome =
  match delivered_signals outcome with
  | [] -> None
  | s ->
    Some
      (List.fold_left
         (fun acc (x : Wdm_optics.Signal.t) -> Float.min acc x.power_db)
         infinity s)

let max_gates_passed outcome =
  match delivered_signals outcome with
  | [] -> None
  | s ->
    Some
      (List.fold_left
         (fun acc (x : Wdm_optics.Signal.t) -> Stdlib.max acc x.gates_passed)
         0 s)

let pp_failure ppf = function
  | Invalid e -> Format.fprintf ppf "invalid assignment: %a" Assignment.pp_error e
  | Optical errs ->
    Format.fprintf ppf "optical errors: %a"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space C.pp_error)
      errs
  | Missing { destination; expected_origin } ->
    Format.fprintf ppf "nothing delivered to %a (expected signal from %s)"
      Endpoint.pp destination expected_origin
  | Wrong_origin { destination; expected; got } ->
    Format.fprintf ppf "%a received %s, expected %s" Endpoint.pp destination got
      expected
  | Unexpected { port; wl; origin } ->
    Format.fprintf ppf "stray signal from %s at output port %d on l%d" origin
      port wl
