(** Naming conventions shared by every fabric.

    Sources are labelled by input port, sinks by output port, and signal
    origins by their input endpoint, so that a propagation outcome can be
    checked against an {!Wdm_core.Assignment.t} mechanically. *)

val input_port : int -> string
(** ["in:3"] *)

val output_port : int -> string
(** ["out:3"] *)

val origin : Wdm_core.Endpoint.t -> string
(** ["(3,l2)"], the endpoint rendering used as a signal's origin tag. *)

val parse_output_port : string -> int option
