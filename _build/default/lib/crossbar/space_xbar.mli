(** The [N x N] single-wavelength multicast space crossbar of Fig. 5.

    Each input feeds a [1 x N] splitter; splitter output [j] passes an
    SOA gate and joins the [N x 1] combiner of output [j].  Turning gate
    [(i, j)] on connects input [i] to output [j]; one input may reach any
    set of outputs (multicast), while nonblocking requires at most one on
    gate per output column.  Crosspoint count: [N^2].

    The builder embeds the crossbar into an existing circuit and exposes
    its boundary, so larger fabrics (the Fig. 4 planes, the multistage
    modules of Section 3) wire it as a building block. *)

type t

val build : Wdm_optics.Circuit.t -> inputs:int -> outputs:int -> t
(** [build c ~inputs ~outputs] creates an [inputs x outputs] crossbar
    inside [c] (the paper's square case is [inputs = outputs], but the
    multistage modules of Fig. 8 need rectangular [n x m] ones). *)

val inputs : t -> int
val outputs : t -> int

val entry : t -> int -> Wdm_optics.Circuit.node_id * int
(** [entry t i] is the (node, input-slot) where the parent circuit must
    deliver input [i]'s light (0-based). *)

val exit : t -> int -> Wdm_optics.Circuit.node_id * int
(** [exit t j] is the (node, output-slot) carrying output [j]'s light. *)

val set : Wdm_optics.Circuit.t -> t -> input:int -> output:int -> bool -> unit
(** Switch one crosspoint. *)

val clear : Wdm_optics.Circuit.t -> t -> unit
(** All gates off. *)

val crosspoints : t -> int
