(* The MSDW crossbar network of Fig. 6 (input-side converters, full
   (Nk)^2 gate matrix): a Module_fabric under MSDW with the standard
   transmitter/receiver wrapping. *)

type t = Fabric.t

let model = Wdm_core.Model.MSDW
let create ?loss spec = Fabric.create ?loss ~model spec
let spec = Fabric.spec
let circuit = Fabric.circuit
let configure = Fabric.configure
let realize = Fabric.realize
let crosspoints = Fabric.crosspoints
let converters = Fabric.converters
